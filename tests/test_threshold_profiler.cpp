/** @file Unit tests for the online deque-size profiler (Sec 3.2). */

#include <gtest/gtest.h>

#include "core/threshold_profiler.hpp"

using hermes::core::ThresholdProfiler;

TEST(ThresholdProfiler, BootstrapMatchesFigure4)
{
    // Figure 4's walkthrough uses thresholds {1, 3}.
    ThresholdProfiler p(2, 64);
    ASSERT_EQ(p.thresholds().size(), 2u);
    EXPECT_DOUBLE_EQ(p.thresholds()[0], 1.0);
    EXPECT_DOUBLE_EQ(p.thresholds()[1], 3.0);
}

TEST(ThresholdProfiler, PaperExampleL15K2)
{
    // Section 3.2: L = 15, K = 2 => thld_i = (2*15/3)*i = {10, 20}.
    ThresholdProfiler p(2, 10);
    for (int i = 0; i < 10; ++i)
        p.addSample(15);
    ASSERT_EQ(p.periods(), 1u);
    EXPECT_DOUBLE_EQ(p.lastAverage(), 15.0);
    EXPECT_DOUBLE_EQ(p.thresholds()[0], 10.0);
    EXPECT_DOUBLE_EQ(p.thresholds()[1], 20.0);
}

TEST(ThresholdProfiler, PaperExampleRegions)
{
    // "fastest tempo if the deque size is no less than 20, the
    //  medium tempo between 10 and 20, and the slowest otherwise"
    ThresholdProfiler p(2, 4);
    for (int i = 0; i < 4; ++i)
        p.addSample(15);
    EXPECT_EQ(p.regionOf(25), 2u);  // fastest region
    EXPECT_EQ(p.regionOf(20), 2u);  // "no less than 20"
    EXPECT_EQ(p.regionOf(15), 1u);  // medium
    EXPECT_EQ(p.regionOf(10), 1u);  // boundary joins upper region
    EXPECT_EQ(p.regionOf(5), 0u);   // slowest
    EXPECT_EQ(p.regionOf(0), 0u);
}

TEST(ThresholdProfiler, WindowGatesRecompute)
{
    ThresholdProfiler p(2, 5);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(p.addSample(100));
    EXPECT_TRUE(p.addSample(100));  // 5th sample closes the window
    EXPECT_EQ(p.periods(), 1u);
    EXPECT_FALSE(p.addSample(100));  // new window starts
}

TEST(ThresholdProfiler, AveragesWithinWindow)
{
    ThresholdProfiler p(1, 4);
    p.addSample(2);
    p.addSample(4);
    p.addSample(6);
    p.addSample(8);
    EXPECT_DOUBLE_EQ(p.lastAverage(), 5.0);
    // K = 1: thld_1 = (2*5/2)*1 = 5.
    EXPECT_DOUBLE_EQ(p.thresholds()[0], 5.0);
}

TEST(ThresholdProfiler, EmptyWindowKeepsThresholds)
{
    // A period of all-empty deques must not zero the thresholds
    // (that would pin everyone in the fastest region forever).
    ThresholdProfiler p(2, 3);
    for (int i = 0; i < 3; ++i)
        p.addSample(9);
    const auto before = p.thresholds();
    for (int i = 0; i < 3; ++i)
        p.addSample(0);
    EXPECT_EQ(p.thresholds(), before);
    EXPECT_EQ(p.periods(), 2u);
}

TEST(ThresholdProfiler, ManyThresholdsAscending)
{
    ThresholdProfiler p(4, 2);
    p.addSample(10);
    p.addSample(10);
    const auto &t = p.thresholds();
    ASSERT_EQ(t.size(), 4u);
    for (size_t i = 0; i + 1 < t.size(); ++i)
        EXPECT_LT(t[i], t[i + 1]);
    // thld_i = (2*10/5)*i = 4i.
    EXPECT_DOUBLE_EQ(t[0], 4.0);
    EXPECT_DOUBLE_EQ(t[3], 16.0);
}

TEST(ThresholdProfilerDeath, ZeroThresholdsRejected)
{
    EXPECT_DEATH(ThresholdProfiler(0, 4), "at least one threshold");
}
