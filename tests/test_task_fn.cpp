/**
 * @file
 * TaskFn: the allocation-free closure of the spawn/steal hot path —
 * inline-vs-boxed selection, move semantics, destructor correctness
 * for boxed payloads, and the release()/adopt() relocation contract
 * the lock-free deque ring depends on (task_fn.hpp).
 */

#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "runtime/task.hpp"
#include "runtime/task_fn.hpp"

using hermes::runtime::Task;
using hermes::runtime::TaskFn;

namespace {

struct BigBlob
{
    // Larger than the inline budget on any platform.
    unsigned char bytes[TaskFn::kInlineBytes + 8] = {};
};

} // namespace

TEST(TaskFn, SmallTriviallyCopyableLambdasStayInline)
{
    int sink = 0;
    long a = 1, b = 2, c = 3;
    auto small = [&sink, a, b, c] {
        sink = static_cast<int>(a + b + c);
    };
    static_assert(TaskFn::fitsInline<decltype(small)>,
                  "a 4-word capture must fit the inline budget");
    TaskFn fn(small);
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_TRUE(fn.storedInline());
    fn();
    EXPECT_EQ(sink, 6);
}

TEST(TaskFn, SevenWordCapturesFitTheRuntimesSpawnSites)
{
    // parallelReduce's spawn lambda captures 7 words by reference;
    // the inline budget exists for exactly this shape (the
    // static_asserts in parallel.hpp pin it at compile time).
    void *p0 = nullptr, *p1 = nullptr, *p2 = nullptr, *p3 = nullptr,
         *p4 = nullptr, *p5 = nullptr, *p6 = nullptr;
    auto seven = [p0, p1, p2, p3, p4, p5, p6] {
        (void)p0; (void)p1; (void)p2; (void)p3;
        (void)p4; (void)p5; (void)p6;
    };
    static_assert(sizeof(seven) == 7 * sizeof(void *));
    static_assert(TaskFn::fitsInline<decltype(seven)>);
    EXPECT_TRUE(TaskFn(seven).storedInline());
}

TEST(TaskFn, OversizedCapturesAreBoxedAndStillRun)
{
    BigBlob blob;
    blob.bytes[0] = 41;
    int out = 0;
    auto big = [blob, &out] { out = blob.bytes[0] + 1; };
    static_assert(!TaskFn::fitsInline<decltype(big)>);
    TaskFn fn(big);
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.storedInline());
    fn();
    EXPECT_EQ(out, 42);
}

TEST(TaskFn, NonTriviallyCopyableCapturesAreBoxed)
{
    // A shared_ptr capture is small but not trivially copyable: the
    // relocation-as-bytes contract forbids it inline.
    auto token = std::make_shared<int>(5);
    auto fn_body = [token] { return *token; };
    static_assert(!TaskFn::fitsInline<decltype(fn_body)>);
    EXPECT_FALSE(TaskFn(fn_body).storedInline());
}

TEST(TaskFn, BoxedPayloadIsDestroyedExactlyOnce)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    {
        TaskFn fn([token] { (void)*token; });
        token.reset();
        EXPECT_FALSE(watch.expired()); // the box keeps it alive
        TaskFn moved = std::move(fn);
        EXPECT_FALSE(static_cast<bool>(fn)); // source emptied
        EXPECT_FALSE(watch.expired());
        moved(); // invoking does not consume
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired()); // destroyed with the last holder
}

TEST(TaskFn, MoveAssignmentDestroysTheOverwrittenPayload)
{
    auto a = std::make_shared<int>(1);
    auto b = std::make_shared<int>(2);
    std::weak_ptr<int> watch_a = a, watch_b = b;
    TaskFn fn([a] { (void)*a; });
    a.reset();
    fn = TaskFn([b] { (void)*b; });
    b.reset();
    EXPECT_TRUE(watch_a.expired());  // overwritten payload freed
    EXPECT_FALSE(watch_b.expired()); // new payload held
    fn = TaskFn();
    EXPECT_TRUE(watch_b.expired());
}

TEST(TaskFn, ReleaseAdoptRelocatesWithoutRunningDtors)
{
    // The deque-ring contract: release() hands the closure over as
    // trivially-copyable bytes, adopt() resurrects it, and exactly
    // one destruction happens at the end — for inline and boxed
    // payloads alike.
    auto token = std::make_shared<int>(9);
    std::weak_ptr<int> watch = token;
    int calls = 0;

    TaskFn boxed([token, &calls] { ++calls; });
    token.reset();
    TaskFn::Repr repr = boxed.release();
    EXPECT_FALSE(static_cast<bool>(boxed));
    EXPECT_FALSE(watch.expired());
    {
        TaskFn revived = TaskFn::adopt(repr);
        ASSERT_TRUE(static_cast<bool>(revived));
        revived();
        EXPECT_EQ(calls, 1);
    }
    EXPECT_TRUE(watch.expired());

    int sink = 0;
    TaskFn inline_fn([&sink] { sink = 7; });
    TaskFn revived = TaskFn::adopt(inline_fn.release());
    revived();
    EXPECT_EQ(sink, 7);
}

TEST(TaskFn, EmptyIsFalseAndMoveLeavesEmpty)
{
    TaskFn empty;
    EXPECT_FALSE(static_cast<bool>(empty));
    EXPECT_FALSE(empty.storedInline());
    TaskFn full([] {});
    TaskFn taken = std::move(full);
    EXPECT_FALSE(static_cast<bool>(full));
    EXPECT_TRUE(static_cast<bool>(taken));
}

TEST(Task, ReleaseAdoptCarriesTheGroupPointer)
{
    // Task::Repr is what the deque ring actually stores: closure
    // bytes plus the completion-group pointer, relocated together.
    int sink = 0;
    auto *fake_group =
        reinterpret_cast<hermes::runtime::TaskGroup *>(0x1234);
    Task t([&sink] { sink = 3; }, fake_group);
    Task::Repr repr = t.release();
    EXPECT_FALSE(static_cast<bool>(t));
    EXPECT_EQ(t.group, nullptr);
    Task back = Task::adopt(repr);
    EXPECT_EQ(back.group, fake_group);
    back.body();
    EXPECT_EQ(sink, 3);
    back.group = nullptr; // never dereferenced; tag only
}

TEST(Task, StdFunctionStillConvertsViaBoxing)
{
    // Pre-PR-5 call sites passed std::function; it converts (boxed,
    // since std::function is not trivially copyable) so external
    // APIs keep working.
    int sink = 0;
    std::function<void()> legacy = [&sink] { sink = 11; };
    Task t(std::move(legacy), nullptr);
    EXPECT_FALSE(t.body.storedInline());
    t.body();
    EXPECT_EQ(sink, 11);
}
