/**
 * @file
 * The serving harness's log-bucketed latency recorder against an
 * exact-sort oracle: the advertised quantile error bound on fixed
 * seeds across narrow, wide, and heavy-tailed distributions, exact
 * recovery below the precision threshold, merge associativity and
 * commutativity (the per-worker merge must not depend on worker
 * order), and the empty/single-sample edges.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "harness/serve/latency_recorder.hpp"
#include "util/rng.hpp"

using hermes::harness::serve::LatencyRecorder;
using hermes::util::Rng;

namespace {

constexpr double kQuantiles[] = {0.0, 0.25, 0.5, 0.9,
                                 0.99, 0.999, 1.0};

/** The recorder's documented rank statistic, computed exactly. */
uint64_t
exactQuantile(std::vector<uint64_t> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const auto rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(sorted.size()))));
    return sorted[rank - 1];
}

/** Assert every probe quantile within maxRelativeError of exact. */
void
expectQuantilesWithinBound(const LatencyRecorder &recorder,
                           const std::vector<uint64_t> &samples)
{
    for (double q : kQuantiles) {
        const auto exact = exactQuantile(samples, q);
        const auto est = recorder.quantileNanos(q);
        const double bound = LatencyRecorder::maxRelativeError()
            * static_cast<double>(exact);
        EXPECT_LE(
            std::abs(static_cast<double>(est)
                     - static_cast<double>(exact)),
            bound)
            << "q=" << q << " exact=" << exact << " est=" << est;
    }
}

} // namespace

TEST(LatencyRecorder, QuantileErrorBoundNarrowDistribution)
{
    Rng rng(0xfeed0001);
    std::vector<uint64_t> samples;
    LatencyRecorder recorder;
    for (int i = 0; i < 20000; ++i) {
        // Tight band around 20us, the serve smoke's service time.
        const auto v = static_cast<uint64_t>(
            rng.uniformInt(18'000, 22'000));
        samples.push_back(v);
        recorder.record(v);
    }
    ASSERT_EQ(recorder.count(), samples.size());
    expectQuantilesWithinBound(recorder, samples);
}

TEST(LatencyRecorder, QuantileErrorBoundWideLognormal)
{
    Rng rng(0xfeed0002);
    std::vector<uint64_t> samples;
    LatencyRecorder recorder;
    for (int i = 0; i < 20000; ++i) {
        // Median e^10 ~ 22us, sigma 2: spans sub-us to seconds —
        // the open-loop backlog regime the log buckets exist for.
        const auto v =
            static_cast<uint64_t>(rng.lognormal(10.0, 2.0));
        samples.push_back(v);
        recorder.record(v);
    }
    expectQuantilesWithinBound(recorder, samples);
}

TEST(LatencyRecorder, QuantileErrorBoundHeavyTailPareto)
{
    Rng rng(0xfeed0003);
    std::vector<uint64_t> samples;
    LatencyRecorder recorder;
    for (int i = 0; i < 20000; ++i) {
        const auto v =
            static_cast<uint64_t>(rng.pareto(1000.0, 1.1));
        samples.push_back(v);
        recorder.record(v);
    }
    expectQuantilesWithinBound(recorder, samples);
}

TEST(LatencyRecorder, ValuesBelowPrecisionThresholdAreExact)
{
    LatencyRecorder recorder;
    std::vector<uint64_t> samples;
    for (uint64_t v = 0; v < (1u << LatencyRecorder::kPrecisionBits);
         ++v) {
        recorder.record(v);
        samples.push_back(v);
    }
    for (double q : kQuantiles)
        EXPECT_EQ(recorder.quantileNanos(q),
                  exactQuantile(samples, q));
    EXPECT_EQ(recorder.minNanos(), 0u);
    EXPECT_EQ(recorder.maxNanos(),
              (1u << LatencyRecorder::kPrecisionBits) - 1);
}

TEST(LatencyRecorder, MinMaxTotalAreExactEvenWhenBucketsAreNot)
{
    LatencyRecorder recorder;
    recorder.record(1'000'003);
    recorder.record(999);
    recorder.record(123'456'789);
    EXPECT_EQ(recorder.minNanos(), 999u);
    EXPECT_EQ(recorder.maxNanos(), 123'456'789u);
    EXPECT_EQ(recorder.totalNanos(), 1'000'003u + 999u + 123'456'789u);
    EXPECT_EQ(recorder.count(), 3u);
}

TEST(LatencyRecorder, MergeMatchesSingleRecorderAndIsAssociative)
{
    // Three "workers" with distinct fixed-seed sample streams.
    Rng rng_a(0xaaaa), rng_b(0xbbbb), rng_c(0xcccc);
    LatencyRecorder a, b, c, all;
    for (int i = 0; i < 5000; ++i) {
        const auto va =
            static_cast<uint64_t>(rng_a.lognormal(9.0, 1.5));
        const auto vb =
            static_cast<uint64_t>(rng_b.pareto(500.0, 1.3));
        const auto vc =
            static_cast<uint64_t>(rng_c.uniformInt(0, 1 << 20));
        a.record(va);
        b.record(vb);
        c.record(vc);
        all.record(va);
        all.record(vb);
        all.record(vc);
    }

    // (a + b) + c
    LatencyRecorder left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    LatencyRecorder bc = b;
    bc.merge(c);
    LatencyRecorder right = a;
    right.merge(bc);
    // b + a (commutativity)
    LatencyRecorder swapped = b;
    swapped.merge(a);
    LatencyRecorder forward = a;
    forward.merge(b);

    EXPECT_EQ(left, right);
    EXPECT_EQ(left, all);
    EXPECT_EQ(swapped, forward);
    EXPECT_EQ(left.count(), 15000u);
}

TEST(LatencyRecorder, MergingAnEmptyRecorderIsIdentity)
{
    Rng rng(0xfeed0004);
    LatencyRecorder recorder;
    for (int i = 0; i < 100; ++i)
        recorder.record(static_cast<uint64_t>(
            rng.uniformInt(0, 1'000'000)));
    const LatencyRecorder before = recorder;
    recorder.merge(LatencyRecorder());
    EXPECT_EQ(recorder, before);

    LatencyRecorder empty;
    empty.merge(before);
    EXPECT_EQ(empty, before);
}

TEST(LatencyRecorder, EmptyRecorderReportsZeros)
{
    const LatencyRecorder recorder;
    EXPECT_EQ(recorder.count(), 0u);
    EXPECT_EQ(recorder.minNanos(), 0u);
    EXPECT_EQ(recorder.maxNanos(), 0u);
    EXPECT_EQ(recorder.totalNanos(), 0u);
    EXPECT_EQ(recorder.meanNanos(), 0.0);
    for (double q : kQuantiles)
        EXPECT_EQ(recorder.quantileNanos(q), 0u);
}

TEST(LatencyRecorder, SingleSampleDominatesEveryQuantile)
{
    LatencyRecorder recorder;
    recorder.record(77); // below the threshold: exact
    for (double q : kQuantiles)
        EXPECT_EQ(recorder.quantileNanos(q), 77u);
    EXPECT_EQ(recorder.meanNanos(), 77.0);

    LatencyRecorder big;
    const uint64_t v = 123'456'789;
    big.record(v); // above the threshold: within relative error
    for (double q : kQuantiles) {
        const double err = std::abs(
            static_cast<double>(big.quantileNanos(q))
            - static_cast<double>(v));
        EXPECT_LE(err, LatencyRecorder::maxRelativeError()
                           * static_cast<double>(v));
    }
}

TEST(LatencyRecorder, ExtremeValuesStayInRange)
{
    LatencyRecorder recorder;
    recorder.record(0);
    recorder.record(~0ULL);
    EXPECT_EQ(recorder.count(), 2u);
    EXPECT_EQ(recorder.quantileNanos(0.0), 0u);
    const double est =
        static_cast<double>(recorder.quantileNanos(1.0));
    const double exact = static_cast<double>(~0ULL);
    EXPECT_LE(std::abs(est - exact),
              LatencyRecorder::maxRelativeError() * exact);
}
