/** @file Unit tests for TaskGroup spawn/sync semantics. */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"
#include "runtime/task_group.hpp"

using namespace hermes;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::TaskGroup;

namespace {

Runtime &
sharedRuntime()
{
    static Runtime rt([] {
        RuntimeConfig cfg;
        cfg.numWorkers = 4;
        return cfg;
    }());
    return rt;
}

} // namespace

TEST(TaskGroup, ExternalThreadSpawnAndWait)
{
    auto &rt = sharedRuntime();
    std::atomic<int> n{0};
    TaskGroup g(rt);
    for (int i = 0; i < 100; ++i)
        g.run([&] { n.fetch_add(1); });
    g.wait();
    EXPECT_EQ(n.load(), 100);
    EXPECT_EQ(g.pending(), 0);
}

TEST(TaskGroup, ReusableAfterWait)
{
    auto &rt = sharedRuntime();
    std::atomic<int> n{0};
    TaskGroup g(rt);
    g.run([&] { n.fetch_add(1); });
    g.wait();
    g.run([&] { n.fetch_add(1); });
    g.wait();
    EXPECT_EQ(n.load(), 2);
}

TEST(TaskGroup, WaitWithNothingSpawnedReturnsImmediately)
{
    auto &rt = sharedRuntime();
    TaskGroup g(rt);
    g.wait();
    SUCCEED();
}

TEST(TaskGroup, PendingVisibleDuringExecution)
{
    auto &rt = sharedRuntime();
    std::atomic<bool> release{false};
    TaskGroup g(rt);
    g.run([&] {
        while (!release.load(std::memory_order_acquire)) {
        }
    });
    EXPECT_GE(g.pending(), 1);
    release.store(true, std::memory_order_release);
    g.wait();
    EXPECT_EQ(g.pending(), 0);
}

TEST(TaskGroup, FirstExceptionWinsAndClears)
{
    auto &rt = sharedRuntime();
    TaskGroup g(rt);
    for (int i = 0; i < 4; ++i)
        g.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(g.wait(), std::runtime_error);
    // Error is consumed; the group can be reused cleanly.
    g.run([] {});
    g.wait();
    SUCCEED();
}

TEST(TaskGroup, WorkerWaitHelpsExecuteOtherTasks)
{
    auto &rt = sharedRuntime();
    std::atomic<int> n{0};
    rt.run([&] {
        TaskGroup g(rt);
        for (int i = 0; i < 200; ++i)
            g.run([&] { n.fetch_add(1); });
        // wait() on a worker thread must schedule, not block.
        g.wait();
    });
    EXPECT_EQ(n.load(), 200);
}

TEST(SubmitHandle, WaitRethrowsOnceThenIsClean)
{
    auto &rt = sharedRuntime();
    runtime::SubmitHandle handle =
        rt.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(handle.wait(), std::runtime_error);
    // The error is consumed by the first rethrow: wait() stays
    // idempotent and later waits see a clean group.
    handle.wait();
    SUCCEED();
}

TEST(SubmitHandle, ConcurrentWaitersSeeExactlyOneException)
{
    auto &rt = sharedRuntime();
    runtime::SubmitHandle handle =
        rt.submit([] { throw std::runtime_error("boom"); });
    std::atomic<int> rethrown{0};
    std::vector<std::thread> waiters;
    for (int i = 0; i < 4; ++i) {
        waiters.emplace_back([handle, &rethrown]() mutable {
            try {
                handle.wait();
            } catch (const std::runtime_error &) {
                rethrown.fetch_add(1);
            }
        });
    }
    for (std::thread &t : waiters)
        t.join();
    // The error swap under the group mutex hands the exception to
    // exactly one waiter; the rest return clean.
    EXPECT_EQ(rethrown.load(), 1);
}

TEST(SubmitHandle, DroppingAfterExceptionCountsInsteadOfCrashing)
{
    auto &rt = sharedRuntime();
    const uint64_t before = rt.droppedHandleErrors();
    {
        runtime::SubmitHandle handle =
            rt.submit([] { throw std::runtime_error("boom"); });
        // Dropped without wait(): the release drain must swallow
        // the recorded exception (a deleter cannot throw)...
    }
    // ...but not silently — the swallow is counted, so a harness
    // that sheds handles can still assert nothing failed.
    EXPECT_EQ(rt.droppedHandleErrors(), before + 1);
    EXPECT_EQ(rt.stats().droppedHandleErrors, before + 1);

    // A waited handle consumes its error and adds nothing.
    runtime::SubmitHandle waited =
        rt.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(waited.wait(), std::runtime_error);
    waited = runtime::SubmitHandle();
    EXPECT_EQ(rt.droppedHandleErrors(), before + 1);
}
