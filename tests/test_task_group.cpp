/** @file Unit tests for TaskGroup spawn/sync semantics. */

#include <atomic>

#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"
#include "runtime/task_group.hpp"

using namespace hermes;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::TaskGroup;

namespace {

Runtime &
sharedRuntime()
{
    static Runtime rt([] {
        RuntimeConfig cfg;
        cfg.numWorkers = 4;
        return cfg;
    }());
    return rt;
}

} // namespace

TEST(TaskGroup, ExternalThreadSpawnAndWait)
{
    auto &rt = sharedRuntime();
    std::atomic<int> n{0};
    TaskGroup g(rt);
    for (int i = 0; i < 100; ++i)
        g.run([&] { n.fetch_add(1); });
    g.wait();
    EXPECT_EQ(n.load(), 100);
    EXPECT_EQ(g.pending(), 0);
}

TEST(TaskGroup, ReusableAfterWait)
{
    auto &rt = sharedRuntime();
    std::atomic<int> n{0};
    TaskGroup g(rt);
    g.run([&] { n.fetch_add(1); });
    g.wait();
    g.run([&] { n.fetch_add(1); });
    g.wait();
    EXPECT_EQ(n.load(), 2);
}

TEST(TaskGroup, WaitWithNothingSpawnedReturnsImmediately)
{
    auto &rt = sharedRuntime();
    TaskGroup g(rt);
    g.wait();
    SUCCEED();
}

TEST(TaskGroup, PendingVisibleDuringExecution)
{
    auto &rt = sharedRuntime();
    std::atomic<bool> release{false};
    TaskGroup g(rt);
    g.run([&] {
        while (!release.load(std::memory_order_acquire)) {
        }
    });
    EXPECT_GE(g.pending(), 1);
    release.store(true, std::memory_order_release);
    g.wait();
    EXPECT_EQ(g.pending(), 0);
}

TEST(TaskGroup, FirstExceptionWinsAndClears)
{
    auto &rt = sharedRuntime();
    TaskGroup g(rt);
    for (int i = 0; i < 4; ++i)
        g.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(g.wait(), std::runtime_error);
    // Error is consumed; the group can be reused cleanly.
    g.run([] {});
    g.wait();
    SUCCEED();
}

TEST(TaskGroup, WorkerWaitHelpsExecuteOtherTasks)
{
    auto &rt = sharedRuntime();
    std::atomic<int> n{0};
    rt.run([&] {
        TaskGroup g(rt);
        for (int i = 0; i < 200; ++i)
            g.run([&] { n.fetch_add(1); });
        // wait() on a worker thread must schedule, not block.
        g.wait();
    });
    EXPECT_EQ(n.load(), 200);
}
