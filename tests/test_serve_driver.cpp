/**
 * @file
 * End-to-end serving-harness tests against a real Runtime: a
 * moderate-load run completes everything it accepts and runs exactly
 * the advertised schedule; structural overload (offered demand of
 * several erlangs against two workers) engages admission shedding
 * while keeping the accepted requests' p99 bounded by the watermark
 * backlog, not the run length — the acceptance criterion of the
 * open-loop harness; disabling admission accepts everything anyway;
 * and a registered-workload mix serves real parallel kernels inside
 * request bodies. Timing assertions are kept to order-of-magnitude
 * bounds so the suite survives sanitizers and one-CPU CI runners.
 */

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/serve/serve_driver.hpp"
#include "runtime/scheduler.hpp"

using namespace hermes;
using namespace hermes::harness::serve;

namespace {

runtime::RuntimeConfig
twoWorkers()
{
    runtime::RuntimeConfig config;
    config.numWorkers = 2;
    return config;
}

ServeConfig
lightLoad()
{
    ServeConfig config;
    config.arrivals.seed = 0x5e12e;
    config.arrivals.ratePerSec = 2000.0;
    config.arrivals.durationSec = 0.25;
    config.mix = {MixEntry{"spin", 1.0, 10'000}};
    config.producers = 2;
    return config;
}

} // namespace

TEST(ServeDriver, ModerateLoadCompletesEverythingItAccepts)
{
    runtime::Runtime rt(twoWorkers());
    const auto config = lightLoad();
    const ServeResult result = runServe(rt, config);

    // The driver ran exactly the schedule its config advertises.
    EXPECT_EQ(result.schedule,
              generateSchedule(result.config.arrivals));
    EXPECT_EQ(result.offered, result.schedule.size());

    // 10us demand every 500us: nothing to shed, nothing lost.
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.accepted, result.offered);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.offered, result.accepted + result.shed);

    // Every completion landed in the merged recorders.
    EXPECT_EQ(result.sojourn.count(), result.completed);
    EXPECT_EQ(result.queueing.count(), result.completed);
    EXPECT_EQ(result.service.count(), result.completed);

    // Service time is a wall-clock spin: at least the asked-for
    // 10us, and sojourn can only add queueing on top of service.
    EXPECT_GE(result.service.quantileNanos(0.5), 10'000u);
    EXPECT_GE(result.sojourn.quantileNanos(0.5),
              result.service.quantileNanos(0.5));

    // The meter sampled a positive power over a ~0.25 s run.
    EXPECT_GT(result.joules, 0.0);
    EXPECT_GT(result.joulesPerRequest, 0.0);
    EXPECT_GT(result.wallSeconds, 0.2);
    EXPECT_FALSE(result.series.empty());
    EXPECT_GT(result.stats.injected, 0u);
}

TEST(ServeDriver, OverloadShedsWithBoundedAcceptedP99)
{
    runtime::Runtime rt(twoWorkers());

    ServeConfig config;
    config.arrivals.seed = 0x10ad;
    config.arrivals.ratePerSec = 2000.0;
    config.arrivals.durationSec = 0.3;
    // 2 ms of demand every 0.5 ms: ~4 erlangs against two workers —
    // structurally overloaded on any host.
    config.mix = {MixEntry{"spin", 1.0, 2'000'000}};
    config.producers = 2;
    config.admission.highWatermark = 32;
    config.admission.lowWatermark = 8;

    const ServeResult result = runServe(rt, config);

    // Overload must engage shedding, and the books must balance.
    EXPECT_GT(result.shed, 0u);
    EXPECT_GE(result.admissionTransitions, 1u);
    EXPECT_EQ(result.offered, result.accepted + result.shed);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.sojourn.count(), result.completed);

    // The point of admission control: an accepted request waits
    // behind at most ~watermark requests, so its sojourn is bounded
    // by backlog x service — order 40 ms here — and NOT by the run
    // length. 500 ms gives an order of magnitude of scheduling slack
    // for sanitizer builds on one-CPU runners while still being far
    // below what an unshed 300 ms x 4-erlang backlog would produce.
    EXPECT_LT(result.sojourn.quantileNanos(0.99), 500'000'000u);

    // Shedding kept the backlog near the watermark; the final
    // telemetry must show a drained queue.
    EXPECT_EQ(result.inject.pending, 0u);
}

TEST(ServeDriver, DisablingAdmissionAcceptsEverything)
{
    runtime::Runtime rt(twoWorkers());

    ServeConfig config;
    config.arrivals.seed = 0xacce;
    config.arrivals.ratePerSec = 1000.0;
    config.arrivals.durationSec = 0.2;
    config.mix = {MixEntry{"spin", 1.0, 1'000'000}};
    config.producers = 2;
    config.admissionEnabled = false;
    config.admission.highWatermark = 4; // would shed hard if enabled
    config.admission.lowWatermark = 1;

    const ServeResult result = runServe(rt, config);
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.accepted, result.offered);
    EXPECT_EQ(result.completed, result.offered);
    EXPECT_EQ(result.admissionTransitions, 0u);
}

TEST(ServeDriver, RegisteredWorkloadMixServesRealKernels)
{
    runtime::Runtime rt(twoWorkers());

    ServeConfig config;
    config.arrivals.seed = 0x3017;
    config.arrivals.ratePerSec = 400.0;
    config.arrivals.durationSec = 0.2;
    MixEntry spin{"spin", 1.0, 10'000};
    MixEntry sort;
    sort.name = "sort";
    sort.weight = 1.0;
    sort.workload = "sort";
    sort.scale = 512;
    config.mix = {spin, sort};
    config.producers = 1;

    const ServeResult result = runServe(rt, config);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.sojourn.count(), result.completed);
    // Both mix entries actually arrived.
    bool saw[2] = {false, false};
    for (const Arrival &a : result.schedule)
        saw[a.mixIndex] = true;
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
}

TEST(ServeDriver, RunBundleContainsTheFourArtifacts)
{
    runtime::Runtime rt(twoWorkers());
    auto config = lightLoad();
    config.arrivals.ratePerSec = 500.0;
    config.arrivals.durationSec = 0.1;
    const ServeResult result = runServe(rt, config);

    const std::string dir = testing::TempDir() + "serve_bundle";
    writeRunBundle(dir, result);
    for (const char *name :
         {"config.json", "summary.json", "timeseries.csv",
          "schedule.csv"}) {
        EXPECT_TRUE(
            std::filesystem::exists(dir + "/" + std::string(name)))
            << name;
    }

    // The summary must carry the gateable counters and the tail
    // quantiles the acceptance criteria name.
    std::ifstream in(dir + "/summary.json");
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    for (const char *key :
         {"\"shed_frac\"", "\"inject_fast_frac\"",
          "\"completed_eq_accepted\"", "\"sojourn_p50_ns\"",
          "\"sojourn_p99_ns\"", "\"sojourn_p999_ns\"",
          "\"joules_per_request\"", "\"run_type\": \"iteration\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    std::filesystem::remove_all(dir);
}

TEST(ServeDriver, FaultsOffLeavesOutcomeCountersTrivial)
{
    runtime::Runtime rt(twoWorkers());
    auto config = lightLoad();
    ASSERT_FALSE(config.faults.enabled);
    const ServeResult result = runServe(rt, config);

    // Without a faults block every accepted request is a
    // first-attempt success and no chaos machinery ran.
    EXPECT_EQ(result.ok, result.accepted);
    EXPECT_EQ(result.retriedOk, 0u);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.deadlineExpired, 0u);
    EXPECT_EQ(result.retriesSpent, 0u);
    EXPECT_EQ(result.stragglers, 0u);
    EXPECT_EQ(result.injectedFaults, 0u);
    EXPECT_TRUE(result.faultPlan.requests.empty());
    EXPECT_EQ(result.successSojourn.count(), result.completed);
}

TEST(ServeDriver, InjectedFailuresFollowThePlanExactly)
{
    runtime::Runtime rt(twoWorkers());
    auto config = lightLoad();
    config.faults.enabled = true;
    config.faults.failProb = 0.3;
    config.faults.maxRetries = 2;
    config.faults.retryBackoffMs = 0.05;

    const ServeResult result = runServe(rt, config);

    // Light load, no deadline: nothing sheds, so every outcome is a
    // pure function of the precomputed plan.
    ASSERT_EQ(result.shed, 0u);
    uint64_t plan_ok = 0, plan_retried = 0, plan_failed = 0,
             plan_retries = 0;
    for (const auto &rf : result.faultPlan.requests) {
        if (rf.failAttempts == 0) {
            plan_ok += 1;
        } else if (rf.failAttempts <= config.faults.maxRetries) {
            plan_retried += 1;
            plan_retries += rf.failAttempts;
        } else {
            plan_failed += 1;
            plan_retries += config.faults.maxRetries;
        }
    }
    EXPECT_EQ(result.ok, plan_ok);
    EXPECT_EQ(result.retriedOk, plan_retried);
    EXPECT_EQ(result.failed, plan_failed);
    EXPECT_EQ(result.retriesSpent, plan_retries);
    EXPECT_EQ(result.deadlineExpired, 0u);

    // The reconciliation identity and the retry bound.
    EXPECT_EQ(result.offered,
              result.shed + result.ok + result.retriedOk
                  + result.failed + result.deadlineExpired);
    EXPECT_LE(result.retriesSpent,
              result.accepted
                  * static_cast<uint64_t>(config.faults.maxRetries));

    // Failed requests complete (terminal) but never reach the
    // latency recorders; goodput counts only successes.
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.sojourn.count(), result.ok + result.retriedOk);
    EXPECT_EQ(result.successSojourn.count(),
              result.ok + result.retriedOk);
    EXPECT_GT(result.goodputPerSec, 0.0);
}

TEST(ServeDriver, ExpiredDeadlinesAreCountedNotWaitedOn)
{
    runtime::Runtime rt(twoWorkers());
    auto config = lightLoad();
    config.faults.enabled = true;
    // A 1 us deadline: essentially every request is already late by
    // the time a worker picks it up.
    config.faults.deadlineMs = 0.001;

    const ServeResult result = runServe(rt, config);

    EXPECT_GE(result.deadlineExpired, 1u);
    EXPECT_EQ(result.offered,
              result.shed + result.ok + result.retriedOk
                  + result.failed + result.deadlineExpired);
    // Expired requests are terminal: the run drains completely and
    // only actual successes land in the latency recorders.
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.sojourn.count(), result.ok + result.retriedOk);
}

TEST(ServeDriver, StragglersInflateServiceTime)
{
    runtime::Runtime rt(twoWorkers());
    auto config = lightLoad();
    config.arrivals.ratePerSec = 500.0;
    config.arrivals.durationSec = 0.2;
    config.faults.enabled = true;
    config.faults.stragglerProb = 1.0;
    config.faults.stragglerFactor = 4.0;

    const ServeResult result = runServe(rt, config);
    EXPECT_EQ(result.stragglers, result.accepted);
    // Every service time was stretched to ~4x the 10 us kernel.
    EXPECT_GE(result.service.quantileNanos(0.5), 30'000u);
}

TEST(ServeDriver, ChaosBundleAddsFaultArtifactsGatedOnEnable)
{
    runtime::Runtime rt(twoWorkers());
    auto config = lightLoad();
    config.arrivals.ratePerSec = 500.0;
    config.arrivals.durationSec = 0.1;
    config.faults.enabled = true;
    config.faults.failProb = 0.3;
    config.faults.maxRetries = 1;
    const ServeResult result = runServe(rt, config);

    const std::string dir = testing::TempDir() + "serve_chaos_bundle";
    writeRunBundle(dir, result);
    EXPECT_TRUE(std::filesystem::exists(dir + "/faults.csv"));

    std::ifstream in(dir + "/summary.json");
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    for (const char *key :
         {"\"ok\"", "\"retried_ok\"", "\"failed\"",
          "\"deadline_expired\"", "\"goodput_per_sec\"",
          "\"success_p99_ns\"", "\"watchdog_stalls\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    std::ifstream csv(dir + "/timeseries.csv");
    std::string header;
    std::getline(csv, header);
    EXPECT_NE(header.find("stalled_workers"), std::string::npos);

    // The config echo carries the faults block (gated on enable).
    std::ifstream cfg(dir + "/config.json");
    std::string cfg_json((std::istreambuf_iterator<char>(cfg)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(cfg_json.find("\"faults\""), std::string::npos);
    EXPECT_NE(cfg_json.find("\"fail_prob\""), std::string::npos);
    std::filesystem::remove_all(dir);
}
