/**
 * @file
 * End-to-end serving-harness tests against a real Runtime: a
 * moderate-load run completes everything it accepts and runs exactly
 * the advertised schedule; structural overload (offered demand of
 * several erlangs against two workers) engages admission shedding
 * while keeping the accepted requests' p99 bounded by the watermark
 * backlog, not the run length — the acceptance criterion of the
 * open-loop harness; disabling admission accepts everything anyway;
 * and a registered-workload mix serves real parallel kernels inside
 * request bodies. Timing assertions are kept to order-of-magnitude
 * bounds so the suite survives sanitizers and one-CPU CI runners.
 */

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/serve/serve_driver.hpp"
#include "runtime/scheduler.hpp"

using namespace hermes;
using namespace hermes::harness::serve;

namespace {

runtime::RuntimeConfig
twoWorkers()
{
    runtime::RuntimeConfig config;
    config.numWorkers = 2;
    return config;
}

ServeConfig
lightLoad()
{
    ServeConfig config;
    config.arrivals.seed = 0x5e12e;
    config.arrivals.ratePerSec = 2000.0;
    config.arrivals.durationSec = 0.25;
    config.mix = {MixEntry{"spin", 1.0, 10'000}};
    config.producers = 2;
    return config;
}

} // namespace

TEST(ServeDriver, ModerateLoadCompletesEverythingItAccepts)
{
    runtime::Runtime rt(twoWorkers());
    const auto config = lightLoad();
    const ServeResult result = runServe(rt, config);

    // The driver ran exactly the schedule its config advertises.
    EXPECT_EQ(result.schedule,
              generateSchedule(result.config.arrivals));
    EXPECT_EQ(result.offered, result.schedule.size());

    // 10us demand every 500us: nothing to shed, nothing lost.
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.accepted, result.offered);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.offered, result.accepted + result.shed);

    // Every completion landed in the merged recorders.
    EXPECT_EQ(result.sojourn.count(), result.completed);
    EXPECT_EQ(result.queueing.count(), result.completed);
    EXPECT_EQ(result.service.count(), result.completed);

    // Service time is a wall-clock spin: at least the asked-for
    // 10us, and sojourn can only add queueing on top of service.
    EXPECT_GE(result.service.quantileNanos(0.5), 10'000u);
    EXPECT_GE(result.sojourn.quantileNanos(0.5),
              result.service.quantileNanos(0.5));

    // The meter sampled a positive power over a ~0.25 s run.
    EXPECT_GT(result.joules, 0.0);
    EXPECT_GT(result.joulesPerRequest, 0.0);
    EXPECT_GT(result.wallSeconds, 0.2);
    EXPECT_FALSE(result.series.empty());
    EXPECT_GT(result.stats.injected, 0u);
}

TEST(ServeDriver, OverloadShedsWithBoundedAcceptedP99)
{
    runtime::Runtime rt(twoWorkers());

    ServeConfig config;
    config.arrivals.seed = 0x10ad;
    config.arrivals.ratePerSec = 2000.0;
    config.arrivals.durationSec = 0.3;
    // 2 ms of demand every 0.5 ms: ~4 erlangs against two workers —
    // structurally overloaded on any host.
    config.mix = {MixEntry{"spin", 1.0, 2'000'000}};
    config.producers = 2;
    config.admission.highWatermark = 32;
    config.admission.lowWatermark = 8;

    const ServeResult result = runServe(rt, config);

    // Overload must engage shedding, and the books must balance.
    EXPECT_GT(result.shed, 0u);
    EXPECT_GE(result.admissionTransitions, 1u);
    EXPECT_EQ(result.offered, result.accepted + result.shed);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.sojourn.count(), result.completed);

    // The point of admission control: an accepted request waits
    // behind at most ~watermark requests, so its sojourn is bounded
    // by backlog x service — order 40 ms here — and NOT by the run
    // length. 500 ms gives an order of magnitude of scheduling slack
    // for sanitizer builds on one-CPU runners while still being far
    // below what an unshed 300 ms x 4-erlang backlog would produce.
    EXPECT_LT(result.sojourn.quantileNanos(0.99), 500'000'000u);

    // Shedding kept the backlog near the watermark; the final
    // telemetry must show a drained queue.
    EXPECT_EQ(result.inject.pending, 0u);
}

TEST(ServeDriver, DisablingAdmissionAcceptsEverything)
{
    runtime::Runtime rt(twoWorkers());

    ServeConfig config;
    config.arrivals.seed = 0xacce;
    config.arrivals.ratePerSec = 1000.0;
    config.arrivals.durationSec = 0.2;
    config.mix = {MixEntry{"spin", 1.0, 1'000'000}};
    config.producers = 2;
    config.admissionEnabled = false;
    config.admission.highWatermark = 4; // would shed hard if enabled
    config.admission.lowWatermark = 1;

    const ServeResult result = runServe(rt, config);
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.accepted, result.offered);
    EXPECT_EQ(result.completed, result.offered);
    EXPECT_EQ(result.admissionTransitions, 0u);
}

TEST(ServeDriver, RegisteredWorkloadMixServesRealKernels)
{
    runtime::Runtime rt(twoWorkers());

    ServeConfig config;
    config.arrivals.seed = 0x3017;
    config.arrivals.ratePerSec = 400.0;
    config.arrivals.durationSec = 0.2;
    MixEntry spin{"spin", 1.0, 10'000};
    MixEntry sort;
    sort.name = "sort";
    sort.weight = 1.0;
    sort.workload = "sort";
    sort.scale = 512;
    config.mix = {spin, sort};
    config.producers = 1;

    const ServeResult result = runServe(rt, config);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.sojourn.count(), result.completed);
    // Both mix entries actually arrived.
    bool saw[2] = {false, false};
    for (const Arrival &a : result.schedule)
        saw[a.mixIndex] = true;
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
}

TEST(ServeDriver, RunBundleContainsTheFourArtifacts)
{
    runtime::Runtime rt(twoWorkers());
    auto config = lightLoad();
    config.arrivals.ratePerSec = 500.0;
    config.arrivals.durationSec = 0.1;
    const ServeResult result = runServe(rt, config);

    const std::string dir = testing::TempDir() + "serve_bundle";
    writeRunBundle(dir, result);
    for (const char *name :
         {"config.json", "summary.json", "timeseries.csv",
          "schedule.csv"}) {
        EXPECT_TRUE(
            std::filesystem::exists(dir + "/" + std::string(name)))
            << name;
    }

    // The summary must carry the gateable counters and the tail
    // quantiles the acceptance criteria name.
    std::ifstream in(dir + "/summary.json");
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    for (const char *key :
         {"\"shed_frac\"", "\"inject_fast_frac\"",
          "\"completed_eq_accepted\"", "\"sojourn_p50_ns\"",
          "\"sojourn_p99_ns\"", "\"sojourn_p999_ns\"",
          "\"joules_per_request\"", "\"run_type\": \"iteration\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    std::filesystem::remove_all(dir);
}
