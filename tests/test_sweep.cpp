/**
 * @file
 * The sweep layer: schema (sweep block validation and variant
 * override resolution), the pure reducer (per-variant grouping,
 * monotone accepted-rate ordering, knee detection, gate verdicts),
 * and the determinism contract — equal inputs must serialize to
 * byte-identical curves.json.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/scenario/scenario_config.hpp"
#include "harness/sweep/curves.hpp"
#include "harness/sweep/sweep_runner.hpp"

using namespace hermes::harness;

namespace {

const char *const kSweepScenario = R"({
  "name": "sweep_unit",
  "kind": "serve",
  "seed": 7,
  "runtime": {"workers": 2, "parking": true},
  "dvfs": {"tempo": false},
  "serve": {"rate_per_sec": 1000, "duration_sec": 0.05},
  "sweep": {
    "rates_per_sec": [1000, 2000, 4000],
    "knee_p99_ns": 1000000,
    "variants": [
      {"name": "base"},
      {"name": "tempo", "dvfs": {"tempo": true}}
    ],
    "gates": {
      "completed_eq_accepted":
        {"direction": "higher", "max_regression": 0.0}
    }
  }
})";

scenario::ScenarioConfig
sweepConfig()
{
    const auto loaded = scenario::parseScenario(kSweepScenario);
    EXPECT_TRUE(loaded.ok);
    return loaded.config;
}

/** A synthetic point with the metrics the reducer consumes. */
sweep::SweepPoint
makePoint(const std::string &variant, double rate, double p99_ns,
          double accepted_rate)
{
    sweep::SweepPoint p;
    p.variant = variant;
    p.ratePerSec = rate;
    p.wallSeconds = 0.05;
    p.metrics["accepted_rate_per_sec"] = accepted_rate;
    p.metrics["sojourn_p50_ns"] = p99_ns / 4.0;
    p.metrics["sojourn_p99_ns"] = p99_ns;
    p.metrics["sojourn_p999_ns"] = p99_ns * 2.0;
    p.metrics["joules_per_request"] = 0.01;
    p.metrics["mean_parked_fraction"] = 0.5;
    p.metrics["package_watts_mean"] = 20.0;
    p.metrics["shed_frac"] = 0.0;
    p.metrics["completed_eq_accepted"] = 1.0;
    p.deterministic.emplace_back("offered",
                                 static_cast<uint64_t>(rate / 20));
    p.deterministic.emplace_back(
        "schedule_hash", 0x8000000000000000ULL + uint64_t(rate));
    return p;
}

} // namespace

// --- schema -------------------------------------------------------

TEST(SweepSchema, ParsesAndResolvesVariantOverrides)
{
    const auto config = sweepConfig();
    ASSERT_TRUE(config.sweep.enabled);
    ASSERT_EQ(config.sweep.ratesPerSec.size(), 3u);
    ASSERT_EQ(config.sweep.variants.size(), 2u);
    EXPECT_EQ(config.sweep.kneeP99Ns, 1e6);
    ASSERT_EQ(config.sweep.gates.size(), 1u);

    // Variants resolve from the base policies; only the overridden
    // keys differ.
    const auto &base = config.sweep.variants[0];
    const auto &tempo = config.sweep.variants[1];
    EXPECT_EQ(base.name, "base");
    EXPECT_FALSE(base.dvfs.tempo);
    EXPECT_TRUE(tempo.dvfs.tempo);
    EXPECT_EQ(base.runtime.workers, 2u);
    EXPECT_EQ(tempo.runtime.workers, 2u);
    EXPECT_TRUE(tempo.runtime.parking);
}

TEST(SweepSchema, NoSweepBlockLeavesSweepDisabled)
{
    const auto loaded = scenario::parseScenario(
        R"({"name": "plain", "kind": "serve"})");
    ASSERT_TRUE(loaded.ok);
    EXPECT_FALSE(loaded.config.sweep.enabled);
}

TEST(SweepSchema, RejectsNonIncreasingRates)
{
    std::string text = kSweepScenario;
    text.replace(text.find("[1000, 2000, 4000]"),
                 std::string("[1000, 2000, 4000]").size(),
                 "[1000, 1000, 4000]");
    const auto loaded = scenario::parseScenario(text);
    EXPECT_FALSE(loaded.ok);
    bool found = false;
    for (const auto &d : loaded.diags)
        found |= d.pointer == "/sweep/rates_per_sec/1";
    EXPECT_TRUE(found);
}

TEST(SweepSchema, RejectsSweepOnNonServeKinds)
{
    const auto loaded = scenario::parseScenario(R"({
      "name": "bad", "kind": "fork_join",
      "sweep": {"rates_per_sec": [1], "variants": [{"name": "a"}]}
    })");
    EXPECT_FALSE(loaded.ok);
    bool found = false;
    for (const auto &d : loaded.diags)
        found |= d.pointer == "/sweep";
    EXPECT_TRUE(found);
}

TEST(SweepSchema, RejectsDuplicateVariantNamesAndBadNames)
{
    const auto dup = scenario::parseScenario(R"({
      "name": "bad", "kind": "serve",
      "sweep": {"rates_per_sec": [1],
                "variants": [{"name": "a"}, {"name": "a"}]}
    })");
    EXPECT_FALSE(dup.ok);

    const auto bad = scenario::parseScenario(R"({
      "name": "bad", "kind": "serve",
      "sweep": {"rates_per_sec": [1],
                "variants": [{"name": "a/b"}]}
    })");
    EXPECT_FALSE(bad.ok);
}

TEST(SweepSchema, GatesRequireTwoVariants)
{
    const auto loaded = scenario::parseScenario(R"({
      "name": "bad", "kind": "serve",
      "sweep": {"rates_per_sec": [1],
                "variants": [{"name": "only"}],
                "gates": {"x": {"direction": "higher"}}}
    })");
    EXPECT_FALSE(loaded.ok);
}

TEST(SweepSchema, EchoWithSweepBlockIsAFixpoint)
{
    const auto config = sweepConfig();
    const std::string echo = scenario::writeConfigJson(config);
    const auto reparsed = scenario::parseScenario(echo);
    ASSERT_TRUE(reparsed.ok)
        << (reparsed.diags.empty()
                ? ""
                : reparsed.diags.front().toString());
    EXPECT_EQ(scenario::writeConfigJson(reparsed.config), echo);
}

TEST(SweepSchema, UnknownSweepKeyIsDiagnosed)
{
    std::string text = kSweepScenario;
    text.replace(text.find("\"knee_p99_ns\""),
                 std::string("\"knee_p99_ns\"").size(),
                 "\"knee_p99ns\"");
    const auto loaded = scenario::parseScenario(text);
    EXPECT_FALSE(loaded.ok);
}

// --- point configs ------------------------------------------------

TEST(SweepRunner, PointConfigAppliesVariantAndStripsSweep)
{
    const auto config = sweepConfig();
    const auto derived = sweep::pointConfig(
        config, config.sweep.variants[1], 4000.0, 2);
    EXPECT_EQ(derived.name, "sweep_unit_tempo_p2");
    EXPECT_TRUE(derived.dvfs.tempo);
    EXPECT_EQ(derived.serve.ratePerSec, 4000.0);
    EXPECT_FALSE(derived.sweep.enabled);
    // The derived config is itself a valid scenario.
    const auto echo = scenario::writeConfigJson(derived);
    EXPECT_TRUE(scenario::parseScenario(echo).ok);
}

TEST(SweepRunner, PointDirEncodesVariantAndRate)
{
    EXPECT_EQ(sweep::pointDir("out", "tempo", 4000.0),
              "out/points/tempo/rate_4000");
}

// --- reducer ------------------------------------------------------

TEST(SweepReduce, GroupsPerVariantWithRatesAscending)
{
    const auto config = sweepConfig();
    // Feed points shuffled: grid order must come from the sweep
    // block, not input order.
    std::vector<sweep::SweepPoint> points = {
        makePoint("tempo", 4000, 3e6, 3500),
        makePoint("base", 1000, 4e5, 1000),
        makePoint("tempo", 1000, 5e5, 1000),
        makePoint("base", 4000, 2e6, 3600),
        makePoint("base", 2000, 8e5, 2000),
        makePoint("tempo", 2000, 9e5, 2000),
    };
    const auto curves = sweep::reduceSweep(config, points);
    ASSERT_EQ(curves.variants.size(), 2u);
    EXPECT_TRUE(curves.notes.empty());
    EXPECT_EQ(curves.variants[0].variant, "base");
    EXPECT_EQ(curves.variants[1].variant, "tempo");
    for (const auto &vc : curves.variants) {
        ASSERT_EQ(vc.points.size(), 3u);
        // Offered rates ascend, and (for these synthetic inputs)
        // accepted rate is monotone non-decreasing along the curve.
        for (size_t i = 1; i < vc.points.size(); ++i) {
            EXPECT_GT(vc.points[i].ratePerSec,
                      vc.points[i - 1].ratePerSec);
            EXPECT_GE(vc.points[i].acceptedRatePerSec,
                      vc.points[i - 1].acceptedRatePerSec);
        }
    }
}

TEST(SweepReduce, DetectsTheKneeAtTheFirstCrossing)
{
    const auto config = sweepConfig(); // knee bound 1e6 ns
    std::vector<sweep::SweepPoint> points = {
        makePoint("base", 1000, 4e5, 1000),
        makePoint("base", 2000, 8e5, 2000),
        makePoint("base", 4000, 2e6, 3600), // first above 1e6
        makePoint("tempo", 1000, 5e5, 1000),
        makePoint("tempo", 2000, 9e5, 2000),
        makePoint("tempo", 4000, 9.9e5, 3900), // never crosses
    };
    const auto curves = sweep::reduceSweep(config, points);
    ASSERT_EQ(curves.variants.size(), 2u);
    EXPECT_TRUE(curves.variants[0].kneeFound);
    EXPECT_EQ(curves.variants[0].kneeRatePerSec, 4000.0);
    EXPECT_FALSE(curves.variants[1].kneeFound);

    const std::string md = sweep::writeCurvesMd(config, curves);
    EXPECT_NE(md.find("knee at **4000 req/s**"), std::string::npos);
    EXPECT_NE(md.find("no knee within the swept range"),
              std::string::npos);
}

TEST(SweepReduce, GatesCompareVariantsAgainstTheFirst)
{
    const auto config = sweepConfig();
    std::vector<sweep::SweepPoint> points;
    for (double rate : {1000.0, 2000.0, 4000.0}) {
        points.push_back(makePoint("base", rate, 4e5, rate));
        points.push_back(makePoint("tempo", rate, 5e5, rate));
    }
    // All completed_eq_accepted are 1.0 -> gates pass.
    auto curves = sweep::reduceSweep(config, points);
    EXPECT_FALSE(curves.gateFailure);
    ASSERT_EQ(curves.gates.size(), 3u); // 1 gate x 1 variant x 3 rates
    for (const auto &g : curves.gates) {
        EXPECT_EQ(g.variant, "tempo");
        EXPECT_FALSE(g.failed);
    }

    // Break one cell in the non-baseline variant: pinned-higher
    // metric drops 1.0 -> 0.0 at rate 2000.
    points[3].metrics["completed_eq_accepted"] = 0.0;
    curves = sweep::reduceSweep(config, points);
    EXPECT_TRUE(curves.gateFailure);
    size_t failed = 0;
    for (const auto &g : curves.gates)
        failed += g.failed ? 1 : 0;
    EXPECT_EQ(failed, 1u);
    const std::string md = sweep::writeCurvesMd(config, curves);
    EXPECT_NE(md.find("**FAIL**"), std::string::npos);
}

TEST(SweepReduce, MissingCellsAreNotedNotFatal)
{
    const auto config = sweepConfig();
    std::vector<sweep::SweepPoint> points = {
        makePoint("base", 1000, 4e5, 1000),
        // base@2000, base@4000, and all of tempo missing.
    };
    const auto curves = sweep::reduceSweep(config, points);
    ASSERT_EQ(curves.variants.size(), 2u);
    EXPECT_EQ(curves.variants[0].points.size(), 1u);
    EXPECT_TRUE(curves.variants[1].points.empty());
    EXPECT_EQ(curves.notes.size(), 5u);
}

TEST(SweepReduce, CurvesJsonIsDeterministicAndCarriesTheContract)
{
    const auto config = sweepConfig();
    std::vector<sweep::SweepPoint> points;
    for (double rate : {1000.0, 2000.0, 4000.0}) {
        points.push_back(makePoint("base", rate, 4e5, rate));
        points.push_back(makePoint("tempo", rate, 5e5, rate));
    }
    const auto curves = sweep::reduceSweep(config, points);
    const std::string a = sweep::writeCurvesJson(config, curves);

    // Shuffled input, same grid -> byte-identical curves.json.
    std::vector<sweep::SweepPoint> shuffled(points.rbegin(),
                                            points.rend());
    const std::string b = sweep::writeCurvesJson(
        config, sweep::reduceSweep(config, shuffled));
    EXPECT_EQ(a, b);

    // The deterministic section preserves full 64-bit values (a
    // schedule hash above 2^63 must round-trip unmangled).
    EXPECT_NE(a.find("\"schedule_hash\": 9223372036854776808"),
              std::string::npos);
    // Per-variant arrays the ISSUE promises are all present.
    for (const char *key :
         {"\"offered_rate_per_sec\"", "\"accepted_rate_per_sec\"",
          "\"sojourn_p50_ns\"", "\"sojourn_p99_ns\"",
          "\"sojourn_p999_ns\"", "\"joules_per_request\"",
          "\"mean_parked_fraction\"", "\"package_watts_mean\""})
        EXPECT_NE(a.find(key), std::string::npos) << key;
}

TEST(SweepReduce, CurvesMdRendersTablesAndThreeCharts)
{
    const auto config = sweepConfig();
    std::vector<sweep::SweepPoint> points;
    for (double rate : {1000.0, 2000.0, 4000.0}) {
        points.push_back(makePoint("base", rate, 4e5, rate));
        points.push_back(makePoint("tempo", rate, 5e5, rate));
    }
    const std::string md = sweep::writeCurvesMd(
        config, sweep::reduceSweep(config, points));
    EXPECT_NE(md.find("## Variant `base`"), std::string::npos);
    EXPECT_NE(md.find("## Variant `tempo`"), std::string::npos);
    size_t svgs = 0;
    for (size_t at = md.find("<svg"); at != std::string::npos;
         at = md.find("<svg", at + 1))
        ++svgs;
    EXPECT_EQ(svgs, 3u); // latency, energy, power — never dual-axis
}
