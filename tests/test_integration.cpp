/**
 * @file
 * End-to-end integration tests: the full pipeline (generator ->
 * simulator -> tempo controller -> energy ledger -> harness) must
 * reproduce the paper's qualitative claims, and the two execution
 * substrates must drive the identical controller code.
 */

#include <gtest/gtest.h>

#include "dvfs/simulated.hpp"
#include "harness/experiment.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"
#include "sim/dag_generators.hpp"
#include "sim/simulator.hpp"
#include "workloads/registry.hpp"

using namespace hermes;

namespace {

harness::ExperimentConfig
cfgFor(const std::string &bench, unsigned workers,
       const platform::SystemProfile &profile)
{
    harness::ExperimentConfig cfg;
    cfg.profile = profile;
    cfg.benchmark = bench;
    cfg.workers = workers;
    cfg.trials = 5;
    cfg.warmupTrials = 1;
    return cfg;
}

} // namespace

TEST(Integration, PaperHeadlineShapeSystemB)
{
    // Every benchmark at full System B width: positive savings,
    // bounded loss, EDP <= ~1 (the paper: EDP improved without
    // exception).
    for (const auto &bench : sim::benchmarkNames()) {
        const auto cmp = harness::compareToBaseline(
            cfgFor(bench, 4, platform::systemB()));
        EXPECT_GT(cmp.energySavings(), 0.0) << bench;
        EXPECT_LT(cmp.timeLoss(), 0.10) << bench;
        EXPECT_LT(cmp.normalizedEdp(), 1.03) << bench;
    }
}

TEST(Integration, UnifiedBeatsSingleStrategiesOnTimeLoss)
{
    // The paper's complementarity claim, averaged over benchmarks:
    // each strategy alone loses more time than unified.
    double unified_loss = 0.0, single_loss = 0.0;
    for (const auto &bench : sim::benchmarkNames()) {
        auto cfg = cfgFor(bench, 16, platform::systemA());
        const auto cu = harness::compareToBaseline(cfg);
        cfg.policy = core::TempoPolicy::WorkpathOnly;
        const auto cp = harness::compareToBaseline(cfg);
        cfg.policy = core::TempoPolicy::WorkloadOnly;
        const auto cl = harness::compareToBaseline(cfg);
        unified_loss += cu.timeLoss();
        single_loss += 0.5 * (cp.timeLoss() + cl.timeLoss());
    }
    EXPECT_LT(unified_loss, single_loss);
}

TEST(Integration, UnifiedBalancesSavingsAgainstLoss)
{
    // Averaged over benchmarks: unified saves more energy than
    // workpath-only, while workload-only (which lacks the relay and
    // the head guard) over-slows — more raw savings but materially
    // more time loss than unified. See EXPERIMENTS.md for how this
    // compares with the paper's Figures 10-13.
    double unified_e = 0.0, workpath_e = 0.0, workload_e = 0.0;
    double unified_t = 0.0, workload_t = 0.0;
    double unified_edp = 0.0;
    for (const auto &bench : sim::benchmarkNames()) {
        auto cfg = cfgFor(bench, 16, platform::systemA());
        const auto cu = harness::compareToBaseline(cfg);
        unified_e += cu.energySavings();
        unified_t += cu.timeLoss();
        unified_edp += cu.normalizedEdp();
        cfg.policy = core::TempoPolicy::WorkpathOnly;
        workpath_e +=
            harness::compareToBaseline(cfg).energySavings();
        cfg.policy = core::TempoPolicy::WorkloadOnly;
        const auto cl = harness::compareToBaseline(cfg);
        workload_e += cl.energySavings();
        workload_t += cl.timeLoss();
    }
    // Every policy saves energy on average.
    EXPECT_GT(unified_e, 0.0);
    EXPECT_GT(workpath_e, 0.0);
    EXPECT_GT(workload_e, 0.0);
    // Unified's hallmark is the trade: markedly less time loss than
    // the aggressive workload-only arm, with EDP below baseline.
    EXPECT_LT(unified_t, workload_t);
    EXPECT_LT(unified_edp / 5.0, 1.0);
}

TEST(Integration, ThreadedRuntimeRunsWorkloadsUnderTempo)
{
    runtime::RuntimeConfig cfg;
    cfg.numWorkers = 4;
    cfg.enableTempo = true;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    runtime::Runtime rt(cfg);

    for (const auto &name : workloads::workloadNames()) {
        const uint64_t sum = workloads::runWorkload(rt, name, 30000,
                                                    5);
        EXPECT_NE(sum, 0u) << name;
    }
    // The controller observed real scheduler traffic.
    const auto k = rt.tempo()->counters();
    EXPECT_GT(k.outOfWorkEvents, 0u);
    EXPECT_GT(rt.backend().transitionCount(), 0u);
}

TEST(Integration, ControllerIsSubstrateAgnostic)
{
    // Replaying one hook trace into two controllers (different
    // backends) must produce identical tempo trajectories — the
    // property that lets the threaded runtime and the simulator
    // share the algorithm implementation.
    const auto ladder = platform::FrequencyLadder({2400, 1900,
                                                   1600});
    dvfs::SimulatedDvfs b1(8, ladder), b2(8, ladder);
    core::TempoConfig tc;
    tc.policy = core::TempoPolicy::Unified;
    tc.ladder = ladder;
    auto domain = [](core::WorkerId w) {
        return static_cast<platform::DomainId>(w);
    };
    core::TempoController c1(tc, b1, 8, domain);
    core::TempoController c2(tc, b2, 8, domain);
    c1.reset(0.0);
    c2.reset(0.0);

    util::Rng rng(77);
    std::vector<size_t> deque_size(8, 0);
    for (int i = 0; i < 5000; ++i) {
        const auto w = static_cast<core::WorkerId>(
            rng.uniformInt(0, 7));
        const double t = i * 1e-6;
        switch (rng.uniformInt(0, 3)) {
          case 0:
            c1.onPush(w, ++deque_size[w], t);
            c2.onPush(w, deque_size[w], t);
            break;
          case 1:
            if (deque_size[w] > 0) {
                c1.onPopSuccess(w, --deque_size[w], t);
                c2.onPopSuccess(w, deque_size[w], t);
            } else {
                c1.onOutOfWork(w, t);
                c2.onOutOfWork(w, t);
            }
            break;
          case 2: {
            auto v = static_cast<core::WorkerId>(
                rng.uniformInt(0, 6));
            if (v >= w)
                ++v;
            if (deque_size[v] > 0) {
                c1.onOutOfWork(w, t);
                c2.onOutOfWork(w, t);
                c1.onVictimStolen(v, --deque_size[v], t);
                c2.onVictimStolen(v, deque_size[v], t);
                c1.onStealSuccess(w, v, t);
                c2.onStealSuccess(w, v, t);
            }
            break;
          }
          default:
            break;
        }
        for (core::WorkerId x = 0; x < 8; ++x)
            ASSERT_EQ(c1.tempoOf(x), c2.tempoOf(x)) << "step " << i;
    }
    EXPECT_EQ(b1.transitionCount(), b2.transitionCount());
}

TEST(Integration, TwoFrequencyVsThreeFrequencyBothWork)
{
    // Figure 16/17's qualitative claim: both N choices deliver
    // similar results (neither degenerates).
    const auto profile = platform::systemA();
    auto cfg = cfgFor("sort", 16, profile);
    cfg.ladder = profile.ladder.select({2400, 1600});
    const auto two = harness::compareToBaseline(cfg);
    cfg.ladder = profile.ladder.select({2400, 1900, 1600});
    const auto three = harness::compareToBaseline(cfg);
    EXPECT_GT(two.energySavings(), 0.0);
    EXPECT_GT(three.energySavings(), 0.0);
    EXPECT_NEAR(two.energySavings(), three.energySavings(), 0.06);
}
