/**
 * @file
 * Unit tests for the sysfs cpufreq backend, exercised against a fake
 * sysfs tree (the container has no real cpufreq; the backend must
 * also degrade gracefully in that case).
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "dvfs/cpufreq.hpp"

using namespace hermes;
using dvfs::CpufreqDvfs;

namespace {

namespace fs = std::filesystem;

/** Builds /tmp fake: cpuN/cpufreq/{scaling_*} files. */
class FakeSysfs
{
  public:
    explicit FakeSysfs(unsigned cores)
    {
        root_ = fs::path(testing::TempDir())
            / ("hermes_sysfs_" + std::to_string(::getpid()));
        fs::remove_all(root_);
        for (unsigned c = 0; c < cores; ++c) {
            const fs::path dir = root_
                / ("cpu" + std::to_string(c)) / "cpufreq";
            fs::create_directories(dir);
            write(dir / "scaling_available_frequencies",
                  "2400000 2200000 1900000 1600000 1400000\n");
            write(dir / "scaling_governor", "ondemand\n");
            write(dir / "scaling_cur_freq", "2400000\n");
            write(dir / "scaling_setspeed", "\n");
        }
    }

    ~FakeSysfs() { fs::remove_all(root_); }

    std::string path() const { return root_.string(); }

    std::string
    read(unsigned core, const std::string &leaf) const
    {
        std::ifstream in(root_ / ("cpu" + std::to_string(core))
                         / "cpufreq" / leaf);
        std::string s;
        std::getline(in, s);
        return s;
    }

  private:
    static void
    write(const fs::path &p, const std::string &content)
    {
        std::ofstream(p) << content;
    }

    fs::path root_;
};

} // namespace

TEST(CpufreqDvfs, UnavailableHostDegradesGracefully)
{
    CpufreqDvfs b(platform::Topology(2, 1), "/nonexistent/sysfs");
    EXPECT_FALSE(b.available());
    EXPECT_EQ(b.domainFreq(0), 0u);
    b.setDomainFreq(0, 2400, 0.0);  // must be a harmless no-op
    EXPECT_TRUE(b.availableFrequencies().empty());
}

TEST(CpufreqDvfs, HostAvailableProbe)
{
    FakeSysfs fake(2);
    EXPECT_TRUE(CpufreqDvfs::hostAvailable(fake.path()));
    EXPECT_FALSE(CpufreqDvfs::hostAvailable("/nope"));
}

TEST(CpufreqDvfs, SetsUserspaceGovernorOnConstruction)
{
    FakeSysfs fake(4);
    CpufreqDvfs b(platform::Topology(4, 2), fake.path());
    ASSERT_TRUE(b.available());
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(fake.read(c, "scaling_governor"), "userspace");
}

TEST(CpufreqDvfs, ReadsAvailableFrequenciesFastestFirst)
{
    FakeSysfs fake(1);
    CpufreqDvfs b(platform::Topology(1, 1), fake.path());
    const auto freqs = b.availableFrequencies();
    ASSERT_EQ(freqs.size(), 5u);
    EXPECT_EQ(freqs.front(), 2400u);
    EXPECT_EQ(freqs.back(), 1400u);
}

TEST(CpufreqDvfs, SetWritesEveryCoreInDomain)
{
    FakeSysfs fake(4);
    CpufreqDvfs b(platform::Topology(4, 2), fake.path());
    b.setDomainFreq(1, 1600, 0.0);
    EXPECT_EQ(fake.read(2, "scaling_setspeed"), "1600000");
    EXPECT_EQ(fake.read(3, "scaling_setspeed"), "1600000");
    // Other domain untouched.
    EXPECT_EQ(fake.read(0, "scaling_setspeed"), "");
}

TEST(CpufreqDvfs, ReadsCurrentFrequency)
{
    FakeSysfs fake(2);
    CpufreqDvfs b(platform::Topology(2, 2), fake.path());
    EXPECT_EQ(b.domainFreq(0), 2400u);
}
