/** @file Unit tests for the CMOS package power model. */

#include <gtest/gtest.h>

#include "energy/power_model.hpp"
#include "platform/system_profile.hpp"

using namespace hermes;
using energy::PowerModel;

namespace {

PowerModel
modelA()
{
    return PowerModel(platform::systemA());
}

} // namespace

TEST(PowerModel, VoltageEndpointsAndLinearity)
{
    const auto m = modelA();
    const auto p = platform::systemA().power;
    EXPECT_DOUBLE_EQ(m.voltage(1400), p.voltsAtFmin);
    EXPECT_DOUBLE_EQ(m.voltage(2400), p.voltsAtFmax);
    // Midpoint of the range interpolates linearly.
    const double mid = m.voltage(1900);
    EXPECT_NEAR(mid, p.voltsAtFmin
                         + 0.5 * (p.voltsAtFmax - p.voltsAtFmin),
                1e-12);
    // Clamping outside the hardware range.
    EXPECT_DOUBLE_EQ(m.voltage(1000), p.voltsAtFmin);
    EXPECT_DOUBLE_EQ(m.voltage(4000), p.voltsAtFmax);
}

TEST(PowerModel, ActivePowerMonotoneInFrequency)
{
    const auto m = modelA();
    const auto &ladder = platform::systemA().ladder;
    for (size_t i = 0; i + 1 < ladder.size(); ++i) {
        EXPECT_GT(m.coreActivePower(ladder.at(i)),
                  m.coreActivePower(ladder.at(i + 1)))
            << "rung " << i;
    }
}

TEST(PowerModel, ActivityOrdering)
{
    const auto m = modelA();
    const auto profile = platform::systemA();
    for (auto f : profile.ladder.rungs()) {
        EXPECT_GT(m.coreActivePower(f), m.coreSpinPower(f));
        EXPECT_GT(m.coreSpinPower(f), m.parkedPower(f));
        EXPECT_GT(m.parkedPower(f), 0.0);
    }
}

TEST(PowerModel, ParkedWorkerMatchesUnoccupiedCore)
{
    // A parked worker's core is in the same C-state as a core with no
    // worker at all: the blocked thread costs nothing extra.
    const auto m = modelA();
    const auto profile = platform::systemA();
    for (auto f : profile.ladder.rungs())
        EXPECT_DOUBLE_EQ(m.parkedPower(f), m.coreIdlePower(f));
}

TEST(PowerModel, ParkingBeatsSpinningAtEveryRung)
{
    // The quantity the parking protocol banks: an idle core charged
    // parkedPower instead of coreSpinPower saves watts at any tempo,
    // because clock gating cuts both switching and a leakage share.
    const auto m = modelA();
    const auto profile = platform::systemA();
    for (auto f : profile.ladder.rungs())
        EXPECT_LT(m.parkedPower(f), m.coreSpinPower(f));
}

TEST(PowerModel, SuperlinearDropAtPaperPair)
{
    // The 2.4 -> 1.6 GHz step must cut dynamic power superlinearly:
    // frequency ratio is 2/3, but power drops by more because the
    // voltage drops too (the effect DVFS exploits).
    const auto m = modelA();
    const double fast = m.coreActivePower(2400);
    const double slow = m.coreActivePower(1600);
    EXPECT_LT(slow / fast, 2.0 / 3.0);
    EXPECT_GT(slow / fast, 0.2);
}

TEST(PowerModel, LeakageScalesWithVoltage)
{
    const auto m = modelA();
    EXPECT_GT(m.leakagePower(2400), m.leakagePower(1400));
    const auto p = platform::systemA().power;
    EXPECT_DOUBLE_EQ(m.leakagePower(2400), p.staticWatts);
}

TEST(PowerModel, UncoreIsFrequencyInvariant)
{
    const auto m = modelA();
    EXPECT_EQ(m.uncorePower(), platform::systemA().power.uncoreWatts);
}

TEST(PowerModelDeath, InvertedRangeIsRejected)
{
    EXPECT_DEATH(PowerModel(platform::systemA().power, 2400, 1400),
                 "fmax must exceed fmin");
}
