/** @file Unit tests for the threaded work-stealing runtime. */

#include <atomic>
#include <chrono>
#include <stdexcept>

#include <gtest/gtest.h>

#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"

using namespace hermes;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::TaskGroup;

namespace {

RuntimeConfig
config(unsigned workers, bool tempo = false)
{
    RuntimeConfig cfg;
    cfg.numWorkers = workers;
    cfg.enableTempo = tempo;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    return cfg;
}

long
fib(Runtime &rt, long n)
{
    if (n < 2)
        return n;
    if (n < 12)
        return fib(rt, n - 1) + fib(rt, n - 2);
    long a = 0, b = 0;
    runtime::parallelInvoke(rt, [&] { a = fib(rt, n - 1); },
                            [&] { b = fib(rt, n - 2); });
    return a + b;
}

} // namespace

TEST(Runtime, SingleWorkerRunsToCompletion)
{
    Runtime rt(config(1));
    long result = 0;
    rt.run([&] { result = fib(rt, 20); });
    EXPECT_EQ(result, 6765);
}

TEST(Runtime, FibParallelCorrect)
{
    Runtime rt(config(8));
    long result = 0;
    rt.run([&] { result = fib(rt, 27); });
    EXPECT_EQ(result, 196418);
}

TEST(Runtime, ParallelForCoversRangeExactlyOnce)
{
    Runtime rt(config(8));
    constexpr size_t n = 100000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    rt.run([&] {
        runtime::parallelFor(rt, 0, n, 128, [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Runtime, ParallelForEmptyAndTinyRanges)
{
    Runtime rt(config(4));
    std::atomic<int> count{0};
    rt.run([&] {
        runtime::parallelFor(rt, 5, 5, 8,
                             [&](size_t) { count.fetch_add(1); });
        runtime::parallelFor(rt, 0, 1, 8,
                             [&](size_t) { count.fetch_add(1); });
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(Runtime, ParallelReduceSum)
{
    Runtime rt(config(8));
    long total = 0;
    rt.run([&] {
        total = runtime::parallelReduce<long>(
            rt, 1, 100001, 256,
            [](size_t lo, size_t hi) {
                long s = 0;
                for (size_t i = lo; i < hi; ++i)
                    s += static_cast<long>(i);
                return s;
            },
            [](long a, long b) { return a + b; });
    });
    EXPECT_EQ(total, 100000L * 100001L / 2);
}

TEST(Runtime, ParallelInvokeThreeWay)
{
    Runtime rt(config(4));
    int a = 0, b = 0, c = 0;
    rt.run([&] {
        runtime::parallelInvoke(rt, [&] { a = 1; }, [&] { b = 2; },
                                [&] { c = 3; });
    });
    EXPECT_EQ(a + b + c, 6);
}

TEST(Runtime, NestedTaskGroups)
{
    Runtime rt(config(4));
    std::atomic<int> leaves{0};
    rt.run([&] {
        TaskGroup outer(rt);
        for (int i = 0; i < 8; ++i) {
            outer.run([&] {
                TaskGroup inner(rt);
                for (int j = 0; j < 8; ++j)
                    inner.run([&] { leaves.fetch_add(1); });
                inner.wait();
            });
        }
        outer.wait();
    });
    EXPECT_EQ(leaves.load(), 64);
}

TEST(Runtime, ExceptionPropagatesFromTask)
{
    Runtime rt(config(4));
    EXPECT_THROW(
        rt.run([&] { throw std::runtime_error("task failed"); }),
        std::runtime_error);
    // The runtime stays usable afterwards.
    long result = 0;
    rt.run([&] { result = fib(rt, 15); });
    EXPECT_EQ(result, 610);
}

TEST(Runtime, StatsAccountForAllTasks)
{
    Runtime rt(config(4));
    std::atomic<int> n{0};
    rt.run([&] {
        runtime::parallelFor(rt, 0, 5000, 16,
                             [&](size_t) { n.fetch_add(1); });
    });
    const auto s = rt.stats();
    EXPECT_EQ(n.load(), 5000);
    // Every executed task entered via pop, steal, inject or inline.
    EXPECT_EQ(s.executed,
              s.pops + s.steals + s.injected + s.inlined);
    EXPECT_GT(s.pushes, 0u);
}

TEST(Runtime, StealsHappenAcrossWorkers)
{
    Runtime rt(config(8));
    // A single short fib lasts only a few ms — on an oversubscribed
    // host the kernel may not schedule a single thief before the run
    // drains. Several multi-ms generations keep the pool warm:
    // thieves that joined late are already hunting when the next
    // root task arrives, so steals occur reliably even on one core.
    long result = 0;
    for (int rep = 0; rep < 3; ++rep) {
        result = 0;
        rt.run([&] { result = fib(rt, 30); });
        ASSERT_EQ(result, 832040);
    }
    EXPECT_GT(rt.stats().steals, 0u);
}

TEST(Runtime, StealParticipationUnderSustainedLoad)
{
    // Regression test for the idle-worker protocol: thieves used to
    // fall into a permanent 50 us sleep before the workload even
    // started and then probe a single victim per wake, so a pool of
    // workers executed ~everything on one worker with zero steals.
    constexpr unsigned kWorkers = 4;
    constexpr size_t kTasks = 2000;

    Runtime rt(config(kWorkers));
    std::atomic<size_t> done{0};
    rt.run([&] {
        runtime::parallelFor(rt, 0, kTasks, 1, [&](size_t) {
            // Spin ~20 us so the workload spans many scheduler
            // quanta and thieves have real time to participate.
            const auto until = std::chrono::steady_clock::now()
                + std::chrono::microseconds(20);
            while (std::chrono::steady_clock::now() < until) {
            }
            done.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(done.load(), kTasks);

    const auto total = rt.stats();
    EXPECT_GT(total.steals, 0u) << "no worker ever stole";

    uint64_t max_executed = 0;
    for (unsigned w = 0; w < kWorkers; ++w) {
        max_executed = std::max(
            max_executed, rt.workerStats(w).executed);
    }
    ASSERT_GT(total.executed, 0u);
    EXPECT_LE(static_cast<double>(max_executed),
              0.9 * static_cast<double>(total.executed))
        << "one worker executed " << max_executed << " of "
        << total.executed << " tasks";
}

TEST(Runtime, TheDequeReplayMatchesChaseLevResults)
{
    // `DequePolicy::impl = The` swaps the lock-free Chase-Lev deque
    // back for the legacy mutex-guarded THE protocol. The scheduler
    // above it must behave identically: same results, same task
    // accounting, steals still happening — and the Chase-Lev CAS
    // counters must stay silent.
    for (const bool legacy : {false, true}) {
        auto cfg = config(4);
        cfg.deque.impl = legacy ? runtime::DequeImpl::The
                                : runtime::DequeImpl::ChaseLev;
        Runtime rt(cfg);

        std::atomic<size_t> done{0};
        for (int rep = 0; rep < 2; ++rep) {
            rt.run([&] {
                runtime::parallelFor(rt, 0, 1000, 1, [&](size_t) {
                    const auto until =
                        std::chrono::steady_clock::now()
                        + std::chrono::microseconds(20);
                    while (std::chrono::steady_clock::now()
                           < until) {
                    }
                    done.fetch_add(1, std::memory_order_relaxed);
                });
            });
        }
        EXPECT_EQ(done.load(), 2000u);

        const auto s = rt.stats();
        EXPECT_GT(s.steals, 0u);
        EXPECT_EQ(s.executed,
                  s.pops + s.steals + s.injected + s.inlined);
        if (legacy) {
            // The lock-free owner pop never runs under THE.
            EXPECT_EQ(s.popCasLosses, 0u);
        }
    }
}

TEST(Runtime, TinyDequeInlinesInsteadOfDeadlocking)
{
    auto cfg = config(2);
    cfg.dequeCapacity = 2;
    Runtime rt(cfg);
    std::atomic<int> n{0};
    rt.run([&] {
        runtime::parallelFor(rt, 0, 2000, 4,
                             [&](size_t) { n.fetch_add(1); });
    });
    EXPECT_EQ(n.load(), 2000);
    EXPECT_GT(rt.stats().inlined, 0u);
}

TEST(Runtime, TempoEnabledRunIsCorrectAndActive)
{
    Runtime rt(config(8, true));
    long result = 0;
    rt.run([&] { result = fib(rt, 26); });
    EXPECT_EQ(result, 121393);
    ASSERT_NE(rt.tempo(), nullptr);
    const auto k = rt.tempo()->counters();
    EXPECT_GT(k.outOfWorkEvents, 0u);
    // Ladder resolved to the host profile's default pair.
    EXPECT_EQ(rt.tempo()->ladder().size(), 2u);
}

TEST(Runtime, DynamicSchedulingRuns)
{
    auto cfg = config(4, true);
    cfg.scheduling = runtime::SchedulingMode::Dynamic;
    Runtime rt(cfg);
    long result = 0;
    rt.run([&] { result = fib(rt, 22); });
    EXPECT_EQ(result, 17711);
    EXPECT_GT(rt.stats().affinitySets, 0u);
}

TEST(Runtime, ThrottleModeStretchesSlowWorkers)
{
    auto cfg = config(4, true);
    cfg.throttle = runtime::ThrottleMode::PostTaskSpin;
    Runtime rt(cfg);
    long result = 0;
    rt.run([&] { result = fib(rt, 22); });
    EXPECT_EQ(result, 17711);
}

TEST(Runtime, CurrentIsNullOnExternalThread)
{
    Runtime rt(config(2));
    EXPECT_EQ(Runtime::current(), nullptr);
    EXPECT_EQ(Runtime::currentWorker(), core::invalidWorker);
    bool saw_worker_context = false;
    rt.run([&] {
        saw_worker_context = Runtime::current() == &rt
            && Runtime::currentWorker() != core::invalidWorker;
    });
    EXPECT_TRUE(saw_worker_context);
}

TEST(Runtime, PackagePowerIsPositiveAndBounded)
{
    Runtime rt(config(4, true));
    const energy::PowerModel model(rt.config().profile);
    const double p = rt.packagePower(model);
    EXPECT_GT(p, 0.0);
    const double cores = rt.config().profile.topology.numCores();
    EXPECT_LT(p, model.uncorePower()
                     + cores * model.coreActivePower(
                           rt.config().profile.ladder.fastest())
                     + 1.0);
}

TEST(Runtime, SequentialRuntimesAreIndependent)
{
    for (int round = 0; round < 3; ++round) {
        Runtime rt(config(4));
        long result = 0;
        rt.run([&] { result = fib(rt, 20); });
        EXPECT_EQ(result, 6765);
    }
}
