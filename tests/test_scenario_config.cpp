/**
 * @file
 * Scenario schema validation: every rejection carries an RFC 6901
 * JSON pointer, the canonical echo is a fixpoint, and — mirroring
 * tests/test_simulator_fuzz.cpp — a thousand seeded mutations of a
 * valid document (truncation, key deletion, type swaps, byte noise)
 * never crash the parser and always yield a diagnostic or a valid
 * config, never silence.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/scenario/scenario_config.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

using namespace hermes;
using namespace hermes::harness::scenario;

namespace {

const char *const kMinimal =
    R"({"name": "x", "kind": "fork_join"})";

/** All diagnostics joined, for substring asserts. */
std::string
joined(const ScenarioLoadResult &r)
{
    std::string out;
    for (const ScenarioDiag &d : r.diags)
        out += d.toString() + "\n";
    return out;
}

} // namespace

TEST(ScenarioConfig, MinimalDocumentResolvesDefaults)
{
    const ScenarioLoadResult r = parseScenario(kMinimal);
    ASSERT_TRUE(r.ok) << joined(r);
    EXPECT_EQ(r.config.name, "x");
    EXPECT_EQ(r.config.kind, ScenarioKind::kForkJoin);
    EXPECT_EQ(r.config.runtime.workers, 2u);
    EXPECT_EQ(r.config.runtime.dequeImpl, "chaselev");
    EXPECT_TRUE(r.config.runtime.lockFreeInject);
    EXPECT_EQ(r.config.forkJoin.tasks, 256u);
    EXPECT_TRUE(r.config.thresholds.empty());
}

TEST(ScenarioConfig, UnknownKeyIsRejectedWithPointer)
{
    const ScenarioLoadResult r = parseScenario(
        R"({"name": "x", "kind": "fork_join", "bogus": 1})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(joined(r).find("/bogus"), std::string::npos)
        << joined(r);
}

TEST(ScenarioConfig, NestedTypeErrorNamesTheExactKey)
{
    const ScenarioLoadResult r = parseScenario(
        R"({"name": "x", "kind": "fork_join",
            "runtime": {"workers": "two"}})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(joined(r).find("/runtime/workers"),
              std::string::npos)
        << joined(r);
}

TEST(ScenarioConfig, DuplicateKeyIsRejected)
{
    const ScenarioLoadResult r = parseScenario(
        R"({"name": "x", "kind": "fork_join",
            "seed": 1, "seed": 2})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(joined(r).find("duplicate"), std::string::npos)
        << joined(r);
}

TEST(ScenarioConfig, ParamBlockMustMatchKind)
{
    const ScenarioLoadResult r = parseScenario(
        R"({"name": "x", "kind": "fork_join",
            "serve": {"rate_per_sec": 100}})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(joined(r).find("/serve"), std::string::npos)
        << joined(r);
}

TEST(ScenarioConfig, CollectsMultipleDiagnosticsInOnePass)
{
    const ScenarioLoadResult r = parseScenario(
        R"({"name": "bad name!", "kind": "nope",
            "runtime": {"workers": 1.5, "mystery": true}})");
    ASSERT_FALSE(r.ok);
    EXPECT_GE(r.diags.size(), 3u) << joined(r);
}

TEST(ScenarioConfig, AdmissionWatermarksMustBeOrdered)
{
    const ScenarioLoadResult r = parseScenario(
        R"({"name": "x", "kind": "serve",
            "serve": {"admit_high": 10, "admit_low": 10}})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(joined(r).find("admit"), std::string::npos)
        << joined(r);
}

TEST(ScenarioConfig, ThresholdsParseDirectionAndBudget)
{
    const ScenarioLoadResult r = parseScenario(
        R"({"name": "x", "kind": "fork_join", "thresholds": {
            "steals": {"direction": "lower",
                       "max_regression": 0.25}}})");
    ASSERT_TRUE(r.ok) << joined(r);
    ASSERT_EQ(r.config.thresholds.size(), 1u);
    EXPECT_EQ(r.config.thresholds[0].metric, "steals");
    EXPECT_TRUE(r.config.thresholds[0].lowerBetter);
    EXPECT_DOUBLE_EQ(r.config.thresholds[0].maxRegression, 0.25);
}

TEST(ScenarioConfig, UnreadableFileDiagnosesInsteadOfCrashing)
{
    const ScenarioLoadResult r =
        loadScenarioFile("/nonexistent/scenario.json");
    ASSERT_FALSE(r.ok);
    ASSERT_FALSE(r.diags.empty());
}

TEST(ScenarioConfig, CanonicalEchoIsAFixpoint)
{
    const ScenarioLoadResult first = parseScenario(
        R"({"name": "x", "kind": "serve", "seed": 9,
            "runtime": {"workers": 3, "deque": "the"},
            "serve": {"rate_per_sec": 500},
            "thresholds": {"shed": {"direction": "lower"}}})");
    ASSERT_TRUE(first.ok) << joined(first);
    const std::string echo = writeConfigJson(first.config);
    const ScenarioLoadResult second = parseScenario(echo);
    ASSERT_TRUE(second.ok) << joined(second) << "\n" << echo;
    EXPECT_EQ(writeConfigJson(second.config), echo);
}

// ------------------------------------------------------------------
// Fuzz: seeded mutations of a valid document must never crash and
// must never be silently half-accepted — every outcome is either a
// valid config or at least one diagnostic with a message.

namespace {

/** A valid, fully populated starting document. */
std::string
seedDocument()
{
    const ScenarioLoadResult base = parseScenario(
        R"({"name": "fuzz_seed", "kind": "serve",
            "runtime": {"workers": 2, "deque": "the",
                        "lock_free_inject": false},
            "serve": {"rate_per_sec": 100, "duration_sec": 0.1},
            "thresholds": {
              "completed_eq_accepted": {"direction": "higher"},
              "sojourn_p99_ns": {"direction": "lower",
                                 "max_regression": 0.5}}})");
    EXPECT_TRUE(base.ok);
    return writeConfigJson(base.config);
}

std::string
mutate(const std::string &doc, util::Rng &rng)
{
    std::string out = doc;
    switch (rng.uniformInt(0, 4)) {
    case 0: { // truncation
        out.resize(static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(out.size()))));
        break;
    }
    case 1: { // delete a random span (often a whole key line)
        if (out.empty())
            break;
        const auto begin = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(out.size()) - 1));
        const auto len = static_cast<size_t>(
            rng.uniformInt(1, 40));
        out.erase(begin, len);
        break;
    }
    case 2: { // type swap: digit -> string opener, quote -> digit
        for (char &ch : out) {
            if (ch >= '0' && ch <= '9' && rng.chance(0.05))
                ch = '"';
            else if (ch == '"' && rng.chance(0.05))
                ch = '7';
        }
        break;
    }
    case 3: { // byte noise
        for (int i = 0; i < 8 && !out.empty(); ++i) {
            const auto pos = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(out.size()) - 1));
            out[pos] = static_cast<char>(rng.uniformInt(1, 255));
        }
        break;
    }
    case 4: { // structural: drop every '}' or every ','
        const char victim = rng.chance(0.5) ? '}' : ',';
        std::string filtered;
        for (const char ch : out)
            if (ch != victim)
                filtered.push_back(ch);
        out = filtered;
        break;
    }
    }
    return out;
}

} // namespace

class ScenarioConfigFuzz : public testing::TestWithParam<uint64_t>
{};

TEST_P(ScenarioConfigFuzz, MutationsNeverCrashAlwaysDiagnose)
{
    const std::string base = seedDocument();
    util::Rng rng(GetParam());
    for (int round = 0; round < 10; ++round) {
        std::string doc = base;
        const int layers = static_cast<int>(rng.uniformInt(1, 3));
        for (int i = 0; i < layers; ++i)
            doc = mutate(doc, rng);

        const ScenarioLoadResult r = parseScenario(doc);
        if (r.ok) {
            // Accepted mutants must re-echo cleanly (still total).
            const std::string echo = writeConfigJson(r.config);
            EXPECT_TRUE(parseScenario(echo).ok) << echo;
        } else {
            ASSERT_FALSE(r.diags.empty()) << doc;
            for (const ScenarioDiag &d : r.diags)
                EXPECT_FALSE(d.message.empty());
        }
    }
}

// 100 seeds x 10 rounds = 1000 mutated documents.
INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioConfigFuzz,
                         testing::Range<uint64_t>(0, 100));

TEST(ScenarioConfig, FaultsBlockParsesWithDefaults)
{
    const ScenarioLoadResult r = parseScenario(R"({
        "name": "x", "kind": "serve",
        "faults": {"fail_prob": 0.25, "max_retries": 3}
    })");
    ASSERT_TRUE(r.ok) << joined(r);
    EXPECT_TRUE(r.config.faults.enabled);
    EXPECT_DOUBLE_EQ(r.config.faults.failProb, 0.25);
    EXPECT_EQ(r.config.faults.maxRetries, 3u);
    // Untouched knobs keep their documented defaults.
    EXPECT_DOUBLE_EQ(r.config.faults.stragglerProb, 0.0);
    EXPECT_DOUBLE_EQ(r.config.faults.stragglerFactor, 4.0);
    EXPECT_EQ(r.config.faults.stallWorker, -1);
    EXPECT_FALSE(r.config.faults.forceSpill);
    EXPECT_DOUBLE_EQ(r.config.faults.deadlineMs, 0.0);
    // Gate sentinels: negative = disabled.
    EXPECT_LT(r.config.faults.maxFailedFrac, 0.0);
    EXPECT_LT(r.config.faults.maxDeadlineExpiredFrac, 0.0);
    EXPECT_LT(r.config.faults.minGoodputFrac, 0.0);
}

TEST(ScenarioConfig, FaultsBlockRequiresServeKind)
{
    const ScenarioLoadResult r = parseScenario(R"({
        "name": "x", "kind": "fork_join",
        "faults": {"fail_prob": 0.5}
    })");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(joined(r).find("/faults"), std::string::npos)
        << joined(r);
    EXPECT_NE(joined(r).find("requires kind 'serve'"),
              std::string::npos)
        << joined(r);
}

TEST(ScenarioConfig, FaultsRangeAndGateDiagnosticsCarryPointers)
{
    const ScenarioLoadResult r = parseScenario(R"({
        "name": "x", "kind": "serve",
        "faults": {
            "fail_prob": 1.5,
            "max_retries": 99,
            "gates": {"min_goodput_frac": 2, "bogus": 1}
        }
    })");
    ASSERT_FALSE(r.ok);
    const std::string all = joined(r);
    EXPECT_NE(all.find("/faults/fail_prob"), std::string::npos)
        << all;
    EXPECT_NE(all.find("/faults/max_retries"), std::string::npos)
        << all;
    EXPECT_NE(all.find("/faults/gates/min_goodput_frac"),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("/faults/gates/bogus"), std::string::npos)
        << all;
}

TEST(ScenarioConfig, StallWorkerMustNameARealWorker)
{
    const ScenarioLoadResult r = parseScenario(R"({
        "name": "x", "kind": "serve",
        "runtime": {"workers": 2},
        "faults": {"stall_worker": 2, "stall_ms": 10}
    })");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(joined(r).find("/faults/stall_worker"),
              std::string::npos)
        << joined(r);
}

TEST(ScenarioConfig, FaultsEchoIsAFixpointAndGatedOnEnable)
{
    // Enabled: the echo carries the block and reparses to the same
    // config (including the only-set-gates "gates" object).
    const ScenarioLoadResult r = parseScenario(R"({
        "name": "x", "kind": "serve",
        "faults": {
            "fail_prob": 0.2, "straggler_prob": 0.1,
            "stall_worker": 1, "stall_at_sec": 0.05,
            "stall_ms": 20, "force_spill": true,
            "deadline_ms": 50, "max_retries": 2,
            "gates": {"max_failed_frac": 0.01}
        }
    })");
    ASSERT_TRUE(r.ok) << joined(r);
    const std::string echo = writeConfigJson(r.config);
    EXPECT_NE(echo.find("\"faults\""), std::string::npos);
    const ScenarioLoadResult again = parseScenario(echo);
    ASSERT_TRUE(again.ok) << joined(again);
    EXPECT_EQ(writeConfigJson(again.config), echo);
    EXPECT_DOUBLE_EQ(again.config.faults.maxFailedFrac, 0.01);
    EXPECT_LT(again.config.faults.minGoodputFrac, 0.0);

    // Disabled (no block): the echo must not mention faults at all,
    // preserving byte-identity with pre-chaos bundles.
    const ScenarioLoadResult plain = parseScenario(
        R"({"name": "x", "kind": "serve"})");
    ASSERT_TRUE(plain.ok) << joined(plain);
    EXPECT_EQ(writeConfigJson(plain.config).find("\"faults\""),
              std::string::npos);
}
