/**
 * @file
 * The serving harness's arrival generator: fixed seed → bitwise-
 * stable Poisson schedule (as data and as CSV bytes), decorrelated
 * sub-streams (mix changes cannot move arrival times), statistical
 * sanity of rate and mix, exact trace replay through the CSV
 * round-trip, and the open-loop invariant — the schedule is pure
 * data, so an arbitrarily slow consumer observes exactly the
 * arrival times a fast one does. MMPP mode gets the same contract:
 * bitwise stability, realized per-state rates and dwell times near
 * their configured means, exact reduction to Poisson when both
 * state rates coincide, and open-loop independence under bursts.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/serve/arrivals.hpp"
#include "util/csv.hpp"

using namespace hermes::harness::serve;
using hermes::util::CsvWriter;

namespace {

ArrivalConfig
baseConfig()
{
    ArrivalConfig config;
    config.seed = 0x5eed;
    config.ratePerSec = 10'000.0;
    config.durationSec = 0.5;
    return config;
}

std::string
scheduleCsvString(const std::vector<Arrival> &schedule)
{
    CsvWriter csv; // in-memory
    writeScheduleCsv(csv, schedule);
    return csv.str();
}

ArrivalConfig
mmppConfig()
{
    ArrivalConfig config;
    config.mode = ArrivalMode::kMmpp;
    config.seed = 0x5eed;
    config.durationSec = 2.0;
    config.mmpp.baseRatePerSec = 2'000.0;
    config.mmpp.burstRatePerSec = 20'000.0;
    config.mmpp.baseDwellSec = 0.05;
    config.mmpp.burstDwellSec = 0.01;
    return config;
}

} // namespace

TEST(Arrivals, FixedSeedIsBitwiseStable)
{
    const auto config = baseConfig();
    const auto first = generateSchedule(config);
    const auto second = generateSchedule(config);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // Byte-identical, not merely value-equal: the run bundle's
    // schedule.csv is the artifact the determinism claim is checked
    // against.
    EXPECT_EQ(scheduleCsvString(first), scheduleCsvString(second));
}

TEST(Arrivals, DifferentSeedsProduceDifferentSchedules)
{
    auto config = baseConfig();
    const auto first = generateSchedule(config);
    config.seed ^= 1;
    const auto second = generateSchedule(config);
    EXPECT_NE(first, second);
}

TEST(Arrivals, OffsetsAreOrderedAndInsideTheHorizon)
{
    const auto schedule = generateSchedule(baseConfig());
    const uint64_t horizon =
        static_cast<uint64_t>(baseConfig().durationSec * 1e9);
    uint64_t prev = 0;
    for (const Arrival &a : schedule) {
        EXPECT_GE(a.offsetNanos, prev);
        EXPECT_LE(a.offsetNanos, horizon);
        prev = a.offsetNanos;
    }
}

TEST(Arrivals, RealizedRateIsNearTheConfiguredRate)
{
    const auto schedule = generateSchedule(baseConfig());
    // Poisson(n = rate * duration = 5000): 5 sigma ~ 354.
    const double expected =
        baseConfig().ratePerSec * baseConfig().durationSec;
    EXPECT_NEAR(static_cast<double>(schedule.size()), expected,
                5.0 * std::sqrt(expected));
}

TEST(Arrivals, MixWeightsSteerMixIndicesWithoutMovingArrivals)
{
    auto config = baseConfig();
    config.mixWeights = {1.0, 3.0};
    const auto schedule = generateSchedule(config);

    size_t heavy = 0;
    for (const Arrival &a : schedule) {
        ASSERT_LT(a.mixIndex, 2u);
        heavy += a.mixIndex == 1 ? 1 : 0;
    }
    const double frac =
        static_cast<double>(heavy)
        / static_cast<double>(schedule.size());
    EXPECT_NEAR(frac, 0.75, 0.05);

    // Decorrelated sub-streams: reweighting the mix must not move a
    // single arrival time or per-request seed.
    auto reweighted = config;
    reweighted.mixWeights = {5.0, 1.0, 1.0};
    const auto other = generateSchedule(reweighted);
    ASSERT_EQ(other.size(), schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(other[i].offsetNanos, schedule[i].offsetNanos);
        EXPECT_EQ(other[i].requestSeed, schedule[i].requestSeed);
    }
}

TEST(Arrivals, RequestSeedsAreDistinct)
{
    const auto schedule = generateSchedule(baseConfig());
    std::vector<uint64_t> seeds;
    seeds.reserve(schedule.size());
    for (const Arrival &a : schedule)
        seeds.push_back(a.requestSeed);
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

TEST(Arrivals, TraceModeReplaysARecordedScheduleExactly)
{
    const auto original = generateSchedule(baseConfig());

    const std::string path =
        testing::TempDir() + "arrivals_trace.csv";
    {
        CsvWriter csv(path);
        writeScheduleCsv(csv, original);
    }

    ArrivalConfig replay;
    replay.mode = ArrivalMode::kTrace;
    replay.tracePath = path;
    // Seed and rate are ignored in trace mode — set them to junk to
    // prove it.
    replay.seed = 0xdead;
    replay.ratePerSec = 1.0;
    const auto replayed = generateSchedule(replay);

    EXPECT_EQ(replayed, original);
    std::remove(path.c_str());
}

TEST(MmppArrivals, FixedSeedIsBitwiseStable)
{
    const auto config = mmppConfig();
    const auto first = generateSchedule(config);
    const auto second = generateSchedule(config);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // Byte-identical as CSV too — MMPP schedules carry the same
    // replay contract as Poisson ones.
    EXPECT_EQ(scheduleCsvString(first), scheduleCsvString(second));

    auto reseeded = config;
    reseeded.seed ^= 1;
    EXPECT_NE(generateSchedule(reseeded), first);
}

TEST(MmppArrivals, CsvRoundTripReplaysExactly)
{
    const auto original = generateSchedule(mmppConfig());

    const std::string path = testing::TempDir() + "mmpp_trace.csv";
    {
        CsvWriter csv(path);
        writeScheduleCsv(csv, original);
    }

    ArrivalConfig replay;
    replay.mode = ArrivalMode::kTrace;
    replay.tracePath = path;
    const auto replayed = generateSchedule(replay);
    EXPECT_EQ(replayed, original);
    std::remove(path.c_str());
}

TEST(MmppArrivals, StateTimelineCoversTheHorizonAndAlternates)
{
    const auto config = mmppConfig();
    const auto timeline = mmppStateTimeline(config);
    ASSERT_FALSE(timeline.empty());
    EXPECT_EQ(timeline.front().startNanos, 0u);
    EXPECT_FALSE(timeline.front().burst); // starts in the base state
    const uint64_t horizon =
        static_cast<uint64_t>(config.durationSec * 1e9);
    EXPECT_EQ(timeline.back().endNanos, horizon);
    for (size_t i = 1; i < timeline.size(); ++i) {
        EXPECT_EQ(timeline[i].startNanos, timeline[i - 1].endNanos);
        EXPECT_NE(timeline[i].burst, timeline[i - 1].burst);
    }
}

TEST(MmppArrivals, RealizedDwellTimesAreNearTheConfiguredMeans)
{
    // Long horizon so each state accumulates many dwells: 100 s at
    // mean dwells of 50/10 ms is ~1600 complete segments per state.
    auto config = mmppConfig();
    config.durationSec = 100.0;
    const auto timeline = mmppStateTimeline(config);

    double base_total = 0.0, burst_total = 0.0;
    size_t base_n = 0, burst_n = 0;
    // Skip the final (horizon-clamped) segment — its dwell is
    // censored.
    for (size_t i = 0; i + 1 < timeline.size(); ++i) {
        const double dwell_sec =
            static_cast<double>(timeline[i].endNanos
                                - timeline[i].startNanos) / 1e9;
        if (timeline[i].burst) {
            burst_total += dwell_sec;
            ++burst_n;
        } else {
            base_total += dwell_sec;
            ++base_n;
        }
    }
    ASSERT_GT(base_n, 100u);
    ASSERT_GT(burst_n, 100u);
    // Exponential(mean m) has sigma = m, so the sample mean over n
    // dwells has sigma m/sqrt(n): 5-sigma tolerances.
    EXPECT_NEAR(base_total / base_n, config.mmpp.baseDwellSec,
                5.0 * config.mmpp.baseDwellSec / std::sqrt(base_n));
    EXPECT_NEAR(burst_total / burst_n, config.mmpp.burstDwellSec,
                5.0 * config.mmpp.burstDwellSec
                    / std::sqrt(burst_n));
}

TEST(MmppArrivals, PerStateRatesAreNearTheConfiguredRates)
{
    auto config = mmppConfig();
    config.durationSec = 20.0;
    const auto timeline = mmppStateTimeline(config);
    const auto schedule = generateSchedule(config);
    ASSERT_FALSE(schedule.empty());

    // Count arrivals per state by walking schedule and timeline
    // together (both are time-ordered).
    double base_sec = 0.0, burst_sec = 0.0;
    uint64_t base_arrivals = 0, burst_arrivals = 0;
    size_t seg = 0;
    for (const Arrival &a : schedule) {
        while (seg + 1 < timeline.size()
               && a.offsetNanos >= timeline[seg].endNanos)
            ++seg;
        (timeline[seg].burst ? burst_arrivals : base_arrivals) += 1;
    }
    for (const MmppSegment &s : timeline) {
        const double dwell_sec =
            static_cast<double>(s.endNanos - s.startNanos) / 1e9;
        (s.burst ? burst_sec : base_sec) += dwell_sec;
    }
    ASSERT_GT(base_sec, 1.0);
    ASSERT_GT(burst_sec, 0.2);
    // Poisson(n) has sigma sqrt(n): 5-sigma tolerance on the count
    // realized in each state's total dwell.
    const double base_expected =
        config.mmpp.baseRatePerSec * base_sec;
    const double burst_expected =
        config.mmpp.burstRatePerSec * burst_sec;
    EXPECT_NEAR(static_cast<double>(base_arrivals), base_expected,
                5.0 * std::sqrt(base_expected));
    EXPECT_NEAR(static_cast<double>(burst_arrivals), burst_expected,
                5.0 * std::sqrt(burst_expected));
}

TEST(MmppArrivals, EqualStateRatesReduceToPlainPoisson)
{
    // With both states at one rate the process IS Poisson; the
    // generator must short-circuit so the schedule is byte-identical
    // to kPoisson at that rate (the modulation stream is
    // decorrelated, so skipping it perturbs nothing).
    auto mmpp = mmppConfig();
    mmpp.mmpp.baseRatePerSec = 10'000.0;
    mmpp.mmpp.burstRatePerSec = 10'000.0;
    mmpp.durationSec = 0.5;

    auto poisson = baseConfig(); // same seed, rate 10k, duration 0.5
    const auto a = generateSchedule(mmpp);
    const auto b = generateSchedule(poisson);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_EQ(scheduleCsvString(a), scheduleCsvString(b));
}

TEST(MmppArrivals, MixReweightingCannotMoveArrivals)
{
    auto config = mmppConfig();
    const auto schedule = generateSchedule(config);
    auto reweighted = config;
    reweighted.mixWeights = {1.0, 7.0};
    const auto other = generateSchedule(reweighted);
    ASSERT_EQ(other.size(), schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(other[i].offsetNanos, schedule[i].offsetNanos);
        EXPECT_EQ(other[i].requestSeed, schedule[i].requestSeed);
    }
}

TEST(MmppArrivals, OpenLoopInvariantHoldsUnderBursts)
{
    // Same FIFO-replay argument as the Poisson open-loop test, under
    // bursty arrivals: the offered timeline is identical for a fast
    // and a pathologically slow consumer — bursts change the backlog
    // dynamics, never the arrivals.
    auto config = mmppConfig();
    config.durationSec = 0.5;
    const auto schedule = generateSchedule(config);
    ASSERT_FALSE(schedule.empty());

    auto replay = [&](uint64_t service_nanos) {
        std::vector<uint64_t> submit_times;
        uint64_t prev_finish = 0;
        uint64_t max_lag = 0;
        for (const Arrival &a : schedule) {
            submit_times.push_back(a.offsetNanos);
            const uint64_t start =
                std::max(a.offsetNanos, prev_finish);
            prev_finish = start + service_nanos;
            max_lag = std::max(max_lag,
                               prev_finish - a.offsetNanos);
        }
        return std::make_pair(submit_times, max_lag);
    };

    const auto fast = replay(1);
    const auto slow = replay(
        static_cast<uint64_t>(5e9 / config.mmpp.burstRatePerSec));
    EXPECT_EQ(fast.first, slow.first);
    EXPECT_GT(slow.second, 10 * fast.second);
}

TEST(Arrivals, OpenLoopScheduleIsIndependentOfConsumptionSpeed)
{
    // The open-loop invariant: arrival times are fixed before the
    // run and never consult the consumer. Model two consumers of
    // the same schedule — one instantaneous, one pathologically
    // slow (each request takes 10x the mean inter-arrival gap) —
    // and check the offered timeline both producers pace against is
    // identical, while only the slow consumer's backlog diverges.
    auto config = baseConfig();
    config.ratePerSec = 1000.0;
    config.durationSec = 0.2;
    const auto schedule = generateSchedule(config);
    ASSERT_FALSE(schedule.empty());

    const uint64_t mean_gap = static_cast<uint64_t>(
        1e9 / config.ratePerSec);

    // Discrete-time replay of a single FIFO server: request i
    // starts at max(submit_i, finish_{i-1}) and finishes
    // service_nanos later.
    auto replay = [&](uint64_t service_nanos) {
        std::vector<uint64_t> submit_times, finish_times;
        uint64_t prev_finish = 0;
        size_t max_backlog = 0;
        for (const Arrival &a : schedule) {
            // Open loop: the submit time IS the scheduled offset,
            // whatever the consumer is doing.
            submit_times.push_back(a.offsetNanos);
            const uint64_t start =
                std::max(a.offsetNanos, prev_finish);
            prev_finish = start + service_nanos;
            finish_times.push_back(prev_finish);
            size_t backlog = 0;
            for (uint64_t f : finish_times)
                backlog += f > a.offsetNanos ? 1 : 0;
            max_backlog = std::max(max_backlog, backlog);
        }
        return std::make_pair(submit_times, max_backlog);
    };

    const auto fast = replay(1);
    const auto slow = replay(10 * mean_gap);

    // Same offered timeline, bit for bit...
    EXPECT_EQ(fast.first, slow.first);
    // ...but the slow consumer piled up a real backlog, which is
    // only possible because producers did not wait for it.
    EXPECT_GT(slow.second, 4 * fast.second);
}
