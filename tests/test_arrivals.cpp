/**
 * @file
 * The serving harness's arrival generator: fixed seed → bitwise-
 * stable Poisson schedule (as data and as CSV bytes), decorrelated
 * sub-streams (mix changes cannot move arrival times), statistical
 * sanity of rate and mix, exact trace replay through the CSV
 * round-trip, and the open-loop invariant — the schedule is pure
 * data, so an arbitrarily slow consumer observes exactly the
 * arrival times a fast one does.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/serve/arrivals.hpp"
#include "util/csv.hpp"

using namespace hermes::harness::serve;
using hermes::util::CsvWriter;

namespace {

ArrivalConfig
baseConfig()
{
    ArrivalConfig config;
    config.seed = 0x5eed;
    config.ratePerSec = 10'000.0;
    config.durationSec = 0.5;
    return config;
}

std::string
scheduleCsvString(const std::vector<Arrival> &schedule)
{
    CsvWriter csv; // in-memory
    writeScheduleCsv(csv, schedule);
    return csv.str();
}

} // namespace

TEST(Arrivals, FixedSeedIsBitwiseStable)
{
    const auto config = baseConfig();
    const auto first = generateSchedule(config);
    const auto second = generateSchedule(config);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // Byte-identical, not merely value-equal: the run bundle's
    // schedule.csv is the artifact the determinism claim is checked
    // against.
    EXPECT_EQ(scheduleCsvString(first), scheduleCsvString(second));
}

TEST(Arrivals, DifferentSeedsProduceDifferentSchedules)
{
    auto config = baseConfig();
    const auto first = generateSchedule(config);
    config.seed ^= 1;
    const auto second = generateSchedule(config);
    EXPECT_NE(first, second);
}

TEST(Arrivals, OffsetsAreOrderedAndInsideTheHorizon)
{
    const auto schedule = generateSchedule(baseConfig());
    const uint64_t horizon =
        static_cast<uint64_t>(baseConfig().durationSec * 1e9);
    uint64_t prev = 0;
    for (const Arrival &a : schedule) {
        EXPECT_GE(a.offsetNanos, prev);
        EXPECT_LE(a.offsetNanos, horizon);
        prev = a.offsetNanos;
    }
}

TEST(Arrivals, RealizedRateIsNearTheConfiguredRate)
{
    const auto schedule = generateSchedule(baseConfig());
    // Poisson(n = rate * duration = 5000): 5 sigma ~ 354.
    const double expected =
        baseConfig().ratePerSec * baseConfig().durationSec;
    EXPECT_NEAR(static_cast<double>(schedule.size()), expected,
                5.0 * std::sqrt(expected));
}

TEST(Arrivals, MixWeightsSteerMixIndicesWithoutMovingArrivals)
{
    auto config = baseConfig();
    config.mixWeights = {1.0, 3.0};
    const auto schedule = generateSchedule(config);

    size_t heavy = 0;
    for (const Arrival &a : schedule) {
        ASSERT_LT(a.mixIndex, 2u);
        heavy += a.mixIndex == 1 ? 1 : 0;
    }
    const double frac =
        static_cast<double>(heavy)
        / static_cast<double>(schedule.size());
    EXPECT_NEAR(frac, 0.75, 0.05);

    // Decorrelated sub-streams: reweighting the mix must not move a
    // single arrival time or per-request seed.
    auto reweighted = config;
    reweighted.mixWeights = {5.0, 1.0, 1.0};
    const auto other = generateSchedule(reweighted);
    ASSERT_EQ(other.size(), schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(other[i].offsetNanos, schedule[i].offsetNanos);
        EXPECT_EQ(other[i].requestSeed, schedule[i].requestSeed);
    }
}

TEST(Arrivals, RequestSeedsAreDistinct)
{
    const auto schedule = generateSchedule(baseConfig());
    std::vector<uint64_t> seeds;
    seeds.reserve(schedule.size());
    for (const Arrival &a : schedule)
        seeds.push_back(a.requestSeed);
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

TEST(Arrivals, TraceModeReplaysARecordedScheduleExactly)
{
    const auto original = generateSchedule(baseConfig());

    const std::string path =
        testing::TempDir() + "arrivals_trace.csv";
    {
        CsvWriter csv(path);
        writeScheduleCsv(csv, original);
    }

    ArrivalConfig replay;
    replay.mode = ArrivalMode::kTrace;
    replay.tracePath = path;
    // Seed and rate are ignored in trace mode — set them to junk to
    // prove it.
    replay.seed = 0xdead;
    replay.ratePerSec = 1.0;
    const auto replayed = generateSchedule(replay);

    EXPECT_EQ(replayed, original);
    std::remove(path.c_str());
}

TEST(Arrivals, OpenLoopScheduleIsIndependentOfConsumptionSpeed)
{
    // The open-loop invariant: arrival times are fixed before the
    // run and never consult the consumer. Model two consumers of
    // the same schedule — one instantaneous, one pathologically
    // slow (each request takes 10x the mean inter-arrival gap) —
    // and check the offered timeline both producers pace against is
    // identical, while only the slow consumer's backlog diverges.
    auto config = baseConfig();
    config.ratePerSec = 1000.0;
    config.durationSec = 0.2;
    const auto schedule = generateSchedule(config);
    ASSERT_FALSE(schedule.empty());

    const uint64_t mean_gap = static_cast<uint64_t>(
        1e9 / config.ratePerSec);

    // Discrete-time replay of a single FIFO server: request i
    // starts at max(submit_i, finish_{i-1}) and finishes
    // service_nanos later.
    auto replay = [&](uint64_t service_nanos) {
        std::vector<uint64_t> submit_times, finish_times;
        uint64_t prev_finish = 0;
        size_t max_backlog = 0;
        for (const Arrival &a : schedule) {
            // Open loop: the submit time IS the scheduled offset,
            // whatever the consumer is doing.
            submit_times.push_back(a.offsetNanos);
            const uint64_t start =
                std::max(a.offsetNanos, prev_finish);
            prev_finish = start + service_nanos;
            finish_times.push_back(prev_finish);
            size_t backlog = 0;
            for (uint64_t f : finish_times)
                backlog += f > a.offsetNanos ? 1 : 0;
            max_backlog = std::max(max_backlog, backlog);
        }
        return std::make_pair(submit_times, max_backlog);
    };

    const auto fast = replay(1);
    const auto slow = replay(10 * mean_gap);

    // Same offered timeline, bit for bit...
    EXPECT_EQ(fast.first, slow.first);
    // ...but the slow consumer piled up a real backlog, which is
    // only possible because producers did not wait for it.
    EXPECT_GT(slow.second, 4 * fast.second);
}
