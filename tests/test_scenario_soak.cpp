/**
 * @file
 * Long-form soak validation at the library level: a 30-second
 * checkpointed soak of the fork-join scenario stays healthy (no
 * monotone-counter regression, no latency drift), every checkpoint's
 * counter deltas are non-negative, and a resumed soak continues the
 * checkpoint sequence in a fresh epoch.
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/scenario/scenario_config.hpp"
#include "harness/scenario/soak.hpp"
#include "util/json.hpp"

namespace fs = std::filesystem;
using namespace hermes;
using namespace hermes::harness::scenario;

namespace {

ScenarioConfig
soakScenario()
{
    const ScenarioLoadResult r = parseScenario(R"({
  "name": "soak_test",
  "kind": "fork_join",
  "seed": 3,
  "runtime": {"workers": 2},
  "fork_join": {"tasks": 64, "spin_nanos": 2000, "repeats": 2},
  "soak": {"duration_sec": 30, "checkpoint_sec": 2,
           "drift_factor": 10}
})");
    EXPECT_TRUE(r.ok);
    return r.config;
}

struct Line
{
    uint64_t seq, epoch, iterations;
    uint64_t executed, steals, parks, wakes, injected;
};

std::vector<Line>
readLines(const std::string &path)
{
    std::vector<Line> lines;
    std::ifstream in(path);
    std::string text;
    while (std::getline(in, text)) {
        const util::JsonParseResult parsed = util::parseJson(text);
        EXPECT_TRUE(parsed.ok) << text;
        auto get = [&parsed](const char *key) {
            const util::JsonValue *v = parsed.value.find(key);
            EXPECT_NE(v, nullptr) << key;
            return static_cast<uint64_t>(v->number());
        };
        lines.push_back({get("seq"), get("epoch"),
                         get("iterations"), get("executed"),
                         get("steals"), get("parks"), get("wakes"),
                         get("injected")});
    }
    return lines;
}

} // namespace

TEST(ScenarioSoak, ThirtySecondSoakStaysHealthyAndResumes)
{
    const fs::path dir =
        fs::temp_directory_path() / "hermes_scenario_soak_test";
    fs::remove_all(dir);

    const ScenarioConfig config = soakScenario();

    // The 30-second leg (uses the scenario's own duration).
    const SoakOutcome first = runSoak(config, dir.string(), 0.0);
    EXPECT_TRUE(first.ok) << (first.failures.empty()
                                  ? ""
                                  : first.failures.front());
    EXPECT_EQ(first.epoch, 0u);
    EXPECT_EQ(first.firstSeq, 0u);
    // ~15 two-second windows plus the final flush; be generous to
    // loaded CI machines but insist on real periodic evidence.
    EXPECT_GE(first.checkpoints, 5u);
    EXPECT_GT(first.iterations, 0u);

    // A resumed soak continues the sequence in a new epoch.
    const SoakOutcome second = runSoak(config, dir.string(), 2.0);
    EXPECT_TRUE(second.ok) << (second.failures.empty()
                                   ? ""
                                   : second.failures.front());
    EXPECT_EQ(second.epoch, 1u);
    EXPECT_EQ(second.firstSeq, first.checkpoints);

    // Checkpoint invariants across the whole file: contiguous seq,
    // non-decreasing epochs, and within an epoch every cumulative
    // counter delta is non-negative and iterations advance.
    const std::vector<Line> lines =
        readLines((dir / "soak.jsonl").string());
    ASSERT_EQ(lines.size(), first.checkpoints + second.checkpoints);
    for (size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i].seq, i);
        if (i == 0)
            continue;
        EXPECT_GE(lines[i].epoch, lines[i - 1].epoch);
        if (lines[i].epoch != lines[i - 1].epoch)
            continue; // counters reset with the new runtime
        EXPECT_GE(lines[i].executed, lines[i - 1].executed);
        EXPECT_GE(lines[i].steals, lines[i - 1].steals);
        EXPECT_GE(lines[i].parks, lines[i - 1].parks);
        EXPECT_GE(lines[i].wakes, lines[i - 1].wakes);
        EXPECT_GE(lines[i].injected, lines[i - 1].injected);
        EXPECT_GE(lines[i].iterations, lines[i - 1].iterations);
    }

    fs::remove_all(dir);
}
