/**
 * @file
 * Property-based fuzzing of the simulator over randomly generated
 * DAGs (not just the five benchmark shapes): for arbitrary
 * fully-strict computations, every policy must conserve work, respect
 * the greedy scheduling bounds, terminate, and produce non-negative
 * energy; and equal seeds must reproduce bit-identically.
 */

#include <gtest/gtest.h>

#include "sim/dag.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace hermes;
using namespace hermes::sim;

namespace {

/** Random fully-strict DAG: recursive fan-outs with random work,
 * random spawn counts, occasional sequel chains. */
FrameId
randomTree(DagBuilder &b, util::Rng &rng, double budget_cyc,
           int depth)
{
    const double mem = rng.uniform(0.0, 0.8);
    if (depth <= 0 || budget_cyc < 50e3
            || rng.chance(0.25)) {
        return b.newFrame(std::max(1e3, budget_cyc), mem);
    }
    const double own = budget_cyc * rng.uniform(0.05, 0.5);
    const auto kids =
        static_cast<unsigned>(rng.uniformInt(1, 4));
    const double child_budget = (budget_cyc - own)
        / static_cast<double>(kids);
    std::vector<FrameId> children;
    children.reserve(kids);
    for (unsigned k = 0; k < kids; ++k)
        children.push_back(
            randomTree(b, rng, child_budget, depth - 1));
    const FrameId f = b.newFrame(std::max(1e3, own), mem);
    for (unsigned k = 0; k < kids; ++k) {
        const double off = std::max(1e3, own)
            * (static_cast<double>(k) + rng.uniform(0.1, 0.9))
            / (kids + 1.0);
        // Builder requires strictly ascending offsets; space them.
        b.spawn(f, std::max(1.0, off), children[k]);
    }
    if (rng.chance(0.3) && depth > 1) {
        const FrameId next = randomTree(b, rng, budget_cyc * 0.3,
                                        depth - 2);
        b.sequel(f, next);
    }
    return f;
}

Dag
randomDag(uint64_t seed)
{
    util::Rng rng(seed);
    DagBuilder b;
    const double total = rng.uniform(50e6, 500e6);  // 20-200ms @2.4G
    const FrameId root = randomTree(b, rng, total, 6);
    return b.build(root);
}

} // namespace

class SimFuzz : public testing::TestWithParam<uint64_t>
{};

TEST_P(SimFuzz, InvariantsHoldForAllPolicies)
{
    const Dag dag = randomDag(GetParam());
    const double rate = 2400.0 * 1e6;

    for (const auto policy :
         {core::TempoPolicy::Baseline, core::TempoPolicy::Unified,
          core::TempoPolicy::WorkpathOnly,
          core::TempoPolicy::WorkloadOnly}) {
        SimConfig cfg;
        cfg.profile = platform::systemA();
        cfg.numWorkers = 8;
        cfg.seed = GetParam() * 3 + 1;
        cfg.enableTempo = policy != core::TempoPolicy::Baseline;
        cfg.tempo.policy = policy;

        const auto r = simulate(dag, cfg);

        // Work conservation: every cycle of every frame executed.
        ASSERT_NEAR(r.stats.executedCycles, dag.totalCycles(),
                    dag.totalCycles() * 1e-9)
            << core::toString(policy);

        // Greedy lower bounds (memory-bound shares only make
        // segments slower, never faster than the fmax bound).
        EXPECT_GE(r.seconds,
                  dag.totalCycles() / (8.0 * rate) - 1e-9);
        EXPECT_GE(r.seconds,
                  dag.criticalPathCycles() / rate - 1e-9);

        // Sanity of measurement outputs.
        EXPECT_GT(r.joules, 0.0);
        EXPECT_GT(r.seconds, 0.0);
        EXPECT_LT(r.seconds, 10.0);

        // Busy time never exceeds workers x makespan.
        double busy = 0.0;
        for (double s : r.busySecondsAtRung)
            busy += s;
        EXPECT_LE(busy, 8.0 * r.seconds * (1.0 + 1e-6))
            << core::toString(policy);

        // Determinism: the identical configuration replays exactly.
        const auto again = simulate(dag, cfg);
        EXPECT_EQ(r.seconds, again.seconds)
            << core::toString(policy);
        EXPECT_EQ(r.joules, again.joules)
            << core::toString(policy);
    }
}

TEST_P(SimFuzz, TempoNeverUsesOffLadderFrequencies)
{
    const Dag dag = randomDag(GetParam() ^ 0xdead);
    SimConfig cfg;
    cfg.profile = platform::systemB();
    cfg.numWorkers = 4;
    cfg.seed = GetParam();
    cfg.enableTempo = true;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    cfg.tempo.ladder =
        platform::systemB().ladder.select({3600, 2700});

    const auto r = simulate(dag, cfg);
    const auto &ladder = platform::systemB().ladder;
    for (size_t i = 0; i < r.busySecondsAtRung.size(); ++i) {
        const auto f = ladder.at(i);
        if (f != 3600 && f != 2700) {
            EXPECT_EQ(r.busySecondsAtRung[i], 0.0)
                << f << " MHz used despite 2-frequency selection";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         testing::Range<uint64_t>(1, 13));
