/** @file Unit tests for the live 100 Hz power meter. */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "energy/meter.hpp"

using hermes::energy::LiveMeter;

TEST(LiveMeter, SamplesAtConfiguredRate)
{
    LiveMeter meter([] { return 50.0; }, 200.0);
    meter.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    meter.stop();
    const auto n = meter.samples().size();
    // 200 Hz for ~0.25 s => ~50 samples; allow generous scheduling
    // slack in CI containers.
    EXPECT_GE(n, 20u);
    EXPECT_LE(n, 90u);
}

TEST(LiveMeter, EnergyIsPowerTimesTime)
{
    LiveMeter meter([] { return 120.0; }, 100.0);
    meter.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    meter.stop();
    const double expected = 120.0
        * static_cast<double>(meter.samples().size()) / 100.0;
    EXPECT_NEAR(meter.joules(), expected, 1e-9);
}

TEST(LiveMeter, StopIsIdempotentAndRestartable)
{
    std::atomic<int> calls{0};
    LiveMeter meter(
        [&] {
            calls.fetch_add(1);
            return 1.0;
        },
        500.0);
    meter.stop();  // never started: no-op
    meter.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    meter.stop();
    meter.stop();
    EXPECT_GT(calls.load(), 0);
}

TEST(LiveMeter, DestructorStops)
{
    {
        LiveMeter meter([] { return 1.0; }, 1000.0);
        meter.start();
        // Destruction while running must join cleanly.
    }
    SUCCEED();
}
