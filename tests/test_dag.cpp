/** @file Unit tests for the simulator's spawn DAGs. */

#include <gtest/gtest.h>

#include "sim/dag.hpp"

using namespace hermes::sim;

TEST(Dag, SingleFrameMetrics)
{
    DagBuilder b;
    const FrameId f = b.newFrame(100.0);
    const Dag dag = b.build(f);
    EXPECT_EQ(dag.frameCount(), 1u);
    EXPECT_DOUBLE_EQ(dag.totalCycles(), 100.0);
    EXPECT_DOUBLE_EQ(dag.criticalPathCycles(), 100.0);
    EXPECT_EQ(dag.leafCount(), 1u);
}

TEST(Dag, ForkCriticalPath)
{
    // Parent (100) spawns a 50-cycle child at offset 20 and an
    // 80-cycle child at offset 60.
    DagBuilder b;
    const FrameId parent = b.newFrame(100.0);
    const FrameId c1 = b.newFrame(50.0);
    const FrameId c2 = b.newFrame(80.0);
    b.spawn(parent, 20.0, c1);
    b.spawn(parent, 60.0, c2);
    const Dag dag = b.build(parent);
    EXPECT_DOUBLE_EQ(dag.totalCycles(), 230.0);
    // Completion: max(100, 20+50, 60+80) = 140.
    EXPECT_DOUBLE_EQ(dag.criticalPathCycles(), 140.0);
    EXPECT_EQ(dag.leafCount(), 2u);
}

TEST(Dag, SequelExtendsCriticalPath)
{
    DagBuilder b;
    const FrameId first = b.newFrame(100.0);
    const FrameId child = b.newFrame(200.0);
    b.spawn(first, 50.0, child);
    const FrameId second = b.newFrame(40.0);
    b.sequel(first, second);
    const Dag dag = b.build(first);
    // Sync completes at 50+200=250, then the sequel runs: 290.
    EXPECT_DOUBLE_EQ(dag.criticalPathCycles(), 290.0);
    EXPECT_DOUBLE_EQ(dag.totalCycles(), 340.0);
}

TEST(Dag, SequelInheritsParent)
{
    DagBuilder b;
    const FrameId root = b.newFrame(10.0);
    const FrameId child = b.newFrame(10.0);
    b.spawn(root, 5.0, child);
    const FrameId child_sequel = b.newFrame(10.0);
    b.sequel(child, child_sequel);
    const Dag dag = b.build(root);
    EXPECT_EQ(dag.frame(child_sequel).parent, root);
}

TEST(Dag, DeepChainCriticalPathEqualsTotal)
{
    DagBuilder b;
    const FrameId root = b.newFrame(10.0);
    FrameId prev = root;
    for (int i = 0; i < 50; ++i) {
        const FrameId next = b.newFrame(10.0);
        b.sequel(prev, next);
        prev = next;
    }
    const Dag dag = b.build(root);
    EXPECT_DOUBLE_EQ(dag.criticalPathCycles(), dag.totalCycles());
}

TEST(DagDeath, NonPositiveWorkRejected)
{
    DagBuilder b;
    EXPECT_DEATH((void)b.newFrame(0.0), "must be positive");
}

TEST(DagDeath, DoubleParentRejected)
{
    DagBuilder b;
    const FrameId p1 = b.newFrame(10.0);
    const FrameId p2 = b.newFrame(10.0);
    const FrameId c = b.newFrame(10.0);
    b.spawn(p1, 5.0, c);
    EXPECT_DEATH(b.spawn(p2, 5.0, c), "already has a parent");
}

TEST(DagDeath, SpawnedFrameCannotBeSequel)
{
    DagBuilder b;
    const FrameId p = b.newFrame(10.0);
    const FrameId c = b.newFrame(10.0);
    b.spawn(p, 5.0, c);
    const FrameId other = b.newFrame(10.0);
    EXPECT_DEATH(b.sequel(other, c), "must not be spawned");
}

TEST(DagDeath, SequelTargetCannotBeSpawned)
{
    DagBuilder b;
    const FrameId a = b.newFrame(10.0);
    const FrameId s = b.newFrame(10.0);
    b.sequel(a, s);
    const FrameId p = b.newFrame(10.0);
    EXPECT_DEATH(b.spawn(p, 5.0, s), "sequel target");
}

TEST(DagDeath, NonAscendingOffsetsRejectedAtBuild)
{
    DagBuilder b;
    const FrameId p = b.newFrame(10.0);
    const FrameId c1 = b.newFrame(10.0);
    const FrameId c2 = b.newFrame(10.0);
    b.spawn(p, 6.0, c1);
    b.spawn(p, 4.0, c2);  // out of order
    EXPECT_DEATH((void)b.build(p), "strictly ascending");
}

TEST(DagDeath, OffsetBeyondWorkRejectedAtBuild)
{
    DagBuilder b;
    const FrameId p = b.newFrame(10.0);
    const FrameId c = b.newFrame(10.0);
    b.spawn(p, 10.0, c);  // == ownCycles: nothing left to continue
    EXPECT_DEATH((void)b.build(p), "beyond frame work");
}
