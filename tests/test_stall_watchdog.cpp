/**
 * @file
 * Worker heartbeats, the stallWorker() fault site, compensating
 * wakes, and the serve-side watchdog end to end: heartbeats advance
 * under work, an injected stall on a >=2-worker runtime is detected
 * by the watchdog while the accepted requests still all complete
 * (no hang), and the stall is visible in the sampled series.
 * Timing assertions stay order-of-magnitude so the suite survives
 * sanitizers and one-CPU CI runners.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "harness/serve/serve_driver.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task_group.hpp"

using namespace hermes;
using namespace hermes::harness::serve;

namespace {

runtime::RuntimeConfig
twoWorkers()
{
    runtime::RuntimeConfig config;
    config.numWorkers = 2;
    return config;
}

} // namespace

TEST(StallWatchdog, TelemetryCoversEveryWorkerAndAdvancesUnderWork)
{
    runtime::Runtime rt(twoWorkers());
    const runtime::StallTelemetry before = rt.stallTelemetry();
    ASSERT_EQ(before.workers.size(), 2u);

    std::atomic<unsigned> ran{0};
    rt.run([&rt, &ran] {
        runtime::TaskGroup group(rt);
        for (int i = 0; i < 256; ++i)
            group.run([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        group.wait();
    });
    EXPECT_EQ(ran.load(), 256u);

    // Running a burst moved at least one worker's heartbeat; summed
    // beats strictly grow (each findAndExecute round bumps one).
    uint64_t sum_before = 0, sum_after = 0;
    for (const auto &w : before.workers)
        sum_before += w.heartbeat;
    for (const auto &w : rt.stallTelemetry().workers)
        sum_after += w.heartbeat;
    EXPECT_GT(sum_after, sum_before);
}

TEST(StallWatchdog, WakeWorkersIsBoundedAndHarmlessWhenIdle)
{
    runtime::Runtime rt(twoWorkers());
    // Compensating wakes against an idle (likely parked) runtime
    // must neither hang nor wake more workers than exist.
    const unsigned woken = rt.wakeWorkers(rt.numWorkers());
    EXPECT_LE(woken, rt.numWorkers());
    // The runtime stays fully usable afterwards.
    std::atomic<bool> ran{false};
    rt.run([&ran] { ran.store(true); });
    EXPECT_TRUE(ran.load());
}

TEST(StallWatchdog, StalledWorkerNapsButWorkStillCompletes)
{
    runtime::Runtime rt(twoWorkers());
    rt.stallWorker(0, 20'000'000); // 20 ms nap at its next loop top
    std::atomic<unsigned> ran{0};
    rt.run([&rt, &ran] {
        runtime::TaskGroup group(rt);
        for (int i = 0; i < 64; ++i)
            group.run([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        group.wait();
    });
    // The un-stalled worker (plus the stalled one after its nap)
    // finishes everything — a stall degrades, never deadlocks.
    EXPECT_EQ(ran.load(), 64u);
}

TEST(StallWatchdog, InjectedStallIsDetectedAndServeRunStillDrains)
{
    runtime::Runtime rt(twoWorkers());
    ServeConfig config;
    config.arrivals.seed = 0x57a11;
    config.arrivals.ratePerSec = 2000.0;
    config.arrivals.durationSec = 0.3;
    config.mix = {MixEntry{"spin", 1.0, 10'000}};
    config.producers = 2;
    config.sampleHz = 200.0;
    config.faults.enabled = true;
    config.faults.stall.worker = 1;
    config.faults.stall.atSec = 0.05;
    config.faults.stall.durationMs = 100.0;

    const ServeResult result = runServe(rt, config);

    // Acceptance criterion of the chaos PR: with one of two workers
    // napping 100 ms mid-run, every accepted request still
    // completes — the watchdog's compensating wakes keep the other
    // worker draining the backlog.
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_EQ(result.offered,
              result.shed + result.ok + result.retriedOk
                  + result.failed + result.deadlineExpired);

    // The watchdog saw the stall (100 ms frozen heartbeat spans
    // many 5 ms samples) and the series makes it visible.
    EXPECT_GE(result.watchdogStalls, 1u);
    unsigned max_stalled = 0;
    for (const SeriesSample &s : result.series)
        max_stalled = std::max(max_stalled, s.stalledWorkers);
    EXPECT_GE(max_stalled, 1u);
}
