/** @file Unit tests for the benchmark-shaped DAG generators. */

#include <gtest/gtest.h>

#include "sim/dag_generators.hpp"

using namespace hermes::sim;

namespace {

WorkloadParams
params(uint64_t seed = 42, double scale = 1.0)
{
    WorkloadParams p;
    p.seed = seed;
    p.scale = scale;
    p.fmaxMhz = 2400;
    return p;
}

} // namespace

TEST(DagGenerators, RegistryHasPaperBenchmarks)
{
    const auto &names = benchmarkNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "knn");
    EXPECT_EQ(names[1], "ray");
    EXPECT_EQ(names[2], "sort");
    EXPECT_EQ(names[3], "compare");
    EXPECT_EQ(names[4], "hull");
}

TEST(DagGenerators, DeterministicForEqualSeeds)
{
    for (const auto &name : benchmarkNames()) {
        const Dag a = makeBenchmark(name, params(7));
        const Dag b = makeBenchmark(name, params(7));
        ASSERT_EQ(a.frameCount(), b.frameCount()) << name;
        EXPECT_DOUBLE_EQ(a.totalCycles(), b.totalCycles()) << name;
        EXPECT_DOUBLE_EQ(a.criticalPathCycles(),
                         b.criticalPathCycles())
            << name;
    }
}

TEST(DagGenerators, SeedsPerturbTheInput)
{
    for (const auto &name : benchmarkNames()) {
        const Dag a = makeBenchmark(name, params(1));
        const Dag b = makeBenchmark(name, params(2));
        EXPECT_NE(a.totalCycles(), b.totalCycles()) << name;
    }
}

TEST(DagGenerators, ScaleMultipliesWork)
{
    for (const auto &name : benchmarkNames()) {
        const Dag small = makeBenchmark(name, params(7, 1.0));
        const Dag big = makeBenchmark(name, params(7, 2.0));
        EXPECT_GT(big.totalCycles(), small.totalCycles() * 1.5)
            << name;
    }
}

TEST(DagGenerators, AmpleParallelismForSixteenWorkers)
{
    // The evaluation runs up to 16 workers; the DAGs must expose
    // parallel slack well beyond that (PBBS inputs are huge).
    for (const auto &name : benchmarkNames()) {
        const Dag dag = makeBenchmark(name, params(7));
        EXPECT_GT(dag.totalCycles() / dag.criticalPathCycles(), 30.0)
            << name;
    }
}

TEST(DagGenerators, WorkIsAboutASecondAtFmax)
{
    for (const auto &name : benchmarkNames()) {
        const Dag dag = makeBenchmark(name, params(7));
        const double t1 = dag.totalCycles() / (2400.0 * 1e6);
        EXPECT_GT(t1, 0.1) << name;
        EXPECT_LT(t1, 3.0) << name;
    }
}

TEST(DagGenerators, MemFractionsAreSane)
{
    for (const auto &name : benchmarkNames()) {
        const Dag dag = makeBenchmark(name, params(7));
        for (FrameId f = 0; f < dag.frameCount(); ++f) {
            const double m = dag.frame(f).memFraction;
            ASSERT_GE(m, 0.0) << name;
            ASSERT_LT(m, 1.0) << name;
        }
    }
}

TEST(DagGenerators, SortHasFourSequelChainedPhases)
{
    const Dag dag = makeBenchmark("sort", params(7));
    // Follow the sequel chain from the root: 4 radix passes.
    unsigned phases = 1;
    FrameId cur = dag.root();
    while (dag.frame(cur).sequel != invalidFrame) {
        cur = dag.frame(cur).sequel;
        ++phases;
    }
    EXPECT_EQ(phases, 4u);
}

TEST(DagGenerators, KnnHasBuildThenQueryPhase)
{
    const Dag dag = makeBenchmark("knn", params(7));
    EXPECT_NE(dag.frame(dag.root()).sequel, invalidFrame);
}

TEST(DagGeneratorsDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)makeBenchmark("quicksort", params()),
                testing::ExitedWithCode(1), "unknown benchmark");
}

/** Frame-level structural validity across benchmarks and seeds. */
class GeneratorFuzz
    : public testing::TestWithParam<std::tuple<std::string, uint64_t>>
{};

TEST_P(GeneratorFuzz, FramesAreWellFormed)
{
    const auto &[name, seed] = GetParam();
    const Dag dag = makeBenchmark(name, params(seed));
    EXPECT_GT(dag.frameCount(), 50u);
    EXPECT_GT(dag.leafCount(), 25u);
    for (FrameId f = 0; f < dag.frameCount(); ++f) {
        const auto &fr = dag.frame(f);
        ASSERT_GT(fr.ownCycles, 0.0);
        double prev = 0.0;
        for (const auto &sp : fr.spawns) {
            ASSERT_GT(sp.offsetCycles, prev);
            ASSERT_LT(sp.offsetCycles, fr.ownCycles);
            prev = sp.offsetCycles;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GeneratorFuzz,
    testing::Combine(testing::Values("knn", "ray", "sort", "compare",
                                     "hull"),
                     testing::Values(1u, 17u, 99u)));
