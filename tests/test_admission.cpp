/**
 * @file
 * The serving harness's admission controller as pure logic — no
 * runtime, no threads, just synthetic (backlog, spillTotal)
 * sequences: accept→shed at the high watermark and on spill events,
 * hysteresis keeping the state from flapping when load hovers at
 * one threshold, exact counter reconciliation
 * (shed == offered − accepted), and transition accounting.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "harness/serve/admission.hpp"
#include "util/rng.hpp"

using hermes::harness::serve::AdmissionConfig;
using hermes::harness::serve::AdmissionController;
using hermes::util::Rng;

namespace {

AdmissionConfig
smallConfig()
{
    AdmissionConfig config;
    config.highWatermark = 100;
    config.lowWatermark = 20;
    return config;
}

} // namespace

TEST(Admission, AcceptsWhileBacklogStaysBelowHighWatermark)
{
    AdmissionController admission(smallConfig());
    for (size_t backlog = 0; backlog < 100; backlog += 7)
        EXPECT_TRUE(admission.admit(backlog, 0));
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(admission.shed(), 0u);
    EXPECT_EQ(admission.transitions(), 0u);
    EXPECT_EQ(admission.offered(), admission.accepted());
}

TEST(Admission, ShedsAtTheHighWatermarkAndRecoversAtTheLow)
{
    AdmissionController admission(smallConfig());
    EXPECT_TRUE(admission.admit(99, 0));
    EXPECT_FALSE(admission.admit(100, 0)); // trip
    EXPECT_TRUE(admission.shedding());
    EXPECT_FALSE(admission.admit(60, 0)); // between watermarks: shed
    EXPECT_FALSE(admission.admit(21, 0)); // still above low
    EXPECT_TRUE(admission.admit(20, 0));  // at low: recover
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(admission.transitions(), 2u);
    EXPECT_EQ(admission.offered(), 5u);
    EXPECT_EQ(admission.accepted(), 2u);
    EXPECT_EQ(admission.shed(), 3u);
}

TEST(Admission, SpillEventTripsSheddingEvenWithEmptyBacklog)
{
    AdmissionController admission(smallConfig());
    EXPECT_TRUE(admission.admit(0, 5)); // pre-existing spill: fine
    EXPECT_FALSE(admission.admit(0, 6)); // fresh spill: trip
    EXPECT_TRUE(admission.shedding());
    // No further spill and backlog below low: recover.
    EXPECT_TRUE(admission.admit(0, 6));
    EXPECT_FALSE(admission.shedding());
}

TEST(Admission, SpillTrippingCanBeDisabled)
{
    auto config = smallConfig();
    config.shedOnSpill = false;
    AdmissionController admission(config);
    EXPECT_TRUE(admission.admit(0, 0));
    EXPECT_TRUE(admission.admit(0, 1000)); // spills ignored
    EXPECT_FALSE(admission.shedding());
    EXPECT_FALSE(admission.admit(100, 1000)); // watermark still works
}

TEST(Admission, HysteresisPreventsFlappingAroundTheHighWatermark)
{
    // Backlog oscillating around the high watermark: a single-
    // threshold controller would flip state every other request;
    // the watermark gap must keep this to ONE transition.
    AdmissionController admission(smallConfig());
    for (int i = 0; i < 1000; ++i)
        admission.admit(i % 2 == 0 ? 99 : 101, 0);
    EXPECT_TRUE(admission.shedding());
    EXPECT_EQ(admission.transitions(), 1u);

    // And around the low watermark while shedding: stays shedding
    // only while above; first dip to the low mark recovers, then
    // hovering between the marks cannot re-trip it.
    AdmissionController recover(smallConfig());
    recover.admit(100, 0); // trip
    for (int i = 0; i < 1000; ++i)
        recover.admit(i % 2 == 0 ? 21 : 99, 0);
    recover.admit(20, 0);
    EXPECT_FALSE(recover.shedding());
    for (int i = 0; i < 1000; ++i)
        recover.admit(i % 2 == 0 ? 21 : 99, 0);
    EXPECT_FALSE(recover.shedding());
    EXPECT_EQ(recover.transitions(), 2u);
}

TEST(Admission, CountersReconcileUnderARandomizedLoadTrace)
{
    Rng rng(0xad311);
    AdmissionController admission(smallConfig());
    uint64_t spill = 0;
    uint64_t expect_accepted = 0;
    for (int i = 0; i < 100'000; ++i) {
        const auto backlog =
            static_cast<size_t>(rng.uniformInt(0, 150));
        if (rng.chance(0.01))
            ++spill;
        expect_accepted += admission.admit(backlog, spill) ? 1 : 0;
    }
    EXPECT_EQ(admission.offered(), 100'000u);
    EXPECT_EQ(admission.accepted(), expect_accepted);
    EXPECT_EQ(admission.shed(),
              admission.offered() - admission.accepted());
    // The trace crosses both watermarks constantly; both states must
    // have been exercised.
    EXPECT_GT(admission.transitions(), 0u);
    EXPECT_GT(admission.accepted(), 0u);
    EXPECT_GT(admission.shed(), 0u);
}

TEST(Admission, FreshControllerStartsAccepting)
{
    AdmissionController admission(smallConfig());
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(admission.offered(), 0u);
    EXPECT_EQ(admission.accepted(), 0u);
    EXPECT_EQ(admission.shed(), 0u);
    EXPECT_EQ(admission.transitions(), 0u);
}

TEST(Admission, SpillTripWhileAlreadySheddingAddsNoTransition)
{
    // Chaos fault burst: the forced-spill site fires while the
    // watermark has already tripped shedding. The spill must not
    // double-count a transition or otherwise disturb the state.
    AdmissionController admission(smallConfig());
    EXPECT_FALSE(admission.admit(100, 0)); // watermark trip
    EXPECT_TRUE(admission.shedding());
    EXPECT_EQ(admission.transitions(), 1u);
    EXPECT_FALSE(admission.admit(100, 1)); // spill mid-shed
    EXPECT_FALSE(admission.admit(100, 2)); // and again
    EXPECT_TRUE(admission.shedding());
    EXPECT_EQ(admission.transitions(), 1u);
    EXPECT_EQ(admission.offered(),
              admission.accepted() + admission.shed());
}

TEST(Admission, ResumesAfterAStallClearsAndTheBacklogDrains)
{
    // A stalled worker looks like a backlog ramp to admission; when
    // the stall clears and the survivors drain the queue, the
    // controller must hand back acceptance at the low watermark.
    AdmissionController admission(smallConfig());
    size_t backlog = 0;
    while (backlog < 120)
        admission.admit(backlog += 10, 0); // stall: ramp past high
    EXPECT_TRUE(admission.shedding());
    while (backlog > 20)
        admission.admit(backlog -= 10, 0); // stall cleared: drain
    EXPECT_TRUE(admission.admit(20, 0));
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(admission.transitions(), 2u);
    EXPECT_EQ(admission.offered(),
              admission.accepted() + admission.shed());
}

TEST(Admission, ReconciliationHoldsUnderRetryBurstTraces)
{
    // Retry storms re-offer work in bursts: backlog spikes arrive in
    // clumps (a failure wave doubling the queue) rather than as the
    // smooth trace above. shed == offered - accepted must hold at
    // every step, not just at the end.
    Rng rng(0xbeef);
    AdmissionController admission(smallConfig());
    uint64_t spill = 0;
    size_t backlog = 0;
    for (int burst = 0; burst < 1000; ++burst) {
        // Each burst: a retry clump inflates the backlog, then a
        // drain phase shrinks it; spills ride along with clumps.
        backlog += static_cast<size_t>(rng.uniformInt(0, 60));
        if (rng.chance(0.2))
            spill += static_cast<uint64_t>(rng.uniformInt(1, 4));
        for (int i = 0; i < 20; ++i) {
            admission.admit(backlog, spill);
            backlog -= std::min(backlog,
                                static_cast<size_t>(
                                    rng.uniformInt(0, 5)));
            EXPECT_EQ(admission.offered(),
                      admission.accepted() + admission.shed());
        }
    }
    EXPECT_GT(admission.accepted(), 0u);
    EXPECT_GT(admission.shed(), 0u);
    EXPECT_GT(admission.transitions(), 0u);
}
