/** @file Unit tests for the immediacy list (Figure 5 structure). */

#include <gtest/gtest.h>

#include "core/immediacy_list.hpp"
#include "util/rng.hpp"

using hermes::core::ImmediacyList;
using hermes::core::invalidWorker;
using hermes::core::WorkerId;

TEST(ImmediacyList, StartsUnlinked)
{
    ImmediacyList list(4);
    for (WorkerId w = 0; w < 4; ++w) {
        EXPECT_FALSE(list.linked(w));
        EXPECT_EQ(list.nextOf(w), invalidWorker);
        EXPECT_EQ(list.prevOf(w), invalidWorker);
    }
}

TEST(ImmediacyList, SimpleInsert)
{
    ImmediacyList list(4);
    list.insertAfter(0, 1);  // 1 stole from 0
    EXPECT_EQ(list.nextOf(0), 1u);
    EXPECT_EQ(list.prevOf(1), 0u);
    EXPECT_TRUE(list.isHead(0));
    EXPECT_FALSE(list.isHead(1));
    list.checkInvariants();
}

TEST(ImmediacyList, NewerThiefSplicesCloserToVictim)
{
    // Figure 5 lines 21-24: if the victim was already stolen from,
    // the newer thief (holding more immediate work) sits between the
    // victim and the older thief.
    ImmediacyList list(4);
    list.insertAfter(0, 1);  // older thief
    list.insertAfter(0, 2);  // newer thief
    EXPECT_EQ(list.nextOf(0), 2u);
    EXPECT_EQ(list.nextOf(2), 1u);
    EXPECT_EQ(list.prevOf(1), 2u);
    EXPECT_EQ(list.prevOf(2), 0u);
    list.checkInvariants();
}

TEST(ImmediacyList, UnlinkMiddleReconnects)
{
    ImmediacyList list(4);
    list.insertAfter(0, 1);
    list.insertAfter(1, 2);  // chain 0 -> 1 -> 2
    list.unlink(1);          // Figure 5 lines 11-14
    EXPECT_EQ(list.nextOf(0), 2u);
    EXPECT_EQ(list.prevOf(2), 0u);
    EXPECT_FALSE(list.linked(1));
    list.checkInvariants();
}

TEST(ImmediacyList, UnlinkEndsAndReuse)
{
    ImmediacyList list(4);
    list.insertAfter(0, 1);
    list.unlink(0);  // head leaves
    EXPECT_FALSE(list.linked(0));
    EXPECT_FALSE(list.linked(1));  // single node = unlinked
    // Worker 0 can re-enter as a thief of 1 (Figure 3(f)).
    list.insertAfter(1, 0);
    EXPECT_EQ(list.nextOf(1), 0u);
    EXPECT_EQ(list.prevOf(0), 1u);
}

TEST(ImmediacyList, UnlinkUnlinkedIsNoop)
{
    ImmediacyList list(2);
    list.unlink(0);
    EXPECT_FALSE(list.linked(0));
}

TEST(ImmediacyList, DownstreamWalkOrder)
{
    ImmediacyList list(5);
    list.insertAfter(0, 1);
    list.insertAfter(1, 2);
    list.insertAfter(2, 3);
    std::vector<WorkerId> visited;
    list.forEachDownstream(0, [&](WorkerId w) {
        visited.push_back(w);
    });
    EXPECT_EQ(visited, (std::vector<WorkerId>{1, 2, 3}));
    EXPECT_EQ(list.downstreamCount(0), 3u);
    EXPECT_EQ(list.downstreamCount(3), 0u);
}

TEST(ImmediacyList, ClearUnlinksAll)
{
    ImmediacyList list(3);
    list.insertAfter(0, 1);
    list.insertAfter(1, 2);
    list.clear();
    for (WorkerId w = 0; w < 3; ++w)
        EXPECT_FALSE(list.linked(w));
}

TEST(ImmediacyListDeath, SelfInsertPanics)
{
    ImmediacyList list(2);
    EXPECT_DEATH(list.insertAfter(1, 1), "steal from itself");
}

TEST(ImmediacyListDeath, DoubleInsertPanics)
{
    ImmediacyList list(3);
    list.insertAfter(0, 1);
    EXPECT_DEATH(list.insertAfter(2, 1), "must be unlinked");
}

/** Property: random steal/retire sequences keep the structure sane. */
class ImmediacyListFuzz : public testing::TestWithParam<uint64_t>
{};

TEST_P(ImmediacyListFuzz, RandomOpsPreserveInvariants)
{
    constexpr unsigned workers = 12;
    ImmediacyList list(workers);
    hermes::util::Rng rng(GetParam());
    for (int op = 0; op < 2000; ++op) {
        const auto w = static_cast<WorkerId>(
            rng.uniformInt(0, workers - 1));
        if (rng.chance(0.55)) {
            // "w runs out of work": relay-free unlink.
            list.unlink(w);
        } else {
            // "w steals from v": must be unlinked first, as the
            // scheduler guarantees via the out-of-work path.
            auto v = static_cast<WorkerId>(
                rng.uniformInt(0, workers - 2));
            if (v >= w)
                ++v;
            list.unlink(w);
            list.insertAfter(v, w);
        }
        list.checkInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImmediacyListFuzz,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
