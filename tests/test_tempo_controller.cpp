/**
 * @file
 * Unit tests for the Figure 5 unified algorithm, including exact
 * replays of the paper's Figure 3 (workpath) and Figure 4
 * (workload) walkthroughs.
 */

#include <gtest/gtest.h>

#include "core/tempo_controller.hpp"
#include "dvfs/simulated.hpp"
#include "platform/frequency.hpp"

using namespace hermes;
using core::TempoConfig;
using core::TempoController;
using core::TempoPolicy;
using core::invalidWorker;
using dvfs::SimulatedDvfs;
using platform::FrequencyLadder;

namespace {

struct Rig
{
    Rig(TempoPolicy policy, std::vector<platform::FreqMhz> rungs,
        unsigned workers = 4, unsigned thresholds = 2)
        : backend(workers, FrequencyLadder(rungs)),
          controller(makeConfig(policy, std::move(rungs),
                                thresholds),
                     backend, workers,
                     [](core::WorkerId w) {
                         return static_cast<platform::DomainId>(w);
                     })
    {
        controller.reset(0.0);
    }

    static TempoConfig
    makeConfig(TempoPolicy policy,
               std::vector<platform::FreqMhz> rungs,
               unsigned thresholds)
    {
        TempoConfig cfg;
        cfg.policy = policy;
        cfg.ladder = FrequencyLadder(std::move(rungs));
        cfg.numThresholds = thresholds;
        cfg.profilerWindow = 1000000;  // keep bootstrap thresholds
        return cfg;
    }

    SimulatedDvfs backend;
    TempoController controller;
};

} // namespace

TEST(TempoController, BootstrapAllFastest)
{
    Rig rig(TempoPolicy::Unified, {2400, 1900, 1600});
    for (core::WorkerId w = 0; w < 4; ++w) {
        EXPECT_EQ(rig.controller.tempoOf(w), 0u);
        EXPECT_EQ(rig.backend.domainFreq(w), 2400u);
    }
}

TEST(TempoController, Figure3WorkpathWalkthrough)
{
    // Four tempo levels so "thief's thief" is distinguishable.
    Rig rig(TempoPolicy::WorkpathOnly, {2400, 2200, 1900, 1600});
    auto &c = rig.controller;

    // (b) worker 1 steals from worker 0: Thief Procrastination.
    c.onStealSuccess(1, 0, 0.1);
    EXPECT_EQ(c.tempoOf(0), 0u);
    EXPECT_EQ(c.tempoOf(1), 1u);
    EXPECT_EQ(c.nextOf(0), 1u);
    EXPECT_EQ(c.prevOf(1), 0u);

    // (c) worker 2 steals from worker 1: a thief's thief runs at a
    // tempo further slower.
    c.onStealSuccess(2, 1, 0.2);
    EXPECT_EQ(c.tempoOf(2), 2u);
    EXPECT_EQ(c.nextOf(1), 2u);

    // (d/e) worker 0 runs out of work: Immediacy Relay raises every
    // downstream thief one level, preserving their order.
    c.onOutOfWork(0, 0.3);
    EXPECT_EQ(c.tempoOf(1), 0u);
    EXPECT_EQ(c.tempoOf(2), 1u);
    EXPECT_FALSE(c.nextOf(0) != invalidWorker);
    EXPECT_EQ(c.prevOf(1), invalidWorker);  // 1 is the new head

    // (f) worker 0 steals from worker 1: a fresh relationship with
    // roles swapped; 0 slots in right after its victim.
    c.onStealSuccess(0, 1, 0.4);
    EXPECT_EQ(c.tempoOf(0), 1u);
    EXPECT_EQ(c.nextOf(1), 0u);
    EXPECT_EQ(c.nextOf(0), 2u);
    EXPECT_EQ(c.prevOf(2), 0u);
}

TEST(TempoController, Figure4WorkloadWalkthrough)
{
    // Three tempo levels, bootstrap thresholds {1, 3} (Figure 4).
    Rig rig(TempoPolicy::WorkloadOnly, {2400, 1900, 1600});
    auto &c = rig.controller;

    // (b) worker 1 steals; its deque is empty (size 0, below the
    // first threshold): lowest tempo.
    c.onStealSuccess(1, 0, 0.1);
    EXPECT_EQ(c.tempoOf(1), 2u);

    // (c) pushes grow the deque past threshold 1: medium tempo.
    c.onPush(1, 1, 0.2);
    EXPECT_EQ(c.tempoOf(1), 1u);
    c.onPush(1, 2, 0.3);
    EXPECT_EQ(c.tempoOf(1), 1u);  // still below threshold 3

    // (d) deque reaches the second threshold: fastest tempo.
    c.onPush(1, 3, 0.4);
    EXPECT_EQ(c.tempoOf(1), 0u);

    // (e) a thief steals from worker 1, dropping the deque below
    // the second threshold: slowed one level.
    c.onVictimStolen(1, 2, 0.5);
    EXPECT_EQ(c.tempoOf(1), 1u);

    // (f) pops drain it below the first threshold: slowest again.
    c.onPopSuccess(1, 0, 0.6);
    EXPECT_EQ(c.tempoOf(1), 2u);
}

TEST(TempoController, UnifiedHeadGuardBlocksWorkloadDowns)
{
    Rig rig(TempoPolicy::Unified, {2400, 1900, 1600});
    auto &c = rig.controller;

    // Worker 0 has prev == null (most immediate work): pushing it up
    // then draining must NOT slow it (the single intersection of the
    // two strategies, Section 3.3).
    c.onPush(0, 4, 0.1);
    EXPECT_EQ(c.tempoOf(0), 0u);
    c.onPopSuccess(0, 0, 0.2);
    EXPECT_EQ(c.tempoOf(0), 0u);
    EXPECT_GE(c.counters().guardBlocks, 1u);

    // A linked thief, in contrast, is subject to workload downs.
    c.onStealSuccess(1, 0, 0.3);
    EXPECT_EQ(c.tempoOf(1), 1u);
    c.onPush(1, 4, 0.4);  // region 2: two ups -> fastest
    EXPECT_EQ(c.tempoOf(1), 0u);
    c.onPopSuccess(1, 0, 0.5);  // region 0: downs allowed
    EXPECT_EQ(c.tempoOf(1), 2u);
}

TEST(TempoController, BaselineIsInert)
{
    Rig rig(TempoPolicy::Baseline, {2400, 1600});
    auto &c = rig.controller;
    c.onStealSuccess(1, 0, 0.1);
    c.onPush(1, 10, 0.2);
    c.onVictimStolen(0, 0, 0.3);
    c.onOutOfWork(0, 0.4);
    for (core::WorkerId w = 0; w < 4; ++w)
        EXPECT_EQ(c.tempoOf(w), 0u);
    EXPECT_EQ(rig.backend.transitionCount(), 0u);
}

TEST(TempoController, WorkpathOnlyIgnoresDequeSizes)
{
    Rig rig(TempoPolicy::WorkpathOnly, {2400, 1900, 1600});
    auto &c = rig.controller;
    c.onPush(0, 10, 0.1);
    c.onPopSuccess(0, 0, 0.2);
    c.onVictimStolen(0, 0, 0.3);
    EXPECT_EQ(c.tempoOf(0), 0u);
    EXPECT_EQ(c.counters().workloadUps, 0u);
    EXPECT_EQ(c.counters().workloadDowns, 0u);
}

TEST(TempoController, StealFromSlowedVictimClamps)
{
    // With a 2-rung ladder the thief of a slow victim cannot go
    // below the slowest usable rung (N-frequency clamping).
    Rig rig(TempoPolicy::WorkpathOnly, {2400, 1600});
    auto &c = rig.controller;
    c.onStealSuccess(1, 0, 0.1);
    EXPECT_EQ(c.tempoOf(1), 1u);
    c.onStealSuccess(2, 1, 0.2);
    EXPECT_EQ(c.tempoOf(2), 1u);  // clamped, not 2
    EXPECT_EQ(rig.backend.domainFreq(2), 1600u);
}

TEST(TempoController, RelayIsIdempotentWhileIdle)
{
    Rig rig(TempoPolicy::Unified, {2400, 1900, 1600});
    auto &c = rig.controller;
    c.onStealSuccess(1, 0, 0.1);
    c.onOutOfWork(0, 0.2);
    const auto after_first = c.counters().relayUps;
    c.onOutOfWork(0, 0.3);  // scheduler retries while idle
    c.onOutOfWork(0, 0.4);
    EXPECT_EQ(c.counters().relayUps, after_first);
}

TEST(TempoController, ResetRestoresBootstrap)
{
    Rig rig(TempoPolicy::Unified, {2400, 1600});
    auto &c = rig.controller;
    c.onStealSuccess(1, 0, 0.1);
    c.onStealSuccess(2, 1, 0.2);
    c.reset(1.0);
    for (core::WorkerId w = 0; w < 4; ++w) {
        EXPECT_EQ(c.tempoOf(w), 0u);
        EXPECT_EQ(c.prevOf(w), invalidWorker);
        EXPECT_EQ(c.nextOf(w), invalidWorker);
    }
    EXPECT_EQ(c.counters().stealDowns, 0u);
}

TEST(TempoController, CountersTrackEvents)
{
    Rig rig(TempoPolicy::Unified, {2400, 1900, 1600});
    auto &c = rig.controller;
    c.onStealSuccess(1, 0, 0.1);
    c.onPush(1, 1, 0.2);
    c.onPush(1, 3, 0.3);
    c.onOutOfWork(0, 0.4);
    const auto k = c.counters();
    EXPECT_EQ(k.stealDowns, 1u);
    EXPECT_EQ(k.workloadUps, 2u);
    EXPECT_EQ(k.relayUps, 1u);
    EXPECT_EQ(k.outOfWorkEvents, 1u);
}

TEST(TempoController, FrequencyOfMatchesBackend)
{
    Rig rig(TempoPolicy::Unified, {2400, 1600});
    auto &c = rig.controller;
    c.onStealSuccess(3, 0, 0.1);
    EXPECT_EQ(c.frequencyOf(3), 1600u);
    EXPECT_EQ(rig.backend.domainFreq(3), 1600u);
}

TEST(TempoControllerDeath, RequiresResolvedLadder)
{
    SimulatedDvfs backend(2, FrequencyLadder({2400, 1600}));
    TempoConfig cfg;  // ladder left unset
    EXPECT_DEATH(TempoController(cfg, backend, 2,
                                 [](core::WorkerId) {
                                     return platform::DomainId(0);
                                 }),
                 "must be resolved");
}

/** N-frequency control: the slowest reachable rung is index N-1. */
class NFrequencyClamp
    : public testing::TestWithParam<std::vector<platform::FreqMhz>>
{};

TEST_P(NFrequencyClamp, ChainedStealsSaturateAtSlowest)
{
    const auto rungs = GetParam();
    Rig rig(TempoPolicy::WorkpathOnly, rungs, 8);
    auto &c = rig.controller;
    for (core::WorkerId thief = 1; thief < 8; ++thief) {
        c.onStealSuccess(thief, thief - 1, 0.1 * thief);
        const auto expect = std::min<size_t>(thief,
                                             rungs.size() - 1);
        EXPECT_EQ(c.tempoOf(thief), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ladders, NFrequencyClamp,
    testing::Values(std::vector<platform::FreqMhz>{2400, 1600},
                    std::vector<platform::FreqMhz>{2400, 1600, 1400},
                    std::vector<platform::FreqMhz>{2400, 1900, 1600},
                    std::vector<platform::FreqMhz>{2400, 2200, 1900,
                                                   1600, 1400}));
