/** @file Correctness tests for the PBBS-style workloads. */

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/hull.hpp"
#include "workloads/knn.hpp"
#include "workloads/ray.hpp"
#include "workloads/registry.hpp"
#include "workloads/sort_radix.hpp"
#include "workloads/sort_sample.hpp"

using namespace hermes;
using namespace hermes::workloads;

namespace {

runtime::Runtime &
rt()
{
    static runtime::Runtime instance([] {
        runtime::RuntimeConfig cfg;
        cfg.numWorkers = 4;
        return cfg;
    }());
    return instance;
}

} // namespace

class SortSizes : public testing::TestWithParam<size_t>
{};

TEST_P(SortSizes, RadixMatchesStdSort)
{
    auto keys = randomKeys(GetParam(), 11);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    radixSort(rt(), keys);
    EXPECT_EQ(keys, expect);
}

TEST_P(SortSizes, SampleSortMatchesStdSort)
{
    auto keys = randomKeys(GetParam(), 13);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    sampleSort(rt(), keys);
    EXPECT_EQ(keys, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         testing::Values(0, 1, 2, 100, 4096, 65536,
                                         1 << 18));

TEST(Sorts, AlreadySortedAndReversed)
{
    std::vector<uint32_t> asc(10000), desc(10000);
    for (uint32_t i = 0; i < 10000; ++i) {
        asc[i] = i;
        desc[i] = 10000 - i;
    }
    auto a = asc;
    radixSort(rt(), a);
    EXPECT_EQ(a, asc);
    auto d = desc;
    sampleSort(rt(), d);
    EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
}

TEST(Sorts, AllEqualKeys)
{
    std::vector<uint32_t> keys(50000, 42);
    radixSort(rt(), keys);
    EXPECT_TRUE(std::all_of(keys.begin(), keys.end(),
                            [](uint32_t k) { return k == 42; }));
    sampleSort(rt(), keys);
    EXPECT_EQ(keys.size(), 50000u);
}

TEST(Knn, MatchesBruteForce)
{
    const auto pts = randomPoints2(2000, 17);
    const auto queries = randomPoints2(200, 19);
    KdTree tree(rt(), pts);

    auto d2 = [](const Point2 &a, const Point2 &b) {
        const double dx = a.x - b.x, dy = a.y - b.y;
        return dx * dx + dy * dy;
    };
    for (const auto &q : queries) {
        size_t brute = 0;
        double best = std::numeric_limits<double>::max();
        for (size_t i = 0; i < pts.size(); ++i) {
            if (d2(pts[i], q) < best) {
                best = d2(pts[i], q);
                brute = i;
            }
        }
        const size_t got = tree.nearest(q);
        // Allow exact ties on distance.
        EXPECT_DOUBLE_EQ(d2(pts[got], q), best);
        (void)brute;
    }
}

TEST(Knn, BatchQueriesParallel)
{
    const auto pts = randomPoints2(20000, 23);
    const auto queries = randomPoints2(5000, 29);
    KdTree tree(rt(), pts);
    const auto nn = nearestNeighbors(rt(), tree, queries);
    ASSERT_EQ(nn.size(), queries.size());
    for (size_t i : nn)
        ASSERT_LT(i, pts.size());
}

TEST(Knn, QueryOnDataPointFindsItself)
{
    const auto pts = randomPoints2(5000, 31);
    KdTree tree(rt(), pts);
    for (size_t i = 0; i < 100; ++i) {
        const size_t got = tree.nearest(pts[i * 37]);
        EXPECT_EQ(pts[got].x, pts[i * 37].x);
        EXPECT_EQ(pts[got].y, pts[i * 37].y);
    }
}

TEST(Ray, BvhMatchesBruteForce)
{
    const auto tris = randomTriangles(800, 41);
    const auto rays = randomRays(400, 43);
    Bvh bvh(rt(), tris);

    for (const auto &r : rays) {
        size_t brute = SIZE_MAX;
        double best = std::numeric_limits<double>::max();
        for (size_t i = 0; i < tris.size(); ++i) {
            const double t = intersect(r, tris[i]);
            if (t > 0.0 && t < best) {
                best = t;
                brute = i;
            }
        }
        const size_t got = bvh.firstHit(r);
        if (brute == SIZE_MAX) {
            EXPECT_EQ(got, SIZE_MAX);
        } else {
            ASSERT_NE(got, SIZE_MAX);
            const double got_t = intersect(r, tris[got]);
            EXPECT_NEAR(got_t, best, 1e-9);
        }
    }
}

TEST(Ray, ParallelCastMatchesSerialTraversal)
{
    const auto tris = randomTriangles(3000, 47);
    const auto rays = randomRays(2000, 53);
    Bvh bvh(rt(), tris);
    const auto hits = castRays(rt(), bvh, rays);
    ASSERT_EQ(hits.size(), rays.size());
    for (size_t i = 0; i < rays.size(); i += 97)
        EXPECT_EQ(hits[i], bvh.firstHit(rays[i]));
}

TEST(Hull, ContainsAllPointsAndIsConvex)
{
    const auto pts = randomPoints2(20000, 59);
    const auto hull = convexHull(rt(), pts);
    ASSERT_GE(hull.size(), 3u);

    // Convexity: consecutive turns never go right (CCW order).
    for (size_t i = 0; i < hull.size(); ++i) {
        const auto &a = hull[i];
        const auto &b = hull[(i + 1) % hull.size()];
        const auto &c = hull[(i + 2) % hull.size()];
        EXPECT_GE(orient(a, b, c), 0.0) << "reflex at " << i;
    }

    // Containment: for a CCW polygon the interior is to the LEFT of
    // every directed edge, so no input point may fall strictly to
    // the right of one.
    for (size_t e = 0; e < hull.size(); ++e) {
        const auto &a = hull[e];
        const auto &b = hull[(e + 1) % hull.size()];
        for (size_t i = 0; i < pts.size(); i += 13) {
            EXPECT_GE(orient(a, b, pts[i]), -1e-12)
                << "point " << i << " outside edge " << e;
        }
    }
}

TEST(Hull, SquareCornersExactly)
{
    std::vector<Point2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1},
                               {0.5, 0.5}, {0.2, 0.8}, {0.9, 0.1}};
    const auto hull = convexHull(rt(), pts);
    EXPECT_EQ(hull.size(), 4u);
}

TEST(Registry, NamesMatchPaper)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "knn");
    EXPECT_EQ(names[4], "hull");
}

TEST(Registry, ChecksumsAreDeterministic)
{
    for (const auto &name : workloadNames()) {
        const uint64_t a = runWorkload(rt(), name, 20000, 7);
        const uint64_t b = runWorkload(rt(), name, 20000, 7);
        EXPECT_EQ(a, b) << name;
        const uint64_t c = runWorkload(rt(), name, 20000, 8);
        EXPECT_NE(a, c) << name << " (seed must matter)";
    }
}

TEST(RegistryDeath, UnknownWorkloadIsFatal)
{
    // The shared rt() runtime keeps worker threads alive, which the
    // default "fast" death-test style cannot tolerate (it forks from
    // a multi-threaded process). Use the threadsafe style — re-exec
    // the binary and run the statement in a fresh process — and give
    // the child its own runtime instead of touching the shared one.
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            runtime::RuntimeConfig cfg;
            cfg.numWorkers = 2;
            runtime::Runtime death_rt(cfg);
            (void)runWorkload(death_rt, "mandelbrot", 100, 1);
        },
        testing::ExitedWithCode(1), "unknown workload");
}
