/** @file Unit tests for CSV emission. */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"

using namespace hermes::util;

TEST(Csv, PlainRows)
{
    CsvWriter csv;
    csv.row({"a", "b", "c"});
    csv.row({"1", "2", "3"});
    EXPECT_EQ(csv.str(), "a,b,c\n1,2,3\n");
}

TEST(Csv, EscapesSeparatorsAndQuotes)
{
    CsvWriter csv;
    csv.row({"x,y", "he said \"hi\"", "line\nbreak"});
    EXPECT_EQ(csv.str(),
              "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Csv, NumericRow)
{
    CsvWriter csv;
    csv.rowNumeric("row", {1.5, 2.0, 0.333333333});
    EXPECT_EQ(csv.str(), "row,1.5,2,0.333333\n");
}

TEST(Csv, WritesFile)
{
    const std::string path = testing::TempDir() + "hermes_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.row({"h1", "h2"});
        csv.rowNumeric("r", {42.0});
    }
    std::ifstream in(path);
    std::string l1, l2;
    std::getline(in, l1);
    std::getline(in, l2);
    EXPECT_EQ(l1, "h1,h2");
    EXPECT_EQ(l2, "r,42");
    std::remove(path.c_str());
}

TEST(Format, FixedAndPercent)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(-1.0, 0), "-1");
    EXPECT_EQ(formatPercent(0.113), "11.3%");
    EXPECT_EQ(formatPercent(0.113, 0), "11%");
}
