/**
 * @file
 * hermes-chaos fault planning as pure data: same-seed determinism,
 * decorrelation from the arrival streams (enabling faults or moving
 * a probability must not shift a single arrival or straggler draw),
 * probability edge cases, backoff bounds, and faults.csv
 * byte-identity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/faults/fault_plan.hpp"
#include "harness/serve/arrivals.hpp"

using hermes::harness::faults::FaultConfig;
using hermes::harness::faults::FaultPlan;
using hermes::harness::faults::generateFaultPlan;
using hermes::harness::faults::retryBackoffNanos;
using hermes::harness::faults::writeFaultsCsv;
using hermes::harness::serve::ArrivalConfig;

namespace {

FaultConfig
chaosConfig()
{
    FaultConfig config;
    config.enabled = true;
    config.failProb = 0.2;
    config.stragglerProb = 0.1;
    config.maxRetries = 2;
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

TEST(FaultPlan, SameSeedYieldsIdenticalPlans)
{
    const FaultConfig config = chaosConfig();
    const FaultPlan a = generateFaultPlan(config, 42, 1000);
    const FaultPlan b = generateFaultPlan(config, 42, 1000);
    ASSERT_EQ(a.requests.size(), 1000u);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_GT(a.faultedCount(), 0u);
}

TEST(FaultPlan, DifferentSeedsYieldDifferentPlans)
{
    const FaultConfig config = chaosConfig();
    const FaultPlan a = generateFaultPlan(config, 42, 1000);
    const FaultPlan b = generateFaultPlan(config, 43, 1000);
    EXPECT_NE(a.requests, b.requests);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(FaultPlan, DisabledConfigDrawsNothing)
{
    FaultConfig config = chaosConfig();
    config.enabled = false;
    const FaultPlan plan = generateFaultPlan(config, 42, 1000);
    EXPECT_TRUE(plan.requests.empty());
    EXPECT_EQ(plan.faultedCount(), 0u);
}

TEST(FaultPlan, EnablingFaultsDoesNotMoveArrivals)
{
    // The whole point of the decorrelated stream tags: the arrival
    // schedule is a pure function of (seed, arrival config) whether
    // or not a fault plan is drawn from the same seed.
    ArrivalConfig arrivals;
    arrivals.seed = 42;
    arrivals.ratePerSec = 5000.0;
    arrivals.durationSec = 0.2;
    const auto before = generateSchedule(arrivals);
    const FaultPlan plan =
        generateFaultPlan(chaosConfig(), arrivals.seed,
                          before.size());
    ASSERT_FALSE(plan.requests.empty());
    const auto after = generateSchedule(arrivals);
    EXPECT_EQ(before, after);
}

TEST(FaultPlan, FailProbDoesNotMoveStragglerDraws)
{
    // Within a request's stream the straggler coin is flipped first,
    // so sweeping failProb leaves the straggler pattern untouched.
    FaultConfig low = chaosConfig();
    low.failProb = 0.01;
    FaultConfig high = chaosConfig();
    high.failProb = 0.99;
    const FaultPlan a = generateFaultPlan(low, 42, 2000);
    const FaultPlan b = generateFaultPlan(high, 42, 2000);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (size_t i = 0; i < a.requests.size(); ++i)
        EXPECT_EQ(a.requests[i].straggler, b.requests[i].straggler)
            << "request " << i;
}

TEST(FaultPlan, ProbabilityEdges)
{
    FaultConfig never = chaosConfig();
    never.failProb = 0.0;
    never.stragglerProb = 0.0;
    const FaultPlan none = generateFaultPlan(never, 42, 500);
    EXPECT_EQ(none.faultedCount(), 0u);
    for (const auto &rf : none.requests) {
        EXPECT_EQ(rf.failAttempts, 0u);
        EXPECT_FALSE(rf.straggler);
    }

    FaultConfig always = chaosConfig();
    always.failProb = 1.0;
    always.stragglerProb = 1.0;
    always.maxRetries = 3;
    const FaultPlan all = generateFaultPlan(always, 42, 500);
    EXPECT_EQ(all.faultedCount(), 500u);
    for (const auto &rf : all.requests) {
        // Every attempt fails: maxRetries + 1 = permanent failure.
        EXPECT_EQ(rf.failAttempts, always.maxRetries + 1);
        EXPECT_TRUE(rf.straggler);
    }
}

TEST(FaultPlan, FailAttemptsNeverExceedsRetryBudget)
{
    FaultConfig config = chaosConfig();
    config.failProb = 0.5;
    config.maxRetries = 4;
    const FaultPlan plan = generateFaultPlan(config, 7, 5000);
    for (const auto &rf : plan.requests)
        EXPECT_LE(rf.failAttempts, config.maxRetries + 1);
}

TEST(FaultPlan, BackoffIsDeterministicBoundedAndGrows)
{
    FaultConfig config = chaosConfig();
    config.retryBackoffMs = 1.0;
    for (uint32_t attempt = 0; attempt < 4; ++attempt) {
        const uint64_t a = retryBackoffNanos(config, 42, 17, attempt);
        const uint64_t b = retryBackoffNanos(config, 42, 17, attempt);
        EXPECT_EQ(a, b);
        // base x 2^attempt, jittered by [0.5, 1.5).
        const double base = 1e6 * static_cast<double>(1u << attempt);
        EXPECT_GE(static_cast<double>(a), 0.5 * base);
        EXPECT_LT(static_cast<double>(a), 1.5 * base);
    }
    // The cap keeps a misconfigured plan from wedging a worker.
    config.retryBackoffMs = 1e4;
    EXPECT_LE(retryBackoffNanos(config, 42, 17, 20),
              static_cast<uint64_t>(1e9));
}

TEST(FaultPlan, CsvIsByteIdenticalPerSeedAndIntegerOnly)
{
    const FaultPlan plan =
        generateFaultPlan(chaosConfig(), 42, 1000);
    const std::string path_a =
        testing::TempDir() + "/faults_a.csv";
    const std::string path_b =
        testing::TempDir() + "/faults_b.csv";
    writeFaultsCsv(path_a, plan);
    writeFaultsCsv(path_b, plan);
    const std::string a = slurp(path_a);
    EXPECT_EQ(a, slurp(path_b));
    EXPECT_EQ(a.find("arrival_index,fail_attempts,straggler"), 0u);
    EXPECT_EQ(a.find('.'), std::string::npos); // integers only
    // One row per faulted request plus the header.
    size_t lines = 0;
    for (char c : a)
        lines += c == '\n';
    EXPECT_EQ(lines, 1 + plan.faultedCount());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}
