/** @file Unit tests for the discrete-event simulator core. */

#include <gtest/gtest.h>

#include "sim/dag_generators.hpp"
#include "sim/simulator.hpp"

using namespace hermes;
using namespace hermes::sim;

namespace {

SimConfig
baseConfig(unsigned workers, const platform::SystemProfile &profile
                                 = platform::systemA())
{
    SimConfig cfg;
    cfg.profile = profile;
    cfg.numWorkers = workers;
    cfg.enableTempo = false;
    cfg.seed = 11;
    return cfg;
}

/** cycles for `ms` at System A's fastest rung. */
double
ms(double v)
{
    return v * 2400.0 * 1e3;
}

} // namespace

TEST(Simulator, SingleFrameTakesWorkOverFrequency)
{
    DagBuilder b;
    const FrameId f = b.newFrame(ms(24.0));  // 24 ms at 2.4 GHz
    const Dag dag = b.build(f);
    const auto r = simulate(dag, baseConfig(1));
    EXPECT_NEAR(r.seconds, 24e-3, 1e-9);
    EXPECT_DOUBLE_EQ(r.stats.executedCycles, dag.totalCycles());
}

TEST(Simulator, ForkUsesSecondWorker)
{
    // Parent spawns a child early; with 2 workers the child's
    // continuation is stolen and both run concurrently.
    DagBuilder b;
    const FrameId parent = b.newFrame(ms(20.0));
    const FrameId child = b.newFrame(ms(19.0));
    b.spawn(parent, ms(1.0), child);
    const Dag dag = b.build(parent);

    const auto serial = simulate(dag, baseConfig(1));
    EXPECT_NEAR(serial.seconds, 39e-3, 1e-4);

    const auto parallel = simulate(dag, baseConfig(2));
    EXPECT_LT(parallel.seconds, 24e-3);
    EXPECT_EQ(parallel.stats.steals, 1u);
}

TEST(Simulator, SequelRunsAfterSync)
{
    DagBuilder b;
    const FrameId first = b.newFrame(ms(5.0));
    const FrameId child = b.newFrame(ms(10.0));
    b.spawn(first, ms(1.0), child);
    const FrameId second = b.newFrame(ms(3.0));
    b.sequel(first, second);
    const Dag dag = b.build(first);
    // Even with many workers the sequel cannot overlap the sync:
    // makespan >= (1 + 10 + 3) ms critical path.
    const auto r = simulate(dag, baseConfig(8));
    EXPECT_GE(r.seconds, 14e-3 - 1e-6);
    EXPECT_DOUBLE_EQ(r.stats.executedCycles, dag.totalCycles());
}

TEST(Simulator, WorkConservationOnBenchmarks)
{
    for (const auto &name : benchmarkNames()) {
        WorkloadParams wp;
        wp.seed = 3;
        const Dag dag = makeBenchmark(name, wp);
        const auto r = simulate(dag, baseConfig(8));
        EXPECT_NEAR(r.stats.executedCycles, dag.totalCycles(),
                    dag.totalCycles() * 1e-9)
            << name;
    }
}

TEST(Simulator, MakespanRespectsGreedyLowerBounds)
{
    WorkloadParams wp;
    wp.seed = 5;
    const Dag dag = makeBenchmark("sort", wp);
    const double rate = 2400.0 * 1e6;
    for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
        const auto r = simulate(dag, baseConfig(workers));
        const double t1 = dag.totalCycles() / rate;
        const double tinf = dag.criticalPathCycles() / rate;
        EXPECT_GE(r.seconds, t1 / workers - 1e-9) << workers;
        EXPECT_GE(r.seconds, tinf - 1e-9) << workers;
        // Greedy-ish upper bound with generous scheduling slack.
        EXPECT_LE(r.seconds, 1.5 * (t1 / workers + tinf) + 1e-3)
            << workers;
    }
}

TEST(Simulator, MoreWorkersNeverMuchSlower)
{
    WorkloadParams wp;
    wp.seed = 9;
    const Dag dag = makeBenchmark("compare", wp);
    double prev = 1e9;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        const auto r = simulate(dag, baseConfig(workers));
        EXPECT_LT(r.seconds, prev * 1.05) << workers;
        prev = r.seconds;
    }
}

TEST(Simulator, DeterministicForEqualSeeds)
{
    WorkloadParams wp;
    wp.seed = 21;
    const Dag dag = makeBenchmark("hull", wp);
    const auto a = simulate(dag, baseConfig(8));
    const auto b = simulate(dag, baseConfig(8));
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.joules, b.joules);
    EXPECT_EQ(a.stats.steals, b.stats.steals);
    EXPECT_EQ(a.stats.eventsProcessed, b.stats.eventsProcessed);
}

TEST(Simulator, SchedulingSeedChangesSchedule)
{
    WorkloadParams wp;
    wp.seed = 21;
    const Dag dag = makeBenchmark("hull", wp);
    auto cfg_a = baseConfig(8);
    auto cfg_b = baseConfig(8);
    cfg_b.seed = 12;
    const auto a = simulate(dag, cfg_a);
    const auto b = simulate(dag, cfg_b);
    EXPECT_NE(a.stats.eventsProcessed, b.stats.eventsProcessed);
}

TEST(Simulator, BaselineEnergyMatchesLedgerSanity)
{
    DagBuilder b;
    const FrameId f = b.newFrame(ms(10.0));
    const Dag dag = b.build(f);
    const auto profile = platform::systemA();
    const auto r = simulate(dag, baseConfig(1, profile));

    // One busy core at fmax, the rest parked; total power must sit
    // between the all-idle and all-active extremes.
    const energy::PowerModel m(profile);
    const double floor_w = m.uncorePower()
        + profile.topology.numCores() * m.coreIdlePower(1400);
    const double ceil_w = m.uncorePower()
        + profile.topology.numCores() * m.coreActivePower(2400);
    EXPECT_GT(r.joules, floor_w * r.seconds * 0.9);
    EXPECT_LT(r.joules, ceil_w * r.seconds);
}

TEST(Simulator, SeriesEnergyTracksExactEnergy)
{
    WorkloadParams wp;
    wp.seed = 2;
    const Dag dag = makeBenchmark("ray", wp);
    const auto r = simulate(dag, baseConfig(8));
    EXPECT_NEAR(r.seriesJoules, r.joules, 0.05 * r.joules);
}

TEST(Simulator, PowerSeriesRecordingMatchesDuration)
{
    WorkloadParams wp;
    wp.seed = 2;
    const Dag dag = makeBenchmark("sort", wp);
    auto cfg = baseConfig(8);
    cfg.recordPowerSeries = true;
    const auto r = simulate(dag, cfg);
    const double expect = r.seconds * 100.0;
    EXPECT_NEAR(static_cast<double>(r.powerSeries.size()), expect,
                1.0);
    for (double w : r.powerSeries)
        ASSERT_GT(w, 0.0);
}

TEST(Simulator, WideLoopEngagesAllWorkers)
{
    WorkloadParams wp;
    wp.seed = 4;
    const Dag dag = makeBenchmark("knn", wp);
    const auto r = simulate(dag, baseConfig(16));
    EXPECT_GT(r.stats.steals, 15u);  // everyone acquired work
    double busy = 0.0;
    for (double s : r.busySecondsAtRung)
        busy += s;
    // Aggregate utilization above 60% on a wide benchmark.
    EXPECT_GT(busy / (r.seconds * 16.0), 0.6);
}

TEST(SimulatorDeath, MoreWorkersThanDomainsIsFatal)
{
    DagBuilder b;
    const FrameId f = b.newFrame(1000.0);
    const Dag dag = b.build(f);
    auto cfg = baseConfig(17);  // System A has 16 domains
    EXPECT_EXIT((void)Simulator(dag, cfg),
                testing::ExitedWithCode(1), "clock domain");
}
