/**
 * @file
 * The stealing-policy layer: victim probe order (locality passes,
 * legacy-ring reproduction under localityRounds=0), the runtime's
 * domain wiring, bulk-steal accounting, and locality/wake stats under
 * a synthetic 2-domain DomainMap.
 */

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/steal_policy.hpp"

using namespace hermes;
using runtime::appendVictimOrder;
using runtime::includeGlobalPass;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::StealPolicy;

namespace {

/** The pre-locality hunt: every other worker once from a random
 * start, one RNG draw — the order the scheduler used before the
 * policy layer existed. */
std::vector<core::WorkerId>
legacyRing(util::Rng &rng, core::WorkerId self, unsigned n)
{
    std::vector<core::WorkerId> order;
    const auto start = static_cast<unsigned>(
        rng.uniformInt(0, static_cast<int64_t>(n) - 1));
    for (unsigned k = 0; k < n; ++k) {
        const auto victim = static_cast<core::WorkerId>((start + k) % n);
        if (victim != self)
            order.push_back(victim);
    }
    return order;
}

RuntimeConfig
twoDomainConfig(unsigned workers_per_domain = 2)
{
    RuntimeConfig cfg;
    cfg.numWorkers = 2 * workers_per_domain;
    std::vector<platform::DomainId> map;
    for (unsigned w = 0; w < cfg.numWorkers; ++w)
        map.push_back(w < workers_per_domain ? 0u : 1u);
    cfg.stealPolicy.domainMap = platform::DomainMap(std::move(map));
    return cfg;
}

} // namespace

TEST(VictimOrder, LocalityRoundsZeroReplaysTheLegacyRingBitwise)
{
    // The global start is drawn *after* the (absent) locality pass,
    // so the RNG stream — and with it every victim order — must be
    // bitwise-identical to the legacy uniform ring across a long run
    // of hunts sharing one generator.
    const uint64_t seed = util::mix64(0x9e3779b97f4a7c15ULL, 2);
    util::Rng legacy_rng(seed);
    util::Rng policy_rng(seed);
    const unsigned n = 8;
    const std::vector<core::WorkerId> peers{0, 1, 3}; // ignored at 0 rounds
    std::vector<core::WorkerId> order;
    for (int hunt = 0; hunt < 1000; ++hunt) {
        appendVictimOrder(policy_rng, 2, n, peers, 0, order);
        ASSERT_EQ(order, legacyRing(legacy_rng, 2, n))
            << "hunt " << hunt << " diverged";
    }
}

TEST(VictimOrder, SingleDomainPassIsSkippedAndStaysOnLegacyStream)
{
    // When every other worker is a local peer the locality pass adds
    // nothing; it must be skipped so the default single-domain
    // configuration keeps the legacy stream even with rounds > 0.
    const uint64_t seed = 42;
    util::Rng legacy_rng(seed);
    util::Rng policy_rng(seed);
    const unsigned n = 4;
    const std::vector<core::WorkerId> all_peers{0, 2, 3};
    std::vector<core::WorkerId> order;
    for (int hunt = 0; hunt < 100; ++hunt) {
        appendVictimOrder(policy_rng, 1, n, all_peers, 3, order);
        ASSERT_EQ(order, legacyRing(legacy_rng, 1, n));
    }
}

TEST(VictimOrder, SameDomainVictimsAreProbedBeforeRemoteOnes)
{
    // Synthetic 2-domain split of 8 workers: every hunt must list
    // all of the thief's domain before any victim outside it.
    util::Rng rng(7);
    const unsigned n = 8;
    const std::vector<core::WorkerId> peers{4, 6, 7}; // self = 5
    std::vector<core::WorkerId> order;
    for (int hunt = 0; hunt < 200; ++hunt) {
        appendVictimOrder(rng, 5, n, peers, 1, order);
        // One locality pass + the full ring minus self.
        ASSERT_EQ(order.size(), peers.size() + (n - 1));
        // The first |peers| probes are exactly the local peers.
        std::vector<core::WorkerId> head(order.begin(),
                                         order.begin() + 3);
        std::sort(head.begin(), head.end());
        EXPECT_EQ(head, peers);
        // No probe ever targets the thief itself.
        for (const auto v : order)
            EXPECT_NE(v, 5u);
        // The fallback ring still covers every other worker.
        std::vector<core::WorkerId> tail(order.begin() + 3,
                                         order.end());
        std::sort(tail.begin(), tail.end());
        EXPECT_EQ(tail,
                  (std::vector<core::WorkerId>{0, 1, 2, 3, 4, 6, 7}));
    }
}

TEST(VictimOrder, ExtraLocalityRoundsRepeatTheDomainPass)
{
    util::Rng rng(9);
    const std::vector<core::WorkerId> peers{1};
    std::vector<core::WorkerId> order;
    appendVictimOrder(rng, 0, 4, peers, 3, order);
    ASSERT_EQ(order.size(), 3u + 3u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_EQ(order[2], 1u);
}

TEST(VictimOrder, SingleWorkerPoolHasNoVictims)
{
    util::Rng rng(1);
    std::vector<core::WorkerId> order{99};
    appendVictimOrder(rng, 0, 1, {}, 1, order);
    EXPECT_TRUE(order.empty());
}

TEST(AdaptiveLocality, DisabledPolicyAlwaysEscalates)
{
    StealPolicy p; // adaptiveLocality defaults off
    EXPECT_TRUE(includeGlobalPass(p, 100, 0, false));
    EXPECT_TRUE(includeGlobalPass(p, 0, 100, false));
}

TEST(AdaptiveLocality, EscalatesOnlyWhileLocalRatioIsBelowThreshold)
{
    StealPolicy p;
    p.adaptiveLocality = true;
    p.adaptiveLocalityThreshold = 0.5;
    // Ratio above threshold: locality is paying off — stay local.
    EXPECT_FALSE(includeGlobalPass(p, 3, 1, false));   // 0.75
    EXPECT_FALSE(includeGlobalPass(p, 1, 1, false));   // 0.50 == thr
    // Ratio below threshold: escalate to the global ring.
    EXPECT_TRUE(includeGlobalPass(p, 1, 3, false));    // 0.25
    EXPECT_TRUE(includeGlobalPass(p, 0, 10, false));   // 0.00
    // The threshold itself is a knob.
    p.adaptiveLocalityThreshold = 0.9;
    EXPECT_TRUE(includeGlobalPass(p, 3, 1, false));    // 0.75 < 0.9
}

TEST(AdaptiveLocality, FailedHuntAndNoHistoryForceEscalation)
{
    // Liveness: whatever the ratio says, a hunt that failed makes
    // the next one probe the global ring — remote-only work is
    // reachable within two hunts, so local-only probing can trim
    // cost but never starve. No history defaults to escalating too.
    StealPolicy p;
    p.adaptiveLocality = true;
    EXPECT_TRUE(includeGlobalPass(p, 50, 0, true));
    EXPECT_TRUE(includeGlobalPass(p, 0, 0, false));
}

TEST(AdaptiveLocality, LocalOnlyHuntEmitsOnlyLocalityPasses)
{
    // include_global = false emits the locality passes alone — no
    // ring victims — but the ring's RNG draw is still consumed and
    // discarded, so the hunt advances the stream exactly like a full
    // hunt (the alignment test below pins that down).
    util::Rng rng(123);
    const unsigned n = 8;
    const std::vector<core::WorkerId> peers{4, 6, 7}; // self = 5
    std::vector<core::WorkerId> local_only;
    appendVictimOrder(rng, 5, n, peers, 1, local_only, false);
    ASSERT_EQ(local_only.size(), peers.size());
    std::vector<core::WorkerId> sorted = local_only;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, peers);
}

TEST(AdaptiveLocality, LocalOnlyHuntsKeepTheRngStreamAligned)
{
    // The carried ROADMAP bug: a local-only hunt used to skip the
    // global ring's draw, desynchronizing the per-thief stream from
    // fixed-rounds policies. With draw-and-discard, a run that mixes
    // local-only and full hunts must stay bitwise-identical — hunt
    // by hunt — to an all-full-hunts replay of the same seed: each
    // local-only order is exactly the locality prefix of the full
    // order it replaces, and every subsequent full hunt matches.
    const uint64_t seed = util::mix64(0xfeedULL, 5);
    util::Rng adaptive_rng(seed);
    util::Rng fixed_rng(seed);
    const unsigned n = 8;
    const std::vector<core::WorkerId> peers{4, 6, 7}; // self = 5
    std::vector<core::WorkerId> adaptive_order, fixed_order;
    for (int hunt = 0; hunt < 500; ++hunt) {
        // Arbitrary deterministic mix of local-only and full hunts.
        const bool local_only = (hunt % 3) == 1 || (hunt % 7) == 2;
        appendVictimOrder(adaptive_rng, 5, n, peers, 1,
                          adaptive_order, !local_only);
        appendVictimOrder(fixed_rng, 5, n, peers, 1, fixed_order);
        if (local_only) {
            ASSERT_EQ(adaptive_order.size(), peers.size())
                << "hunt " << hunt;
            const std::vector<core::WorkerId> prefix(
                fixed_order.begin(),
                fixed_order.begin()
                    + static_cast<long>(peers.size()));
            ASSERT_EQ(adaptive_order, prefix)
                << "hunt " << hunt << " locality prefix diverged";
        } else {
            ASSERT_EQ(adaptive_order, fixed_order)
                << "hunt " << hunt << " stream desynchronized";
        }
    }
}

TEST(StealPolicy, RuntimeDerivesSingleDomainMapOnThisHost)
{
    // hostSystem() describes single-core domains; however many
    // workers, the derived map must cover them all.
    RuntimeConfig cfg;
    cfg.numWorkers = 4;
    Runtime rt(cfg);
    EXPECT_EQ(rt.domainMap().numWorkers(), 4u);
    EXPECT_GE(rt.domainMap().numDomains(), 1u);
}

TEST(StealPolicy, DomainOverrideIsWiredThrough)
{
    Runtime rt(twoDomainConfig());
    EXPECT_EQ(rt.domainMap().numDomains(), 2u);
    EXPECT_TRUE(rt.domainMap().sameDomain(0, 1));
    EXPECT_FALSE(rt.domainMap().sameDomain(1, 2));
}

TEST(StealPolicyDeath, MismatchedOverrideIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            RuntimeConfig cfg;
            cfg.numWorkers = 4;
            cfg.stealPolicy.domainMap =
                platform::DomainMap::uniform(2);
            Runtime rt(cfg);
        },
        testing::ExitedWithCode(1), "domainMap covers");
}

namespace {

/** Sustained multi-quantum load (as in the runtime steal tests):
 * tiny spinning tasks so thieves participate even on one CPU. */
void
spinLoad(Runtime &rt, size_t tasks, unsigned spin_us)
{
    rt.run([&] {
        runtime::parallelFor(rt, 0, tasks, 1, [&](size_t) {
            const auto until = std::chrono::steady_clock::now()
                + std::chrono::microseconds(spin_us);
            while (std::chrono::steady_clock::now() < until) {
            }
        });
    });
}

} // namespace

TEST(StealPolicy, BulkStealsLandMoreThanOneTaskPerSteal)
{
    // Fork-join burst: recursive parallelFor splitting stocks every
    // deque with several tasks, so steal-half grabs land batches.
    auto cfg = twoDomainConfig();
    ASSERT_TRUE(cfg.stealPolicy.stealHalf);
    Runtime rt(cfg);
    spinLoad(rt, 2000, 20);

    const auto s = rt.stats();
    ASSERT_GT(s.steals, 0u);
    EXPECT_GT(s.bulkSteals, 0u) << "no grab ever landed 2+ tasks";
    EXPECT_GT(s.tasksPerSteal(), 1.0);
    EXPECT_EQ(s.localHits + s.remoteHits, s.steals);
    // The histogram accounts for every steal, with mass above the
    // singleton bucket.
    uint64_t hist_total = 0;
    for (unsigned b = 0; b < runtime::RuntimeStats::kStealSizeBuckets;
         ++b)
        hist_total += s.stealSize[b];
    EXPECT_EQ(hist_total, s.steals);
    EXPECT_GT(s.steals - s.stealSize[0], 0u);
    // Identity from test_runtime still holds: each steal op executes
    // exactly one task directly; the surplus re-enters via pushes.
    EXPECT_EQ(s.executed, s.pops + s.steals + s.injected + s.inlined);
}

TEST(StealPolicy, StealHalfOffKeepsSingleTaskGrabs)
{
    auto cfg = twoDomainConfig();
    cfg.stealPolicy.stealHalf = false;
    Runtime rt(cfg);
    spinLoad(rt, 1000, 20);

    const auto s = rt.stats();
    ASSERT_GT(s.steals, 0u);
    EXPECT_EQ(s.bulkSteals, 0u);
    EXPECT_EQ(s.stolenTasks, s.steals);
    EXPECT_DOUBLE_EQ(s.tasksPerSteal(), 1.0);
    EXPECT_EQ(s.stealSize[0], s.steals);
}

TEST(StealPolicy, LocalHitsDominateUnderBalancedLoad)
{
    // Two synthetic domains of two workers: with every deque stocked
    // by the recursive split, the same-domain pass (probed first)
    // should land the majority of steals.
    auto cfg = twoDomainConfig();
    ASSERT_EQ(cfg.stealPolicy.localityRounds, 1u);
    Runtime rt(cfg);
    spinLoad(rt, 4000, 20);

    const auto s = rt.stats();
    ASSERT_GT(s.steals, 0u);
    EXPECT_GT(s.localHits, 0u);
    EXPECT_GE(s.localHits, s.remoteHits)
        << "locality pass did not dominate: " << s.localHits
        << " local vs " << s.remoteHits << " remote hits";
}

TEST(AdaptiveLocality, RuntimeCompletesWorkWithAdaptiveHunts)
{
    // End-to-end wiring smoke test: adaptive hunts must never strand
    // work (the failed-hunt escalation guard), and the usual steal
    // accounting still reconciles.
    auto cfg = twoDomainConfig();
    cfg.stealPolicy.adaptiveLocality = true;
    Runtime rt(cfg);
    spinLoad(rt, 2000, 20);

    const auto s = rt.stats();
    ASSERT_GT(s.steals, 0u);
    EXPECT_EQ(s.localHits + s.remoteHits, s.steals);
    EXPECT_EQ(s.executed, s.pops + s.steals + s.injected + s.inlined);
}

TEST(StealPolicy, WakeSelectionCountsDomainOutcomes)
{
    // Churn the pool through park/wake cycles; every targeted wake
    // must be classified as local or remote, and the two counters
    // only ever grow.
    Runtime rt(twoDomainConfig());
    for (int cycle = 0; cycle < 20; ++cycle) {
        spinLoad(rt, 64, 5);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto s = rt.stats();
    // Spawn-side wakes carry the producer's domain, inject-side ones
    // carry none; either way the sum tracks the notify count, which
    // at minimum covers the first wake of each cycle.
    EXPECT_GT(s.localWakes + s.remoteWakes, 0u);
}
