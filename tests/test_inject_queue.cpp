/**
 * @file
 * The lock-free sharded inject path: per-cell sequence wrap-around,
 * capacity-full spillover ordering, exactly-once delivery under a
 * multi-producer × multi-consumer torture loop, the Runtime::submit
 * API, and the `useLockFreeInject = false` legacy replay.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/inject_queue.hpp"
#include "runtime/scheduler.hpp"

using namespace hermes;
using runtime::InjectPolicy;
using runtime::InjectQueue;
using runtime::InjectRing;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::Task;
using runtime::TaskGroup;

namespace {

/** A task whose body records `value` into `sink` when executed. */
Task
marker(std::vector<int> &sink, int value)
{
    return Task([&sink, value] { sink.push_back(value); }, nullptr);
}

/** Run a popped task and return the recorded value. */
int
valueOf(Task &t, std::vector<int> &sink)
{
    sink.clear();
    t.body();
    return sink.empty() ? -1 : sink.back();
}

} // namespace

TEST(InjectRing, FifoWithinOneLap)
{
    InjectRing ring(8);
    std::vector<int> sink;
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(marker(sink, i)));
    Task out;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(valueOf(out, sink), i);
    }
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(InjectRing, SequenceNumbersSurviveManyWrapArounds)
{
    // A 4-slot ring cycled far past its capacity: each lap reuses
    // every cell, so a stale per-cell sequence (not advanced by
    // capacity on pop) would wedge the ring or reorder tasks.
    InjectRing ring(4);
    ASSERT_EQ(ring.capacity(), 4u);
    std::vector<int> sink;
    Task out;
    int next_push = 0, next_pop = 0;
    for (int round = 0; round < 1000; ++round) {
        // Vary occupancy so claims land on every cell phase.
        const int burst = 1 + round % 3;
        for (int i = 0; i < burst; ++i)
            ASSERT_TRUE(ring.tryPush(marker(sink, next_push++)));
        for (int i = 0; i < burst; ++i) {
            ASSERT_TRUE(ring.tryPop(out));
            ASSERT_EQ(valueOf(out, sink), next_pop++);
        }
    }
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(InjectRing, FullRingRejectsAndLeavesTaskIntact)
{
    InjectRing ring(3); // rounds up to 4
    ASSERT_EQ(ring.capacity(), 4u);
    std::vector<int> sink;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(marker(sink, i)));
    Task extra = marker(sink, 99);
    EXPECT_FALSE(ring.tryPush(std::move(extra)));
    // The rejected task must still be runnable — the queue spills it.
    ASSERT_TRUE(static_cast<bool>(extra));
    EXPECT_EQ(valueOf(extra, sink), 99);
    Task out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(valueOf(out, sink), 0);
    // The freed cell is immediately reusable.
    EXPECT_TRUE(ring.tryPush(marker(sink, 4)));
}

TEST(InjectQueue, CapacityFullSpilloverPreservesOrder)
{
    // One shard of 4: pushes 0-3 take the ring, 4-11 spill. With
    // the drain-back disabled (the legacy replay) the drain must
    // hand back the ring portion first (the older tasks), then the
    // spill portion, both in FIFO order — and report the source of
    // every pop.
    InjectPolicy policy;
    policy.shardPerDomain = false;
    policy.shardCapacity = 4;
    policy.drainBackBatch = 0;
    InjectQueue q(policy, 1);
    ASSERT_EQ(q.numShards(), 1u);

    std::vector<int> sink;
    for (int i = 0; i < 12; ++i) {
        const auto path = q.push(marker(sink, i), 0);
        EXPECT_EQ(path,
                  i < 4 ? InjectQueue::PushPath::Ring
                        : InjectQueue::PushPath::Spill)
            << "task " << i;
    }
    EXPECT_EQ(q.spillSizeApprox(), 8u);

    Task out;
    for (int i = 0; i < 12; ++i) {
        const auto src = q.tryPop(out, 0);
        EXPECT_EQ(src,
                  i < 4 ? InjectQueue::PopSource::PreferredShard
                        : InjectQueue::PopSource::Spill)
            << "pop " << i;
        EXPECT_EQ(valueOf(out, sink), i);
    }
    EXPECT_EQ(q.tryPop(out, 0), InjectQueue::PopSource::None);
    EXPECT_EQ(q.spillSizeApprox(), 0u);
    EXPECT_EQ(q.drainBacks(), 0u);
}

TEST(InjectQueue, DrainBackRestoresFifoUnderSustainedOverflow)
{
    // Same overflow as above but with the drain-back on (default):
    // every pop that frees a ring slot pulls the oldest spilled task
    // into the ring, so delivery is *exact* FIFO across the
    // ring/spill boundary and — once the spill has drained back —
    // served from the ring, not the spill mutex.
    InjectPolicy policy;
    policy.shardPerDomain = false;
    policy.shardCapacity = 4;
    InjectQueue q(policy, 1);

    std::vector<int> sink;
    for (int i = 0; i < 12; ++i)
        q.push(marker(sink, i), 0);
    EXPECT_EQ(q.spillSizeApprox(), 8u);

    Task out;
    for (int i = 0; i < 12; ++i) {
        const auto src = q.tryPop(out, 0);
        // Each pop frees one slot and the drain-back refills it from
        // the spill head, so no pop ever has to fall through to the
        // spill path.
        EXPECT_EQ(src, InjectQueue::PopSource::PreferredShard)
            << "pop " << i;
        EXPECT_EQ(valueOf(out, sink), i) << "pop " << i;
    }
    EXPECT_EQ(q.tryPop(out, 0), InjectQueue::PopSource::None);
    EXPECT_EQ(q.spillSizeApprox(), 0u);
    EXPECT_EQ(q.drainBacks(), 8u);
}

TEST(InjectQueue, DrainBackBatchIsBoundedPerPop)
{
    // A larger overflow than one batch: each pop may move at most
    // drainBackBatch spilled tasks, so the spill shrinks stepwise
    // (bounded mutex hold) rather than all at once.
    InjectPolicy policy;
    policy.shardPerDomain = false;
    policy.shardCapacity = 2;
    policy.drainBackBatch = 1;
    InjectQueue q(policy, 1);

    std::vector<int> sink;
    for (int i = 0; i < 8; ++i)
        q.push(marker(sink, i), 0);
    EXPECT_EQ(q.spillSizeApprox(), 6u);

    Task out;
    ASSERT_EQ(q.tryPop(out, 0), InjectQueue::PopSource::PreferredShard);
    EXPECT_EQ(valueOf(out, sink), 0);
    // One pop, one freed slot, batch 1: exactly one task moved back.
    EXPECT_EQ(q.spillSizeApprox(), 5u);
    EXPECT_EQ(q.drainBacks(), 1u);

    // Delivery stays exact FIFO to the end.
    for (int i = 1; i < 8; ++i) {
        ASSERT_NE(q.tryPop(out, 0), InjectQueue::PopSource::None);
        EXPECT_EQ(valueOf(out, sink), i) << "pop " << i;
    }
    EXPECT_EQ(q.tryPop(out, 0), InjectQueue::PopSource::None);
    EXPECT_EQ(q.spillSizeApprox(), 0u);
}

TEST(InjectQueue, ConsumerDrainsOwnDomainShardFirst)
{
    InjectPolicy policy;
    policy.shardCapacity = 16;
    InjectQueue q(policy, 2);
    ASSERT_EQ(q.numShards(), 2u);

    std::vector<int> sink;
    // Domain-0 producers push 0-3, domain-1 producers push 10-13.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(q.push(marker(sink, i), 0),
                  InjectQueue::PushPath::Ring);
    for (int i = 10; i < 14; ++i)
        EXPECT_EQ(q.push(marker(sink, i), 1),
                  InjectQueue::PushPath::Ring);

    // A domain-1 consumer sees its own shard's tasks first…
    Task out;
    for (int i = 10; i < 14; ++i) {
        ASSERT_EQ(q.tryPop(out, 1),
                  InjectQueue::PopSource::PreferredShard);
        EXPECT_EQ(valueOf(out, sink), i);
    }
    // …then falls over to the other domain's shard.
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(q.tryPop(out, 1), InjectQueue::PopSource::OtherShard);
        EXPECT_EQ(valueOf(out, sink), i);
    }
    EXPECT_EQ(q.tryPop(out, 1), InjectQueue::PopSource::None);
}

TEST(InjectQueueTorture, ExactlyOnceUnderProducersAndConsumers)
{
    // N producers × M consumers over a deliberately tiny ring so the
    // torture covers ring claims, wrap-around, and the spillover
    // path at once. Every task must be delivered exactly once.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 2000;
    constexpr int kTotal = kProducers * kPerProducer;

    InjectPolicy policy;
    policy.shardCapacity = 16;
    InjectQueue q(policy, 2);

    std::vector<std::atomic<int>> hits(kTotal);
    for (auto &h : hits)
        h.store(0);
    std::atomic<int> delivered{0};
    std::atomic<uint64_t> spills{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int k = 0; k < kPerProducer; ++k) {
                const int idx = p * kPerProducer + k;
                Task t([&hits, idx] {
                    hits[idx].fetch_add(1,
                                        std::memory_order_relaxed);
                }, nullptr);
                if (q.push(std::move(t),
                           static_cast<unsigned>(p))
                    == InjectQueue::PushPath::Spill)
                    spills.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&, c] {
            Task out;
            while (delivered.load(std::memory_order_acquire)
                   < kTotal) {
                if (q.tryPop(out, static_cast<unsigned>(c))
                    != InjectQueue::PopSource::None) {
                    out.body();
                    delivered.fetch_add(1,
                                        std::memory_order_release);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(delivered.load(), kTotal);
    for (int i = 0; i < kTotal; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "task " << i;
    // With 16-slot shards and 2000-task producers the ring must have
    // overflowed at least once — otherwise the spill path was not
    // actually exercised.
    EXPECT_GT(spills.load(), 0u);
    EXPECT_EQ(q.spillSizeApprox(), 0u);
}

namespace {

RuntimeConfig
config(unsigned workers)
{
    RuntimeConfig cfg;
    cfg.numWorkers = workers;
    return cfg;
}

} // namespace

TEST(Submit, ExternalThreadSubmissionRunsAndWaits)
{
    Runtime rt(config(4));
    std::atomic<bool> ran{false};
    auto handle = rt.submit([&] { ran.store(true); });
    ASSERT_TRUE(handle.valid());
    handle.wait();
    EXPECT_TRUE(ran.load());
    const auto s = rt.stats();
    EXPECT_GE(s.injected, 1u);
    // Every inject was routed through the lock-free path.
    EXPECT_EQ(s.injectFastPath + s.injectSpill, s.injected);
}

TEST(Submit, HandleWaitRethrowsTaskException)
{
    Runtime rt(config(2));
    auto handle = rt.submit(
        [] { throw std::runtime_error("inject boom"); });
    EXPECT_THROW(handle.wait(), std::runtime_error);
}

TEST(Submit, DroppedHandleDrainsBeforeDestruction)
{
    Runtime rt(config(2));
    std::atomic<bool> ran{false};
    {
        auto handle = rt.submit([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            ran.store(true);
        });
        // handle goes out of scope without wait(): the release of
        // the last reference must drain the group rather than abort
        // on pending tasks.
    }
    EXPECT_TRUE(ran.load());
}

TEST(Submit, ReassignedHandleDrainsTheReplacedSubmission)
{
    // Overwriting the only handle to a still-pending submission is
    // a last-reference release too: the first task must complete
    // before the assignment returns, not leak a pending group.
    Runtime rt(config(2));
    std::atomic<bool> first{false};
    std::atomic<bool> second{false};
    auto handle = rt.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        first.store(true);
    });
    handle = rt.submit([&] { second.store(true); });
    EXPECT_TRUE(first.load());
    handle.wait();
    EXPECT_TRUE(second.load());
}

TEST(Submit, WorkerThreadSubmissionUsesDeque)
{
    // submit() from inside a task runs on a worker: the task takes
    // the deque path, not the inject path.
    Runtime rt(config(2));
    const auto injected_before = rt.stats().injected;
    std::atomic<int> value{0};
    rt.run([&] {
        auto inner = rt.submit([&] { value.store(42); });
        inner.wait();
    });
    EXPECT_EQ(value.load(), 42);
    // Only the outer run() injected; the inner submit did not.
    EXPECT_EQ(rt.stats().injected, injected_before + 1);
}

TEST(InjectPath, BurstAccountsFastPathSpillAndDrain)
{
    // Force spillover with a tiny shard so all three outcome
    // counters move, then check they reconcile: every injected task
    // went ring or spill, and every one was drained exactly once
    // (the drain histogram sums to the injected count).
    auto cfg = config(4);
    cfg.inject.shardCapacity = 8;
    Runtime rt(cfg);

    constexpr int kTasks = 512;
    std::atomic<int> done{0};
    TaskGroup group(rt);
    for (int i = 0; i < kTasks; ++i) {
        group.run(
            [&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(done.load(), kTasks);

    const auto s = rt.stats();
    EXPECT_EQ(s.injected, static_cast<uint64_t>(kTasks));
    EXPECT_EQ(s.injectFastPath + s.injectSpill, s.injected);
    EXPECT_GT(s.injectFastPath, 0u);
    uint64_t drained = 0;
    for (unsigned b = 0; b < runtime::RuntimeStats::kInjectDrainBuckets;
         ++b)
        drained += s.injectDrain[b];
    EXPECT_EQ(drained, s.injected);
    EXPECT_LE(s.injectShardHits, drained);
    EXPECT_EQ(s.injectFastFraction(),
              static_cast<double>(s.injectFastPath)
                  / static_cast<double>(kTasks));
}

TEST(InjectPath, SustainedOverflowDrainsBackAndAccountsEveryTask)
{
    // Sustained overflow of a tiny shard: the spill must engage, the
    // opportunistic drain-back must move spilled tasks back into the
    // ring (the FIFO-recovery ROADMAP item), and the existing drain
    // accounting must still reconcile — the injectDrain histogram
    // sums to the injected count and every task runs exactly once
    // regardless of which of the three storages (ring, spill,
    // drained-back ring slot) it traversed.
    auto cfg = config(2);
    cfg.inject.shardCapacity = 4;
    Runtime rt(cfg);

    constexpr int kProducers = 2;
    constexpr int kPerProducer = 1000;
    constexpr int kTotal = kProducers * kPerProducer;
    std::vector<std::atomic<int>> hits(kTotal);
    for (auto &h : hits)
        h.store(0);

    TaskGroup group(rt);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int k = 0; k < kPerProducer; ++k) {
                const int idx = p * kPerProducer + k;
                group.run([&hits, idx] {
                    hits[idx].fetch_add(1,
                                        std::memory_order_relaxed);
                });
            }
        });
    }
    for (auto &t : producers)
        t.join();
    group.wait();

    for (int i = 0; i < kTotal; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "task " << i;
    const auto s = rt.stats();
    EXPECT_EQ(s.injected, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(s.injectFastPath + s.injectSpill, s.injected);
    // A 4-slot shard under 2000 offered tasks must have spilled, and
    // ring pops with a non-empty spill must have drained some back.
    EXPECT_GT(s.injectSpill, 0u);
    EXPECT_GT(s.injectDrainBack, 0u);
    EXPECT_LE(s.injectDrainBack, s.injectSpill);
    // Ordering/accounting: every injected task was observed by
    // exactly one successful inject pop, drain-back moves included.
    uint64_t drained = 0;
    for (unsigned b = 0;
         b < runtime::RuntimeStats::kInjectDrainBuckets; ++b)
        drained += s.injectDrain[b];
    EXPECT_EQ(drained, s.injected);
}

TEST(InjectPath, MultiProducerSubmitTortureDeliversExactlyOnce)
{
    // External producer threads hammer submit()-style injection into
    // a small-shard runtime while the workers drain: the runtime
    // analogue of the raw queue torture, crossing the full
    // inject → popInjected → execute → TaskGroup path.
    auto cfg = config(4);
    cfg.inject.shardCapacity = 8;
    Runtime rt(cfg);

    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    constexpr int kTotal = kProducers * kPerProducer;
    std::vector<std::atomic<int>> hits(kTotal);
    for (auto &h : hits)
        h.store(0);

    TaskGroup group(rt);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int k = 0; k < kPerProducer; ++k) {
                const int idx = p * kPerProducer + k;
                group.run([&hits, idx] {
                    hits[idx].fetch_add(1,
                                        std::memory_order_relaxed);
                });
            }
        });
    }
    for (auto &t : producers)
        t.join();
    group.wait();

    for (int i = 0; i < kTotal; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "task " << i;
    const auto s = rt.stats();
    EXPECT_EQ(s.injected, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(s.injectFastPath + s.injectSpill, s.injected);
}

TEST(InjectPath, LegacyReplayMatchesLockFreeDelivery)
{
    // useLockFreeInject = false must replay the mutex-queue
    // behavior: identical delivery guarantees, zero ring-path
    // counters, and the same externally observable results as the
    // lock-free configuration on the same workload.
    constexpr int kTasks = 256;
    uint64_t executed[2] = {0, 0};
    int done_count[2] = {0, 0};

    for (const bool lock_free : {false, true}) {
        auto cfg = config(4);
        cfg.inject.useLockFreeInject = lock_free;
        Runtime rt(cfg);

        std::atomic<int> done{0};
        TaskGroup group(rt);
        for (int i = 0; i < kTasks; ++i) {
            group.run([&] {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
        group.wait();

        const auto s = rt.stats();
        done_count[lock_free] = done.load();
        executed[lock_free] = s.executed;
        EXPECT_EQ(s.injected, static_cast<uint64_t>(kTasks));
        if (lock_free) {
            EXPECT_EQ(s.injectFastPath + s.injectSpill, s.injected);
        } else {
            // The legacy queue never touches the ring or the spill.
            EXPECT_EQ(s.injectFastPath, 0u);
            EXPECT_EQ(s.injectSpill, 0u);
            EXPECT_EQ(s.injectShardHits, 0u);
        }
        // Both paths feed the same drain accounting.
        uint64_t drained = 0;
        for (unsigned b = 0;
             b < runtime::RuntimeStats::kInjectDrainBuckets; ++b)
            drained += s.injectDrain[b];
        EXPECT_EQ(drained, s.injected);
    }
    EXPECT_EQ(done_count[0], kTasks);
    EXPECT_EQ(done_count[1], kTasks);
    EXPECT_EQ(executed[0], executed[1]);
}
