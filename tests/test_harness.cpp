/** @file Tests for the experiment harness and reporting. */

#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace hermes;
using harness::ExperimentConfig;
using harness::FigureReport;
using harness::SweepContext;

namespace {

ExperimentConfig
quickConfig()
{
    ExperimentConfig cfg;
    cfg.profile = platform::systemB();
    cfg.benchmark = "sort";
    cfg.workers = 4;
    cfg.trials = 4;
    cfg.warmupTrials = 1;
    return cfg;
}

} // namespace

TEST(Experiment, MeasureAveragesTrials)
{
    const auto m = harness::measure(quickConfig());
    EXPECT_GT(m.meanSeconds, 0.0);
    EXPECT_GT(m.meanJoules, 0.0);
    EXPECT_EQ(m.keptTrials, 3u);
    EXPECT_GT(m.meanEdp(), 0.0);
}

TEST(Experiment, CompareProducesPaperShape)
{
    const auto cmp = harness::compareToBaseline(quickConfig());
    EXPECT_GT(cmp.energySavings(), 0.0);
    EXPECT_LT(cmp.energySavings(), 0.5);
    EXPECT_GT(cmp.timeLoss(), -0.05);
    EXPECT_LT(cmp.timeLoss(), 0.15);
    EXPECT_LT(cmp.normalizedEdp(), 1.05);
}

TEST(Experiment, RunOnceIsDeterministicPerTrial)
{
    const auto cfg = quickConfig();
    const auto a = harness::runOnce(cfg, 2, false);
    const auto b = harness::runOnce(cfg, 2, false);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.joules, b.joules);
    const auto c = harness::runOnce(cfg, 3, false);
    EXPECT_NE(a.seconds, c.seconds);
}

TEST(Experiment, SweepContextReusesBaselines)
{
    SweepContext ctx(quickConfig());
    auto cfg = ctx.make("sort", 4);
    const auto &b1 = ctx.baselineFor(cfg);
    const auto &b2 = ctx.baselineFor(cfg);
    EXPECT_EQ(&b1, &b2);  // same cached object

    auto other = ctx.make("sort", 2);
    const auto &b3 = ctx.baselineFor(other);
    EXPECT_NE(&b1, &b3);
}

TEST(Experiment, SweepCompareConsistentWithDirect)
{
    SweepContext ctx(quickConfig());
    auto cfg = ctx.make("sort", 4);
    const auto via_ctx = ctx.compare(cfg);
    const auto direct = harness::compareToBaseline(cfg);
    EXPECT_DOUBLE_EQ(via_ctx.tempo.meanJoules,
                     direct.tempo.meanJoules);
    EXPECT_DOUBLE_EQ(via_ctx.baseline.meanSeconds,
                     direct.baseline.meanSeconds);
}

TEST(Experiment, DefaultTrialsHonoursEnvironment)
{
    ::setenv("HERMES_TRIALS", "7", 1);
    EXPECT_EQ(ExperimentConfig::defaultTrials(), 7u);
    ::setenv("HERMES_TRIALS", "1", 1);  // below minimum: ignored
    EXPECT_EQ(ExperimentConfig::defaultTrials(), 20u);
    ::unsetenv("HERMES_TRIALS");
    EXPECT_EQ(ExperimentConfig::defaultTrials(), 20u);
}

TEST(Report, WritesTableAndCsv)
{
    const std::string dir = testing::TempDir() + "hermes_report_test";
    ::setenv("HERMES_RESULTS_DIR", dir.c_str(), 1);
    {
        FigureReport report("figtest", "unit-test table",
                            {"row", "a", "b"});
        report.row("one", {1.0, 2.0});
        report.separator();
        report.row("two", {3.5, -4.25});
        const std::string path = report.finish();
        EXPECT_NE(path.find("figtest.csv"), std::string::npos);

        std::ifstream in(path);
        std::string line;
        std::getline(in, line);
        EXPECT_EQ(line, "row,a,b");
        std::getline(in, line);
        EXPECT_EQ(line, "one,1,2");
        std::getline(in, line);
        EXPECT_EQ(line, "two,3.5,-4.25");
    }
    ::unsetenv("HERMES_RESULTS_DIR");
}

TEST(Report, SparklineShapes)
{
    EXPECT_EQ(harness::sparkline({}), "");
    const auto flat = harness::sparkline({5.0, 5.0, 5.0}, 3);
    EXPECT_FALSE(flat.empty());
    const auto ramp =
        harness::sparkline({0, 1, 2, 3, 4, 5, 6, 7}, 8);
    EXPECT_FALSE(ramp.empty());
}

TEST(Experiment, PowerSeriesOnDemand)
{
    auto cfg = quickConfig();
    const auto with = harness::runOnce(cfg, 0, true);
    const auto without = harness::runOnce(cfg, 0, false);
    EXPECT_FALSE(with.powerSeries.empty());
    EXPECT_TRUE(without.powerSeries.empty());
}
