/** @file Unit tests for the linear-bin histogram. */

#include <gtest/gtest.h>

#include "util/histogram.hpp"

using hermes::util::Histogram;

TEST(Histogram, BinsValuesCorrectly)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);   // bin 0
    h.add(1.9);   // bin 0
    h.add(2.0);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0);
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(3), 17.5);
}

TEST(Histogram, AsciiRendersAllBins)
{
    Histogram h(0.0, 4.0, 4);
    for (int i = 0; i < 10; ++i)
        h.add(i % 4 + 0.5);
    const std::string art = h.ascii(20);
    EXPECT_FALSE(art.empty());
    // One line per bin.
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}
