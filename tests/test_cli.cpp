/** @file Unit tests for the flag parser. */

#include <gtest/gtest.h>

#include "util/cli.hpp"

using hermes::util::Cli;

namespace {

Cli
makeCli()
{
    Cli cli("test program");
    cli.addFlag("verbose", "extra logging", false);
    cli.addInt("workers", "worker count", 4);
    cli.addDouble("scale", "input scale", 1.5);
    cli.addString("system", "profile name", "A");
    return cli;
}

} // namespace

TEST(Cli, Defaults)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog"};
    cli.parse(1, argv);
    EXPECT_FALSE(cli.getFlag("verbose"));
    EXPECT_EQ(cli.getInt("workers"), 4);
    EXPECT_DOUBLE_EQ(cli.getDouble("scale"), 1.5);
    EXPECT_EQ(cli.getString("system"), "A");
}

TEST(Cli, EqualsForm)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--workers=8", "--scale=2.25",
                          "--system=B", "--verbose"};
    cli.parse(5, argv);
    EXPECT_TRUE(cli.getFlag("verbose"));
    EXPECT_EQ(cli.getInt("workers"), 8);
    EXPECT_DOUBLE_EQ(cli.getDouble("scale"), 2.25);
    EXPECT_EQ(cli.getString("system"), "B");
}

TEST(Cli, SpaceSeparatedForm)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--workers", "16", "--system",
                          "host"};
    cli.parse(5, argv);
    EXPECT_EQ(cli.getInt("workers"), 16);
    EXPECT_EQ(cli.getString("system"), "host");
}

TEST(Cli, PositionalArguments)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "input.txt", "--workers=2",
                          "more"};
    cli.parse(4, argv);
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
    EXPECT_EQ(cli.positional()[1], "more");
}

TEST(Cli, UsageMentionsEveryFlag)
{
    Cli cli = makeCli();
    const std::string usage = cli.usage();
    for (const char *name :
         {"verbose", "workers", "scale", "system"})
        EXPECT_NE(usage.find(name), std::string::npos) << name;
}

TEST(CliDeath, UnknownFlagIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(CliDeath, MalformedIntIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--workers=abc"};
    cli.parse(2, argv);
    EXPECT_EXIT((void)cli.getInt("workers"),
                testing::ExitedWithCode(1), "expects an integer");
}
