/**
 * @file
 * The hermes-scenario exit-code contract, tested end-to-end by
 * subprocessing the real binary (path injected by CMake as
 * HERMES_SCENARIO_BIN):
 *
 *   validate rejects malformed scenarios with pointer-bearing
 *   diagnostics (exit 3); run produces all four bundle artifacts
 *   (exit 0); two same-seed runs agree byte-for-byte on config.json
 *   and the deterministic counter section; compare distinguishes
 *   pass (0), regression (5), and missing baseline (4); usage
 *   errors are 2; soak is 0 when healthy and its checkpoint
 *   sequence continues across invocations; sweep produces the
 *   curves pair plus per-point bundles (exit 0), refuses scenarios
 *   without a sweep block (3), re-reduces stored bundles to
 *   byte-identical curves.json under --reduce-only, and reports a
 *   doctored gate metric as exit 7.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace fs = std::filesystem;
using hermes::util::JsonParseResult;
using hermes::util::parseJson;

namespace {

/** Fresh working directory per test, removed on teardown. */
class ScenarioCli : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path()
            / ("hermes_scenario_cli_"
               + std::string(
                   testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    /** Run `hermes-scenario <args>` with stdout+stderr captured;
     * returns the exit code. */
    int
    run(const std::string &args, std::string *output = nullptr)
    {
        const std::string log = path("last_output.txt");
        const std::string cmd = std::string(HERMES_SCENARIO_BIN)
            + " " + args + " > " + log + " 2>&1";
        const int rc = std::system(cmd.c_str());
        if (output != nullptr)
            *output = slurp(log);
        EXPECT_TRUE(WIFEXITED(rc)) << cmd;
        return WEXITSTATUS(rc);
    }

    static std::string
    slurp(const std::string &file)
    {
        std::ifstream in(file);
        std::stringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

    void
    writeFile(const std::string &name, const std::string &content)
    {
        std::ofstream out(path(name));
        out << content;
    }

    /** A small, fast, valid fork-join scenario with one pinned
     * threshold. */
    void
    writeGoodScenario(const std::string &name = "s.json")
    {
        writeFile(name, R"({
  "name": "cli_test",
  "kind": "fork_join",
  "seed": 11,
  "runtime": {"workers": 2},
  "fork_join": {"tasks": 32, "spin_nanos": 1000, "repeats": 2},
  "thresholds": {
    "executed_matches_expected":
      {"direction": "higher", "max_regression": 0.0}
  },
  "soak": {"duration_sec": 1, "checkpoint_sec": 0.2}
})");
    }

    /** A small serve scenario with a 2-rate x 2-variant sweep grid
     * and one pinned gate. */
    void
    writeSweepScenario(const std::string &name = "sweep.json")
    {
        writeFile(name, R"({
  "name": "cli_sweep",
  "kind": "serve",
  "seed": 11,
  "runtime": {"workers": 2},
  "serve": {
    "rate_per_sec": 500, "duration_sec": 0.05,
    "producers": 1, "spin_nanos": 1000,
    "admission": true, "admit_high": 256, "admit_low": 64
  },
  "sweep": {
    "rates_per_sec": [500, 1000],
    "knee_p99_ns": 1000000000,
    "variants": [
      {"name": "a"},
      {"name": "b", "dvfs": {"tempo": true}}
    ],
    "gates": {
      "completed_eq_accepted":
        {"direction": "higher", "max_regression": 0.0}
    }
  }
})");
    }

    fs::path dir_;
};

/** The "deterministic" section of a run.json, re-serialized via the
 * parsed member list so the comparison is exact but formatting-
 * independent. */
std::string
deterministicSection(const std::string &run_json)
{
    const JsonParseResult parsed = parseJson(run_json);
    EXPECT_TRUE(parsed.ok);
    const auto *det = parsed.value.find("deterministic");
    EXPECT_NE(det, nullptr);
    std::string out;
    for (const auto &[key, value] : det->members())
        out += key + "="
            + std::to_string(
                static_cast<uint64_t>(value.number()))
            + ";";
    return out;
}

} // namespace

TEST_F(ScenarioCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(run(""), 2);
    EXPECT_EQ(run("frobnicate x.json"), 2);
    writeGoodScenario();
    EXPECT_EQ(run("run " + path("s.json") + " --bogus-flag"), 2);
}

TEST_F(ScenarioCli, ValidateRejectsMalformedWithPointer)
{
    writeFile("bad.json", R"({
  "name": "bad",
  "kind": "fork_join",
  "runtime": {"workers": "two", "mystery_knob": 1}
})");
    std::string output;
    EXPECT_EQ(run("validate " + path("bad.json"), &output), 3);
    EXPECT_NE(output.find("/runtime/workers"), std::string::npos)
        << output;
    EXPECT_NE(output.find("/runtime/mystery_knob"),
              std::string::npos)
        << output;
}

TEST_F(ScenarioCli, ValidateRejectsUnparsableJson)
{
    writeFile("torn.json", R"({"name": "x", "kind": )");
    std::string output;
    EXPECT_EQ(run("validate " + path("torn.json"), &output), 3);
    EXPECT_FALSE(output.empty());
}

TEST_F(ScenarioCli, ValidateAcceptsAndEchoesCanonicalForm)
{
    writeGoodScenario();
    std::string output;
    EXPECT_EQ(run("validate " + path("s.json"), &output), 0);
    EXPECT_NE(output.find("\"name\": \"cli_test\""),
              std::string::npos)
        << output;
}

TEST_F(ScenarioCli, RunProducesAllFourArtifacts)
{
    writeGoodScenario();
    EXPECT_EQ(
        run("run " + path("s.json") + " --out " + path("out")), 0);
    EXPECT_TRUE(fs::exists(path("out/config.json")));
    EXPECT_TRUE(fs::exists(path("out/run.json")));
    EXPECT_TRUE(fs::exists(path("out/events.jsonl")));
    EXPECT_TRUE(fs::exists(path("out/summary.md")));

    // run.json parses and carries the GBench shape bench_compare.py
    // consumes plus the deterministic section.
    const JsonParseResult parsed =
        parseJson(slurp(path("out/run.json")));
    ASSERT_TRUE(parsed.ok);
    ASSERT_NE(parsed.value.find("benchmarks"), nullptr);
    ASSERT_NE(parsed.value.find("deterministic"), nullptr);
}

TEST_F(ScenarioCli, SameSeedRunsAreDeterministic)
{
    writeGoodScenario();
    ASSERT_EQ(
        run("run " + path("s.json") + " --out " + path("a")), 0);
    ASSERT_EQ(
        run("run " + path("s.json") + " --out " + path("b")), 0);

    // config.json byte-identical; deterministic counters equal.
    EXPECT_EQ(slurp(path("a/config.json")),
              slurp(path("b/config.json")));
    const std::string det_a =
        deterministicSection(slurp(path("a/run.json")));
    EXPECT_EQ(det_a, deterministicSection(slurp(path("b/run.json"))));
    EXPECT_NE(det_a.find("checksum="), std::string::npos) << det_a;
}

TEST_F(ScenarioCli, CompareWithoutBaselineExitsFour)
{
    writeGoodScenario();
    EXPECT_EQ(run("compare " + path("s.json") + " --baselines "
                  + path("baselines")),
              4);
}

TEST_F(ScenarioCli, BaselineThenCompareExitsZeroAndWritesDiff)
{
    writeGoodScenario();
    ASSERT_EQ(run("baseline " + path("s.json") + " --baselines "
                  + path("baselines")),
              0);
    EXPECT_EQ(run("compare " + path("s.json") + " --baselines "
                  + path("baselines") + " --out " + path("cmp")),
              0);
    const std::string diff = slurp(path("cmp/diff.md"));
    EXPECT_NE(diff.find("PASS"), std::string::npos) << diff;
    EXPECT_NE(diff.find("executed_matches_expected"),
              std::string::npos)
        << diff;
}

TEST_F(ScenarioCli, TamperedBaselineExitsFive)
{
    writeGoodScenario();
    ASSERT_EQ(run("baseline " + path("s.json") + " --baselines "
                  + path("baselines")),
              0);

    // Tamper: claim the pinned metric used to be better, a
    // synthetic regression compare must catch (exit 5).
    for (const auto &entry :
         fs::recursive_directory_iterator(path("baselines"))) {
        if (!entry.is_regular_file())
            continue;
        std::string text = slurp(entry.path().string());
        const std::string needle =
            "\"executed_matches_expected\": 1";
        const size_t pos = text.find(needle);
        ASSERT_NE(pos, std::string::npos) << text;
        text.replace(pos, needle.size(),
                     "\"executed_matches_expected\": 2");
        std::ofstream out(entry.path());
        out << text;
    }

    std::string output;
    EXPECT_EQ(run("compare " + path("s.json") + " --baselines "
                      + path("baselines") + " --out " + path("cmp"),
                  &output),
              5);
    EXPECT_NE(output.find("REGRESSION"), std::string::npos)
        << output;
}

TEST_F(ScenarioCli, SoakIsHealthyAndResumesItsSequence)
{
    writeGoodScenario();
    ASSERT_EQ(run("soak " + path("s.json") + " --out "
                  + path("soak") + " --duration 0.4"),
              0);
    ASSERT_EQ(run("soak " + path("s.json") + " --out "
                  + path("soak") + " --duration 0.4"),
              0);

    // Checkpoint sequence is contiguous across the two invocations
    // and the second runs as a later epoch.
    std::ifstream in(path("soak/soak.jsonl"));
    std::string line;
    uint64_t expected_seq = 0;
    uint64_t max_epoch = 0;
    while (std::getline(in, line)) {
        const JsonParseResult parsed = parseJson(line);
        ASSERT_TRUE(parsed.ok) << line;
        EXPECT_EQ(static_cast<uint64_t>(
                      parsed.value.find("seq")->number()),
                  expected_seq++);
        max_epoch = std::max(
            max_epoch, static_cast<uint64_t>(
                           parsed.value.find("epoch")->number()));
    }
    EXPECT_GE(expected_seq, 2u);
    EXPECT_EQ(max_epoch, 1u);
}

TEST_F(ScenarioCli, SweepWithoutSweepBlockExitsThree)
{
    writeGoodScenario();
    std::string output;
    EXPECT_EQ(run("sweep " + path("s.json"), &output), 3);
    EXPECT_NE(output.find("no sweep block"), std::string::npos)
        << output;
}

TEST_F(ScenarioCli, SweepProducesCurvesAndPointBundles)
{
    writeSweepScenario();
    std::string output;
    ASSERT_EQ(run("sweep " + path("sweep.json") + " --out "
                      + path("out"),
                  &output),
              0)
        << output;
    EXPECT_NE(output.find("2 variant(s) x 2 rate(s)"),
              std::string::npos)
        << output;
    EXPECT_TRUE(fs::exists(path("out/curves.json")));
    EXPECT_TRUE(fs::exists(path("out/curves.md")));
    // Every grid cell gets a full four-artifact bundle.
    for (const std::string variant : {"a", "b"})
        for (const std::string rate : {"500", "1000"})
            for (const std::string artifact :
                 {"config.json", "run.json", "events.jsonl",
                  "summary.md"})
                EXPECT_TRUE(fs::exists(path(
                    "out/points/" + variant + "/rate_" + rate + "/"
                    + artifact)))
                    << variant << " " << rate << " " << artifact;

    const JsonParseResult parsed =
        parseJson(slurp(path("out/curves.json")));
    ASSERT_TRUE(parsed.ok);
    ASSERT_NE(parsed.value.find("variants"), nullptr);
    ASSERT_NE(parsed.value.find("deterministic"), nullptr);
    const auto *passed = parsed.value.find("gates_passed");
    ASSERT_NE(passed, nullptr);
    EXPECT_TRUE(passed->boolean());
}

TEST_F(ScenarioCli, SweepReduceOnlyIsAByteIdenticalFixpoint)
{
    writeSweepScenario();
    ASSERT_EQ(run("sweep " + path("sweep.json") + " --out "
                  + path("out")),
              0);
    const std::string live = slurp(path("out/curves.json"));
    EXPECT_EQ(run("sweep " + path("sweep.json") + " --out "
                  + path("out") + " --reduce-only"),
              0);
    EXPECT_EQ(slurp(path("out/curves.json")), live);
}

TEST_F(ScenarioCli, DoctoredGateMetricExitsSevenUnderReduceOnly)
{
    writeSweepScenario();
    ASSERT_EQ(run("sweep " + path("sweep.json") + " --out "
                  + path("out")),
              0);

    // Tamper with one non-baseline cell: the pinned-higher gate
    // metric drops 1 -> 0, so the re-reduce must fail the gate.
    const std::string victim =
        path("out/points/b/rate_1000/run.json");
    std::string text = slurp(victim);
    const std::string needle = "\"completed_eq_accepted\": 1";
    const size_t pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos) << text;
    text.replace(pos, needle.size(),
                 "\"completed_eq_accepted\": 0");
    std::ofstream(victim) << text;

    std::string output;
    EXPECT_EQ(run("sweep " + path("sweep.json") + " --out "
                      + path("out") + " --reduce-only",
                  &output),
              7);
    EXPECT_NE(output.find("gate failure"), std::string::npos)
        << output;
    const std::string md = slurp(path("out/curves.md"));
    EXPECT_NE(md.find("**FAIL**"), std::string::npos);
}

TEST_F(ScenarioCli, OutcomeGateFailureExitsEight)
{
    // Every attempt of every request fails with no retry budget and
    // a zero-tolerance failure gate: the run must land its full
    // evidence bundle (faults.csv included) and then report the
    // outcome-gate verdict as exit 8.
    writeFile("chaos.json", R"({
  "name": "cli_chaos",
  "kind": "serve",
  "seed": 11,
  "runtime": {"workers": 2},
  "serve": {
    "rate_per_sec": 500, "duration_sec": 0.05,
    "producers": 1, "spin_nanos": 1000
  },
  "faults": {
    "fail_prob": 1, "max_retries": 0,
    "gates": {"max_failed_frac": 0}
  }
})");
    std::string output;
    EXPECT_EQ(run("run " + path("chaos.json") + " --out "
                      + path("out"),
                  &output),
              8);
    EXPECT_NE(output.find("outcome gate"), std::string::npos)
        << output;
    EXPECT_TRUE(fs::exists(path("out/faults.csv")));
    EXPECT_TRUE(fs::exists(path("out/run.json")));

    // Loosening the gate makes the same run pass.
    writeFile("ok.json", R"({
  "name": "cli_chaos",
  "kind": "serve",
  "seed": 11,
  "runtime": {"workers": 2},
  "serve": {
    "rate_per_sec": 500, "duration_sec": 0.05,
    "producers": 1, "spin_nanos": 1000
  },
  "faults": {
    "fail_prob": 1, "max_retries": 0,
    "gates": {"max_failed_frac": 1}
  }
})");
    EXPECT_EQ(run("run " + path("ok.json") + " --out "
                  + path("out2")),
              0);
}

TEST_F(ScenarioCli, HelpDocumentsTheOutcomeGateExitCode)
{
    std::string output;
    EXPECT_EQ(run("--help", &output), 0);
    EXPECT_NE(output.find("8 outcome gate failure"),
              std::string::npos)
        << output;
}
