/** @file Tests for tempo control inside the simulator. */

#include <gtest/gtest.h>

#include "sim/dag_generators.hpp"
#include "sim/simulator.hpp"

using namespace hermes;
using namespace hermes::sim;

namespace {

SimConfig
config(unsigned workers, core::TempoPolicy policy)
{
    SimConfig cfg;
    cfg.profile = platform::systemA();
    cfg.numWorkers = workers;
    cfg.seed = 33;
    cfg.enableTempo = policy != core::TempoPolicy::Baseline;
    cfg.tempo.policy = policy;
    return cfg;
}

Dag
benchDag(const std::string &name, uint64_t seed = 8)
{
    WorkloadParams wp;
    wp.seed = seed;
    return makeBenchmark(name, wp);
}

} // namespace

TEST(SimulatorTempo, BaselineIssuesNoDvfsRequests)
{
    const Dag dag = benchDag("sort");
    const auto r = simulate(dag,
                            config(8, core::TempoPolicy::Baseline));
    EXPECT_EQ(r.stats.dvfsRequests, 0u);
    // All busy time at the fastest rung.
    for (size_t i = 1; i < r.busySecondsAtRung.size(); ++i)
        EXPECT_EQ(r.busySecondsAtRung[i], 0.0);
}

TEST(SimulatorTempo, UnifiedExercisesBothStrategies)
{
    const Dag dag = benchDag("compare");
    const auto r = simulate(dag,
                            config(16, core::TempoPolicy::Unified));
    const auto &k = r.tempoCounters;
    EXPECT_GT(k.stealDowns, 0u);
    EXPECT_GT(k.relayUps, 0u);
    EXPECT_GT(k.workloadUps, 0u);
    EXPECT_GT(k.workloadDowns, 0u);
    EXPECT_GT(r.stats.dvfsRequests, 0u);
    // Some busy time ran at the slow rung (1600 MHz = index 3).
    const auto slow_idx = platform::systemA().ladder.indexOf(1600);
    EXPECT_GT(r.busySecondsAtRung[slow_idx], 0.0);
}

TEST(SimulatorTempo, HermesSavesEnergyOnEveryBenchmark)
{
    for (const auto &name : benchmarkNames()) {
        const Dag dag = benchDag(name);
        const auto base = simulate(
            dag, config(16, core::TempoPolicy::Baseline));
        const auto hermes_run = simulate(
            dag, config(16, core::TempoPolicy::Unified));
        EXPECT_LT(hermes_run.joules, base.joules) << name;
        // Time loss stays moderate (the paper's band is 3-4%).
        EXPECT_LT(hermes_run.seconds, base.seconds * 1.12) << name;
    }
}

TEST(SimulatorTempo, WorkpathOnlyIgnoresWorkloadCounters)
{
    const Dag dag = benchDag("knn");
    const auto r = simulate(
        dag, config(8, core::TempoPolicy::WorkpathOnly));
    EXPECT_GT(r.tempoCounters.stealDowns, 0u);
    EXPECT_EQ(r.tempoCounters.workloadUps, 0u);
    EXPECT_EQ(r.tempoCounters.workloadDowns, 0u);
}

TEST(SimulatorTempo, WorkloadOnlyIgnoresWorkpathCounters)
{
    const Dag dag = benchDag("knn");
    const auto r = simulate(
        dag, config(8, core::TempoPolicy::WorkloadOnly));
    EXPECT_EQ(r.tempoCounters.stealDowns, 0u);
    EXPECT_EQ(r.tempoCounters.relayUps, 0u);
    EXPECT_GT(r.tempoCounters.workloadUps
                  + r.tempoCounters.workloadDowns,
              0u);
}

TEST(SimulatorTempo, CustomLadderIsHonoured)
{
    const Dag dag = benchDag("sort");
    auto cfg = config(8, core::TempoPolicy::Unified);
    cfg.tempo.ladder =
        platform::systemA().ladder.select({2400, 1900});
    const auto r = simulate(dag, cfg);
    // The 1600 rung must never be used; 1900 must be.
    const auto &ladder = platform::systemA().ladder;
    EXPECT_EQ(r.busySecondsAtRung[ladder.indexOf(1600)], 0.0);
    EXPECT_GT(r.busySecondsAtRung[ladder.indexOf(1900)], 0.0);
}

TEST(SimulatorTempo, LowerSlowRungSavesMoreEnergyOnSort)
{
    // Figure 14's monotone arm: with the fast rung fixed, a lower
    // slow rung saves more energy (sort is the most regular
    // benchmark, so the trend is stable at fixed seed).
    const Dag dag = benchDag("sort");
    const auto base = simulate(
        dag, config(16, core::TempoPolicy::Baseline));

    auto run_pair = [&](platform::FreqMhz slow) {
        auto cfg = config(16, core::TempoPolicy::Unified);
        cfg.tempo.ladder =
            platform::systemA().ladder.select({2400, slow});
        return simulate(dag, cfg);
    };
    const auto high = run_pair(1900);
    const auto low = run_pair(1400);
    EXPECT_LT(low.joules, high.joules);
    // And the lower rung costs more time.
    EXPECT_GT(low.seconds, high.seconds * 0.999);
    EXPECT_LT(high.joules, base.joules);
}

TEST(SimulatorTempo, DynamicSchedulingCostsAffinityTime)
{
    const Dag dag = benchDag("ray");
    auto stat = config(8, core::TempoPolicy::Unified);
    auto dyn = stat;
    dyn.scheduling = runtime::SchedulingMode::Dynamic;
    const auto rs = simulate(dag, stat);
    const auto rd = simulate(dag, dyn);
    // Same schedule seed: dynamic pays two affinity tolls per
    // acquisition, so it cannot be faster.
    EXPECT_GE(rd.seconds, rs.seconds);
}

TEST(SimulatorTempo, TransitionLatencyDelaysEffect)
{
    // A tiny DAG where worker 1 steals once: the thief's DOWN must
    // not take effect before the transition latency has passed —
    // makespan with huge latency approaches the no-DVFS one.
    DagBuilder b;
    const double mscyc = 2400.0 * 1e3;
    const FrameId parent = b.newFrame(20.0 * mscyc);
    const FrameId child = b.newFrame(19.0 * mscyc);
    b.spawn(parent, 1.0 * mscyc, child);
    const Dag dag = b.build(parent);

    auto fast_latency = config(2, core::TempoPolicy::WorkpathOnly);
    auto slow_latency = fast_latency;
    slow_latency.profile.dvfsLatencySec = 1.0;  // absurdly slow
    const auto rf = simulate(dag, fast_latency);
    const auto rs = simulate(dag, slow_latency);
    // With the transition never landing in time, the thief runs at
    // full speed: faster finish than with real DVFS.
    EXPECT_LT(rs.seconds, rf.seconds);
}
