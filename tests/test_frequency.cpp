/** @file Unit tests for frequency ladders (incl. N-frequency). */

#include <gtest/gtest.h>

#include "platform/frequency.hpp"

using hermes::platform::FrequencyLadder;
using hermes::platform::FreqMhz;

TEST(FrequencyLadder, SortsDescendingAndDeduplicates)
{
    FrequencyLadder l({1600, 2400, 1900, 2400, 1400});
    ASSERT_EQ(l.size(), 4u);
    EXPECT_EQ(l.at(0), 2400u);
    EXPECT_EQ(l.at(1), 1900u);
    EXPECT_EQ(l.at(2), 1600u);
    EXPECT_EQ(l.at(3), 1400u);
    EXPECT_EQ(l.fastest(), 2400u);
    EXPECT_EQ(l.slowest(), 1400u);
}

TEST(FrequencyLadder, IndexOfAndContains)
{
    FrequencyLadder l({2400, 1600});
    EXPECT_EQ(l.indexOf(2400), 0u);
    EXPECT_EQ(l.indexOf(1600), 1u);
    EXPECT_TRUE(l.contains(1600));
    EXPECT_FALSE(l.contains(2000));
}

TEST(FrequencyLadder, Describe)
{
    FrequencyLadder l({2400, 1600});
    EXPECT_EQ(l.describe(), "2400/1600");
}

TEST(FrequencyLadder, SelectSubset)
{
    FrequencyLadder l({2400, 2200, 1900, 1600, 1400});
    const auto pair = l.select({2400, 1600});
    ASSERT_EQ(pair.size(), 2u);
    EXPECT_EQ(pair.at(0), 2400u);
    EXPECT_EQ(pair.at(1), 1600u);
}

TEST(FrequencyLadderDeath, SelectUnknownRungIsFatal)
{
    FrequencyLadder l({2400, 1600});
    EXPECT_EXIT((void)l.select({2000}), testing::ExitedWithCode(1),
                "not available");
}

TEST(FrequencyLadderDeath, EmptyIsFatal)
{
    EXPECT_EXIT(FrequencyLadder({}), testing::ExitedWithCode(1),
                "cannot be empty");
}

TEST(FrequencyLadderDeath, IndexOfMissingIsFatal)
{
    FrequencyLadder l({2400});
    EXPECT_EXIT((void)l.indexOf(1000), testing::ExitedWithCode(1),
                "not a rung");
}

/** N-frequency restriction (Section 3.4) across N values. */
class RestrictTopN : public testing::TestWithParam<size_t>
{};

TEST_P(RestrictTopN, KeepsHighestRungs)
{
    FrequencyLadder full({2400, 2200, 1900, 1600, 1400});
    const size_t n = GetParam();
    const auto restricted = full.restrictTopN(n);
    const size_t expect = std::max<size_t>(
        1, std::min<size_t>(n, full.size()));
    ASSERT_EQ(restricted.size(), expect);
    for (size_t i = 0; i < restricted.size(); ++i)
        EXPECT_EQ(restricted.at(i), full.at(i));
}

INSTANTIATE_TEST_SUITE_P(AllN, RestrictTopN,
                         testing::Values(0, 1, 2, 3, 5, 99));
