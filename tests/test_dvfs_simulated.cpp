/** @file Unit tests for the simulated DVFS backend. */

#include <gtest/gtest.h>

#include "dvfs/simulated.hpp"

using namespace hermes;
using dvfs::NullDvfs;
using dvfs::SimulatedDvfs;
using platform::FrequencyLadder;

namespace {

SimulatedDvfs
backend()
{
    return SimulatedDvfs(4, FrequencyLadder({2400, 1900, 1600}),
                         50e-6);
}

} // namespace

TEST(SimulatedDvfs, StartsAtFastest)
{
    auto b = backend();
    EXPECT_EQ(b.numDomains(), 4u);
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_EQ(b.domainFreq(d), 2400u);
}

TEST(SimulatedDvfs, SetAndReadBack)
{
    auto b = backend();
    b.setDomainFreq(2, 1600, 0.5);
    EXPECT_EQ(b.domainFreq(2), 1600u);
    EXPECT_EQ(b.domainFreq(1), 2400u);
}

TEST(SimulatedDvfs, RedundantRequestsAreNotRecorded)
{
    auto b = backend();
    b.setDomainFreq(0, 2400, 0.1);  // already there
    EXPECT_EQ(b.transitionCount(), 0u);
    b.setDomainFreq(0, 1900, 0.2);
    b.setDomainFreq(0, 1900, 0.3);  // redundant
    EXPECT_EQ(b.transitionCount(), 1u);
}

TEST(SimulatedDvfs, TimelineRecordsTransitions)
{
    auto b = backend();
    b.setDomainFreq(1, 1900, 0.25);
    b.setDomainFreq(1, 1600, 0.75);
    const auto tl = b.timeline();
    ASSERT_EQ(tl.size(), 2u);
    EXPECT_DOUBLE_EQ(tl[0].time, 0.25);
    EXPECT_EQ(tl[0].domain, 1u);
    EXPECT_EQ(tl[0].fromMhz, 2400u);
    EXPECT_EQ(tl[0].toMhz, 1900u);
    EXPECT_EQ(tl[1].fromMhz, 1900u);
    EXPECT_EQ(tl[1].toMhz, 1600u);
}

TEST(SimulatedDvfs, ResetClearsEverything)
{
    auto b = backend();
    b.setDomainFreq(0, 1600, 0.1);
    b.reset(1900);
    EXPECT_EQ(b.transitionCount(), 0u);
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_EQ(b.domainFreq(d), 1900u);
}

TEST(SimulatedDvfs, ExposesLatencyAndLadder)
{
    auto b = backend();
    EXPECT_DOUBLE_EQ(b.latency(), 50e-6);
    EXPECT_EQ(b.ladder().size(), 3u);
}

TEST(SimulatedDvfsDeath, RejectsOffLadderFrequency)
{
    auto b = backend();
    EXPECT_DEATH(b.setDomainFreq(0, 2000, 0.0), "not a ladder rung");
}

TEST(NullDvfs, IgnoresRequests)
{
    NullDvfs b(2, 2400);
    b.setDomainFreq(0, 1, 0.0);  // anything goes, nothing happens
    EXPECT_EQ(b.domainFreq(0), 2400u);
    EXPECT_EQ(b.numDomains(), 2u);
}
