/**
 * @file
 * Park/wake correctness of the event-driven idle protocol: a
 * quiesced pool parks every worker, a single inject wakes one, churn
 * cycles (empty→busy→empty) never lose a wakeup, and packagePower
 * reflects parkedPower once the pool quiesces.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"

using namespace hermes;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::TaskGroup;

namespace {

RuntimeConfig
config(unsigned workers, bool tempo = false)
{
    RuntimeConfig cfg;
    cfg.numWorkers = workers;
    cfg.enableTempo = tempo;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    return cfg;
}

/** Poll until every worker is parked; the pool is idle so this must
 * happen after at most parkThreshold empty hunts per worker. */
bool
awaitFullyParked(const Runtime &rt, double timeout_sec = 30.0)
{
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::duration<double>(timeout_sec);
    while (rt.parkedWorkers() < rt.numWorkers()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return true;
}

long
fib(Runtime &rt, long n)
{
    if (n < 2)
        return n;
    if (n < 12)
        return fib(rt, n - 1) + fib(rt, n - 2);
    long a = 0, b = 0;
    runtime::parallelInvoke(rt, [&] { a = fib(rt, n - 1); },
                            [&] { b = fib(rt, n - 2); });
    return a + b;
}

} // namespace

TEST(Parking, QuiescedPoolParksEveryWorker)
{
    Runtime rt(config(4));
    ASSERT_TRUE(awaitFullyParked(rt))
        << "idle workers never parked (still "
        << rt.numWorkers() - rt.parkedWorkers() << " hunting)";
    for (unsigned w = 0; w < rt.numWorkers(); ++w)
        EXPECT_TRUE(rt.workerParked(w)) << "worker " << w;
    // Every worker blocked at least once to get here.
    EXPECT_GE(rt.stats().parks, rt.numWorkers());
}

TEST(Parking, PackagePowerDropsToParkedWhenPoolQuiesces)
{
    Runtime rt(config(4));
    const energy::PowerModel model(rt.config().profile);

    // Exercise the pool, then let it drain and park.
    long result = 0;
    rt.run([&] { result = fib(rt, 24); });
    ASSERT_EQ(result, 46368);
    ASSERT_TRUE(awaitFullyParked(rt));

    // With every worker parked, modeled power is exactly uncore +
    // parked/idle cores — no spin or active term anywhere.
    const auto &topo = rt.config().profile.topology;
    double expected = model.uncorePower();
    for (platform::CoreId c = 0; c < topo.numCores(); ++c) {
        const auto f = rt.backend().domainFreq(topo.domainOf(c));
        expected += model.parkedPower(f);
    }
    EXPECT_NEAR(rt.packagePower(model), expected, 1e-9);

    // Regression: the quiesced reading sits strictly below what the
    // pre-parking runtime modeled (idle workers charged spin power).
    double spinning = model.uncorePower();
    for (platform::CoreId c = 0; c < topo.numCores(); ++c) {
        const auto f = rt.backend().domainFreq(topo.domainOf(c));
        spinning += model.coreSpinPower(f);
    }
    EXPECT_LT(rt.packagePower(model), spinning);
}

TEST(Parking, SingleInjectWakesAParkedWorker)
{
    Runtime rt(config(4));
    ASSERT_TRUE(awaitFullyParked(rt));
    const auto before = rt.stats();

    // run() from this external thread goes through inject(), which
    // must wake at least one of the four parked workers.
    std::atomic<bool> ran{false};
    rt.run([&] { ran.store(true); });
    EXPECT_TRUE(ran.load());
    EXPECT_GE(rt.stats().wakes, before.wakes + 1);
}

TEST(Parking, ChurnCyclesLoseNoWakeups)
{
    // Repeated empty→busy→empty transitions: each cycle the pool
    // quiesces (workers park) and the next root task must wake it
    // again. A lost wakeup hangs run() and trips the test timeout.
    Runtime rt(config(4));
    std::atomic<size_t> done{0};
    for (int cycle = 0; cycle < 100; ++cycle) {
        rt.run([&] {
            runtime::parallelFor(rt, 0, 64, 4, [&](size_t) {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        });
        if (cycle % 10 == 0) {
            // Give the pool time to fully quiesce so later cycles
            // start from the all-parked state, not the hunt phase.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    }
    EXPECT_EQ(done.load(), 100u * 64u);

    const auto s = rt.stats();
    // Block/wake pairing: every wake matches a prior block, and at
    // most numWorkers blocks are still outstanding (currently parked).
    EXPECT_LE(s.wakes, s.parks);
    EXPECT_LE(s.parks - s.wakes, rt.numWorkers());
    EXPECT_LE(s.spuriousWakes, s.wakes);
}

TEST(Parking, InjectBurstUnparksThePool)
{
    // A burst of external submissions while everyone is parked: the
    // first inject wakes one worker, wake chaining (inject queue
    // still non-empty, victims with surplus) must fan out from
    // there. No worker may stay parked while injected work pends —
    // otherwise this deadlocks on a long task pinning the lone woken
    // worker.
    Runtime rt(config(4));
    ASSERT_TRUE(awaitFullyParked(rt));

    constexpr int kTasks = 64;
    std::atomic<int> done{0};
    TaskGroup group(rt);
    for (int i = 0; i < kTasks; ++i) {
        group.run([&] {
            const auto until = std::chrono::steady_clock::now()
                + std::chrono::microseconds(200);
            while (std::chrono::steady_clock::now() < until) {
            }
            done.fetch_add(1, std::memory_order_relaxed);
        });
    }
    group.wait();
    EXPECT_EQ(done.load(), kTasks);
    EXPECT_EQ(rt.stats().injected, static_cast<uint64_t>(kTasks));
}

TEST(Parking, ParkedTimeIsAccountedWhileQuiesced)
{
    Runtime rt(config(2));
    ASSERT_TRUE(awaitFullyParked(rt));
    const auto before = rt.stats().parkedNanos;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Workers are still blocked; their parked time accrues only on
    // wake, so force one full park/wake round trip.
    rt.run([] {});
    ASSERT_TRUE(awaitFullyParked(rt));
    rt.run([] {});
    EXPECT_GT(rt.stats().parkedNanos, before);
}

TEST(Parking, TempoSeesParkAsDistinctState)
{
    Runtime rt(config(4, true));
    long result = 0;
    rt.run([&] { result = fib(rt, 22); });
    ASSERT_EQ(result, 17711);
    ASSERT_TRUE(awaitFullyParked(rt));

    ASSERT_NE(rt.tempo(), nullptr);
    // parkedWorkers() can lead the tempo hook by an instruction or
    // two (the runtime publishes its counter before onPark fires),
    // so give each flag a moment to land.
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::seconds(10);
    for (unsigned w = 0; w < rt.numWorkers(); ++w) {
        while (!rt.tempo()->parkedOf(w)
               && std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        }
        EXPECT_TRUE(rt.tempo()->parkedOf(w)) << "worker " << w;
    }
    const auto k = rt.tempo()->counters();
    EXPECT_GE(k.parkEvents, rt.numWorkers());
    EXPECT_GE(k.parkEvents, k.wakeEvents);
}

TEST(Parking, DisabledParkingFallsBackToYieldLoop)
{
    auto cfg = config(2);
    cfg.enableParking = false;
    Runtime rt(cfg);
    long result = 0;
    rt.run([&] { result = fib(rt, 20); });
    EXPECT_EQ(result, 6765);
    EXPECT_EQ(rt.stats().parks, 0u);
    EXPECT_EQ(rt.parkedWorkers(), 0u);
}

TEST(Parking, EagerThresholdStillCorrect)
{
    auto cfg = config(4);
    cfg.parkThreshold = 1; // park after the very first empty hunt
    Runtime rt(cfg);
    long result = 0;
    for (int rep = 0; rep < 3; ++rep)
        rt.run([&] { result = fib(rt, 22); });
    EXPECT_EQ(result, 17711);
}

TEST(Parking, ConcurrentProducersNeverLoseAWakeOnLoneWorker)
{
    // Wake double-targeting regression: with exactly one (parked)
    // worker, two producers submitting at the same instant both
    // target the same parkee. If the lot's wake-pending handshake
    // dropped one of the two wakes while work still pended, one
    // run() would never complete — a lost wake here hangs the test
    // into its timeout rather than failing an assertion, which is
    // exactly the failure mode worth pinning.
    auto cfg = config(1);
    cfg.parkThreshold = 1; // re-park eagerly between cycles
    Runtime rt(cfg);

    std::atomic<int> done{0};
    for (int cycle = 0; cycle < 50; ++cycle) {
        ASSERT_TRUE(awaitFullyParked(rt)) << "cycle " << cycle;
        auto produce = [&rt, &done] {
            rt.run([&done] {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        };
        std::thread a(produce);
        std::thread b(produce);
        a.join();
        b.join();
        ASSERT_EQ(done.load(), 2 * (cycle + 1)) << "cycle " << cycle;
    }

    // Block/wake pairing stays sane across all the contended cycles.
    const auto s = rt.stats();
    EXPECT_LE(s.wakes, s.parks);
    EXPECT_LE(s.parks - s.wakes, rt.numWorkers());
}

TEST(Parking, DISABLED_EveryParkedEpochSubmitProducesAWake)
{
    // Finding, filed as a disabled case rather than a runtime change
    // (see docs/STEALING.md, wake selection): the lot's wake-pending
    // bit is cleared by the *woken* worker, so a worker that wakes,
    // finds the work already drained by the producer's second
    // submission racing in, and re-parks can leave a stale pending
    // bit. The next producer then observes "wake already pending",
    // skips the futex wake, and the pool's wake counter under-counts
    // the park→submit transitions. Liveness survives (the stale bit
    // is consumed by the next genuine wake), which is why the test
    // above passes; the *exactness* property below — every submit
    // into a fully-parked pool bumps `wakes` within that cycle —
    // does not hold today. Enable once the lot clears the pending
    // bit on re-park.
    auto cfg = config(1);
    cfg.parkThreshold = 1;
    Runtime rt(cfg);

    for (int cycle = 0; cycle < 50; ++cycle) {
        ASSERT_TRUE(awaitFullyParked(rt));
        const auto before = rt.stats().wakes;
        rt.run([] {});
        EXPECT_GE(rt.stats().wakes, before + 1)
            << "submit into a fully-parked pool absorbed by a "
               "stale wake-pending bit (cycle "
            << cycle << ")";
    }
}
