/** @file Unit tests for the built-in system profiles. */

#include <gtest/gtest.h>

#include "platform/system_profile.hpp"

using namespace hermes::platform;

TEST(SystemProfile, SystemAMatchesPaper)
{
    const auto a = systemA();
    EXPECT_EQ(a.name, "SystemA");
    EXPECT_EQ(a.topology.numCores(), 32u);
    EXPECT_EQ(a.topology.coresPerDomain(), 2u);
    EXPECT_EQ(a.topology.numDomains(), 16u);  // 16 clock domains
    ASSERT_EQ(a.ladder.size(), 5u);
    EXPECT_EQ(a.ladder.fastest(), 2400u);
    EXPECT_EQ(a.ladder.slowest(), 1400u);
    EXPECT_TRUE(a.ladder.contains(2200));
    EXPECT_TRUE(a.ladder.contains(1900));
    EXPECT_TRUE(a.ladder.contains(1600));
    EXPECT_EQ(a.maxWorkers(), 16u);
}

TEST(SystemProfile, SystemBMatchesPaper)
{
    const auto b = systemB();
    EXPECT_EQ(b.topology.numCores(), 8u);
    EXPECT_EQ(b.topology.numDomains(), 4u);  // 4 clock domains
    ASSERT_EQ(b.ladder.size(), 5u);
    EXPECT_EQ(b.ladder.fastest(), 3600u);
    EXPECT_TRUE(b.ladder.contains(3300));
    EXPECT_TRUE(b.ladder.contains(2700));
    EXPECT_TRUE(b.ladder.contains(2100));
    EXPECT_EQ(b.ladder.slowest(), 1400u);
    EXPECT_EQ(b.maxWorkers(), 4u);
}

TEST(SystemProfile, PowerParamsPlausible)
{
    for (const auto &p : {systemA(), systemB()}) {
        EXPECT_GT(p.power.voltsAtFmax, p.power.voltsAtFmin);
        EXPECT_GT(p.power.dynMaxWatts, 0.0);
        EXPECT_GT(p.power.staticWatts, 0.0);
        EXPECT_GE(p.power.idleActivity, 0.0);
        EXPECT_LT(p.power.idleActivity, p.power.spinActivity);
        EXPECT_LE(p.power.spinActivity, 1.0);
        EXPECT_GT(p.dvfsLatencySec, 0.0);
        EXPECT_LT(p.dvfsLatencySec, 1e-3);  // "tens of microseconds"
    }
}

TEST(SystemProfile, DefaultTempoLadderMatchesPaperPairs)
{
    // Figures 6/7 defaults: 2.4/1.6 GHz on A, 3.6/2.7 GHz on B.
    const auto pa = defaultTempoLadder(systemA());
    ASSERT_EQ(pa.size(), 2u);
    EXPECT_EQ(pa.at(0), 2400u);
    EXPECT_EQ(pa.at(1), 1600u);

    const auto pb = defaultTempoLadder(systemB());
    ASSERT_EQ(pb.size(), 2u);
    EXPECT_EQ(pb.at(0), 3600u);
    EXPECT_EQ(pb.at(1), 2700u);
}

TEST(SystemProfile, HostHasAtLeastOneCore)
{
    const auto h = hostSystem();
    EXPECT_GE(h.topology.numCores(), 1u);
    EXPECT_GE(h.maxWorkers(), 1u);
}

TEST(SystemProfile, ByName)
{
    EXPECT_EQ(profileByName("A").name, "SystemA");
    EXPECT_EQ(profileByName("SystemB").name, "SystemB");
    EXPECT_EQ(profileByName("host").name, "Host");
}

TEST(SystemProfileDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)profileByName("Z"), testing::ExitedWithCode(1),
                "unknown system profile");
}
