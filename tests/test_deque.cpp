/** @file Unit tests for the work-stealing deque, run against both
 * protocols (lock-free Chase-Lev and the legacy THE replay) —
 * `DequePolicy::impl = the` must produce identical results. */

#include <gtest/gtest.h>

#include "runtime/deque.hpp"

using hermes::runtime::DequeImpl;
using hermes::runtime::DequePolicy;
using hermes::runtime::Task;
using hermes::runtime::WsDeque;

namespace {

Task
tagged(int id, std::vector<int> &sink)
{
    return Task([id, &sink] { sink.push_back(id); }, nullptr);
}

int
runTag(Task &t, std::vector<int> &sink)
{
    sink.clear();
    t.body();
    return sink.back();
}

/** Both protocols behind one fixture: every behavioral test below
 * runs twice, which is the `impl = the` replay guarantee. */
class WsDequeBoth : public testing::TestWithParam<DequeImpl>
{
  protected:
    WsDeque
    make(size_t capacity = 1 << 13) const
    {
        return WsDeque(capacity, DequePolicy{GetParam()});
    }
};

} // namespace

TEST_P(WsDequeBoth, StartsEmpty)
{
    WsDeque d = make();
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.size(), 0u);
    Task out;
    size_t sz = 0;
    EXPECT_FALSE(d.pop(out, sz));
    EXPECT_FALSE(d.steal(out, sz));
}

TEST_P(WsDequeBoth, PopIsLifo)
{
    // The owner pops the most recently pushed (most immediate) task.
    WsDeque d = make();
    std::vector<int> sink;
    size_t sz = 0;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));
    EXPECT_EQ(d.size(), 4u);

    Task out;
    for (int expect = 3; expect >= 0; --expect) {
        ASSERT_TRUE(d.pop(out, sz));
        EXPECT_EQ(runTag(out, sink), expect);
    }
    EXPECT_TRUE(d.empty());
}

TEST_P(WsDequeBoth, StealIsFifo)
{
    // Thieves take the head: the earliest-pushed, least immediate
    // task (the work-first ordering HERMES relies on).
    WsDeque d = make();
    std::vector<int> sink;
    size_t sz = 0;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));

    Task out;
    for (int expect = 0; expect < 4; ++expect) {
        ASSERT_TRUE(d.steal(out, sz));
        EXPECT_EQ(runTag(out, sink), expect);
    }
    EXPECT_FALSE(d.steal(out, sz));
}

TEST_P(WsDequeBoth, MixedPopAndSteal)
{
    WsDeque d = make();
    std::vector<int> sink;
    size_t sz = 0;
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));

    Task out;
    ASSERT_TRUE(d.steal(out, sz));
    EXPECT_EQ(runTag(out, sink), 0);
    ASSERT_TRUE(d.pop(out, sz));
    EXPECT_EQ(runTag(out, sink), 4);
    ASSERT_TRUE(d.steal(out, sz));
    EXPECT_EQ(runTag(out, sink), 1);
    ASSERT_TRUE(d.pop(out, sz));
    EXPECT_EQ(runTag(out, sink), 3);
    ASSERT_TRUE(d.pop(out, sz));
    EXPECT_EQ(runTag(out, sink), 2);
    EXPECT_TRUE(d.empty());
}

TEST_P(WsDequeBoth, ReportsSizeAfterEachOperation)
{
    WsDeque d = make();
    std::vector<int> sink;
    size_t sz = 99;
    d.push(tagged(0, sink), sz);
    EXPECT_EQ(sz, 1u);
    d.push(tagged(1, sink), sz);
    EXPECT_EQ(sz, 2u);
    Task out;
    d.pop(out, sz);
    EXPECT_EQ(sz, 1u);
    d.steal(out, sz);
    EXPECT_EQ(sz, 0u);
}

TEST_P(WsDequeBoth, FullRingRejectsPush)
{
    WsDeque d = make(4); // ring of 4: usable capacity is 3 (push())
    std::vector<int> sink;
    size_t sz = 0;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));
    EXPECT_FALSE(d.push(tagged(99, sink), sz));
    // Draining one slot re-enables pushing.
    Task out;
    ASSERT_TRUE(d.pop(out, sz));
    EXPECT_TRUE(d.push(tagged(5, sink), sz));
}

TEST_P(WsDequeBoth, WrapsAroundTheRing)
{
    WsDeque d = make(4);
    std::vector<int> sink;
    size_t sz = 0;
    Task out;
    // Cycle many times through a small ring.
    for (int round = 0; round < 100; ++round) {
        ASSERT_TRUE(d.push(tagged(round, sink), sz));
        ASSERT_TRUE(d.push(tagged(round + 1000, sink), sz));
        ASSERT_TRUE(d.steal(out, sz));
        EXPECT_EQ(runTag(out, sink), round);
        ASSERT_TRUE(d.pop(out, sz));
        EXPECT_EQ(runTag(out, sink), round + 1000);
    }
    EXPECT_TRUE(d.empty());
}

TEST_P(WsDequeBoth, CapacityRoundsToPowerOfTwo)
{
    WsDeque d = make(5);
    EXPECT_EQ(d.capacity(), 8u);
    WsDeque d2 = make(1);
    EXPECT_EQ(d2.capacity(), 2u);
}

TEST_P(WsDequeBoth, StealHalfTakesCeilHalfFromTheHead)
{
    WsDeque d = make();
    std::vector<int> sink;
    size_t sz = 0;
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));

    // ceil(5/2) = 3 tasks, head order (least immediate first).
    std::vector<Task> out;
    EXPECT_EQ(d.stealHalf(out, sz), 3u);
    EXPECT_EQ(sz, 2u);
    ASSERT_EQ(out.size(), 3u);
    for (int expect = 0; expect < 3; ++expect)
        EXPECT_EQ(runTag(out[static_cast<size_t>(expect)], sink),
                  expect);

    // The owner keeps the more immediate half.
    Task rest;
    ASSERT_TRUE(d.pop(rest, sz));
    EXPECT_EQ(runTag(rest, sink), 4);
    ASSERT_TRUE(d.pop(rest, sz));
    EXPECT_EQ(runTag(rest, sink), 3);
    EXPECT_TRUE(d.empty());
}

TEST_P(WsDequeBoth, StealHalfOnEmptyAndSingleton)
{
    WsDeque d = make();
    std::vector<int> sink;
    std::vector<Task> out;
    size_t sz = 99;
    EXPECT_EQ(d.stealHalf(out, sz), 0u);
    EXPECT_EQ(sz, 0u);
    EXPECT_TRUE(out.empty());

    // ceil(1/2) = 1: a singleton behaves exactly like steal() —
    // under Chase-Lev the grab degrades to the proven single-steal
    // CAS (the last-task race never takes the bulk path).
    ASSERT_TRUE(d.push(tagged(7, sink), sz));
    EXPECT_EQ(d.stealHalf(out, sz), 1u);
    EXPECT_EQ(sz, 0u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(runTag(out[0], sink), 7);
    EXPECT_TRUE(d.empty());
}

TEST_P(WsDequeBoth, StealHalfAppendsWithoutClearing)
{
    WsDeque d = make();
    std::vector<int> sink;
    std::vector<Task> out;
    size_t sz = 0;
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));
    EXPECT_EQ(d.stealHalf(out, sz), 1u); // ceil(2/2) = 1
    ASSERT_TRUE(d.push(tagged(2, sink), sz));
    EXPECT_EQ(d.stealHalf(out, sz), 1u); // ceil(2/2) = 1 again
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(runTag(out[0], sink), 0);
    EXPECT_EQ(runTag(out[1], sink), 1);
}

TEST_P(WsDequeBoth, StealHalfInterleavesWithSingleSteal)
{
    // Both steal flavors drain the same head without gaps.
    WsDeque d = make();
    std::vector<int> sink;
    size_t sz = 0;
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));

    Task one;
    ASSERT_TRUE(d.steal(one, sz));
    EXPECT_EQ(runTag(one, sink), 0);

    std::vector<Task> bulk;
    EXPECT_EQ(d.stealHalf(bulk, sz), 4u); // ceil(7/2)
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(runTag(bulk[static_cast<size_t>(k)], sink), k + 1);

    ASSERT_TRUE(d.steal(one, sz));
    EXPECT_EQ(runTag(one, sink), 5);
    EXPECT_EQ(d.size(), 2u);
}

TEST_P(WsDequeBoth, QuiescentOpsRecordNoCasRetries)
{
    // Without contention neither protocol loses a claim, so the
    // retry counters — the A/B contention signal — stay at zero.
    WsDeque d = make();
    std::vector<int> sink;
    size_t sz = 0;
    Task out;
    std::vector<Task> bulk;
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(d.push(tagged(i, sink), sz));
    ASSERT_TRUE(d.steal(out, sz));
    ASSERT_TRUE(d.pop(out, sz));
    ASSERT_GT(d.stealHalf(bulk, sz), 0u);
    EXPECT_EQ(d.stealCasRetries(), 0u);
    EXPECT_EQ(d.popCasLosses(), 0u);
}

TEST_P(WsDequeBoth, DestructorReleasesQueuedClosures)
{
    // Tasks still queued at destruction own their closures; an
    // oversized (boxed) capture must be freed by the deque teardown.
    auto heavy = std::make_shared<int>(7);
    std::weak_ptr<int> watch = heavy;
    {
        WsDeque d = make();
        size_t sz = 0;
        ASSERT_TRUE(d.push(
            Task([heavy] { (void)*heavy; }, nullptr), sz));
        heavy.reset();
        EXPECT_FALSE(watch.expired()); // the queued task holds it
    }
    EXPECT_TRUE(watch.expired());
}

INSTANTIATE_TEST_SUITE_P(
    Impls, WsDequeBoth,
    testing::Values(DequeImpl::ChaseLev, DequeImpl::The),
    [](const testing::TestParamInfo<DequeImpl> &info) {
        return info.param == DequeImpl::ChaseLev ? "ChaseLev"
                                                 : "The";
    });

TEST(DequePolicy, DefaultsToChaseLevAndReplaysThe)
{
    WsDeque def;
    EXPECT_EQ(def.impl(), DequeImpl::ChaseLev);
    WsDeque legacy(8, DequePolicy{DequeImpl::The});
    EXPECT_EQ(legacy.impl(), DequeImpl::The);
}
