/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "util/rng.hpp"

using hermes::util::Rng;
using hermes::util::splitmix64;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const uint64_t first = a();
    a();
    a.reseed(7);
    EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(5.0, 9.0);
        ASSERT_GE(u, 5.0);
        ASSERT_LT(u, 9.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = rng.uniformInt(2, 5);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(6);
    double sum = 0.0;
    for (int i = 0; i < 50000; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / 50000.0, 3.0, 0.1);
}

TEST(Rng, ParetoRespectsScaleAndTail)
{
    Rng rng(7);
    double min_v = 1e18;
    int above_10x = 0;
    for (int i = 0; i < 50000; ++i) {
        const double v = rng.pareto(2.0, 1.8);
        min_v = std::min(min_v, v);
        above_10x += v > 20.0;
    }
    EXPECT_GE(min_v, 2.0);
    // Heavy tail: P(X > 10*xm) = 10^-1.8 ~= 1.6%.
    EXPECT_GT(above_10x, 200);
    EXPECT_LT(above_10x, 2500);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(8);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalIsPositive)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(10);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SplitmixAdvancesState)
{
    uint64_t s = 0;
    const uint64_t a = splitmix64(s);
    const uint64_t b = splitmix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 0u);
}
