/** @file Unit tests for core/clock-domain topology. */

#include <gtest/gtest.h>

#include "platform/topology.hpp"

using hermes::platform::Topology;

TEST(Topology, DomainMapping)
{
    Topology t(8, 2);
    EXPECT_EQ(t.numCores(), 8u);
    EXPECT_EQ(t.numDomains(), 4u);
    EXPECT_EQ(t.domainOf(0), 0u);
    EXPECT_EQ(t.domainOf(1), 0u);
    EXPECT_EQ(t.domainOf(2), 1u);
    EXPECT_EQ(t.domainOf(7), 3u);
}

TEST(Topology, CoresInDomain)
{
    Topology t(8, 2);
    const auto cores = t.coresIn(2);
    ASSERT_EQ(cores.size(), 2u);
    EXPECT_EQ(cores[0], 4u);
    EXPECT_EQ(cores[1], 5u);
}

TEST(Topology, DistinctDomainPlacement)
{
    // The paper's placement: no two workers share a clock domain.
    Topology t(32, 2);
    const auto cores = t.distinctDomainCores(16);
    ASSERT_EQ(cores.size(), 16u);
    std::vector<bool> seen(t.numDomains(), false);
    for (auto c : cores) {
        const auto d = t.domainOf(c);
        EXPECT_FALSE(seen[d]) << "domain " << d << " reused";
        seen[d] = true;
    }
}

TEST(Topology, SingleCoreDomains)
{
    Topology t(4, 1);
    EXPECT_EQ(t.numDomains(), 4u);
    EXPECT_EQ(t.domainOf(3), 3u);
}

TEST(TopologyDeath, TooManyDistinctWorkers)
{
    Topology t(8, 2);
    EXPECT_EXIT((void)t.distinctDomainCores(5),
                testing::ExitedWithCode(1), "clock domains");
}

TEST(TopologyDeath, NonDividingDomainWidth)
{
    EXPECT_EXIT(Topology(10, 4), testing::ExitedWithCode(1),
                "divide");
}

TEST(TopologyDeath, ZeroCores)
{
    EXPECT_EXIT(Topology(0, 1), testing::ExitedWithCode(1),
                "at least one core");
}
