/** @file Unit tests for core/clock-domain topology. */

#include <gtest/gtest.h>

#include "platform/topology.hpp"

using hermes::platform::Topology;

TEST(Topology, DomainMapping)
{
    Topology t(8, 2);
    EXPECT_EQ(t.numCores(), 8u);
    EXPECT_EQ(t.numDomains(), 4u);
    EXPECT_EQ(t.domainOf(0), 0u);
    EXPECT_EQ(t.domainOf(1), 0u);
    EXPECT_EQ(t.domainOf(2), 1u);
    EXPECT_EQ(t.domainOf(7), 3u);
}

TEST(Topology, CoresInDomain)
{
    Topology t(8, 2);
    const auto cores = t.coresIn(2);
    ASSERT_EQ(cores.size(), 2u);
    EXPECT_EQ(cores[0], 4u);
    EXPECT_EQ(cores[1], 5u);
}

TEST(Topology, DistinctDomainPlacement)
{
    // The paper's placement: no two workers share a clock domain.
    Topology t(32, 2);
    const auto cores = t.distinctDomainCores(16);
    ASSERT_EQ(cores.size(), 16u);
    std::vector<bool> seen(t.numDomains(), false);
    for (auto c : cores) {
        const auto d = t.domainOf(c);
        EXPECT_FALSE(seen[d]) << "domain " << d << " reused";
        seen[d] = true;
    }
}

TEST(Topology, SingleCoreDomains)
{
    Topology t(4, 1);
    EXPECT_EQ(t.numDomains(), 4u);
    EXPECT_EQ(t.domainOf(3), 3u);
}

TEST(DomainMap, UniformCollapsesToOneDomain)
{
    const auto m = hermes::platform::DomainMap::uniform(4);
    EXPECT_EQ(m.numWorkers(), 4u);
    EXPECT_EQ(m.numDomains(), 1u);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(m.domainOf(w), 0u);
    EXPECT_TRUE(m.sameDomain(0, 3));
    EXPECT_EQ(m.peersOf(1), (std::vector<unsigned>{0, 2, 3}));
}

TEST(DomainMap, ExplicitMapExposesPeersAndResidents)
{
    const hermes::platform::DomainMap m({0, 0, 1, 1});
    EXPECT_EQ(m.numWorkers(), 4u);
    EXPECT_EQ(m.numDomains(), 2u);
    EXPECT_TRUE(m.sameDomain(0, 1));
    EXPECT_FALSE(m.sameDomain(1, 2));
    EXPECT_EQ(m.workersIn(1), (std::vector<unsigned>{2, 3}));
    EXPECT_EQ(m.peersOf(2), (std::vector<unsigned>{3}));
    EXPECT_EQ(m.peersOf(0), (std::vector<unsigned>{1}));
}

TEST(DomainMap, FromTopologyFollowsPlannedCores)
{
    // 8 cores in pairs; workers planned on cores 0,2,4,6 then
    // wrapped onto 0,1 — domains follow the hosting core.
    Topology t(8, 2);
    const hermes::platform::DomainMap m =
        hermes::platform::DomainMap::fromTopology(
            t, {0, 2, 4, 6, 0, 1});
    EXPECT_EQ(m.numDomains(), 4u);
    EXPECT_EQ(m.domainOf(0), 0u);
    EXPECT_EQ(m.domainOf(3), 3u);
    EXPECT_EQ(m.domainOf(4), 0u);
    EXPECT_EQ(m.domainOf(5), 0u);
    EXPECT_EQ(m.peersOf(0), (std::vector<unsigned>{4, 5}));
}

TEST(DomainMap, FromTopologyDegradesToUniformOnUnknownCores)
{
    // A core outside the topology means the placement cannot be
    // trusted: the whole map collapses to one domain.
    Topology t(2, 1);
    const hermes::platform::DomainMap m =
        hermes::platform::DomainMap::fromTopology(t, {0, 1, 5});
    EXPECT_EQ(m.numDomains(), 1u);
    EXPECT_EQ(m.numWorkers(), 3u);
}

TEST(DomainMap, SparseIdsAreCompactedInFirstAppearanceOrder)
{
    // Only the partition matters; huge or gappy ids must not inflate
    // numDomains (Runtime sizes per-domain caches by it).
    const hermes::platform::DomainMap m({7, 1u << 30, 7, 3});
    EXPECT_EQ(m.numDomains(), 3u);
    EXPECT_EQ(m.domainOf(0), 0u);
    EXPECT_EQ(m.domainOf(1), 1u);
    EXPECT_EQ(m.domainOf(2), 0u);
    EXPECT_EQ(m.domainOf(3), 2u);
    EXPECT_TRUE(m.sameDomain(0, 2));
    EXPECT_FALSE(m.sameDomain(1, 3));
}

TEST(DomainMap, EmptyMapHasNoWorkersOrDomains)
{
    const hermes::platform::DomainMap m;
    EXPECT_EQ(m.numWorkers(), 0u);
    EXPECT_EQ(m.numDomains(), 0u);
}

TEST(TopologyDeath, TooManyDistinctWorkers)
{
    Topology t(8, 2);
    EXPECT_EXIT((void)t.distinctDomainCores(5),
                testing::ExitedWithCode(1), "clock domains");
}

TEST(TopologyDeath, NonDividingDomainWidth)
{
    EXPECT_EXIT(Topology(10, 4), testing::ExitedWithCode(1),
                "divide");
}

TEST(TopologyDeath, ZeroCores)
{
    EXPECT_EXIT(Topology(0, 1), testing::ExitedWithCode(1),
                "at least one core");
}
