/** @file Unit tests for streaming stats and the trial protocol. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.hpp"

using namespace hermes::util;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, HandComputedMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1: sum sq dev = 32, / 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37 - 3.0;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, ClearResets)
{
    RunningStats s;
    s.add(5.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
}

TEST(TrialSet, DiscardsWarmupTrials)
{
    // The paper: 20 trials, drop the first 2, average the rest.
    TrialSet t(2);
    t.add(100.0);  // warmup
    t.add(90.0);   // warmup
    for (int i = 0; i < 4; ++i)
        t.add(10.0 + i);  // 10, 11, 12, 13
    EXPECT_EQ(t.count(), 6u);
    EXPECT_EQ(t.keptCount(), 4u);
    EXPECT_DOUBLE_EQ(t.mean(), 11.5);
}

TEST(TrialSet, AllWarmupMeansZero)
{
    TrialSet t(2);
    t.add(5.0);
    EXPECT_EQ(t.keptCount(), 0u);
    EXPECT_EQ(t.mean(), 0.0);
}

TEST(TrialSet, StddevOfKeptOnly)
{
    TrialSet t(1);
    t.add(1000.0);
    t.add(2.0);
    t.add(4.0);
    EXPECT_NEAR(t.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 10.0), 1.0);
}

TEST(MeanGeomean, BasicValues)
{
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_NEAR(geomeanOf({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomeanOf({}), 0.0);
}
