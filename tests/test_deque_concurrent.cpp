/**
 * @file
 * Concurrency stress for the THE protocol: an owner pushing/popping
 * against multiple thieves — single-task steal() and bulk
 * stealHalf() mixed — must hand every task to exactly one consumer,
 * no losses, no duplicates, including the single-item contention
 * case the lock exists for (Section 2) and the mid-grab owner-pop
 * race stealHalf adds (docs/STEALING.md).
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/deque.hpp"

using hermes::runtime::Task;
using hermes::runtime::WsDeque;

namespace {

struct StressParams
{
    int thieves;
    int items;
    uint64_t seed;
};

class DequeStress : public testing::TestWithParam<StressParams>
{};

} // namespace

TEST_P(DequeStress, EveryTaskConsumedExactlyOnce)
{
    const auto p = GetParam();
    WsDeque deque(1 << 12);
    std::vector<std::atomic<int>> consumed(
        static_cast<size_t>(p.items));
    for (auto &c : consumed)
        c.store(0);

    std::atomic<bool> done{false};
    std::atomic<long> stolen{0};

    std::vector<std::thread> thieves;
    thieves.reserve(p.thieves);
    for (int t = 0; t < p.thieves; ++t) {
        thieves.emplace_back([&] {
            Task out;
            size_t sz = 0;
            while (!done.load(std::memory_order_acquire)) {
                if (deque.steal(out, sz)) {
                    out.body();
                    stolen.fetch_add(1,
                                     std::memory_order_relaxed);
                }
            }
            // Final drain so nothing is stranded at shutdown.
            while (deque.steal(out, sz)) {
                out.body();
                stolen.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // Owner: pushes every item, popping intermittently — including
    // long stretches where the deque holds one item, the THE
    // protocol's contended case.
    long popped = 0;
    {
        Task out;
        size_t sz = 0;
        for (int i = 0; i < p.items; ++i) {
            auto body = [i, &consumed] {
                consumed[static_cast<size_t>(i)].fetch_add(1);
            };
            while (!deque.push(Task(body, nullptr), sz)) {
                if (deque.pop(out, sz)) {
                    out.body();
                    ++popped;
                }
            }
            if ((i % 3) == 0 && deque.pop(out, sz)) {
                out.body();
                ++popped;
            }
        }
        while (deque.pop(out, sz)) {
            out.body();
            ++popped;
        }
    }
    done.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();

    for (int i = 0; i < p.items; ++i) {
        ASSERT_EQ(consumed[static_cast<size_t>(i)].load(), 1)
            << "task " << i << " consumed wrong number of times";
    }
    EXPECT_EQ(popped + stolen.load(), p.items);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, DequeStress,
    testing::Values(StressParams{1, 20000, 1},
                    StressParams{2, 20000, 2},
                    StressParams{4, 40000, 3},
                    StressParams{8, 40000, 4}));

namespace {

struct BulkStressParams
{
    int singleThieves;
    int bulkThieves;
    int items;
};

class DequeBulkStress : public testing::TestWithParam<BulkStressParams>
{};

} // namespace

TEST_P(DequeBulkStress, MixedSingleAndBulkThievesLoseNothing)
{
    // Steal-half torture: bulk thieves grab ceil(n/2) at a time while
    // single thieves and the owner's push/pop loop race them. Every
    // task must be consumed exactly once — a lost task shows up as a
    // zero count, a duplicated one as a count above 1 (the
    // linearizability claim of docs/STEALING.md).
    const auto p = GetParam();
    WsDeque deque(1 << 10); // small ring: wrap-around under load
    std::vector<std::atomic<int>> consumed(
        static_cast<size_t>(p.items));
    for (auto &c : consumed)
        c.store(0);

    std::atomic<bool> done{false};
    std::atomic<long> stolen{0};

    std::vector<std::thread> thieves;
    thieves.reserve(
        static_cast<size_t>(p.singleThieves + p.bulkThieves));
    for (int t = 0; t < p.singleThieves; ++t) {
        thieves.emplace_back([&] {
            Task out;
            size_t sz = 0;
            while (!done.load(std::memory_order_acquire)) {
                if (deque.steal(out, sz)) {
                    out.body();
                    stolen.fetch_add(1,
                                     std::memory_order_relaxed);
                }
            }
            while (deque.steal(out, sz)) {
                out.body();
                stolen.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (int t = 0; t < p.bulkThieves; ++t) {
        thieves.emplace_back([&] {
            std::vector<Task> batch;
            size_t sz = 0;
            const auto drain = [&] {
                for (auto &task : batch)
                    task.body();
                stolen.fetch_add(static_cast<long>(batch.size()),
                                 std::memory_order_relaxed);
                batch.clear();
            };
            while (!done.load(std::memory_order_acquire)) {
                if (deque.stealHalf(batch, sz) > 0)
                    drain();
            }
            while (deque.stealHalf(batch, sz) > 0)
                drain();
        });
    }

    // Owner: pushes every item, popping intermittently so the
    // tail-side THE race stays hot against the bulk grabs.
    long popped = 0;
    {
        Task out;
        size_t sz = 0;
        for (int i = 0; i < p.items; ++i) {
            auto body = [i, &consumed] {
                consumed[static_cast<size_t>(i)].fetch_add(1);
            };
            while (!deque.push(Task(body, nullptr), sz)) {
                if (deque.pop(out, sz)) {
                    out.body();
                    ++popped;
                }
            }
            if ((i % 5) == 0 && deque.pop(out, sz)) {
                out.body();
                ++popped;
            }
        }
        while (deque.pop(out, sz)) {
            out.body();
            ++popped;
        }
    }
    done.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();

    for (int i = 0; i < p.items; ++i) {
        ASSERT_EQ(consumed[static_cast<size_t>(i)].load(), 1)
            << "task " << i << " consumed wrong number of times";
    }
    EXPECT_EQ(popped + stolen.load(), p.items);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, DequeBulkStress,
    testing::Values(BulkStressParams{0, 1, 20000},
                    BulkStressParams{0, 4, 40000},
                    BulkStressParams{2, 2, 40000},
                    BulkStressParams{4, 4, 60000}));

TEST(DequeContention, SingleItemTugOfWar)
{
    // One item at a time, owner and thief racing for it.
    WsDeque deque(8);
    std::atomic<long> total{0};
    std::atomic<bool> done{false};

    std::thread thief([&] {
        Task out;
        size_t sz = 0;
        while (!done.load(std::memory_order_acquire)) {
            if (deque.steal(out, sz))
                out.body();
        }
    });

    constexpr int rounds = 50000;
    Task out;
    size_t sz = 0;
    for (int i = 0; i < rounds; ++i) {
        while (!deque.push(
            Task([&total] { total.fetch_add(1); }, nullptr), sz)) {
        }
        if (deque.pop(out, sz))
            out.body();
    }
    done.store(true, std::memory_order_release);
    thief.join();
    Task leftover;
    while (deque.steal(leftover, sz))
        leftover.body();

    EXPECT_EQ(total.load(), rounds);
}
