/**
 * @file
 * Concurrency stress for both deque protocols: an owner
 * pushing/popping against multiple thieves — single-task steal() and
 * bulk stealHalf() mixed — must hand every task to exactly one
 * consumer, no losses, no duplicates. Runs against the lock-free
 * Chase-Lev deque (where the races are the steal CAS vs the owner's
 * retract/last-task CAS, and the torn-copy-discard rule of the slot
 * words) and the legacy THE replay (the lock-based single-item
 * contention case of Section 2). The wrap-around torture uses a tiny
 * ring so the one-vacant-slot rule and the Chase-Lev
 * overwrite-implies-CAS-failure argument (docs/STEALING.md) are
 * exercised thousands of laps deep. These suites are part of the
 * TSan/ASan CI matrix and the multicore-stress --repeat job.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/deque.hpp"
#include "util/rng.hpp"

using hermes::runtime::DequeImpl;
using hermes::runtime::DequePolicy;
using hermes::runtime::Task;
using hermes::runtime::WsDeque;

namespace {

struct StressParams
{
    DequeImpl impl;
    int thieves;
    int items;
    uint64_t seed;
};

class DequeStress : public testing::TestWithParam<StressParams>
{};

std::string
implName(DequeImpl impl)
{
    return impl == DequeImpl::ChaseLev ? "ChaseLev" : "The";
}

} // namespace

TEST_P(DequeStress, EveryTaskConsumedExactlyOnce)
{
    const auto p = GetParam();
    WsDeque deque(1 << 12, DequePolicy{p.impl});
    std::vector<std::atomic<int>> consumed(
        static_cast<size_t>(p.items));
    for (auto &c : consumed)
        c.store(0);

    std::atomic<bool> done{false};
    std::atomic<long> stolen{0};

    std::vector<std::thread> thieves;
    thieves.reserve(p.thieves);
    for (int t = 0; t < p.thieves; ++t) {
        thieves.emplace_back([&] {
            Task out;
            size_t sz = 0;
            while (!done.load(std::memory_order_acquire)) {
                if (deque.steal(out, sz)) {
                    out.body();
                    stolen.fetch_add(1,
                                     std::memory_order_relaxed);
                }
            }
            // Final drain so nothing is stranded at shutdown.
            while (deque.steal(out, sz)) {
                out.body();
                stolen.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // Owner: pushes every item, popping intermittently — including
    // long stretches where the deque holds one item, the contended
    // last-task case both protocols exist for.
    long popped = 0;
    {
        Task out;
        size_t sz = 0;
        for (int i = 0; i < p.items; ++i) {
            auto body = [i, &consumed] {
                consumed[static_cast<size_t>(i)].fetch_add(1);
            };
            while (!deque.push(Task(body, nullptr), sz)) {
                if (deque.pop(out, sz)) {
                    out.body();
                    ++popped;
                }
            }
            if ((i % 3) == 0 && deque.pop(out, sz)) {
                out.body();
                ++popped;
            }
        }
        while (deque.pop(out, sz)) {
            out.body();
            ++popped;
        }
    }
    done.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();

    for (int i = 0; i < p.items; ++i) {
        ASSERT_EQ(consumed[static_cast<size_t>(i)].load(), 1)
            << "task " << i << " consumed wrong number of times";
    }
    EXPECT_EQ(popped + stolen.load(), p.items);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, DequeStress,
    testing::Values(
        StressParams{DequeImpl::ChaseLev, 1, 20000, 1},
        StressParams{DequeImpl::ChaseLev, 2, 20000, 2},
        StressParams{DequeImpl::ChaseLev, 4, 40000, 3},
        StressParams{DequeImpl::ChaseLev, 8, 40000, 4},
        StressParams{DequeImpl::The, 1, 20000, 1},
        StressParams{DequeImpl::The, 2, 20000, 2},
        StressParams{DequeImpl::The, 4, 40000, 3},
        StressParams{DequeImpl::The, 8, 40000, 4}),
    [](const testing::TestParamInfo<StressParams> &info) {
        return implName(info.param.impl)
            + std::to_string(info.param.thieves) + "Thieves";
    });

namespace {

struct BulkStressParams
{
    DequeImpl impl;
    int singleThieves;
    int bulkThieves;
    int items;
};

class DequeBulkStress
    : public testing::TestWithParam<BulkStressParams>
{};

} // namespace

TEST_P(DequeBulkStress, MixedSingleAndBulkThievesLoseNothing)
{
    // Steal-half torture: bulk thieves grab ceil(n/2) at a time while
    // single thieves and the owner's push/pop loop race them. Every
    // task must be consumed exactly once — a lost task shows up as a
    // zero count, a duplicated one as a count above 1 (the
    // exactly-once claim of docs/STEALING.md; under Chase-Lev this is
    // precisely what the per-task claim CAS buys over a bulk head
    // CAS).
    const auto p = GetParam();
    WsDeque deque(1 << 10, DequePolicy{p.impl}); // small: wrap-around
    std::vector<std::atomic<int>> consumed(
        static_cast<size_t>(p.items));
    for (auto &c : consumed)
        c.store(0);

    std::atomic<bool> done{false};
    std::atomic<long> stolen{0};

    std::vector<std::thread> thieves;
    thieves.reserve(
        static_cast<size_t>(p.singleThieves + p.bulkThieves));
    for (int t = 0; t < p.singleThieves; ++t) {
        thieves.emplace_back([&] {
            Task out;
            size_t sz = 0;
            while (!done.load(std::memory_order_acquire)) {
                if (deque.steal(out, sz)) {
                    out.body();
                    stolen.fetch_add(1,
                                     std::memory_order_relaxed);
                }
            }
            while (deque.steal(out, sz)) {
                out.body();
                stolen.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (int t = 0; t < p.bulkThieves; ++t) {
        thieves.emplace_back([&] {
            std::vector<Task> batch;
            size_t sz = 0;
            const auto drain = [&] {
                for (auto &task : batch)
                    task.body();
                stolen.fetch_add(static_cast<long>(batch.size()),
                                 std::memory_order_relaxed);
                batch.clear();
            };
            while (!done.load(std::memory_order_acquire)) {
                if (deque.stealHalf(batch, sz) > 0)
                    drain();
            }
            while (deque.stealHalf(batch, sz) > 0)
                drain();
        });
    }

    // Owner: pushes every item, popping intermittently so the
    // tail-side race stays hot against the bulk grabs.
    long popped = 0;
    {
        Task out;
        size_t sz = 0;
        for (int i = 0; i < p.items; ++i) {
            auto body = [i, &consumed] {
                consumed[static_cast<size_t>(i)].fetch_add(1);
            };
            while (!deque.push(Task(body, nullptr), sz)) {
                if (deque.pop(out, sz)) {
                    out.body();
                    ++popped;
                }
            }
            if ((i % 5) == 0 && deque.pop(out, sz)) {
                out.body();
                ++popped;
            }
        }
        while (deque.pop(out, sz)) {
            out.body();
            ++popped;
        }
    }
    done.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();

    for (int i = 0; i < p.items; ++i) {
        ASSERT_EQ(consumed[static_cast<size_t>(i)].load(), 1)
            << "task " << i << " consumed wrong number of times";
    }
    EXPECT_EQ(popped + stolen.load(), p.items);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, DequeBulkStress,
    testing::Values(
        BulkStressParams{DequeImpl::ChaseLev, 0, 1, 20000},
        BulkStressParams{DequeImpl::ChaseLev, 0, 4, 40000},
        BulkStressParams{DequeImpl::ChaseLev, 2, 2, 40000},
        BulkStressParams{DequeImpl::ChaseLev, 4, 4, 60000},
        BulkStressParams{DequeImpl::The, 0, 1, 20000},
        BulkStressParams{DequeImpl::The, 0, 4, 40000},
        BulkStressParams{DequeImpl::The, 2, 2, 40000},
        BulkStressParams{DequeImpl::The, 4, 4, 60000}),
    [](const testing::TestParamInfo<BulkStressParams> &info) {
        return implName(info.param.impl)
            + std::to_string(info.param.singleThieves) + "Single"
            + std::to_string(info.param.bulkThieves) + "Bulk";
    });

namespace {

class DequeWrapTorture : public testing::TestWithParam<DequeImpl>
{};

} // namespace

TEST_P(DequeWrapTorture, TinyRingManyLapsMixedOps)
{
    // The dedicated Chase-Lev wrap-around torture (run against THE
    // too, for parity): a 64-slot ring cycled thousands of laps
    // while 4 thieves mix single steals and bulk grabs against the
    // owner's push/pop loop. Index wrap-around means every physical
    // slot is reused constantly, so a thief's pre-CAS slot copy
    // regularly races the owner's overwrite — the
    // torn-copy-must-lose-its-CAS rule (docs/STEALING.md) is load-
    // bearing here, and TSan sees the relaxed word traffic directly.
    const DequeImpl impl = GetParam();
    constexpr int kItems = 60000;
    constexpr int kThieves = 4;
    WsDeque deque(64, DequePolicy{impl});
    std::vector<std::atomic<int>> consumed(kItems);
    for (auto &c : consumed)
        c.store(0);

    std::atomic<bool> done{false};
    std::atomic<long> stolen{0};

    std::vector<std::thread> thieves;
    thieves.reserve(kThieves);
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&, t] {
            hermes::util::Rng rng(
                hermes::util::mix64(0x7edbeef5u, t));
            Task out;
            std::vector<Task> batch;
            size_t sz = 0;
            const auto grabOnce = [&] {
                // Mixed flavors, biased toward bulk grabs so both
                // claim paths stay hot on every lap.
                if (rng.uniformInt(0, 2) == 0) {
                    if (deque.steal(out, sz)) {
                        out.body();
                        stolen.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                } else if (deque.stealHalf(batch, sz) > 0) {
                    for (auto &task : batch)
                        task.body();
                    stolen.fetch_add(
                        static_cast<long>(batch.size()),
                        std::memory_order_relaxed);
                    batch.clear();
                }
            };
            while (!done.load(std::memory_order_acquire))
                grabOnce();
            // Final drain so nothing is stranded at shutdown.
            Task last;
            while (deque.steal(last, sz)) {
                last.body();
                stolen.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    long popped = 0;
    {
        Task out;
        size_t sz = 0;
        for (int i = 0; i < kItems; ++i) {
            auto body = [i, &consumed] {
                consumed[static_cast<size_t>(i)].fetch_add(1);
            };
            // The 64-slot ring fills after a few pushes, so the
            // owner alternates hard between push, inline pop, and
            // the thieves' drain — thousands of full index laps.
            while (!deque.push(Task(body, nullptr), sz)) {
                if (deque.pop(out, sz)) {
                    out.body();
                    ++popped;
                }
            }
            if ((i & 7) == 0 && deque.pop(out, sz)) {
                out.body();
                ++popped;
            }
        }
        while (deque.pop(out, sz)) {
            out.body();
            ++popped;
        }
    }
    done.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();

    for (int i = 0; i < kItems; ++i) {
        ASSERT_EQ(consumed[static_cast<size_t>(i)].load(), 1)
            << "task " << i << " consumed wrong number of times";
    }
    EXPECT_EQ(popped + stolen.load(), kItems);
    if (impl == DequeImpl::The) {
        // The THE replay never runs the lock-free owner pop, so the
        // Chase-Lev-only counter must stay silent.
        EXPECT_EQ(deque.popCasLosses(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Impls, DequeWrapTorture,
    testing::Values(DequeImpl::ChaseLev, DequeImpl::The),
    [](const testing::TestParamInfo<DequeImpl> &info) {
        return implName(info.param);
    });

TEST(DequeContention, SingleItemTugOfWar)
{
    // One item at a time, owner and thief racing for it — the
    // last-task CAS arbitration (Chase-Lev) on its hottest path.
    WsDeque deque(8);
    std::atomic<long> total{0};
    std::atomic<bool> done{false};

    std::thread thief([&] {
        Task out;
        size_t sz = 0;
        while (!done.load(std::memory_order_acquire)) {
            if (deque.steal(out, sz))
                out.body();
        }
    });

    constexpr int rounds = 50000;
    Task out;
    size_t sz = 0;
    for (int i = 0; i < rounds; ++i) {
        while (!deque.push(
            Task([&total] { total.fetch_add(1); }, nullptr), sz)) {
        }
        if (deque.pop(out, sz))
            out.body();
    }
    done.store(true, std::memory_order_release);
    thief.join();
    Task leftover;
    while (deque.steal(leftover, sz))
        leftover.body();

    EXPECT_EQ(total.load(), rounds);
}
