/** @file Unit tests for exact energy integration. */

#include <gtest/gtest.h>

#include "energy/ledger.hpp"
#include "platform/system_profile.hpp"

using namespace hermes;
using energy::CoreActivity;
using energy::EnergyLedger;
using energy::PowerModel;

namespace {

EnergyLedger
ledger(unsigned cores = 2)
{
    return EnergyLedger(PowerModel(platform::systemA()), cores, 0.0,
                        2400);
}

} // namespace

TEST(Ledger, ConstantIdleIntegratesExactly)
{
    auto l = ledger(2);
    l.finish(10.0);
    const PowerModel m(platform::systemA());
    const double expect = 10.0
        * (m.uncorePower() + 2.0 * m.coreIdlePower(2400));
    EXPECT_NEAR(l.totalJoules(), expect, 1e-9);
    EXPECT_DOUBLE_EQ(l.duration(), 10.0);
}

TEST(Ledger, ActiveSegmentsAccumulate)
{
    auto l = ledger(1);
    l.setCoreActivity(0, 2.0, CoreActivity::Active);
    l.setCoreActivity(0, 5.0, CoreActivity::Idle);
    l.finish(10.0);
    const PowerModel m(platform::systemA());
    const double expect = 10.0 * m.uncorePower()
        + 7.0 * m.coreIdlePower(2400)
        + 3.0 * m.coreActivePower(2400);
    EXPECT_NEAR(l.totalJoules(), expect, 1e-9);
}

TEST(Ledger, FrequencyChangeMidRun)
{
    auto l = ledger(1);
    l.setCoreActivity(0, 0.0, CoreActivity::Active);
    l.setCoreFreq(0, 4.0, 1600);
    l.finish(10.0);
    const PowerModel m(platform::systemA());
    const double expect = 10.0 * m.uncorePower()
        + 4.0 * m.coreActivePower(2400)
        + 6.0 * m.coreActivePower(1600);
    EXPECT_NEAR(l.totalJoules(), expect, 1e-9);
}

TEST(Ledger, SpinStateCosted)
{
    auto l = ledger(1);
    l.setCoreActivity(0, 0.0, CoreActivity::Spin);
    l.finish(2.0);
    const PowerModel m(platform::systemA());
    EXPECT_NEAR(l.totalJoules(),
                2.0 * (m.uncorePower() + m.coreSpinPower(2400)),
                1e-9);
}

TEST(Ledger, PowerAtReflectsState)
{
    auto l = ledger(2);
    l.setCoreActivity(1, 3.0, CoreActivity::Active);
    l.finish(6.0);
    const PowerModel m(platform::systemA());
    EXPECT_NEAR(l.powerAt(1.0),
                m.uncorePower() + 2.0 * m.coreIdlePower(2400), 1e-9);
    EXPECT_NEAR(l.powerAt(4.0),
                m.uncorePower() + m.coreIdlePower(2400)
                    + m.coreActivePower(2400),
                1e-9);
}

TEST(Ledger, SeriesHasExpectedSampleCount)
{
    auto l = ledger(1);
    l.finish(0.5);
    const auto series = l.powerSeries(100.0);
    EXPECT_EQ(series.size(), 50u);  // 100 Hz for 0.5 s
}

TEST(Ledger, SeriesEnergyApproximatesExact)
{
    // The paper computes E = sum(P * 0.01); at 100 Hz over a
    // slowly-varying trace it should track the exact integral.
    auto l = ledger(2);
    l.setCoreActivity(0, 0.1, CoreActivity::Active);
    l.setCoreFreq(0, 0.7, 1600);
    l.setCoreActivity(1, 1.2, CoreActivity::Spin);
    l.finish(2.0);
    EXPECT_NEAR(l.seriesJoules(100.0), l.totalJoules(),
                0.02 * l.totalJoules());
}

TEST(Ledger, ZeroDurationIsFine)
{
    auto l = ledger(1);
    l.finish(0.0);
    EXPECT_DOUBLE_EQ(l.totalJoules(), 0.0);
}

TEST(LedgerDeath, TimeMustNotRegress)
{
    auto l = ledger(1);
    l.setCoreActivity(0, 5.0, CoreActivity::Active);
    EXPECT_DEATH(l.setCoreActivity(0, 4.0, CoreActivity::Idle),
                 "non-decreasing");
}

TEST(LedgerDeath, TotalsRequireFinish)
{
    auto l = ledger(1);
    EXPECT_DEATH((void)l.totalJoules(), "finish");
}
