#!/usr/bin/env python3
"""Diff two Google Benchmark JSON files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.10]
        [--counters NAME ...]
        [--lower-better NAME ...]
        [--require-all]

Compares, per benchmark name, the *named counters* (and, if asked,
the built-in `items_per_second` / `real_time` metrics) between a
committed baseline and a fresh run, and exits non-zero when any
compared value regressed by more than `--threshold` (default 10%).

Design notes, because cross-machine perf comparison is a trap:

- CI runners and developer machines differ wildly in absolute speed,
  so wiring time-based metrics against a committed baseline would
  flake forever. The intended CI usage compares *machine-independent
  ratio counters* (e.g. `inject_fast_frac`, `tasks_per_steal`,
  `local_frac` from bench_micro_runtime) — properties of the
  scheduler's behavior, not of the host. Time metrics are for local
  before/after runs on one machine.
- "Regression" respects direction: counters are higher-is-better by
  default; pass `--lower-better` for ones where smaller is healthier
  (e.g. `failed_hunts`, `spurious`). A baseline value of 0 only
  fails if the current value is worse than an absolute epsilon, so
  should-stay-zero counters can be pinned.
- Benchmarks present in the baseline but missing from the current
  run warn by default (filters change, machines lack Google
  Benchmark); `--require-all` turns that into a failure so CI
  cannot silently drop coverage.

Exit codes: 0 ok, 1 regression (or missing under --require-all),
2 usage/input error.
"""

import argparse
import json
import sys

EPSILON = 1e-9


def load_benchmarks(path):
    """Return {name: benchmark-dict} from a Google Benchmark JSON."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    table = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions);
        # compare raw iterations only.
        if bench.get("run_type") == "aggregate":
            continue
        table[bench["name"]] = bench
    if not table:
        sys.exit(f"bench_compare: no benchmarks in {path}")
    return table


def metric_value(bench, metric):
    """Fetch a metric: top-level field or user counter."""
    if metric in bench:
        return float(bench[metric])
    counters = bench.get("counters")
    if counters is not None and metric in counters:
        return float(counters[metric])
    # Older Google Benchmark JSON inlines counters at the top level;
    # the first branch already covered that. Missing means the
    # benchmark does not report this metric.
    return None


def relative_regression(baseline, current, lower_better):
    """Return the regression fraction (>0 means worse), direction-aware."""
    if abs(baseline) < EPSILON:
        # Pinned-at-zero baselines: any worsening beyond epsilon is
        # an absolute failure; improvements are never regressions.
        worse = current > EPSILON if lower_better else current < -EPSILON
        return float("inf") if worse else 0.0
    delta = (current - baseline) / abs(baseline)
    return delta if lower_better else -delta


def write_markdown(path, rows, failures, threshold):
    """Render the comparison as a markdown table (--emit-md)."""
    verdict = ("**REGRESSION** — comparison failed"
               if failures else "**PASS** — all comparisons within "
               f"{threshold:.0%}")
    lines = ["# Benchmark comparison", "", verdict, ""]
    if rows:
        lines += ["| benchmark | metric | baseline | current | "
                  "regression | status |",
                  "|---|---|---|---|---|---|"]
        for name, metric, b, c, regression, status in rows:
            lines.append(f"| {name} | {metric} | {b:g} | {c:g} | "
                         f"{regression:+.1%} | {status} |")
    if failures:
        lines += ["", "## Failures", ""]
        lines += [f"- {f}" for f in failures]
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    except OSError as err:
        sys.exit(f"bench_compare: cannot write {path}: {err}")


def main():
    parser = argparse.ArgumentParser(
        description="Diff two Google Benchmark JSON files and fail "
        "on >threshold regression of named counters.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative regression "
                        "(default 0.10 = 10%%)")
    parser.add_argument("--counters", nargs="*", default=[],
                        help="counter/metric names to compare "
                        "(default: items_per_second where present)")
    parser.add_argument("--lower-better", nargs="*", default=[],
                        dest="lower_better", metavar="NAME",
                        help="metrics where smaller is better "
                        "(e.g. real_time, failed_hunts)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when a baseline benchmark is "
                        "missing from the current run")
    parser.add_argument("--emit-md", metavar="PATH",
                        help="also write the comparison as a "
                        "markdown table (e.g. for a CI summary or "
                        "a PR comment)")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)
    metrics = args.counters or ["items_per_second"]
    lower = set(args.lower_better)

    failures = []
    rows = []  # (name, metric, baseline, current, regression, status)
    compared = 0
    for name, bench in sorted(base.items()):
        if name not in cur:
            msg = f"missing from current run: {name}"
            if args.require_all:
                failures.append(msg)
            else:
                print(f"bench_compare: warning: {msg}")
            continue
        for metric in metrics:
            b = metric_value(bench, metric)
            c = metric_value(cur[name], metric)
            if b is None:
                continue  # baseline doesn't report it here
            if c is None:
                failures.append(
                    f"{name}: metric {metric} vanished "
                    f"(baseline {b:g})")
                continue
            compared += 1
            regression = relative_regression(b, c, metric in lower)
            status = "ok"
            if regression > args.threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {metric} {b:g} -> {c:g} "
                    f"({regression:+.1%} worse, allowed "
                    f"{args.threshold:.0%})")
            rows.append((name, metric, b, c, regression, status))
            print(f"  {status:>10}  {name:<50} {metric}: "
                  f"{b:g} -> {c:g}")

    if args.emit_md:
        write_markdown(args.emit_md, rows, failures, args.threshold)
    if compared == 0:
        sys.exit("bench_compare: nothing compared — check --counters "
                 "against the baseline's metrics")
    if failures:
        print(f"\nbench_compare: {len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"\nbench_compare: {compared} comparison(s) within "
          f"{args.threshold:.0%}")


if __name__ == "__main__":
    main()
