#!/usr/bin/env python3
"""Exit-code and --emit-md contract tests for bench_compare.py.

Run directly (python3 tools/test_bench_compare.py) or via ctest
(registered as test_bench_compare). Uses only the standard library
and subprocesses the real script, so what is asserted here is the
exact interface CI shell steps rely on: 0 ok, 1 regression,
2 usage/input error, and a markdown table at --emit-md PATH.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def run_json(counters):
    """A minimal Google-Benchmark-shaped document with one bench."""
    return {
        "context": {"executable": "test"},
        "benchmarks": [{
            "name": "bench/contract",
            "run_type": "iteration",
            "real_time": 1000.0,
            "counters": dict(counters),
        }],
    }


class BenchCompareContract(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(
            prefix="bench_compare_test_")
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def write(self, name, payload):
        with open(self.path(name), "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return self.path(name)

    def invoke(self, *args):
        return subprocess.run(
            [sys.executable, SCRIPT, *args],
            capture_output=True, text=True, check=False)

    def test_within_threshold_exits_zero(self):
        base = self.write("base.json",
                          run_json({"good_frac": 0.90}))
        cur = self.write("cur.json", run_json({"good_frac": 0.88}))
        proc = self.invoke(base, cur, "--counters", "good_frac",
                           "--threshold", "0.10")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_regression_exits_one(self):
        base = self.write("base.json",
                          run_json({"good_frac": 0.90}))
        cur = self.write("cur.json", run_json({"good_frac": 0.50}))
        proc = self.invoke(base, cur, "--counters", "good_frac",
                           "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_lower_better_flips_direction(self):
        base = self.write("base.json", run_json({"failed": 100}))
        cur = self.write("cur.json", run_json({"failed": 150}))
        proc = self.invoke(base, cur, "--counters", "failed",
                           "--lower-better", "failed",
                           "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        # The same increase is an improvement when higher is better.
        proc = self.invoke(base, cur, "--counters", "failed",
                           "--threshold", "0.10")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_unreadable_input_exits_one_with_message(self):
        cur = self.write("cur.json", run_json({"x": 1}))
        proc = self.invoke(self.path("missing.json"), cur)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("cannot read", proc.stderr)

    def test_usage_error_exits_two(self):
        proc = self.invoke()  # missing positionals
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_nothing_compared_is_an_error(self):
        base = self.write("base.json", run_json({"a": 1}))
        cur = self.write("cur.json", run_json({"a": 1}))
        proc = self.invoke(base, cur, "--counters", "nope")
        self.assertEqual(proc.returncode, 1, proc.stderr)

    def test_emit_md_writes_table_on_pass(self):
        base = self.write("base.json", run_json({"frac": 0.5}))
        cur = self.write("cur.json", run_json({"frac": 0.5}))
        md = self.path("report.md")
        proc = self.invoke(base, cur, "--counters", "frac",
                           "--emit-md", md)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        with open(md, encoding="utf-8") as fh:
            text = fh.read()
        self.assertIn("**PASS**", text)
        self.assertIn("| bench/contract | frac |", text)

    def test_emit_md_written_even_on_regression(self):
        base = self.write("base.json", run_json({"frac": 0.9}))
        cur = self.write("cur.json", run_json({"frac": 0.1}))
        md = self.path("report.md")
        proc = self.invoke(base, cur, "--counters", "frac",
                           "--emit-md", md)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        with open(md, encoding="utf-8") as fh:
            text = fh.read()
        self.assertIn("**REGRESSION**", text)
        self.assertIn("## Failures", text)


if __name__ == "__main__":
    unittest.main()
