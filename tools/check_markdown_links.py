#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every *.md file in the repository (excluding build/ and
.git/) for inline links and images `[text](target)`, and verifies
that each relative target resolves to an existing file or
directory. External links (http/https/mailto) and pure #anchors are
skipped; a `path#anchor` link is checked for the existence of
`path` only.

Usage: python3 tools/check_markdown_links.py [repo_root]
Exit code 0 if all links resolve, 1 otherwise.
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", ".git", "bench_results"}
# Inline link/image: [text](target) — target ends at the first
# unescaped ')' or whitespace+title. Good enough for this repo's
# hand-written docs; fenced code blocks are stripped first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.M | re.S)


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(md: Path, root: Path):
    errors = []
    text = FENCE_RE.sub("", md.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        if path_part.startswith("/"):
            resolved = root / path_part.lstrip("/")
        else:
            resolved = md.parent / path_part
        if not resolved.exists():
            errors.append((md.relative_to(root), target))
    return errors


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    all_errors = []
    checked = 0
    for md in md_files(root):
        checked += 1
        all_errors.extend(check_file(md, root))
    if all_errors:
        for md, target in all_errors:
            print(f"BROKEN  {md}: ({target})")
        print(f"\n{len(all_errors)} broken link(s) "
              f"across {checked} markdown file(s)")
        return 1
    print(f"OK: all intra-repo links resolve "
          f"({checked} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
