/**
 * @file
 * hermes-scenario: the declarative scenario driver (docs/SCENARIOS.md).
 *
 *   hermes-scenario validate <scenario.json>
 *   hermes-scenario run      <scenario.json> [--out DIR]
 *   hermes-scenario baseline <scenario.json> [--baselines DIR]
 *   hermes-scenario compare  <scenario.json> [--baselines DIR] [--out DIR]
 *   hermes-scenario soak     <scenario.json> [--out DIR] [--duration SEC]
 *   hermes-scenario sweep    <scenario.json> [--out DIR] [--reduce-only]
 *
 * Exit codes are a stable contract (tests/test_scenario_cli.cpp
 * subprocesses this binary and asserts them):
 *
 *   0  success / compare passed / soak healthy / sweep gates passed
 *   1  internal or I/O error
 *   2  usage error (bad subcommand, missing argument, unknown flag)
 *   3  invalid scenario (validation diagnostics on stderr)
 *   4  compare: no baseline stored for this CPU key
 *   5  compare: regression beyond a metric's threshold
 *   6  soak: monotone-counter regression or latency drift
 *   7  sweep: a variant gate failed (curves.md has the verdicts)
 *   8  run: a faults.gates{} outcome gate failed (docs/RESILIENCE.md)
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/scenario/baseline.hpp"
#include "harness/scenario/scenario_config.hpp"
#include "harness/scenario/scenario_runner.hpp"
#include "harness/scenario/soak.hpp"
#include "harness/sweep/sweep_runner.hpp"

namespace {

namespace scenario = hermes::harness::scenario;

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInvalidScenario = 3;
constexpr int kExitMissingBaseline = 4;
constexpr int kExitRegression = 5;
constexpr int kExitSoakFailure = 6;
constexpr int kExitSweepGate = 7;
constexpr int kExitOutcomeGate = 8;

const char *const kUsage =
    "usage: hermes-scenario <subcommand> <scenario.json> [flags]\n"
    "\n"
    "subcommands:\n"
    "  validate   parse + validate only; diagnostics on stderr\n"
    "  run        execute and write the evidence bundle\n"
    "  baseline   execute and store run.json under the CPU key\n"
    "  compare    execute and gate against the stored baseline\n"
    "  soak       loop the workload, checkpointing scheduler stats\n"
    "  sweep      run the rates x variants grid, reduce to curves\n"
    "\n"
    "flags:\n"
    "  --out DIR        evidence/diff/soak/sweep output directory\n"
    "                   (default scenario-out/<name>)\n"
    "  --baselines DIR  baseline root (default baselines)\n"
    "  --duration SEC   soak duration override (default: scenario's)\n"
    "  --reduce-only    sweep: re-reduce stored point bundles\n"
    "                   without running anything\n"
    "\n"
    "exit codes: 0 ok/pass, 1 internal error, 2 usage,\n"
    "  3 invalid scenario, 4 missing baseline, 5 regression,\n"
    "  6 soak failure, 7 sweep gate failure,\n"
    "  8 outcome gate failure\n";

struct Options
{
    std::string subcommand;
    std::string scenarioPath;
    std::string outDir;              // empty = scenario-out/<name>
    std::string baselineDir = "baselines";
    double durationSec = 0.0;        // <= 0 = scenario's own
    bool reduceOnly = false;         // sweep: reload, don't run
};

/** Parse argv into Options; returns false (after printing to
 * stderr) on any usage error. */
bool
parseArgs(int argc, char **argv, Options &opts)
{
    if (argc < 3) {
        std::fputs(kUsage, stderr);
        return false;
    }
    opts.subcommand = argv[1];
    opts.scenarioPath = argv[2];
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "hermes-scenario: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--out") {
            const char *v = value("--out");
            if (v == nullptr)
                return false;
            opts.outDir = v;
        } else if (arg == "--baselines") {
            const char *v = value("--baselines");
            if (v == nullptr)
                return false;
            opts.baselineDir = v;
        } else if (arg == "--duration") {
            const char *v = value("--duration");
            if (v == nullptr)
                return false;
            char *end = nullptr;
            opts.durationSec = std::strtod(v, &end);
            if (end == v || *end != '\0') {
                std::fprintf(stderr,
                             "hermes-scenario: --duration wants a "
                             "number, got '%s'\n",
                             v);
                return false;
            }
        } else if (arg == "--reduce-only") {
            opts.reduceOnly = true;
        } else {
            std::fprintf(stderr,
                         "hermes-scenario: unknown flag '%s'\n%s",
                         arg.c_str(), kUsage);
            return false;
        }
    }
    return true;
}

/** Load + validate, printing every diagnostic on failure. */
bool
loadOrDiagnose(const std::string &path,
               scenario::ScenarioConfig &config)
{
    const scenario::ScenarioLoadResult loaded =
        scenario::loadScenarioFile(path);
    if (!loaded.ok) {
        std::fprintf(stderr,
                     "hermes-scenario: %s is not a valid scenario "
                     "(%zu diagnostic(s)):\n",
                     path.c_str(), loaded.diags.size());
        for (const scenario::ScenarioDiag &diag : loaded.diags)
            std::fprintf(stderr, "  %s\n",
                         diag.toString().c_str());
        return false;
    }
    config = loaded.config;
    return true;
}

std::string
outDirFor(const Options &opts, const scenario::ScenarioConfig &c)
{
    return opts.outDir.empty() ? "scenario-out/" + c.name
                               : opts.outDir;
}

int
cmdValidate(const Options &opts)
{
    scenario::ScenarioConfig config;
    if (!loadOrDiagnose(opts.scenarioPath, config))
        return kExitInvalidScenario;
    // Echo the canonical defaults-resolved form so `validate` doubles
    // as a normalizer.
    std::fputs(scenario::writeConfigJson(config).c_str(), stdout);
    return kExitOk;
}

int
cmdRun(const Options &opts)
{
    scenario::ScenarioConfig config;
    if (!loadOrDiagnose(opts.scenarioPath, config))
        return kExitInvalidScenario;
    const scenario::ScenarioResult result =
        scenario::runScenario(config);
    scenario::writeScenarioBundle(outDirFor(opts, config), result);
    // Outcome gates are checked after the bundle lands, so a failed
    // run still leaves its full evidence on disk.
    const std::vector<std::string> gate_failures =
        scenario::checkOutcomeGates(result);
    for (const std::string &failure : gate_failures)
        std::fprintf(stderr, "hermes-scenario: %s\n",
                     failure.c_str());
    return gate_failures.empty() ? kExitOk : kExitOutcomeGate;
}

int
cmdBaseline(const Options &opts)
{
    scenario::ScenarioConfig config;
    if (!loadOrDiagnose(opts.scenarioPath, config))
        return kExitInvalidScenario;
    const scenario::ScenarioResult result =
        scenario::runScenario(config);
    scenario::captureBaseline(opts.baselineDir, result);
    return kExitOk;
}

int
cmdCompare(const Options &opts)
{
    scenario::ScenarioConfig config;
    if (!loadOrDiagnose(opts.scenarioPath, config))
        return kExitInvalidScenario;

    // Check for the baseline before burning a run: a missing
    // baseline is an answer, not a reason to measure.
    const std::string expected = scenario::baselinePath(
        opts.baselineDir,
        scenario::cpuKey(config.runtime.workers), config.name);
    if (!std::filesystem::exists(expected)) {
        std::fprintf(stderr,
                     "hermes-scenario: no baseline at %s — run "
                     "`hermes-scenario baseline` first\n",
                     expected.c_str());
        return kExitMissingBaseline;
    }

    const scenario::ScenarioResult result =
        scenario::runScenario(config);
    const scenario::CompareReport report =
        scenario::compareAgainstBaseline(opts.baselineDir, result);

    const std::string markdown = report.markdown(config);
    const std::string dir = outDirFor(opts, config);
    std::filesystem::create_directories(dir);
    std::ofstream diff(dir + "/diff.md");
    if (!diff) {
        std::fprintf(stderr,
                     "hermes-scenario: cannot write %s/diff.md\n",
                     dir.c_str());
        return kExitInternal;
    }
    diff << markdown;
    std::fputs(markdown.c_str(), stdout);

    switch (report.status) {
    case scenario::CompareStatus::kPass:
        return kExitOk;
    case scenario::CompareStatus::kRegression:
        return kExitRegression;
    case scenario::CompareStatus::kMissingBaseline:
        return kExitMissingBaseline;
    case scenario::CompareStatus::kError:
        return kExitInternal;
    }
    return kExitInternal;
}

int
cmdSoak(const Options &opts)
{
    scenario::ScenarioConfig config;
    if (!loadOrDiagnose(opts.scenarioPath, config))
        return kExitInvalidScenario;
    const scenario::SoakOutcome outcome = scenario::runSoak(
        config, outDirFor(opts, config), opts.durationSec);
    for (const std::string &failure : outcome.failures)
        std::fprintf(stderr, "hermes-scenario: soak: %s\n",
                     failure.c_str());
    return outcome.ok ? kExitOk : kExitSoakFailure;
}

int
cmdSweep(const Options &opts)
{
    scenario::ScenarioConfig config;
    if (!loadOrDiagnose(opts.scenarioPath, config))
        return kExitInvalidScenario;
    if (!config.sweep.enabled) {
        std::fprintf(stderr,
                     "hermes-scenario: %s has no sweep block — "
                     "`sweep` needs one (docs/SCENARIOS.md)\n",
                     opts.scenarioPath.c_str());
        return kExitInvalidScenario;
    }

    namespace sweep = hermes::harness::sweep;
    const std::string dir = outDirFor(opts, config);
    const sweep::SweepOutcome outcome =
        sweep::runSweep(config, dir, opts.reduceOnly);

    for (const std::string &error : outcome.errors)
        std::fprintf(stderr, "hermes-scenario: sweep: %s\n",
                     error.c_str());
    if (!outcome.errors.empty())
        return kExitInternal;

    std::printf("sweep: %zu variant(s) x %zu rate(s) -> %s/curves."
                "json, curves.md\n",
                config.sweep.variants.size(),
                config.sweep.ratesPerSec.size(), dir.c_str());
    for (const auto &vc : outcome.curves.variants) {
        if (vc.kneeFound)
            std::printf("sweep: %s knee at %g req/s\n",
                        vc.variant.c_str(), vc.kneeRatePerSec);
    }
    if (outcome.gateFailure) {
        std::fprintf(stderr,
                     "hermes-scenario: sweep: gate failure — see "
                     "%s/curves.md\n",
                     dir.c_str());
        return kExitSweepGate;
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2
        && (std::string(argv[1]) == "--help"
            || std::string(argv[1]) == "-h")) {
        std::fputs(kUsage, stdout);
        return kExitOk;
    }

    Options opts;
    if (!parseArgs(argc, argv, opts))
        return kExitUsage;

    if (opts.subcommand == "validate")
        return cmdValidate(opts);
    if (opts.subcommand == "run")
        return cmdRun(opts);
    if (opts.subcommand == "baseline")
        return cmdBaseline(opts);
    if (opts.subcommand == "compare")
        return cmdCompare(opts);
    if (opts.subcommand == "soak")
        return cmdSoak(opts);
    if (opts.subcommand == "sweep")
        return cmdSweep(opts);

    std::fprintf(stderr,
                 "hermes-scenario: unknown subcommand '%s'\n%s",
                 opts.subcommand.c_str(), kUsage);
    return kExitUsage;
}
