/**
 * @file
 * Figure 17: N-frequency tempo control on System B — 3.6/2.7 GHz vs
 * 3.6/3.3/2.7 GHz.
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runNFreqFigure(
        "fig17", hermes::platform::systemB(),
        {{3600, 2700}, {3600, 3300, 2700}});
    return 0;
}
