/**
 * @file
 * Figure 8: normalized Energy-Delay Product on System A (< 1 means
 * HERMES improves the energy/performance trade-off).
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runEdpFigure("fig08", hermes::platform::systemA());
    return 0;
}
