/**
 * @file
 * Figures 10 and 11: relative effectiveness of workpath-only vs
 * workload-only tempo control on System A, normalized to the unified
 * algorithm (energy-savings ratios and time-loss ratios). The
 * paper's headline: the strategies are complementary — each alone
 * yields roughly half the unified savings but 1.5-2x its time loss.
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runAblationFigure("fig10_11",
                                     hermes::platform::systemA());
    return 0;
}
