/**
 * @file
 * Micro-benchmarks of the tempo controller itself: per-hook cost of
 * the Figure 5 events under each policy, and the immediacy-list
 * operations. This quantifies overhead source (2) of Section 3.4
 * (online profiling) and the bookkeeping around (1) (DVFS calls are
 * counted but the backend here is in-memory).
 */

#include <benchmark/benchmark.h>

#include "core/tempo_controller.hpp"
#include "dvfs/simulated.hpp"
#include "platform/system_profile.hpp"

using namespace hermes;

namespace {

struct Fixture
{
    explicit Fixture(core::TempoPolicy policy)
        : profile(platform::systemA()),
          backend(profile.topology.numDomains(), profile.ladder),
          controller(makeConfig(policy), backend, 16,
                     [](core::WorkerId w) {
                         return static_cast<platform::DomainId>(w);
                     })
    {
        controller.reset(0.0);
    }

    static core::TempoConfig
    makeConfig(core::TempoPolicy policy)
    {
        core::TempoConfig cfg;
        cfg.policy = policy;
        cfg.ladder = platform::FrequencyLadder({2400, 1600});
        return cfg;
    }

    platform::SystemProfile profile;
    dvfs::SimulatedDvfs backend;
    core::TempoController controller;
};

void
benchPushPopHooks(benchmark::State &state)
{
    Fixture fx(static_cast<core::TempoPolicy>(state.range(0)));
    double now = 0.0;
    for (auto _ : state) {
        for (size_t size = 1; size <= 16; ++size)
            fx.controller.onPush(3, size, now += 1e-7);
        for (size_t size = 16; size-- > 0;)
            fx.controller.onPopSuccess(3, size, now += 1e-7);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}

void
benchStealHooks(benchmark::State &state)
{
    Fixture fx(static_cast<core::TempoPolicy>(state.range(0)));
    double now = 0.0;
    for (auto _ : state) {
        // thief 1 steals from 0, then runs dry (relay + unlink)
        fx.controller.onStealSuccess(1, 0, now += 1e-7);
        fx.controller.onOutOfWork(1, now += 1e-7);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}

void
benchRelayChain(benchmark::State &state)
{
    Fixture fx(core::TempoPolicy::Unified);
    double now = 0.0;
    for (auto _ : state) {
        // Build a 15-deep thief chain, then relay from its head.
        for (core::WorkerId w = 1; w < 16; ++w)
            fx.controller.onStealSuccess(w, w - 1, now += 1e-7);
        fx.controller.onOutOfWork(0, now += 1e-7);
        for (core::WorkerId w = 1; w < 16; ++w)
            fx.controller.onOutOfWork(w, now += 1e-7);
    }
    state.SetItemsProcessed(state.iterations() * 31);
}

} // namespace

// Arg: TempoPolicy (0 Baseline, 1 WorkpathOnly, 2 WorkloadOnly,
// 3 Unified)
BENCHMARK(benchPushPopHooks)->Arg(0)->Arg(2)->Arg(3);
BENCHMARK(benchStealHooks)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(benchRelayChain);

BENCHMARK_MAIN();
