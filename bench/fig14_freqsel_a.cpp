/**
 * @file
 * Figure 14: the effect of the slow-frequency selection on System A.
 * Fast tempo fixed at 2.4 GHz; slow tempo one of 1.6/1.4/1.9 GHz.
 * Expected shape: a higher slow rung loses less time but saves less
 * energy; a very low slow rung hurts both (time-linear energy).
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runFreqSelectionFigure(
        "fig14", hermes::platform::systemA(), {1600, 1400, 1900});
    return 0;
}
