/**
 * @file
 * Figures 19-22: time series of power samples (the 100 Hz DAQ
 * emulation) under static vs dynamic scheduling — KNN and Ray with
 * 16 and 8 workers on System A. Each series is a single HERMES
 * execution, like the paper's traces; the two modes are different
 * runs, so spikes need not align.
 *
 * Output: an ASCII sparkline per trace on stdout plus one CSV per
 * figure with the full sample series.
 */

#include <cstdio>

#include "figure_common.hpp"
#include "util/csv.hpp"

using namespace hermes;

namespace {

void
trace(const std::string &figure_id, const std::string &bench_name,
      unsigned workers)
{
    harness::ExperimentConfig cfg;
    cfg.profile = platform::systemA();
    cfg.benchmark = bench_name;
    cfg.workers = workers;
    cfg.policy = core::TempoPolicy::Unified;

    util::CsvWriter csv(harness::resultsDir() + "/" + figure_id
                        + ".csv");
    csv.row({"sample", "t_sec", "watts_static", "watts_dynamic"});

    cfg.scheduling = runtime::SchedulingMode::Static;
    const auto rs = harness::runOnce(cfg, 0, true);
    cfg.scheduling = runtime::SchedulingMode::Dynamic;
    const auto rd = harness::runOnce(cfg, 1, true);

    std::printf("\n=== %s: %s, %u workers, System A ===\n",
                figure_id.c_str(), bench_name.c_str(), workers);
    std::printf("static  (%5.3fs, %6.2fJ): %s\n", rs.seconds,
                rs.joules,
                harness::sparkline(rs.powerSeries).c_str());
    std::printf("dynamic (%5.3fs, %6.2fJ): %s\n", rd.seconds,
                rd.joules,
                harness::sparkline(rd.powerSeries).c_str());

    const size_t n = std::max(rs.powerSeries.size(),
                              rd.powerSeries.size());
    for (size_t i = 0; i < n; ++i) {
        const double ws = i < rs.powerSeries.size()
            ? rs.powerSeries[i] : 0.0;
        const double wd = i < rd.powerSeries.size()
            ? rd.powerSeries[i] : 0.0;
        csv.rowNumeric(std::to_string(i),
                       {static_cast<double>(i) / 100.0, ws, wd});
    }
    csv.close();
}

} // namespace

int
main()
{
    trace("fig19", "knn", 16);
    trace("fig20", "knn", 8);
    trace("fig21", "ray", 16);
    trace("fig22", "ray", 8);
    std::printf("\nCSV series written to %s/fig19..22.csv\n",
                harness::resultsDir().c_str());
    return 0;
}
