/**
 * @file
 * Micro-benchmarks of the external-submission (inject) path: the
 * lock-free sharded MPMC ring vs the legacy mutex-guarded deque it
 * replaced (`InjectPolicy::useLockFreeInject` A/B), raw and
 * end-to-end. The multi-producer throughput pair is the scalability
 * story of docs/ARCHITECTURE.md "The inject path": with one
 * producer the two are comparable; from two producers up the mutex
 * queue serializes while the sharded ring scales.
 */

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "runtime/inject_queue.hpp"
#include "runtime/scheduler.hpp"

using namespace hermes;

namespace {

/**
 * Raw queue throughput: P producer threads push empty tasks while
 * one drainer pops until every task is through — no runtime, no
 * workers, just the queue under producer contention.
 * Args: {producers, useLockFree}.
 */
void
benchRawInject(benchmark::State &state)
{
    const int producers = static_cast<int>(state.range(0));
    const bool lock_free = state.range(1) != 0;
    constexpr int kPerProducer = 4096;
    const int total = producers * kPerProducer;

    // Size each shard for the full offered burst: on an
    // oversubscribed host a producer can run a whole scheduler
    // quantum ahead of the drainer, and a ring smaller than the
    // burst would measure the spill mutex instead of the ring.
    runtime::InjectPolicy policy;
    policy.shardCapacity = kPerProducer;

    for (auto _ : state) {
        // The legacy side is the exact pre-replacement structure: a
        // mutex around a std::deque, every producer and the drainer
        // serializing on it.
        std::mutex legacy_mutex;
        std::deque<runtime::Task> legacy;
        runtime::InjectQueue queue(policy,
                                   static_cast<unsigned>(producers));

        std::atomic<int> drained{0};
        std::vector<std::thread> threads;
        for (int p = 0; p < producers; ++p) {
            threads.emplace_back([&, p] {
                for (int k = 0; k < kPerProducer; ++k) {
                    runtime::Task t([] {}, nullptr);
                    if (lock_free) {
                        queue.push(std::move(t),
                                   static_cast<unsigned>(p));
                    } else {
                        std::lock_guard<std::mutex> lock(
                            legacy_mutex);
                        legacy.push_back(std::move(t));
                    }
                }
            });
        }
        threads.emplace_back([&] {
            runtime::Task out;
            while (drained.load(std::memory_order_relaxed)
                   < total) {
                bool got = false;
                if (lock_free) {
                    got = queue.tryPop(out, 0)
                        != runtime::InjectQueue::PopSource::None;
                } else {
                    std::lock_guard<std::mutex> lock(legacy_mutex);
                    if (!legacy.empty()) {
                        out = std::move(legacy.front());
                        legacy.pop_front();
                        got = true;
                    }
                }
                if (got)
                    drained.fetch_add(1, std::memory_order_relaxed);
                else
                    std::this_thread::yield();
            }
        });
        for (auto &t : threads)
            t.join();
        benchmark::DoNotOptimize(drained.load());
    }
    state.SetItemsProcessed(state.iterations() * total);
}

/**
 * End-to-end submission throughput: P external producer threads
 * drive tasks through `TaskGroup::run` → `Runtime::inject` into a
 * worker pool that drains them — the full entry path including the
 * Dekker publish and wake notifications.
 * Args: {producers, useLockFree}.
 */
void
benchSubmitThroughput(benchmark::State &state)
{
    const int producers = static_cast<int>(state.range(0));
    const bool lock_free = state.range(1) != 0;
    constexpr int kPerProducer = 2048;

    runtime::RuntimeConfig cfg;
    cfg.numWorkers = 2;
    cfg.inject.useLockFreeInject = lock_free;
    // Absorb a worst-case burst (every producer a full quantum ahead
    // of the workers, all landing in one shard on single-domain
    // hosts) without spilling; see benchRawInject.
    cfg.inject.shardCapacity =
        static_cast<size_t>(producers) * kPerProducer;
    runtime::Runtime rt(cfg);

    std::atomic<uint64_t> sink{0};
    for (auto _ : state) {
        runtime::TaskGroup group(rt);
        std::vector<std::thread> threads;
        for (int p = 0; p < producers; ++p) {
            threads.emplace_back([&] {
                for (int k = 0; k < kPerProducer; ++k) {
                    group.run([&] {
                        sink.fetch_add(1,
                                       std::memory_order_relaxed);
                    });
                }
            });
        }
        for (auto &t : threads)
            t.join();
        group.wait();
    }
    benchmark::DoNotOptimize(sink.load());

    const auto s = rt.stats();
    state.counters["inject_fast_frac"] =
        benchmark::Counter(s.injectFastFraction());
    state.counters["inject_spill"] = benchmark::Counter(
        static_cast<double>(s.injectSpill));
    state.SetItemsProcessed(state.iterations() * producers
                            * kPerProducer);
}

} // namespace

// Args: {producers, useLockFree}; each producer count is an A/B
// pair — the acceptance check is lock-free >= mutex throughput from
// 2 producers up. UseRealTime: producer threads block and join
// outside the calling thread's CPU time.
BENCHMARK(benchRawInject)
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(benchSubmitThroughput)
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
