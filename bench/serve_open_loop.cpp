/**
 * @file
 * hermes-serve CLI: open-loop request serving over Runtime::submit().
 *
 * Thin flag-parsing shell over src/harness/serve — every behavior
 * (arrival generation, admission, latency recording, the run bundle)
 * lives in the library so the unit tests cover it; this file only
 * maps flags to a ServeConfig, runs it, and prints the summary.
 *
 *   bench_serve_open_loop --rate=2000 --duration=2 --seed=7 \
 *       --workers=4 --producers=2 --out=serve_results/run0
 *
 * The bundle directory gets config.json, summary.json (Google
 * Benchmark schema — gate it with tools/bench_compare.py),
 * timeseries.csv, and schedule.csv. `--trace` replays a previously
 * emitted schedule.csv instead of drawing a Poisson schedule, which
 * reproduces a run's arrivals exactly (docs/SERVING.md).
 */

#include <cstdio>

#include "harness/serve/serve_driver.hpp"
#include "platform/system_profile.hpp"
#include "runtime/scheduler.hpp"
#include "util/cli.hpp"

using namespace hermes;
using namespace hermes::harness::serve;

int
main(int argc, char **argv)
{
    util::Cli cli("Open-loop request serving over Runtime::submit(): "
                  "Poisson or trace arrivals, admission control, "
                  "latency/energy summary.");
    cli.addInt("workers", "runtime worker threads", 4);
    cli.addInt("producers", "load-generator threads", 2);
    cli.addInt("seed", "arrival-schedule seed", 42);
    cli.addDouble("rate", "offered load, requests/s (Poisson)", 2000);
    cli.addDouble("duration", "schedule length, seconds", 1.0);
    cli.addString("trace", "replay this schedule.csv instead of "
                  "drawing Poisson arrivals", "");
    cli.addInt("spin-nanos", "per-request wall-clock service time",
               20'000);
    cli.addString("workload", "serve this registered workload "
                  "(knn|ray|sort|compare|hull) instead of the spin "
                  "kernel", "");
    cli.addInt("scale", "per-request workload input size", 1024);
    cli.addFlag("no-admission", "accept everything (measure raw "
                "saturation)", false);
    cli.addInt("admit-high", "backlog entering shedding", 1024);
    cli.addInt("admit-low", "backlog leaving shedding", 256);
    cli.addString("profile", "power-model system profile (A, B, or "
                  "host)", "A");
    cli.addString("out", "run-bundle directory (empty: no bundle)",
                  "serve_results/run");
    cli.parse(argc, argv);

    ServeConfig config;
    config.arrivals.seed = static_cast<uint64_t>(cli.getInt("seed"));
    config.arrivals.ratePerSec = cli.getDouble("rate");
    config.arrivals.durationSec = cli.getDouble("duration");
    if (const auto trace = cli.getString("trace"); !trace.empty()) {
        config.arrivals.mode = ArrivalMode::kTrace;
        config.arrivals.tracePath = trace;
    }
    MixEntry entry;
    entry.spinNanos = static_cast<uint64_t>(cli.getInt("spin-nanos"));
    if (const auto wl = cli.getString("workload"); !wl.empty()) {
        entry.name = wl;
        entry.workload = wl;
        entry.scale = static_cast<size_t>(cli.getInt("scale"));
    }
    config.mix = {entry};
    config.producers =
        static_cast<unsigned>(cli.getInt("producers"));
    config.admissionEnabled = !cli.getFlag("no-admission");
    config.admission.highWatermark =
        static_cast<size_t>(cli.getInt("admit-high"));
    config.admission.lowWatermark =
        static_cast<size_t>(cli.getInt("admit-low"));
    config.profileName = cli.getString("profile");

    runtime::RuntimeConfig rt_config;
    rt_config.numWorkers =
        static_cast<unsigned>(cli.getInt("workers"));
    rt_config.profile = platform::profileByName(config.profileName);
    runtime::Runtime rt(rt_config);

    const ServeResult result = runServe(rt, config);

    std::printf("hermes-serve: offered %llu  accepted %llu  "
                "shed %llu  completed %llu\n",
                static_cast<unsigned long long>(result.offered),
                static_cast<unsigned long long>(result.accepted),
                static_cast<unsigned long long>(result.shed),
                static_cast<unsigned long long>(result.completed));
    std::printf("  sojourn p50/p99/p99.9: %llu / %llu / %llu ns  "
                "(mean %.0f ns)\n",
                static_cast<unsigned long long>(
                    result.sojourn.quantileNanos(0.50)),
                static_cast<unsigned long long>(
                    result.sojourn.quantileNanos(0.99)),
                static_cast<unsigned long long>(
                    result.sojourn.quantileNanos(0.999)),
                result.sojourn.meanNanos());
    std::printf("  energy: %.3f J total, %.6f J/request over "
                "%.3f s\n",
                result.joules, result.joulesPerRequest,
                result.wallSeconds);

    if (const auto out = cli.getString("out"); !out.empty())
        writeRunBundle(out, result);
    return 0;
}
