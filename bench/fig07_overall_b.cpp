/**
 * @file
 * Figure 7: normalized energy savings and time loss of HERMES on
 * System B (8-core Bulldozer), 5 benchmarks x {2,3,4} workers.
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runOverallFigure("fig07",
                                    hermes::platform::systemB());
    return 0;
}
