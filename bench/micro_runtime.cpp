/**
 * @file
 * Micro-benchmarks of the threaded work-stealing runtime: spawn/sync
 * overhead (fib), parallel-for scaling, and a real workload
 * (radix sort) under baseline vs unified tempo policies — the
 * scheduler-overhead side of the paper's Section 3.4 discussion.
 */

#include <benchmark/benchmark.h>

#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"
#include "workloads/registry.hpp"

using namespace hermes;

namespace {

long
fib(runtime::Runtime &rt, long n)
{
    if (n < 2)
        return n;
    if (n < 14)
        return fib(rt, n - 1) + fib(rt, n - 2);
    long a = 0, b = 0;
    runtime::parallelInvoke(rt, [&] { a = fib(rt, n - 1); },
                            [&] { b = fib(rt, n - 2); });
    return a + b;
}

runtime::RuntimeConfig
configFor(bool tempo, unsigned workers)
{
    runtime::RuntimeConfig cfg;
    cfg.numWorkers = workers;
    cfg.enableTempo = tempo;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    return cfg;
}

void
benchFib(benchmark::State &state)
{
    runtime::Runtime rt(
        configFor(state.range(1) != 0,
                  static_cast<unsigned>(state.range(0))));
    for (auto _ : state) {
        long result = 0;
        rt.run([&] { result = fib(rt, 26); });
        benchmark::DoNotOptimize(result);
    }
}

void
benchParallelFor(benchmark::State &state)
{
    runtime::Runtime rt(
        configFor(state.range(1) != 0,
                  static_cast<unsigned>(state.range(0))));
    std::vector<double> data(1 << 18, 1.0);
    for (auto _ : state) {
        rt.run([&] {
            runtime::parallelFor(rt, 0, data.size(), 1024,
                                 [&](size_t i) {
                                     data[i] = data[i] * 1.0001
                                         + 0.5;
                                 });
        });
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(data.size()));
}

void
benchRadixSort(benchmark::State &state)
{
    runtime::Runtime rt(
        configFor(state.range(1) != 0,
                  static_cast<unsigned>(state.range(0))));
    for (auto _ : state) {
        const uint64_t checksum = workloads::runWorkload(
            rt, "sort", 1 << 20, 42);
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(state.iterations() * (1 << 20));
}

} // namespace

// Args: {workers, tempo-enabled}. UseRealTime: the calling thread
// blocks on a condition variable while workers compute, so CPU-time
// calibration would run forever.
BENCHMARK(benchFib)->Args({4, 0})->Args({4, 1})->Args({8, 0})
    ->Args({8, 1})->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(benchParallelFor)->Args({4, 0})->Args({4, 1})
    ->Args({8, 0})->Args({8, 1})->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(benchRadixSort)->Args({8, 0})->Args({8, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
