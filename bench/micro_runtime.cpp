/**
 * @file
 * Micro-benchmarks of the threaded work-stealing runtime: spawn/sync
 * overhead (fib), parallel-for scaling, a real workload (radix sort)
 * under baseline vs unified tempo policies — the scheduler-overhead
 * side of the paper's Section 3.4 discussion — and a fork-join burst
 * that surfaces the stealing-policy counters (tasks_per_steal,
 * bulk/local fractions, wake split; docs/STEALING.md).
 */

#include <chrono>

#include <benchmark/benchmark.h>

#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"
#include "workloads/registry.hpp"

using namespace hermes;

namespace {

long
fib(runtime::Runtime &rt, long n)
{
    if (n < 2)
        return n;
    if (n < 14)
        return fib(rt, n - 1) + fib(rt, n - 2);
    long a = 0, b = 0;
    runtime::parallelInvoke(rt, [&] { a = fib(rt, n - 1); },
                            [&] { b = fib(rt, n - 2); });
    return a + b;
}

runtime::RuntimeConfig
configFor(bool tempo, unsigned workers)
{
    runtime::RuntimeConfig cfg;
    cfg.numWorkers = workers;
    cfg.enableTempo = tempo;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    return cfg;
}

/** Attach park/wake behavior of the run to the benchmark output:
 * parked-time fraction of total worker-time plus wake totals. */
void
reportParking(benchmark::State &state, const runtime::Runtime &rt,
              const runtime::RuntimeStats &before, double seconds)
{
    const auto after = rt.stats();
    const double worker_ns =
        seconds * static_cast<double>(rt.numWorkers()) * 1e9;
    state.counters["parked_frac"] = benchmark::Counter(
        worker_ns > 0.0
            ? static_cast<double>(after.parkedNanos
                                  - before.parkedNanos)
                / worker_ns
            : 0.0);
    state.counters["wakes"] = benchmark::Counter(
        static_cast<double>(after.wakes - before.wakes));
    state.counters["spurious"] = benchmark::Counter(
        static_cast<double>(after.spuriousWakes
                            - before.spuriousWakes));
}

/** Attach the stealing-policy outcome of the run: mean tasks landed
 * per steal, the bulk and same-domain hit fractions, and the wake
 * split (docs/STEALING.md). */
void
reportStealing(benchmark::State &state, const runtime::Runtime &rt,
               const runtime::RuntimeStats &before)
{
    const auto after = rt.stats();
    const double steals =
        static_cast<double>(after.steals - before.steals);
    state.counters["tasks_per_steal"] = benchmark::Counter(
        steals > 0.0 ? static_cast<double>(after.stolenTasks
                                           - before.stolenTasks)
                / steals
                     : 0.0);
    state.counters["bulk_frac"] = benchmark::Counter(
        steals > 0.0 ? static_cast<double>(after.bulkSteals
                                           - before.bulkSteals)
                / steals
                     : 0.0);
    state.counters["local_frac"] = benchmark::Counter(
        steals > 0.0 ? static_cast<double>(after.localHits
                                           - before.localHits)
                / steals
                     : 0.0);
    state.counters["local_wakes"] = benchmark::Counter(
        static_cast<double>(after.localWakes - before.localWakes));
    state.counters["remote_wakes"] = benchmark::Counter(
        static_cast<double>(after.remoteWakes - before.remoteWakes));
    // Share of external submissions that took the lock-free inject
    // fast path (docs/ARCHITECTURE.md, "The inject path"); root
    // tasks are the only injects here, so expect 1.0 unless
    // shardCapacity is tiny or the legacy queue is configured.
    const double routed =
        static_cast<double>(after.injectFastPath
                            - before.injectFastPath)
        + static_cast<double>(after.injectSpill
                              - before.injectSpill);
    state.counters["inject_fast_frac"] = benchmark::Counter(
        routed > 0.0 ? static_cast<double>(after.injectFastPath
                                           - before.injectFastPath)
                / routed
                     : 0.0);
    // Deque contention absorbed by the lock-free protocol: failed
    // steal claims and owner last-task losses (both 0 under the THE
    // replay's plain-empty cases — docs/STEALING.md).
    state.counters["steal_cas_retries"] = benchmark::Counter(
        static_cast<double>(after.stealCasRetries
                            - before.stealCasRetries));
    state.counters["pop_cas_losses"] = benchmark::Counter(
        static_cast<double>(after.popCasLosses
                            - before.popCasLosses));
}

void
benchFib(benchmark::State &state)
{
    runtime::Runtime rt(
        configFor(state.range(1) != 0,
                  static_cast<unsigned>(state.range(0))));
    const auto before = rt.stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (auto _ : state) {
        long result = 0;
        rt.run([&] { result = fib(rt, 26); });
        benchmark::DoNotOptimize(result);
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    reportParking(state, rt, before, dt.count());
}

void
benchParallelFor(benchmark::State &state)
{
    runtime::Runtime rt(
        configFor(state.range(1) != 0,
                  static_cast<unsigned>(state.range(0))));
    std::vector<double> data(1 << 18, 1.0);
    const auto before = rt.stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (auto _ : state) {
        rt.run([&] {
            runtime::parallelFor(rt, 0, data.size(), 1024,
                                 [&](size_t i) {
                                     data[i] = data[i] * 1.0001
                                         + 0.5;
                                 });
        });
        benchmark::DoNotOptimize(data.data());
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    reportParking(state, rt, before, dt.count());
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(data.size()));
}

/**
 * Fork-join burst: repeated rounds of a recursively split
 * parallel-for over tiny spinning tasks. Each round stocks every
 * deque with several tasks at once, which is exactly the shape
 * steal-half amortizes — with it enabled tasks_per_steal rises above
 * 1 and hunt rounds (failed steals) drop.
 * Args: {workers, stealHalf-enabled, theDeque} — the third arg
 * replays the legacy THE deque (`DequePolicy::impl = the`) for the
 * end-to-end side of the chaselev-vs-the A/B that
 * bench_micro_deque measures in isolation.
 */
void
benchForkJoinBurst(benchmark::State &state)
{
    runtime::RuntimeConfig cfg;
    cfg.numWorkers = static_cast<unsigned>(state.range(0));
    cfg.stealPolicy.stealHalf = state.range(1) != 0;
    cfg.deque.impl = state.range(2) != 0
        ? runtime::DequeImpl::The
        : runtime::DequeImpl::ChaseLev;
    runtime::Runtime rt(cfg);

    const auto before = rt.stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (auto _ : state) {
        rt.run([&] {
            runtime::parallelFor(rt, 0, 512, 1, [&](size_t) {
                const auto until = std::chrono::steady_clock::now()
                    + std::chrono::microseconds(5);
                while (std::chrono::steady_clock::now() < until) {
                }
            });
        });
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    reportParking(state, rt, before, dt.count());
    reportStealing(state, rt, before);
    const auto after = rt.stats();
    state.counters["failed_hunts"] = benchmark::Counter(
        static_cast<double>(after.failedSteals
                            - before.failedSteals));
    state.SetItemsProcessed(state.iterations() * 512);
}

void
benchRadixSort(benchmark::State &state)
{
    runtime::Runtime rt(
        configFor(state.range(1) != 0,
                  static_cast<unsigned>(state.range(0))));
    for (auto _ : state) {
        const uint64_t checksum = workloads::runWorkload(
            rt, "sort", 1 << 20, 42);
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(state.iterations() * (1 << 20));
}

} // namespace

// Args: {workers, tempo-enabled}. UseRealTime: the calling thread
// blocks on a condition variable while workers compute, so CPU-time
// calibration would run forever.
BENCHMARK(benchFib)->Args({4, 0})->Args({4, 1})->Args({8, 0})
    ->Args({8, 1})->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(benchParallelFor)->Args({4, 0})->Args({4, 1})
    ->Args({8, 0})->Args({8, 1})->Unit(benchmark::kMillisecond)
    ->UseRealTime();
// Args: {workers, stealHalf, theDeque}; the middle bit is the
// steal-half A/B, the last the chaselev-vs-the deque A/B.
BENCHMARK(benchForkJoinBurst)->Args({4, 0, 0})->Args({4, 1, 0})
    ->Args({8, 0, 0})->Args({8, 1, 0})->Args({4, 1, 1})
    ->Args({8, 1, 1})->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(benchRadixSort)->Args({8, 0})->Args({8, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
