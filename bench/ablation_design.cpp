/**
 * @file
 * Design-space ablations beyond the paper's figures, for the knobs
 * the algorithm leaves open:
 *
 *  1. K, the number of workload thresholds (the paper evaluates
 *     K = 2; how sensitive are the results?).
 *  2. The online profiler's window (samples per threshold
 *     recompute).
 *  3. The modeled DVFS call cost — how much of the savings survive
 *     if issuing a transition were 10x costlier.
 *
 * Each arm reports unified-policy savings/loss vs the same baseline
 * (System A, 16 workers, all five benchmarks averaged).
 */

#include <cstdio>

#include "figure_common.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hermes;

namespace {

struct Arm
{
    std::string label;
    unsigned thresholds = 2;
    size_t window = 64;
    double dvfsCallCost = 3e-6;
};

void
sweep(const std::string &figure_id, const std::string &title,
      const std::vector<Arm> &arms)
{
    const auto profile = platform::systemA();
    std::vector<std::string> columns = {"benchmark"};
    for (const auto &arm : arms) {
        columns.push_back("E% " + arm.label);
        columns.push_back("T% " + arm.label);
    }
    harness::FigureReport report(figure_id, title, columns);

    std::vector<double> sum(arms.size() * 2, 0.0);
    for (const auto &bench : sim::benchmarkNames()) {
        std::vector<double> row;
        for (const auto &arm : arms) {
            // Measure manually so the overhead knob can be varied
            // (it lives in SimConfig, not ExperimentConfig).
            harness::ExperimentConfig cfg;
            cfg.profile = profile;
            cfg.benchmark = bench;
            cfg.workers = 16;
            cfg.numThresholds = arm.thresholds;

            util::TrialSet base_j(cfg.warmupTrials);
            util::TrialSet base_s(cfg.warmupTrials);
            util::TrialSet tempo_j(cfg.warmupTrials);
            util::TrialSet tempo_s(cfg.warmupTrials);
            for (unsigned t = 0; t < cfg.trials; ++t) {
                sim::WorkloadParams wp;
                wp.fmaxMhz = profile.ladder.fastest();
                wp.seed = cfg.baseSeed + 7919ULL * t;
                const auto dag = sim::makeBenchmark(bench, wp);

                sim::SimConfig sc;
                sc.profile = profile;
                sc.numWorkers = 16;
                sc.seed = cfg.baseSeed * 31ULL + t;
                sc.dvfsCallCostSec = arm.dvfsCallCost;
                sc.enableTempo = false;
                const auto rb = sim::simulate(dag, sc);
                base_j.add(rb.joules);
                base_s.add(rb.seconds);

                sc.enableTempo = true;
                sc.tempo.policy = core::TempoPolicy::Unified;
                sc.tempo.numThresholds = arm.thresholds;
                sc.tempo.profilerWindow = arm.window;
                const auto rt = sim::simulate(dag, sc);
                tempo_j.add(rt.joules);
                tempo_s.add(rt.seconds);
            }
            row.push_back((1.0 - tempo_j.mean() / base_j.mean())
                          * 100.0);
            row.push_back((tempo_s.mean() / base_s.mean() - 1.0)
                          * 100.0);
        }
        for (size_t i = 0; i < row.size(); ++i)
            sum[i] += row[i];
        report.row(bench, row);
        std::fprintf(stderr, "  %s done\n", bench.c_str());
    }
    report.separator();
    for (auto &v : sum)
        v /= static_cast<double>(sim::benchmarkNames().size());
    report.row("average", sum);
    report.finish();
}

} // namespace

int
main()
{
    sweep("ablation_k",
          "Workload threshold count K (unified, System A, 16w)",
          {{"K=1", 1, 64, 3e-6},
           {"K=2", 2, 64, 3e-6},
           {"K=4", 4, 64, 3e-6}});

    sweep("ablation_window",
          "Profiler window (samples per threshold recompute)",
          {{"win=16", 2, 16, 3e-6},
           {"win=64", 2, 64, 3e-6},
           {"win=512", 2, 512, 3e-6}});

    sweep("ablation_dvfscost",
          "DVFS request cost sensitivity (caller-side seconds)",
          {{"3us", 2, 64, 3e-6},
           {"30us", 2, 64, 30e-6},
           {"100us", 2, 64, 100e-6}});
    return 0;
}
