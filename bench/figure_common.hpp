/**
 * @file
 * Shared drivers for the figure-reproduction binaries.
 */

#ifndef HERMES_BENCH_FIGURE_COMMON_HPP
#define HERMES_BENCH_FIGURE_COMMON_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "platform/system_profile.hpp"
#include "sim/dag_generators.hpp"

namespace hermes::bench {

/** Worker counts the paper sweeps per system. */
inline std::vector<unsigned>
workerSweep(const platform::SystemProfile &profile)
{
    if (profile.name == "SystemA")
        return {2, 4, 8, 16};
    if (profile.name == "SystemB")
        return {2, 3, 4};
    return {2, 4};
}

/**
 * Figures 6/7: per benchmark x worker count, HERMES (unified) energy
 * savings and time loss vs the Cilk-Plus-like baseline, plus
 * averages.
 */
inline void
runOverallFigure(const std::string &figure_id,
                 const platform::SystemProfile &profile)
{
    harness::ExperimentConfig proto;
    proto.profile = profile;
    harness::SweepContext ctx(proto);
    const auto workers = workerSweep(profile);

    std::vector<std::string> columns = {"benchmark"};
    for (unsigned w : workers) {
        columns.push_back("E%/" + std::to_string(w) + "w");
        columns.push_back("T%/" + std::to_string(w) + "w");
    }
    harness::FigureReport report(
        figure_id,
        "HERMES unified vs baseline on " + profile.name
            + " (energy savings % / time loss %)",
        columns);

    std::vector<double> sum(workers.size() * 2, 0.0);
    for (const auto &bench : sim::benchmarkNames()) {
        std::vector<double> row;
        for (unsigned w : workers) {
            auto cfg = ctx.make(bench, w);
            const auto cmp = ctx.compare(cfg);
            row.push_back(cmp.energySavings() * 100.0);
            row.push_back(cmp.timeLoss() * 100.0);
        }
        for (size_t i = 0; i < row.size(); ++i)
            sum[i] += row[i];
        report.row(bench, row);
        std::fprintf(stderr, "  %s done\n", bench.c_str());
    }
    report.separator();
    for (auto &v : sum)
        v /= static_cast<double>(sim::benchmarkNames().size());
    report.row("average", sum);
    report.finish();
}

/** Figures 8/9: normalized EDP per benchmark x workers. */
inline void
runEdpFigure(const std::string &figure_id,
             const platform::SystemProfile &profile)
{
    harness::ExperimentConfig proto;
    proto.profile = profile;
    harness::SweepContext ctx(proto);
    const auto workers = workerSweep(profile);

    std::vector<std::string> columns = {"benchmark"};
    for (unsigned w : workers)
        columns.push_back(std::to_string(w) + "w");
    harness::FigureReport report(
        figure_id,
        "Normalized EDP (HERMES/baseline) on " + profile.name,
        columns);

    std::vector<double> sum(workers.size(), 0.0);
    for (const auto &bench : sim::benchmarkNames()) {
        std::vector<double> row;
        for (size_t i = 0; i < workers.size(); ++i) {
            auto cfg = ctx.make(bench, workers[i]);
            const auto cmp = ctx.compare(cfg);
            row.push_back(cmp.normalizedEdp());
            sum[i] += cmp.normalizedEdp();
        }
        report.row(bench, row);
        std::fprintf(stderr, "  %s done\n", bench.c_str());
    }
    report.separator();
    for (auto &v : sum)
        v /= static_cast<double>(sim::benchmarkNames().size());
    report.row("average", sum);
    report.finish();
}

/**
 * Figures 10-13: workpath-only and workload-only normalized to the
 * unified algorithm — energy-savings ratio (x of unified savings)
 * and time-loss ratio (x of unified loss).
 */
inline void
runAblationFigure(const std::string &figure_id,
                  const platform::SystemProfile &profile)
{
    harness::ExperimentConfig proto;
    proto.profile = profile;
    harness::SweepContext ctx(proto);
    const auto workers = workerSweep(profile);

    std::vector<std::string> columns = {"bench/workers"};
    columns.insert(columns.end(),
                   {"wpE/unE", "wlE/unE", "wpT/unT", "wlT/unT"});
    harness::FigureReport report(
        figure_id,
        "Strategy ablation vs unified on " + profile.name
            + " (savings ratios, loss ratios)",
        columns);

    for (const auto &bench : sim::benchmarkNames()) {
        for (unsigned w : workers) {
            auto unified = ctx.make(bench, w);
            unified.policy = core::TempoPolicy::Unified;
            const auto cu = ctx.compare(unified);

            auto workpath = unified;
            workpath.policy = core::TempoPolicy::WorkpathOnly;
            const auto cp = ctx.compare(workpath);

            auto workload = unified;
            workload.policy = core::TempoPolicy::WorkloadOnly;
            const auto cl = ctx.compare(workload);

            auto ratio = [](double a, double b) {
                return b != 0.0 ? a / b : 0.0;
            };
            report.row(
                bench + "/" + std::to_string(w),
                {ratio(cp.energySavings(), cu.energySavings()),
                 ratio(cl.energySavings(), cu.energySavings()),
                 ratio(cp.timeLoss(), cu.timeLoss()),
                 ratio(cl.timeLoss(), cu.timeLoss())});
        }
        std::fprintf(stderr, "  %s done\n", bench.c_str());
    }
    report.finish();
}

/**
 * Figures 14/15: the effect of the slow-frequency selection with
 * 2-frequency tempo control (fast rung fixed at f_max).
 */
inline void
runFreqSelectionFigure(
    const std::string &figure_id,
    const platform::SystemProfile &profile,
    const std::vector<platform::FreqMhz> &slow_choices)
{
    harness::ExperimentConfig proto;
    proto.profile = profile;
    harness::SweepContext ctx(proto);
    const auto workers = workerSweep(profile);
    const auto fast = profile.ladder.fastest();

    std::vector<std::string> columns = {"bench/workers"};
    for (auto slow : slow_choices) {
        const std::string pair = std::to_string(fast) + "/"
            + std::to_string(slow);
        columns.push_back("E% " + pair);
        columns.push_back("T% " + pair);
    }
    harness::FigureReport report(
        figure_id,
        "Slow-frequency selection on " + profile.name
            + " (2-frequency control)",
        columns);

    for (const auto &bench : sim::benchmarkNames()) {
        for (unsigned w : workers) {
            std::vector<double> row;
            for (auto slow : slow_choices) {
                auto cfg = ctx.make(bench, w);
                cfg.ladder = profile.ladder.select({fast, slow});
                const auto cmp = ctx.compare(cfg);
                row.push_back(cmp.energySavings() * 100.0);
                row.push_back(cmp.timeLoss() * 100.0);
            }
            report.row(bench + "/" + std::to_string(w), row);
        }
        std::fprintf(stderr, "  %s done\n", bench.c_str());
    }
    report.finish();
}

/**
 * Figures 16/17: N-frequency tempo control — 2-frequency vs
 * 3-frequency ladders.
 */
inline void
runNFreqFigure(
    const std::string &figure_id,
    const platform::SystemProfile &profile,
    const std::vector<std::vector<platform::FreqMhz>> &ladders)
{
    harness::ExperimentConfig proto;
    proto.profile = profile;
    harness::SweepContext ctx(proto);
    const auto workers = workerSweep(profile);

    std::vector<std::string> columns = {"bench/workers"};
    for (const auto &l : ladders) {
        // Append piecewise rather than `(i ? "/" : "") + to_string`:
        // gcc 12 at -O3 misapplies -Wrestrict to that concatenation
        // (GCC PR 105329), breaking -Werror builds.
        std::string name;
        for (size_t i = 0; i < l.size(); ++i) {
            if (i)
                name += '/';
            name += std::to_string(l[i]);
        }
        columns.push_back("E% " + name);
        columns.push_back("T% " + name);
    }
    harness::FigureReport report(
        figure_id,
        "N-frequency tempo control on " + profile.name,
        columns);

    for (const auto &bench : sim::benchmarkNames()) {
        for (unsigned w : workers) {
            std::vector<double> row;
            for (const auto &l : ladders) {
                auto cfg = ctx.make(bench, w);
                cfg.ladder = profile.ladder.select(l);
                const auto cmp = ctx.compare(cfg);
                row.push_back(cmp.energySavings() * 100.0);
                row.push_back(cmp.timeLoss() * 100.0);
            }
            report.row(bench + "/" + std::to_string(w), row);
        }
        std::fprintf(stderr, "  %s done\n", bench.c_str());
    }
    report.finish();
}

} // namespace hermes::bench

#endif // HERMES_BENCH_FIGURE_COMMON_HPP
