/**
 * @file
 * Figure 9: normalized Energy-Delay Product on System B.
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runEdpFigure("fig09", hermes::platform::systemB());
    return 0;
}
