/**
 * @file
 * Figure 16: N-frequency tempo control on System A — the 2-frequency
 * pair 2.4/1.6 GHz vs the 3-frequency combinations 2.4/1.6/1.4 and
 * 2.4/1.9/1.6 GHz. Expected: similar results; 3-frequency sometimes
 * gentler on time, 2-frequency a slight edge on energy (less DVFS
 * churn).
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runNFreqFigure(
        "fig16", hermes::platform::systemA(),
        {{2400, 1600}, {2400, 1600, 1400}, {2400, 1900, 1600}});
    return 0;
}
