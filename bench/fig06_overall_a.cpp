/**
 * @file
 * Figure 6: normalized energy savings and time loss of HERMES
 * w.r.t. the unmodified work-stealing baseline on System A
 * (32-core Piledriver), 5 benchmarks x {2,4,8,16} workers.
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runOverallFigure("fig06",
                                    hermes::platform::systemA());
    return 0;
}
