/**
 * @file
 * Figure 15: slow-frequency selection on System B. Fast tempo fixed
 * at 3.6 GHz; slow tempo one of 2.7/2.1/3.3 GHz.
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runFreqSelectionFigure(
        "fig15", hermes::platform::systemB(), {2700, 2100, 3300});
    return 0;
}
