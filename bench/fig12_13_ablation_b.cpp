/**
 * @file
 * Figures 12 and 13: strategy ablation on System B (see
 * fig10_11_ablation_a.cpp).
 */

#include "figure_common.hpp"

int
main()
{
    hermes::bench::runAblationFigure("fig12_13",
                                     hermes::platform::systemB());
    return 0;
}
