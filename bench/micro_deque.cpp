/**
 * @file
 * Micro-benchmarks of the work-stealing deque (Algorithms 2.2-2.4):
 * owner push/pop throughput, steal throughput, and the mixed
 * owner-vs-thief contention case — each as a chaselev-vs-the A/B
 * (`DequePolicy::impl`), which is the acceptance measurement of the
 * lock-free deque: under >= 2 concurrent thieves the Chase-Lev CAS
 * claims must out-steal the mutex-guarded THE protocol. Benchmarks
 * take the impl as arg 0 (0 = chaselev, 1 = the); `benchContended`
 * reports the stolen count and the CAS-retry counters.
 */

#include <atomic>
#include <thread>

#include <benchmark/benchmark.h>

#include "runtime/deque.hpp"

using hermes::runtime::DequeImpl;
using hermes::runtime::DequePolicy;
using hermes::runtime::Task;
using hermes::runtime::WsDeque;

namespace {

DequePolicy
policyOf(benchmark::State &state)
{
    return DequePolicy{state.range(0) != 0 ? DequeImpl::The
                                           : DequeImpl::ChaseLev};
}

Task
noopTask()
{
    return Task([] {}, nullptr);
}

/** Owner-only throughput: the push/pop fast path both protocols keep
 * lock-free — the A/B should be near-identical here. */
void
benchPushPop(benchmark::State &state)
{
    WsDeque deque(1 << 12, policyOf(state));
    size_t size_after = 0;
    Task out;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(
                deque.push(noopTask(), size_after));
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(deque.pop(out, size_after));
    }
    state.SetItemsProcessed(state.iterations() * 128);
}

/** Uncontended steal drain: one CAS per task vs one lock round-trip
 * per task. */
void
benchStealOnly(benchmark::State &state)
{
    WsDeque deque(1 << 12, policyOf(state));
    size_t size_after = 0;
    Task out;
    for (auto _ : state) {
        state.PauseTiming();
        for (int i = 0; i < 64; ++i)
            deque.push(noopTask(), size_after);
        state.ResumeTiming();
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(deque.steal(out, size_after));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}

/** Bulk drain via stealHalf: the same 64 tasks leave in ~6 grabs
 * (ceil-half each) instead of 64 single claims. */
void
benchStealHalf(benchmark::State &state)
{
    WsDeque deque(1 << 12, policyOf(state));
    size_t size_after = 0;
    std::vector<Task> batch;
    batch.reserve(64);
    for (auto _ : state) {
        state.PauseTiming();
        for (int i = 0; i < 64; ++i)
            deque.push(noopTask(), size_after);
        batch.clear();
        state.ResumeTiming();
        while (deque.stealHalf(batch, size_after) > 0) {
        }
        benchmark::DoNotOptimize(batch.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}

/**
 * Owner pops while `thieves` (arg 1) steal concurrently — the
 * acceptance A/B: with >= 2 thieves the THE mutex serializes every
 * steal while Chase-Lev thieves only collide on the head CAS.
 * items_per_second counts tasks consumed by either side; `stolen`
 * isolates thief throughput, `steal_retries`/`pop_losses` show the
 * contention the CAS absorbed.
 */
void
benchContended(benchmark::State &state)
{
    const int thieves = static_cast<int>(state.range(1));
    WsDeque deque(1 << 14, policyOf(state));
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> stolen{0};

    std::vector<std::thread> pool;
    pool.reserve(thieves);
    for (int t = 0; t < thieves; ++t) {
        pool.emplace_back([&] {
            Task out;
            size_t sz = 0;
            while (!stop.load(std::memory_order_acquire)) {
                if (deque.steal(out, sz))
                    stolen.fetch_add(1,
                                     std::memory_order_relaxed);
            }
        });
    }

    size_t size_after = 0;
    Task out;
    uint64_t popped = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            deque.push(noopTask(), size_after);
        for (int i = 0; i < 64; ++i) {
            if (deque.pop(out, size_after))
                ++popped;
        }
    }
    stop.store(true, std::memory_order_release);
    for (auto &th : pool)
        th.join();

    state.SetItemsProcessed(
        static_cast<int64_t>(popped + stolen.load()));
    state.counters["stolen"] =
        static_cast<double>(stolen.load());
    state.counters["steal_retries"] =
        static_cast<double>(deque.stealCasRetries());
    state.counters["pop_losses"] =
        static_cast<double>(deque.popCasLosses());
}

/** Many thieves, no owner interference: pure steal scalability of
 * the two protocols (arg 1 = thieves, all draining in parallel). */
void
benchMultiThiefDrain(benchmark::State &state)
{
    const int thieves = static_cast<int>(state.range(1));
    WsDeque deque(1 << 14, policyOf(state));
    constexpr int kBatch = 4096;

    uint64_t total = 0;
    for (auto _ : state) {
        state.PauseTiming();
        size_t sz = 0;
        for (int i = 0; i < kBatch; ++i)
            deque.push(noopTask(), sz);
        std::atomic<uint64_t> drained{0};
        state.ResumeTiming();

        std::vector<std::thread> pool;
        pool.reserve(thieves);
        for (int t = 0; t < thieves; ++t) {
            pool.emplace_back([&] {
                Task out;
                size_t s = 0;
                // A false return is not proof of emptiness: under
                // Chase-Lev a lost head CAS on a non-empty deque
                // also returns false, and exiting on it would
                // degenerate the run to one thief (biasing the A/B
                // against the lock-free deque). Drain until every
                // task of the batch is accounted for.
                while (drained.load(std::memory_order_relaxed)
                       < static_cast<uint64_t>(kBatch)) {
                    if (deque.steal(out, s))
                        drained.fetch_add(
                            1, std::memory_order_relaxed);
                }
            });
        }
        for (auto &th : pool)
            th.join();
        total += drained.load();
    }
    state.SetItemsProcessed(static_cast<int64_t>(total));
    state.counters["steal_retries"] =
        static_cast<double>(deque.stealCasRetries());
}

} // namespace

// Arg 0: deque impl (0 = chaselev, 1 = the legacy THE replay).
BENCHMARK(benchPushPop)->Arg(0)->Arg(1);
BENCHMARK(benchStealOnly)->Arg(0)->Arg(1);
BENCHMARK(benchStealHalf)->Arg(0)->Arg(1);
// Args: {impl, thieves} — the >= 2 thieves rows are the acceptance
// A/B of the lock-free deque.
BENCHMARK(benchContended)
    ->Args({0, 1})->Args({1, 1})
    ->Args({0, 2})->Args({1, 2})
    ->Args({0, 4})->Args({1, 4});
BENCHMARK(benchMultiThiefDrain)
    ->Args({0, 2})->Args({1, 2})
    ->Args({0, 4})->Args({1, 4})
    ->UseRealTime();

BENCHMARK_MAIN();
