/**
 * @file
 * Micro-benchmarks of the work-stealing deque (Algorithms 2.2-2.4):
 * owner push/pop throughput, steal throughput, and the mixed
 * owner-vs-thief contention case the THE protocol exists for.
 */

#include <atomic>
#include <thread>

#include <benchmark/benchmark.h>

#include "runtime/deque.hpp"

using hermes::runtime::Task;
using hermes::runtime::WsDeque;

namespace {

Task
noopTask()
{
    return Task([] {}, nullptr);
}

void
benchPushPop(benchmark::State &state)
{
    WsDeque deque(1 << 12);
    size_t size_after = 0;
    Task out;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(
                deque.push(noopTask(), size_after));
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(deque.pop(out, size_after));
    }
    state.SetItemsProcessed(state.iterations() * 128);
}

void
benchStealOnly(benchmark::State &state)
{
    WsDeque deque(1 << 12);
    size_t size_after = 0;
    Task out;
    for (auto _ : state) {
        state.PauseTiming();
        for (int i = 0; i < 64; ++i)
            deque.push(noopTask(), size_after);
        state.ResumeTiming();
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(deque.steal(out, size_after));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}

/** Bulk drain via stealHalf: the same 64 tasks leave in ~6 grabs
 * (ceil-half each) instead of 64 lock acquisitions. */
void
benchStealHalf(benchmark::State &state)
{
    WsDeque deque(1 << 12);
    size_t size_after = 0;
    std::vector<hermes::runtime::Task> batch;
    batch.reserve(64);
    for (auto _ : state) {
        state.PauseTiming();
        for (int i = 0; i < 64; ++i)
            deque.push(noopTask(), size_after);
        batch.clear();
        state.ResumeTiming();
        while (deque.stealHalf(batch, size_after) > 0) {
        }
        benchmark::DoNotOptimize(batch.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}

/** Owner pops while `threads` thieves steal concurrently. */
void
benchContended(benchmark::State &state)
{
    const int thieves = static_cast<int>(state.range(0));
    WsDeque deque(1 << 14);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> stolen{0};

    std::vector<std::thread> pool;
    pool.reserve(thieves);
    for (int t = 0; t < thieves; ++t) {
        pool.emplace_back([&] {
            Task out;
            size_t sz = 0;
            while (!stop.load(std::memory_order_acquire)) {
                if (deque.steal(out, sz))
                    stolen.fetch_add(1,
                                     std::memory_order_relaxed);
            }
        });
    }

    size_t size_after = 0;
    Task out;
    uint64_t popped = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            deque.push(noopTask(), size_after);
        for (int i = 0; i < 64; ++i) {
            if (deque.pop(out, size_after))
                ++popped;
        }
    }
    stop.store(true, std::memory_order_release);
    for (auto &th : pool)
        th.join();

    state.SetItemsProcessed(
        static_cast<int64_t>(popped + stolen.load()));
    state.counters["stolen"] =
        static_cast<double>(stolen.load());
}

} // namespace

BENCHMARK(benchPushPop);
BENCHMARK(benchStealOnly);
BENCHMARK(benchStealHalf);
BENCHMARK(benchContended)->Arg(1)->Arg(2)->Arg(4);

BENCHMARK_MAIN();
