/**
 * @file
 * Figure 18: static vs dynamic scheduling of workers (Section 3.4).
 * Dynamic scheduling re-pins around every WORK invocation; the extra
 * affinity syscalls make it slightly costlier in time and energy.
 */

#include "figure_common.hpp"

using namespace hermes;

int
main()
{
    const auto profile = platform::systemA();
    harness::ExperimentConfig proto;
    proto.profile = profile;
    harness::SweepContext ctx(proto);
    const auto workers = bench::workerSweep(profile);

    harness::FigureReport report(
        "fig18",
        "Static vs dynamic scheduling, HERMES unified on "
            + profile.name + " (energy savings % / time loss %)",
        {"bench/workers", "E% static", "T% static", "E% dynamic",
         "T% dynamic"});

    for (const auto &bench_name : sim::benchmarkNames()) {
        for (unsigned w : workers) {
            auto stat = ctx.make(bench_name, w);
            stat.scheduling = runtime::SchedulingMode::Static;
            const auto cs = ctx.compare(stat);

            auto dyn = stat;
            dyn.scheduling = runtime::SchedulingMode::Dynamic;
            const auto cd = ctx.compare(dyn);

            report.row(bench_name + "/" + std::to_string(w),
                       {cs.energySavings() * 100.0,
                        cs.timeLoss() * 100.0,
                        cd.energySavings() * 100.0,
                        cd.timeLoss() * 100.0});
        }
        std::fprintf(stderr, "  %s done\n", bench_name.c_str());
    }
    report.finish();
    return 0;
}
