/**
 * @file
 * Quickstart: spawn/sync parallelism on a tempo-enabled runtime.
 *
 *   $ ./quickstart
 *
 * Creates a HERMES runtime with the unified tempo policy, computes a
 * parallel reduction and a recursive Fibonacci, then prints what the
 * tempo controller did under the hood (steals observed, relays
 * fired, DVFS transitions requested).
 */

#include <cstdio>

#include "hermes.hpp"

using namespace hermes;

namespace {

long
fib(runtime::Runtime &rt, long n)
{
    if (n < 2)
        return n;
    if (n < 16)  // serial cutoff keeps task grains meaningful
        return fib(rt, n - 1) + fib(rt, n - 2);
    long a = 0, b = 0;
    runtime::parallelInvoke(rt, [&] { a = fib(rt, n - 1); },
                            [&] { b = fib(rt, n - 2); });
    return a + b;
}

} // namespace

int
main()
{
    // 1. Configure a runtime: tempo control on, unified policy.
    runtime::RuntimeConfig cfg;
    cfg.numWorkers = std::min(8u, cfg.numWorkers);
    cfg.enableTempo = true;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    runtime::Runtime rt(cfg);
    std::printf("runtime: %u workers, tempo ladder %s MHz\n",
                rt.numWorkers(),
                rt.tempo()->ladder().describe().c_str());

    // 2. A parallel reduction over 10M elements.
    const double sum = runtime::parallelReduce<double>(
        rt, 0, 10'000'000, 4096,
        [](size_t lo, size_t hi) {
            double s = 0.0;
            for (size_t i = lo; i < hi; ++i)
                s += 1.0 / static_cast<double>(i + 1);
            return s;
        },
        [](double a, double b) { return a + b; });
    std::printf("harmonic(1e7) = %.6f\n", sum);

    // 3. Recursive fork/join work: plenty of steals.
    long f = 0;
    rt.run([&] { f = fib(rt, 30); });
    std::printf("fib(30) = %ld\n", f);

    // 4. What did HERMES do while we computed?
    const auto s = rt.stats();
    const auto k = rt.tempo()->counters();
    std::printf("\nscheduler: %llu pushes, %llu pops, %llu steals "
                "(%llu failed)\n",
                (unsigned long long)s.pushes,
                (unsigned long long)s.pops,
                (unsigned long long)s.steals,
                (unsigned long long)s.failedSteals);
    std::printf("tempo: %llu thief-procrastinations, %llu relay "
                "ups, %llu workload ups, %llu workload downs\n",
                (unsigned long long)k.stealDowns,
                (unsigned long long)k.relayUps,
                (unsigned long long)k.workloadUps,
                (unsigned long long)k.workloadDowns);
    std::printf("dvfs: %zu frequency transitions requested\n",
                rt.backend().transitionCount());
    return 0;
}
