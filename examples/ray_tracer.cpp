/**
 * @file
 * A small ray caster over a procedural triangle scene — the paper's
 * "Ray" workload as an application: build a BVH in parallel, cast a
 * grid of rays, and render an ASCII depth image, reporting scheduler
 * and tempo activity.
 *
 *   $ ./ray_tracer [--tris=20000] [--width=72] [--height=24]
 */

#include <cstdio>
#include <limits>

#include "hermes.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/ray.hpp"

using namespace hermes;

int
main(int argc, char **argv)
{
    util::Cli cli("parallel BVH ray caster");
    cli.addInt("tris", "triangles in the scene", 20000);
    cli.addInt("width", "image width (chars)", 72);
    cli.addInt("height", "image height (rows)", 24);
    cli.addInt("workers", "worker threads", 8);
    cli.parse(argc, argv);
    const auto tris = static_cast<size_t>(cli.getInt("tris"));
    const auto width = static_cast<size_t>(cli.getInt("width"));
    const auto height = static_cast<size_t>(cli.getInt("height"));

    runtime::RuntimeConfig cfg;
    cfg.numWorkers = static_cast<unsigned>(cli.getInt("workers"));
    cfg.enableTempo = true;
    cfg.tempo.policy = core::TempoPolicy::Unified;
    runtime::Runtime rt(cfg);

    // Scene + acceleration structure (parallel build).
    const auto scene = workloads::randomTriangles(tris, 2026);
    util::Stopwatch build_watch;
    workloads::Bvh bvh(rt, scene);
    const double build_s = build_watch.elapsed();

    // One ray per character, orthographic from z = -1.
    std::vector<double> depth(width * height,
                              std::numeric_limits<double>::max());
    util::Stopwatch cast_watch;
    rt.run([&] {
        runtime::parallelFor(rt, 0, width * height, 16,
                             [&](size_t i) {
            const double u =
                static_cast<double>(i % width)
                / static_cast<double>(width - 1);
            const double v =
                static_cast<double>(i / width)
                / static_cast<double>(height - 1);
            workloads::RayQuery ray{{u, v, -1.0}, {0.0, 0.0, 1.0}};
            const size_t hit = bvh.firstHit(ray);
            if (hit != SIZE_MAX)
                depth[i] = workloads::intersect(ray, scene[hit]);
        });
    });
    const double cast_s = cast_watch.elapsed();

    // ASCII depth buffer: nearer hits are darker.
    const char *shades = "@%#*+=-:. ";
    for (size_t y = 0; y < height; ++y) {
        std::string row;
        for (size_t x = 0; x < width; ++x) {
            const double d = depth[y * width + x];
            if (d == std::numeric_limits<double>::max()) {
                row += ' ';
            } else {
                const auto shade = static_cast<size_t>(
                    std::min(1.0, std::max(0.0, (d - 0.9) / 1.2))
                    * 8.99);
                row += shades[shade];
            }
        }
        std::printf("%s\n", row.c_str());
    }

    const auto s = rt.stats();
    const auto k = rt.tempo()->counters();
    std::printf("\nBVH build: %.3fs  cast %zu rays: %.3fs\n",
                build_s, width * height, cast_s);
    std::printf("steals=%llu relays=%llu dvfs transitions=%zu\n",
                (unsigned long long)s.steals,
                (unsigned long long)k.relayUps,
                rt.backend().transitionCount());
    return 0;
}
