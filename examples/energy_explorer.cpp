/**
 * @file
 * What-if explorer over the simulator: sweep every 2-frequency pair
 * of a system for one benchmark and print the energy/time frontier —
 * the tool version of the paper's Figure 14/15 analysis, including
 * its "golden ratio" observation (slow ~ 60-70% of fast tends to
 * minimize EDP).
 *
 *   $ ./energy_explorer [--system=A] [--bench=sort] [--workers=16]
 */

#include <cstdio>

#include "hermes.hpp"

using namespace hermes;

int
main(int argc, char **argv)
{
    util::Cli cli("2-frequency design-space explorer");
    cli.addString("system", "profile: A, B, or host", "A");
    cli.addString("bench", "knn|ray|sort|compare|hull", "sort");
    cli.addInt("workers", "workers (<= system domains)", 16);
    cli.addInt("trials", "trials per point", 8);
    cli.parse(argc, argv);

    const auto profile =
        platform::profileByName(cli.getString("system"));
    harness::ExperimentConfig cfg;
    cfg.profile = profile;
    cfg.benchmark = cli.getString("bench");
    cfg.workers = std::min<unsigned>(
        static_cast<unsigned>(cli.getInt("workers")),
        profile.maxWorkers());
    cfg.trials = static_cast<unsigned>(cli.getInt("trials"));
    cfg.warmupTrials = 1;

    const auto fast = profile.ladder.fastest();
    std::printf("%s on %s, %u workers, fast rung %u MHz\n\n",
                cfg.benchmark.c_str(), profile.name.c_str(),
                cfg.workers, fast);
    std::printf("%-12s%12s%12s%12s%10s\n", "pair", "E-save %",
                "T-loss %", "norm EDP", "ratio");

    double best_edp = 1e9;
    platform::FreqMhz best_slow = fast;
    for (auto slow : profile.ladder.rungs()) {
        if (slow == fast)
            continue;
        cfg.ladder = profile.ladder.select({fast, slow});
        const auto cmp = harness::compareToBaseline(cfg);
        const double edp = cmp.normalizedEdp();
        std::printf("%u/%-6u%11.2f%12.2f%12.3f%9.0f%%\n", fast,
                    slow, cmp.energySavings() * 100.0,
                    cmp.timeLoss() * 100.0, edp,
                    100.0 * slow / fast);
        if (edp < best_edp) {
            best_edp = edp;
            best_slow = slow;
        }
    }
    std::printf("\nbest EDP pair: %u/%u MHz (slow = %.0f%% of "
                "fast) at normalized EDP %.3f\n",
                fast, best_slow, 100.0 * best_slow / fast,
                best_edp);
    return 0;
}
