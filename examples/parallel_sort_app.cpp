/**
 * @file
 * Sorting application with a live energy report.
 *
 *   $ ./parallel_sort_app [--n=8000000] [--workers=8]
 *
 * Sorts the same keys with parallel radix sort and parallel sample
 * sort under the baseline and the unified HERMES policy, sampling
 * modeled package power at 100 Hz (the paper's measurement rig)
 * while the computation runs.
 */

#include <cstdio>

#include "hermes.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/sort_radix.hpp"
#include "workloads/sort_sample.hpp"

using namespace hermes;

namespace {

struct RunResult
{
    double seconds;
    double joules;
    double parkedFrac;     ///< share of worker-time spent parked
    double tasksPerSteal;  ///< mean tasks landed per steal-half grab
    double localFrac;      ///< share of steals from same-domain victims
    double injectFastFrac; ///< share of injects on the lock-free fast path
};

RunResult
runSort(bool use_sample_sort, core::TempoPolicy policy, size_t n,
        unsigned workers)
{
    runtime::RuntimeConfig cfg;
    cfg.numWorkers = workers;
    cfg.enableTempo = policy != core::TempoPolicy::Baseline;
    cfg.tempo.policy = policy;
    runtime::Runtime rt(cfg);

    auto keys = workloads::randomKeys(n, 12345);

    const energy::PowerModel model(cfg.profile);
    energy::LiveMeter meter([&] { return rt.packagePower(model); },
                            100.0);
    // Snapshot before the timed region: workers park while the keys
    // are generated, and that idle time is not the sort's.
    const uint64_t parked_before = rt.stats().parkedNanos;
    util::Stopwatch watch;
    meter.start();
    if (use_sample_sort)
        workloads::sampleSort(rt, keys);
    else
        workloads::radixSort(rt, keys);
    meter.stop();
    const double secs = watch.elapsed();
    const double parked_frac = static_cast<double>(
                                   rt.stats().parkedNanos
                                   - parked_before)
        / (secs * workers * 1e9);

    if (!std::is_sorted(keys.begin(), keys.end()))
        util::fatal("sort produced unsorted output");
    const auto s = rt.stats();
    const double local_frac = s.steals != 0
        ? static_cast<double>(s.localHits)
            / static_cast<double>(s.steals)
        : 0.0;
    return {secs, meter.joules(), parked_frac, s.tasksPerSteal(),
            local_frac, s.injectFastFraction()};
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli("parallel sorting with an energy report");
    cli.addInt("n", "number of 32-bit keys", 8'000'000);
    cli.addInt("workers", "worker threads", 8);
    cli.parse(argc, argv);
    const auto n = static_cast<size_t>(cli.getInt("n"));
    const auto workers =
        static_cast<unsigned>(cli.getInt("workers"));

    std::printf("sorting %zu keys with %u workers\n\n", n, workers);
    std::printf("%-14s%-10s%12s%14s%12s%12s%12s%12s\n", "algorithm",
                "policy", "time (s)", "energy (J)*", "parked",
                "tasks/steal", "local", "inj-fast");
    for (const bool sample : {false, true}) {
        for (const auto policy : {core::TempoPolicy::Baseline,
                                  core::TempoPolicy::Unified}) {
            const auto r = runSort(sample, policy, n, workers);
            std::printf(
                "%-14s%-10s%12.3f%14.2f%11.1f%%%12.2f%11.1f%%"
                "%11.1f%%\n",
                sample ? "sample sort" : "radix sort",
                core::toString(policy).c_str(), r.seconds, r.joules,
                100.0 * r.parkedFrac, r.tasksPerSteal,
                100.0 * r.localFrac, 100.0 * r.injectFastFrac);
        }
    }
    std::printf("\n* modeled package energy sampled at 100 Hz; on "
                "stock container hardware\n  frequencies cannot "
                "actually change, so times match and the energy\n"
                "  column shows the model's view of the tempo "
                "decisions (see docs/ENERGY_MODEL.md).\n");
    return 0;
}
