#include "platform/frequency.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hermes::platform {

FrequencyLadder::FrequencyLadder(std::vector<FreqMhz> freqs_mhz)
    : freqs_(std::move(freqs_mhz))
{
    if (freqs_.empty())
        util::fatal("frequency ladder cannot be empty");
    std::sort(freqs_.begin(), freqs_.end(), std::greater<FreqMhz>());
    freqs_.erase(std::unique(freqs_.begin(), freqs_.end()),
                 freqs_.end());
}

FreqMhz
FrequencyLadder::at(FreqIndex i) const
{
    HERMES_ASSERT(i < freqs_.size(), "rung " << i << " out of range");
    return freqs_[i];
}

FreqIndex
FrequencyLadder::indexOf(FreqMhz f) const
{
    for (FreqIndex i = 0; i < freqs_.size(); ++i) {
        if (freqs_[i] == f)
            return i;
    }
    util::fatal("frequency " + std::to_string(f)
                + " MHz is not a rung of ladder " + describe());
}

bool
FrequencyLadder::contains(FreqMhz f) const
{
    return std::find(freqs_.begin(), freqs_.end(), f) != freqs_.end();
}

FrequencyLadder
FrequencyLadder::restrictTopN(size_t n) const
{
    n = std::max<size_t>(1, std::min(n, freqs_.size()));
    return FrequencyLadder(
        std::vector<FreqMhz>(freqs_.begin(),
                             freqs_.begin() + static_cast<long>(n)));
}

FrequencyLadder
FrequencyLadder::select(const std::vector<FreqMhz> &subset) const
{
    for (FreqMhz f : subset) {
        if (!contains(f))
            util::fatal("frequency " + std::to_string(f)
                        + " MHz not available on this system ("
                        + describe() + ")");
    }
    return FrequencyLadder(subset);
}

std::string
FrequencyLadder::describe() const
{
    std::string out;
    for (size_t i = 0; i < freqs_.size(); ++i) {
        if (i)
            out += '/';
        out += std::to_string(freqs_[i]);
    }
    return out;
}

} // namespace hermes::platform
