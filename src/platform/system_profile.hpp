/**
 * @file
 * Descriptions of the evaluation platforms.
 *
 * A SystemProfile bundles everything an experiment needs to know about
 * a machine: topology, frequency ladder, voltage range, and the power
 * model calibration. The two built-in profiles mirror the paper's
 * System A (2x 16-core AMD Opteron 6378, Piledriver) and System B
 * (8-core AMD FX-8150, Bulldozer).
 */

#ifndef HERMES_PLATFORM_SYSTEM_PROFILE_HPP
#define HERMES_PLATFORM_SYSTEM_PROFILE_HPP

#include <string>

#include "platform/frequency.hpp"
#include "platform/topology.hpp"

namespace hermes::platform {

/**
 * Power-model calibration constants (see energy::PowerModel for the
 * equations). All per-core figures; uncoreWatts is package-wide.
 */
struct PowerParams
{
    double voltsAtFmin;    ///< core voltage at the slowest rung
    double voltsAtFmax;    ///< core voltage at the fastest rung
    double staticWatts;    ///< per-core leakage at Vmax (scales ~V^2)
    double dynMaxWatts;    ///< per-core dynamic power at fmax/Vmax
    double uncoreWatts;    ///< package power independent of cores
    double idleActivity;   ///< activity factor of a parked core
    double spinActivity;   ///< activity factor of a victim-hunting
                           ///< (steal-spinning) worker core
};

/** A complete evaluation platform description. */
struct SystemProfile
{
    std::string name;            ///< e.g. "SystemA"
    Topology topology;           ///< cores and clock domains
    FrequencyLadder ladder;      ///< full hardware P-state ladder
    PowerParams power;           ///< power-model calibration
    double dvfsLatencySec;       ///< frequency transition latency

    /** Max workers under the one-worker-per-domain placement. */
    unsigned maxWorkers() const { return topology.numDomains(); }
};

/**
 * System A: 2x AMD Opteron 6378 (Piledriver), 32 cores, 16 clock
 * domains (2 cores each), rungs 2.4/2.2/1.9/1.6/1.4 GHz.
 */
SystemProfile systemA();

/**
 * System B: AMD FX-8150 (Bulldozer), 8 cores, 4 clock domains,
 * rungs 3.6/3.3/2.7/2.1/1.4 GHz.
 */
SystemProfile systemB();

/**
 * A profile describing the host this process runs on: hardware
 * concurrency, a generic ladder, and System-B-like power constants.
 * Used by the threaded-runtime examples.
 */
SystemProfile hostSystem();

/** Look up a built-in profile by name ("A", "B", "host"). */
SystemProfile profileByName(const std::string &name);

/**
 * The paper's default 2-frequency tempo selection for a system: the
 * fastest rung paired with the rung nearest 70% of it (System A:
 * 2.4/1.6 GHz, System B: 3.6/2.7 GHz — the defaults of Figures 6/7).
 */
FrequencyLadder defaultTempoLadder(const SystemProfile &profile);

} // namespace hermes::platform

#endif // HERMES_PLATFORM_SYSTEM_PROFILE_HPP
