#include "platform/topology.hpp"

#include <utility>

#include "util/assert.hpp"

namespace hermes::platform {

Topology::Topology(unsigned num_cores, unsigned cores_per_domain)
    : numCores_(num_cores), coresPerDomain_(cores_per_domain)
{
    if (num_cores == 0)
        util::fatal("topology needs at least one core");
    if (cores_per_domain == 0 || num_cores % cores_per_domain != 0)
        util::fatal("cores_per_domain must divide num_cores");
}

DomainId
Topology::domainOf(CoreId core) const
{
    HERMES_ASSERT(core < numCores_, "core " << core << " out of range");
    return core / coresPerDomain_;
}

std::vector<CoreId>
Topology::coresIn(DomainId domain) const
{
    HERMES_ASSERT(domain < numDomains(),
                  "domain " << domain << " out of range");
    std::vector<CoreId> cores;
    cores.reserve(coresPerDomain_);
    for (unsigned i = 0; i < coresPerDomain_; ++i)
        cores.push_back(domain * coresPerDomain_ + i);
    return cores;
}

DomainMap::DomainMap(std::vector<DomainId> domain_of_worker)
    : map_(std::move(domain_of_worker))
{
    // Compact ids to dense 0-based values in first-appearance order:
    // consumers (Runtime's per-domain caches) index vectors by
    // domain id, so a sparse override like {0, 1<<30} must not cost
    // 2^30 slots. Dense inputs pass through unchanged.
    std::vector<std::pair<DomainId, DomainId>> remap;
    for (DomainId &d : map_) {
        if (d == invalidDomain)
            util::fatal("DomainMap entry is invalidDomain");
        DomainId dense = invalidDomain;
        for (const auto &[from, to] : remap) {
            if (from == d) {
                dense = to;
                break;
            }
        }
        if (dense == invalidDomain) {
            dense = static_cast<DomainId>(remap.size());
            remap.emplace_back(d, dense);
        }
        d = dense;
    }
    numDomains_ = static_cast<unsigned>(remap.size());
}

DomainMap
DomainMap::uniform(unsigned num_workers)
{
    return DomainMap(std::vector<DomainId>(num_workers, 0));
}

DomainMap
DomainMap::fromTopology(const Topology &topo,
                        const std::vector<CoreId> &worker_cores)
{
    std::vector<DomainId> domains;
    domains.reserve(worker_cores.size());
    for (const CoreId c : worker_cores) {
        if (c >= topo.numCores()) {
            // Unknown hardware: collapse to one domain rather than
            // invent structure — locality becomes a no-op.
            return uniform(
                static_cast<unsigned>(worker_cores.size()));
        }
        domains.push_back(topo.domainOf(c));
    }
    return DomainMap(std::move(domains));
}

DomainId
DomainMap::domainOf(unsigned worker) const
{
    HERMES_ASSERT(worker < map_.size(),
                  "worker " << worker << " out of range");
    return map_[worker];
}

std::vector<unsigned>
DomainMap::workersIn(DomainId domain) const
{
    std::vector<unsigned> workers;
    for (unsigned w = 0; w < map_.size(); ++w) {
        if (map_[w] == domain)
            workers.push_back(w);
    }
    return workers;
}

std::vector<unsigned>
DomainMap::peersOf(unsigned worker) const
{
    const DomainId d = domainOf(worker);
    std::vector<unsigned> peers;
    for (unsigned w = 0; w < map_.size(); ++w) {
        if (w != worker && map_[w] == d)
            peers.push_back(w);
    }
    return peers;
}

std::vector<CoreId>
Topology::distinctDomainCores(unsigned count) const
{
    if (count > numDomains())
        util::fatal("requested " + std::to_string(count)
                    + " distinct-domain cores but only "
                    + std::to_string(numDomains())
                    + " clock domains exist");
    std::vector<CoreId> cores;
    cores.reserve(count);
    for (unsigned d = 0; d < count; ++d)
        cores.push_back(d * coresPerDomain_);
    return cores;
}

} // namespace hermes::platform
