#include "platform/topology.hpp"

#include "util/assert.hpp"

namespace hermes::platform {

Topology::Topology(unsigned num_cores, unsigned cores_per_domain)
    : numCores_(num_cores), coresPerDomain_(cores_per_domain)
{
    if (num_cores == 0)
        util::fatal("topology needs at least one core");
    if (cores_per_domain == 0 || num_cores % cores_per_domain != 0)
        util::fatal("cores_per_domain must divide num_cores");
}

DomainId
Topology::domainOf(CoreId core) const
{
    HERMES_ASSERT(core < numCores_, "core " << core << " out of range");
    return core / coresPerDomain_;
}

std::vector<CoreId>
Topology::coresIn(DomainId domain) const
{
    HERMES_ASSERT(domain < numDomains(),
                  "domain " << domain << " out of range");
    std::vector<CoreId> cores;
    cores.reserve(coresPerDomain_);
    for (unsigned i = 0; i < coresPerDomain_; ++i)
        cores.push_back(domain * coresPerDomain_ + i);
    return cores;
}

std::vector<CoreId>
Topology::distinctDomainCores(unsigned count) const
{
    if (count > numDomains())
        util::fatal("requested " + std::to_string(count)
                    + " distinct-domain cores but only "
                    + std::to_string(numDomains())
                    + " clock domains exist");
    std::vector<CoreId> cores;
    cores.reserve(count);
    for (unsigned d = 0; d < count; ++d)
        cores.push_back(d * coresPerDomain_);
    return cores;
}

} // namespace hermes::platform
