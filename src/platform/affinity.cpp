#include "platform/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#define HERMES_HAVE_AFFINITY 1
#else
#define HERMES_HAVE_AFFINITY 0
#endif

namespace hermes::platform {

bool
affinitySupported()
{
#if HERMES_HAVE_AFFINITY
    return true;
#else
    return false;
#endif
}

bool
pinSelfToCore(CoreId core)
{
#if HERMES_HAVE_AFFINITY
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set)
        == 0;
#else
    (void)core;
    return false;
#endif
}

bool
unpinSelf(unsigned num_cores)
{
#if HERMES_HAVE_AFFINITY
    cpu_set_t set;
    CPU_ZERO(&set);
    for (unsigned c = 0; c < num_cores; ++c)
        CPU_SET(c, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set)
        == 0;
#else
    (void)num_cores;
    return false;
#endif
}

} // namespace hermes::platform
