/**
 * @file
 * Thread-to-core affinity (Section 3.4, "Worker-Core Mapping").
 *
 * Static scheduling pins each worker to one core for the whole run;
 * dynamic scheduling re-pins around each WORK invocation. Both reduce
 * to setting the calling thread's affinity mask. On platforms without
 * affinity support the calls degrade to no-ops that report failure,
 * which the runtime records but tolerates.
 */

#ifndef HERMES_PLATFORM_AFFINITY_HPP
#define HERMES_PLATFORM_AFFINITY_HPP

#include "platform/topology.hpp"

namespace hermes::platform {

/** Whether this build/host can pin threads at all. */
bool affinitySupported();

/** Pin the calling thread to `core`. @return success. */
bool pinSelfToCore(CoreId core);

/** Remove any pinning from the calling thread (all-cores mask).
 *  @return success. */
bool unpinSelf(unsigned num_cores);

} // namespace hermes::platform

#endif // HERMES_PLATFORM_AFFINITY_HPP
