/**
 * @file
 * Discrete CPU frequency ladders.
 *
 * Modern CPUs expose a small set of P-state frequencies; HERMES maps
 * tempo levels onto them (Section 3.4, "Tempo-Frequency Mapping").
 * A ladder is ordered fastest-first: index 0 is the highest frequency,
 * matching the paper's f_1 > f_2 > ... > f_n convention. N-frequency
 * tempo control restricts the runtime to the highest N rungs.
 */

#ifndef HERMES_PLATFORM_FREQUENCY_HPP
#define HERMES_PLATFORM_FREQUENCY_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace hermes::platform {

/** Frequency in MHz (integral to avoid float-compare pitfalls). */
using FreqMhz = unsigned;

/** Index into a FrequencyLadder; 0 is the fastest rung. */
using FreqIndex = size_t;

/**
 * An ordered, descending set of distinct core frequencies.
 */
class FrequencyLadder
{
  public:
    /** Build from any list of frequencies; sorted descending,
     * duplicates removed. Must be non-empty. */
    explicit FrequencyLadder(std::vector<FreqMhz> freqs_mhz);

    size_t size() const { return freqs_.size(); }

    /** Frequency at rung `i` (0 = fastest). */
    FreqMhz at(FreqIndex i) const;

    FreqMhz fastest() const { return freqs_.front(); }
    FreqMhz slowest() const { return freqs_.back(); }

    /** Rung of an exact frequency; fatal() if absent. */
    FreqIndex indexOf(FreqMhz f) const;

    /** Whether `f` is one of the rungs. */
    bool contains(FreqMhz f) const;

    /**
     * N-frequency restriction (Section 3.4): keep only the highest
     * `n` rungs. `n` is clamped to [1, size()].
     */
    FrequencyLadder restrictTopN(size_t n) const;

    /**
     * Build a ladder from an explicit fast-to-slow selection, e.g.
     * the paper's 2.4/1.6 GHz pair for Figure 14. Values must be
     * rungs of this ladder; fatal() otherwise.
     */
    FrequencyLadder select(const std::vector<FreqMhz> &subset) const;

    /** "2400/1600" style summary for reports. */
    std::string describe() const;

    const std::vector<FreqMhz> &rungs() const { return freqs_; }

    bool operator==(const FrequencyLadder &o) const = default;

  private:
    std::vector<FreqMhz> freqs_;
};

} // namespace hermes::platform

#endif // HERMES_PLATFORM_FREQUENCY_HPP
