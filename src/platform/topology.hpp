/**
 * @file
 * CPU topology: cores grouped into clock domains, plus the
 * worker-facing DomainMap the stealing policy consumes.
 *
 * On the paper's Piledriver/Bulldozer parts every two cores share one
 * clock domain, so DVFS on one core drags its sibling along. HERMES
 * avoids this interference by placing at most one worker per domain
 * (Section 4.1); the topology type makes that constraint explicit and
 * testable.
 *
 * A DomainMap is the scheduler's view of the same structure: it maps
 * dense worker ids to the cache/NUMA/clock domain hosting them, so
 * victim selection can probe same-domain deques first and wake
 * selection can prefer a same-domain parked worker
 * (docs/STEALING.md). On hardware the runtime cannot describe it
 * degrades gracefully to a single domain, which turns every locality
 * preference into a no-op.
 */

#ifndef HERMES_PLATFORM_TOPOLOGY_HPP
#define HERMES_PLATFORM_TOPOLOGY_HPP

#include <cstddef>
#include <vector>

namespace hermes::platform {

/** Hardware core identifier, 0-based. */
using CoreId = unsigned;

/** Clock-domain identifier, 0-based. */
using DomainId = unsigned;

/** Sentinel for "no domain preference" (external producers). */
inline constexpr DomainId invalidDomain = ~0u;

/** Cores partitioned into equal-size clock domains. */
class Topology
{
  public:
    /**
     * @param num_cores total cores; must be > 0
     * @param cores_per_domain domain width; must divide num_cores
     */
    Topology(unsigned num_cores, unsigned cores_per_domain);

    unsigned numCores() const { return numCores_; }
    unsigned coresPerDomain() const { return coresPerDomain_; }
    unsigned numDomains() const { return numCores_ / coresPerDomain_; }

    /** Clock domain hosting `core`. */
    DomainId domainOf(CoreId core) const;

    /** All cores inside `domain`. */
    std::vector<CoreId> coresIn(DomainId domain) const;

    /**
     * Pick `count` cores no two of which share a clock domain — the
     * paper's experimental placement. fatal() if count exceeds the
     * number of domains.
     */
    std::vector<CoreId> distinctDomainCores(unsigned count) const;

    bool operator==(const Topology &o) const = default;

  private:
    unsigned numCores_;
    unsigned coresPerDomain_;
};

/**
 * Worker → domain map consumed by the stealing policy
 * (docs/STEALING.md).
 *
 * Workers are dense 0-based ids, domains dense 0-based ids; two
 * workers in the same domain share a cache/NUMA/clock neighbourhood
 * and are cheap to steal between. The map is immutable after
 * construction — under dynamic scheduling workers re-pin to their
 * *planned* core around every task, so the planned placement stays
 * the right locality signal.
 */
class DomainMap
{
  public:
    /** Empty map (no workers). */
    DomainMap() = default;

    /**
     * Explicit map, mainly for tests and the simulator: element `w`
     * is the domain of worker `w`. Input ids must not be
     * invalidDomain; they are compacted to dense 0-based ids in
     * first-appearance order (only the partition matters, and
     * consumers index per-domain caches by id), so already-dense
     * inputs pass through unchanged.
     */
    explicit DomainMap(std::vector<DomainId> domain_of_worker);

    /** All `num_workers` workers in one domain — the graceful
     * fallback for hardware the runtime cannot describe; every
     * locality preference degenerates to the uniform policy. */
    static DomainMap uniform(unsigned num_workers);

    /**
     * Derive the map from a hardware topology and the planned
     * worker → core placement: worker `w` lives in
     * `topo.domainOf(worker_cores[w])`. A core outside the topology
     * (unknown hardware) degrades the whole map to uniform().
     * @param topo hardware core/domain structure
     * @param worker_cores planned host core of each worker
     */
    static DomainMap fromTopology(const Topology &topo,
                                  const std::vector<CoreId> &worker_cores);

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(map_.size());
    }

    /** Number of distinct domains (0 when empty). */
    unsigned numDomains() const { return numDomains_; }

    /** Domain hosting `worker`. */
    DomainId domainOf(unsigned worker) const;

    /** Whether workers `a` and `b` share a domain. */
    bool sameDomain(unsigned a, unsigned b) const
    {
        return domainOf(a) == domainOf(b);
    }

    /** All workers hosted by `domain`, ascending. */
    std::vector<unsigned> workersIn(DomainId domain) const;

    /** Same-domain workers other than `worker`, ascending — the
     * victims a locality-aware hunt probes first. */
    std::vector<unsigned> peersOf(unsigned worker) const;

    bool operator==(const DomainMap &o) const = default;

  private:
    std::vector<DomainId> map_;
    unsigned numDomains_ = 0;
};

} // namespace hermes::platform

#endif // HERMES_PLATFORM_TOPOLOGY_HPP
