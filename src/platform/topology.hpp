/**
 * @file
 * CPU topology: cores grouped into clock domains.
 *
 * On the paper's Piledriver/Bulldozer parts every two cores share one
 * clock domain, so DVFS on one core drags its sibling along. HERMES
 * avoids this interference by placing at most one worker per domain
 * (Section 4.1); the topology type makes that constraint explicit and
 * testable.
 */

#ifndef HERMES_PLATFORM_TOPOLOGY_HPP
#define HERMES_PLATFORM_TOPOLOGY_HPP

#include <cstddef>
#include <vector>

namespace hermes::platform {

/** Hardware core identifier, 0-based. */
using CoreId = unsigned;

/** Clock-domain identifier, 0-based. */
using DomainId = unsigned;

/** Cores partitioned into equal-size clock domains. */
class Topology
{
  public:
    /**
     * @param num_cores total cores; must be > 0
     * @param cores_per_domain domain width; must divide num_cores
     */
    Topology(unsigned num_cores, unsigned cores_per_domain);

    unsigned numCores() const { return numCores_; }
    unsigned coresPerDomain() const { return coresPerDomain_; }
    unsigned numDomains() const { return numCores_ / coresPerDomain_; }

    /** Clock domain hosting `core`. */
    DomainId domainOf(CoreId core) const;

    /** All cores inside `domain`. */
    std::vector<CoreId> coresIn(DomainId domain) const;

    /**
     * Pick `count` cores no two of which share a clock domain — the
     * paper's experimental placement. fatal() if count exceeds the
     * number of domains.
     */
    std::vector<CoreId> distinctDomainCores(unsigned count) const;

    bool operator==(const Topology &o) const = default;

  private:
    unsigned numCores_;
    unsigned coresPerDomain_;
};

} // namespace hermes::platform

#endif // HERMES_PLATFORM_TOPOLOGY_HPP
