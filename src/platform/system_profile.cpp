#include "platform/system_profile.hpp"

#include <cmath>
#include <thread>

#include "util/assert.hpp"

namespace hermes::platform {

/*
 * Calibration notes
 * -----------------
 * The paper measures energy with current meters on the CPU module's
 * 12 V supply; we model package power analytically (energy::PowerModel)
 * and only report *normalized* energy, so the absolute scale matters
 * less than the ratios between rungs. Constants below are chosen from
 * public TDPs:
 *  - Opteron 6378: 115 W TDP per 16-core package (8 Piledriver
 *    modules of 2 cores sharing frontend/FPU/L2 = one clock domain).
 *    The experiments place one worker per module, so the scalable
 *    power behind one worker is the *module's*: ~8 W dynamic at
 *    fmax/Vmax, ~0.6 W leakage at Vmax.
 *  - FX-8150: 125 W TDP over 4 modules => ~14 W dynamic per active
 *    module, ~1 W leakage, ~6 W uncore.
 * Idle (yielded) cores sit in shallow C-states on these Linux 3.2
 * systems — clock-gated, a few percent residual switching — so their
 * draw is small; this matters because the paper's savings stay near
 * 10% even with 2 workers on a 32-core module, which is impossible
 * unless unoccupied cores contribute little to measured power.
 * Voltage ranges follow the parts' VID windows (0.9-1.3 V Piledriver,
 * 0.9-1.4 V Bulldozer). DVFS transition latency: tens of microseconds
 * (Section 3.4); we use 50 us.
 */

SystemProfile
systemA()
{
    return SystemProfile{
        "SystemA",
        Topology(32, 2),
        FrequencyLadder({2400, 2200, 1900, 1600, 1400}),
        PowerParams{
            0.90,   // voltsAtFmin
            1.30,   // voltsAtFmax
            0.60,   // staticWatts per module-core (at Vmax)
            8.00,   // dynMaxWatts per active module
            8.00,   // uncoreWatts (two packages)
            0.03,   // idleActivity
            0.70,   // spinActivity
        },
        50e-6,
    };
}

SystemProfile
systemB()
{
    return SystemProfile{
        "SystemB",
        Topology(8, 2),
        FrequencyLadder({3600, 3300, 2700, 2100, 1400}),
        PowerParams{
            0.90,
            1.40,
            1.00,
            14.0,
            6.00,
            0.03,
            0.70,
        },
        50e-6,
    };
}

SystemProfile
hostSystem()
{
    unsigned cores = std::thread::hardware_concurrency();
    if (cores == 0)
        cores = 1;
    // Domains of one core each: the container gives no topology
    // information, and single-core domains avoid modelling
    // interference that may not exist.
    return SystemProfile{
        "Host",
        Topology(cores, 1),
        FrequencyLadder({3600, 3300, 2700, 2100, 1400}),
        systemB().power,
        50e-6,
    };
}

FrequencyLadder
defaultTempoLadder(const SystemProfile &profile)
{
    const FreqMhz fast = profile.ladder.fastest();
    if (profile.ladder.size() == 1)
        return profile.ladder;
    const double target = 0.70 * static_cast<double>(fast);
    FreqMhz best = profile.ladder.at(1);
    double best_dist = 1e18;
    for (FreqMhz f : profile.ladder.rungs()) {
        if (f == fast)
            continue;
        const double dist =
            std::abs(static_cast<double>(f) - target);
        // Ties resolve to the higher rung (less performance risk).
        if (dist < best_dist
                || (dist == best_dist && f > best)) {
            best_dist = dist;
            best = f;
        }
    }
    return profile.ladder.select({fast, best});
}

SystemProfile
profileByName(const std::string &name)
{
    if (name == "A" || name == "SystemA" || name == "a")
        return systemA();
    if (name == "B" || name == "SystemB" || name == "b")
        return systemB();
    if (name == "host" || name == "Host")
        return hostSystem();
    util::fatal("unknown system profile '" + name
                + "' (expected A, B, or host)");
}

} // namespace hermes::platform
