#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hermes::util {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Inform};
std::mutex emit_mutex;

void
emit(const char *tag, const std::string &msg, LogLevel level)
{
    if (static_cast<int>(level)
            > static_cast<int>(global_level.load(std::memory_order_relaxed)))
        return;
    std::lock_guard<std::mutex> lock(emit_mutex);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
inform(const std::string &msg)
{
    emit("info", msg, LogLevel::Inform);
}

void
warn(const std::string &msg)
{
    emit("warn", msg, LogLevel::Warn);
}

void
debug(const std::string &msg)
{
    emit("debug", msg, LogLevel::Debug);
}

} // namespace hermes::util
