/**
 * @file
 * Atomic whole-file writes for evidence artifacts.
 *
 * Run bundles are consumed by tools that re-read them later —
 * `hermes-scenario compare`, `sweep --reduce-only`, CI `cmp` gates —
 * and a run interrupted mid-write must never leave a torn
 * config.json/run.json/summary.json/curves.json for those readers to
 * trip over. The classic fix: write the full content to a sibling
 * temp file, flush and close it, then rename() over the target —
 * rename within one directory is atomic on POSIX, so readers observe
 * either the old file or the complete new one, never a prefix.
 * (Append-oriented artifacts like soak.jsonl tolerate torn trailing
 * lines by design and keep appending in place.)
 */

#ifndef HERMES_UTIL_ATOMIC_FILE_HPP
#define HERMES_UTIL_ATOMIC_FILE_HPP

#include <string>

namespace hermes::util {

/**
 * Write `content` to `path` atomically: the bytes land in
 * `path.tmp` first and are rename()d over `path` only after a
 * successful flush + close. util::fatal() on any I/O failure (the
 * temp file is removed on the failure paths it can be).
 */
void writeFileAtomic(const std::string &path,
                     const std::string &content);

/**
 * As writeFileAtomic(), but reports failure through `error` instead
 * of aborting — for callers (the sweep runner) that collect errors
 * across many artifacts and keep going. Returns true on success.
 */
bool tryWriteFileAtomic(const std::string &path,
                        const std::string &content,
                        std::string &error);

} // namespace hermes::util

#endif // HERMES_UTIL_ATOMIC_FILE_HPP
