/**
 * @file
 * A small command-line flag parser for examples and bench binaries.
 * Flags take the forms `--name=value`, `--name value`, or `--name`
 * (boolean). Unknown flags are fatal so typos do not silently run the
 * wrong experiment.
 */

#ifndef HERMES_UTIL_CLI_HPP
#define HERMES_UTIL_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hermes::util {

/** Declarative flag set with typed accessors and --help rendering. */
class Cli
{
  public:
    /** @param description one-line program summary for --help. */
    explicit Cli(std::string description);

    /** Register flags (call before parse()). */
    void addFlag(const std::string &name, const std::string &help,
                 bool default_value);
    void addInt(const std::string &name, const std::string &help,
                int64_t default_value);
    void addDouble(const std::string &name, const std::string &help,
                   double default_value);
    void addString(const std::string &name, const std::string &help,
                   const std::string &default_value);

    /**
     * Parse argv. Handles --help by printing usage and exiting 0.
     * fatal()s on unknown flags or malformed values.
     */
    void parse(int argc, const char *const *argv);

    bool getFlag(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    std::string getString(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the --help text. */
    std::string usage() const;

  private:
    enum class Kind { Flag, Int, Double, String };

    struct Option
    {
        Kind kind;
        std::string help;
        std::string value; // textual; typed on access
    };

    const Option &find(const std::string &name, Kind kind) const;

    std::string description_;
    std::string program_;
    std::map<std::string, Option> options_;
    std::vector<std::string> positional_;
};

} // namespace hermes::util

#endif // HERMES_UTIL_CLI_HPP
