#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace hermes::util {

bool
JsonValue::boolean() const
{
    HERMES_ASSERT(isBool(), "JsonValue: not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    HERMES_ASSERT(isNumber(), "JsonValue: not a number");
    return number_;
}

const std::string &
JsonValue::string() const
{
    HERMES_ASSERT(isString(), "JsonValue: not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    HERMES_ASSERT(isArray(), "JsonValue: not an array");
    return *array_;
}

const JsonMembers &
JsonValue::members() const
{
    HERMES_ASSERT(isObject(), "JsonValue: not an object");
    return *members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    HERMES_ASSERT(isObject(), "JsonValue: not an object");
    for (const auto &[name, value] : *members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return "boolean";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
    }
    return "unknown";
}

JsonValue
JsonValue::makeNull(size_t offset)
{
    JsonValue v;
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeBool(bool b, size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeNumber(double n, size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeString(std::string s, size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elems, size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::make_shared<std::vector<JsonValue>>(
        std::move(elems));
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeObject(JsonMembers members, size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::make_shared<JsonMembers>(std::move(members));
    v.offset_ = offset;
    return v;
}

std::string
JsonError::toString() const
{
    return "line " + std::to_string(line) + ", column "
        + std::to_string(column) + ": " + message;
}

namespace {

/** Recursive-descent parser over a byte range. Errors are recorded
 * once (the first wins) and unwind via the `failed_` flag, so no
 * exceptions and no aborts on malformed input. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonParseResult
    run()
    {
        JsonParseResult result;
        skipWs();
        JsonValue v = parseValue(0);
        skipWs();
        if (!failed_ && pos_ != text_.size())
            fail("trailing characters after JSON document");
        if (failed_) {
            result.ok = false;
            result.error = error_;
            locate(result.error);
        } else {
            result.ok = true;
            result.value = std::move(v);
        }
        return result;
    }

  private:
    /** Nesting bound: deep enough for any sane scenario file, small
     * enough that a `[[[[...` bomb cannot overflow the stack. */
    static constexpr int kMaxDepth = 64;

    void
    fail(const std::string &message)
    {
        if (failed_)
            return;
        failed_ = true;
        error_.message = message;
        error_.offset = pos_;
    }

    /** Fill in line/column from the recorded byte offset. */
    void
    locate(JsonError &error) const
    {
        unsigned line = 1, column = 1;
        for (size_t i = 0; i < error.offset && i < text_.size();
             ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        error.line = line;
        error.column = column;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (atEnd() || peek() != expected)
            return false;
        ++pos_;
        return true;
    }

    JsonValue
    parseValue(int depth)
    {
        if (failed_)
            return {};
        if (depth > kMaxDepth) {
            fail("nesting deeper than "
                 + std::to_string(kMaxDepth) + " levels");
            return {};
        }
        skipWs();
        if (atEnd()) {
            fail("unexpected end of input, expected a value");
            return {};
        }
        const size_t start = pos_;
        switch (peek()) {
        case '{': return parseObject(depth, start);
        case '[': return parseArray(depth, start);
        case '"': {
            std::string s;
            if (!parseStringBody(s))
                return {};
            return JsonValue::makeString(std::move(s), start);
        }
        case 't':
            return parseKeyword("true",
                                JsonValue::makeBool(true, start));
        case 'f':
            return parseKeyword("false",
                                JsonValue::makeBool(false, start));
        case 'n':
            return parseKeyword("null", JsonValue::makeNull(start));
        default:
            return parseNumber(start);
        }
    }

    JsonValue
    parseKeyword(const char *word, JsonValue value)
    {
        for (const char *c = word; *c; ++c) {
            if (atEnd() || peek() != *c) {
                fail(std::string("invalid token, expected '") + word
                     + "'");
                return {};
            }
            ++pos_;
        }
        return value;
    }

    JsonValue
    parseNumber(size_t start)
    {
        // Validate the JSON number grammar by hand, then hand the
        // span to strtod (which accepts a superset).
        size_t p = pos_;
        auto digitRun = [&]() -> bool {
            const size_t first = p;
            while (p < text_.size()
                   && std::isdigit(
                       static_cast<unsigned char>(text_[p])))
                ++p;
            return p > first;
        };
        if (p < text_.size() && text_[p] == '-')
            ++p;
        if (!digitRun()) {
            fail("invalid character, expected a value");
            return {};
        }
        if (p < text_.size() && text_[p] == '.') {
            ++p;
            if (!digitRun()) {
                fail("digits required after decimal point");
                return {};
            }
        }
        if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
            ++p;
            if (p < text_.size()
                && (text_[p] == '+' || text_[p] == '-'))
                ++p;
            if (!digitRun()) {
                fail("digits required in exponent");
                return {};
            }
        }
        const std::string span = text_.substr(pos_, p - pos_);
        const double v = std::strtod(span.c_str(), nullptr);
        if (!std::isfinite(v)) {
            fail("number out of double range");
            return {};
        }
        pos_ = p;
        return JsonValue::makeNumber(v, start);
    }

    bool
    parseStringBody(std::string &out)
    {
        if (!consume('"')) {
            fail("expected '\"'");
            return false;
        }
        while (true) {
            if (atEnd()) {
                fail("unterminated string");
                return false;
            }
            const unsigned char c =
                static_cast<unsigned char>(peek());
            ++pos_;
            if (c == '"')
                return true;
            if (c < 0x20) {
                --pos_;
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                continue;
            }
            if (atEnd()) {
                fail("unterminated escape sequence");
                return false;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (atEnd()
                        || !std::isxdigit(static_cast<unsigned char>(
                            peek()))) {
                        fail("\\u requires four hex digits");
                        return false;
                    }
                    const char h = peek();
                    ++pos_;
                    code = code * 16
                        + static_cast<unsigned>(
                               h <= '9' ? h - '0'
                                        : (h | 0x20) - 'a' + 10);
                }
                if (code >= 0xd800 && code <= 0xdfff) {
                    fail("surrogate \\u escapes unsupported");
                    return false;
                }
                // UTF-8 encode the BMP code point.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default:
                pos_ -= 1;
                fail("invalid escape character");
                return false;
            }
        }
    }

    JsonValue
    parseArray(int depth, size_t start)
    {
        consume('[');
        std::vector<JsonValue> elems;
        skipWs();
        if (consume(']'))
            return JsonValue::makeArray(std::move(elems), start);
        while (true) {
            elems.push_back(parseValue(depth + 1));
            if (failed_)
                return {};
            skipWs();
            if (consume(']'))
                return JsonValue::makeArray(std::move(elems), start);
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return {};
            }
        }
    }

    JsonValue
    parseObject(int depth, size_t start)
    {
        consume('{');
        JsonMembers members;
        skipWs();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members), start);
        while (true) {
            skipWs();
            std::string key;
            if (atEnd() || peek() != '"') {
                fail("expected '\"' to begin an object key");
                return {};
            }
            if (!parseStringBody(key))
                return {};
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return {};
            }
            members.emplace_back(std::move(key),
                                 parseValue(depth + 1));
            if (failed_)
                return {};
            skipWs();
            if (consume('}'))
                return JsonValue::makeObject(std::move(members),
                                             start);
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return {};
            }
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    bool failed_ = false;
    JsonError error_;
};

} // namespace

JsonParseResult
parseJson(const std::string &text)
{
    return Parser(text).run();
}

std::string
jsonPointerEscape(const std::string &segment)
{
    std::string out;
    out.reserve(segment.size());
    for (char c : segment) {
        if (c == '~')
            out += "~0";
        else if (c == '/')
            out += "~1";
        else
            out.push_back(c);
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace hermes::util
