#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace hermes::util {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi),
      binWidth_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    HERMES_ASSERT(hi > lo, "histogram range must be non-empty");
    HERMES_ASSERT(bins >= 1, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<size_t>((x - lo_) / binWidth_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

double
Histogram::binLow(size_t i) const
{
    HERMES_ASSERT(i < counts_.size(), "bin index out of range");
    return lo_ + binWidth_ * static_cast<double>(i);
}

std::string
Histogram::ascii(size_t width) const
{
    size_t peak = std::max<size_t>(1, underflow_);
    peak = std::max(peak, overflow_);
    for (size_t c : counts_)
        peak = std::max(peak, c);

    std::string out;
    char buf[128];
    auto line = [&](const char *label, size_t count) {
        const size_t bar = count * width / peak;
        std::snprintf(buf, sizeof(buf), "%12s |%-*s| %zu\n", label,
                      static_cast<int>(width),
                      std::string(bar, '#').c_str(), count);
        out += buf;
    };
    if (underflow_)
        line("<lo", underflow_);
    for (size_t i = 0; i < counts_.size(); ++i) {
        char label[32];
        std::snprintf(label, sizeof(label), "%.3g", binLow(i));
        line(label, counts_[i]);
    }
    if (overflow_)
        line(">=hi", overflow_);
    return out;
}

} // namespace hermes::util
