/**
 * @file
 * Deterministic pseudo-random number generation for experiments.
 *
 * All HERMES experiments are seeded so that simulator runs are
 * bit-exact reproducible. We use xoshiro256** (public domain, Blackman
 * & Vigna) seeded through splitmix64, plus the handful of
 * distributions the workload generators need (uniform, exponential,
 * lognormal, Pareto). Header-only so the simulator's hot path can
 * inline draws.
 */

#ifndef HERMES_UTIL_RNG_HPP
#define HERMES_UTIL_RNG_HPP

#include <cmath>
#include <cstdint>

namespace hermes::util {

/** splitmix64 step; used to expand a single seed into stream state. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** One-shot splitmix64 mix of a base seed and a stream id, for
 * deriving decorrelated per-stream seeds (adjacent ids included). */
inline uint64_t
mix64(uint64_t seed, uint64_t stream)
{
    uint64_t s = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    return splitmix64(s);
}

/**
 * xoshiro256** generator with convenience distribution draws.
 *
 * Satisfies UniformRandomBitGenerator so it can also feed
 * `<random>` distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

    /** Re-seed in place. */
    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ULL; }

    /** Next raw 64-bit draw. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] (inclusive). lo <= hi required. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        return lo + static_cast<int64_t>(operator()() % span);
    }

    /** Exponential with the given mean (> 0). */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(1.0 - u);
    }

    /** Lognormal: exp(N(mu, sigma^2)). */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * gaussian());
    }

    /** Pareto with scale xm > 0 and shape alpha > 0 (heavy tail). */
    double
    pareto(double xm, double alpha)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return xm / std::pow(1.0 - u, 1.0 / alpha);
    }

    /** Standard normal via Box-Muller (no cached spare; keeps state
     * size minimal and draws deterministic). */
    double
    gaussian()
    {
        double u1 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        const double u2 = uniform();
        const double two_pi = 6.283185307179586476925286766559;
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace hermes::util

#endif // HERMES_UTIL_RNG_HPP
