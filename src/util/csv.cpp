#include "util/csv.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace hermes::util {

CsvWriter::CsvWriter(const std::string &path)
    : file_(path), toFile_(true)
{
    if (!file_)
        fatal("cannot open CSV output file: " + path);
}

CsvWriter::CsvWriter()
    : toFile_(false)
{}

CsvWriter::~CsvWriter()
{
    close();
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            line += ',';
        line += escape(cells[i]);
    }
    emit(line);
}

void
CsvWriter::rowNumeric(const std::string &label,
                      const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        cells.emplace_back(buf);
    }
    row(cells);
}

void
CsvWriter::close()
{
    if (toFile_ && file_.is_open()) {
        file_.flush();
        file_.close();
    }
}

void
CsvWriter::emit(const std::string &line)
{
    if (toFile_)
        file_ << line << '\n';
    else
        buffer_ += line + "\n";
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

} // namespace hermes::util
