/**
 * @file
 * Minimal CSV emission for experiment results. Every figure bench
 * writes its table both as human-readable text and as CSV so results
 * can be re-plotted.
 */

#ifndef HERMES_UTIL_CSV_HPP
#define HERMES_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace hermes::util {

/**
 * Row-oriented CSV writer. Quotes fields containing separators or
 * quotes per RFC 4180. Construction opens (truncates) the file; rows
 * are flushed on destruction or close().
 */
class CsvWriter
{
  public:
    /** Open `path` for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** In-memory writer (for tests); contents via str(). */
    CsvWriter();

    ~CsvWriter();

    /** Write a header or data row from string cells. */
    void row(const std::vector<std::string> &cells);

    /** Convenience: mixed string/double row, doubles at %.6g. */
    void rowNumeric(const std::string &label,
                    const std::vector<double> &values);

    /** Flush and close the underlying file. */
    void close();

    /** In-memory contents (only for the buffer-backed constructor). */
    std::string str() const { return buffer_; }

  private:
    void emit(const std::string &line);
    static std::string escape(const std::string &cell);

    std::ofstream file_;
    bool toFile_;
    std::string buffer_;
};

/** Format a double with fixed decimals into a string. */
std::string formatFixed(double value, int decimals);

/** Format a percentage (0.113 -> "11.3%") with given decimals. */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace hermes::util

#endif // HERMES_UTIL_CSV_HPP
