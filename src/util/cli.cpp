#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace hermes::util {

Cli::Cli(std::string description)
    : description_(std::move(description))
{}

void
Cli::addFlag(const std::string &name, const std::string &help,
             bool default_value)
{
    options_[name] = {Kind::Flag, help, default_value ? "1" : "0"};
}

void
Cli::addInt(const std::string &name, const std::string &help,
            int64_t default_value)
{
    options_[name] = {Kind::Int, help, std::to_string(default_value)};
}

void
Cli::addDouble(const std::string &name, const std::string &help,
               double default_value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", default_value);
    options_[name] = {Kind::Double, help, buf};
}

void
Cli::addString(const std::string &name, const std::string &help,
               const std::string &default_value)
{
    options_[name] = {Kind::String, help, default_value};
}

void
Cli::parse(int argc, const char *const *argv)
{
    program_ = argc > 0 ? argv[0] : "hermes";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown flag --" + name + " (see --help)");
        if (!has_value) {
            if (it->second.kind == Kind::Flag) {
                // assign(count, char) rather than operator=("1"):
                // gcc 12 at -O3 misapplies -Wrestrict to the literal
                // assignment after the substr calls above (GCC PR
                // 105329), which breaks -Werror builds.
                value.assign(1, '1');
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                fatal("flag --" + name + " requires a value");
            }
        }
        it->second.value = value;
    }
}

const Cli::Option &
Cli::find(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    HERMES_ASSERT(it != options_.end(),
                  "flag --" << name << " was never registered");
    HERMES_ASSERT(it->second.kind == kind,
                  "flag --" << name << " accessed with wrong type");
    return it->second;
}

bool
Cli::getFlag(const std::string &name) const
{
    const auto &opt = find(name, Kind::Flag);
    return opt.value != "0" && opt.value != "false";
}

int64_t
Cli::getInt(const std::string &name) const
{
    const auto &opt = find(name, Kind::Int);
    char *end = nullptr;
    const int64_t v = std::strtoll(opt.value.c_str(), &end, 10);
    if (end == opt.value.c_str() || *end != '\0')
        fatal("flag --" + name + " expects an integer, got '"
              + opt.value + "'");
    return v;
}

double
Cli::getDouble(const std::string &name) const
{
    const auto &opt = find(name, Kind::Double);
    char *end = nullptr;
    const double v = std::strtod(opt.value.c_str(), &end);
    if (end == opt.value.c_str() || *end != '\0')
        fatal("flag --" + name + " expects a number, got '"
              + opt.value + "'");
    return v;
}

std::string
Cli::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

std::string
Cli::usage() const
{
    std::string out = description_ + "\n\nusage: " + program_
        + " [flags]\n\nflags:\n";
    for (const auto &[name, opt] : options_) {
        out += "  --" + name;
        switch (opt.kind) {
          case Kind::Flag:
            break;
          case Kind::Int:
          case Kind::Double:
            out += "=<n>";
            break;
          case Kind::String:
            out += "=<s>";
            break;
        }
        out += "\n      " + opt.help + " (default: " + opt.value
            + ")\n";
    }
    return out;
}

} // namespace hermes::util
