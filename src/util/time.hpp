/**
 * @file
 * Wall-clock helpers shared by the threaded runtime and meters.
 */

#ifndef HERMES_UTIL_TIME_HPP
#define HERMES_UTIL_TIME_HPP

#include <chrono>
#include <cstdint>

namespace hermes::util {

/** Monotonic wall-clock seconds since an arbitrary epoch. */
inline double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
        clock::now().time_since_epoch()).count();
}

/** Monotonic wall-clock nanoseconds on the same steady clock as
 * nowSeconds() — integer timestamps for per-request latency
 * measurement (submit/start/finish deltas lose no precision to
 * double rounding). */
inline uint64_t
nowNanos()
{
    using clock = std::chrono::steady_clock;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
}

/** Simple scope timer: elapsed() in seconds since construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(nowSeconds()) {}

    /** Seconds elapsed since construction or last reset. */
    double elapsed() const { return nowSeconds() - start_; }

    /** Restart the timer. */
    void reset() { start_ = nowSeconds(); }

  private:
    double start_;
};

} // namespace hermes::util

#endif // HERMES_UTIL_TIME_HPP
