#include "util/atomic_file.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/assert.hpp"

namespace hermes::util {

bool
tryWriteFileAtomic(const std::string &path,
                   const std::string &content, std::string &error)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            error = "cannot write " + tmp;
            return false;
        }
        out << content;
        out.flush();
        if (!out) {
            std::error_code ignored;
            std::filesystem::remove(tmp, ignored);
            error = "short write to " + tmp;
            return false;
        }
    } // close before rename: the full content must be durable first
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code ignored;
        std::filesystem::remove(tmp, ignored);
        error = "cannot rename " + tmp + " to " + path + ": "
                + ec.message();
        return false;
    }
    return true;
}

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    std::string error;
    if (!tryWriteFileAtomic(path, content, error))
        fatal(error);
}

} // namespace hermes::util
