#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hermes::util {

void
RunningStats::add(double x)
{
    ++count_;
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

void
RunningStats::clear()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
TrialSet::mean() const
{
    RunningStats s;
    for (size_t i = warmupTrials_; i < values_.size(); ++i)
        s.add(values_[i]);
    return s.mean();
}

double
TrialSet::stddev() const
{
    RunningStats s;
    for (size_t i = warmupTrials_; i < values_.size(); ++i)
        s.add(values_[i]);
    return s.stddev();
}

size_t
TrialSet::keptCount() const
{
    return values_.size() > warmupTrials_
        ? values_.size() - warmupTrials_ : 0;
}

double
percentile(std::vector<double> values, double pct)
{
    HERMES_ASSERT(!values.empty(), "percentile of empty vector");
    HERMES_ASSERT(pct >= 0.0 && pct <= 100.0, "pct out of range");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank = pct / 100.0
        * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    RunningStats s;
    for (double v : values)
        s.add(v);
    return s.mean();
}

double
geomeanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        HERMES_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace hermes::util
