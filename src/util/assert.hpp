/**
 * @file
 * Error-handling primitives, following the gem5 panic/fatal split:
 * panic() for internal invariant violations (a bug in HERMES itself),
 * fatal() for user errors (bad configuration, invalid arguments).
 */

#ifndef HERMES_UTIL_ASSERT_HPP
#define HERMES_UTIL_ASSERT_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hermes::util {

/** Abort with a message; internal invariant violation (bug). */
[[noreturn]] inline void
panic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

/** Exit(1) with a message; user-induced unrecoverable error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

} // namespace hermes::util

/** Assert an internal invariant; active in all build types. */
#define HERMES_ASSERT(cond, msg)                                        \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::ostringstream oss_;                                    \
            oss_ << "assertion `" #cond "` failed: " << msg;            \
            ::hermes::util::panic(oss_.str(), __FILE__, __LINE__);      \
        }                                                               \
    } while (0)

/** Signal an unreachable internal state. */
#define HERMES_PANIC(msg)                                               \
    do {                                                                \
        std::ostringstream oss_;                                        \
        oss_ << msg;                                                    \
        ::hermes::util::panic(oss_.str(), __FILE__, __LINE__);          \
    } while (0)

#endif // HERMES_UTIL_ASSERT_HPP
