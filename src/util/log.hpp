/**
 * @file
 * Status-message helpers in the gem5 spirit: inform() for normal
 * progress, warn() for suspect-but-continuable conditions. Messages go
 * to stderr so bench table output on stdout stays machine-readable.
 */

#ifndef HERMES_UTIL_LOG_HPP
#define HERMES_UTIL_LOG_HPP

#include <string>

namespace hermes::util {

/** Verbosity levels, low to high. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Set the global verbosity (default: Inform). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Informational progress message. */
void inform(const std::string &msg);

/** Possible-problem message; execution continues. */
void warn(const std::string &msg);

/** Developer debug message (off by default). */
void debug(const std::string &msg);

} // namespace hermes::util

#endif // HERMES_UTIL_LOG_HPP
