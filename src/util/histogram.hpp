/**
 * @file
 * Fixed-bin histogram used by the deque-size profiler diagnostics and
 * by benchmark reports (steal latency distributions, grain sizes).
 */

#ifndef HERMES_UTIL_HISTOGRAM_HPP
#define HERMES_UTIL_HISTOGRAM_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace hermes::util {

/** Linear-bin histogram over [lo, hi) with an overflow/underflow bin. */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi exclusive upper bound, must be > lo
     * @param bins number of equal-width bins, must be >= 1
     */
    Histogram(double lo, double hi, size_t bins);

    /** Record one sample. */
    void add(double x);

    size_t count() const { return total_; }
    size_t underflow() const { return underflow_; }
    size_t overflow() const { return overflow_; }
    size_t bins() const { return counts_.size(); }
    size_t binCount(size_t i) const { return counts_.at(i); }

    /** Inclusive lower edge of bin i. */
    double binLow(size_t i) const;

    /** Render a compact ASCII bar chart (for bench logs). */
    std::string ascii(size_t width = 40) const;

  private:
    double lo_, hi_, binWidth_;
    std::vector<size_t> counts_;
    size_t underflow_ = 0;
    size_t overflow_ = 0;
    size_t total_ = 0;
};

} // namespace hermes::util

#endif // HERMES_UTIL_HISTOGRAM_HPP
