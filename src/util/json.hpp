/**
 * @file
 * A small JSON value model and parser for the scenario harness.
 *
 * Scenario files (docs/SCENARIOS.md) are hand-written JSON, so the
 * parser is built for *diagnosis*, not speed: every error carries the
 * byte offset plus line/column of the offending token, parsing never
 * throws or aborts on arbitrary input (the fuzz suite in
 * tests/test_scenario_config.cpp feeds it truncations, deletions, and
 * type swaps), and objects preserve member order and surface
 * duplicate keys so the schema layer can reject them with a precise
 * JSON pointer. The emit side lives with the scenario bundle writers;
 * this header is only the read side plus the JSON-pointer escaping
 * those diagnostics share.
 *
 * Deliberate limits (documented, asserted by tests): numbers are
 * IEEE doubles (the scenario schema keeps integral fields under
 * 2^53), \\uXXXX escapes decode the Basic Multilingual Plane only
 * (surrogate pairs are rejected — scenario files are ASCII in
 * practice), and nesting depth is capped so a recursive bomb cannot
 * overflow the stack.
 */

#ifndef HERMES_UTIL_JSON_HPP
#define HERMES_UTIL_JSON_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hermes::util {

class JsonValue;

/** Object members in source order (duplicates preserved for the
 * schema layer to reject). */
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Valid only for the matching kind (asserted). */
    bool boolean() const;
    double number() const;
    const std::string &string() const;
    const std::vector<JsonValue> &array() const;
    const JsonMembers &members() const;

    /** First member with `key`, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    /** Human name of a kind for diagnostics ("number", ...). */
    static const char *kindName(Kind kind);

    /** Byte offset of this value's first token in the source text
     * (diagnostics; 0 for default-constructed values). */
    size_t offset() const { return offset_; }

    // Construction (used by the parser and by tests building
    // expected values).
    static JsonValue makeNull(size_t offset = 0);
    static JsonValue makeBool(bool v, size_t offset = 0);
    static JsonValue makeNumber(double v, size_t offset = 0);
    static JsonValue makeString(std::string v, size_t offset = 0);
    static JsonValue makeArray(std::vector<JsonValue> v,
                               size_t offset = 0);
    static JsonValue makeObject(JsonMembers v, size_t offset = 0);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    // Indirect so JsonValue stays movable while self-referential.
    std::shared_ptr<std::vector<JsonValue>> array_;
    std::shared_ptr<JsonMembers> members_;
    size_t offset_ = 0;
};

/** Parse failure description. */
struct JsonError
{
    std::string message;  ///< what went wrong ("expected ':'", ...)
    size_t offset = 0;    ///< byte offset into the source
    unsigned line = 0;    ///< 1-based source line
    unsigned column = 0;  ///< 1-based source column

    /** "line 3, column 14: expected ':'" */
    std::string toString() const;
};

/** Outcome of parseJson(). */
struct JsonParseResult
{
    bool ok = false;
    JsonValue value;  ///< valid only when ok
    JsonError error;  ///< valid only when !ok
};

/**
 * Parse `text` as one JSON document (trailing garbage is an error).
 * Total: every input yields either a value or an error, never a
 * crash or a throw.
 */
JsonParseResult parseJson(const std::string &text);

/** Escape one JSON-pointer segment per RFC 6901 (~ -> ~0, / -> ~1). */
std::string jsonPointerEscape(const std::string &segment);

/** Serialize a string with JSON escaping (quotes included). */
std::string jsonQuote(const std::string &s);

/** Shortest-round-trip JSON number formatting ("%.17g", with
 * non-finite values mapped to null — JSON has no NaN/Inf). */
std::string jsonNumber(double v);

} // namespace hermes::util

#endif // HERMES_UTIL_JSON_HPP
