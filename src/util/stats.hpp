/**
 * @file
 * Streaming statistics and the paper's trial-aggregation protocol.
 */

#ifndef HERMES_UTIL_STATS_HPP
#define HERMES_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace hermes::util {

/**
 * Welford-style running mean/variance plus min/max. O(1) per sample,
 * numerically stable; used by the online deque-size profiler and by
 * the experiment harness.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void clear();

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 with fewer than 2 items. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * The paper's measurement protocol (Section 4.1): run `totalTrials`
 * trials, discard the first `warmupTrials`, average the rest.
 */
class TrialSet
{
  public:
    /** @param warmup_trials leading trials to discard (paper: 2). */
    explicit TrialSet(size_t warmup_trials = 2)
        : warmupTrials_(warmup_trials)
    {}

    /** Record the measurement of one trial, in arrival order. */
    void add(double value) { values_.push_back(value); }

    size_t count() const { return values_.size(); }
    size_t warmupTrials() const { return warmupTrials_; }

    /** Mean of the kept (post-warmup) trials. */
    double mean() const;

    /** Standard deviation of the kept trials. */
    double stddev() const;

    /** Number of trials that are kept (non-warmup). */
    size_t keptCount() const;

    /** All raw values, including warmup. */
    const std::vector<double> &raw() const { return values_; }

  private:
    size_t warmupTrials_;
    std::vector<double> values_;
};

/** Percentile (0..100) by linear interpolation; copies + sorts. */
double percentile(std::vector<double> values, double pct);

/** Arithmetic mean of a vector (0 for empty). */
double meanOf(const std::vector<double> &values);

/** Geometric mean of a vector of positive values (0 for empty). */
double geomeanOf(const std::vector<double> &values);

} // namespace hermes::util

#endif // HERMES_UTIL_STATS_HPP
