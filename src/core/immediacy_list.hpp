/**
 * @file
 * The immediacy list (Section 3.3, Figure 5).
 *
 * A doubly-linked list threaded through the workers via `next`/`prev`
 * indices. If w1.next == w2, worker w2 is processing work immediately
 * following w1's (w2 stole from w1, or from one of w1's descendants
 * that has since retired). The head of a chain (prev == invalid) holds
 * the most immediate work and is never slowed by workload rules.
 *
 * Implemented over dense arrays rather than pointer nodes: workers are
 * a small fixed population and the controller indexes them constantly.
 * Not internally synchronized — the tempo controller serializes
 * structural access under its own lock.
 */

#ifndef HERMES_CORE_IMMEDIACY_LIST_HPP
#define HERMES_CORE_IMMEDIACY_LIST_HPP

#include <functional>
#include <vector>

#include "core/worker_id.hpp"

namespace hermes::core {

/** Dense doubly-linked immediacy list over worker ids. */
class ImmediacyList
{
  public:
    /** All workers start unlinked. */
    explicit ImmediacyList(unsigned num_workers);

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(next_.size());
    }

    WorkerId nextOf(WorkerId w) const;
    WorkerId prevOf(WorkerId w) const;

    /** Whether `w` belongs to any chain. */
    bool linked(WorkerId w) const;

    /** Whether `w` heads a chain (has a successor but no
     * predecessor). */
    bool isHead(WorkerId w) const;

    /**
     * Insert thief `w` immediately after victim `v` (Figure 5 lines
     * 20-26). If `v` already has a thief, `w` is spliced between them
     * — the newer thief holds more immediate work (its stolen task
     * came from nearer the tail of v's deque). `w` must be unlinked.
     *
     * Note: Figure 5 line 23 reads "v.prev <- w.prev", which would
     * corrupt the victim's predecessor; the intended splice (shown in
     * the surrounding prose) is "v.next.prev <- w", which is what we
     * implement.
     */
    void insertAfter(WorkerId v, WorkerId w);

    /**
     * Remove `w` from its chain, reconnecting neighbours (Figure 5
     * lines 11-14). No-op if `w` is unlinked.
     */
    void unlink(WorkerId w);

    /**
     * Apply `fn` to every worker strictly downstream of `w`
     * (w.next, w.next.next, ...) — the immediacy-relay walk
     * (Figure 5 lines 7-10).
     */
    void forEachDownstream(WorkerId w,
                           const std::function<void(WorkerId)> &fn)
        const;

    /** Number of workers downstream of `w`. */
    unsigned downstreamCount(WorkerId w) const;

    /** Reset every worker to unlinked. */
    void clear();

    /**
     * Validate structural invariants (next/prev symmetry, no cycles);
     * panics on violation. Used by tests and debug builds.
     */
    void checkInvariants() const;

  private:
    void validate(WorkerId w) const;

    std::vector<WorkerId> next_;
    std::vector<WorkerId> prev_;
};

} // namespace hermes::core

#endif // HERMES_CORE_IMMEDIACY_LIST_HPP
