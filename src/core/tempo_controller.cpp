#include "core/tempo_controller.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hermes::core {

TempoController::TempoController(TempoConfig config,
                                 dvfs::DvfsBackend &backend,
                                 unsigned num_workers,
                                 DomainLookup domain_of)
    : config_(std::move(config)),
      ladder_(config_.ladder.has_value()
                  ? *config_.ladder
                  : platform::FrequencyLadder({1})),
      backend_(backend),
      numWorkers_(num_workers), domainOf_(std::move(domain_of)),
      list_(num_workers),
      tempo_(num_workers, 0),
      region_(num_workers, 0),
      parked_(num_workers, 0),
      profiler_(num_workers,
                ThresholdProfiler(config_.numThresholds,
                                  config_.profilerWindow))
{
    HERMES_ASSERT(config_.ladder.has_value(),
                  "TempoConfig::ladder must be resolved before "
                  "constructing a TempoController (see "
                  "platform::defaultTempoLadder)");
    HERMES_ASSERT(num_workers > 0, "need at least one worker");
    HERMES_ASSERT(domainOf_ != nullptr, "domain lookup required");
}

void
TempoController::validate(WorkerId w) const
{
    HERMES_ASSERT(w < numWorkers_, "worker " << w << " out of range");
}

void
TempoController::reset(double now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    list_.clear();
    for (WorkerId w = 0; w < numWorkers_; ++w) {
        tempo_[w] = 0;
        region_[w] = 0;
        parked_[w] = 0;
        profiler_[w] = ThresholdProfiler(config_.numThresholds,
                                         config_.profilerWindow);
        backend_.setDomainFreq(domainOf_(w), ladder_.fastest(),
                               now);
    }
    counters_ = TempoCounters{};
}

void
TempoController::setTempo(WorkerId w, platform::FreqIndex idx,
                          double now)
{
    idx = std::min(idx, slowestIndex());
    if (tempo_[w] == idx)
        return;
    tempo_[w] = idx;
    backend_.setDomainFreq(domainOf_(w), ladder_.at(idx), now);
}

void
TempoController::up(WorkerId w, double now)
{
    if (tempo_[w] > 0)
        setTempo(w, tempo_[w] - 1, now);
}

void
TempoController::down(WorkerId w, double now)
{
    setTempo(w, tempo_[w] + 1, now);
}

void
TempoController::onStealSuccess(WorkerId thief, WorkerId victim,
                                double now)
{
    validate(thief);
    validate(victim);
    HERMES_ASSERT(thief != victim, "self-steal is impossible");
    if (config_.policy == TempoPolicy::Baseline)
        return;

    std::lock_guard<std::mutex> lock(mutex_);

    // The thief starts over with an empty deque in workload terms.
    region_[thief] = 0;

    if (hasWorkpath(config_.policy)) {
        // Thief Procrastination: one tempo below the victim, then
        // splice into the immediacy list right after the victim
        // (Figure 5 lines 20-26). A thief that is still linked can
        // occur only through scheduler misuse; the out-of-work hook
        // always precedes a steal and unlinks it.
        setTempo(thief, tempo_[victim] + 1, now);
        ++counters_.stealDowns;
        list_.unlink(thief);
        list_.insertAfter(victim, thief);
    } else {
        // Workload-only (Figure 4(b)): an empty deque maps the thief
        // to the slowest workload region's tempo, K steps below
        // fastest, clamped to the usable ladder.
        const auto idx = std::min<platform::FreqIndex>(
            config_.numThresholds, slowestIndex());
        if (idx > tempo_[thief])
            ++counters_.workloadDowns;
        else if (idx < tempo_[thief])
            ++counters_.workloadUps;
        setTempo(thief, idx, now);
    }
}

void
TempoController::onOutOfWork(WorkerId w, double now)
{
    validate(w);
    if (config_.policy == TempoPolicy::Baseline)
        return;

    std::lock_guard<std::mutex> lock(mutex_);
    region_[w] = 0;
    ++counters_.outOfWorkEvents;

    if (!hasWorkpath(config_.policy))
        return;

    // Immediacy Relay: the tempo baton passes to every downstream
    // thief, one step each, preserving their relative order
    // (Figure 5 lines 7-10). Then w leaves the list (lines 11-14).
    // Re-invocations while w stays idle find next == invalid and are
    // no-ops, matching the pseudocode's loop structure.
    list_.forEachDownstream(w, [&](WorkerId t) {
        up(t, now);
        ++counters_.relayUps;
    });
    list_.unlink(w);
}

void
TempoController::reconcileWorkload(WorkerId w, size_t deque_size,
                                   double now)
{
    if (profiler_[w].addSample(deque_size)) {
        ++counters_.profilerPeriods;
        // Thresholds moved; S is re-anchored stepwise below.
    }
    const unsigned target = profiler_[w].regionOf(deque_size);
    while (region_[w] < target) {
        ++region_[w];
        up(w, now);
        ++counters_.workloadUps;
    }
    while (region_[w] > target) {
        // The single intersection of the two strategies: a worker at
        // the head of the immediacy list holds the most immediate
        // work and is never slowed by workload rules (the
        // `prev != null` condition in Algorithms 3.4/3.5). The guard
        // exists only under the unified policy; under workload-only
        // no list is maintained.
        if (config_.policy == TempoPolicy::Unified
                && list_.prevOf(w) == invalidWorker) {
            ++counters_.guardBlocks;
            break;
        }
        --region_[w];
        down(w, now);
        ++counters_.workloadDowns;
    }
}

void
TempoController::onPush(WorkerId w, size_t deque_size, double now)
{
    validate(w);
    if (!hasWorkload(config_.policy))
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    reconcileWorkload(w, deque_size, now);
}

void
TempoController::onPopSuccess(WorkerId w, size_t deque_size,
                              double now)
{
    validate(w);
    if (!hasWorkload(config_.policy))
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    reconcileWorkload(w, deque_size, now);
}

void
TempoController::onVictimStolen(WorkerId victim, size_t deque_size,
                                double now)
{
    validate(victim);
    if (!hasWorkload(config_.policy))
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    reconcileWorkload(victim, deque_size, now);
}

void
TempoController::onPark(WorkerId w, double /*now*/)
{
    validate(w);
    // Bookkeeping for every policy (including Baseline): the parked
    // state feeds power accounting and reports, not tempo decisions,
    // and by design changes no frequency (see header).
    std::lock_guard<std::mutex> lock(mutex_);
    parked_[w] = 1;
    ++counters_.parkEvents;
}

void
TempoController::onWake(WorkerId w, double /*now*/)
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    parked_[w] = 0;
    ++counters_.wakeEvents;
}

bool
TempoController::parkedOf(WorkerId w) const
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    return parked_[w] != 0;
}

platform::FreqIndex
TempoController::tempoOf(WorkerId w) const
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    return tempo_[w];
}

platform::FreqMhz
TempoController::frequencyOf(WorkerId w) const
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    return ladder_.at(tempo_[w]);
}

WorkerId
TempoController::nextOf(WorkerId w) const
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    return list_.nextOf(w);
}

WorkerId
TempoController::prevOf(WorkerId w) const
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    return list_.prevOf(w);
}

unsigned
TempoController::regionOf(WorkerId w) const
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    return region_[w];
}

std::vector<double>
TempoController::thresholdsOf(WorkerId w) const
{
    validate(w);
    std::lock_guard<std::mutex> lock(mutex_);
    return profiler_[w].thresholds();
}

TempoCounters
TempoController::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace hermes::core
