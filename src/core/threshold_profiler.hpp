/**
 * @file
 * Online workload profiling (Section 3.2).
 *
 * HERMES determines the deque-size thresholds through a lightweight
 * form of online profiling: deque sizes are sampled, the average L of
 * the last `window` samples is computed, and the thresholds for the
 * next period are
 *
 *     thld_i = (2L / (K+1)) * i,   1 <= i <= K
 *
 * (paper example: L = 15, K = 2 => thresholds {10, 20}: fastest tempo
 * for sizes >= 20, medium in [10, 20), slowest below 10).
 *
 * Before the first window completes we bootstrap with thld_i = 2i - 1,
 * i.e. {1, 3, ...}, the values used in the paper's Figure 4
 * walkthrough.
 */

#ifndef HERMES_CORE_THRESHOLD_PROFILER_HPP
#define HERMES_CORE_THRESHOLD_PROFILER_HPP

#include <cstddef>
#include <vector>

namespace hermes::core {

/** Per-worker deque-size profiler producing K thresholds. */
class ThresholdProfiler
{
  public:
    /**
     * @param num_thresholds K >= 1
     * @param window samples per recompute period (>= 1)
     */
    ThresholdProfiler(unsigned num_thresholds, size_t window);

    /**
     * Feed one deque-size observation.
     * @return true if this sample completed a window and the
     *         thresholds were just recomputed.
     */
    bool addSample(size_t deque_size);

    /** Current thresholds, ascending, size K. */
    const std::vector<double> &thresholds() const
    {
        return thresholds_;
    }

    /**
     * Region of `deque_size` under current thresholds: the number of
     * thresholds at or below the size. 0 = below all (slowest
     * region), K = at/above all (fastest region).
     */
    unsigned regionOf(size_t deque_size) const;

    unsigned numThresholds() const { return numThresholds_; }
    size_t window() const { return window_; }

    /** Average L of the last completed window (0 before one). */
    double lastAverage() const { return lastAverage_; }

    /** Completed recompute periods so far. */
    size_t periods() const { return periods_; }

  private:
    void recompute(double avg);

    unsigned numThresholds_;
    size_t window_;
    double sampleSum_ = 0.0;
    size_t sampleCount_ = 0;
    double lastAverage_ = 0.0;
    size_t periods_ = 0;
    std::vector<double> thresholds_;
};

} // namespace hermes::core

#endif // HERMES_CORE_THRESHOLD_PROFILER_HPP
