/**
 * @file
 * Worker identifiers shared by the tempo controller and both
 * execution substrates (threaded runtime and simulator).
 */

#ifndef HERMES_CORE_WORKER_ID_HPP
#define HERMES_CORE_WORKER_ID_HPP

namespace hermes::core {

/** Dense 0-based worker (thread) identifier. */
using WorkerId = unsigned;

/** Sentinel for "no worker" (list ends, unset victims). */
inline constexpr WorkerId invalidWorker = ~0u;

} // namespace hermes::core

#endif // HERMES_CORE_WORKER_ID_HPP
