/**
 * @file
 * Tempo-control policies and configuration.
 *
 * The four policies correspond to the paper's evaluation arms:
 * unmodified work stealing (Baseline), each strategy alone
 * (Figures 10-13), and the unified HERMES algorithm.
 */

#ifndef HERMES_CORE_POLICY_HPP
#define HERMES_CORE_POLICY_HPP

#include <cstddef>
#include <optional>
#include <string>

#include "platform/frequency.hpp"

namespace hermes::core {

/** Which tempo-control strategies are active. */
enum class TempoPolicy
{
    Baseline,       ///< no tempo control (plain work stealing)
    WorkpathOnly,   ///< Section 3.1 only
    WorkloadOnly,   ///< Section 3.2 only
    Unified,        ///< Section 3.3 (full HERMES)
};

/** Short name for reports ("baseline", "workpath", ...). */
std::string toString(TempoPolicy policy);

/** Parse a policy name; fatal() on unknown names. */
TempoPolicy policyFromString(const std::string &name);

/** Whether the policy includes workpath-sensitive control. */
inline bool
hasWorkpath(TempoPolicy p)
{
    return p == TempoPolicy::WorkpathOnly || p == TempoPolicy::Unified;
}

/** Whether the policy includes workload-sensitive control. */
inline bool
hasWorkload(TempoPolicy p)
{
    return p == TempoPolicy::WorkloadOnly || p == TempoPolicy::Unified;
}

/** Configuration of the tempo controller. */
struct TempoConfig
{
    TempoPolicy policy = TempoPolicy::Unified;

    /**
     * Usable frequencies, fastest first. This is the N-frequency
     * selection of Section 3.4: pass the full hardware ladder for
     * n-frequency control or a restricted subset (e.g. the 2.4/1.6 GHz
     * pair) for the paper's 2-frequency experiments. Leave unset to
     * let the execution substrate derive the paper's default pair
     * from its system profile (platform::defaultTempoLadder).
     */
    std::optional<platform::FrequencyLadder> ladder;

    /** K, the number of deque-size thresholds (Section 3.2). */
    unsigned numThresholds = 2;

    /** Samples averaged into L before thresholds are recomputed. */
    size_t profilerWindow = 64;
};

} // namespace hermes::core

#endif // HERMES_CORE_POLICY_HPP
