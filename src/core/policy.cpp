#include "core/policy.hpp"

#include "util/assert.hpp"

namespace hermes::core {

std::string
toString(TempoPolicy policy)
{
    switch (policy) {
      case TempoPolicy::Baseline:
        return "baseline";
      case TempoPolicy::WorkpathOnly:
        return "workpath";
      case TempoPolicy::WorkloadOnly:
        return "workload";
      case TempoPolicy::Unified:
        return "unified";
    }
    HERMES_PANIC("unhandled TempoPolicy value");
}

TempoPolicy
policyFromString(const std::string &name)
{
    if (name == "baseline")
        return TempoPolicy::Baseline;
    if (name == "workpath")
        return TempoPolicy::WorkpathOnly;
    if (name == "workload")
        return TempoPolicy::WorkloadOnly;
    if (name == "unified" || name == "hermes")
        return TempoPolicy::Unified;
    util::fatal("unknown tempo policy '" + name
                + "' (baseline|workpath|workload|unified)");
}

} // namespace hermes::core
