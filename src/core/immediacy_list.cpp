#include "core/immediacy_list.hpp"

#include "util/assert.hpp"

namespace hermes::core {

ImmediacyList::ImmediacyList(unsigned num_workers)
    : next_(num_workers, invalidWorker),
      prev_(num_workers, invalidWorker)
{
    HERMES_ASSERT(num_workers > 0, "need at least one worker");
}

void
ImmediacyList::validate(WorkerId w) const
{
    HERMES_ASSERT(w < next_.size(), "worker " << w << " out of range");
}

WorkerId
ImmediacyList::nextOf(WorkerId w) const
{
    validate(w);
    return next_[w];
}

WorkerId
ImmediacyList::prevOf(WorkerId w) const
{
    validate(w);
    return prev_[w];
}

bool
ImmediacyList::linked(WorkerId w) const
{
    validate(w);
    return next_[w] != invalidWorker || prev_[w] != invalidWorker;
}

bool
ImmediacyList::isHead(WorkerId w) const
{
    validate(w);
    return prev_[w] == invalidWorker && next_[w] != invalidWorker;
}

void
ImmediacyList::insertAfter(WorkerId v, WorkerId w)
{
    validate(v);
    validate(w);
    HERMES_ASSERT(v != w, "worker cannot steal from itself");
    HERMES_ASSERT(!linked(w),
                  "thief " << w << " must be unlinked before insert");

    const WorkerId old_next = next_[v];
    if (old_next != invalidWorker) {
        next_[w] = old_next;
        prev_[old_next] = w;
    }
    next_[v] = w;
    prev_[w] = v;
}

void
ImmediacyList::unlink(WorkerId w)
{
    validate(w);
    const WorkerId p = prev_[w];
    const WorkerId n = next_[w];
    if (p != invalidWorker)
        next_[p] = n;
    if (n != invalidWorker)
        prev_[n] = p;
    next_[w] = invalidWorker;
    prev_[w] = invalidWorker;
}

void
ImmediacyList::forEachDownstream(
    WorkerId w, const std::function<void(WorkerId)> &fn) const
{
    validate(w);
    unsigned guard = 0;
    for (WorkerId cur = next_[w]; cur != invalidWorker;
         cur = next_[cur]) {
        HERMES_ASSERT(++guard <= next_.size(),
                      "cycle detected in immediacy list");
        fn(cur);
    }
}

unsigned
ImmediacyList::downstreamCount(WorkerId w) const
{
    unsigned count = 0;
    forEachDownstream(w, [&](WorkerId) { ++count; });
    return count;
}

void
ImmediacyList::clear()
{
    for (auto &n : next_)
        n = invalidWorker;
    for (auto &p : prev_)
        p = invalidWorker;
}

void
ImmediacyList::checkInvariants() const
{
    for (WorkerId w = 0; w < next_.size(); ++w) {
        if (next_[w] != invalidWorker) {
            HERMES_ASSERT(next_[w] < next_.size(),
                          "dangling next pointer at worker " << w);
            HERMES_ASSERT(prev_[next_[w]] == w,
                          "next/prev asymmetry at worker " << w);
        }
        if (prev_[w] != invalidWorker) {
            HERMES_ASSERT(prev_[w] < next_.size(),
                          "dangling prev pointer at worker " << w);
            HERMES_ASSERT(next_[prev_[w]] == w,
                          "prev/next asymmetry at worker " << w);
        }
        // Cycle check: walking downstream must terminate.
        (void)downstreamCount(w);
    }
}

} // namespace hermes::core
