#include "core/threshold_profiler.hpp"

#include "util/assert.hpp"

namespace hermes::core {

ThresholdProfiler::ThresholdProfiler(unsigned num_thresholds,
                                     size_t window)
    : numThresholds_(num_thresholds), window_(window)
{
    HERMES_ASSERT(num_thresholds >= 1, "need at least one threshold");
    HERMES_ASSERT(window >= 1, "window must be at least one sample");
    // Bootstrap thresholds: {1, 3, 5, ...} as in Figure 4.
    thresholds_.reserve(numThresholds_);
    for (unsigned i = 1; i <= numThresholds_; ++i)
        thresholds_.push_back(2.0 * i - 1.0);
}

bool
ThresholdProfiler::addSample(size_t deque_size)
{
    sampleSum_ += static_cast<double>(deque_size);
    if (++sampleCount_ < window_)
        return false;
    recompute(sampleSum_ / static_cast<double>(sampleCount_));
    sampleSum_ = 0.0;
    sampleCount_ = 0;
    return true;
}

void
ThresholdProfiler::recompute(double avg)
{
    lastAverage_ = avg;
    ++periods_;
    // thld_i = (2L / (K+1)) * i. If the deques have been empty all
    // period (L == 0) keep the previous thresholds: zero thresholds
    // would pin every worker in the fastest region and disable
    // workload control entirely.
    if (avg <= 0.0)
        return;
    const double step = 2.0 * avg
        / static_cast<double>(numThresholds_ + 1);
    for (unsigned i = 0; i < numThresholds_; ++i)
        thresholds_[i] = step * static_cast<double>(i + 1);
}

unsigned
ThresholdProfiler::regionOf(size_t deque_size) const
{
    const double size = static_cast<double>(deque_size);
    unsigned region = 0;
    for (double t : thresholds_) {
        if (size >= t)
            ++region;
        else
            break;
    }
    return region;
}

} // namespace hermes::core
