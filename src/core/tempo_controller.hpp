/**
 * @file
 * The HERMES tempo controller — the paper's core contribution
 * (Figure 5), factored out of any particular scheduler.
 *
 * The controller consumes five scheduler events and drives a DVFS
 * backend:
 *
 *  - onStealSuccess(thief, victim): Thief Procrastination — the thief
 *    is set one tempo below its victim (DOWN(w, v)) and spliced into
 *    the immediacy list right after the victim (Figure 5 lines
 *    20-26).
 *  - onOutOfWork(w): Immediacy Relay — every worker downstream of w
 *    gets one tempo step up, then w is unlinked (lines 6-14).
 *  - onPush(w, size): workload control — crossing a threshold upward
 *    raises w's tempo (Algorithm 3.3).
 *  - onPopSuccess(w, size) / onVictimStolen(v, size): crossing a
 *    threshold downward lowers the tempo (Algorithms 3.4/3.5), unless
 *    the worker heads the immediacy list (`prev == null` guard, the
 *    single interaction point between the two strategies).
 *
 * Both execution substrates — the threaded runtime and the
 * discrete-event simulator — call these same hooks, so the algorithm
 * under test is literally identical code in both.
 *
 * Thread safety: all hooks serialize on one internal mutex. Steal and
 * out-of-work events are rare; push/pop events take the lock only for
 * a short region check. The `domainOf` callback is invoked under the
 * lock and must not block.
 */

#ifndef HERMES_CORE_TEMPO_CONTROLLER_HPP
#define HERMES_CORE_TEMPO_CONTROLLER_HPP

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/immediacy_list.hpp"
#include "core/policy.hpp"
#include "core/threshold_profiler.hpp"
#include "core/worker_id.hpp"
#include "dvfs/backend.hpp"
#include "platform/frequency.hpp"

namespace hermes::core {

/** Event counters for overhead analysis and tests. */
struct TempoCounters
{
    uint64_t stealDowns = 0;     ///< thief-procrastination DOWNs
    uint64_t relayUps = 0;       ///< immediacy-relay UPs
    uint64_t workloadUps = 0;    ///< threshold-crossing UPs
    uint64_t workloadDowns = 0;  ///< threshold-crossing DOWNs
    uint64_t guardBlocks = 0;    ///< downs blocked by prev==null
    uint64_t outOfWorkEvents = 0;
    uint64_t profilerPeriods = 0;
    uint64_t parkEvents = 0;     ///< workers entering the parked state
    uint64_t wakeEvents = 0;     ///< workers leaving the parked state
};

/** Figure 5's unified algorithm over an abstract DVFS backend. */
class TempoController
{
  public:
    /** Maps a worker to the clock domain currently hosting it (under
     * dynamic scheduling this changes between tasks). */
    using DomainLookup = std::function<platform::DomainId(WorkerId)>;

    /**
     * @param config policy, usable ladder (N-frequency selection,
     *        must be set — substrates resolve defaults before
     *        constructing), K, profiler window
     * @param backend DVFS sink; must outlive the controller
     * @param num_workers dense worker-id space size
     * @param domain_of worker -> clock domain lookup
     */
    TempoController(TempoConfig config, dvfs::DvfsBackend &backend,
                    unsigned num_workers, DomainLookup domain_of);

    /** Bootstrap: every worker at the fastest tempo (Section 3.2),
     * lists cleared, profilers reset. */
    void reset(double now);

    /** Hook: `thief` successfully stole from `victim` at `now`. A
     * bulk steal-half grab is still one steal event — thief
     * procrastination fires once per grab, like the single steal it
     * replaces; the surplus re-enters through onPush() as the thief
     * stocks its own deque (docs/STEALING.md). */
    void onStealSuccess(WorkerId thief, WorkerId victim, double now);

    /** Hook: `w` found its deque empty (before hunting for victims). */
    void onOutOfWork(WorkerId w, double now);

    /** Hook: `w` pushed; deque size is now `deque_size`. Fired for
     * spawned tasks and for bulk-steal surplus tasks alike, so
     * workload-threshold control sees the worker's real backlog. */
    void onPush(WorkerId w, size_t deque_size, double now);

    /** Hook: `w` popped successfully; size is now `deque_size`. */
    void onPopSuccess(WorkerId w, size_t deque_size, double now);

    /** Hook: `victim` was stolen from; size is now `deque_size`. */
    void onVictimStolen(WorkerId victim, size_t deque_size,
                        double now);

    /**
     * Hook: `w` parked (actually blocked on the runtime's lot;
     * aborted parks are not reported, keeping `parkEvents` aligned
     * with `RuntimeStats::parks`). Parking is the fifth worker state
     * the controller tracks — distinct from busy, hunting, yielding,
     * and the four deque events. It deliberately
     * changes no frequency: Section 3.4's no-frequency-change-on-
     * yield rule extends to parking (the energy saving comes from the
     * core's C-state, modeled in energy::PowerModel::parkedPower, not
     * from a P-state move), and `w` already left the immediacy list
     * through the onOutOfWork() that preceded its empty hunts.
     */
    void onPark(WorkerId w, double now);

    /** Hook: `w` returned from a blocked park (notified or
     * spurious). Tempo is untouched; the next steal/push event
     * repositions `w`. */
    void onWake(WorkerId w, double now);

    // --- introspection (tests, reports) ---

    /** Whether `w` is currently in the parked state. */
    bool parkedOf(WorkerId w) const;

    /** Current tempo of `w` as a ladder index (0 = fastest). */
    platform::FreqIndex tempoOf(WorkerId w) const;

    /** Current frequency of `w` in MHz. */
    platform::FreqMhz frequencyOf(WorkerId w) const;

    /** Immediacy-list successor / predecessor of `w`. */
    WorkerId nextOf(WorkerId w) const;
    WorkerId prevOf(WorkerId w) const;

    /** Current workload region S of `w` (0 = emptiest). */
    unsigned regionOf(WorkerId w) const;

    /** Current thresholds of `w` (ascending, size K). */
    std::vector<double> thresholdsOf(WorkerId w) const;

    TempoCounters counters() const;

    const TempoConfig &config() const { return config_; }

    /** The resolved usable ladder (N-frequency selection). */
    const platform::FrequencyLadder &ladder() const { return ladder_; }

    unsigned numWorkers() const { return numWorkers_; }

  private:
    /** Slowest usable rung (N-1 under N-frequency control). */
    platform::FreqIndex slowestIndex() const
    {
        return ladder_.size() - 1;
    }

    void validate(WorkerId w) const;

    /** Apply `idx` to `w`'s hosting domain; records nothing if the
     * tempo is unchanged. Caller holds the lock. */
    void setTempo(WorkerId w, platform::FreqIndex idx, double now);

    /** One step faster (clamped). Caller holds the lock. */
    void up(WorkerId w, double now);

    /** One step slower (clamped). Caller holds the lock. */
    void down(WorkerId w, double now);

    /**
     * Workload reconciliation: move w's region S stepwise toward the
     * region implied by `deque_size`, raising or lowering the tempo
     * one step per threshold crossed. Downward steps honour the
     * unified-policy head guard. Caller holds the lock.
     */
    void reconcileWorkload(WorkerId w, size_t deque_size, double now);

    TempoConfig config_;
    platform::FrequencyLadder ladder_;
    dvfs::DvfsBackend &backend_;
    unsigned numWorkers_;
    DomainLookup domainOf_;

    mutable std::mutex mutex_;
    ImmediacyList list_;
    std::vector<platform::FreqIndex> tempo_;
    std::vector<unsigned> region_;
    /** Parked-state flags (the fifth worker state); uint8_t because
     * vector<bool> cannot hand out independent element references. */
    std::vector<uint8_t> parked_;
    std::vector<ThresholdProfiler> profiler_;
    TempoCounters counters_;
};

} // namespace hermes::core

#endif // HERMES_CORE_TEMPO_CONTROLLER_HPP
