/**
 * @file
 * Sparse-Triangle Intersection (the paper's "Ray"): BVH construction
 * over a triangle soup and a parallel batch of first-hit queries.
 */

#ifndef HERMES_WORKLOADS_RAY_HPP
#define HERMES_WORKLOADS_RAY_HPP

#include <memory>
#include <vector>

#include "runtime/scheduler.hpp"
#include "workloads/data_gen.hpp"

namespace hermes::workloads {

/** Axis-aligned bounding box. */
struct Aabb
{
    Point3 lo{1e30, 1e30, 1e30};
    Point3 hi{-1e30, -1e30, -1e30};

    void grow(const Point3 &p);
    void grow(const Aabb &o);

    /** Slab test: does `r` hit the box before `t_max`? */
    bool hit(const RayQuery &r, double t_max) const;
};

/** Bounding-volume hierarchy over triangles. */
class Bvh
{
  public:
    /** Build over `tris` (copied); large splits parallelized. */
    Bvh(runtime::Runtime &rt, std::vector<Triangle> tris);

    /**
     * First triangle hit by `r`.
     * @return triangle index, or SIZE_MAX on miss
     */
    size_t firstHit(const RayQuery &r) const;

    size_t size() const { return tris_.size(); }

  private:
    struct Node
    {
        Aabb box;
        size_t lo = 0, hi = 0;  // leaf range into order_
        std::unique_ptr<Node> left, right;
    };

    std::unique_ptr<Node> build(runtime::Runtime &rt, size_t lo,
                                size_t hi, int depth);
    void traverse(const Node *node, const RayQuery &r, size_t &best,
                  double &best_t) const;

    std::vector<Triangle> tris_;
    std::vector<size_t> order_;
    std::vector<Point3> centroid_;
    std::unique_ptr<Node> root_;
};

/**
 * Möller-Trumbore ray/triangle intersection.
 * @return hit distance t > epsilon, or a negative value on miss
 */
double intersect(const RayQuery &r, const Triangle &t);

/** First-hit triangle index for every ray, in parallel. */
std::vector<size_t> castRays(runtime::Runtime &rt, const Bvh &bvh,
                             const std::vector<RayQuery> &rays);

} // namespace hermes::workloads

#endif // HERMES_WORKLOADS_RAY_HPP
