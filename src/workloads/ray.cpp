#include "workloads/ray.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "runtime/parallel.hpp"
#include "util/assert.hpp"

namespace hermes::workloads {

namespace {

constexpr size_t leafSize = 4;

Point3
sub(const Point3 &a, const Point3 &b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

Point3
cross(const Point3 &a, const Point3 &b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

double
dot(const Point3 &a, const Point3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

double
axisOf(const Point3 &p, int axis)
{
    return axis == 0 ? p.x : axis == 1 ? p.y : p.z;
}

} // namespace

void
Aabb::grow(const Point3 &p)
{
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y),
          std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y),
          std::max(hi.z, p.z)};
}

void
Aabb::grow(const Aabb &o)
{
    grow(o.lo);
    grow(o.hi);
}

bool
Aabb::hit(const RayQuery &r, double t_max) const
{
    double t0 = 1e-9, t1 = t_max;
    const double o[3] = {r.origin.x, r.origin.y, r.origin.z};
    const double d[3] = {r.dir.x, r.dir.y, r.dir.z};
    const double lo_[3] = {lo.x, lo.y, lo.z};
    const double hi_[3] = {hi.x, hi.y, hi.z};
    for (int a = 0; a < 3; ++a) {
        const double inv = 1.0 / d[a];
        double ta = (lo_[a] - o[a]) * inv;
        double tb = (hi_[a] - o[a]) * inv;
        if (inv < 0.0)
            std::swap(ta, tb);
        t0 = std::max(t0, ta);
        t1 = std::min(t1, tb);
        if (t1 < t0)
            return false;
    }
    return true;
}

double
intersect(const RayQuery &r, const Triangle &t)
{
    constexpr double eps = 1e-12;
    const Point3 e1 = sub(t.b, t.a);
    const Point3 e2 = sub(t.c, t.a);
    const Point3 p = cross(r.dir, e2);
    const double det = dot(e1, p);
    if (det > -eps && det < eps)
        return -1.0;
    const double inv_det = 1.0 / det;
    const Point3 s = sub(r.origin, t.a);
    const double u = dot(s, p) * inv_det;
    if (u < 0.0 || u > 1.0)
        return -1.0;
    const Point3 q = cross(s, e1);
    const double v = dot(r.dir, q) * inv_det;
    if (v < 0.0 || u + v > 1.0)
        return -1.0;
    const double dist = dot(e2, q) * inv_det;
    return dist > 1e-9 ? dist : -1.0;
}

Bvh::Bvh(runtime::Runtime &rt, std::vector<Triangle> tris)
    : tris_(std::move(tris)), order_(tris_.size()),
      centroid_(tris_.size())
{
    HERMES_ASSERT(!tris_.empty(), "BVH needs triangles");
    for (size_t i = 0; i < tris_.size(); ++i) {
        order_[i] = i;
        const Triangle &t = tris_[i];
        centroid_[i] = {(t.a.x + t.b.x + t.c.x) / 3.0,
                        (t.a.y + t.b.y + t.c.y) / 3.0,
                        (t.a.z + t.b.z + t.c.z) / 3.0};
    }
    root_ = build(rt, 0, tris_.size(), 0);
}

std::unique_ptr<Bvh::Node>
Bvh::build(runtime::Runtime &rt, size_t lo, size_t hi, int depth)
{
    auto node = std::make_unique<Node>();
    node->lo = lo;
    node->hi = hi;
    for (size_t i = lo; i < hi; ++i) {
        node->box.grow(tris_[order_[i]].a);
        node->box.grow(tris_[order_[i]].b);
        node->box.grow(tris_[order_[i]].c);
    }
    if (hi - lo <= leafSize)
        return node;

    const int axis = depth % 3;
    const size_t mid = lo + (hi - lo) / 2;
    std::nth_element(order_.begin() + static_cast<long>(lo),
                     order_.begin() + static_cast<long>(mid),
                     order_.begin() + static_cast<long>(hi),
                     [&](size_t a, size_t b) {
                         return axisOf(centroid_[a], axis)
                             < axisOf(centroid_[b], axis);
                     });

    if (hi - lo > 2048) {
        runtime::parallelInvoke(
            rt,
            [&] { node->left = build(rt, lo, mid, depth + 1); },
            [&] { node->right = build(rt, mid, hi, depth + 1); });
    } else {
        node->left = build(rt, lo, mid, depth + 1);
        node->right = build(rt, mid, hi, depth + 1);
    }
    return node;
}

void
Bvh::traverse(const Node *node, const RayQuery &r, size_t &best,
              double &best_t) const
{
    if (!node->box.hit(r, best_t))
        return;
    if (!node->left) {
        for (size_t i = node->lo; i < node->hi; ++i) {
            const double t = intersect(r, tris_[order_[i]]);
            if (t > 0.0 && t < best_t) {
                best_t = t;
                best = order_[i];
            }
        }
        return;
    }
    traverse(node->left.get(), r, best, best_t);
    traverse(node->right.get(), r, best, best_t);
}

size_t
Bvh::firstHit(const RayQuery &r) const
{
    size_t best = SIZE_MAX;
    double best_t = std::numeric_limits<double>::max();
    traverse(root_.get(), r, best, best_t);
    return best;
}

std::vector<size_t>
castRays(runtime::Runtime &rt, const Bvh &bvh,
         const std::vector<RayQuery> &rays)
{
    std::vector<size_t> hits(rays.size());
    runtime::parallelFor(rt, 0, rays.size(), 32, [&](size_t i) {
        hits[i] = bvh.firstHit(rays[i]);
    });
    return hits;
}

} // namespace hermes::workloads
