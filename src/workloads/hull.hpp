/**
 * @file
 * Convex Hull (the paper's "Hull"): parallel 2D quickhull.
 */

#ifndef HERMES_WORKLOADS_HULL_HPP
#define HERMES_WORKLOADS_HULL_HPP

#include <vector>

#include "runtime/scheduler.hpp"
#include "workloads/data_gen.hpp"

namespace hermes::workloads {

/**
 * Convex hull of `points` by parallel quickhull.
 * @return hull vertices in counter-clockwise order
 */
std::vector<Point2> convexHull(runtime::Runtime &rt,
                               const std::vector<Point2> &points);

/** Twice the signed area of triangle (a, b, c); > 0 if c is left of
 * the directed line a -> b. */
double orient(const Point2 &a, const Point2 &b, const Point2 &c);

} // namespace hermes::workloads

#endif // HERMES_WORKLOADS_HULL_HPP
