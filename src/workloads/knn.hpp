/**
 * @file
 * K-Nearest Neighbors (the paper's "KNN"): parallel kd-tree build
 * over 2D points plus a parallel batch of 1-NN queries.
 */

#ifndef HERMES_WORKLOADS_KNN_HPP
#define HERMES_WORKLOADS_KNN_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/scheduler.hpp"
#include "workloads/data_gen.hpp"

namespace hermes::workloads {

/** A kd-tree over 2D points supporting nearest-neighbor queries. */
class KdTree
{
  public:
    /** Build over `points` (copied); splits parallelized on `rt`. */
    KdTree(runtime::Runtime &rt, std::vector<Point2> points);

    /** Index (into the original vector) of the point nearest `q`. */
    size_t nearest(const Point2 &q) const;

    size_t size() const { return points_.size(); }

  private:
    struct Node
    {
        // Leaves hold [lo, hi) of indices_; internal nodes split on
        // axis at `split` with children left/right.
        size_t lo = 0, hi = 0;
        int axis = -1;            // -1 for leaf
        double split = 0.0;
        std::unique_ptr<Node> left, right;
    };

    std::unique_ptr<Node> build(runtime::Runtime &rt, size_t lo,
                                size_t hi, int depth);
    void search(const Node *node, const Point2 &q, size_t &best,
                double &best_d2) const;

    std::vector<Point2> points_;
    std::vector<size_t> indices_;  // permutation grouped by leaves
    std::unique_ptr<Node> root_;
};

/**
 * 1-NN for every query, in parallel.
 * @return per-query index of the nearest input point
 */
std::vector<size_t> nearestNeighbors(
    runtime::Runtime &rt, const KdTree &tree,
    const std::vector<Point2> &queries);

} // namespace hermes::workloads

#endif // HERMES_WORKLOADS_KNN_HPP
