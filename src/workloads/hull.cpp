#include "workloads/hull.hpp"

#include <algorithm>

#include "runtime/parallel.hpp"
#include "util/assert.hpp"

namespace hermes::workloads {

double
orient(const Point2 &a, const Point2 &b, const Point2 &c)
{
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

namespace {

/**
 * Quickhull recursion on the points of `candidates` strictly left of
 * the directed chord a -> b: find the farthest point, split, and
 * recurse in parallel. Appends hull points strictly between a and b
 * (exclusive) to `out` in CCW order.
 */
void
hullRec(runtime::Runtime &rt, const std::vector<Point2> &pts,
        std::vector<size_t> candidates, size_t a, size_t b,
        std::vector<size_t> &out)
{
    if (candidates.empty())
        return;

    // Farthest point from chord a->b (parallel reduce on big sets).
    auto farther = [&](size_t x, size_t y) {
        return orient(pts[a], pts[b], pts[x])
                >= orient(pts[a], pts[b], pts[y])
            ? x : y;
    };
    size_t far = candidates[0];
    if (candidates.size() > 8192) {
        far = runtime::parallelReduce<size_t>(
            rt, 0, candidates.size(), 2048,
            [&](size_t lo, size_t hi) {
                size_t best = candidates[lo];
                for (size_t i = lo + 1; i < hi; ++i)
                    best = farther(best, candidates[i]);
                return best;
            },
            [&](size_t x, size_t y) { return farther(x, y); });
    } else {
        for (size_t i = 1; i < candidates.size(); ++i)
            far = farther(far, candidates[i]);
    }

    // Partition the survivors: left of a->far and left of far->b.
    // Points inside the triangle (a, far, b) are discarded — the
    // work-shedding that makes quickhull's spawn tree irregular.
    std::vector<size_t> left_set, right_set;
    left_set.reserve(candidates.size() / 2);
    right_set.reserve(candidates.size() / 2);
    for (size_t i : candidates) {
        if (i == far)
            continue;
        if (orient(pts[a], pts[far], pts[i]) > 0.0)
            left_set.push_back(i);
        else if (orient(pts[far], pts[b], pts[i]) > 0.0)
            right_set.push_back(i);
    }
    candidates.clear();
    candidates.shrink_to_fit();

    std::vector<size_t> left_out, right_out;
    runtime::parallelInvoke(
        rt,
        [&] {
            hullRec(rt, pts, std::move(left_set), a, far, left_out);
        },
        [&] {
            hullRec(rt, pts, std::move(right_set), far, b,
                    right_out);
        });

    out.insert(out.end(), left_out.begin(), left_out.end());
    out.push_back(far);
    out.insert(out.end(), right_out.begin(), right_out.end());
}

} // namespace

std::vector<Point2>
convexHull(runtime::Runtime &rt, const std::vector<Point2> &points)
{
    HERMES_ASSERT(points.size() >= 3, "hull needs at least 3 points");

    // Extreme points in x (ties by y) anchor the two half hulls.
    size_t min_i = 0, max_i = 0;
    for (size_t i = 1; i < points.size(); ++i) {
        const auto &p = points[i];
        const auto &lo = points[min_i];
        const auto &hi = points[max_i];
        if (p.x < lo.x || (p.x == lo.x && p.y < lo.y))
            min_i = i;
        if (p.x > hi.x || (p.x == hi.x && p.y > hi.y))
            max_i = i;
    }

    std::vector<size_t> upper, lower;
    for (size_t i = 0; i < points.size(); ++i) {
        if (i == min_i || i == max_i)
            continue;
        const double o = orient(points[min_i], points[max_i],
                                points[i]);
        if (o > 0.0)
            upper.push_back(i);
        else if (o < 0.0)
            lower.push_back(i);
    }

    std::vector<size_t> upper_out, lower_out;
    runtime::parallelInvoke(
        rt,
        [&] {
            hullRec(rt, points, std::move(upper), min_i, max_i,
                    upper_out);
        },
        [&] {
            hullRec(rt, points, std::move(lower), max_i, min_i,
                    lower_out);
        });

    // Assembled min -> upper chain -> max -> lower chain, which
    // walks the polygon clockwise; reverse for the documented CCW
    // order.
    std::vector<Point2> hull;
    hull.reserve(upper_out.size() + lower_out.size() + 2);
    hull.push_back(points[min_i]);
    for (size_t i : upper_out)
        hull.push_back(points[i]);
    hull.push_back(points[max_i]);
    for (size_t i : lower_out)
        hull.push_back(points[i]);
    std::reverse(hull.begin(), hull.end());
    return hull;
}

} // namespace hermes::workloads
