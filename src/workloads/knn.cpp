#include "workloads/knn.hpp"

#include <algorithm>
#include <limits>

#include "runtime/parallel.hpp"
#include "util/assert.hpp"

namespace hermes::workloads {

namespace {

constexpr size_t leafSize = 16;

double
dist2(const Point2 &a, const Point2 &b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return dx * dx + dy * dy;
}

} // namespace

KdTree::KdTree(runtime::Runtime &rt, std::vector<Point2> points)
    : points_(std::move(points)), indices_(points_.size())
{
    HERMES_ASSERT(!points_.empty(), "kd-tree needs points");
    for (size_t i = 0; i < indices_.size(); ++i)
        indices_[i] = i;
    root_ = build(rt, 0, indices_.size(), 0);
}

std::unique_ptr<KdTree::Node>
KdTree::build(runtime::Runtime &rt, size_t lo, size_t hi, int depth)
{
    auto node = std::make_unique<Node>();
    node->lo = lo;
    node->hi = hi;
    if (hi - lo <= leafSize)
        return node;

    const int axis = depth % 2;
    const size_t mid = lo + (hi - lo) / 2;
    auto cmp = [&](size_t a, size_t b) {
        return axis == 0 ? points_[a].x < points_[b].x
                         : points_[a].y < points_[b].y;
    };
    std::nth_element(indices_.begin() + static_cast<long>(lo),
                     indices_.begin() + static_cast<long>(mid),
                     indices_.begin() + static_cast<long>(hi), cmp);
    node->axis = axis;
    node->split = axis == 0 ? points_[indices_[mid]].x
                            : points_[indices_[mid]].y;

    // Large subtrees build in parallel; small ones inline to keep
    // task grains above the scheduler overhead.
    if (hi - lo > 4096) {
        runtime::parallelInvoke(
            rt,
            [&] { node->left = build(rt, lo, mid, depth + 1); },
            [&] { node->right = build(rt, mid, hi, depth + 1); });
    } else {
        node->left = build(rt, lo, mid, depth + 1);
        node->right = build(rt, mid, hi, depth + 1);
    }
    return node;
}

void
KdTree::search(const Node *node, const Point2 &q, size_t &best,
               double &best_d2) const
{
    if (node->axis < 0) {
        for (size_t i = node->lo; i < node->hi; ++i) {
            const double d2 = dist2(points_[indices_[i]], q);
            if (d2 < best_d2) {
                best_d2 = d2;
                best = indices_[i];
            }
        }
        return;
    }
    const double qv = node->axis == 0 ? q.x : q.y;
    const Node *near = qv < node->split ? node->left.get()
                                        : node->right.get();
    const Node *far = qv < node->split ? node->right.get()
                                       : node->left.get();
    search(near, q, best, best_d2);
    const double plane = qv - node->split;
    if (plane * plane < best_d2)
        search(far, q, best, best_d2);
}

size_t
KdTree::nearest(const Point2 &q) const
{
    size_t best = indices_[0];
    double best_d2 = std::numeric_limits<double>::max();
    search(root_.get(), q, best, best_d2);
    return best;
}

std::vector<size_t>
nearestNeighbors(runtime::Runtime &rt, const KdTree &tree,
                 const std::vector<Point2> &queries)
{
    std::vector<size_t> result(queries.size());
    runtime::parallelFor(rt, 0, queries.size(), 64, [&](size_t i) {
        result[i] = tree.nearest(queries[i]);
    });
    return result;
}

} // namespace hermes::workloads
