/**
 * @file
 * Comparison Sort (the paper's "Compare"): parallel sample sort —
 * sample pivots, classify and scatter keys into buckets in parallel,
 * then sort each bucket sequentially inside a parallel loop (the
 * PBBS sampleSort structure).
 */

#ifndef HERMES_WORKLOADS_SORT_SAMPLE_HPP
#define HERMES_WORKLOADS_SORT_SAMPLE_HPP

#include <cstdint>
#include <vector>

#include "runtime/scheduler.hpp"

namespace hermes::workloads {

/** Sort `keys` ascending by parallel sample sort. */
void sampleSort(runtime::Runtime &rt, std::vector<uint32_t> &keys);

} // namespace hermes::workloads

#endif // HERMES_WORKLOADS_SORT_SAMPLE_HPP
