/**
 * @file
 * Name-based access to the five workloads for examples and
 * micro-benches: each runner generates its own input of roughly
 * `scale` elements, executes on the runtime, and returns a checksum
 * so callers can verify determinism.
 */

#ifndef HERMES_WORKLOADS_REGISTRY_HPP
#define HERMES_WORKLOADS_REGISTRY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"

namespace hermes::workloads {

/** Names in the paper's order: knn, ray, sort, compare, hull. */
const std::vector<std::string> &workloadNames();

/**
 * Run workload `name` end to end.
 *
 * @param rt executing runtime
 * @param name one of workloadNames()
 * @param scale approximate input size in elements
 * @param seed input generator seed
 * @return implementation-defined checksum (stable per inputs)
 */
uint64_t runWorkload(runtime::Runtime &rt, const std::string &name,
                     size_t scale, uint64_t seed);

} // namespace hermes::workloads

#endif // HERMES_WORKLOADS_REGISTRY_HPP
