#include "workloads/sort_radix.hpp"

#include <array>

#include "runtime/parallel.hpp"

namespace hermes::workloads {

namespace {

constexpr unsigned radixBits = 8;
constexpr size_t buckets = 1u << radixBits;

} // namespace

void
radixSort(runtime::Runtime &rt, std::vector<uint32_t> &keys)
{
    const size_t n = keys.size();
    if (n < 2)
        return;

    std::vector<uint32_t> buffer(n);
    uint32_t *src = keys.data();
    uint32_t *dst = buffer.data();

    // Enough blocks to keep every worker fed several times over.
    const size_t blocks =
        std::max<size_t>(1, std::min<size_t>(rt.numWorkers() * 8,
                                             n / 1024 + 1));
    const size_t block_len = (n + blocks - 1) / blocks;

    // counts[b * buckets + d]: digit-d keys in block b.
    std::vector<size_t> counts(blocks * buckets);

    for (unsigned pass = 0; pass < 32 / radixBits; ++pass) {
        const unsigned shift = pass * radixBits;

        // Phase 1: per-block digit histograms, in parallel.
        runtime::parallelFor(rt, 0, blocks, 1, [&](size_t b) {
            size_t *mine = &counts[b * buckets];
            std::fill(mine, mine + buckets, 0);
            const size_t lo = b * block_len;
            const size_t hi = std::min(n, lo + block_len);
            for (size_t i = lo; i < hi; ++i)
                ++mine[(src[i] >> shift) & (buckets - 1)];
        });

        // Phase 2: exclusive scan in digit-major order so equal
        // digits keep block order (stability). The matrix is small;
        // scanning it serially is the PBBS approach too.
        size_t running = 0;
        for (size_t d = 0; d < buckets; ++d) {
            for (size_t b = 0; b < blocks; ++b) {
                const size_t c = counts[b * buckets + d];
                counts[b * buckets + d] = running;
                running += c;
            }
        }

        // Phase 3: parallel scatter using each block's offsets.
        runtime::parallelFor(rt, 0, blocks, 1, [&](size_t b) {
            std::array<size_t, buckets> offset;
            for (size_t d = 0; d < buckets; ++d)
                offset[d] = counts[b * buckets + d];
            const size_t lo = b * block_len;
            const size_t hi = std::min(n, lo + block_len);
            for (size_t i = lo; i < hi; ++i) {
                const auto d = (src[i] >> shift) & (buckets - 1);
                dst[offset[d]++] = src[i];
            }
        });

        std::swap(src, dst);
    }

    // 4 passes of 8 bits: data ends back in `keys` (even swaps).
    if (src != keys.data())
        std::copy(src, src + n, keys.data());
}

} // namespace hermes::workloads
