#include "workloads/registry.hpp"

#include "util/assert.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/hull.hpp"
#include "workloads/knn.hpp"
#include "workloads/ray.hpp"
#include "workloads/sort_radix.hpp"
#include "workloads/sort_sample.hpp"

namespace hermes::workloads {

namespace {

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "knn", "ray", "sort", "compare", "hull",
    };
    return names;
}

uint64_t
runWorkload(runtime::Runtime &rt, const std::string &name,
            size_t scale, uint64_t seed)
{
    uint64_t checksum = 0;
    if (name == "sort") {
        auto keys = randomKeys(scale, seed);
        radixSort(rt, keys);
        for (size_t i = 0; i < keys.size();
             i += std::max<size_t>(1, keys.size() / 64))
            checksum = mix(checksum, keys[i]);
    } else if (name == "compare") {
        auto keys = randomKeys(scale, seed);
        sampleSort(rt, keys);
        for (size_t i = 0; i < keys.size();
             i += std::max<size_t>(1, keys.size() / 64))
            checksum = mix(checksum, keys[i]);
    } else if (name == "knn") {
        auto pts = randomPoints2(scale, seed);
        auto queries = randomPoints2(scale / 4 + 16, seed ^ 0xabcd);
        KdTree tree(rt, pts);
        auto nn = nearestNeighbors(rt, tree, queries);
        for (size_t i = 0; i < nn.size();
             i += std::max<size_t>(1, nn.size() / 64))
            checksum = mix(checksum, nn[i]);
    } else if (name == "ray") {
        auto tris = randomTriangles(scale / 8 + 64, seed);
        auto rays = randomRays(scale / 4 + 64, seed ^ 0x1234);
        Bvh bvh(rt, tris);
        auto hits = castRays(rt, bvh, rays);
        for (size_t i = 0; i < hits.size();
             i += std::max<size_t>(1, hits.size() / 64))
            checksum = mix(checksum, hits[i]);
    } else if (name == "hull") {
        auto pts = randomPoints2(scale, seed);
        auto hull = convexHull(rt, pts);
        checksum = mix(checksum, hull.size());
        for (const auto &p : hull) {
            checksum = mix(checksum,
                           static_cast<uint64_t>(p.x * 1e9));
        }
    } else {
        util::fatal("unknown workload '" + name
                    + "' (knn|ray|sort|compare|hull)");
    }
    return checksum;
}

} // namespace hermes::workloads
