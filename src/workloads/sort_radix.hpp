/**
 * @file
 * Integer Sort (the paper's "Sort"): parallel LSD radix sort, the
 * PBBS integerSort shape — per-pass parallel block histograms, a
 * sequential scan over the (small) count matrix, and a parallel
 * scatter.
 */

#ifndef HERMES_WORKLOADS_SORT_RADIX_HPP
#define HERMES_WORKLOADS_SORT_RADIX_HPP

#include <cstdint>
#include <vector>

#include "runtime/scheduler.hpp"

namespace hermes::workloads {

/**
 * Sort `keys` ascending with 4 passes of 8-bit LSD radix.
 *
 * @param rt runtime executing the parallel phases
 * @param keys sorted in place
 */
void radixSort(runtime::Runtime &rt, std::vector<uint32_t> &keys);

} // namespace hermes::workloads

#endif // HERMES_WORKLOADS_SORT_RADIX_HPP
