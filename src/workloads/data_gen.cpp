#include "workloads/data_gen.hpp"

#include "util/rng.hpp"

namespace hermes::workloads {

std::vector<uint32_t>
randomKeys(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint32_t> keys(n);
    for (auto &k : keys)
        k = static_cast<uint32_t>(rng());
    return keys;
}

std::vector<Point2>
randomPoints2(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Point2> pts(n);
    for (auto &p : pts)
        p = {rng.uniform(), rng.uniform()};
    return pts;
}

std::vector<Point3>
randomPoints3(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Point3> pts(n);
    for (auto &p : pts)
        p = {rng.uniform(), rng.uniform(), rng.uniform()};
    return pts;
}

std::vector<Triangle>
randomTriangles(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Triangle> tris(n);
    for (auto &t : tris) {
        const Point3 base{rng.uniform(), rng.uniform(),
                          rng.uniform()};
        auto jitter = [&] {
            return rng.uniform(-0.05, 0.05);
        };
        t.a = base;
        t.b = {base.x + jitter(), base.y + jitter(),
               base.z + jitter()};
        t.c = {base.x + jitter(), base.y + jitter(),
               base.z + jitter()};
    }
    return tris;
}

std::vector<RayQuery>
randomRays(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<RayQuery> rays(n);
    for (auto &r : rays) {
        r.origin = {rng.uniform(), rng.uniform(), -1.0};
        // Aim into the cube with slight angular spread.
        r.dir = {rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2),
                 1.0};
    }
    return rays;
}

} // namespace hermes::workloads
