#include "workloads/sort_sample.hpp"

#include <algorithm>

#include "runtime/parallel.hpp"
#include "util/rng.hpp"

namespace hermes::workloads {

void
sampleSort(runtime::Runtime &rt, std::vector<uint32_t> &keys)
{
    const size_t n = keys.size();
    if (n < 4096) {
        std::sort(keys.begin(), keys.end());
        return;
    }

    const size_t num_buckets =
        std::max<size_t>(2, std::min<size_t>(rt.numWorkers() * 8,
                                             n / 4096));

    // --- sample and choose pivots (oversampling factor 8) ---
    util::Rng rng(0x5a5a5a5aULL ^ n);
    std::vector<uint32_t> sample(num_buckets * 8);
    for (auto &s : sample)
        s = keys[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(n) - 1))];
    std::sort(sample.begin(), sample.end());
    std::vector<uint32_t> pivots(num_buckets - 1);
    for (size_t i = 0; i + 1 < num_buckets; ++i)
        pivots[i] = sample[(i + 1) * sample.size() / num_buckets];

    auto bucket_of = [&](uint32_t key) {
        return static_cast<size_t>(
            std::upper_bound(pivots.begin(), pivots.end(), key)
            - pivots.begin());
    };

    // --- parallel classify: per-block bucket counts ---
    const size_t blocks =
        std::max<size_t>(1, std::min<size_t>(rt.numWorkers() * 8,
                                             n / 2048 + 1));
    const size_t block_len = (n + blocks - 1) / blocks;
    std::vector<size_t> counts(blocks * num_buckets, 0);

    runtime::parallelFor(rt, 0, blocks, 1, [&](size_t b) {
        size_t *mine = &counts[b * num_buckets];
        const size_t lo = b * block_len;
        const size_t hi = std::min(n, lo + block_len);
        for (size_t i = lo; i < hi; ++i)
            ++mine[bucket_of(keys[i])];
    });

    // --- exclusive scan (bucket-major for stability) ---
    std::vector<size_t> bucket_start(num_buckets + 1, 0);
    {
        size_t running = 0;
        for (size_t d = 0; d < num_buckets; ++d) {
            bucket_start[d] = running;
            for (size_t b = 0; b < blocks; ++b) {
                const size_t c = counts[b * num_buckets + d];
                counts[b * num_buckets + d] = running;
                running += c;
            }
        }
        bucket_start[num_buckets] = running;
    }

    // --- parallel scatter into bucket regions ---
    std::vector<uint32_t> scratch(n);
    runtime::parallelFor(rt, 0, blocks, 1, [&](size_t b) {
        std::vector<size_t> offset(
            counts.begin()
                + static_cast<long>(b * num_buckets),
            counts.begin()
                + static_cast<long>((b + 1) * num_buckets));
        const size_t lo = b * block_len;
        const size_t hi = std::min(n, lo + block_len);
        for (size_t i = lo; i < hi; ++i)
            scratch[offset[bucket_of(keys[i])]++] = keys[i];
    });

    // --- sort each bucket sequentially, buckets in parallel ---
    runtime::parallelFor(rt, 0, num_buckets, 1, [&](size_t d) {
        std::sort(scratch.begin()
                      + static_cast<long>(bucket_start[d]),
                  scratch.begin()
                      + static_cast<long>(bucket_start[d + 1]));
    });

    keys.swap(scratch);
}

} // namespace hermes::workloads
