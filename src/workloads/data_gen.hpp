/**
 * @file
 * Deterministic input generators for the PBBS-style workloads.
 */

#ifndef HERMES_WORKLOADS_DATA_GEN_HPP
#define HERMES_WORKLOADS_DATA_GEN_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hermes::workloads {

using std::size_t;

/** 2D point. */
struct Point2
{
    double x, y;
};

/** 3D point / vector. */
struct Point3
{
    double x, y, z;
};

/** Triangle in 3-space. */
struct Triangle
{
    Point3 a, b, c;
};

/** A query ray (origin + unit-ish direction). */
struct RayQuery
{
    Point3 origin, dir;
};

/** `n` uniform 32-bit keys. */
std::vector<uint32_t> randomKeys(size_t n, uint64_t seed);

/** `n` points uniform in the unit square. */
std::vector<Point2> randomPoints2(size_t n, uint64_t seed);

/** `n` points uniform in the unit cube. */
std::vector<Point3> randomPoints3(size_t n, uint64_t seed);

/** `n` small triangles scattered in the unit cube. */
std::vector<Triangle> randomTriangles(size_t n, uint64_t seed);

/** `n` rays from z < 0 shooting into the unit cube. */
std::vector<RayQuery> randomRays(size_t n, uint64_t seed);

} // namespace hermes::workloads

#endif // HERMES_WORKLOADS_DATA_GEN_HPP
