/**
 * @file
 * Discrete-event simulator of a tempo-enabled work-stealing runtime.
 *
 * This is the experimental substrate that replaces the paper's
 * hardware testbed (PAPER.md): task work drains at the hosting
 * core's *current* frequency, so the TempoController's DVFS decisions
 * change both makespan and integrated energy — the two quantities
 * every figure in the evaluation reports.
 *
 * Faithfulness notes:
 *  - Scheduling is exact work-first Cilk: at a spawn point the worker
 *    pushes the continuation of the current frame onto its own deque
 *    and dives into the child; thieves steal continuations from deque
 *    heads; a frame's sync releases when its last child returns, and
 *    the completing worker resumes any post-sync sequel.
 *  - The TempoController and its hook protocol are the *same code*
 *    the threaded runtime uses (Figure 5's highlighted lines).
 *  - DVFS requests take effect after the profile's transition latency
 *    and cost the issuing worker dvfsCallCostSec each; dynamic
 *    scheduling pays two affinity costs per WORK invocation; idle
 *    workers poll with capped exponential backoff and are woken by
 *    pushes — the overheads Section 3.4 enumerates.
 *  - Energy is integrated exactly over per-core piecewise (frequency,
 *    activity) state, and optionally re-sampled at 100 Hz like the
 *    paper's DAQ.
 *
 * Runs are deterministic given (dag, config.seed).
 */

#ifndef HERMES_SIM_SIMULATOR_HPP
#define HERMES_SIM_SIMULATOR_HPP

#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "core/tempo_controller.hpp"
#include "dvfs/backend.hpp"
#include "energy/ledger.hpp"
#include "sim/dag.hpp"
#include "sim/sim_config.hpp"
#include "util/rng.hpp"

namespace hermes::sim {

/** One-shot simulator: construct, run(), read the result. */
class Simulator
{
  public:
    /**
     * @param dag computation to execute (borrowed; must outlive run)
     * @param config platform, policy, and overhead model
     */
    Simulator(const Dag &dag, SimConfig config);

    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Execute to completion and return the measurements. */
    SimResult run();

    /** Tempo controller (nullptr when tempo is disabled). */
    const core::TempoController *tempo() const
    {
        return tempo_.get();
    }

  private:
    /** A deque item: resume `frame` at `cursor` with `nextSpawn`. */
    struct Continuation
    {
        FrameId frame = invalidFrame;
        double cursor = 0.0;
        size_t nextSpawn = 0;
    };

    enum class EventKind { SegmentEnd, StealRetry, DvfsApply };

    struct Event
    {
        double time;
        uint64_t seq;      // FIFO tie-break for determinism
        EventKind kind;
        unsigned worker;   // SegmentEnd / StealRetry
        uint64_t epoch;    // guards stale worker events
        platform::DomainId domain;  // DvfsApply
        platform::FreqMhz freqMhz;  // DvfsApply
    };

    struct EventAfter
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    struct WorkerSim
    {
        std::deque<Continuation> deque;
        bool busy = false;
        Continuation current;
        double segStart = 0.0;       // current segment began here
        double rateAtSeg = 0.0;      // cycles/sec during segment
        double stopCycles = 0.0;     // cursor value ending segment
        uint64_t epoch = 0;
        double backoff = 0.0;
        bool idleLedger = true;      // ledger thinks core is idle
        platform::CoreId core = 0;
    };

    struct FrameState
    {
        uint32_t outstanding = 1;  // own work + spawned children
        bool started = false;
    };

    /** DvfsBackend that routes requests into simulator events. */
    class Backend;

    void push(Event ev);
    void schedule(double t, EventKind kind, unsigned w);

    double rateOf(unsigned w) const;
    void markActive(unsigned w, double t);
    void markIdle(unsigned w, double t);

    void startSegment(unsigned w, double t);
    void onSegmentEnd(unsigned w, double t);
    void workerFree(unsigned w, double t);
    void attemptSteal(unsigned w, double t, double extra_cost);

    /** Begin executing `c`: active from `t`, first segment delayed
     * by `extra_cost` (steal/DVFS/affinity tolls). */
    void startAcquired(unsigned w, const Continuation &c, double t,
                       double extra_cost);
    bool completeFrame(FrameId f, unsigned w, double t);
    void maybeWake(double t);
    void onFreqRequest(platform::DomainId domain,
                       platform::FreqMhz freq, double now);
    void applyFreq(platform::DomainId domain, platform::FreqMhz freq,
                   double t);

    /** DVFS-call cost accrued by hooks since the last reap. */
    double reapDvfsCost();

    const Dag &dag_;
    SimConfig config_;
    platform::FrequencyLadder usableLadder_;

    std::unique_ptr<Backend> backend_;
    std::unique_ptr<core::TempoController> tempo_;
    std::unique_ptr<energy::EnergyLedger> ledger_;

    std::vector<WorkerSim> workers_;
    std::vector<FrameState> frames_;
    std::vector<platform::FreqMhz> appliedFreq_;  // per domain
    std::vector<unsigned> domainWorker_;  // domain -> worker or ~0u

    std::priority_queue<Event, std::vector<Event>, EventAfter>
        events_;
    uint64_t eventSeq_ = 0;
    uint64_t dvfsCallsPending_ = 0;

    /** Credit busy time [ws.segStart, t] at the rung hosting `w`. */
    void accrueBusy(unsigned w, double t);

    size_t completedFrames_ = 0;
    bool done_ = false;
    double endTime_ = 0.0;
    std::vector<double> busySecondsAtRung_;

    util::Rng rng_;
    SimStats stats_;
};

/** Convenience: build, run, and return the result in one call. */
SimResult simulate(const Dag &dag, const SimConfig &config);

} // namespace hermes::sim

#endif // HERMES_SIM_SIMULATOR_HPP
