/**
 * @file
 * Benchmark-shaped DAG generators.
 *
 * The paper evaluates five PBBS benchmarks. Their full algorithmic
 * implementations live in hermes::workloads and run on the threaded
 * runtime; for the simulator we generate spawn DAGs mirroring each
 * benchmark's *structure* — fan-out shape, phase sequence, and grain
 * distribution — which is what determines steal patterns, deque
 * depths, and therefore tempo behaviour:
 *
 *  - knn:     balanced top-heavy kd-tree build, then a wide flat
 *             query loop (deep deques, uniform small grains)
 *  - ray:     one flat loop with heavy-tailed (Pareto) packet costs
 *             (irregular; steal-rich)
 *  - sort:    four sequential radix passes of balanced block loops
 *             (phase barriers; repeated ramp-up/drain)
 *  - compare: sample + scatter phases, then skewed (lognormal)
 *             bucket sorts of quicksort shape
 *  - hull:    quickhull recursion with random splits and point
 *             discarding (unbalanced, shrinking work)
 *
 * Work amounts are in cycles, anchored so each benchmark's serial
 * running time T1 at `fmaxMhz` is roughly a second — comparable to
 * the paper's inputs while keeping simulated trials fast.
 */

#ifndef HERMES_SIM_DAG_GENERATORS_HPP
#define HERMES_SIM_DAG_GENERATORS_HPP

#include <string>
#include <vector>

#include "platform/frequency.hpp"
#include "sim/dag.hpp"

namespace hermes::sim {

/** Parameters shared by all generators. */
struct WorkloadParams
{
    /** Multiplies every benchmark's total work. */
    double scale = 1.0;

    /** Generator RNG seed (grain jitter, splits, tails). */
    uint64_t seed = 42;

    /** Frequency anchoring grain sizes in cycles (the system's
     * fastest rung; 1 MHz * 1 us == 1 cycle). */
    platform::FreqMhz fmaxMhz = 2400;
};

/** K-Nearest Neighbors: kd-tree build phase + query loop. */
Dag makeKnn(const WorkloadParams &params);

/** Sparse-Triangle Intersection: heavy-tailed ray-packet loop. */
Dag makeRay(const WorkloadParams &params);

/** Integer Sort: four sequential balanced radix passes. */
Dag makeSort(const WorkloadParams &params);

/** Comparison Sort: sample/scatter phases + skewed bucket sorts. */
Dag makeCompare(const WorkloadParams &params);

/** Convex Hull: irregular quickhull recursion. */
Dag makeHull(const WorkloadParams &params);

/** The paper's benchmark names, in its figure order. */
const std::vector<std::string> &benchmarkNames();

/** Dispatch by name ("knn", "ray", "sort", "compare", "hull"). */
Dag makeBenchmark(const std::string &name,
                  const WorkloadParams &params);

} // namespace hermes::sim

#endif // HERMES_SIM_DAG_GENERATORS_HPP
