#include "sim/dag.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hermes::sim {

Dag::Dag(std::vector<Frame> frames, FrameId root)
    : frames_(std::move(frames)), root_(root)
{
    HERMES_ASSERT(!frames_.empty(), "DAG needs at least one frame");
    HERMES_ASSERT(root_ < frames_.size(), "root out of range");

    for (FrameId f = 0; f < frames_.size(); ++f) {
        const Frame &fr = frames_[f];
        HERMES_ASSERT(fr.ownCycles > 0.0,
                      "frame " << f << " has non-positive work");
        double prev = 0.0;
        for (const SpawnPoint &sp : fr.spawns) {
            HERMES_ASSERT(sp.child < frames_.size(),
                          "spawned child out of range in frame "
                          << f);
            HERMES_ASSERT(frames_[sp.child].parent == f,
                          "child " << sp.child
                          << " parent link mismatch");
            HERMES_ASSERT(sp.offsetCycles > prev,
                          "spawn offsets must be strictly ascending "
                          "in frame " << f);
            HERMES_ASSERT(sp.offsetCycles < fr.ownCycles,
                          "spawn offset beyond frame work in frame "
                          << f);
            prev = sp.offsetCycles;
        }
        if (fr.sequel != invalidFrame) {
            HERMES_ASSERT(fr.sequel < frames_.size(),
                          "sequel out of range in frame " << f);
            HERMES_ASSERT(frames_[fr.sequel].parent == fr.parent,
                          "sequel " << fr.sequel
                          << " must inherit the join parent of "
                          << f);
        }
        totalCycles_ += fr.ownCycles;
        if (fr.spawns.empty())
            ++leafCount_;
    }

    std::vector<double> memo(frames_.size(), -1.0);
    criticalPath_ = completionCycles(root_, memo);
}

double
Dag::completionCycles(FrameId f, std::vector<double> &memo) const
{
    if (memo[f] >= 0.0)
        return memo[f];
    const Frame &fr = frames_[f];
    // Sync time: own serial work, or the last child to come home.
    double sync = fr.ownCycles;
    for (const SpawnPoint &sp : fr.spawns) {
        sync = std::max(sync, sp.offsetCycles
                                  + completionCycles(sp.child, memo));
    }
    // The sequel starts only after the sync completes.
    double total = sync;
    if (fr.sequel != invalidFrame)
        total += completionCycles(fr.sequel, memo);
    memo[f] = total;
    return total;
}

FrameId
DagBuilder::newFrame(double own_cycles, double mem_fraction)
{
    HERMES_ASSERT(own_cycles > 0.0, "frame work must be positive");
    HERMES_ASSERT(mem_fraction >= 0.0 && mem_fraction < 1.0,
                  "memory fraction must be in [0, 1)");
    frames_.push_back(Frame{own_cycles, {}, invalidFrame,
                            invalidFrame, mem_fraction});
    isSequel_.push_back(false);
    return static_cast<FrameId>(frames_.size() - 1);
}

void
DagBuilder::spawn(FrameId parent, double offset_cycles, FrameId child)
{
    HERMES_ASSERT(parent < frames_.size(), "parent out of range");
    HERMES_ASSERT(child < frames_.size(), "child out of range");
    HERMES_ASSERT(parent != child, "frame cannot spawn itself");
    HERMES_ASSERT(frames_[child].parent == invalidFrame,
                  "child " << child << " already has a parent");
    HERMES_ASSERT(!isSequel_[child],
                  "frame " << child
                  << " is a sequel target and cannot be spawned");
    frames_[child].parent = parent;
    // The child may already carry a sequel chain (generators often
    // build a frame's phases before spawning it); every frame of the
    // chain notifies the same join parent when the chain ends.
    for (FrameId s = frames_[child].sequel; s != invalidFrame;
         s = frames_[s].sequel)
        frames_[s].parent = parent;
    frames_[parent].spawns.push_back(SpawnPoint{offset_cycles, child});
}

void
DagBuilder::sequel(FrameId frame, FrameId next)
{
    HERMES_ASSERT(frame < frames_.size(), "frame out of range");
    HERMES_ASSERT(next < frames_.size(), "sequel out of range");
    HERMES_ASSERT(frame != next, "frame cannot be its own sequel");
    HERMES_ASSERT(frames_[frame].sequel == invalidFrame,
                  "frame " << frame << " already has a sequel");
    HERMES_ASSERT(frames_[next].parent == invalidFrame,
                  "sequel " << next
                  << " must not be spawned elsewhere");
    HERMES_ASSERT(!isSequel_[next],
                  "frame " << next << " is already a sequel");
    frames_[frame].sequel = next;
    frames_[next].parent = frames_[frame].parent;
    isSequel_[next] = true;
}

Dag
DagBuilder::build(FrameId root)
{
    return Dag(std::move(frames_), root);
}

} // namespace hermes::sim
