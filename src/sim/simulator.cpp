#include "sim/simulator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hermes::sim {

/**
 * DVFS backend whose requests become simulator events: the requested
 * frequency is visible to the controller immediately (it reads its
 * own intent), while the physical effect lands after the transition
 * latency via a DvfsApply event.
 */
class Simulator::Backend : public dvfs::DvfsBackend
{
  public:
    Backend(Simulator &sim, unsigned num_domains,
            platform::FreqMhz f0)
        : sim_(sim), freq_(num_domains, f0)
    {}

    unsigned
    numDomains() const override
    {
        return static_cast<unsigned>(freq_.size());
    }

    platform::FreqMhz
    domainFreq(platform::DomainId domain) const override
    {
        HERMES_ASSERT(domain < freq_.size(), "domain out of range");
        return freq_[domain];
    }

    void
    setDomainFreq(platform::DomainId domain, platform::FreqMhz f,
                  double now) override
    {
        HERMES_ASSERT(domain < freq_.size(), "domain out of range");
        if (freq_[domain] == f)
            return;
        freq_[domain] = f;
        sim_.onFreqRequest(domain, f, now);
    }

  private:
    Simulator &sim_;
    std::vector<platform::FreqMhz> freq_;  // requested (intent)
};

Simulator::Simulator(const Dag &dag, SimConfig config)
    : dag_(dag), config_(std::move(config)),
      usableLadder_(config_.profile.ladder), rng_(config_.seed)
{
    const auto &topo = config_.profile.topology;
    HERMES_ASSERT(config_.numWorkers >= 1, "need at least one worker");
    HERMES_ASSERT(config_.numWorkers <= 64,
                  "simulator supports at most 64 workers");
    if (config_.numWorkers > topo.numDomains()) {
        util::fatal("simulator places one worker per clock domain; "
                    + std::to_string(config_.numWorkers)
                    + " workers exceed "
                    + std::to_string(topo.numDomains())
                    + " domains on " + config_.profile.name);
    }

    workers_.resize(config_.numWorkers);
    const auto cores = topo.distinctDomainCores(config_.numWorkers);
    domainWorker_.assign(topo.numDomains(), ~0u);
    for (unsigned w = 0; w < config_.numWorkers; ++w) {
        workers_[w].core = cores[w];
        domainWorker_[topo.domainOf(cores[w])] = w;
    }

    appliedFreq_.assign(topo.numDomains(),
                        config_.profile.ladder.fastest());

    backend_ = std::make_unique<Backend>(*this, topo.numDomains(),
                                         config_.profile.ladder
                                             .fastest());

    if (config_.enableTempo) {
        if (!config_.tempo.ladder.has_value()) {
            config_.tempo.ladder =
                platform::defaultTempoLadder(config_.profile);
        }
        for (auto f : config_.tempo.ladder->rungs()) {
            if (!config_.profile.ladder.contains(f)) {
                util::fatal(
                    "tempo ladder rung " + std::to_string(f)
                    + " MHz is not supported by profile "
                    + config_.profile.name);
            }
        }
        usableLadder_ = *config_.tempo.ladder;
        tempo_ = std::make_unique<core::TempoController>(
            config_.tempo, *backend_, config_.numWorkers,
            [this, topo](core::WorkerId w) {
                return topo.domainOf(workers_[w].core);
            });
    }

    frames_.assign(dag_.frameCount(), FrameState{});
    busySecondsAtRung_.assign(config_.profile.ladder.size(), 0.0);
}

Simulator::~Simulator() = default;

void
Simulator::push(Event ev)
{
    ev.seq = eventSeq_++;
    events_.push(ev);
}

void
Simulator::schedule(double t, EventKind kind, unsigned w)
{
    Event ev{};
    ev.time = t;
    ev.kind = kind;
    ev.worker = w;
    ev.epoch = workers_[w].epoch;
    push(ev);
}

double
Simulator::rateOf(unsigned w) const
{
    const auto &topo = config_.profile.topology;
    const auto f = appliedFreq_[topo.domainOf(workers_[w].core)];
    const double f_hz = static_cast<double>(f) * 1e6;
    const double fmax_hz =
        static_cast<double>(config_.profile.ladder.fastest()) * 1e6;

    // Frame work is denominated in cycles at f_max. The compute
    // share scales with 1/f; the memory-stall share is frequency-
    // invariant (DRAM does not care about the core's P-state), so
    //   time = W * ((1-m)/f + m/f_max)  =>  rate = 1/(...).
    const auto &ws = workers_[w];
    double m = 0.0;
    if (ws.current.frame != invalidFrame)
        m = dag_.frame(ws.current.frame).memFraction;
    return 1.0 / ((1.0 - m) / f_hz + m / fmax_hz);
}

void
Simulator::markActive(unsigned w, double t)
{
    if (!workers_[w].idleLedger)
        return;
    workers_[w].idleLedger = false;
    ledger_->setCoreActivity(workers_[w].core, t,
                             energy::CoreActivity::Active);
}

void
Simulator::markIdle(unsigned w, double t)
{
    if (workers_[w].idleLedger)
        return;
    workers_[w].idleLedger = true;
    // A work-hunting worker spins in the steal loop at its current
    // tempo; it does not park (YIELD is uncommon, Section 3.4). The
    // baseline therefore spins its idlers at f_max while HERMES often
    // leaves them at a procrastinated frequency.
    ledger_->setCoreActivity(workers_[w].core, t,
                             energy::CoreActivity::Spin);
}

double
Simulator::reapDvfsCost()
{
    const double cost = static_cast<double>(dvfsCallsPending_)
        * config_.dvfsCallCostSec;
    dvfsCallsPending_ = 0;
    return cost;
}

void
Simulator::onFreqRequest(platform::DomainId domain,
                         platform::FreqMhz freq, double now)
{
    ++stats_.dvfsRequests;
    ++dvfsCallsPending_;
    Event ev{};
    ev.time = now + config_.profile.dvfsLatencySec;
    ev.kind = EventKind::DvfsApply;
    ev.domain = domain;
    ev.freqMhz = freq;
    push(ev);
}

void
Simulator::accrueBusy(unsigned w, double t)
{
    const auto &topo = config_.profile.topology;
    const auto f = appliedFreq_[topo.domainOf(workers_[w].core)];
    if (t > workers_[w].segStart) {
        busySecondsAtRung_[config_.profile.ladder.indexOf(f)] +=
            t - workers_[w].segStart;
    }
}

void
Simulator::applyFreq(platform::DomainId domain,
                     platform::FreqMhz freq, double t)
{
    // Bank busy time at the outgoing frequency before switching.
    {
        const unsigned w = domainWorker_[domain];
        if (w != ~0u && workers_[w].busy)
            accrueBusy(w, t);
    }
    appliedFreq_[domain] = freq;
    for (auto core : config_.profile.topology.coresIn(domain))
        ledger_->setCoreFreq(core, t, freq);

    const unsigned w = domainWorker_[domain];
    if (w == ~0u || !workers_[w].busy)
        return;

    // Re-time the in-flight segment: bank the cycles drained at the
    // old rate, then finish the remainder at the new rate.
    auto &ws = workers_[w];
    if (t > ws.segStart) {
        ws.current.cursor += (t - ws.segStart) * ws.rateAtSeg;
        ws.current.cursor = std::min(ws.current.cursor,
                                     ws.stopCycles);
        ws.segStart = t;
    }
    ws.rateAtSeg = rateOf(w);
    ++ws.epoch;
    const double remain = std::max(0.0, ws.stopCycles
                                            - ws.current.cursor);
    schedule(ws.segStart + remain / ws.rateAtSeg,
             EventKind::SegmentEnd, w);
}

void
Simulator::startSegment(unsigned w, double t)
{
    auto &ws = workers_[w];
    HERMES_ASSERT(ws.busy, "startSegment on non-busy worker");
    const Frame &fr = dag_.frame(ws.current.frame);
    ws.stopCycles = ws.current.nextSpawn < fr.spawns.size()
        ? fr.spawns[ws.current.nextSpawn].offsetCycles
        : fr.ownCycles;
    ws.segStart = t;
    ws.rateAtSeg = rateOf(w);
    ++ws.epoch;
    const double remain = std::max(0.0, ws.stopCycles
                                            - ws.current.cursor);
    schedule(t + remain / ws.rateAtSeg, EventKind::SegmentEnd, w);
}

void
Simulator::onSegmentEnd(unsigned w, double t)
{
    auto &ws = workers_[w];
    accrueBusy(w, t);
    ws.current.cursor = ws.stopCycles;
    const Frame &fr = dag_.frame(ws.current.frame);

    if (ws.current.nextSpawn < fr.spawns.size()
            && ws.current.cursor
                   >= fr.spawns[ws.current.nextSpawn].offsetCycles) {
        // Spawn point: push the continuation of this frame (the less
        // immediate work) and dive into the child — the work-first
        // principle, exactly as compiled Cilk does it.
        const FrameId child = fr.spawns[ws.current.nextSpawn].child;
        const FrameId parent = ws.current.frame;
        Continuation contin{parent, ws.current.cursor,
                            ws.current.nextSpawn + 1};
        ws.deque.push_back(contin);
        ++stats_.pushes;
        ++frames_[parent].outstanding;
        if (tempo_)
            tempo_->onPush(w, ws.deque.size(), t);
        maybeWake(t);
        const double cost = reapDvfsCost();
        ws.current = Continuation{child, 0.0, 0};
        startSegment(w, t + cost);
        return;
    }

    // The frame's own serial work is done.
    const FrameId f = ws.current.frame;
    stats_.executedCycles += fr.ownCycles;
    HERMES_ASSERT(frames_[f].outstanding >= 1,
                  "frame join counter underflow");
    if (--frames_[f].outstanding == 0) {
        if (completeFrame(f, w, t))
            return;  // worker resumed a sequel (or the run ended)
    }
    // Children still outstanding: the frame is suspended at its sync
    // and the worker moves on (greedy scheduling).
    workerFree(w, t);
}

bool
Simulator::completeFrame(FrameId f, unsigned w, double t)
{
    ++completedFrames_;
    if (completedFrames_ == dag_.frameCount()) {
        done_ = true;
        endTime_ = t;
        return true;
    }

    const Frame &fr = dag_.frame(f);
    if (fr.sequel != invalidFrame) {
        // The worker that satisfied the sync resumes the post-sync
        // continuation directly (Cilk's last-child-returns rule).
        auto &ws = workers_[w];
        ws.busy = true;
        ws.current = Continuation{fr.sequel, 0.0, 0};
        startSegment(w, t);
        return true;
    }

    if (fr.parent != invalidFrame) {
        HERMES_ASSERT(frames_[fr.parent].outstanding >= 1,
                      "parent join counter underflow");
        if (--frames_[fr.parent].outstanding == 0)
            return completeFrame(fr.parent, w, t);
    }
    return false;
}

void
Simulator::startAcquired(unsigned w, const Continuation &c, double t,
                         double extra_cost)
{
    auto &ws = workers_[w];
    ws.busy = true;
    // Ledger writes must use the current event time (monotonicity);
    // the worker is genuinely busy during the acquisition tolls.
    markActive(w, t);
    // Dynamic scheduling: affinity set before WORK and reset after —
    // modelled as a fixed toll on each acquisition (Section 3.4).
    const double cost = extra_cost
        + (config_.scheduling == runtime::SchedulingMode::Dynamic
               ? 2.0 * config_.affinityCostSec
               : 0.0);
    ws.current = c;
    startSegment(w, t + cost);
}

void
Simulator::workerFree(unsigned w, double t)
{
    auto &ws = workers_[w];
    ws.busy = false;

    if (!ws.deque.empty()) {
        // POP: the tail holds the most immediate task.
        const Continuation c = ws.deque.back();
        ws.deque.pop_back();
        ++stats_.pops;
        if (tempo_)
            tempo_->onPopSuccess(w, ws.deque.size(), t);
        startAcquired(w, c, t, reapDvfsCost());
        return;
    }

    // Out of work: immediacy relay fires before victim hunting. The
    // relay's DVFS calls are issued (and paid for) by this worker.
    if (tempo_)
        tempo_->onOutOfWork(w, t);
    attemptSteal(w, t, reapDvfsCost());
}

void
Simulator::attemptSteal(unsigned w, double t, double extra_cost)
{
    auto &ws = workers_[w];

    // SELECT: uniformly among victims that currently have work (a
    // collapsed model of randomized probing — real thieves find a
    // non-empty victim within a few microsecond probes).
    unsigned candidates[64];
    unsigned n = 0;
    for (unsigned v = 0; v < workers_.size(); ++v) {
        if (v != w && !workers_[v].deque.empty())
            candidates[n++] = v;
    }

    if (n == 0) {
        ++stats_.failedStealScans;
        markIdle(w, t);
        ws.backoff = ws.backoff <= 0.0
            ? config_.initialBackoffSec
            : std::min(ws.backoff * 2.0, config_.maxBackoffSec);
        ++ws.epoch;
        schedule(t + extra_cost + ws.backoff, EventKind::StealRetry,
                 w);
        return;
    }

    const unsigned v = candidates[rng_.uniformInt(0, n - 1)];
    auto &vs = workers_[v];
    // STEAL takes the head: the least immediate task.
    const Continuation c = vs.deque.front();
    vs.deque.pop_front();
    ++stats_.steals;
    ws.backoff = 0.0;

    if (tempo_) {
        // Algorithm 3.5's victim-side workload check, then the
        // thief's procrastination + immediacy-list splice (Fig. 5).
        tempo_->onVictimStolen(v, vs.deque.size(), t);
        tempo_->onStealSuccess(w, v, t);
    }

    const double cost = extra_cost + config_.stealLatencySec
        + reapDvfsCost();
    startAcquired(w, c, t, cost);

    // The victim may still have stealable work for another idler.
    if (!vs.deque.empty())
        maybeWake(t);
}

void
Simulator::maybeWake(double t)
{
    unsigned idle[64];
    unsigned n = 0;
    for (unsigned v = 0; v < workers_.size(); ++v) {
        if (!workers_[v].busy && workers_[v].deque.empty())
            idle[n++] = v;
    }
    if (n == 0)
        return;
    const unsigned w = idle[rng_.uniformInt(0, n - 1)];
    ++stats_.wakes;
    // Wake with the *current* epoch: if the worker acts before this
    // lands, the epoch moves on and the wake is dropped as stale.
    schedule(t + config_.wakeLatencySec, EventKind::StealRetry, w);
}

SimResult
Simulator::run()
{
    const auto &topo = config_.profile.topology;
    ledger_ = std::make_unique<energy::EnergyLedger>(
        energy::PowerModel(config_.profile), topo.numCores(), 0.0,
        config_.profile.ladder.fastest());

    // Domains hosting no worker idle at the lowest P-state in both
    // arms (the ondemand governor parks unused cores); only worker
    // domains are subject to tempo control.
    for (platform::DomainId d = 0; d < topo.numDomains(); ++d) {
        if (domainWorker_[d] != ~0u)
            continue;
        appliedFreq_[d] = config_.profile.ladder.slowest();
        for (auto core : topo.coresIn(d))
            ledger_->setCoreFreq(core, 0.0,
                                 config_.profile.ladder.slowest());
    }

    if (tempo_)
        tempo_->reset(0.0);
    dvfsCallsPending_ = 0;  // bootstrap requests are free

    // Worker 0 receives the root frame (the program's main()).
    frames_[dag_.root()].started = true;
    workers_[0].busy = true;
    workers_[0].current = Continuation{dag_.root(), 0.0, 0};
    markActive(0, 0.0);
    startSegment(0, 0.0);

    while (!events_.empty() && !done_) {
        const Event ev = events_.top();
        events_.pop();
        ++stats_.eventsProcessed;
        HERMES_ASSERT(stats_.eventsProcessed < 500000000ULL,
                      "simulator event storm: likely model bug");

        switch (ev.kind) {
          case EventKind::SegmentEnd:
            if (ev.epoch != workers_[ev.worker].epoch)
                break;  // stale: segment was re-timed
            onSegmentEnd(ev.worker, ev.time);
            break;
          case EventKind::StealRetry:
            if (ev.epoch != workers_[ev.worker].epoch
                    || workers_[ev.worker].busy)
                break;
            workerFree(ev.worker, ev.time);
            break;
          case EventKind::DvfsApply:
            applyFreq(ev.domain, ev.freqMhz, ev.time);
            break;
        }
    }

    HERMES_ASSERT(done_,
                  "simulation deadlocked with "
                  << (dag_.frameCount() - completedFrames_)
                  << " frames incomplete");

    ledger_->finish(endTime_);

    SimResult result;
    result.seconds = endTime_;
    result.joules = ledger_->totalJoules();
    result.seriesJoules = ledger_->seriesJoules(100.0);
    result.stats = stats_;
    result.busySecondsAtRung = busySecondsAtRung_;
    if (tempo_)
        result.tempoCounters = tempo_->counters();
    if (config_.recordPowerSeries)
        result.powerSeries = ledger_->powerSeries(100.0);
    return result;
}

SimResult
simulate(const Dag &dag, const SimConfig &config)
{
    Simulator sim(dag, config);
    return sim.run();
}

} // namespace hermes::sim
