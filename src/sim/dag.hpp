/**
 * @file
 * Static spawn DAGs for the discrete-event simulator.
 *
 * A Dag is a fully-strict Cilk computation recorded ahead of time:
 * each Frame owns `ownCycles` of serial work with spawn points at
 * increasing offsets, an implicit sync at its end, and an optional
 * *sequel* — a continuation frame started (by the worker completing
 * the frame) after the sync, which is how sequential phases
 * ("sort pass 1, then pass 2") are expressed. Because frames and
 * spawn structure are fixed, two simulator runs over the same DAG
 * differ only in scheduling — exactly the controlled comparison the
 * paper's trials make.
 */

#ifndef HERMES_SIM_DAG_HPP
#define HERMES_SIM_DAG_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hermes::sim {

/** Index of a frame within a Dag. */
using FrameId = uint32_t;

/** Sentinel for "no frame". */
inline constexpr FrameId invalidFrame =
    std::numeric_limits<FrameId>::max();

/** One spawn site inside a frame. */
struct SpawnPoint
{
    double offsetCycles;  ///< position within the frame's own work
    FrameId child;        ///< frame spawned at this point
};

/** A Cilk frame: serial work + spawn points + sync-at-end. */
struct Frame
{
    double ownCycles = 0.0;          ///< the frame's serial work,
                                     ///< in cycles at f_max
    std::vector<SpawnPoint> spawns;  ///< ascending offsets in
                                     ///< (0, ownCycles)
    FrameId parent = invalidFrame;   ///< join target (or none)
    FrameId sequel = invalidFrame;   ///< post-sync continuation

    /**
     * Fraction of this frame's time that is memory-bound (DRAM
     * stalls), hence invariant to core frequency. Wall time at
     * frequency f is ownCycles * ((1-m)/f + m/f_max): a fully
     * compute-bound frame (m = 0) scales 1/f, a fully memory-bound
     * one not at all. PBBS-class workloads at 16-32 threads are
     * substantially bandwidth-bound — the effect DVFS energy savings
     * lean on.
     */
    double memFraction = 0.0;
};

/** An immutable spawn DAG plus derived metrics. */
class Dag
{
  public:
    /** Build from frames; `root` starts execution. Validates spawn
     * offsets, parent links and sequel chains (panics on misuse). */
    Dag(std::vector<Frame> frames, FrameId root);

    const Frame &frame(FrameId f) const { return frames_[f]; }
    size_t frameCount() const { return frames_.size(); }
    FrameId root() const { return root_; }

    /** T1: total work over all frames, in cycles. */
    double totalCycles() const { return totalCycles_; }

    /**
     * T-infinity: the critical path in cycles — the completion time
     * of the root chain with unbounded workers, honouring spawn
     * offsets, the sync-at-end, and sequels.
     */
    double criticalPathCycles() const { return criticalPath_; }

    /** Frames with no spawns (the leaves). */
    size_t leafCount() const { return leafCount_; }

  private:
    double completionCycles(FrameId f,
                            std::vector<double> &memo) const;

    std::vector<Frame> frames_;
    FrameId root_;
    double totalCycles_ = 0.0;
    double criticalPath_ = 0.0;
    size_t leafCount_ = 0;
};

/**
 * Incremental DAG construction used by the workload generators.
 *
 * Frames are created with newFrame(); spawns are recorded with
 * spawn() (offsets must be added in ascending order); sequential
 * phases are chained with sequel(). build() freezes everything into
 * a Dag.
 */
class DagBuilder
{
  public:
    /** Create a frame with `own_cycles` of serial work, of which
     * fraction `mem_fraction` is frequency-invariant memory time. */
    FrameId newFrame(double own_cycles, double mem_fraction = 0.0);

    /** Record that `parent` spawns `child` at `offset_cycles`. */
    void spawn(FrameId parent, double offset_cycles, FrameId child);

    /**
     * Chain `next` as the post-sync continuation of `frame`. The
     * sequel inherits `frame`'s join parent; `frame` must not already
     * have a sequel.
     */
    void sequel(FrameId frame, FrameId next);

    /** Freeze into an immutable Dag rooted at `root`. */
    Dag build(FrameId root);

    size_t frameCount() const { return frames_.size(); }

  private:
    std::vector<Frame> frames_;
    std::vector<bool> isSequel_;
};

} // namespace hermes::sim

#endif // HERMES_SIM_DAG_HPP
