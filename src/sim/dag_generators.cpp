#include "sim/dag_generators.hpp"

#include <algorithm>
#include <functional>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hermes::sim {

namespace {

/*
 * Memory intensity per benchmark (fraction of execution time stalled
 * on DRAM, hence frequency-invariant — see Frame::memFraction). PBBS
 * workloads at 16-32 threads saturate bandwidth; radix sort is the
 * classic extreme (scatter-heavy), geometry codes less so. These are
 * the standard characterization-literature ballparks and they are
 * what gives DVFS its energy-for-little-time trade.
 */
constexpr double knnBuildMem = 0.60;
constexpr double knnQueryMem = 0.55;
constexpr double rayMem = 0.50;
constexpr double sortMem = 0.75;
constexpr double compareMem = 0.65;
constexpr double hullMem = 0.60;

/** Cycles for `us` microseconds at `fmax` (1 MHz * 1 us = 1 cycle). */
double
cyc(platform::FreqMhz fmax, double us)
{
    return static_cast<double>(fmax) * us;
}

/** Cycles for `sec` seconds at `fmax`. */
double
cycSec(platform::FreqMhz fmax, double sec)
{
    return static_cast<double>(fmax) * 1e6 * sec;
}

/**
 * Build the DAG of a self-splitting parallel loop over `leaves`
 * iterations (the shape parallelFor produces): each frame repeatedly
 * spawns the right half of its range (cost `split_cyc` per split) and
 * walks into the left half until one leaf remains, which it executes
 * in-frame. Matches work-first deque behaviour: the biggest (least
 * immediate) continuation sits at the head.
 */
FrameId
forTree(DagBuilder &b, size_t leaves, double split_cyc,
        const std::function<double()> &leaf_cyc, double mem)
{
    HERMES_ASSERT(leaves >= 1, "loop needs at least one iteration");
    if (leaves == 1)
        return b.newFrame(std::max(1.0, leaf_cyc()), mem);

    struct Pending
    {
        double offset;
        FrameId child;
    };
    std::vector<Pending> spawns;
    double own = 0.0;
    size_t n = leaves;
    while (n > 1) {
        const size_t right = n / 2;
        const FrameId child = forTree(b, right, split_cyc, leaf_cyc,
                                      mem);
        own += split_cyc;
        spawns.push_back({own, child});
        n -= right;
    }
    own += std::max(1.0, leaf_cyc());
    const FrameId f = b.newFrame(own, mem);
    for (const Pending &sp : spawns)
        b.spawn(f, sp.offset, sp.child);
    return f;
}

/**
 * Quicksort-shaped recursion: a frame partitions (`own_frac` of its
 * budget), then spawns two children splitting the remainder at a
 * random ratio, until the budget falls below `grain_cyc`.
 */
FrameId
qsortTree(DagBuilder &b, util::Rng &rng, double total_cyc,
          double own_frac, double grain_cyc, double split_lo,
          double split_hi, double mem, double own_cap_cyc)
{
    total_cyc = std::max(1.0, total_cyc);
    if (total_cyc <= grain_cyc)
        return b.newFrame(total_cyc, mem);

    // The serial share of a partition is capped: PBBS partitions
    // large ranges with parallel scans, so per-node serial work does
    // not grow with the subtree.
    const double own = std::max(
        1.0, std::min(total_cyc * own_frac, own_cap_cyc));
    const double remain = total_cyc - own;
    const double u = rng.uniform(split_lo, split_hi);
    const FrameId left = qsortTree(b, rng, remain * u, own_frac,
                                   grain_cyc, split_lo, split_hi,
                                   mem, own_cap_cyc);
    const FrameId right = qsortTree(b, rng, remain * (1.0 - u),
                                    own_frac, grain_cyc, split_lo,
                                    split_hi, mem, own_cap_cyc);
    const FrameId f = b.newFrame(own, mem);
    b.spawn(f, own * 0.60, left);
    b.spawn(f, own * 0.95, right);
    return f;
}

/**
 * Quickhull-shaped recursion: partition scan, then two subproblems
 * that together *keep only part of* the remaining work (interior
 * points are discarded), with random split ratios. The per-node scan
 * is itself parallel in PBBS, so the serial fraction is small.
 */
FrameId
hullTree(DagBuilder &b, util::Rng &rng, double total_cyc,
         double grain_cyc, double own_cap_cyc)
{
    total_cyc = std::max(1.0, total_cyc);
    if (total_cyc <= grain_cyc)
        return b.newFrame(total_cyc, hullMem);

    // Farthest-point scans are parallel reduces in PBBS: serial
    // share per node is bounded.
    const double own = std::max(
        1.0, std::min(total_cyc * 0.03, own_cap_cyc));
    const double remain = total_cyc - own;
    const double keep = rng.uniform(0.60, 0.95);
    const double u = rng.uniform(0.2, 0.8);
    const FrameId left = hullTree(b, rng, remain * keep * u,
                                  grain_cyc, own_cap_cyc);
    const FrameId right = hullTree(b, rng, remain * keep * (1.0 - u),
                                   grain_cyc, own_cap_cyc);
    const FrameId f = b.newFrame(own, hullMem);
    b.spawn(f, own * 0.60, left);
    b.spawn(f, own * 0.95, right);
    return f;
}

/**
 * kd-tree build shape: balanced recursion whose per-node partition
 * is mostly parallel (PBBS uses parallel split), leaving a small
 * serial fraction per node.
 */
FrameId
buildTree(DagBuilder &b, double total_cyc, double own_frac,
          double grain_cyc, double own_cap_cyc)
{
    total_cyc = std::max(1.0, total_cyc);
    if (total_cyc <= grain_cyc)
        return b.newFrame(total_cyc, knnBuildMem);
    const double own = std::max(
        1.0, std::min(total_cyc * own_frac, own_cap_cyc));
    const double half = (total_cyc - own) * 0.5;
    const FrameId left = buildTree(b, half, own_frac, grain_cyc,
                                   own_cap_cyc);
    const FrameId right = buildTree(b, half, own_frac, grain_cyc,
                                    own_cap_cyc);
    const FrameId f = b.newFrame(own, knnBuildMem);
    b.spawn(f, own * 0.60, left);
    b.spawn(f, own * 0.95, right);
    return f;
}

} // namespace

Dag
makeKnn(const WorkloadParams &p)
{
    DagBuilder b;
    util::Rng rng(p.seed ^ 0x6b6e6eULL);
    const double grain = cyc(p.fmaxMhz, 400.0);  // 0.4 ms
    const double split = cyc(p.fmaxMhz, 3.0);

    // Phase 1: kd-tree build; nodes mostly parallel-partition.
    const double build_total = cycSec(p.fmaxMhz, 0.35) * p.scale;
    const FrameId build = buildTree(b, build_total, 0.05, grain,
                                    cyc(p.fmaxMhz, 100.0));

    // Phase 2: wide flat query loop — many small uniform grains, so
    // deques run deep (the workload-sensitive sweet spot).
    const double query_total = cycSec(p.fmaxMhz, 0.55) * p.scale;
    const size_t queries = 2048;
    const double mean_leaf = query_total
        / static_cast<double>(queries);
    const FrameId query = forTree(b, queries, split, [&] {
        return mean_leaf * rng.uniform(0.4, 1.6);
    }, knnQueryMem);

    b.sequel(build, query);
    return b.build(build);
}

Dag
makeRay(const WorkloadParams &p)
{
    DagBuilder b;
    util::Rng rng(p.seed ^ 0x726179ULL);
    const double split = cyc(p.fmaxMhz, 3.0);

    // One flat loop over ray packets with heavy-tailed cost: some
    // rays traverse far more of the bounding structure than others.
    const double total = cycSec(p.fmaxMhz, 0.9) * p.scale;
    const size_t packets = 768;
    // Pareto(alpha = 1.8) has mean xm * alpha/(alpha-1) = 2.25 xm;
    // the cap trims the extreme tail like a real BVH depth bound.
    const double xm = total / static_cast<double>(packets) / 2.1;
    const FrameId root = forTree(b, packets, split, [&] {
        return std::min(rng.pareto(xm, 1.8), 15.0 * xm);
    }, rayMem);
    return b.build(root);
}

Dag
makeSort(const WorkloadParams &p)
{
    DagBuilder b;
    util::Rng rng(p.seed ^ 0x736f7274ULL);
    const double split = cyc(p.fmaxMhz, 3.0);

    // Four radix passes, each a balanced block loop; passes are
    // sequential (counting feeds scattering), expressed as sequels.
    const double total = cycSec(p.fmaxMhz, 0.8) * p.scale;
    const size_t passes = 4;
    const size_t blocks = 256;
    const double per_pass = total / static_cast<double>(passes);
    const double mean_leaf = per_pass / static_cast<double>(blocks);

    FrameId first = invalidFrame;
    FrameId prev = invalidFrame;
    for (size_t pass = 0; pass < passes; ++pass) {
        const FrameId root = forTree(b, blocks, split, [&] {
            return mean_leaf * rng.uniform(0.85, 1.15);
        }, sortMem);
        if (prev == invalidFrame)
            first = root;
        else
            b.sequel(prev, root);
        prev = root;
    }
    return b.build(first);
}

Dag
makeCompare(const WorkloadParams &p)
{
    DagBuilder b;
    util::Rng rng(p.seed ^ 0x636d70ULL);
    const double grain = cyc(p.fmaxMhz, 400.0);
    const double split = cyc(p.fmaxMhz, 3.0);
    const double total = cycSec(p.fmaxMhz, 0.9) * p.scale;

    // Phase 1: sample a small subset (cheap, low parallelism).
    const double sample_total = total * 0.04;
    const FrameId sample = forTree(b, 64, split, [&] {
        return sample_total / 64.0 * rng.uniform(0.8, 1.2);
    }, compareMem);

    // Phase 2: scatter into buckets (balanced block loop).
    const double scatter_total = total * 0.22;
    const FrameId scatter = forTree(b, 256, split, [&] {
        return scatter_total / 256.0 * rng.uniform(0.9, 1.1);
    }, compareMem);
    b.sequel(sample, scatter);

    // Phase 3: sort the buckets. PBBS sample sort runs a flat
    // parallel loop over buckets and sorts each one *sequentially*
    // (cache-friendly), so the loop's grain costs follow the skewed
    // (lognormal) bucket-size distribution. A few giant buckets are
    // themselves split recursively (the PBBS fallback), bounding the
    // tail like the cap here.
    const double sort_total = total * 0.74;
    const size_t buckets = 256;
    const double mean_bucket = sort_total
        / static_cast<double>(buckets);
    // Normalize lognormal(0, 0.9) draws to the mean via its
    // expectation exp(sigma^2/2) ~= 1.50.
    const FrameId bucket_loop = forTree(b, buckets, split, [&] {
        return std::min(mean_bucket * rng.lognormal(0.0, 0.9) / 1.50,
                        4.0 * mean_bucket);
    }, compareMem);
    (void)grain;
    b.sequel(scatter, bucket_loop);
    return b.build(sample);
}

Dag
makeHull(const WorkloadParams &p)
{
    DagBuilder b;
    util::Rng rng(p.seed ^ 0x68756c6cULL);
    const double grain = cyc(p.fmaxMhz, 250.0);
    const double split = cyc(p.fmaxMhz, 3.0);
    const double total = cycSec(p.fmaxMhz, 1.1) * p.scale;

    // Phase 1: find extreme points (balanced scan).
    const double scan_total = total * 0.15;
    const FrameId scan = forTree(b, 128, split, [&] {
        return scan_total / 128.0 * rng.uniform(0.9, 1.1);
    }, hullMem);

    // Phase 2: quickhull recursion. The first few levels operate on
    // nearly all points with parallel filters, so the top of the
    // tree is bushy (8 regions after the initial chords); below
    // that, subproblems shrink irregularly as interior points are
    // discarded — the steal-heavy shape.
    const double rec_total = total * 0.85;
    const size_t regions = 8;
    const double own_step = cyc(p.fmaxMhz, 6.0);
    const FrameId dispatch = b.newFrame(
        own_step * static_cast<double>(regions + 1), hullMem);
    for (size_t i = 0; i < regions; ++i) {
        const double share = rec_total
            * rng.uniform(0.6, 1.4) / static_cast<double>(regions);
        const FrameId region = hullTree(b, rng, share, grain,
                                        cyc(p.fmaxMhz, 80.0));
        b.spawn(dispatch, own_step * static_cast<double>(i + 1),
                region);
    }
    b.sequel(scan, dispatch);
    return b.build(scan);
}

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "knn", "ray", "sort", "compare", "hull",
    };
    return names;
}

Dag
makeBenchmark(const std::string &name, const WorkloadParams &params)
{
    if (name == "knn")
        return makeKnn(params);
    if (name == "ray")
        return makeRay(params);
    if (name == "sort")
        return makeSort(params);
    if (name == "compare")
        return makeCompare(params);
    if (name == "hull")
        return makeHull(params);
    util::fatal("unknown benchmark '" + name
                + "' (knn|ray|sort|compare|hull)");
}

} // namespace hermes::sim
