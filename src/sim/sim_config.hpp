/**
 * @file
 * Simulator configuration and result records.
 */

#ifndef HERMES_SIM_SIM_CONFIG_HPP
#define HERMES_SIM_SIM_CONFIG_HPP

#include <cstdint>
#include <vector>

#include "core/policy.hpp"
#include "core/tempo_controller.hpp"
#include "platform/system_profile.hpp"
#include "runtime/runtime_config.hpp"

namespace hermes::sim {

/** Options for one simulated execution. */
struct SimConfig
{
    /** Platform (topology, ladder, power calibration). */
    platform::SystemProfile profile = platform::systemA();

    /** Worker count; placed one per clock domain (paper placement).
     * Must not exceed the profile's domain count. */
    unsigned numWorkers = 16;

    /** Wire the tempo controller (false = plain work stealing at the
     * fastest frequency — the Intel Cilk Plus baseline arm). */
    bool enableTempo = false;

    /** Tempo settings; ladder defaults to the profile's paper pair. */
    core::TempoConfig tempo{};

    /** Static vs dynamic worker-core scheduling (Section 3.4);
     * dynamic pays affinity costs around every WORK invocation. */
    runtime::SchedulingMode scheduling =
        runtime::SchedulingMode::Static;

    /** Victim-selection / wake-choice RNG seed. */
    uint64_t seed = 1;

    // --- overhead model (Section 3.4 "Overhead") ---

    /** Cost of one successful steal (lock, head move, hand-off). */
    double stealLatencySec = 2e-6;

    /** Caller-side cost of issuing one DVFS request. */
    double dvfsCallCostSec = 3e-6;

    /** One affinity syscall (dynamic scheduling pays two per WORK). */
    double affinityCostSec = 1.5e-6;

    /** Idle worker wake-up delay after a push. */
    double wakeLatencySec = 1e-6;

    /** Idle steal-retry backoff: initial and cap. */
    double initialBackoffSec = 10e-6;
    double maxBackoffSec = 200e-6;

    /** Record the 100 Hz power trace (Figures 19-22). */
    bool recordPowerSeries = false;
};

/** Aggregate counters from one simulated run. */
struct SimStats
{
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t steals = 0;
    uint64_t failedStealScans = 0;
    uint64_t wakes = 0;
    uint64_t dvfsRequests = 0;
    uint64_t eventsProcessed = 0;
    double executedCycles = 0.0;  ///< work-conservation check
};

/** Outcome of one simulated execution. */
struct SimResult
{
    double seconds = 0.0;       ///< makespan (virtual time)
    double joules = 0.0;        ///< exact integrated package energy
    double seriesJoules = 0.0;  ///< 100 Hz sampled energy (paper rig)
    SimStats stats;
    core::TempoCounters tempoCounters;
    std::vector<double> powerSeries;  ///< watts at 100 Hz (optional)

    /** Busy worker-seconds spent at each profile-ladder rung
     * (index 0 = fastest); the tempo-exposure breakdown. */
    std::vector<double> busySecondsAtRung;

    /** Energy-delay product. */
    double edp() const { return joules * seconds; }
};

} // namespace hermes::sim

#endif // HERMES_SIM_SIM_CONFIG_HPP
