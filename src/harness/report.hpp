/**
 * @file
 * Table/CSV emission shared by every figure bench.
 *
 * Each bench prints a fixed-width text table to stdout (the rows the
 * paper's figure plots) and mirrors it into a CSV under
 * $HERMES_RESULTS_DIR (default ./bench_results) for re-plotting.
 */

#ifndef HERMES_HARNESS_REPORT_HPP
#define HERMES_HARNESS_REPORT_HPP

#include <string>
#include <vector>

namespace hermes::harness {

/** Where CSV results land (created on demand). */
std::string resultsDir();

/** A labeled table accumulated row by row, rendered at close. */
class FigureReport
{
  public:
    /**
     * @param figure_id e.g. "fig06"
     * @param title human-readable description printed above the table
     * @param columns column headers (first column is the row label)
     */
    FigureReport(std::string figure_id, std::string title,
                 std::vector<std::string> columns);

    /** Append one row: label + numeric cells (printed at %.4g). */
    void row(const std::string &label,
             const std::vector<double> &values);

    /** Append a separator line in the text rendering. */
    void separator();

    /**
     * Print the table to stdout and write
     * `<resultsDir>/<figure_id>.csv`. Returns the CSV path.
     */
    std::string finish();

  private:
    struct Row
    {
        bool isSeparator;
        std::string label;
        std::vector<double> values;
    };

    std::string figureId_;
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
    bool finished_ = false;
};

/** Render a compact ASCII sparkline of a series (for time-series
 * figures in terminal output). */
std::string sparkline(const std::vector<double> &values,
                      size_t width = 72);

} // namespace hermes::harness

#endif // HERMES_HARNESS_REPORT_HPP
