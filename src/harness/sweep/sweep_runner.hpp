/**
 * @file
 * Sweep orchestration: the rates x variants grid over the scenario
 * runner, plus reduce-only re-reduction from stored bundles.
 *
 * runSweep() executes every (variant, rate) cell in one long-lived
 * process — each cell derives a per-point ScenarioConfig (variant
 * runtime/dvfs, that cell's rate, sweep block stripped), runs it on
 * a *fresh* Runtime via scenario::runScenario(), and writes the
 * standard four-artifact bundle under
 * `<out>/points/<variant>/rate_<rate>/`. The cells then reduce into
 * `<out>/curves.json` and `<out>/curves.md` (curves.hpp).
 *
 * Reduce-only mode skips execution and reloads each stored point
 * bundle (rate from config.json, counters and the deterministic
 * object from run.json). Because the reducer and writers are pure,
 * a reduce-only pass over a sweep's own output reproduces
 * curves.json byte-identically — the cmp gate in CI.
 */

#ifndef HERMES_HARNESS_SWEEP_SWEEP_RUNNER_HPP
#define HERMES_HARNESS_SWEEP_SWEEP_RUNNER_HPP

#include <string>
#include <vector>

#include "harness/sweep/curves.hpp"

namespace hermes::harness::sweep {

/** Outcome of runSweep(), mapped to exit codes by the CLI. */
struct SweepOutcome
{
    bool ok = false;          ///< ran, reduced, and gates passed
    bool gateFailure = false; ///< a variant gate failed (exit 7)
    /** I/O or bundle-load failures (exit 1). */
    std::vector<std::string> errors;
    SweepCurves curves;
};

/** `<outDir>/points/<variant>/rate_<rate>` for one grid cell. */
std::string pointDir(const std::string &outDir,
                     const std::string &variant, double ratePerSec);

/** The per-point ScenarioConfig for one grid cell: the base
 * scenario with the variant's runtime/dvfs, the cell's rate, a
 * `<name>_<variant>_p<index>` name, and the sweep block stripped
 * (a point run must not recurse). */
scenario::ScenarioConfig
pointConfig(const scenario::ScenarioConfig &base,
            const scenario::SweepVariant &variant, double ratePerSec,
            size_t rateIndex);

/**
 * Run (or, with `reduceOnly`, reload) the full sweep grid of
 * `config` and write curves.json + curves.md into `outDir`.
 * `config.sweep.enabled` must hold (the CLI validates first).
 */
SweepOutcome runSweep(const scenario::ScenarioConfig &config,
                      const std::string &outDir, bool reduceOnly);

} // namespace hermes::harness::sweep

#endif // HERMES_HARNESS_SWEEP_SWEEP_RUNNER_HPP
