/**
 * @file
 * Sweep reduction: per-point results -> per-variant load/energy
 * curves, knee detection, variant gates, and the rendered outputs.
 *
 * The reducer is a pure function of its inputs: reduceSweep() takes
 * the sweep block plus one SweepPoint per (variant, rate) cell and
 * produces the per-variant curve arrays, the detected knee (the
 * first rate whose sojourn p99 exceeds the declared bound — the
 * cliff the open-loop harness exists to expose), and the gate
 * verdicts. writeCurvesJson()/writeCurvesMd() serialize with fixed
 * ordering and fixed number formatting, so re-reducing the same
 * stored bundles (`hermes-scenario sweep --reduce-only`) emits
 * byte-identical files — that is the determinism contract CI cmp's.
 * Timing metrics from two *live* runs differ; their curves.json
 * "deterministic" object (offered counts and schedule hashes, pure
 * functions of seed and rate) must still match exactly.
 *
 * Gates reuse scenario::relativeRegression(): every non-first
 * variant is compared against variants[0] at each rate point,
 * direction-aware, same pinned-zero semantics as `compare`.
 */

#ifndef HERMES_HARNESS_SWEEP_CURVES_HPP
#define HERMES_HARNESS_SWEEP_CURVES_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario/scenario_config.hpp"

namespace hermes::harness::sweep {

/** One (variant, rate) cell's reduced result — the slice of a
 * scenario run.json the curves are built from. */
struct SweepPoint
{
    std::string variant;     ///< sweep variant name
    double ratePerSec = 0.0; ///< offered (base) rate of this point
    double wallSeconds = 0.0;
    /** run.json counters by name (sojourn_p99_ns, ...). */
    std::map<std::string, double> metrics;
    /** run.json "deterministic" object, order preserved. */
    std::vector<std::pair<std::string, uint64_t>> deterministic;
};

/** One row of a variant's curve (rates ascending). */
struct CurvePoint
{
    double ratePerSec = 0.0;
    double acceptedRatePerSec = 0.0;
    double sojournP50Ns = 0.0;
    double sojournP99Ns = 0.0;
    double sojournP999Ns = 0.0;
    double joulesPerRequest = 0.0;
    double meanParkedFraction = 0.0;
    double packageWattsMean = 0.0;
    double shedFrac = 0.0;
};

/** One variant's curve plus its detected knee. */
struct VariantCurve
{
    std::string variant;
    std::vector<CurvePoint> points; ///< rates ascending
    bool kneeFound = false;
    double kneeRatePerSec = 0.0; ///< valid when kneeFound
};

/** One evaluated gate cell: `variant` vs variants[0] at one rate. */
struct GateFinding
{
    std::string metric;
    std::string variant;
    double ratePerSec = 0.0;
    double baseline = 0.0; ///< variants[0]'s value
    double current = 0.0;  ///< this variant's value
    double regression = 0.0;
    double maxRegression = 0.0;
    bool lowerBetter = false;
    bool failed = false;
};

/** Everything reduceSweep() derives from the points. */
struct SweepCurves
{
    std::vector<VariantCurve> variants; ///< sweep-block order
    std::vector<GateFinding> gates;     ///< every evaluated cell
    bool gateFailure = false;           ///< any gate failed
    /** Reduction problems (missing points/metrics) — non-fatal for
     * curve output, but reported in curves.md. */
    std::vector<std::string> notes;
    /** The input points, reordered variant-major, rate-ascending —
     * the source of curves.json's "deterministic" object. */
    std::vector<SweepPoint> points;
};

/**
 * Reduce per-point results into per-variant curves. Points are
 * matched to the sweep grid by (variant name, rate); a missing cell
 * or metric yields a note and a zero value rather than a crash.
 * Pure function: equal inputs produce equal outputs.
 */
SweepCurves reduceSweep(const scenario::ScenarioConfig &config,
                        const std::vector<SweepPoint> &points);

/** curves.json content — fixed key order and number formatting, so
 * equal curves serialize byte-identically. */
std::string writeCurvesJson(const scenario::ScenarioConfig &config,
                            const SweepCurves &curves);

/** curves.md content: provenance, per-variant tables, knee report,
 * gate verdicts, and inline SVG line charts (latency, energy, and
 * power vs offered rate — one chart per measure, never dual axes).
 * Deterministic like writeCurvesJson(). */
std::string writeCurvesMd(const scenario::ScenarioConfig &config,
                          const SweepCurves &curves);

} // namespace hermes::harness::sweep

#endif // HERMES_HARNESS_SWEEP_CURVES_HPP
