#include "harness/sweep/sweep_runner.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/scenario/scenario_runner.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace hermes::harness::sweep {

namespace {

bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

/** Re-read a 64-bit deterministic counter from the source text at
 * the number's own offset. run.json's deterministic values are
 * uint64 (schedule hashes use all 64 bits), so going through the
 * parser's double would lose precision above 2^53. */
uint64_t
exactUint64At(const std::string &text, size_t offset)
{
    uint64_t v = 0;
    for (size_t i = offset;
         i < text.size()
         && std::isdigit(static_cast<unsigned char>(text[i]));
         ++i)
        v = v * 10 + static_cast<uint64_t>(text[i] - '0');
    return v;
}

/** Reload one stored point bundle into a SweepPoint. Returns false
 * (with a message) on unreadable or malformed artifacts. */
bool
loadPoint(const std::string &dir, const std::string &variant,
          double ratePerSec, SweepPoint &out, std::string &error)
{
    out.variant = variant;
    out.ratePerSec = ratePerSec;

    std::string config_text;
    if (!slurp(dir + "/config.json", config_text)) {
        error = "cannot read " + dir + "/config.json";
        return false;
    }
    const util::JsonParseResult config =
        util::parseJson(config_text);
    if (!config.ok || !config.value.isObject()) {
        error = dir + "/config.json: not a JSON object";
        return false;
    }
    const util::JsonValue *serve = config.value.find("serve");
    const util::JsonValue *rate =
        serve && serve->isObject() ? serve->find("rate_per_sec")
                                   : nullptr;
    if (!rate || !rate->isNumber()) {
        error = dir + "/config.json: missing /serve/rate_per_sec";
        return false;
    }
    if (rate->number() != ratePerSec) {
        error = dir + "/config.json: rate_per_sec "
                + util::jsonNumber(rate->number())
                + " does not match grid rate "
                + util::jsonNumber(ratePerSec);
        return false;
    }

    std::string run_text;
    if (!slurp(dir + "/run.json", run_text)) {
        error = "cannot read " + dir + "/run.json";
        return false;
    }
    const util::JsonParseResult run = util::parseJson(run_text);
    if (!run.ok || !run.value.isObject()) {
        error = dir + "/run.json: not a JSON object";
        return false;
    }

    const util::JsonValue *det = run.value.find("deterministic");
    if (!det || !det->isObject()) {
        error = dir + "/run.json: missing deterministic object";
        return false;
    }
    for (const auto &[name, value] : det->members()) {
        if (!value.isNumber()) {
            error = dir + "/run.json: non-numeric deterministic "
                    + name;
            return false;
        }
        out.deterministic.emplace_back(
            name, exactUint64At(run_text, value.offset()));
    }

    const util::JsonValue *benchmarks = run.value.find("benchmarks");
    if (!benchmarks || !benchmarks->isArray()
        || benchmarks->array().empty()) {
        error = dir + "/run.json: missing benchmarks array";
        return false;
    }
    const util::JsonValue &bench = benchmarks->array().front();
    const util::JsonValue *real_time =
        bench.isObject() ? bench.find("real_time") : nullptr;
    if (real_time && real_time->isNumber())
        out.wallSeconds = real_time->number() / 1e9;
    const util::JsonValue *counters =
        bench.isObject() ? bench.find("counters") : nullptr;
    if (!counters || !counters->isObject()) {
        error = dir + "/run.json: missing counters object";
        return false;
    }
    for (const auto &[name, value] : counters->members()) {
        if (value.isNumber())
            out.metrics[name] = value.number();
    }
    return true;
}

void
writeFile(const std::string &path, const std::string &content,
          std::vector<std::string> &errors)
{
    // Atomic (temp + rename): a killed sweep must never leave a
    // truncated curves.json/point artifact for --reduce-only.
    std::string error;
    if (!util::tryWriteFileAtomic(path, content, error))
        errors.push_back(error);
}

} // namespace

std::string
pointDir(const std::string &outDir, const std::string &variant,
         double ratePerSec)
{
    return outDir + "/points/" + variant + "/rate_"
           + util::jsonNumber(ratePerSec);
}

scenario::ScenarioConfig
pointConfig(const scenario::ScenarioConfig &base,
            const scenario::SweepVariant &variant, double ratePerSec,
            size_t rateIndex)
{
    scenario::ScenarioConfig derived = base;
    derived.name = base.name + "_" + variant.name + "_p"
                   + std::to_string(rateIndex);
    derived.runtime = variant.runtime;
    derived.dvfs = variant.dvfs;
    derived.serve.ratePerSec = ratePerSec;
    derived.sweep = scenario::SweepParams{};
    return derived;
}

SweepOutcome
runSweep(const scenario::ScenarioConfig &config,
         const std::string &outDir, bool reduceOnly)
{
    const scenario::SweepParams &sweep = config.sweep;
    SweepOutcome outcome;

    std::vector<SweepPoint> points;
    for (const scenario::SweepVariant &variant : sweep.variants) {
        for (size_t ri = 0; ri < sweep.ratesPerSec.size(); ++ri) {
            const double rate = sweep.ratesPerSec[ri];
            const std::string dir =
                pointDir(outDir, variant.name, rate);
            if (reduceOnly) {
                SweepPoint point;
                std::string error;
                if (!loadPoint(dir, variant.name, rate, point,
                               error)) {
                    outcome.errors.push_back(error);
                    continue;
                }
                points.push_back(std::move(point));
            } else {
                util::inform("sweep: variant " + variant.name
                             + ", rate " + util::jsonNumber(rate)
                             + " req/s");
                const scenario::ScenarioResult result =
                    scenario::runScenario(
                        pointConfig(config, variant, rate, ri));
                scenario::writeScenarioBundle(dir, result);
                SweepPoint point;
                point.variant = variant.name;
                point.ratePerSec = rate;
                point.wallSeconds = result.wallSeconds;
                point.metrics = result.metrics;
                point.deterministic = result.deterministic;
                points.push_back(std::move(point));
            }
        }
    }

    outcome.curves = reduceSweep(config, points);
    outcome.gateFailure = outcome.curves.gateFailure;

    std::filesystem::create_directories(outDir);
    writeFile(outDir + "/curves.json",
              writeCurvesJson(config, outcome.curves),
              outcome.errors);
    writeFile(outDir + "/curves.md",
              writeCurvesMd(config, outcome.curves), outcome.errors);

    outcome.ok = outcome.errors.empty() && !outcome.gateFailure;
    return outcome;
}

} // namespace hermes::harness::sweep
