#include "harness/sweep/curves.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "harness/scenario/baseline.hpp"
#include "util/json.hpp"

namespace hermes::harness::sweep {

namespace {

/** Deterministic short float formatting shared by tables and SVG
 * coordinates ("%.6g": locale-independent, no trailing zeros). */
std::string
fmtG(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

double
metricOr(const SweepPoint &p, const char *name, double fallback,
         std::vector<std::string> &notes)
{
    auto it = p.metrics.find(name);
    if (it != p.metrics.end())
        return it->second;
    notes.push_back("point (" + p.variant + ", "
                    + util::jsonNumber(p.ratePerSec)
                    + "): missing metric " + name);
    return fallback;
}

CurvePoint
toCurvePoint(const SweepPoint &p, std::vector<std::string> &notes)
{
    CurvePoint c;
    c.ratePerSec = p.ratePerSec;
    c.acceptedRatePerSec =
        metricOr(p, "accepted_rate_per_sec", 0.0, notes);
    c.sojournP50Ns = metricOr(p, "sojourn_p50_ns", 0.0, notes);
    c.sojournP99Ns = metricOr(p, "sojourn_p99_ns", 0.0, notes);
    c.sojournP999Ns = metricOr(p, "sojourn_p999_ns", 0.0, notes);
    c.joulesPerRequest =
        metricOr(p, "joules_per_request", 0.0, notes);
    c.meanParkedFraction =
        metricOr(p, "mean_parked_fraction", 0.0, notes);
    c.packageWattsMean =
        metricOr(p, "package_watts_mean", 0.0, notes);
    c.shedFrac = metricOr(p, "shed_frac", 0.0, notes);
    return c;
}

// --- inline SVG line charts ---------------------------------------

/** Categorical palette (light mode), assigned to variants in sweep
 * order and never cycled — the schema caps variants at 8. */
const char *const kSeriesColors[8] = {
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
};

struct Series
{
    std::string name;
    std::string color;
    std::vector<std::pair<double, double>> xy;
};

/** Round `v` up to 1/2/5 x 10^k — tidy axis maxima. */
double
niceCeil(double v)
{
    if (v <= 0.0)
        return 1.0;
    const double mag = std::pow(10.0, std::floor(std::log10(v)));
    for (double m : {1.0, 2.0, 5.0, 10.0}) {
        if (v <= m * mag)
            return m * mag;
    }
    return 10.0 * mag;
}

/**
 * One self-contained SVG line chart: offered rate on x, `yLabel` on
 * y, one 2px line + markers per series, horizontal gridlines, a
 * legend row, and a direct label at each line's last point. Text
 * stays in ink colors; only marks wear series colors. Deterministic
 * output (fixed formatting, no timestamps or random ids).
 */
std::string
renderLineChart(const std::string &title, const std::string &yLabel,
                const std::vector<Series> &series)
{
    const double width = 640.0, height = 320.0;
    const double left = 64.0, right = width - 128.0;
    const double top = 64.0, bottom = height - 40.0;

    double max_x = 0.0, max_y = 0.0;
    std::vector<double> xticks;
    for (const Series &s : series) {
        for (const auto &[x, y] : s.xy) {
            max_x = std::max(max_x, x);
            max_y = std::max(max_y, y);
            if (std::find(xticks.begin(), xticks.end(), x)
                == xticks.end())
                xticks.push_back(x);
        }
    }
    std::sort(xticks.begin(), xticks.end());
    if (max_x <= 0.0)
        max_x = 1.0;
    const double y_max = niceCeil(max_y);
    const double x_span = max_x * 1.04;

    auto px = [&](double x) {
        return left + (right - left) * (x / x_span);
    };
    auto py = [&](double y) {
        return bottom - (bottom - top) * (y / y_max);
    };

    std::ostringstream svg;
    svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
        << fmtG(width) << "\" height=\"" << fmtG(height)
        << "\" viewBox=\"0 0 " << fmtG(width) << " " << fmtG(height)
        << "\" role=\"img\" font-family=\"system-ui, sans-serif\">\n";
    svg << "  <title>" << title << "</title>\n";
    svg << "  <text x=\"" << fmtG(left) << "\" y=\"20\" fill=\""
        << "#0b0b0b\" font-size=\"13\" font-weight=\"600\">" << title
        << "</text>\n";

    // Legend row under the title: colored swatch + ink-colored name.
    double lx = left;
    for (const Series &s : series) {
        svg << "  <line x1=\"" << fmtG(lx) << "\" y1=\"34\" x2=\""
            << fmtG(lx + 18.0) << "\" y2=\"34\" stroke=\"" << s.color
            << "\" stroke-width=\"2\"/>\n";
        svg << "  <text x=\"" << fmtG(lx + 23.0)
            << "\" y=\"38\" fill=\"#52514e\" font-size=\"11\">"
            << s.name << "</text>\n";
        lx += 23.0 + 7.0 * static_cast<double>(s.name.size()) + 18.0;
    }

    // Horizontal gridlines + y tick labels.
    for (int i = 0; i <= 4; ++i) {
        const double yv = y_max * i / 4.0;
        const double yp = py(yv);
        svg << "  <line x1=\"" << fmtG(left) << "\" y1=\""
            << fmtG(yp) << "\" x2=\"" << fmtG(right) << "\" y2=\""
            << fmtG(yp) << "\" stroke=\""
            << (i == 0 ? "#c3c2b7" : "#e1e0d9")
            << "\" stroke-width=\"1\"/>\n";
        svg << "  <text x=\"" << fmtG(left - 6.0) << "\" y=\""
            << fmtG(yp + 4.0)
            << "\" fill=\"#898781\" font-size=\"11\" "
               "text-anchor=\"end\">"
            << fmtG(yv) << "</text>\n";
    }
    svg << "  <text x=\"" << fmtG(left) << "\" y=\""
        << fmtG(top - 8.0) << "\" fill=\"#898781\" font-size=\"11\">"
        << yLabel << "</text>\n";

    // X ticks at the swept rates themselves (the grid is the data).
    const size_t stride =
        xticks.size() > 8 ? (xticks.size() + 7) / 8 : 1;
    for (size_t i = 0; i < xticks.size(); i += stride) {
        const double xp = px(xticks[i]);
        svg << "  <line x1=\"" << fmtG(xp) << "\" y1=\""
            << fmtG(bottom) << "\" x2=\"" << fmtG(xp) << "\" y2=\""
            << fmtG(bottom + 4.0)
            << "\" stroke=\"#c3c2b7\" stroke-width=\"1\"/>\n";
        svg << "  <text x=\"" << fmtG(xp) << "\" y=\""
            << fmtG(bottom + 17.0)
            << "\" fill=\"#898781\" font-size=\"11\" "
               "text-anchor=\"middle\">"
            << fmtG(xticks[i]) << "</text>\n";
    }
    svg << "  <text x=\"" << fmtG((left + right) / 2.0) << "\" y=\""
        << fmtG(height - 8.0)
        << "\" fill=\"#898781\" font-size=\"11\" "
           "text-anchor=\"middle\">offered rate (req/s)</text>\n";

    // Series: 2px line, 4px markers, direct label at the last point.
    for (const Series &s : series) {
        if (s.xy.empty())
            continue;
        svg << "  <polyline fill=\"none\" stroke=\"" << s.color
            << "\" stroke-width=\"2\" points=\"";
        for (size_t i = 0; i < s.xy.size(); ++i)
            svg << (i ? " " : "") << fmtG(px(s.xy[i].first)) << ","
                << fmtG(py(s.xy[i].second));
        svg << "\"/>\n";
        for (const auto &[x, y] : s.xy)
            svg << "  <circle cx=\"" << fmtG(px(x)) << "\" cy=\""
                << fmtG(py(y)) << "\" r=\"4\" fill=\"" << s.color
                << "\"/>\n";
        svg << "  <text x=\"" << fmtG(px(s.xy.back().first) + 8.0)
            << "\" y=\"" << fmtG(py(s.xy.back().second) + 4.0)
            << "\" fill=\"#52514e\" font-size=\"11\">" << s.name
            << "</text>\n";
    }

    svg << "</svg>";
    return svg.str();
}

/** Build one chart's series from the curves via a field extractor. */
template <typename Extract>
std::vector<Series>
makeSeries(const SweepCurves &curves, Extract extract)
{
    std::vector<Series> out;
    for (size_t i = 0; i < curves.variants.size(); ++i) {
        const VariantCurve &vc = curves.variants[i];
        Series s;
        s.name = vc.variant;
        s.color = kSeriesColors[i < 8 ? i : 7];
        for (const CurvePoint &p : vc.points)
            s.xy.emplace_back(p.ratePerSec, extract(p));
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace

SweepCurves
reduceSweep(const scenario::ScenarioConfig &config,
            const std::vector<SweepPoint> &points)
{
    const scenario::SweepParams &sweep = config.sweep;
    SweepCurves curves;

    // Regroup variant-major, rate-ascending, matching cells by
    // (variant name, rate). Grid order comes from the sweep block,
    // never from input order, so reduction is order-insensitive.
    // by_variant[vi][pi] stays aligned with variants[vi].points[pi]
    // even when grid cells are missing.
    std::vector<std::vector<SweepPoint>> by_variant;
    for (const scenario::SweepVariant &variant : sweep.variants) {
        VariantCurve vc;
        vc.variant = variant.name;
        std::vector<SweepPoint> mine;
        for (double rate : sweep.ratesPerSec) {
            const SweepPoint *found = nullptr;
            for (const SweepPoint &p : points) {
                if (p.variant == variant.name
                    && p.ratePerSec == rate) {
                    found = &p;
                    break;
                }
            }
            if (!found) {
                curves.notes.push_back(
                    "missing point (" + variant.name + ", "
                    + util::jsonNumber(rate) + ")");
                continue;
            }
            curves.points.push_back(*found);
            mine.push_back(*found);
            vc.points.push_back(toCurvePoint(*found, curves.notes));
        }
        by_variant.push_back(std::move(mine));
        // Knee: first swept rate whose sojourn p99 exceeds the
        // bound. Rates ascend, so this is the leftmost crossing.
        if (sweep.kneeP99Ns > 0.0) {
            for (const CurvePoint &p : vc.points) {
                if (p.sojournP99Ns > sweep.kneeP99Ns) {
                    vc.kneeFound = true;
                    vc.kneeRatePerSec = p.ratePerSec;
                    break;
                }
            }
        }
        curves.variants.push_back(std::move(vc));
    }

    // Gates: each non-first variant vs variants[0], per metric, per
    // rate index — same relative-regression rule as `compare`.
    if (!sweep.gates.empty() && curves.variants.size() >= 2) {
        const VariantCurve &base = curves.variants[0];
        for (size_t vi = 1; vi < curves.variants.size(); ++vi) {
            const VariantCurve &cur = curves.variants[vi];
            const size_t n =
                std::min(base.points.size(), cur.points.size());
            for (const scenario::ThresholdSpec &gate : sweep.gates) {
                for (size_t pi = 0; pi < n; ++pi) {
                    GateFinding g;
                    g.metric = gate.metric;
                    g.variant = cur.variant;
                    g.ratePerSec = cur.points[pi].ratePerSec;
                    g.lowerBetter = gate.lowerBetter;
                    g.maxRegression = gate.maxRegression;
                    auto value = [&gate](const SweepPoint &p) {
                        auto it = p.metrics.find(gate.metric);
                        return it != p.metrics.end() ? it->second
                                                     : 0.0;
                    };
                    g.baseline = value(by_variant[0][pi]);
                    g.current = value(by_variant[vi][pi]);
                    g.regression = scenario::relativeRegression(
                        g.baseline, g.current, g.lowerBetter);
                    g.failed = g.regression > g.maxRegression;
                    if (g.failed)
                        curves.gateFailure = true;
                    curves.gates.push_back(std::move(g));
                }
            }
        }
    }
    return curves;
}

std::string
writeCurvesJson(const scenario::ScenarioConfig &config,
                const SweepCurves &curves)
{
    const scenario::SweepParams &sweep = config.sweep;
    std::ostringstream out;
    out << "{\n"
        << "  \"name\": " << util::jsonQuote(config.name) << ",\n"
        << "  \"seed\": " << config.seed << ",\n"
        << "  \"arrivals\": "
        << util::jsonQuote(config.serve.arrivals) << ",\n"
        << "  \"knee_p99_ns\": " << util::jsonNumber(sweep.kneeP99Ns)
        << ",\n"
        << "  \"rates_per_sec\": [";
    for (size_t i = 0; i < sweep.ratesPerSec.size(); ++i)
        out << (i ? ", " : "")
            << util::jsonNumber(sweep.ratesPerSec[i]);
    out << "],\n"
        << "  \"variants\": [\n";

    auto array = [&out](const char *key, const VariantCurve &vc,
                        double (*get)(const CurvePoint &),
                        bool last = false) {
        out << "      \"" << key << "\": [";
        for (size_t i = 0; i < vc.points.size(); ++i)
            out << (i ? ", " : "")
                << util::jsonNumber(get(vc.points[i]));
        out << "]" << (last ? "" : ",") << "\n";
    };

    for (size_t i = 0; i < curves.variants.size(); ++i) {
        const VariantCurve &vc = curves.variants[i];
        out << "    {\n"
            << "      \"name\": " << util::jsonQuote(vc.variant)
            << ",\n"
            << "      \"knee_rate_per_sec\": "
            << (vc.kneeFound ? util::jsonNumber(vc.kneeRatePerSec)
                             : "null")
            << ",\n";
        array("offered_rate_per_sec", vc,
              [](const CurvePoint &p) { return p.ratePerSec; });
        array("accepted_rate_per_sec", vc, [](const CurvePoint &p) {
            return p.acceptedRatePerSec;
        });
        array("sojourn_p50_ns", vc,
              [](const CurvePoint &p) { return p.sojournP50Ns; });
        array("sojourn_p99_ns", vc,
              [](const CurvePoint &p) { return p.sojournP99Ns; });
        array("sojourn_p999_ns", vc,
              [](const CurvePoint &p) { return p.sojournP999Ns; });
        array("joules_per_request", vc, [](const CurvePoint &p) {
            return p.joulesPerRequest;
        });
        array("mean_parked_fraction", vc, [](const CurvePoint &p) {
            return p.meanParkedFraction;
        });
        array("package_watts_mean", vc, [](const CurvePoint &p) {
            return p.packageWattsMean;
        });
        array("shed_frac", vc,
              [](const CurvePoint &p) { return p.shedFrac; },
              /*last=*/true);
        out << "    }"
            << (i + 1 < curves.variants.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"gates_passed\": "
        << (curves.gateFailure ? "false" : "true") << ",\n"
        << "  \"gates\": [";
    for (size_t i = 0; i < curves.gates.size(); ++i) {
        const GateFinding &g = curves.gates[i];
        out << (i ? "," : "") << "\n    {\"metric\": "
            << util::jsonQuote(g.metric) << ", \"variant\": "
            << util::jsonQuote(g.variant) << ", \"rate_per_sec\": "
            << util::jsonNumber(g.ratePerSec) << ", \"direction\": \""
            << (g.lowerBetter ? "lower" : "higher")
            << "\", \"baseline\": " << util::jsonNumber(g.baseline)
            << ", \"current\": " << util::jsonNumber(g.current)
            << ", \"regression\": " << util::jsonNumber(g.regression)
            << ", \"max_regression\": "
            << util::jsonNumber(g.maxRegression) << ", \"failed\": "
            << (g.failed ? "true" : "false") << "}";
    }
    out << (curves.gates.empty() ? "" : "\n  ") << "],\n";

    // The determinism section: pure functions of (seed, rate), so
    // two live same-seed sweeps must match it exactly even though
    // their timing metrics differ.
    out << "  \"deterministic\": [";
    for (size_t i = 0; i < curves.points.size(); ++i) {
        const SweepPoint &p = curves.points[i];
        out << (i ? "," : "") << "\n    {\"variant\": "
            << util::jsonQuote(p.variant) << ", \"rate_per_sec\": "
            << util::jsonNumber(p.ratePerSec);
        for (const auto &[name, value] : p.deterministic)
            out << ", " << util::jsonQuote(name) << ": " << value;
        out << "}";
    }
    out << (curves.points.empty() ? "" : "\n  ") << "]\n"
        << "}\n";
    return out.str();
}

std::string
writeCurvesMd(const scenario::ScenarioConfig &config,
              const SweepCurves &curves)
{
    const scenario::SweepParams &sweep = config.sweep;
    std::ostringstream out;
    out << "# Sweep curves: " << config.name << "\n\n"
        << "- seed " << config.seed << ", arrivals `"
        << config.serve.arrivals << "`, "
        << sweep.ratesPerSec.size() << " rates x "
        << sweep.variants.size() << " variants, "
        << util::jsonNumber(config.serve.durationSec)
        << " s per point\n"
        << "- spin " << config.serve.spinNanos
        << " ns/request, admission "
        << (config.serve.admission ? "on" : "off") << " (high "
        << config.serve.admitHigh << " / low "
        << config.serve.admitLow << ")\n";
    if (sweep.kneeP99Ns > 0.0)
        out << "- knee bound: sojourn p99 > "
            << fmtG(sweep.kneeP99Ns / 1e6) << " ms\n";
    out << "\n";

    // Knee report first — it is the headline of the whole sweep.
    if (sweep.kneeP99Ns > 0.0) {
        out << "## Knee\n\n";
        for (const VariantCurve &vc : curves.variants) {
            if (vc.kneeFound)
                out << "- **" << vc.variant << "**: knee at **"
                    << fmtG(vc.kneeRatePerSec)
                    << " req/s** (first swept rate with p99 above "
                       "the bound)\n";
            else
                out << "- **" << vc.variant
                    << "**: no knee within the swept range\n";
        }
        out << "\n";
    }

    for (const VariantCurve &vc : curves.variants) {
        out << "## Variant `" << vc.variant << "`\n\n"
            << "| offered req/s | accepted req/s | p50 ms | p99 ms "
               "| p99.9 ms | J/request | parked frac | pkg W | shed "
               "frac |\n"
            << "|---|---|---|---|---|---|---|---|---|\n";
        for (const CurvePoint &p : vc.points) {
            out << "| " << fmtG(p.ratePerSec) << " | "
                << fmtG(p.acceptedRatePerSec) << " | "
                << fmtG(p.sojournP50Ns / 1e6) << " | "
                << fmtG(p.sojournP99Ns / 1e6) << " | "
                << fmtG(p.sojournP999Ns / 1e6) << " | "
                << fmtG(p.joulesPerRequest) << " | "
                << fmtG(p.meanParkedFraction) << " | "
                << fmtG(p.packageWattsMean) << " | "
                << fmtG(p.shedFrac) << " |\n";
        }
        out << "\n";
    }

    // One chart per measure (never dual axes); every value in the
    // charts is also in the tables above, so color is never the
    // only carrier.
    out << "## Charts\n\n";
    out << renderLineChart(
               "Sojourn p99 vs offered rate", "p99 (ms)",
               makeSeries(curves,
                          [](const CurvePoint &p) {
                              return p.sojournP99Ns / 1e6;
                          }))
        << "\n\n";
    out << renderLineChart(
               "Energy per request vs offered rate", "J/request",
               makeSeries(curves,
                          [](const CurvePoint &p) {
                              return p.joulesPerRequest;
                          }))
        << "\n\n";
    out << renderLineChart(
               "Mean package power vs offered rate", "watts",
               makeSeries(curves,
                          [](const CurvePoint &p) {
                              return p.packageWattsMean;
                          }))
        << "\n\n";

    out << "## Gates\n\n";
    if (curves.gates.empty()) {
        out << "No gates declared.\n";
    } else {
        out << (curves.gateFailure ? "**FAIL**" : "**PASS**")
            << " — every non-first variant vs `"
            << curves.variants.front().variant
            << "` at each rate.\n\n"
            << "| metric | variant | rate | baseline | current | "
               "regression | budget | verdict |\n"
            << "|---|---|---|---|---|---|---|---|\n";
        for (const GateFinding &g : curves.gates) {
            out << "| " << g.metric << " | " << g.variant << " | "
                << fmtG(g.ratePerSec) << " | " << fmtG(g.baseline)
                << " | " << fmtG(g.current) << " | "
                << fmtG(g.regression) << " | "
                << fmtG(g.maxRegression) << " | "
                << (g.failed ? "FAIL" : "ok") << " |\n";
        }
    }

    if (!curves.notes.empty()) {
        out << "\n## Notes\n\n";
        for (const std::string &n : curves.notes)
            out << "- " << n << "\n";
    }
    return out.str();
}

} // namespace hermes::harness::sweep
