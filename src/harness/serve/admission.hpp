/**
 * @file
 * Admission control for the serving harness: accept or shed each
 * offered request from an instantaneous view of the inject path.
 *
 * The controller is a pure hysteresis state machine — no clocks, no
 * threads, no runtime handles — fed two numbers per decision: the
 * current injected-but-undrained backlog and the cumulative spill
 * count from Runtime::injectTelemetry(). Purity keeps it unit-testable
 * (tests/test_admission.cpp drives it with synthetic sequences) and
 * keeps the producer hot path allocation- and lock-free: one branch
 * and a few counter bumps per offered request, never blocking.
 *
 * Hysteresis (enter shedding at highWatermark, leave at lowWatermark)
 * prevents flapping when the backlog hovers near a single threshold;
 * a spill event (ring shards full) optionally trips shedding
 * immediately, since spilling is the runtime's own signal that the
 * inject fast path is saturated.
 */

#ifndef HERMES_HARNESS_SERVE_ADMISSION_HPP
#define HERMES_HARNESS_SERVE_ADMISSION_HPP

#include <cstddef>
#include <cstdint>

namespace hermes::harness::serve {

/** Thresholds for the hysteresis machine. */
struct AdmissionConfig
{
    /** Backlog at or above this enters shedding. */
    size_t highWatermark = 1024;

    /** Backlog at or below this (with no fresh spill) leaves
     * shedding. Must be < highWatermark. */
    size_t lowWatermark = 256;

    /** Whether a spill-count increase also trips shedding. */
    bool shedOnSpill = true;
};

/**
 * Per-producer accept/shed decision maker. Not thread-safe: the
 * driver gives each producer thread its own controller and sums the
 * counters after the run (they are plain integers, so the sum is
 * exact).
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionConfig &config);

    /**
     * Decide one offered request. `backlog` is the instantaneous
     * inject backlog; `spillTotal` the cumulative spill counter (must
     * be monotone across calls — the first call sets the baseline,
     * so spills predating this controller are not a signal). Returns
     * true to accept, false to shed; counters update either way.
     */
    bool admit(size_t backlog, uint64_t spillTotal);

    /** Currently in the shedding state? */
    bool shedding() const { return shedding_; }

    /** Requests offered so far (== accepted() + shed() always). */
    uint64_t offered() const { return offered_; }

    /** Requests accepted so far. */
    uint64_t accepted() const { return accepted_; }

    /** Requests shed so far. */
    uint64_t shed() const { return shed_; }

    /** State flips (accept->shed or shed->accept) so far; a small
     * number relative to offered() demonstrates the hysteresis. */
    uint64_t transitions() const { return transitions_; }

  private:
    AdmissionConfig config_;
    bool shedding_ = false;
    bool primed_ = false;
    uint64_t lastSpill_ = 0;
    uint64_t offered_ = 0;
    uint64_t accepted_ = 0;
    uint64_t shed_ = 0;
    uint64_t transitions_ = 0;
};

} // namespace hermes::harness::serve

#endif // HERMES_HARNESS_SERVE_ADMISSION_HPP
