/**
 * @file
 * hermes-serve: open-loop request serving over Runtime::submit().
 *
 * Every macro-bench in this repo so far is batch-shaped (submit a
 * DAG, wait, time the makespan). The paper's energy story, though,
 * is about *servers*: tail latency and joules per request under an
 * offered load the runtime does not control. This driver closes that
 * gap. It replays a precomputed arrival schedule (arrivals.hpp) from
 * one or more producer threads, pushes each accepted request through
 * Runtime::submit(), timestamps submit/start/finish with
 * util::nowNanos(), and folds latencies into per-worker
 * LatencyRecorders merged after the run.
 *
 * Open-loop discipline, concretely:
 *  - producers pace against the wall clock, never against
 *    completions — a slow runtime makes the backlog grow, it does
 *    not slow the generator;
 *  - producers never block on the runtime: Runtime::submit() is
 *    non-blocking by contract and every SubmitHandle is *retained*
 *    until end-of-run — dropping one mid-run would run the handle's
 *    draining deleter and silently turn the generator closed-loop;
 *  - overload is handled by shedding, not back-pressure: each offered
 *    request consults an AdmissionController fed by
 *    Runtime::injectTelemetry(), and shed requests are counted, not
 *    queued.
 *
 * Energy per request comes from energy::LiveMeter sampling the
 * modeled package power for the whole run; the run bundle
 * (writeRunBundle) echoes the config, a Google-Benchmark-schema
 * summary JSON (so tools/bench_compare.py gates it unchanged), the
 * time series CSV, and the arrival schedule CSV.
 */

#ifndef HERMES_HARNESS_SERVE_SERVE_DRIVER_HPP
#define HERMES_HARNESS_SERVE_SERVE_DRIVER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "harness/faults/fault_plan.hpp"
#include "harness/serve/admission.hpp"
#include "harness/serve/arrivals.hpp"
#include "harness/serve/latency_recorder.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"

namespace hermes::harness::serve {

/** One entry of the request mix: a named service kernel. */
struct MixEntry
{
    std::string name = "spin";

    /** Relative arrival weight (feeds ArrivalConfig::mixWeights). */
    double weight = 1.0;

    /** Wall-clock busy-spin service time, used when `workload` is
     * empty. A timed spin (not an iteration count) so service time
     * survives sanitizer instrumentation and frequency scaling. */
    uint64_t spinNanos = 20'000;

    /** When non-empty, each request runs this registered workload
     * (workloads::runWorkload) at `scale`, seeded with the
     * request's own Arrival::requestSeed — the request body executes
     * on a worker, so the workload's TaskGroup waits help instead of
     * blocking. */
    std::string workload;

    /** Input size for `workload` requests. Keep it request-sized:
     * this is per-request service demand, not a batch run. */
    size_t scale = 1024;
};

/** Everything runServe() needs besides the Runtime. */
struct ServeConfig
{
    /** Arrival process; its mixWeights are overwritten from `mix` so
     * the mix has one source of truth. */
    ArrivalConfig arrivals;

    /** Request mix; must be non-empty. */
    std::vector<MixEntry> mix = {MixEntry{}};

    /** Producer (load-generator) threads; the schedule is dealt
     * round-robin so each producer's slice stays time-ordered. */
    unsigned producers = 1;

    /** Admission thresholds (see admission.hpp). */
    AdmissionConfig admission;

    /** When false every offered request is accepted (for measuring
     * raw saturation behavior). */
    bool admissionEnabled = true;

    /** Time-series sampling rate (offered/completed/parked/power). */
    double sampleHz = 100.0;

    /** Power-meter sampling rate (paper rig: 100 Hz). */
    double meterHz = 100.0;

    /** platform::profileByName() name for the power model. */
    std::string profileName = "SystemA";

    /** hermes-chaos: deterministic fault injection + request
     * lifecycle (deadlines/retries). Disabled by default; when
     * `faults.enabled` is false the run and its bundle are
     * byte-identical to the pre-chaos driver. See
     * docs/RESILIENCE.md. */
    faults::FaultConfig faults;
};

/** One row of the run's time series. */
struct SeriesSample
{
    double tSec = 0.0;          ///< seconds since run start
    uint64_t offered = 0;       ///< cumulative offered requests
    uint64_t accepted = 0;      ///< cumulative accepted requests
    uint64_t shed = 0;          ///< cumulative shed requests
    uint64_t completed = 0;     ///< cumulative finished requests
    size_t injectPending = 0;   ///< instantaneous inject backlog
    unsigned parkedWorkers = 0; ///< workers parked at sample time
    double packageWatts = 0.0;  ///< modeled package power
    /** Workers the watchdog currently suspects (heartbeat frozen,
     * not parked, past the detection threshold). Emitted into
     * timeseries.csv only when faults are enabled. */
    unsigned stalledWorkers = 0;
};

/** Everything a serving run produced. */
struct ServeResult
{
    uint64_t offered = 0;
    uint64_t accepted = 0;
    uint64_t shed = 0;
    uint64_t completed = 0;
    uint64_t admissionTransitions = 0;

    /**
     * Outcome taxonomy (docs/RESILIENCE.md). Every offered request
     * lands in exactly one terminal bucket —
     *   offered == shed + ok + retriedOk + failed + deadlineExpired
     * — asserted at end-of-run. All zero except `ok` when faults are
     * disabled (then ok == accepted).
     */
    uint64_t ok = 0;              ///< succeeded on the first attempt
    uint64_t retriedOk = 0;       ///< succeeded after >=1 retry
    uint64_t failed = 0;          ///< every attempt threw (bounded retries spent)
    uint64_t deadlineExpired = 0; ///< deadline passed; counted, not waited on
    uint64_t retriesSpent = 0;    ///< total retry attempts across requests
    uint64_t stragglers = 0;      ///< requests with inflated service time
    uint64_t injectedFaults = 0;  ///< injected exception throws (per attempt)

    /** Watchdog: stall episodes detected (a worker's heartbeat frozen
     * while unparked across consecutive samples) and the compensating
     * wakes issued so parked peers pick up the stranded backlog. */
    uint64_t watchdogStalls = 0;
    uint64_t compensatingWakes = 0;

    /** Successful requests per wall second: (ok + retriedOk) / wall. */
    double goodputPerSec = 0.0;

    /** finish − submit of completed requests (queueing + service).
     * Successful requests only: failed and deadline-expired requests
     * are counted in their buckets, not folded into latency (see the
     * coordinated-omission note in docs/RESILIENCE.md). */
    LatencyRecorder sojourn;
    /** start − submit (time spent queued before a worker picked it
     * up). */
    LatencyRecorder queueing;
    /** finish − start (service time as executed). */
    LatencyRecorder service;
    /** Alias view for gating: sojourn of successful requests only
     * (== sojourn today; kept distinct so the healthy-path recorder
     * can widen later without breaking p99-of-successful gates). */
    LatencyRecorder successSojourn;

    double wallSeconds = 0.0;       ///< first submit to last completion
    double joules = 0.0;            ///< metered energy over the run
    double joulesPerRequest = 0.0;  ///< joules / completed (0 if none)

    runtime::InjectTelemetry inject; ///< final inject-path snapshot
    runtime::RuntimeStats stats;     ///< final scheduler counters

    std::vector<SeriesSample> series;
    std::vector<Arrival> schedule; ///< echoed into the bundle

    /** The per-request fault schedule as drawn (empty requests vector
     * when faults are disabled); echoed into faults.csv. */
    faults::FaultPlan faultPlan;

    ServeConfig config; ///< the (mix-weight-resolved) config as run
};

/**
 * Execute one serving run against `rt`. Blocks until every accepted
 * request has completed (handles are retained and waited at the
 * end). The runtime outlives the call and can be reused.
 */
ServeResult runServe(runtime::Runtime &rt, const ServeConfig &config);

/**
 * Write the run bundle into directory `dir` (created if needed):
 * config.json (config echo), summary.json (Google Benchmark schema —
 * bench_compare.py-gateable counters), timeseries.csv, schedule.csv.
 * JSON artifacts are written atomically (temp file + rename). With
 * faults enabled the bundle additionally gets faults.csv (the drawn
 * fault plan, byte-identical per seed), outcome counters in
 * summary.json, and a stalled_workers column in timeseries.csv;
 * with faults disabled the bundle is byte-identical to the
 * pre-chaos layout.
 */
void writeRunBundle(const std::string &dir, const ServeResult &result);

} // namespace hermes::harness::serve

#endif // HERMES_HARNESS_SERVE_SERVE_DRIVER_HPP
