#include "harness/serve/arrivals.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace hermes::harness::serve {

namespace {

/** Sub-stream ids hung off the base seed via util::mix64. Request
 * streams occupy 2 + i for arrival index i, so the MMPP modulation
 * stream sits far above any reachable request stream — a schedule
 * would need ~2^62 arrivals before colliding with it. */
constexpr uint64_t kGapStream = 0;
constexpr uint64_t kMixStream = 1;
constexpr uint64_t kRequestStreamBase = 2;
constexpr uint64_t kModulationStream = 0x4d4d5050ULL << 32; // "MMPP"

/** Draw a mix index from cumulative weights with one uniform. */
uint32_t
drawMixIndex(util::Rng &rng, const std::vector<double> &weights,
             double total)
{
    const double u = rng.uniform() * total;
    double cumulative = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        cumulative += weights[i];
        if (u < cumulative)
            return static_cast<uint32_t>(i);
    }
    return static_cast<uint32_t>(weights.size() - 1);
}

double
validateMixWeights(const ArrivalConfig &config)
{
    HERMES_ASSERT(!config.mixWeights.empty(),
                  "mixWeights must be non-empty");
    double total_weight = 0.0;
    for (double w : config.mixWeights) {
        HERMES_ASSERT(w >= 0.0, "mix weights must be >= 0");
        total_weight += w;
    }
    HERMES_ASSERT(total_weight > 0.0,
                  "mix weights must have a positive total");
    return total_weight;
}

/** Decorate raw offsets with mix indices and per-request seeds.
 * Mix and seed draws depend only on the arrival *index*, never on
 * the offsets, so the same decoration applies to every generator. */
std::vector<Arrival>
decorateOffsets(const ArrivalConfig &config, double total_weight,
                const std::vector<uint64_t> &offsets)
{
    util::Rng mix_rng(util::mix64(config.seed, kMixStream));
    std::vector<Arrival> schedule;
    schedule.reserve(offsets.size());
    for (uint64_t i = 0; i < offsets.size(); ++i) {
        Arrival a;
        a.offsetNanos = offsets[i];
        a.mixIndex =
            drawMixIndex(mix_rng, config.mixWeights, total_weight);
        a.requestSeed = util::mix64(config.seed, kRequestStreamBase + i);
        schedule.push_back(a);
    }
    return schedule;
}

std::vector<Arrival>
generatePoisson(const ArrivalConfig &config, double rate_per_sec)
{
    HERMES_ASSERT(rate_per_sec > 0.0, "ratePerSec must be > 0");
    HERMES_ASSERT(config.durationSec > 0.0, "durationSec must be > 0");
    const double total_weight = validateMixWeights(config);

    util::Rng gap_rng(util::mix64(config.seed, kGapStream));

    const double mean_gap_nanos = 1e9 / rate_per_sec;
    const double horizon_nanos = config.durationSec * 1e9;

    std::vector<uint64_t> offsets;
    offsets.reserve(static_cast<size_t>(
        rate_per_sec * config.durationSec * 1.25) + 16);

    // Accumulate in double, truncate per arrival: both operations are
    // IEEE-deterministic, so the schedule is bitwise-stable per seed.
    double t = 0.0;
    for (;;) {
        t += gap_rng.exponential(mean_gap_nanos);
        if (t > horizon_nanos)
            break;
        offsets.push_back(static_cast<uint64_t>(t));
    }
    return decorateOffsets(config, total_weight, offsets);
}

void
validateMmpp(const ArrivalConfig &config)
{
    HERMES_ASSERT(config.durationSec > 0.0, "durationSec must be > 0");
    HERMES_ASSERT(config.mmpp.baseRatePerSec > 0.0,
                  "mmpp baseRatePerSec must be > 0");
    HERMES_ASSERT(config.mmpp.burstRatePerSec > 0.0,
                  "mmpp burstRatePerSec must be > 0");
    HERMES_ASSERT(config.mmpp.baseDwellSec > 0.0,
                  "mmpp baseDwellSec must be > 0");
    HERMES_ASSERT(config.mmpp.burstDwellSec > 0.0,
                  "mmpp burstDwellSec must be > 0");
}

std::vector<Arrival>
generateMmpp(const ArrivalConfig &config)
{
    validateMmpp(config);

    // Equal rates: the process *is* Poisson. Short-circuit to the
    // Poisson generator so the schedule is byte-identical to kPoisson
    // at that rate — the modulation stream is decorrelated, so
    // skipping its draws cannot perturb gap, mix, or seed draws.
    if (config.mmpp.baseRatePerSec == config.mmpp.burstRatePerSec)
        return generatePoisson(config, config.mmpp.baseRatePerSec);

    const double total_weight = validateMixWeights(config);
    const std::vector<MmppSegment> timeline = mmppStateTimeline(config);

    util::Rng gap_rng(util::mix64(config.seed, kGapStream));

    std::vector<uint64_t> offsets;
    const double mean_rate =
        (config.mmpp.baseRatePerSec * config.mmpp.baseDwellSec
         + config.mmpp.burstRatePerSec * config.mmpp.burstDwellSec)
        / (config.mmpp.baseDwellSec + config.mmpp.burstDwellSec);
    offsets.reserve(static_cast<size_t>(
        mean_rate * config.durationSec * 1.25) + 16);

    // Per segment, draw Poisson gaps at the segment's rate starting
    // from the segment boundary; the draw that overshoots the segment
    // end is discarded. Restarting the exponential clock at each
    // boundary is exact, not an approximation: the exponential is
    // memoryless.
    for (const MmppSegment &seg : timeline) {
        const double rate = seg.burst ? config.mmpp.burstRatePerSec
                                      : config.mmpp.baseRatePerSec;
        const double mean_gap_nanos = 1e9 / rate;
        const double end_nanos = static_cast<double>(seg.endNanos);
        double t = static_cast<double>(seg.startNanos);
        for (;;) {
            t += gap_rng.exponential(mean_gap_nanos);
            if (t > end_nanos)
                break;
            offsets.push_back(static_cast<uint64_t>(t));
        }
    }
    return decorateOffsets(config, total_weight, offsets);
}

} // namespace

std::vector<MmppSegment>
mmppStateTimeline(const ArrivalConfig &config)
{
    validateMmpp(config);

    util::Rng mod_rng(util::mix64(config.seed, kModulationStream));
    const double horizon_nanos = config.durationSec * 1e9;

    std::vector<MmppSegment> timeline;
    bool burst = false; // the process starts in the base state
    double t = 0.0;
    while (t < horizon_nanos) {
        const double dwell_nanos = mod_rng.exponential(
            (burst ? config.mmpp.burstDwellSec
                   : config.mmpp.baseDwellSec) * 1e9);
        const double end = t + dwell_nanos;
        MmppSegment seg;
        seg.startNanos = static_cast<uint64_t>(t);
        seg.endNanos = static_cast<uint64_t>(
            end < horizon_nanos ? end : horizon_nanos);
        seg.burst = burst;
        timeline.push_back(seg);
        t = end;
        burst = !burst;
    }
    return timeline;
}

std::vector<Arrival>
generateSchedule(const ArrivalConfig &config)
{
    switch (config.mode) {
      case ArrivalMode::kPoisson:
        return generatePoisson(config, config.ratePerSec);
      case ArrivalMode::kTrace:
        return loadTraceCsv(config.tracePath);
      case ArrivalMode::kMmpp:
        return generateMmpp(config);
    }
    util::fatal("unknown ArrivalMode");
    return {};
}

void
writeScheduleCsv(util::CsvWriter &csv,
                 const std::vector<Arrival> &schedule)
{
    csv.row({"offset_nanos", "mix_index", "request_seed"});
    for (const Arrival &a : schedule) {
        csv.row({std::to_string(a.offsetNanos),
                 std::to_string(a.mixIndex),
                 std::to_string(a.requestSeed)});
    }
}

std::vector<Arrival>
loadTraceCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open trace CSV: " + path);

    std::vector<Arrival> schedule;
    std::string line;
    bool first = true;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (first) {
            first = false; // header row
            continue;
        }
        std::istringstream cells(line);
        std::string offset, mix, seed;
        if (!std::getline(cells, offset, ',')
            || !std::getline(cells, mix, ',')
            || !std::getline(cells, seed, ',')) {
            util::fatal("malformed trace row " + std::to_string(line_no)
                        + " in " + path);
        }
        Arrival a;
        try {
            a.offsetNanos = std::stoull(offset);
            a.mixIndex = static_cast<uint32_t>(std::stoul(mix));
            a.requestSeed = std::stoull(seed);
        } catch (const std::exception &) {
            util::fatal("non-numeric trace row "
                        + std::to_string(line_no) + " in " + path);
        }
        schedule.push_back(a);
    }
    return schedule;
}

} // namespace hermes::harness::serve
