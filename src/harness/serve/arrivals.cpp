#include "harness/serve/arrivals.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace hermes::harness::serve {

namespace {

/** Sub-stream ids hung off the base seed via util::mix64. */
constexpr uint64_t kGapStream = 0;
constexpr uint64_t kMixStream = 1;
constexpr uint64_t kRequestStreamBase = 2;

/** Draw a mix index from cumulative weights with one uniform. */
uint32_t
drawMixIndex(util::Rng &rng, const std::vector<double> &weights,
             double total)
{
    const double u = rng.uniform() * total;
    double cumulative = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        cumulative += weights[i];
        if (u < cumulative)
            return static_cast<uint32_t>(i);
    }
    return static_cast<uint32_t>(weights.size() - 1);
}

std::vector<Arrival>
generatePoisson(const ArrivalConfig &config)
{
    HERMES_ASSERT(config.ratePerSec > 0.0, "ratePerSec must be > 0");
    HERMES_ASSERT(config.durationSec > 0.0, "durationSec must be > 0");
    HERMES_ASSERT(!config.mixWeights.empty(),
                  "mixWeights must be non-empty");
    double total_weight = 0.0;
    for (double w : config.mixWeights) {
        HERMES_ASSERT(w >= 0.0, "mix weights must be >= 0");
        total_weight += w;
    }
    HERMES_ASSERT(total_weight > 0.0,
                  "mix weights must have a positive total");

    util::Rng gap_rng(util::mix64(config.seed, kGapStream));
    util::Rng mix_rng(util::mix64(config.seed, kMixStream));

    const double mean_gap_nanos = 1e9 / config.ratePerSec;
    const double horizon_nanos = config.durationSec * 1e9;

    std::vector<Arrival> schedule;
    schedule.reserve(static_cast<size_t>(
        config.ratePerSec * config.durationSec * 1.25) + 16);

    // Accumulate in double, truncate per arrival: both operations are
    // IEEE-deterministic, so the schedule is bitwise-stable per seed.
    double t = 0.0;
    for (uint64_t i = 0;; ++i) {
        t += gap_rng.exponential(mean_gap_nanos);
        if (t > horizon_nanos)
            break;
        Arrival a;
        a.offsetNanos = static_cast<uint64_t>(t);
        a.mixIndex =
            drawMixIndex(mix_rng, config.mixWeights, total_weight);
        a.requestSeed = util::mix64(config.seed, kRequestStreamBase + i);
        schedule.push_back(a);
    }
    return schedule;
}

} // namespace

std::vector<Arrival>
generateSchedule(const ArrivalConfig &config)
{
    switch (config.mode) {
      case ArrivalMode::kPoisson:
        return generatePoisson(config);
      case ArrivalMode::kTrace:
        return loadTraceCsv(config.tracePath);
    }
    util::fatal("unknown ArrivalMode");
    return {};
}

void
writeScheduleCsv(util::CsvWriter &csv,
                 const std::vector<Arrival> &schedule)
{
    csv.row({"offset_nanos", "mix_index", "request_seed"});
    for (const Arrival &a : schedule) {
        csv.row({std::to_string(a.offsetNanos),
                 std::to_string(a.mixIndex),
                 std::to_string(a.requestSeed)});
    }
}

std::vector<Arrival>
loadTraceCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open trace CSV: " + path);

    std::vector<Arrival> schedule;
    std::string line;
    bool first = true;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (first) {
            first = false; // header row
            continue;
        }
        std::istringstream cells(line);
        std::string offset, mix, seed;
        if (!std::getline(cells, offset, ',')
            || !std::getline(cells, mix, ',')
            || !std::getline(cells, seed, ',')) {
            util::fatal("malformed trace row " + std::to_string(line_no)
                        + " in " + path);
        }
        Arrival a;
        try {
            a.offsetNanos = std::stoull(offset);
            a.mixIndex = static_cast<uint32_t>(std::stoul(mix));
            a.requestSeed = std::stoull(seed);
        } catch (const std::exception &) {
            util::fatal("non-numeric trace row "
                        + std::to_string(line_no) + " in " + path);
        }
        schedule.push_back(a);
    }
    return schedule;
}

} // namespace hermes::harness::serve
