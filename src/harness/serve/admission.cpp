#include "harness/serve/admission.hpp"

#include "util/assert.hpp"

namespace hermes::harness::serve {

AdmissionController::AdmissionController(const AdmissionConfig &config)
    : config_(config)
{
    HERMES_ASSERT(config_.lowWatermark < config_.highWatermark,
                  "lowWatermark must be below highWatermark");
}

bool
AdmissionController::admit(size_t backlog, uint64_t spillTotal)
{
    // The first observation sets the spill baseline: spills from
    // before this controller existed (a reused runtime) are history,
    // not a signal.
    if (!primed_) {
        lastSpill_ = spillTotal;
        primed_ = true;
    }
    const bool fresh_spill =
        config_.shedOnSpill && spillTotal > lastSpill_;
    lastSpill_ = spillTotal;

    if (!shedding_) {
        if (backlog >= config_.highWatermark || fresh_spill) {
            shedding_ = true;
            ++transitions_;
        }
    } else {
        // Leaving requires the backlog to drain BELOW the low
        // watermark, not merely below high — the gap is what stops
        // accept/shed flapping when load hovers near one threshold.
        if (backlog <= config_.lowWatermark && !fresh_spill) {
            shedding_ = false;
            ++transitions_;
        }
    }

    ++offered_;
    if (shedding_) {
        ++shed_;
        return false;
    }
    ++accepted_;
    return true;
}

} // namespace hermes::harness::serve
