#include "harness/serve/serve_driver.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "energy/meter.hpp"
#include "energy/power_model.hpp"
#include "platform/system_profile.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/time.hpp"
#include "workloads/registry.hpp"

namespace hermes::harness::serve {

namespace {

/** Per-worker latency sinks. Each is written only by its owner
 * worker; the merge happens after every SubmitHandle has been
 * waited, so completion-synchronization orders writer before
 * reader. Cache-line aligned so neighbors' count bumps do not
 * false-share. */
struct alignas(64) WorkerRecorders
{
    LatencyRecorder sojourn;
    LatencyRecorder queueing;
    LatencyRecorder service;
};

/** Busy-spin for `nanos` of wall-clock time. Timed, not counted:
 * iteration-count kernels change meaning under sanitizer
 * instrumentation and DVFS, wall-clock spins do not. */
void
spinFor(uint64_t nanos)
{
    const uint64_t deadline = util::nowNanos() + nanos;
    while (util::nowNanos() < deadline) {
        // spin
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Shortest round-trip double formatting for JSON values. */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** A mix entry compiled to a callable request kernel. */
using Kernel = std::function<void(runtime::Runtime &, uint64_t)>;

Kernel
compileKernel(const MixEntry &m)
{
    if (m.workload.empty()) {
        const uint64_t spin = m.spinNanos;
        return [spin](runtime::Runtime &, uint64_t) { spinFor(spin); };
    }
    return [name = m.workload, scale = m.scale](runtime::Runtime &rt,
                                                uint64_t seed) {
        workloads::runWorkload(rt, name, scale, seed);
    };
}

} // namespace

ServeResult
runServe(runtime::Runtime &rt, const ServeConfig &config)
{
    HERMES_ASSERT(!config.mix.empty(), "mix must be non-empty");
    HERMES_ASSERT(config.producers >= 1, "need at least one producer");

    ServeResult result;
    result.config = config;

    // The mix is the one source of truth for arrival weights.
    result.config.arrivals.mixWeights.clear();
    for (const MixEntry &m : config.mix)
        result.config.arrivals.mixWeights.push_back(m.weight);
    result.schedule = generateSchedule(result.config.arrivals);
    for (const Arrival &a : result.schedule) {
        HERMES_ASSERT(a.mixIndex < config.mix.size(),
                      "schedule mix index out of range for this mix");
    }

    const unsigned num_workers = rt.numWorkers();
    std::vector<WorkerRecorders> recorders(num_workers);

    std::vector<Kernel> kernels;
    kernels.reserve(config.mix.size());
    for (const MixEntry &m : config.mix)
        kernels.push_back(compileKernel(m));

    // Live counters the sampler thread reads mid-run. Relaxed: the
    // series is an observational trace, not a synchronization edge.
    std::atomic<uint64_t> offered_live{0};
    std::atomic<uint64_t> accepted_live{0};
    std::atomic<uint64_t> shed_live{0};
    std::atomic<uint64_t> completed_live{0};

    const energy::PowerModel model(
        platform::profileByName(config.profileName));
    energy::LiveMeter meter(
        [&rt, model] { return rt.packagePower(model); },
        config.meterHz);

    std::atomic<bool> sampling{true};
    std::vector<SeriesSample> series;
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t t0_ns = util::nowNanos();

    std::thread sampler([&] {
        const auto period = std::chrono::nanoseconds(
            static_cast<uint64_t>(1e9 / config.sampleHz));
        auto next = std::chrono::steady_clock::now();
        while (sampling.load(std::memory_order_acquire)) {
            SeriesSample s;
            s.tSec =
                static_cast<double>(util::nowNanos() - t0_ns) / 1e9;
            s.offered = offered_live.load(std::memory_order_relaxed);
            s.accepted = accepted_live.load(std::memory_order_relaxed);
            s.shed = shed_live.load(std::memory_order_relaxed);
            s.completed =
                completed_live.load(std::memory_order_relaxed);
            s.injectPending = rt.injectTelemetry().pending;
            s.parkedWorkers = rt.parkedWorkers();
            s.packageWatts = rt.packagePower(model);
            series.push_back(s);
            next += period;
            std::this_thread::sleep_until(next);
        }
    });
    meter.start();

    // One controller and one handle vector per producer: both are
    // single-threaded by construction, so the submit loop takes no
    // locks and never blocks on the runtime or on its peers.
    std::vector<AdmissionController> admissions(
        config.producers, AdmissionController(config.admission));
    std::vector<std::vector<runtime::SubmitHandle>> handles(
        config.producers);

    std::vector<std::thread> producers;
    producers.reserve(config.producers);
    for (unsigned p = 0; p < config.producers; ++p) {
        handles[p].reserve(
            result.schedule.size() / config.producers + 1);
        producers.emplace_back([&, p] {
            AdmissionController &admission = admissions[p];
            // Round-robin deal: producer p owns arrivals p,
            // p + producers, ... — each slice stays time-ordered.
            for (size_t i = p; i < result.schedule.size();
                 i += config.producers) {
                const Arrival &a = result.schedule[i];
                std::this_thread::sleep_until(
                    t0 + std::chrono::nanoseconds(a.offsetNanos));

                offered_live.fetch_add(1, std::memory_order_relaxed);
                if (config.admissionEnabled) {
                    const auto telemetry = rt.injectTelemetry();
                    if (!admission.admit(telemetry.pending,
                                         telemetry.spill)) {
                        shed_live.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                } else {
                    admission.admit(0, 0);
                }
                accepted_live.fetch_add(1, std::memory_order_relaxed);

                const Kernel *kernel = &kernels[a.mixIndex];
                const uint64_t request_seed = a.requestSeed;
                WorkerRecorders *sinks = recorders.data();
                std::atomic<uint64_t> *completed = &completed_live;
                runtime::Runtime *rt_ptr = &rt;
                const uint64_t submit_ns = util::nowNanos();
                handles[p].push_back(rt.submit(
                    [submit_ns, kernel, request_seed, sinks,
                     completed, rt_ptr] {
                        const uint64_t start_ns = util::nowNanos();
                        (*kernel)(*rt_ptr, request_seed);
                        const uint64_t finish_ns = util::nowNanos();
                        const auto w = runtime::Runtime::currentWorker();
                        HERMES_ASSERT(w != core::invalidWorker,
                                      "request body ran off-worker");
                        sinks[w].sojourn.record(finish_ns - submit_ns);
                        sinks[w].queueing.record(start_ns - submit_ns);
                        sinks[w].service.record(finish_ns - start_ns);
                        completed->fetch_add(
                            1, std::memory_order_relaxed);
                    }));
            }
        });
    }

    for (std::thread &t : producers)
        t.join();
    // Retained handles are waited only now — releasing one mid-run
    // would block the producer in the handle's draining deleter and
    // silently turn the generator closed-loop.
    for (auto &producer_handles : handles) {
        for (runtime::SubmitHandle &h : producer_handles)
            h.wait();
        producer_handles.clear();
    }
    const uint64_t end_ns = util::nowNanos();

    meter.stop();
    sampling.store(false, std::memory_order_release);
    sampler.join();

    for (const AdmissionController &admission : admissions) {
        result.offered += admission.offered();
        result.accepted += admission.accepted();
        result.shed += admission.shed();
        result.admissionTransitions += admission.transitions();
    }
    result.completed = completed_live.load(std::memory_order_relaxed);
    for (const WorkerRecorders &r : recorders) {
        result.sojourn.merge(r.sojourn);
        result.queueing.merge(r.queueing);
        result.service.merge(r.service);
    }
    result.wallSeconds = static_cast<double>(end_ns - t0_ns) / 1e9;
    result.joules = meter.joules();
    result.joulesPerRequest = result.completed != 0
        ? result.joules / static_cast<double>(result.completed)
        : 0.0;
    result.inject = rt.injectTelemetry();
    result.stats = rt.stats();
    result.series = std::move(series);
    return result;
}

void
writeRunBundle(const std::string &dir, const ServeResult &result)
{
    std::filesystem::create_directories(dir);
    const ServeConfig &config = result.config;

    { // config.json — the run's inputs, echoed for reproduction.
        std::ofstream out(dir + "/config.json");
        if (!out)
            util::fatal("cannot write " + dir + "/config.json");
        out << "{\n"
            << "  \"seed\": " << config.arrivals.seed << ",\n"
            << "  \"mode\": \""
            << (config.arrivals.mode == ArrivalMode::kPoisson
                    ? "poisson" : "trace") << "\",\n"
            << "  \"rate_per_sec\": "
            << jsonNumber(config.arrivals.ratePerSec) << ",\n"
            << "  \"duration_sec\": "
            << jsonNumber(config.arrivals.durationSec) << ",\n"
            << "  \"trace_path\": \""
            << jsonEscape(config.arrivals.tracePath) << "\",\n"
            << "  \"producers\": " << config.producers << ",\n"
            << "  \"admission_enabled\": "
            << (config.admissionEnabled ? "true" : "false") << ",\n"
            << "  \"admission_high_watermark\": "
            << config.admission.highWatermark << ",\n"
            << "  \"admission_low_watermark\": "
            << config.admission.lowWatermark << ",\n"
            << "  \"admission_shed_on_spill\": "
            << (config.admission.shedOnSpill ? "true" : "false")
            << ",\n"
            << "  \"sample_hz\": " << jsonNumber(config.sampleHz)
            << ",\n"
            << "  \"meter_hz\": " << jsonNumber(config.meterHz)
            << ",\n"
            << "  \"profile\": \"" << jsonEscape(config.profileName)
            << "\",\n"
            << "  \"mix\": [";
        for (size_t i = 0; i < config.mix.size(); ++i) {
            const MixEntry &m = config.mix[i];
            out << (i ? ", " : "") << "{\"name\": \""
                << jsonEscape(m.name) << "\", \"weight\": "
                << jsonNumber(m.weight) << ", \"spin_nanos\": "
                << m.spinNanos << ", \"workload\": \""
                << jsonEscape(m.workload) << "\", \"scale\": "
                << m.scale << "}";
        }
        out << "]\n}\n";
    }

    { // summary.json — Google Benchmark schema so the existing
      // tools/bench_compare.py gates the counters unchanged.
        std::ofstream out(dir + "/summary.json");
        if (!out)
            util::fatal("cannot write " + dir + "/summary.json");
        const double offered = static_cast<double>(result.offered);
        const double shed_frac = result.offered != 0
            ? static_cast<double>(result.shed) / offered : 0.0;
        const double inject_total = static_cast<double>(
            result.inject.fastPath + result.inject.spill);
        const double inject_fast_frac = inject_total > 0.0
            ? static_cast<double>(result.inject.fastPath)
                / inject_total
            : 1.0;
        const double wall = result.wallSeconds;
        out << "{\n"
            << "  \"context\": {\"executable\": \"hermes-serve\"},\n"
            << "  \"benchmarks\": [\n"
            << "    {\n"
            << "      \"name\": \"serve/summary\",\n"
            << "      \"run_type\": \"iteration\",\n"
            << "      \"iterations\": 1,\n"
            << "      \"real_time\": " << jsonNumber(wall * 1e9)
            << ",\n"
            << "      \"time_unit\": \"ns\",\n"
            << "      \"items_per_second\": "
            << jsonNumber(wall > 0.0
                              ? static_cast<double>(result.completed)
                                  / wall
                              : 0.0)
            << ",\n"
            << "      \"counters\": {\n"
            << "        \"offered\": " << result.offered << ",\n"
            << "        \"accepted\": " << result.accepted << ",\n"
            << "        \"shed\": " << result.shed << ",\n"
            << "        \"completed\": " << result.completed << ",\n"
            << "        \"shed_frac\": " << jsonNumber(shed_frac)
            << ",\n"
            << "        \"inject_fast_frac\": "
            << jsonNumber(inject_fast_frac) << ",\n"
            << "        \"completed_eq_accepted\": "
            << (result.completed == result.accepted ? 1 : 0) << ",\n"
            << "        \"admission_transitions\": "
            << result.admissionTransitions << ",\n"
            << "        \"sojourn_p50_ns\": "
            << result.sojourn.quantileNanos(0.50) << ",\n"
            << "        \"sojourn_p99_ns\": "
            << result.sojourn.quantileNanos(0.99) << ",\n"
            << "        \"sojourn_p999_ns\": "
            << result.sojourn.quantileNanos(0.999) << ",\n"
            << "        \"sojourn_mean_ns\": "
            << jsonNumber(result.sojourn.meanNanos()) << ",\n"
            << "        \"queueing_p99_ns\": "
            << result.queueing.quantileNanos(0.99) << ",\n"
            << "        \"service_p50_ns\": "
            << result.service.quantileNanos(0.50) << ",\n"
            << "        \"joules\": " << jsonNumber(result.joules)
            << ",\n"
            << "        \"joules_per_request\": "
            << jsonNumber(result.joulesPerRequest) << "\n"
            << "      }\n"
            << "    }\n"
            << "  ]\n"
            << "}\n";
    }

    { // timeseries.csv — the run as the paper's strip charts see it.
        util::CsvWriter csv(dir + "/timeseries.csv");
        csv.row({"t_sec", "offered", "accepted", "shed", "completed",
                 "inject_pending", "parked_workers", "package_watts"});
        char t_buf[64], w_buf[64];
        for (const SeriesSample &s : result.series) {
            std::snprintf(t_buf, sizeof(t_buf), "%.6f", s.tSec);
            std::snprintf(w_buf, sizeof(w_buf), "%.6f",
                          s.packageWatts);
            csv.row({t_buf, std::to_string(s.offered),
                     std::to_string(s.accepted),
                     std::to_string(s.shed),
                     std::to_string(s.completed),
                     std::to_string(s.injectPending),
                     std::to_string(s.parkedWorkers), w_buf});
        }
    }

    { // schedule.csv — byte-identical per seed; diff two runs to
      // check the determinism claim.
        util::CsvWriter csv(dir + "/schedule.csv");
        writeScheduleCsv(csv, result.schedule);
    }

    util::inform("serve: wrote run bundle to " + dir);
}

} // namespace hermes::harness::serve
