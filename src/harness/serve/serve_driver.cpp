#include "harness/serve/serve_driver.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <sstream>
#include <thread>

#include "energy/meter.hpp"
#include "energy/power_model.hpp"
#include "platform/system_profile.hpp"
#include "util/assert.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/time.hpp"
#include "workloads/registry.hpp"

namespace hermes::harness::serve {

namespace {

/** Per-worker latency sinks. Each is written only by its owner
 * worker; the merge happens after every SubmitHandle has been
 * waited, so completion-synchronization orders writer before
 * reader. Cache-line aligned so neighbors' count bumps do not
 * false-share. */
struct alignas(64) WorkerRecorders
{
    LatencyRecorder sojourn;
    LatencyRecorder queueing;
    LatencyRecorder service;
    LatencyRecorder successSojourn;
    // Outcome taxonomy, same owner-worker write discipline as the
    // recorders above (plain words: no other thread reads them until
    // after every handle has been waited).
    uint64_t ok = 0;
    uint64_t retriedOk = 0;
    uint64_t failed = 0;
    uint64_t deadlineExpired = 0;
    uint64_t retriesSpent = 0;
    uint64_t stragglers = 0;
    uint64_t injectedFaults = 0;
};

/** Run-wide chaos context shared by every request body. Split from
 * the per-request RequestFault so the request lambda stays within
 * TaskFn's 64-byte inline budget — the healthy path must not start
 * boxing closures because chaos exists. */
struct ChaosShared
{
    const faults::FaultConfig *fc;
    const faults::RequestFault *base; ///< fault plan rows (index 0)
    uint64_t deadlineNanos;           ///< 0 = no deadline
    uint64_t seed;                    ///< backoff stream seed
};

/** Busy-spin for `nanos` of wall-clock time. Timed, not counted:
 * iteration-count kernels change meaning under sanitizer
 * instrumentation and DVFS, wall-clock spins do not. */
void
spinFor(uint64_t nanos)
{
    const uint64_t deadline = util::nowNanos() + nanos;
    while (util::nowNanos() < deadline) {
        // spin
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Shortest round-trip double formatting for JSON values. */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** A mix entry compiled to a callable request kernel. */
using Kernel = std::function<void(runtime::Runtime &, uint64_t)>;

Kernel
compileKernel(const MixEntry &m)
{
    if (m.workload.empty()) {
        const uint64_t spin = m.spinNanos;
        return [spin](runtime::Runtime &, uint64_t) { spinFor(spin); };
    }
    return [name = m.workload, scale = m.scale](runtime::Runtime &rt,
                                                uint64_t seed) {
        workloads::runWorkload(rt, name, scale, seed);
    };
}

} // namespace

ServeResult
runServe(runtime::Runtime &rt, const ServeConfig &config)
{
    HERMES_ASSERT(!config.mix.empty(), "mix must be non-empty");
    HERMES_ASSERT(config.producers >= 1, "need at least one producer");

    ServeResult result;
    result.config = config;

    // The mix is the one source of truth for arrival weights.
    result.config.arrivals.mixWeights.clear();
    for (const MixEntry &m : config.mix)
        result.config.arrivals.mixWeights.push_back(m.weight);
    result.schedule = generateSchedule(result.config.arrivals);
    for (const Arrival &a : result.schedule) {
        HERMES_ASSERT(a.mixIndex < config.mix.size(),
                      "schedule mix index out of range for this mix");
    }

    // hermes-chaos: draw the fault plan up front from its own
    // decorrelated streams — pure data, byte-identical per seed, and
    // (by stream-tag construction) incapable of moving an arrival.
    const bool chaos_on = config.faults.enabled;
    result.faultPlan = faults::generateFaultPlan(
        config.faults, result.config.arrivals.seed,
        result.schedule.size());
    const ChaosShared chaos_shared{
        &result.config.faults, result.faultPlan.requests.data(),
        static_cast<uint64_t>(config.faults.deadlineMs * 1e6),
        result.config.arrivals.seed};
    const ChaosShared *chaos = chaos_on ? &chaos_shared : nullptr;

    const unsigned num_workers = rt.numWorkers();
    std::vector<WorkerRecorders> recorders(num_workers);

    std::vector<Kernel> kernels;
    kernels.reserve(config.mix.size());
    for (const MixEntry &m : config.mix)
        kernels.push_back(compileKernel(m));

    // Live counters the sampler thread reads mid-run. Relaxed: the
    // series is an observational trace, not a synchronization edge.
    std::atomic<uint64_t> offered_live{0};
    std::atomic<uint64_t> accepted_live{0};
    std::atomic<uint64_t> shed_live{0};
    std::atomic<uint64_t> completed_live{0};

    const energy::PowerModel model(
        platform::profileByName(config.profileName));
    energy::LiveMeter meter(
        [&rt, model] { return rt.packagePower(model); },
        config.meterHz);

    std::atomic<bool> sampling{true};
    std::vector<SeriesSample> series;
    // Watchdog outputs, written by the sampler thread and read only
    // after sampler.join().
    uint64_t watchdog_stalls = 0;
    uint64_t compensating_wakes = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t t0_ns = util::nowNanos();

    std::thread sampler([&] {
        const auto period = std::chrono::nanoseconds(
            static_cast<uint64_t>(1e9 / config.sampleHz));
        auto next = std::chrono::steady_clock::now();
        // Stall watchdog (docs/RESILIENCE.md): a worker whose
        // heartbeat is frozen while unparked for kStallSamples
        // consecutive samples is treated as stalled. Always on — the
        // sampler is already polling the runtime at sampleHz and a
        // compensating wake of a parked peer is harmless when
        // spurious (it re-checks every work source and re-parks).
        constexpr unsigned kStallSamples = 3;
        std::vector<uint64_t> last_beat(rt.numWorkers(), 0);
        std::vector<unsigned> stagnant(rt.numWorkers(), 0);
        // The sampler doubles as the chaos clock: a scheduled
        // worker stall fires at its run-relative time from here.
        bool stall_pending = chaos_on && config.faults.stall.active()
            && config.faults.stall.worker
                < static_cast<int32_t>(rt.numWorkers());
        while (sampling.load(std::memory_order_acquire)) {
            SeriesSample s;
            s.tSec =
                static_cast<double>(util::nowNanos() - t0_ns) / 1e9;
            s.offered = offered_live.load(std::memory_order_relaxed);
            s.accepted = accepted_live.load(std::memory_order_relaxed);
            s.shed = shed_live.load(std::memory_order_relaxed);
            s.completed =
                completed_live.load(std::memory_order_relaxed);
            s.injectPending = rt.injectTelemetry().pending;
            s.parkedWorkers = rt.parkedWorkers();
            s.packageWatts = rt.packagePower(model);
            if (stall_pending && s.tSec >= config.faults.stall.atSec) {
                rt.stallWorker(
                    static_cast<core::WorkerId>(
                        config.faults.stall.worker),
                    static_cast<uint64_t>(
                        config.faults.stall.durationMs * 1e6));
                stall_pending = false;
            }
            const runtime::StallTelemetry beats = rt.stallTelemetry();
            unsigned stalled = 0;
            for (unsigned w = 0; w < beats.workers.size(); ++w) {
                const auto &b = beats.workers[w];
                if (!b.parked && b.heartbeat == last_beat[w]) {
                    // One episode per freeze: count at the crossing.
                    if (++stagnant[w] == kStallSamples)
                        ++watchdog_stalls;
                } else {
                    stagnant[w] = 0;
                }
                last_beat[w] = b.heartbeat;
                if (stagnant[w] >= kStallSamples)
                    ++stalled;
            }
            s.stalledWorkers = stalled;
            // Compensating wakes: accepted work is still outstanding
            // and a worker is wedged — re-advertise the published
            // backlog so one stalled worker never strands parked
            // peers. No new work-publish needed (wakeWorkers()).
            if (stalled > 0
                && s.completed < s.accepted)
                compensating_wakes += rt.wakeWorkers(rt.numWorkers());
            series.push_back(s);
            next += period;
            std::this_thread::sleep_until(next);
        }
    });
    meter.start();

    // One controller and one handle vector per producer: both are
    // single-threaded by construction, so the submit loop takes no
    // locks and never blocks on the runtime or on its peers.
    std::vector<AdmissionController> admissions(
        config.producers, AdmissionController(config.admission));
    std::vector<std::vector<runtime::SubmitHandle>> handles(
        config.producers);

    std::vector<std::thread> producers;
    producers.reserve(config.producers);
    for (unsigned p = 0; p < config.producers; ++p) {
        handles[p].reserve(
            result.schedule.size() / config.producers + 1);
        producers.emplace_back([&, p] {
            AdmissionController &admission = admissions[p];
            // Round-robin deal: producer p owns arrivals p,
            // p + producers, ... — each slice stays time-ordered.
            for (size_t i = p; i < result.schedule.size();
                 i += config.producers) {
                const Arrival &a = result.schedule[i];
                std::this_thread::sleep_until(
                    t0 + std::chrono::nanoseconds(a.offsetNanos));

                offered_live.fetch_add(1, std::memory_order_relaxed);
                if (config.admissionEnabled) {
                    const auto telemetry = rt.injectTelemetry();
                    if (!admission.admit(telemetry.pending,
                                         telemetry.spill)) {
                        shed_live.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                } else {
                    admission.admit(0, 0);
                }
                accepted_live.fetch_add(1, std::memory_order_relaxed);

                const Kernel *kernel = &kernels[a.mixIndex];
                const uint64_t request_seed = a.requestSeed;
                WorkerRecorders *sinks = recorders.data();
                std::atomic<uint64_t> *completed = &completed_live;
                runtime::Runtime *rt_ptr = &rt;
                // Null when faults are off: the body's first branch
                // keeps the healthy path exactly the pre-chaos code.
                // Eight word captures = TaskFn's 64-byte inline
                // budget exactly; adding a ninth would heap-box
                // every request closure.
                const faults::RequestFault *rf =
                    chaos ? chaos->base + i : nullptr;
                const uint64_t submit_ns = util::nowNanos();
                handles[p].push_back(rt.submit(
                    [submit_ns, kernel, request_seed, sinks,
                     completed, rt_ptr, chaos, rf] {
                        const uint64_t start_ns = util::nowNanos();
                        if (chaos == nullptr) {
                            (*kernel)(*rt_ptr, request_seed);
                            const uint64_t finish_ns = util::nowNanos();
                            const auto w =
                                runtime::Runtime::currentWorker();
                            HERMES_ASSERT(w != core::invalidWorker,
                                          "request body ran off-worker");
                            sinks[w].sojourn.record(finish_ns
                                                    - submit_ns);
                            sinks[w].queueing.record(start_ns
                                                     - submit_ns);
                            sinks[w].service.record(finish_ns
                                                    - start_ns);
                            sinks[w].successSojourn.record(finish_ns
                                                           - submit_ns);
                            sinks[w].ok += 1;
                            completed->fetch_add(
                                1, std::memory_order_relaxed);
                            return;
                        }
                        // hermes-chaos request lifecycle
                        // (docs/RESILIENCE.md). Every accepted
                        // request still reaches exactly one terminal
                        // bucket and one completed bump — the
                        // reconciliation invariant depends on it.
                        const auto w = runtime::Runtime::currentWorker();
                        HERMES_ASSERT(w != core::invalidWorker,
                                      "request body ran off-worker");
                        WorkerRecorders &sink = sinks[w];
                        const faults::FaultConfig &fc = *chaos->fc;
                        const uint64_t index = static_cast<uint64_t>(
                            rf - chaos->base);
                        // Deadline at pickup: an expired request is
                        // counted, never run — the worker spends no
                        // service time on it and nobody waits on it.
                        if (chaos->deadlineNanos != 0
                            && start_ns - submit_ns
                                > chaos->deadlineNanos) {
                            sink.deadlineExpired += 1;
                            completed->fetch_add(
                                1, std::memory_order_relaxed);
                            return;
                        }
                        uint32_t attempt = 0;
                        for (;;) {
                            const uint64_t attempt_start =
                                util::nowNanos();
                            try {
                                // The injection site: planned
                                // failures are real thrown
                                // exceptions through the real catch
                                // path, not skipped kernels.
                                if (attempt < rf->failAttempts) {
                                    sink.injectedFaults += 1;
                                    throw faults::InjectedFault();
                                }
                                (*kernel)(*rt_ptr, request_seed);
                            } catch (const faults::InjectedFault &) {
                                if (attempt >= fc.maxRetries) {
                                    sink.failed += 1;
                                    completed->fetch_add(
                                        1, std::memory_order_relaxed);
                                    return;
                                }
                                // Seeded exponential backoff +
                                // jitter; synchronous by design (the
                                // retrying request keeps its worker
                                // — that occupancy is part of what
                                // chaos runs measure).
                                std::this_thread::sleep_for(
                                    std::chrono::nanoseconds(
                                        faults::retryBackoffNanos(
                                            fc, chaos->seed, index,
                                            attempt)));
                                sink.retriesSpent += 1;
                                ++attempt;
                                if (chaos->deadlineNanos != 0
                                    && util::nowNanos() - submit_ns
                                        > chaos->deadlineNanos) {
                                    sink.deadlineExpired += 1;
                                    completed->fetch_add(
                                        1, std::memory_order_relaxed);
                                    return;
                                }
                                continue;
                            }
                            // Straggler site: stretch the successful
                            // attempt to stragglerFactor x its
                            // measured kernel time (timed spin, like
                            // the service kernels themselves).
                            if (rf->straggler
                                && fc.stragglerFactor > 1.0) {
                                spinFor(static_cast<uint64_t>(
                                    (fc.stragglerFactor - 1.0)
                                    * static_cast<double>(
                                        util::nowNanos()
                                        - attempt_start)));
                                sink.stragglers += 1;
                            }
                            break;
                        }
                        const uint64_t finish_ns = util::nowNanos();
                        sink.sojourn.record(finish_ns - submit_ns);
                        sink.queueing.record(start_ns - submit_ns);
                        sink.service.record(finish_ns - start_ns);
                        sink.successSojourn.record(finish_ns
                                                   - submit_ns);
                        (attempt == 0 ? sink.ok : sink.retriedOk) += 1;
                        completed->fetch_add(
                            1, std::memory_order_relaxed);
                    }));
            }
        });
    }

    for (std::thread &t : producers)
        t.join();
    // Retained handles are waited only now — releasing one mid-run
    // would block the producer in the handle's draining deleter and
    // silently turn the generator closed-loop.
    for (auto &producer_handles : handles) {
        for (runtime::SubmitHandle &h : producer_handles)
            h.wait();
        producer_handles.clear();
    }
    const uint64_t end_ns = util::nowNanos();

    meter.stop();
    sampling.store(false, std::memory_order_release);
    sampler.join();

    for (const AdmissionController &admission : admissions) {
        result.offered += admission.offered();
        result.accepted += admission.accepted();
        result.shed += admission.shed();
        result.admissionTransitions += admission.transitions();
    }
    result.completed = completed_live.load(std::memory_order_relaxed);
    for (const WorkerRecorders &r : recorders) {
        result.sojourn.merge(r.sojourn);
        result.queueing.merge(r.queueing);
        result.service.merge(r.service);
        result.successSojourn.merge(r.successSojourn);
        result.ok += r.ok;
        result.retriedOk += r.retriedOk;
        result.failed += r.failed;
        result.deadlineExpired += r.deadlineExpired;
        result.retriesSpent += r.retriesSpent;
        result.stragglers += r.stragglers;
        result.injectedFaults += r.injectedFaults;
    }
    result.watchdogStalls = watchdog_stalls;
    result.compensatingWakes = compensating_wakes;
    // The taxonomy is total: every offered request landed in exactly
    // one terminal bucket (shed at admission, or one of the body's
    // four exits). This is the accounting contract chaos tests gate.
    HERMES_ASSERT(result.offered
                      == result.shed + result.ok + result.retriedOk
                          + result.failed + result.deadlineExpired,
                  "serve outcome accounting must reconcile");
    result.wallSeconds = static_cast<double>(end_ns - t0_ns) / 1e9;
    result.goodputPerSec = result.wallSeconds > 0.0
        ? static_cast<double>(result.ok + result.retriedOk)
            / result.wallSeconds
        : 0.0;
    result.joules = meter.joules();
    result.joulesPerRequest = result.completed != 0
        ? result.joules / static_cast<double>(result.completed)
        : 0.0;
    result.inject = rt.injectTelemetry();
    result.stats = rt.stats();
    result.series = std::move(series);
    return result;
}

void
writeRunBundle(const std::string &dir, const ServeResult &result)
{
    std::filesystem::create_directories(dir);
    const ServeConfig &config = result.config;
    const bool chaos = config.faults.enabled;

    { // config.json — the run's inputs, echoed for reproduction.
      // Built in memory and written atomically (temp + rename) so an
      // interrupted run never leaves a torn artifact.
        std::ostringstream out;
        out << "{\n"
            << "  \"seed\": " << config.arrivals.seed << ",\n"
            << "  \"mode\": \""
            << (config.arrivals.mode == ArrivalMode::kPoisson
                    ? "poisson" : "trace") << "\",\n"
            << "  \"rate_per_sec\": "
            << jsonNumber(config.arrivals.ratePerSec) << ",\n"
            << "  \"duration_sec\": "
            << jsonNumber(config.arrivals.durationSec) << ",\n"
            << "  \"trace_path\": \""
            << jsonEscape(config.arrivals.tracePath) << "\",\n"
            << "  \"producers\": " << config.producers << ",\n"
            << "  \"admission_enabled\": "
            << (config.admissionEnabled ? "true" : "false") << ",\n"
            << "  \"admission_high_watermark\": "
            << config.admission.highWatermark << ",\n"
            << "  \"admission_low_watermark\": "
            << config.admission.lowWatermark << ",\n"
            << "  \"admission_shed_on_spill\": "
            << (config.admission.shedOnSpill ? "true" : "false")
            << ",\n";
        if (chaos) {
            // Emitted only when enabled: a faults-off bundle stays
            // byte-identical to the pre-chaos layout.
            const faults::FaultConfig &f = config.faults;
            out << "  \"faults\": {\"fail_prob\": "
                << jsonNumber(f.failProb) << ", \"straggler_prob\": "
                << jsonNumber(f.stragglerProb)
                << ", \"straggler_factor\": "
                << jsonNumber(f.stragglerFactor)
                << ", \"stall_worker\": " << f.stall.worker
                << ", \"stall_at_sec\": " << jsonNumber(f.stall.atSec)
                << ", \"stall_ms\": " << jsonNumber(f.stall.durationMs)
                << ", \"force_spill\": "
                << (f.forceSpill ? "true" : "false")
                << ", \"deadline_ms\": " << jsonNumber(f.deadlineMs)
                << ", \"max_retries\": " << f.maxRetries
                << ", \"retry_backoff_ms\": "
                << jsonNumber(f.retryBackoffMs) << "},\n";
        }
        out << "  \"sample_hz\": " << jsonNumber(config.sampleHz)
            << ",\n"
            << "  \"meter_hz\": " << jsonNumber(config.meterHz)
            << ",\n"
            << "  \"profile\": \"" << jsonEscape(config.profileName)
            << "\",\n"
            << "  \"mix\": [";
        for (size_t i = 0; i < config.mix.size(); ++i) {
            const MixEntry &m = config.mix[i];
            out << (i ? ", " : "") << "{\"name\": \""
                << jsonEscape(m.name) << "\", \"weight\": "
                << jsonNumber(m.weight) << ", \"spin_nanos\": "
                << m.spinNanos << ", \"workload\": \""
                << jsonEscape(m.workload) << "\", \"scale\": "
                << m.scale << "}";
        }
        out << "]\n}\n";
        util::writeFileAtomic(dir + "/config.json", out.str());
    }

    { // summary.json — Google Benchmark schema so the existing
      // tools/bench_compare.py gates the counters unchanged.
        std::ostringstream out;
        const double offered = static_cast<double>(result.offered);
        const double shed_frac = result.offered != 0
            ? static_cast<double>(result.shed) / offered : 0.0;
        const double inject_total = static_cast<double>(
            result.inject.fastPath + result.inject.spill);
        const double inject_fast_frac = inject_total > 0.0
            ? static_cast<double>(result.inject.fastPath)
                / inject_total
            : 1.0;
        const double wall = result.wallSeconds;
        out << "{\n"
            << "  \"context\": {\"executable\": \"hermes-serve\"},\n"
            << "  \"benchmarks\": [\n"
            << "    {\n"
            << "      \"name\": \"serve/summary\",\n"
            << "      \"run_type\": \"iteration\",\n"
            << "      \"iterations\": 1,\n"
            << "      \"real_time\": " << jsonNumber(wall * 1e9)
            << ",\n"
            << "      \"time_unit\": \"ns\",\n"
            << "      \"items_per_second\": "
            << jsonNumber(wall > 0.0
                              ? static_cast<double>(result.completed)
                                  / wall
                              : 0.0)
            << ",\n"
            << "      \"counters\": {\n"
            << "        \"offered\": " << result.offered << ",\n"
            << "        \"accepted\": " << result.accepted << ",\n"
            << "        \"shed\": " << result.shed << ",\n"
            << "        \"completed\": " << result.completed << ",\n"
            << "        \"shed_frac\": " << jsonNumber(shed_frac)
            << ",\n"
            << "        \"inject_fast_frac\": "
            << jsonNumber(inject_fast_frac) << ",\n"
            << "        \"completed_eq_accepted\": "
            << (result.completed == result.accepted ? 1 : 0) << ",\n"
            << "        \"admission_transitions\": "
            << result.admissionTransitions << ",\n"
            << "        \"sojourn_p50_ns\": "
            << result.sojourn.quantileNanos(0.50) << ",\n"
            << "        \"sojourn_p99_ns\": "
            << result.sojourn.quantileNanos(0.99) << ",\n"
            << "        \"sojourn_p999_ns\": "
            << result.sojourn.quantileNanos(0.999) << ",\n"
            << "        \"sojourn_mean_ns\": "
            << jsonNumber(result.sojourn.meanNanos()) << ",\n"
            << "        \"queueing_p99_ns\": "
            << result.queueing.quantileNanos(0.99) << ",\n"
            << "        \"service_p50_ns\": "
            << result.service.quantileNanos(0.50) << ",\n"
            << "        \"joules\": " << jsonNumber(result.joules)
            << ",\n"
            << "        \"joules_per_request\": "
            << jsonNumber(result.joulesPerRequest);
        if (chaos) {
            // Outcome taxonomy + watchdog + goodput — first-class
            // gateable counters, present only on chaos runs.
            out << ",\n        \"ok\": " << result.ok
                << ",\n        \"retried_ok\": " << result.retriedOk
                << ",\n        \"failed\": " << result.failed
                << ",\n        \"deadline_expired\": "
                << result.deadlineExpired
                << ",\n        \"retries_spent\": "
                << result.retriesSpent
                << ",\n        \"stragglers\": " << result.stragglers
                << ",\n        \"injected_faults\": "
                << result.injectedFaults
                << ",\n        \"goodput_per_sec\": "
                << jsonNumber(result.goodputPerSec)
                << ",\n        \"success_p50_ns\": "
                << result.successSojourn.quantileNanos(0.50)
                << ",\n        \"success_p99_ns\": "
                << result.successSojourn.quantileNanos(0.99)
                << ",\n        \"watchdog_stalls\": "
                << result.watchdogStalls
                << ",\n        \"compensating_wakes\": "
                << result.compensatingWakes;
        }
        out << "\n"
            << "      }\n"
            << "    }\n"
            << "  ]\n"
            << "}\n";
        util::writeFileAtomic(dir + "/summary.json", out.str());
    }

    { // timeseries.csv — the run as the paper's strip charts see it.
        util::CsvWriter csv(dir + "/timeseries.csv");
        std::vector<std::string> header{
            "t_sec", "offered", "accepted", "shed", "completed",
            "inject_pending", "parked_workers", "package_watts"};
        if (chaos)
            header.push_back("stalled_workers");
        csv.row(header);
        char t_buf[64], w_buf[64];
        for (const SeriesSample &s : result.series) {
            std::snprintf(t_buf, sizeof(t_buf), "%.6f", s.tSec);
            std::snprintf(w_buf, sizeof(w_buf), "%.6f",
                          s.packageWatts);
            std::vector<std::string> row{
                t_buf, std::to_string(s.offered),
                std::to_string(s.accepted), std::to_string(s.shed),
                std::to_string(s.completed),
                std::to_string(s.injectPending),
                std::to_string(s.parkedWorkers), w_buf};
            if (chaos)
                row.push_back(std::to_string(s.stalledWorkers));
            csv.row(row);
        }
    }

    { // schedule.csv — byte-identical per seed; diff two runs to
      // check the determinism claim.
        util::CsvWriter csv(dir + "/schedule.csv");
        writeScheduleCsv(csv, result.schedule);
    }

    if (chaos) {
        // faults.csv — the drawn fault plan, byte-identical per
        // seed; the chaos-smoke CI gate diffs two runs of it.
        faults::writeFaultsCsv(dir + "/faults.csv", result.faultPlan);
    }

    util::inform("serve: wrote run bundle to " + dir);
}

} // namespace hermes::harness::serve
