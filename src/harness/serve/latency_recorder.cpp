#include "harness/serve/latency_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace hermes::harness::serve {

namespace {

constexpr unsigned kBits = LatencyRecorder::kPrecisionBits;
/** Values below this are their own bucket (exact). */
constexpr uint64_t kExact = 1ULL << kBits;
/** Sub-buckets per power-of-two range above the exact span. */
constexpr unsigned kSubBuckets = 1u << (kBits - 1);

} // namespace

unsigned
LatencyRecorder::numBuckets()
{
    // Exact span + one half-range of sub-buckets per remaining
    // exponent (bit_width of a uint64 tops out at 64, the first
    // log range covers bit_width == kBits + 1).
    return static_cast<unsigned>(kExact)
        + (64 - kBits) * kSubBuckets;
}

LatencyRecorder::LatencyRecorder() : counts_(numBuckets(), 0) {}

unsigned
LatencyRecorder::bucketOf(uint64_t v)
{
    if (v < kExact)
        return static_cast<unsigned>(v);
    // v has bit_width kBits+e for some e >= 1. Shifting by e keeps
    // the top kBits bits: a mantissa in [2^(kBits-1), 2^kBits), i.e.
    // kSubBuckets distinct values per exponent — bucket width 2^e,
    // relative error <= 2^-kBits at the midpoint representative.
    const unsigned e =
        static_cast<unsigned>(std::bit_width(v)) - kBits;
    const uint64_t mantissa = v >> e;
    return static_cast<unsigned>(kExact) + (e - 1) * kSubBuckets
        + static_cast<unsigned>(mantissa - kSubBuckets);
}

uint64_t
LatencyRecorder::bucketValue(unsigned b)
{
    if (b < kExact)
        return b;
    const unsigned rel = b - static_cast<unsigned>(kExact);
    const unsigned e = rel / kSubBuckets + 1;
    const uint64_t mantissa = kSubBuckets + rel % kSubBuckets;
    const uint64_t lower = mantissa << e;
    return lower + (1ULL << (e - 1)); // midpoint of the 2^e span
}

void
LatencyRecorder::record(uint64_t nanos)
{
    ++counts_[bucketOf(nanos)];
    ++count_;
    total_ += nanos;
    min_ = std::min(min_, nanos);
    max_ = std::max(max_, nanos);
}

void
LatencyRecorder::merge(const LatencyRecorder &other)
{
    HERMES_ASSERT(counts_.size() == other.counts_.size(),
                  "recorder layouts diverged");
    for (size_t b = 0; b < counts_.size(); ++b)
        counts_[b] += other.counts_[b];
    count_ += other.count_;
    total_ += other.total_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LatencyRecorder::meanNanos() const
{
    return count_ != 0
        ? static_cast<double>(total_) / static_cast<double>(count_)
        : 0.0;
}

uint64_t
LatencyRecorder::quantileNanos(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank statistic: the ceil(q*n)-th smallest sample (1-based),
    // clamped so q = 0 reads the minimum's bucket.
    const auto rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    uint64_t seen = 0;
    for (unsigned b = 0; b < counts_.size(); ++b) {
        seen += counts_[b];
        if (seen >= rank)
            return bucketValue(b);
    }
    return maxNanos(); // unreachable: buckets cover every uint64
}

} // namespace hermes::harness::serve
