/**
 * @file
 * Arrival-schedule generation for the open-loop serving harness.
 *
 * Open-loop means arrival times are independent of completions: the
 * whole schedule is computed up front as pure data, and the driver's
 * producer threads pace submissions against the wall clock no matter
 * how far the runtime falls behind. Keeping generation here, away
 * from any runtime state, is what makes a fixed seed produce a
 * byte-identical schedule across runs and machines — the CSV echo of
 * the schedule is part of the run bundle precisely so that claim can
 * be diffed.
 *
 * Three decorrelated RNG streams are derived from the base seed via
 * util::mix64: stream 0 draws inter-arrival gaps, stream 1 draws the
 * workload-mix choice, and stream 2+i seeds request i's own kernel.
 * Separate streams mean changing the mix weights cannot perturb the
 * arrival times and vice versa.
 */

#ifndef HERMES_HARNESS_SERVE_ARRIVALS_HPP
#define HERMES_HARNESS_SERVE_ARRIVALS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace hermes::util {
class CsvWriter;
}

namespace hermes::harness::serve {

/** How arrival times are produced. */
enum class ArrivalMode
{
    kPoisson, ///< exponential inter-arrival gaps at a fixed mean rate
    kTrace,   ///< replay offsets recorded in a schedule CSV
};

/** Inputs to generateSchedule(). */
struct ArrivalConfig
{
    ArrivalMode mode = ArrivalMode::kPoisson;

    /** Base seed; all three sub-streams derive from it. */
    uint64_t seed = 42;

    /** Mean offered load (requests per second), Poisson mode. */
    double ratePerSec = 1000.0;

    /** Schedule length in seconds, Poisson mode. */
    double durationSec = 1.0;

    /** Relative weight of each workload-mix entry; request i's
     * mixIndex is drawn from this distribution. Must be non-empty
     * with a positive total. */
    std::vector<double> mixWeights = {1.0};

    /** Schedule CSV to replay, trace mode (same columns as
     * writeScheduleCsv emits). */
    std::string tracePath;
};

/** One scheduled request — everything the driver needs to submit it. */
struct Arrival
{
    uint64_t offsetNanos = 0; ///< arrival time relative to run start
    uint32_t mixIndex = 0;    ///< workload-mix entry serving it
    uint64_t requestSeed = 0; ///< decorrelated per-request seed

    bool operator==(const Arrival &other) const = default;
};

/**
 * Produce the full arrival schedule for `config`, sorted by offset.
 * Pure function of the config: a fixed seed yields a bitwise-stable
 * schedule. Poisson mode stops at the first arrival past
 * durationSec; trace mode replays tracePath exactly.
 */
std::vector<Arrival> generateSchedule(const ArrivalConfig &config);

/** Echo `schedule` as CSV (offset_nanos,mix_index,request_seed) —
 * integer columns, so the file is byte-identical per seed. */
void writeScheduleCsv(util::CsvWriter &csv,
                      const std::vector<Arrival> &schedule);

/** Parse a CSV in writeScheduleCsv() format. util::fatal() on
 * missing file or malformed rows. */
std::vector<Arrival> loadTraceCsv(const std::string &path);

} // namespace hermes::harness::serve

#endif // HERMES_HARNESS_SERVE_ARRIVALS_HPP
