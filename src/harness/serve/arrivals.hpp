/**
 * @file
 * Arrival-schedule generation for the open-loop serving harness.
 *
 * Open-loop means arrival times are independent of completions: the
 * whole schedule is computed up front as pure data, and the driver's
 * producer threads pace submissions against the wall clock no matter
 * how far the runtime falls behind. Keeping generation here, away
 * from any runtime state, is what makes a fixed seed produce a
 * byte-identical schedule across runs and machines — the CSV echo of
 * the schedule is part of the run bundle precisely so that claim can
 * be diffed.
 *
 * Decorrelated RNG streams are derived from the base seed via
 * util::mix64: stream 0 draws inter-arrival gaps, stream 1 draws the
 * workload-mix choice, stream 2+i seeds request i's own kernel, and
 * MMPP mode adds a far-away modulation stream for state-dwell draws.
 * Separate streams mean changing the mix weights cannot perturb the
 * arrival times and vice versa — and switching Poisson to MMPP at
 * equal rates cannot move a gap draw.
 */

#ifndef HERMES_HARNESS_SERVE_ARRIVALS_HPP
#define HERMES_HARNESS_SERVE_ARRIVALS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace hermes::util {
class CsvWriter;
}

namespace hermes::harness::serve {

/** How arrival times are produced. */
enum class ArrivalMode
{
    kPoisson, ///< exponential inter-arrival gaps at a fixed mean rate
    kTrace,   ///< replay offsets recorded in a schedule CSV
    kMmpp,    ///< 2-state Markov-modulated Poisson (bursty arrivals)
};

/**
 * Parameters of the 2-state MMPP arrival model (kMmpp mode).
 *
 * The process alternates between a base state and a burst state;
 * dwell times in each state are exponential with the configured
 * means, and within a state arrivals are Poisson at that state's
 * rate. Because the exponential is memoryless, restarting the gap
 * clock at each state boundary is statistically exact, not an
 * approximation. When the two rates are equal the process *is*
 * Poisson, and generation short-circuits to the Poisson path so the
 * schedule is byte-identical to kPoisson at that rate.
 */
struct MmppParams
{
    /** Arrival rate (requests per second) in the base state. */
    double baseRatePerSec = 500.0;

    /** Arrival rate (requests per second) in the burst state. */
    double burstRatePerSec = 5000.0;

    /** Mean dwell time in the base state, seconds. */
    double baseDwellSec = 0.1;

    /** Mean dwell time in the burst state, seconds. */
    double burstDwellSec = 0.02;
};

/** Inputs to generateSchedule(). */
struct ArrivalConfig
{
    ArrivalMode mode = ArrivalMode::kPoisson;

    /** Base seed; all sub-streams derive from it. */
    uint64_t seed = 42;

    /** Mean offered load (requests per second), Poisson mode. */
    double ratePerSec = 1000.0;

    /** Schedule length in seconds, Poisson and MMPP modes. */
    double durationSec = 1.0;

    /** State rates and dwell times, MMPP mode. */
    MmppParams mmpp;

    /** Relative weight of each workload-mix entry; request i's
     * mixIndex is drawn from this distribution. Must be non-empty
     * with a positive total. */
    std::vector<double> mixWeights = {1.0};

    /** Schedule CSV to replay, trace mode (same columns as
     * writeScheduleCsv emits). */
    std::string tracePath;
};

/** One scheduled request — everything the driver needs to submit it. */
struct Arrival
{
    uint64_t offsetNanos = 0; ///< arrival time relative to run start
    uint32_t mixIndex = 0;    ///< workload-mix entry serving it
    uint64_t requestSeed = 0; ///< decorrelated per-request seed

    bool operator==(const Arrival &other) const = default;
};

/**
 * Produce the full arrival schedule for `config`, sorted by offset.
 * Pure function of the config: a fixed seed yields a bitwise-stable
 * schedule. Poisson and MMPP modes stop at the first arrival past
 * durationSec; trace mode replays tracePath exactly.
 */
std::vector<Arrival> generateSchedule(const ArrivalConfig &config);

/** One dwell interval of the MMPP state process. */
struct MmppSegment
{
    uint64_t startNanos = 0; ///< segment start, inclusive
    uint64_t endNanos = 0;   ///< segment end (clamped to the horizon)
    bool burst = false;      ///< true while in the burst state
};

/**
 * The MMPP state timeline for `config` — the exact alternating
 * base/burst dwell segments generateSchedule() modulates arrivals
 * with, clamped to the duration horizon. Pure function of the
 * config (the modulation stream is decorrelated from gap, mix, and
 * request-seed draws); exposed so tests can check realized dwell
 * times and per-state rates against the configured means.
 */
std::vector<MmppSegment> mmppStateTimeline(const ArrivalConfig &config);

/** Echo `schedule` as CSV (offset_nanos,mix_index,request_seed) —
 * integer columns, so the file is byte-identical per seed. */
void writeScheduleCsv(util::CsvWriter &csv,
                      const std::vector<Arrival> &schedule);

/** Parse a CSV in writeScheduleCsv() format. util::fatal() on
 * missing file or malformed rows. */
std::vector<Arrival> loadTraceCsv(const std::string &path);

} // namespace hermes::harness::serve

#endif // HERMES_HARNESS_SERVE_ARRIVALS_HPP
