/**
 * @file
 * Log-bucketed (HDR-style) latency recorder for the serving harness.
 *
 * Per-request latencies span five orders of magnitude (a hot-ring
 * inject that executes immediately vs a request queued behind a
 * backlog), so a linear histogram cannot bound relative error and a
 * full sample buffer cannot bound memory over millions of requests.
 * The recorder instead keeps counts in buckets whose width grows
 * with the value — exact below 2^kPrecisionBits nanoseconds,
 * power-of-two ranges of 2^(kPrecisionBits-1) sub-buckets above —
 * which bounds every quantile's relative error by
 * maxRelativeError() = 2^-kPrecisionBits while the whole recorder
 * stays a few kilobytes, independent of the sample count.
 *
 * Recording is plain (non-atomic) increments: the serving driver
 * keeps one recorder per worker, each written only by its owner
 * thread, and merges them after the run — merging is exact integer
 * addition, so it is associative and commutative
 * (tests/test_latency_recorder.cpp pins both down against a
 * sort-the-samples oracle).
 */

#ifndef HERMES_HARNESS_SERVE_LATENCY_RECORDER_HPP
#define HERMES_HARNESS_SERVE_LATENCY_RECORDER_HPP

#include <cstdint>
#include <vector>

namespace hermes::harness::serve {

/** Fixed-size log-bucketed histogram of nanosecond samples. */
class LatencyRecorder
{
  public:
    /**
     * Sub-bucket resolution: values below 2^kPrecisionBits are
     * recorded exactly; above, each power-of-two range splits into
     * 2^(kPrecisionBits-1) equal sub-buckets.
     */
    static constexpr unsigned kPrecisionBits = 7;

    /** Bound on |quantile estimate − exact quantile| / exact, for
     * any sample distribution and any rank. */
    static constexpr double
    maxRelativeError()
    {
        return 1.0 / static_cast<double>(1u << kPrecisionBits);
    }

    LatencyRecorder();

    /** Record one sample (any uint64 nanoseconds value). */
    void record(uint64_t nanos);

    /** Fold `other`'s samples into this recorder (exact: integer
     * bucket addition, associative and commutative). */
    void merge(const LatencyRecorder &other);

    /** Samples recorded so far. */
    uint64_t count() const { return count_; }

    /** Smallest / largest recorded sample, exact (0 when empty). */
    uint64_t minNanos() const { return count_ ? min_ : 0; }
    uint64_t maxNanos() const { return count_ ? max_ : 0; }

    /** Exact sum of all samples (for the mean; saturation-free up to
     * ~584 years of accumulated latency). */
    uint64_t totalNanos() const { return total_; }

    /** Mean sample (0 when empty). */
    double meanNanos() const;

    /**
     * Estimate of the `q`-quantile (q clamped to [0, 1]): the
     * representative value of the bucket holding the sample of rank
     * ceil(q * count), within maxRelativeError() of the exact
     * rank-statistic. 0 when empty.
     */
    uint64_t quantileNanos(double q) const;

    /** Bucket-exact equality (used by the associativity tests). */
    bool operator==(const LatencyRecorder &other) const = default;

  private:
    /** Bucket index of value `v` (total bucket count is fixed at
     * construction; every uint64 value maps into range). */
    static unsigned bucketOf(uint64_t v);

    /** Representative (midpoint) value of bucket `b` — the value
     * quantileNanos() reports for samples landing there. */
    static uint64_t bucketValue(unsigned b);

    static unsigned numBuckets();

    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    uint64_t total_ = 0;
    uint64_t min_ = ~0ULL;
    uint64_t max_ = 0;
};

} // namespace hermes::harness::serve

#endif // HERMES_HARNESS_SERVE_LATENCY_RECORDER_HPP
