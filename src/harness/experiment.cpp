#include "harness/experiment.hpp"

#include <cstdlib>

#include "sim/dag_generators.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace hermes::harness {

unsigned
ExperimentConfig::defaultTrials()
{
    if (const char *env = std::getenv("HERMES_TRIALS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 3)
            return static_cast<unsigned>(v);
    }
    return 20;
}

sim::SimResult
runOnce(const ExperimentConfig &config, unsigned trial,
        bool record_power_series)
{
    sim::WorkloadParams wp;
    wp.scale = config.scale;
    wp.fmaxMhz = config.profile.ladder.fastest();
    // Trials perturb the input (new grain draws) like fresh runs of
    // the benchmark binary on regenerated data.
    wp.seed = config.baseSeed + 7919ULL * trial;

    const sim::Dag dag = sim::makeBenchmark(config.benchmark, wp);

    sim::SimConfig sc;
    sc.profile = config.profile;
    sc.numWorkers = config.workers;
    sc.scheduling = config.scheduling;
    sc.seed = config.baseSeed * 31ULL + trial;
    sc.recordPowerSeries = record_power_series;
    sc.enableTempo = config.policy != core::TempoPolicy::Baseline;
    if (sc.enableTempo) {
        sc.tempo.policy = config.policy;
        sc.tempo.ladder = config.ladder;
        sc.tempo.numThresholds = config.numThresholds;
    }
    return sim::simulate(dag, sc);
}

Measurement
measure(const ExperimentConfig &config)
{
    HERMES_ASSERT(config.trials > config.warmupTrials,
                  "need at least one post-warmup trial");
    util::TrialSet seconds(config.warmupTrials);
    util::TrialSet joules(config.warmupTrials);
    for (unsigned t = 0; t < config.trials; ++t) {
        const auto r = runOnce(config, t, false);
        seconds.add(r.seconds);
        joules.add(r.joules);
    }
    Measurement m;
    m.meanSeconds = seconds.mean();
    m.meanJoules = joules.mean();
    m.sdSeconds = seconds.stddev();
    m.sdJoules = joules.stddev();
    m.keptTrials = seconds.keptCount();
    return m;
}

Comparison
compareToBaseline(const ExperimentConfig &config)
{
    ExperimentConfig base = config;
    base.policy = core::TempoPolicy::Baseline;
    Comparison cmp;
    cmp.baseline = measure(base);
    cmp.tempo = measure(config);
    return cmp;
}

SweepContext::SweepContext(ExperimentConfig prototype)
    : prototype_(std::move(prototype))
{}

ExperimentConfig
SweepContext::make(const std::string &benchmark,
                   unsigned workers) const
{
    ExperimentConfig cfg = prototype_;
    cfg.benchmark = benchmark;
    cfg.workers = workers;
    return cfg;
}

const Measurement &
SweepContext::baselineFor(const ExperimentConfig &config)
{
    // Baselines ignore policy/ladder/thresholds; key on what they
    // do depend on.
    const std::string key = config.benchmark + "/"
        + std::to_string(config.workers) + "/"
        + std::to_string(static_cast<int>(config.scheduling));
    auto it = baselines_.find(key);
    if (it == baselines_.end()) {
        ExperimentConfig base = config;
        base.policy = core::TempoPolicy::Baseline;
        it = baselines_.emplace(key, measure(base)).first;
    }
    return it->second;
}

Comparison
SweepContext::compare(const ExperimentConfig &config)
{
    Comparison cmp;
    cmp.baseline = baselineFor(config);
    cmp.tempo = measure(config);
    return cmp;
}

} // namespace hermes::harness
