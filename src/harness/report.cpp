#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace hermes::harness {

std::string
resultsDir()
{
    std::string dir = "bench_results";
    if (const char *env = std::getenv("HERMES_RESULTS_DIR"))
        dir = env;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

FigureReport::FigureReport(std::string figure_id, std::string title,
                           std::vector<std::string> columns)
    : figureId_(std::move(figure_id)), title_(std::move(title)),
      columns_(std::move(columns))
{
    HERMES_ASSERT(!columns_.empty(), "report needs columns");
}

void
FigureReport::row(const std::string &label,
                  const std::vector<double> &values)
{
    HERMES_ASSERT(values.size() + 1 == columns_.size(),
                  "row width mismatch in " << figureId_);
    rows_.push_back(Row{false, label, values});
}

void
FigureReport::separator()
{
    rows_.push_back(Row{true, "", {}});
}

std::string
FigureReport::finish()
{
    HERMES_ASSERT(!finished_, "report already finished");
    finished_ = true;

    // --- text table ---
    const int label_w = 22;
    const int cell_w = 14;
    std::printf("\n=== %s: %s ===\n", figureId_.c_str(),
                title_.c_str());
    std::printf("%-*s", label_w, columns_[0].c_str());
    for (size_t c = 1; c < columns_.size(); ++c)
        std::printf("%*s", cell_w, columns_[c].c_str());
    std::printf("\n");
    const size_t total_w = label_w
        + cell_w * (columns_.size() - 1);
    std::printf("%s\n", std::string(total_w, '-').c_str());
    for (const Row &r : rows_) {
        if (r.isSeparator) {
            std::printf("%s\n", std::string(total_w, '-').c_str());
            continue;
        }
        std::printf("%-*s", label_w, r.label.c_str());
        for (double v : r.values)
            std::printf("%*.4g", cell_w, v);
        std::printf("\n");
    }
    std::fflush(stdout);

    // --- CSV mirror ---
    const std::string path = resultsDir() + "/" + figureId_ + ".csv";
    util::CsvWriter csv(path);
    csv.row(columns_);
    for (const Row &r : rows_) {
        if (!r.isSeparator)
            csv.rowNumeric(r.label, r.values);
    }
    csv.close();
    return path;
}

std::string
sparkline(const std::vector<double> &values, size_t width)
{
    if (values.empty())
        return "";
    static const char *levels[] = {"▁", "▂", "▃",
                                   "▄", "▅", "▆",
                                   "▇", "█"};
    double lo = values[0], hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    const size_t n = std::min(width, values.size());
    std::string out;
    for (size_t i = 0; i < n; ++i) {
        // Downsample by averaging each bucket of the series.
        const size_t b0 = i * values.size() / n;
        const size_t b1 =
            std::max(b0 + 1, (i + 1) * values.size() / n);
        double sum = 0.0;
        for (size_t j = b0; j < b1; ++j)
            sum += values[j];
        const double v = sum / static_cast<double>(b1 - b0);
        const auto idx = static_cast<size_t>((v - lo) / span * 7.99);
        out += levels[std::min<size_t>(idx, 7)];
    }
    return out;
}

} // namespace hermes::harness
