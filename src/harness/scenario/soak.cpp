#include "harness/scenario/soak.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/scenario/scenario_runner.hpp"
#include "runtime/scheduler.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/time.hpp"

namespace hermes::harness::scenario {

namespace {

/** Last (seq, epoch) recorded in an existing soak.jsonl; malformed
 * lines are skipped (a crash mid-append leaves a torn last line —
 * resume must shrug it off). */
bool
lastCheckpoint(const std::string &path, uint64_t &seq,
               uint64_t &epoch)
{
    std::ifstream in(path);
    if (!in)
        return false;
    bool found = false;
    std::string line;
    while (std::getline(in, line)) {
        const util::JsonParseResult parsed = util::parseJson(line);
        if (!parsed.ok || !parsed.value.isObject())
            continue;
        const util::JsonValue *s = parsed.value.find("seq");
        const util::JsonValue *e = parsed.value.find("epoch");
        if (s == nullptr || !s->isNumber() || e == nullptr
            || !e->isNumber())
            continue;
        seq = static_cast<uint64_t>(s->number());
        epoch = static_cast<uint64_t>(e->number());
        found = true;
    }
    return found;
}

std::string
checkpointLine(const SoakCheckpoint &cp)
{
    std::ostringstream out;
    out << "{\"seq\": " << cp.seq << ", \"epoch\": " << cp.epoch
        << ", \"t_sec\": " << util::jsonNumber(cp.tSec)
        << ", \"iterations\": " << cp.iterations
        << ", \"window_iterations\": " << cp.windowIterations
        << ", \"mean_iter_sec\": "
        << util::jsonNumber(cp.meanIterSec)
        << ", \"executed\": " << cp.executed
        << ", \"steals\": " << cp.steals
        << ", \"parks\": " << cp.parks
        << ", \"wakes\": " << cp.wakes
        << ", \"injected\": " << cp.injected << "}\n";
    return out.str();
}

void
checkMonotone(const SoakCheckpoint &prev, const SoakCheckpoint &cur,
              std::vector<std::string> &failures)
{
    auto check = [&failures, &prev, &cur](const char *name,
                                          uint64_t before,
                                          uint64_t after) {
        if (after < before) {
            std::ostringstream out;
            out << "monotone counter regression: " << name << " "
                << before << " -> " << after << " between seq "
                << prev.seq << " and seq " << cur.seq
                << " (epoch " << cur.epoch << ")";
            failures.push_back(out.str());
        }
    };
    check("executed", prev.executed, cur.executed);
    check("steals", prev.steals, cur.steals);
    check("parks", prev.parks, cur.parks);
    check("wakes", prev.wakes, cur.wakes);
    check("injected", prev.injected, cur.injected);
}

} // namespace

SoakOutcome
runSoak(const ScenarioConfig &config, const std::string &dir,
        double durationSec)
{
    SoakOutcome outcome;
    const double duration = durationSec > 0.0
        ? durationSec
        : config.soak.durationSec;

    std::filesystem::create_directories(dir);
    const std::string path = dir + "/soak.jsonl";

    uint64_t last_seq = 0;
    uint64_t last_epoch = 0;
    const bool resumed = lastCheckpoint(path, last_seq, last_epoch);
    uint64_t seq = resumed ? last_seq + 1 : 0;
    outcome.epoch = resumed ? last_epoch + 1 : 0;
    outcome.firstSeq = seq;

    std::ofstream out(path, std::ios::app);
    if (!out)
        util::fatal("cannot append to " + path);

    runtime::Runtime rt(makeRuntimeConfig(config));

    const uint64_t t0 = util::nowNanos();
    const uint64_t deadline =
        t0 + static_cast<uint64_t>(duration * 1e9);
    const uint64_t checkpoint_nanos = static_cast<uint64_t>(
        config.soak.checkpointSec * 1e9);
    uint64_t next_checkpoint = t0 + checkpoint_nanos;

    SoakCheckpoint prev;       // zeros: epoch counters start at 0
    bool have_prev = false;
    double first_window_mean = 0.0;
    uint64_t window_iters = 0;
    uint64_t window_spent = 0; // nanos spent in-iteration, window
    uint64_t iterations = 0;

    auto writeCheckpoint = [&](uint64_t now) {
        const runtime::RuntimeStats stats = rt.stats();
        SoakCheckpoint cp;
        cp.seq = seq++;
        cp.epoch = outcome.epoch;
        cp.tSec = static_cast<double>(now - t0) / 1e9;
        cp.iterations = iterations;
        cp.windowIterations = window_iters;
        cp.meanIterSec = window_iters != 0
            ? static_cast<double>(window_spent)
                / static_cast<double>(window_iters) / 1e9
            : 0.0;
        cp.executed = stats.executed;
        cp.steals = stats.steals;
        cp.parks = stats.parks;
        cp.wakes = stats.wakes;
        cp.injected = stats.injected;

        if (have_prev)
            checkMonotone(prev, cp, outcome.failures);
        if (first_window_mean == 0.0) {
            first_window_mean = cp.meanIterSec;
        } else if (cp.windowIterations != 0
                   && cp.meanIterSec > config.soak.driftFactor
                           * first_window_mean) {
            std::ostringstream msg;
            msg << "latency drift at seq " << cp.seq
                << ": window mean "
                << util::jsonNumber(cp.meanIterSec)
                << " s exceeds " << config.soak.driftFactor
                << "x first window mean "
                << util::jsonNumber(first_window_mean) << " s";
            outcome.failures.push_back(msg.str());
        }

        out << checkpointLine(cp);
        out.flush();
        prev = cp;
        have_prev = true;
        window_iters = 0;
        window_spent = 0;
        ++outcome.checkpoints;
    };

    while (util::nowNanos() < deadline) {
        const uint64_t iter_start = util::nowNanos();
        runScenarioIteration(rt, config);
        const uint64_t iter_end = util::nowNanos();
        ++iterations;
        ++window_iters;
        window_spent += iter_end - iter_start;
        if (iter_end >= next_checkpoint) {
            writeCheckpoint(iter_end);
            next_checkpoint = iter_end + checkpoint_nanos;
        }
    }
    // Final checkpoint so even a short soak leaves evidence and the
    // resume sequence has a tail to continue from.
    writeCheckpoint(util::nowNanos());

    outcome.iterations = iterations;
    outcome.ok = outcome.failures.empty();
    util::inform("scenario: soak " + config.name + " epoch "
                 + std::to_string(outcome.epoch) + ": "
                 + std::to_string(iterations) + " iterations, "
                 + std::to_string(outcome.checkpoints)
                 + " checkpoint(s), "
                 + (outcome.ok ? "healthy" : "FAILED"));
    return outcome;
}

} // namespace hermes::harness::scenario
