/**
 * @file
 * Scenario execution and the deterministic evidence bundle.
 *
 * runScenario() maps a validated ScenarioConfig onto the real
 * runtime — fork-join spin bursts, a src/sim benchmark DAG executed
 * as actual tasks (cycles mapped to wall-clock spins), or an
 * open-loop serving run delegated to harness::serve::runServe() —
 * and collects everything a perf claim needs: the scheduler
 * counters, metered energy, a sampled time series, and a
 * *deterministic counter section* that two same-seed runs must
 * reproduce byte-identically (the `cmp` gate in CI).
 *
 * The evidence bundle (writeScenarioBundle) is four artifacts:
 *
 *   config.json  - defaults-resolved echo (writeConfigJson)
 *   run.json     - Google Benchmark schema, so tools/bench_compare.py
 *                  gates it unchanged; plus the top-level
 *                  "deterministic" object (GBench consumers ignore
 *                  unknown top-level keys)
 *   events.jsonl - one JSON object per sample: executed/parked/
 *                  inject-backlog/package-watts over time
 *   summary.md   - the run at a glance, for humans and PR reviews
 *
 * What counts as deterministic is kind-specific and deliberately
 * narrow: task counts and seed-derived checksums for fork_join/dag,
 * the arrival-schedule size and hash for serve. Timing-dependent
 * counters (steals, parks, latency quantiles) are evidence, not
 * determinism gates — they live in run.json's counters only.
 */

#ifndef HERMES_HARNESS_SCENARIO_SCENARIO_RUNNER_HPP
#define HERMES_HARNESS_SCENARIO_SCENARIO_RUNNER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/faults/fault_plan.hpp"
#include "harness/scenario/scenario_config.hpp"
#include "runtime/runtime_config.hpp"
#include "runtime/stats.hpp"

namespace hermes::runtime {
class Runtime;
}

namespace hermes::harness::scenario {

/** One events.jsonl sample. */
struct ScenarioEvent
{
    double tSec = 0.0;          ///< seconds since run start
    uint64_t executed = 0;      ///< cumulative executed tasks
    uint64_t steals = 0;        ///< cumulative successful steals
    size_t injectPending = 0;   ///< inject backlog at sample time
    unsigned parkedWorkers = 0; ///< workers parked at sample time
    double packageWatts = 0.0;  ///< modeled package power
    /** Workers the serve watchdog currently suspects stalled.
     * Emitted into events.jsonl only when faults are enabled. */
    unsigned stalledWorkers = 0;
};

/** Everything one scenario run produced. */
struct ScenarioResult
{
    ScenarioConfig config; ///< as run (defaults resolved)

    double wallSeconds = 0.0;
    double joules = 0.0;

    /** Scheduler counter deltas over the run. */
    runtime::RuntimeStats stats;

    /** Gateable metrics, emitted into run.json counters. Includes
     * the deterministic counters (as doubles) so thresholds can
     * pin them too. */
    std::map<std::string, double> metrics;

    /** The determinism contract: ordered (name, value) pairs two
     * same-seed runs must reproduce exactly; emitted as run.json's
     * "deterministic" object and compared byte-for-byte by tests
     * and CI. */
    std::vector<std::pair<std::string, uint64_t>> deterministic;

    /** The drawn per-request fault schedule (serve kind with faults
     * enabled; empty otherwise) — echoed into faults.csv. */
    faults::FaultPlan faultPlan;

    std::vector<ScenarioEvent> events;
};

/** Map the declarative policy surface onto a RuntimeConfig (shared
 * by run and soak so both modes exercise the identical runtime). */
runtime::RuntimeConfig makeRuntimeConfig(const ScenarioConfig &config);

/** Execute one scenario run. Creates its own Runtime from
 * `config.runtime`/`config.dvfs`; blocks until the workload
 * completes. */
ScenarioResult runScenario(const ScenarioConfig &config);

/** One workload iteration of `config` on an existing runtime — the
 * soak unit. Equivalent work to one runScenario() workload body,
 * without metering or evidence collection. */
void runScenarioIteration(runtime::Runtime &rt,
                          const ScenarioConfig &config);

/** run.json content (Google Benchmark schema + "deterministic"
 * object). Pure function of `result` — no timestamps, no
 * absolute paths — so equal results serialize identically. */
std::string writeRunJson(const ScenarioResult &result);

/** The "deterministic" object alone, serialized exactly as it
 * appears inside run.json (the byte-compare target). */
std::string writeDeterministicJson(const ScenarioResult &result);

/** Write the four-artifact evidence bundle into `dir` (created if
 * needed): config.json, run.json, events.jsonl, summary.md — plus
 * faults.csv when the scenario's faults block is enabled. JSON
 * artifacts are written atomically (temp file + rename). */
void writeScenarioBundle(const std::string &dir,
                         const ScenarioResult &result);

/** Evaluate the faults.gates{} outcome gates against the run's
 * outcome metrics. Returns one human-readable failure message per
 * violated gate (empty = all gates pass or faults disabled); the
 * CLI maps a non-empty result to exit code 8. */
std::vector<std::string> checkOutcomeGates(
    const ScenarioResult &result);

} // namespace hermes::harness::scenario

#endif // HERMES_HARNESS_SCENARIO_SCENARIO_RUNNER_HPP
