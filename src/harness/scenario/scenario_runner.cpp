#include "harness/scenario/scenario_runner.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "energy/ledger.hpp"
#include "energy/meter.hpp"
#include "energy/power_model.hpp"
#include "harness/serve/serve_driver.hpp"
#include "platform/system_profile.hpp"
#include "runtime/scheduler.hpp"
#include "sim/dag_generators.hpp"
#include "util/assert.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hermes::harness::scenario {

namespace {

/** Wall-clock busy spin (same rationale as the serve driver's:
 * timed spins survive sanitizer instrumentation and DVFS skew where
 * iteration counts do not). */
void
spinFor(uint64_t nanos)
{
    if (nanos == 0)
        return;
    const uint64_t deadline = util::nowNanos() + nanos;
    while (util::nowNanos() < deadline) {
        // spin
    }
}

core::TempoPolicy
tempoPolicyByName(const std::string &name)
{
    if (name == "baseline")
        return core::TempoPolicy::Baseline;
    if (name == "workpath")
        return core::TempoPolicy::WorkpathOnly;
    if (name == "workload")
        return core::TempoPolicy::WorkloadOnly;
    HERMES_ASSERT(name == "unified",
                  "unvalidated dvfs policy name " << name);
    return core::TempoPolicy::Unified;
}

} // namespace

runtime::RuntimeConfig
makeRuntimeConfig(const ScenarioConfig &c)
{
    runtime::RuntimeConfig rc;
    rc.numWorkers = c.runtime.workers;
    rc.profile = platform::profileByName(c.profile);
    rc.seed = c.seed;
    rc.deque.impl = c.runtime.dequeImpl == "the"
        ? runtime::DequeImpl::The
        : runtime::DequeImpl::ChaseLev;
    rc.inject.useLockFreeInject = c.runtime.lockFreeInject;
    rc.stealPolicy.stealHalf = c.runtime.stealHalf;
    rc.stealPolicy.localityRounds = c.runtime.localityRounds;
    rc.stealPolicy.adaptiveLocality = c.runtime.adaptiveLocality;
    rc.enableParking = c.runtime.parking;
    rc.parkThreshold = c.runtime.parkThreshold;
    rc.enableTempo = c.dvfs.tempo;
    rc.tempo.policy = tempoPolicyByName(c.dvfs.policy);
    // Chaos fault site: shrink the inject ring shards so sustained
    // load trips the spillover path (docs/RESILIENCE.md).
    if (c.faults.enabled && c.faults.forceSpill)
        rc.inject.shardCapacity = 8;
    return rc;
}

namespace {

/** Build the ServeConfig a serve-kind scenario forwards to
 * harness::serve::runServe(). */
serve::ServeConfig
makeServeConfig(const ScenarioConfig &config)
{
    const ServeParams &p = config.serve;
    serve::ServeConfig sc;
    sc.arrivals.seed = config.seed;
    sc.arrivals.ratePerSec = p.ratePerSec;
    sc.arrivals.durationSec = p.durationSec;
    if (p.arrivals == "mmpp") {
        sc.arrivals.mode = serve::ArrivalMode::kMmpp;
        sc.arrivals.mmpp.baseRatePerSec = p.ratePerSec;
        sc.arrivals.mmpp.burstRatePerSec =
            p.ratePerSec * p.mmppBurstFactor;
        sc.arrivals.mmpp.baseDwellSec = p.mmppBaseDwellSec;
        sc.arrivals.mmpp.burstDwellSec = p.mmppBurstDwellSec;
    }
    serve::MixEntry entry;
    entry.spinNanos = p.spinNanos;
    if (!p.workload.empty()) {
        entry.name = p.workload;
        entry.workload = p.workload;
        entry.scale = static_cast<size_t>(p.scale);
    }
    sc.mix = {entry};
    sc.producers = p.producers;
    sc.admissionEnabled = p.admission;
    sc.admission.highWatermark = static_cast<size_t>(p.admitHigh);
    sc.admission.lowWatermark = static_cast<size_t>(p.admitLow);
    sc.sampleHz = config.sampleHz;
    sc.profileName = config.profile;
    if (config.faults.enabled) {
        const FaultParams &f = config.faults;
        sc.faults.enabled = true;
        sc.faults.failProb = f.failProb;
        sc.faults.stragglerProb = f.stragglerProb;
        sc.faults.stragglerFactor = f.stragglerFactor;
        sc.faults.stall.worker = f.stallWorker;
        sc.faults.stall.atSec = f.stallAtSec;
        sc.faults.stall.durationMs = f.stallMs;
        sc.faults.forceSpill = f.forceSpill;
        sc.faults.deadlineMs = f.deadlineMs;
        sc.faults.maxRetries = f.maxRetries;
        sc.faults.retryBackoffMs = f.retryBackoffMs;
    }
    return sc;
}

/** FNV-1a over the schedule — the serve kind's determinism digest
 * (the schedule is the only seed-deterministic part of a timed
 * serving run). */
uint64_t
scheduleHash(const std::vector<serve::Arrival> &schedule)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const serve::Arrival &a : schedule) {
        mix(a.offsetNanos);
        mix(a.mixIndex);
        mix(a.requestSeed);
    }
    return h;
}

/** Execute DAG frame `f` (and its sequel chain) as real tasks:
 * spin the frame's serial work, spawning each child at its offset,
 * sync at frame end — the fully-strict semantics the simulator
 * assumes, driven onto the threaded runtime. */
struct DagDriver
{
    runtime::Runtime &rt;
    const sim::Dag &dag;
    double nanosPerCycle;
    std::atomic<uint64_t> &checksum;
    uint64_t seed;

    void
    runFrame(sim::FrameId start) const
    {
        for (sim::FrameId cur = start; cur != sim::invalidFrame;) {
            const sim::Frame &frame = dag.frame(cur);
            runtime::TaskGroup group(rt);
            double done_cycles = 0.0;
            for (const sim::SpawnPoint &sp : frame.spawns) {
                spinFor(static_cast<uint64_t>(
                    (sp.offsetCycles - done_cycles)
                    * nanosPerCycle));
                done_cycles = sp.offsetCycles;
                const sim::FrameId child = sp.child;
                const DagDriver *self = this;
                group.run([self, child] { self->runFrame(child); });
            }
            spinFor(static_cast<uint64_t>(
                (frame.ownCycles - done_cycles) * nanosPerCycle));
            group.wait();
            checksum.fetch_add(util::mix64(seed, cur),
                               std::memory_order_relaxed);
            cur = frame.sequel;
        }
    }
};

/** Samples the runtime into an events vector at `hz` until
 * stopped. The series is observational (relaxed counters), like
 * the serve driver's. */
class EventSampler
{
  public:
    EventSampler(runtime::Runtime &rt,
                 const energy::PowerModel &model, double hz,
                 uint64_t t0_nanos)
        : rt_(rt), model_(model), hz_(hz), t0Nanos_(t0_nanos)
    {
        thread_ = std::thread([this] { run(); });
    }

    std::vector<ScenarioEvent>
    stop()
    {
        running_.store(false, std::memory_order_release);
        thread_.join();
        return std::move(events_);
    }

  private:
    void
    run()
    {
        const auto period = std::chrono::nanoseconds(
            static_cast<uint64_t>(1e9 / hz_));
        auto next = std::chrono::steady_clock::now();
        while (running_.load(std::memory_order_acquire)) {
            const runtime::RuntimeStats stats = rt_.stats();
            ScenarioEvent e;
            e.tSec = static_cast<double>(util::nowNanos() - t0Nanos_)
                / 1e9;
            e.executed = stats.executed;
            e.steals = stats.steals;
            e.injectPending = rt_.injectTelemetry().pending;
            e.parkedWorkers = rt_.parkedWorkers();
            e.packageWatts = rt_.packagePower(model_);
            events_.push_back(e);
            next += period;
            std::this_thread::sleep_until(next);
        }
    }

    runtime::Runtime &rt_;
    const energy::PowerModel &model_;
    double hz_;
    uint64_t t0Nanos_;
    std::atomic<bool> running_{true};
    std::vector<ScenarioEvent> events_;
    std::thread thread_;
};

void
putStats(const runtime::RuntimeStats &stats,
         std::map<std::string, double> &metrics)
{
    metrics["executed"] = static_cast<double>(stats.executed);
    metrics["steals"] = static_cast<double>(stats.steals);
    metrics["failed_steals"] =
        static_cast<double>(stats.failedSteals);
    metrics["tasks_per_steal"] = stats.tasksPerSteal();
    metrics["parks"] = static_cast<double>(stats.parks);
    metrics["wakes"] = static_cast<double>(stats.wakes);
    metrics["inject_fast_frac"] = stats.injectFastFraction();
    metrics["injected"] = static_cast<double>(stats.injected);
    metrics["steal_cas_retries"] =
        static_cast<double>(stats.stealCasRetries);
    metrics["pop_cas_losses"] =
        static_cast<double>(stats.popCasLosses);
    metrics["local_wakes"] = static_cast<double>(stats.localWakes);
    metrics["remote_wakes"] =
        static_cast<double>(stats.remoteWakes);
}

ScenarioResult
runForkJoinOrDag(const ScenarioConfig &config)
{
    ScenarioResult result;
    result.config = config;

    runtime::Runtime rt(makeRuntimeConfig(config));
    const energy::PowerModel model(
        platform::profileByName(config.profile));

    std::atomic<uint64_t> checksum{0};
    const uint64_t t0 = util::nowNanos();
    energy::LiveMeter meter(
        [&rt, model] { return rt.packagePower(model); }, 100.0);
    EventSampler sampler(rt, model, config.sampleHz, t0);
    meter.start();

    uint64_t expected_tasks = 0;
    uint64_t dag_frames = 0;
    uint64_t dag_spawns = 0;
    if (config.kind == ScenarioKind::kForkJoin) {
        const ForkJoinParams &p = config.forkJoin;
        expected_tasks = 1 + static_cast<uint64_t>(p.repeats)
            * p.tasks;
        const uint64_t seed = config.seed;
        runtime::Runtime *rt_ptr = &rt;
        std::atomic<uint64_t> *sum = &checksum;
        rt.run([rt_ptr, sum, p, seed] {
            for (unsigned rep = 0; rep < p.repeats; ++rep) {
                runtime::TaskGroup group(*rt_ptr);
                for (uint64_t i = 0; i < p.tasks; ++i) {
                    const uint64_t index =
                        static_cast<uint64_t>(rep) * p.tasks + i;
                    const uint64_t spin = p.spinNanos;
                    group.run([sum, seed, index, spin] {
                        spinFor(spin);
                        sum->fetch_add(util::mix64(seed, index),
                                       std::memory_order_relaxed);
                    });
                }
                group.wait();
            }
        });
    } else {
        HERMES_ASSERT(config.kind == ScenarioKind::kDag,
                      "serve handled elsewhere");
        sim::WorkloadParams params;
        params.scale = config.dag.scale;
        params.seed = config.seed;
        const sim::Dag dag =
            sim::makeBenchmark(config.dag.benchmark, params);
        dag_frames = dag.frameCount();
        for (sim::FrameId f = 0;
             f < static_cast<sim::FrameId>(dag.frameCount()); ++f)
            dag_spawns += dag.frame(f).spawns.size();
        expected_tasks = 1 + dag_spawns;
        const DagDriver driver{rt, dag,
                               1.0 / config.dag.gigacyclesPerSec,
                               checksum, config.seed};
        const DagDriver *driver_ptr = &driver;
        const sim::FrameId root = dag.root();
        rt.run([driver_ptr, root] { driver_ptr->runFrame(root); });
    }

    meter.stop();
    result.events = sampler.stop();
    result.wallSeconds =
        static_cast<double>(util::nowNanos() - t0) / 1e9;
    result.joules = meter.joules();
    result.stats = rt.stats();

    result.deterministic.emplace_back("expected_tasks",
                                      expected_tasks);
    result.deterministic.emplace_back("executed_tasks",
                                      result.stats.executed);
    result.deterministic.emplace_back(
        "checksum", checksum.load(std::memory_order_relaxed));
    if (config.kind == ScenarioKind::kDag) {
        result.deterministic.emplace_back("dag_frames", dag_frames);
        result.deterministic.emplace_back("dag_spawns", dag_spawns);
    }

    putStats(result.stats, result.metrics);
    result.metrics["joules"] = result.joules;
    result.metrics["edp"] =
        energy::edp(result.joules, result.wallSeconds);
    result.metrics["tasks_per_second"] = result.wallSeconds > 0.0
        ? static_cast<double>(result.stats.executed)
            / result.wallSeconds
        : 0.0;
    result.metrics["executed_matches_expected"] =
        result.stats.executed == expected_tasks ? 1.0 : 0.0;
    return result;
}

ScenarioResult
runServeScenario(const ScenarioConfig &config)
{
    ScenarioResult result;
    result.config = config;

    runtime::Runtime rt(makeRuntimeConfig(config));
    const serve::ServeResult serve_result =
        serve::runServe(rt, makeServeConfig(config));

    result.wallSeconds = serve_result.wallSeconds;
    result.joules = serve_result.joules;
    result.stats = serve_result.stats;

    result.deterministic.emplace_back(
        "offered", static_cast<uint64_t>(serve_result.offered));
    result.deterministic.emplace_back(
        "schedule_hash", scheduleHash(serve_result.schedule));
    if (config.faults.enabled) {
        // The drawn fault plan is pure data (decorrelated RNG
        // streams), so its size and digest join the determinism
        // contract. Outcome *counts* stay out: deadlines and
        // admission make them timing-dependent in general.
        result.faultPlan = serve_result.faultPlan;
        result.deterministic.emplace_back(
            "fault_rows", result.faultPlan.faultedCount());
        result.deterministic.emplace_back("fault_hash",
                                          result.faultPlan.hash());
    }

    putStats(result.stats, result.metrics);
    result.metrics["offered"] =
        static_cast<double>(serve_result.offered);
    result.metrics["accepted"] =
        static_cast<double>(serve_result.accepted);
    result.metrics["shed"] = static_cast<double>(serve_result.shed);
    result.metrics["completed"] =
        static_cast<double>(serve_result.completed);
    result.metrics["shed_frac"] = serve_result.offered != 0
        ? static_cast<double>(serve_result.shed)
            / static_cast<double>(serve_result.offered)
        : 0.0;
    result.metrics["completed_eq_accepted"] =
        serve_result.completed == serve_result.accepted ? 1.0 : 0.0;
    if (config.faults.enabled) {
        result.metrics["outcome_ok"] =
            static_cast<double>(serve_result.ok);
        result.metrics["outcome_retried_ok"] =
            static_cast<double>(serve_result.retriedOk);
        result.metrics["outcome_failed"] =
            static_cast<double>(serve_result.failed);
        result.metrics["outcome_deadline_expired"] =
            static_cast<double>(serve_result.deadlineExpired);
        result.metrics["retries_spent"] =
            static_cast<double>(serve_result.retriesSpent);
        result.metrics["stragglers"] =
            static_cast<double>(serve_result.stragglers);
        result.metrics["injected_faults"] =
            static_cast<double>(serve_result.injectedFaults);
        result.metrics["goodput_per_sec"] =
            serve_result.goodputPerSec;
        result.metrics["success_p50_ns"] = static_cast<double>(
            serve_result.successSojourn.quantileNanos(0.50));
        result.metrics["success_p99_ns"] = static_cast<double>(
            serve_result.successSojourn.quantileNanos(0.99));
        result.metrics["watchdog_stalls"] =
            static_cast<double>(serve_result.watchdogStalls);
        result.metrics["compensating_wakes"] =
            static_cast<double>(serve_result.compensatingWakes);
    }
    result.metrics["sojourn_p50_ns"] = static_cast<double>(
        serve_result.sojourn.quantileNanos(0.50));
    result.metrics["sojourn_p99_ns"] = static_cast<double>(
        serve_result.sojourn.quantileNanos(0.99));
    result.metrics["sojourn_p999_ns"] = static_cast<double>(
        serve_result.sojourn.quantileNanos(0.999));
    result.metrics["queueing_p99_ns"] = static_cast<double>(
        serve_result.queueing.quantileNanos(0.99));
    result.metrics["joules"] = serve_result.joules;
    result.metrics["joules_per_request"] =
        serve_result.joulesPerRequest;
    result.metrics["accepted_rate_per_sec"] =
        serve_result.wallSeconds > 0.0
        ? static_cast<double>(serve_result.accepted)
            / serve_result.wallSeconds
        : 0.0;
    result.metrics["package_watts_mean"] =
        serve_result.wallSeconds > 0.0
        ? serve_result.joules / serve_result.wallSeconds
        : 0.0;
    // Mean fraction of workers parked over the sampled series — the
    // power-side axis of the tail-vs-parked-power tradeoff curves.
    double parked_sum = 0.0;
    for (const serve::SeriesSample &s : serve_result.series)
        parked_sum += static_cast<double>(s.parkedWorkers);
    result.metrics["mean_parked_fraction"] =
        (!serve_result.series.empty()
         && config.runtime.workers > 0)
        ? parked_sum
            / (static_cast<double>(serve_result.series.size())
               * config.runtime.workers)
        : 0.0;

    result.events.reserve(serve_result.series.size());
    for (const serve::SeriesSample &s : serve_result.series) {
        ScenarioEvent e;
        e.tSec = s.tSec;
        e.executed = s.completed;
        e.steals = 0; // not sampled by the serve driver's series
        e.injectPending = s.injectPending;
        e.parkedWorkers = s.parkedWorkers;
        e.packageWatts = s.packageWatts;
        e.stalledWorkers = s.stalledWorkers;
        result.events.push_back(e);
    }
    return result;
}

} // namespace

ScenarioResult
runScenario(const ScenarioConfig &config)
{
    if (config.kind == ScenarioKind::kServe)
        return runServeScenario(config);
    return runForkJoinOrDag(config);
}

void
runScenarioIteration(runtime::Runtime &rt,
                     const ScenarioConfig &config)
{
    switch (config.kind) {
    case ScenarioKind::kForkJoin: {
        const ForkJoinParams p = config.forkJoin;
        runtime::Runtime *rt_ptr = &rt;
        rt.run([rt_ptr, p] {
            for (unsigned rep = 0; rep < p.repeats; ++rep) {
                runtime::TaskGroup group(*rt_ptr);
                for (uint64_t i = 0; i < p.tasks; ++i) {
                    const uint64_t spin = p.spinNanos;
                    group.run([spin] { spinFor(spin); });
                }
                group.wait();
            }
        });
        return;
    }
    case ScenarioKind::kDag: {
        sim::WorkloadParams params;
        params.scale = config.dag.scale;
        params.seed = config.seed;
        const sim::Dag dag =
            sim::makeBenchmark(config.dag.benchmark, params);
        std::atomic<uint64_t> checksum{0};
        const DagDriver driver{rt, dag,
                               1.0 / config.dag.gigacyclesPerSec,
                               checksum, config.seed};
        const DagDriver *driver_ptr = &driver;
        const sim::FrameId root = dag.root();
        rt.run([driver_ptr, root] { driver_ptr->runFrame(root); });
        return;
    }
    case ScenarioKind::kServe:
        serve::runServe(rt, makeServeConfig(config));
        return;
    }
}

std::string
writeDeterministicJson(const ScenarioResult &result)
{
    std::ostringstream out;
    out << "{";
    for (size_t i = 0; i < result.deterministic.size(); ++i) {
        const auto &[name, value] = result.deterministic[i];
        out << (i ? "," : "") << "\n    " << util::jsonQuote(name)
            << ": " << value;
    }
    out << "\n  }";
    return out.str();
}

std::string
writeRunJson(const ScenarioResult &result)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"context\": {\n"
        << "    \"executable\": \"hermes-scenario\",\n"
        << "    \"scenario\": "
        << util::jsonQuote(result.config.name) << ",\n"
        << "    \"kind\": \"" << toString(result.config.kind)
        << "\",\n"
        << "    \"workers\": " << result.config.runtime.workers
        << "\n  },\n"
        << "  \"deterministic\": " << writeDeterministicJson(result)
        << ",\n"
        << "  \"benchmarks\": [\n"
        << "    {\n"
        << "      \"name\": \"scenario/"
        << result.config.name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"iterations\": 1,\n"
        << "      \"real_time\": "
        << util::jsonNumber(result.wallSeconds * 1e9) << ",\n"
        << "      \"time_unit\": \"ns\",\n"
        << "      \"counters\": {";
    size_t i = 0;
    for (const auto &[name, value] : result.metrics) {
        out << (i++ ? "," : "") << "\n        "
            << util::jsonQuote(name) << ": "
            << util::jsonNumber(value);
    }
    out << "\n      }\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

void
writeScenarioBundle(const std::string &dir,
                    const ScenarioResult &result)
{
    std::filesystem::create_directories(dir);
    // Atomic writes (satellite of the chaos PR): a crash or kill
    // mid-write must never leave a truncated artifact that a later
    // compare/baseline run would trust.
    auto write = [&dir](const std::string &file,
                        const std::string &content) {
        util::writeFileAtomic(dir + "/" + file, content);
    };

    const bool chaos = result.config.faults.enabled;

    write("config.json", writeConfigJson(result.config));
    write("run.json", writeRunJson(result));

    {
        std::ostringstream out;
        char buf[64];
        for (const ScenarioEvent &e : result.events) {
            std::snprintf(buf, sizeof(buf), "%.6f", e.tSec);
            out << "{\"t_sec\": " << buf
                << ", \"executed\": " << e.executed
                << ", \"steals\": " << e.steals
                << ", \"inject_pending\": " << e.injectPending
                << ", \"parked_workers\": " << e.parkedWorkers;
            if (chaos)
                out << ", \"stalled_workers\": "
                    << e.stalledWorkers;
            std::snprintf(buf, sizeof(buf), "%.6f",
                          e.packageWatts);
            out << ", \"package_watts\": " << buf << "}\n";
        }
        write("events.jsonl", out.str());
    }

    if (chaos)
        faults::writeFaultsCsv(dir + "/faults.csv",
                               result.faultPlan);

    {
        std::ostringstream out;
        out << "# Scenario run: " << result.config.name << "\n\n"
            << "- kind: `" << toString(result.config.kind)
            << "`, seed " << result.config.seed << ", "
            << result.config.runtime.workers << " workers\n"
            << "- deque `" << result.config.runtime.dequeImpl
            << "`, lock-free inject "
            << (result.config.runtime.lockFreeInject ? "on" : "off")
            << ", steal-half "
            << (result.config.runtime.stealHalf ? "on" : "off")
            << ", locality rounds "
            << result.config.runtime.localityRounds << ", tempo "
            << (result.config.dvfs.tempo ? result.config.dvfs.policy
                                         : "off")
            << "\n"
            << "- wall " << util::jsonNumber(result.wallSeconds)
            << " s, energy " << util::jsonNumber(result.joules)
            << " J\n\n"
            << "## Deterministic counters\n\n"
            << "| counter | value |\n|---|---|\n";
        for (const auto &[name, value] : result.deterministic)
            out << "| " << name << " | " << value << " |\n";
        out << "\n## Metrics\n\n| metric | value |\n|---|---|\n";
        for (const auto &[name, value] : result.metrics)
            out << "| " << name << " | " << util::jsonNumber(value)
                << " |\n";
        out << "\n(events.jsonl has the "
            << result.events.size()
            << "-sample time series; run.json is "
            << "bench_compare.py-compatible.)\n";
        write("summary.md", out.str());
    }

    util::inform("scenario: wrote evidence bundle to " + dir);
}

std::vector<std::string>
checkOutcomeGates(const ScenarioResult &result)
{
    std::vector<std::string> failures;
    const FaultParams &f = result.config.faults;
    if (!f.enabled)
        return failures;
    const auto metric = [&result](const char *name) {
        const auto it = result.metrics.find(name);
        return it != result.metrics.end() ? it->second : 0.0;
    };
    const double accepted = metric("accepted");
    if (accepted <= 0.0)
        return failures; // nothing ran; fractions are undefined
    const auto frac = [&](const char *name) {
        return metric(name) / accepted;
    };
    if (f.maxFailedFrac >= 0.0
        && frac("outcome_failed") > f.maxFailedFrac)
        failures.push_back(
            "outcome gate: failed fraction "
            + util::jsonNumber(frac("outcome_failed"))
            + " exceeds max_failed_frac "
            + util::jsonNumber(f.maxFailedFrac));
    if (f.maxDeadlineExpiredFrac >= 0.0
        && frac("outcome_deadline_expired")
               > f.maxDeadlineExpiredFrac)
        failures.push_back(
            "outcome gate: deadline-expired fraction "
            + util::jsonNumber(frac("outcome_deadline_expired"))
            + " exceeds max_deadline_expired_frac "
            + util::jsonNumber(f.maxDeadlineExpiredFrac));
    const double goodput_frac = (metric("outcome_ok")
                                 + metric("outcome_retried_ok"))
        / accepted;
    if (f.minGoodputFrac >= 0.0 && goodput_frac < f.minGoodputFrac)
        failures.push_back("outcome gate: goodput fraction "
                           + util::jsonNumber(goodput_frac)
                           + " below min_goodput_frac "
                           + util::jsonNumber(f.minGoodputFrac));
    return failures;
}

} // namespace hermes::harness::scenario
