#include "harness/scenario/scenario_config.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/dag_generators.hpp"
#include "util/json.hpp"
#include "workloads/registry.hpp"

namespace hermes::harness::scenario {

const char *
toString(ScenarioKind kind)
{
    switch (kind) {
    case ScenarioKind::kForkJoin: return "fork_join";
    case ScenarioKind::kDag: return "dag";
    case ScenarioKind::kServe: return "serve";
    }
    return "unknown";
}

namespace {

using util::JsonValue;

/**
 * Schema walker over one object: typed getters mark keys consumed,
 * finish() reports duplicates and anything left unconsumed as an
 * unknown key. All findings land in the shared diagnostics list
 * with this object's pointer prefix, so validation keeps going
 * after the first problem and a bad file reports every issue at
 * once.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &object, std::string pointer,
                 std::vector<ScenarioDiag> &diags)
        : object_(object), pointer_(std::move(pointer)),
          diags_(diags)
    {}

    std::string
    keyPointer(const std::string &key) const
    {
        return pointer_ + "/" + util::jsonPointerEscape(key);
    }

    /** The raw member, marked consumed; nullptr when absent. */
    const JsonValue *
    take(const std::string &key)
    {
        consumed_.insert(key);
        return object_.find(key);
    }

    bool
    getString(const std::string &key, std::string &out,
              bool required = false)
    {
        const JsonValue *v = take(key);
        if (!v)
            return reportMissing(key, required, "string");
        if (!v->isString()) {
            typeError(key, "string", *v);
            return false;
        }
        out = v->string();
        return true;
    }

    bool
    getBool(const std::string &key, bool &out)
    {
        const JsonValue *v = take(key);
        if (!v)
            return false;
        if (!v->isBool()) {
            typeError(key, "boolean", *v);
            return false;
        }
        out = v->boolean();
        return true;
    }

    bool
    getDouble(const std::string &key, double &out, double min,
              double max)
    {
        const JsonValue *v = take(key);
        if (!v)
            return false;
        if (!v->isNumber()) {
            typeError(key, "number", *v);
            return false;
        }
        const double n = v->number();
        if (n < min || n > max) {
            diag(keyPointer(key),
                 "value " + util::jsonNumber(n) + " outside ["
                     + util::jsonNumber(min) + ", "
                     + util::jsonNumber(max) + "]");
            return false;
        }
        out = n;
        return true;
    }

    template <typename Int>
    bool
    getInt(const std::string &key, Int &out, double min, double max)
    {
        const JsonValue *v = take(key);
        if (!v)
            return false;
        if (!v->isNumber()) {
            typeError(key, "integer", *v);
            return false;
        }
        const double n = v->number();
        if (n != std::floor(n)) {
            diag(keyPointer(key),
                 "expected integer, got fractional number "
                     + util::jsonNumber(n));
            return false;
        }
        if (n < min || n > max) {
            diag(keyPointer(key),
                 "value " + util::jsonNumber(n) + " outside ["
                     + util::jsonNumber(min) + ", "
                     + util::jsonNumber(max) + "]");
            return false;
        }
        out = static_cast<Int>(n);
        return true;
    }

    /** String constrained to an allowed set. */
    bool
    getEnum(const std::string &key, std::string &out,
            const std::vector<std::string> &allowed,
            bool required = false)
    {
        std::string s;
        if (!getString(key, s, required))
            return false;
        for (const std::string &a : allowed) {
            if (s == a) {
                out = s;
                return true;
            }
        }
        std::string list;
        for (size_t i = 0; i < allowed.size(); ++i)
            list += (i ? "|" : "") + allowed[i];
        diag(keyPointer(key), "\"" + s + "\" is not one of " + list);
        return false;
    }

    /** Nested object member, marked consumed; nullptr when absent
     * (a diagnostic is emitted when present but not an object). */
    const JsonValue *
    getObject(const std::string &key)
    {
        const JsonValue *v = take(key);
        if (!v)
            return nullptr;
        if (!v->isObject()) {
            typeError(key, "object", *v);
            return nullptr;
        }
        return v;
    }

    /** Report duplicates and unconsumed (unknown) keys. */
    void
    finish()
    {
        std::set<std::string> seen;
        for (const auto &[key, value] : object_.members()) {
            if (!seen.insert(key).second)
                diag(keyPointer(key), "duplicate key");
            else if (consumed_.find(key) == consumed_.end())
                diag(keyPointer(key), "unknown key");
        }
    }

    void
    diag(std::string pointer, std::string message)
    {
        diags_.push_back(
            {std::move(pointer), std::move(message)});
    }

  private:
    bool
    reportMissing(const std::string &key, bool required,
                  const char *expected)
    {
        if (required)
            diag(keyPointer(key),
                 std::string("missing required ") + expected);
        return false;
    }

    void
    typeError(const std::string &key, const char *expected,
              const JsonValue &got)
    {
        diag(keyPointer(key),
             std::string("expected ") + expected + ", got "
                 + JsonValue::kindName(got.kind()));
    }

    const JsonValue &object_;
    std::string pointer_;
    std::vector<ScenarioDiag> &diags_;
    std::set<std::string> consumed_;
};

void
readRuntime(const JsonValue &v, const std::string &pointer,
            RuntimePolicy &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getInt("workers", out.workers, 1, 256);
    r.getEnum("deque", out.dequeImpl, {"chaselev", "the"});
    r.getBool("lock_free_inject", out.lockFreeInject);
    r.getBool("steal_half", out.stealHalf);
    r.getInt("locality_rounds", out.localityRounds, 0, 16);
    r.getBool("adaptive_locality", out.adaptiveLocality);
    r.getBool("parking", out.parking);
    r.getInt("park_threshold", out.parkThreshold, 1, 1024);
    r.finish();
}

void
readDvfs(const JsonValue &v, const std::string &pointer,
         DvfsPolicy &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getBool("tempo", out.tempo);
    r.getEnum("policy", out.policy,
              {"baseline", "workpath", "workload", "unified"});
    r.finish();
}

void
readForkJoin(const JsonValue &v, const std::string &pointer,
             ForkJoinParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getInt("tasks", out.tasks, 1, 1e9);
    r.getInt("spin_nanos", out.spinNanos, 0, 1e9);
    r.getInt("repeats", out.repeats, 1, 1e6);
    r.finish();
}

void
readDag(const JsonValue &v, const std::string &pointer,
        DagParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    std::vector<std::string> names;
    for (const std::string &n : sim::benchmarkNames())
        names.push_back(n);
    r.getEnum("benchmark", out.benchmark, names);
    r.getDouble("scale", out.scale, 1e-6, 1e3);
    r.getDouble("gigacycles_per_sec", out.gigacyclesPerSec, 1e-3,
                1e3);
    r.finish();
}

void
readServe(const JsonValue &v, const std::string &pointer,
          ServeParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getDouble("rate_per_sec", out.ratePerSec, 1e-3, 1e9);
    r.getDouble("duration_sec", out.durationSec, 1e-3, 3600.0);
    r.getEnum("arrivals", out.arrivals, {"poisson", "mmpp"});
    r.getDouble("mmpp_burst_factor", out.mmppBurstFactor, 1.0, 1e3);
    r.getDouble("mmpp_base_dwell_sec", out.mmppBaseDwellSec, 1e-4,
                3600.0);
    r.getDouble("mmpp_burst_dwell_sec", out.mmppBurstDwellSec, 1e-4,
                3600.0);
    r.getInt("producers", out.producers, 1, 256);
    r.getInt("spin_nanos", out.spinNanos, 0, 1e9);
    std::vector<std::string> workloads = {""};
    for (const std::string &n : workloads::workloadNames())
        workloads.push_back(n);
    r.getEnum("workload", out.workload, workloads);
    r.getInt("scale", out.scale, 1, 1e9);
    r.getBool("admission", out.admission);
    r.getInt("admit_high", out.admitHigh, 1, 1e9);
    r.getInt("admit_low", out.admitLow, 0, 1e9);
    r.finish();
    if (out.admitLow >= out.admitHigh)
        diags.push_back(
            {pointer + "/admit_low",
             "must be below admit_high ("
                 + std::to_string(out.admitHigh) + ")"});
}

void
readThresholds(const JsonValue &v, const std::string &pointer,
               std::vector<ThresholdSpec> &out,
               std::vector<ScenarioDiag> &diags)
{
    // thresholds is an object: metric name -> spec object.
    std::set<std::string> seen;
    for (const auto &[metric, spec] : v.members()) {
        const std::string metric_ptr =
            pointer + "/" + util::jsonPointerEscape(metric);
        if (!seen.insert(metric).second) {
            diags.push_back({metric_ptr, "duplicate key"});
            continue;
        }
        if (!spec.isObject()) {
            diags.push_back(
                {metric_ptr,
                 std::string("expected object, got ")
                     + JsonValue::kindName(spec.kind())});
            continue;
        }
        ThresholdSpec t;
        t.metric = metric;
        ObjectReader r(spec, metric_ptr, diags);
        std::string direction = "higher";
        r.getEnum("direction", direction, {"higher", "lower"});
        t.lowerBetter = direction == "lower";
        r.getDouble("max_regression", t.maxRegression, 0.0, 10.0);
        r.finish();
        out.push_back(std::move(t));
    }
}

/** True iff `name` is non-empty [A-Za-z0-9_-]+ (file-system safe). */
bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_'
            && c != '-')
            return false;
    }
    return true;
}

void
readSweep(const JsonValue &v, const std::string &pointer,
          const ScenarioConfig &base, SweepParams &out,
          std::vector<ScenarioDiag> &diags)
{
    out.enabled = true;
    ObjectReader r(v, pointer, diags);

    if (const JsonValue *rates = r.take("rates_per_sec")) {
        if (!rates->isArray()) {
            r.diag(r.keyPointer("rates_per_sec"),
                   std::string("expected array, got ")
                       + JsonValue::kindName(rates->kind()));
        } else {
            const auto &items = rates->array();
            if (items.empty() || items.size() > 64)
                r.diag(r.keyPointer("rates_per_sec"),
                       "expected 1..64 rates, got "
                           + std::to_string(items.size()));
            for (size_t i = 0; i < items.size(); ++i) {
                const std::string ptr = r.keyPointer("rates_per_sec")
                                        + "/" + std::to_string(i);
                if (!items[i].isNumber()) {
                    r.diag(ptr,
                           std::string("expected number, got ")
                               + JsonValue::kindName(
                                   items[i].kind()));
                    continue;
                }
                const double rate = items[i].number();
                if (rate < 1e-3 || rate > 1e9) {
                    r.diag(ptr, "value " + util::jsonNumber(rate)
                                    + " outside [0.001, 1e+09]");
                    continue;
                }
                if (!out.ratesPerSec.empty()
                    && rate <= out.ratesPerSec.back()) {
                    r.diag(ptr, "rates must be strictly increasing");
                    continue;
                }
                out.ratesPerSec.push_back(rate);
            }
        }
    } else {
        r.diag(r.keyPointer("rates_per_sec"),
               "missing required array");
    }

    r.getDouble("knee_p99_ns", out.kneeP99Ns, 0.0, 1e12);

    if (const JsonValue *vars = r.take("variants")) {
        if (!vars->isArray()) {
            r.diag(r.keyPointer("variants"),
                   std::string("expected array, got ")
                       + JsonValue::kindName(vars->kind()));
        } else {
            const auto &items = vars->array();
            if (items.empty() || items.size() > 8)
                r.diag(r.keyPointer("variants"),
                       "expected 1..8 variants, got "
                           + std::to_string(items.size()));
            std::set<std::string> names;
            for (size_t i = 0;
                 i < items.size() && i < size_t(8); ++i) {
                const std::string ptr = r.keyPointer("variants")
                                        + "/" + std::to_string(i);
                if (!items[i].isObject()) {
                    r.diag(ptr,
                           std::string("expected object, got ")
                               + JsonValue::kindName(
                                   items[i].kind()));
                    continue;
                }
                SweepVariant var;
                var.runtime = base.runtime;
                var.dvfs = base.dvfs;
                ObjectReader vr(items[i], ptr, diags);
                vr.getString("name", var.name, /*required=*/true);
                if (!var.name.empty() && !validName(var.name))
                    vr.diag(ptr + "/name",
                            "must match [A-Za-z0-9_-]+ (it names "
                            "curves and point directories)");
                else if (!var.name.empty()
                         && !names.insert(var.name).second)
                    vr.diag(ptr + "/name",
                            "duplicate variant name \"" + var.name
                                + "\"");
                if (const JsonValue *rt = vr.getObject("runtime"))
                    readRuntime(*rt, ptr + "/runtime", var.runtime,
                                diags);
                if (const JsonValue *dv = vr.getObject("dvfs"))
                    readDvfs(*dv, ptr + "/dvfs", var.dvfs, diags);
                vr.finish();
                out.variants.push_back(std::move(var));
            }
        }
    } else {
        r.diag(r.keyPointer("variants"), "missing required array");
    }

    if (const JsonValue *g = r.getObject("gates"))
        readThresholds(*g, r.keyPointer("gates"), out.gates, diags);
    if (!out.gates.empty() && out.variants.size() < 2)
        r.diag(r.keyPointer("gates"),
               "gates compare variants against variants[0]; need at "
               "least 2 variants");

    r.finish();
}

void
readFaults(const JsonValue &v, const std::string &pointer,
           const ScenarioConfig &base, FaultParams &out,
           std::vector<ScenarioDiag> &diags)
{
    out.enabled = true;
    ObjectReader r(v, pointer, diags);
    r.getDouble("fail_prob", out.failProb, 0.0, 1.0);
    r.getDouble("straggler_prob", out.stragglerProb, 0.0, 1.0);
    r.getDouble("straggler_factor", out.stragglerFactor, 1.0, 1e3);
    // -1 = no stall; the canonical echo re-emits it, so the range
    // must admit the sentinel for the reparse fixpoint to hold.
    r.getInt("stall_worker", out.stallWorker, -1, 255);
    r.getDouble("stall_at_sec", out.stallAtSec, 0.0, 3600.0);
    r.getDouble("stall_ms", out.stallMs, 0.0, 60000.0);
    r.getBool("force_spill", out.forceSpill);
    r.getDouble("deadline_ms", out.deadlineMs, 0.0, 60000.0);
    r.getInt("max_retries", out.maxRetries, 0, 16);
    r.getDouble("retry_backoff_ms", out.retryBackoffMs, 0.0, 1e4);
    if (const JsonValue *g = r.getObject("gates")) {
        ObjectReader gr(*g, r.keyPointer("gates"), diags);
        gr.getDouble("max_failed_frac", out.maxFailedFrac, 0.0, 1.0);
        gr.getDouble("max_deadline_expired_frac",
                     out.maxDeadlineExpiredFrac, 0.0, 1.0);
        gr.getDouble("min_goodput_frac", out.minGoodputFrac, 0.0,
                     1.0);
        gr.finish();
    }
    r.finish();
    if (out.stallWorker >= 0
        && static_cast<unsigned>(out.stallWorker)
               >= base.runtime.workers)
        diags.push_back(
            {pointer + "/stall_worker",
             "must name a worker below runtime.workers ("
                 + std::to_string(base.runtime.workers) + ")"});
}

void
readSoak(const JsonValue &v, const std::string &pointer,
         SoakParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getDouble("duration_sec", out.durationSec, 0.1, 86400.0);
    r.getDouble("checkpoint_sec", out.checkpointSec, 0.05, 3600.0);
    r.getDouble("drift_factor", out.driftFactor, 1.0, 1e3);
    r.finish();
    if (out.checkpointSec > out.durationSec)
        diags.push_back({pointer + "/checkpoint_sec",
                         "must not exceed duration_sec"});
}

} // namespace

ScenarioLoadResult
parseScenario(const std::string &text)
{
    ScenarioLoadResult result;
    const util::JsonParseResult parsed = util::parseJson(text);
    if (!parsed.ok) {
        result.diags.push_back({"", parsed.error.toString()});
        return result;
    }
    const JsonValue &root = parsed.value;
    if (!root.isObject()) {
        result.diags.push_back(
            {"", std::string("scenario must be an object, got ")
                     + JsonValue::kindName(root.kind())});
        return result;
    }

    ScenarioConfig &config = result.config;
    std::vector<ScenarioDiag> &diags = result.diags;
    ObjectReader r(root, "", diags);

    r.getString("name", config.name, /*required=*/true);
    if (!config.name.empty()) {
        for (char c : config.name) {
            if (!std::isalnum(static_cast<unsigned char>(c))
                && c != '_' && c != '-') {
                r.diag("/name",
                       "must match [A-Za-z0-9_-]+ (it names "
                       "baseline and bundle files)");
                break;
            }
        }
    }

    std::string kind;
    const bool have_kind = r.getEnum(
        "kind", kind, {"fork_join", "dag", "serve"},
        /*required=*/true);
    if (have_kind) {
        if (kind == "fork_join")
            config.kind = ScenarioKind::kForkJoin;
        else if (kind == "dag")
            config.kind = ScenarioKind::kDag;
        else
            config.kind = ScenarioKind::kServe;
    }

    r.getInt("seed", config.seed, 0, 9.007199254740992e15);
    r.getEnum("profile", config.profile, {"A", "B", "host"});
    r.getDouble("sample_hz", config.sampleHz, 1.0, 100000.0);

    if (const JsonValue *v = r.getObject("runtime"))
        readRuntime(*v, "/runtime", config.runtime, diags);
    if (const JsonValue *v = r.getObject("dvfs"))
        readDvfs(*v, "/dvfs", config.dvfs, diags);
    if (const JsonValue *v = r.getObject("thresholds"))
        readThresholds(*v, "/thresholds", config.thresholds, diags);
    if (const JsonValue *v = r.getObject("soak"))
        readSoak(*v, "/soak", config.soak, diags);

    // Exactly the param block matching `kind` may be present; a
    // mismatched block is a whole-object error (the file describes
    // a different experiment than its kind claims).
    const struct
    {
        const char *key;
        ScenarioKind kind;
    } blocks[] = {{"fork_join", ScenarioKind::kForkJoin},
                  {"dag", ScenarioKind::kDag},
                  {"serve", ScenarioKind::kServe}};
    for (const auto &block : blocks) {
        const JsonValue *v = r.getObject(block.key);
        if (!v)
            continue;
        if (have_kind && block.kind != config.kind) {
            r.diag(std::string("/") + block.key,
                   std::string("param block for kind '") + block.key
                       + "' but scenario kind is '" + kind + "'");
            continue;
        }
        const std::string ptr = std::string("/") + block.key;
        if (block.kind == ScenarioKind::kForkJoin)
            readForkJoin(*v, ptr, config.forkJoin, diags);
        else if (block.kind == ScenarioKind::kDag)
            readDag(*v, ptr, config.dag, diags);
        else
            readServe(*v, ptr, config.serve, diags);
    }

    // The faults block is read after runtime so its stall spec can
    // validate against the final worker count.
    if (const JsonValue *v = r.getObject("faults")) {
        if (have_kind && config.kind != ScenarioKind::kServe)
            r.diag("/faults",
                   std::string("faults block requires kind 'serve', "
                               "scenario kind is '")
                       + kind + "'");
        else
            readFaults(*v, "/faults", config, config.faults, diags);
    }

    // The sweep block is read after runtime/dvfs/serve so variants
    // can resolve against the final base policies.
    if (const JsonValue *v = r.getObject("sweep")) {
        if (have_kind && config.kind != ScenarioKind::kServe)
            r.diag("/sweep",
                   std::string("sweep block requires kind 'serve', "
                               "scenario kind is '")
                       + kind + "'");
        else
            readSweep(*v, "/sweep", config, config.sweep, diags);
    }

    r.finish();
    result.ok = diags.empty();
    return result;
}

ScenarioLoadResult
loadScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ScenarioLoadResult result;
        result.diags.push_back({"", "cannot read " + path});
        return result;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseScenario(text.str());
}

namespace {

/** Runtime policy as a JSON object body; `ind` is the indentation
 * of the line the opening brace sits on. Shared by the top-level
 * echo and sweep-variant echoes so the two can never drift. */
std::string
runtimeBodyJson(const RuntimePolicy &r, const std::string &ind)
{
    const std::string in2 = ind + "  ";
    std::ostringstream out;
    out << "{\n"
        << in2 << "\"workers\": " << r.workers << ",\n"
        << in2 << "\"deque\": \"" << r.dequeImpl << "\",\n"
        << in2 << "\"lock_free_inject\": "
        << (r.lockFreeInject ? "true" : "false") << ",\n"
        << in2 << "\"steal_half\": "
        << (r.stealHalf ? "true" : "false") << ",\n"
        << in2 << "\"locality_rounds\": " << r.localityRounds
        << ",\n"
        << in2 << "\"adaptive_locality\": "
        << (r.adaptiveLocality ? "true" : "false") << ",\n"
        << in2 << "\"parking\": " << (r.parking ? "true" : "false")
        << ",\n"
        << in2 << "\"park_threshold\": " << r.parkThreshold << "\n"
        << ind << "}";
    return out.str();
}

/** DVFS policy as a JSON object body (see runtimeBodyJson). */
std::string
dvfsBodyJson(const DvfsPolicy &d, const std::string &ind)
{
    const std::string in2 = ind + "  ";
    std::ostringstream out;
    out << "{\n"
        << in2 << "\"tempo\": " << (d.tempo ? "true" : "false")
        << ",\n"
        << in2 << "\"policy\": \"" << d.policy << "\"\n"
        << ind << "}";
    return out.str();
}

/** Threshold map as a JSON object body (see runtimeBodyJson).
 * Shared by the thresholds echo and the sweep gates echo. */
std::string
thresholdBodyJson(const std::vector<ThresholdSpec> &list,
                  const std::string &ind)
{
    std::ostringstream out;
    out << "{";
    for (size_t i = 0; i < list.size(); ++i) {
        const ThresholdSpec &t = list[i];
        out << (i ? "," : "") << "\n" << ind << "  "
            << util::jsonQuote(t.metric) << ": {\"direction\": \""
            << (t.lowerBetter ? "lower" : "higher")
            << "\", \"max_regression\": "
            << util::jsonNumber(t.maxRegression) << "}";
    }
    out << (list.empty() ? "" : "\n" + ind) << "}";
    return out.str();
}

} // namespace

std::string
writeConfigJson(const ScenarioConfig &c)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"name\": " << util::jsonQuote(c.name) << ",\n"
        << "  \"kind\": \"" << toString(c.kind) << "\",\n"
        << "  \"seed\": " << c.seed << ",\n"
        << "  \"profile\": " << util::jsonQuote(c.profile) << ",\n"
        << "  \"sample_hz\": " << util::jsonNumber(c.sampleHz)
        << ",\n"
        << "  \"runtime\": " << runtimeBodyJson(c.runtime, "  ")
        << ",\n"
        << "  \"dvfs\": " << dvfsBodyJson(c.dvfs, "  ") << ",\n";

    switch (c.kind) {
    case ScenarioKind::kForkJoin:
        out << "  \"fork_join\": {\n"
            << "    \"tasks\": " << c.forkJoin.tasks << ",\n"
            << "    \"spin_nanos\": " << c.forkJoin.spinNanos
            << ",\n"
            << "    \"repeats\": " << c.forkJoin.repeats << "\n"
            << "  },\n";
        break;
    case ScenarioKind::kDag:
        out << "  \"dag\": {\n"
            << "    \"benchmark\": \"" << c.dag.benchmark << "\",\n"
            << "    \"scale\": " << util::jsonNumber(c.dag.scale)
            << ",\n"
            << "    \"gigacycles_per_sec\": "
            << util::jsonNumber(c.dag.gigacyclesPerSec) << "\n"
            << "  },\n";
        break;
    case ScenarioKind::kServe:
        out << "  \"serve\": {\n"
            << "    \"rate_per_sec\": "
            << util::jsonNumber(c.serve.ratePerSec) << ",\n"
            << "    \"duration_sec\": "
            << util::jsonNumber(c.serve.durationSec) << ",\n"
            << "    \"arrivals\": "
            << util::jsonQuote(c.serve.arrivals) << ",\n"
            << "    \"mmpp_burst_factor\": "
            << util::jsonNumber(c.serve.mmppBurstFactor) << ",\n"
            << "    \"mmpp_base_dwell_sec\": "
            << util::jsonNumber(c.serve.mmppBaseDwellSec) << ",\n"
            << "    \"mmpp_burst_dwell_sec\": "
            << util::jsonNumber(c.serve.mmppBurstDwellSec) << ",\n"
            << "    \"producers\": " << c.serve.producers << ",\n"
            << "    \"spin_nanos\": " << c.serve.spinNanos << ",\n"
            << "    \"workload\": "
            << util::jsonQuote(c.serve.workload) << ",\n"
            << "    \"scale\": " << c.serve.scale << ",\n"
            << "    \"admission\": "
            << (c.serve.admission ? "true" : "false") << ",\n"
            << "    \"admit_high\": " << c.serve.admitHigh << ",\n"
            << "    \"admit_low\": " << c.serve.admitLow << "\n"
            << "  },\n";
        break;
    }

    if (c.faults.enabled) {
        out << "  \"faults\": {\n"
            << "    \"fail_prob\": "
            << util::jsonNumber(c.faults.failProb) << ",\n"
            << "    \"straggler_prob\": "
            << util::jsonNumber(c.faults.stragglerProb) << ",\n"
            << "    \"straggler_factor\": "
            << util::jsonNumber(c.faults.stragglerFactor) << ",\n"
            << "    \"stall_worker\": " << c.faults.stallWorker
            << ",\n"
            << "    \"stall_at_sec\": "
            << util::jsonNumber(c.faults.stallAtSec) << ",\n"
            << "    \"stall_ms\": "
            << util::jsonNumber(c.faults.stallMs) << ",\n"
            << "    \"force_spill\": "
            << (c.faults.forceSpill ? "true" : "false") << ",\n"
            << "    \"deadline_ms\": "
            << util::jsonNumber(c.faults.deadlineMs) << ",\n"
            << "    \"max_retries\": " << c.faults.maxRetries
            << ",\n"
            << "    \"retry_backoff_ms\": "
            << util::jsonNumber(c.faults.retryBackoffMs) << ",\n"
            << "    \"gates\": {";
        // Only gates that are set are echoed (negative = disabled
        // sentinel, which the [0, 1] parse range would reject).
        bool first = true;
        const auto gate = [&](const char *key, double value) {
            if (value < 0.0)
                return;
            out << (first ? "" : ",") << "\n      \"" << key
                << "\": " << util::jsonNumber(value);
            first = false;
        };
        gate("max_failed_frac", c.faults.maxFailedFrac);
        gate("max_deadline_expired_frac",
             c.faults.maxDeadlineExpiredFrac);
        gate("min_goodput_frac", c.faults.minGoodputFrac);
        out << (first ? "" : "\n    ") << "}\n"
            << "  },\n";
    }

    if (c.sweep.enabled) {
        out << "  \"sweep\": {\n"
            << "    \"rates_per_sec\": [";
        for (size_t i = 0; i < c.sweep.ratesPerSec.size(); ++i)
            out << (i ? ", " : "")
                << util::jsonNumber(c.sweep.ratesPerSec[i]);
        out << "],\n"
            << "    \"knee_p99_ns\": "
            << util::jsonNumber(c.sweep.kneeP99Ns) << ",\n"
            << "    \"variants\": [\n";
        for (size_t i = 0; i < c.sweep.variants.size(); ++i) {
            const SweepVariant &v = c.sweep.variants[i];
            out << "      {\n"
                << "        \"name\": " << util::jsonQuote(v.name)
                << ",\n"
                << "        \"runtime\": "
                << runtimeBodyJson(v.runtime, "        ") << ",\n"
                << "        \"dvfs\": "
                << dvfsBodyJson(v.dvfs, "        ") << "\n"
                << "      }"
                << (i + 1 < c.sweep.variants.size() ? "," : "")
                << "\n";
        }
        out << "    ],\n"
            << "    \"gates\": "
            << thresholdBodyJson(c.sweep.gates, "    ") << "\n"
            << "  },\n";
    }

    out << "  \"thresholds\": "
        << thresholdBodyJson(c.thresholds, "  ") << ",\n"
        << "  \"soak\": {\n"
        << "    \"duration_sec\": "
        << util::jsonNumber(c.soak.durationSec) << ",\n"
        << "    \"checkpoint_sec\": "
        << util::jsonNumber(c.soak.checkpointSec) << ",\n"
        << "    \"drift_factor\": "
        << util::jsonNumber(c.soak.driftFactor) << "\n"
        << "  }\n"
        << "}\n";
    return out.str();
}

} // namespace hermes::harness::scenario
