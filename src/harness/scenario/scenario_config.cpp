#include "harness/scenario/scenario_config.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/dag_generators.hpp"
#include "util/json.hpp"
#include "workloads/registry.hpp"

namespace hermes::harness::scenario {

const char *
toString(ScenarioKind kind)
{
    switch (kind) {
    case ScenarioKind::kForkJoin: return "fork_join";
    case ScenarioKind::kDag: return "dag";
    case ScenarioKind::kServe: return "serve";
    }
    return "unknown";
}

namespace {

using util::JsonValue;

/**
 * Schema walker over one object: typed getters mark keys consumed,
 * finish() reports duplicates and anything left unconsumed as an
 * unknown key. All findings land in the shared diagnostics list
 * with this object's pointer prefix, so validation keeps going
 * after the first problem and a bad file reports every issue at
 * once.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &object, std::string pointer,
                 std::vector<ScenarioDiag> &diags)
        : object_(object), pointer_(std::move(pointer)),
          diags_(diags)
    {}

    std::string
    keyPointer(const std::string &key) const
    {
        return pointer_ + "/" + util::jsonPointerEscape(key);
    }

    /** The raw member, marked consumed; nullptr when absent. */
    const JsonValue *
    take(const std::string &key)
    {
        consumed_.insert(key);
        return object_.find(key);
    }

    bool
    getString(const std::string &key, std::string &out,
              bool required = false)
    {
        const JsonValue *v = take(key);
        if (!v)
            return reportMissing(key, required, "string");
        if (!v->isString()) {
            typeError(key, "string", *v);
            return false;
        }
        out = v->string();
        return true;
    }

    bool
    getBool(const std::string &key, bool &out)
    {
        const JsonValue *v = take(key);
        if (!v)
            return false;
        if (!v->isBool()) {
            typeError(key, "boolean", *v);
            return false;
        }
        out = v->boolean();
        return true;
    }

    bool
    getDouble(const std::string &key, double &out, double min,
              double max)
    {
        const JsonValue *v = take(key);
        if (!v)
            return false;
        if (!v->isNumber()) {
            typeError(key, "number", *v);
            return false;
        }
        const double n = v->number();
        if (n < min || n > max) {
            diag(keyPointer(key),
                 "value " + util::jsonNumber(n) + " outside ["
                     + util::jsonNumber(min) + ", "
                     + util::jsonNumber(max) + "]");
            return false;
        }
        out = n;
        return true;
    }

    template <typename Int>
    bool
    getInt(const std::string &key, Int &out, double min, double max)
    {
        const JsonValue *v = take(key);
        if (!v)
            return false;
        if (!v->isNumber()) {
            typeError(key, "integer", *v);
            return false;
        }
        const double n = v->number();
        if (n != std::floor(n)) {
            diag(keyPointer(key),
                 "expected integer, got fractional number "
                     + util::jsonNumber(n));
            return false;
        }
        if (n < min || n > max) {
            diag(keyPointer(key),
                 "value " + util::jsonNumber(n) + " outside ["
                     + util::jsonNumber(min) + ", "
                     + util::jsonNumber(max) + "]");
            return false;
        }
        out = static_cast<Int>(n);
        return true;
    }

    /** String constrained to an allowed set. */
    bool
    getEnum(const std::string &key, std::string &out,
            const std::vector<std::string> &allowed,
            bool required = false)
    {
        std::string s;
        if (!getString(key, s, required))
            return false;
        for (const std::string &a : allowed) {
            if (s == a) {
                out = s;
                return true;
            }
        }
        std::string list;
        for (size_t i = 0; i < allowed.size(); ++i)
            list += (i ? "|" : "") + allowed[i];
        diag(keyPointer(key), "\"" + s + "\" is not one of " + list);
        return false;
    }

    /** Nested object member, marked consumed; nullptr when absent
     * (a diagnostic is emitted when present but not an object). */
    const JsonValue *
    getObject(const std::string &key)
    {
        const JsonValue *v = take(key);
        if (!v)
            return nullptr;
        if (!v->isObject()) {
            typeError(key, "object", *v);
            return nullptr;
        }
        return v;
    }

    /** Report duplicates and unconsumed (unknown) keys. */
    void
    finish()
    {
        std::set<std::string> seen;
        for (const auto &[key, value] : object_.members()) {
            if (!seen.insert(key).second)
                diag(keyPointer(key), "duplicate key");
            else if (consumed_.find(key) == consumed_.end())
                diag(keyPointer(key), "unknown key");
        }
    }

    void
    diag(std::string pointer, std::string message)
    {
        diags_.push_back(
            {std::move(pointer), std::move(message)});
    }

  private:
    bool
    reportMissing(const std::string &key, bool required,
                  const char *expected)
    {
        if (required)
            diag(keyPointer(key),
                 std::string("missing required ") + expected);
        return false;
    }

    void
    typeError(const std::string &key, const char *expected,
              const JsonValue &got)
    {
        diag(keyPointer(key),
             std::string("expected ") + expected + ", got "
                 + JsonValue::kindName(got.kind()));
    }

    const JsonValue &object_;
    std::string pointer_;
    std::vector<ScenarioDiag> &diags_;
    std::set<std::string> consumed_;
};

void
readRuntime(const JsonValue &v, const std::string &pointer,
            RuntimePolicy &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getInt("workers", out.workers, 1, 256);
    r.getEnum("deque", out.dequeImpl, {"chaselev", "the"});
    r.getBool("lock_free_inject", out.lockFreeInject);
    r.getBool("steal_half", out.stealHalf);
    r.getInt("locality_rounds", out.localityRounds, 0, 16);
    r.getBool("adaptive_locality", out.adaptiveLocality);
    r.getBool("parking", out.parking);
    r.getInt("park_threshold", out.parkThreshold, 1, 1024);
    r.finish();
}

void
readDvfs(const JsonValue &v, const std::string &pointer,
         DvfsPolicy &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getBool("tempo", out.tempo);
    r.getEnum("policy", out.policy,
              {"baseline", "workpath", "workload", "unified"});
    r.finish();
}

void
readForkJoin(const JsonValue &v, const std::string &pointer,
             ForkJoinParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getInt("tasks", out.tasks, 1, 1e9);
    r.getInt("spin_nanos", out.spinNanos, 0, 1e9);
    r.getInt("repeats", out.repeats, 1, 1e6);
    r.finish();
}

void
readDag(const JsonValue &v, const std::string &pointer,
        DagParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    std::vector<std::string> names;
    for (const std::string &n : sim::benchmarkNames())
        names.push_back(n);
    r.getEnum("benchmark", out.benchmark, names);
    r.getDouble("scale", out.scale, 1e-6, 1e3);
    r.getDouble("gigacycles_per_sec", out.gigacyclesPerSec, 1e-3,
                1e3);
    r.finish();
}

void
readServe(const JsonValue &v, const std::string &pointer,
          ServeParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getDouble("rate_per_sec", out.ratePerSec, 1e-3, 1e9);
    r.getDouble("duration_sec", out.durationSec, 1e-3, 3600.0);
    r.getInt("producers", out.producers, 1, 256);
    r.getInt("spin_nanos", out.spinNanos, 0, 1e9);
    std::vector<std::string> workloads = {""};
    for (const std::string &n : workloads::workloadNames())
        workloads.push_back(n);
    r.getEnum("workload", out.workload, workloads);
    r.getInt("scale", out.scale, 1, 1e9);
    r.getBool("admission", out.admission);
    r.getInt("admit_high", out.admitHigh, 1, 1e9);
    r.getInt("admit_low", out.admitLow, 0, 1e9);
    r.finish();
    if (out.admitLow >= out.admitHigh)
        diags.push_back(
            {pointer + "/admit_low",
             "must be below admit_high ("
                 + std::to_string(out.admitHigh) + ")"});
}

void
readThresholds(const JsonValue &v, const std::string &pointer,
               std::vector<ThresholdSpec> &out,
               std::vector<ScenarioDiag> &diags)
{
    // thresholds is an object: metric name -> spec object.
    std::set<std::string> seen;
    for (const auto &[metric, spec] : v.members()) {
        const std::string metric_ptr =
            pointer + "/" + util::jsonPointerEscape(metric);
        if (!seen.insert(metric).second) {
            diags.push_back({metric_ptr, "duplicate key"});
            continue;
        }
        if (!spec.isObject()) {
            diags.push_back(
                {metric_ptr,
                 std::string("expected object, got ")
                     + JsonValue::kindName(spec.kind())});
            continue;
        }
        ThresholdSpec t;
        t.metric = metric;
        ObjectReader r(spec, metric_ptr, diags);
        std::string direction = "higher";
        r.getEnum("direction", direction, {"higher", "lower"});
        t.lowerBetter = direction == "lower";
        r.getDouble("max_regression", t.maxRegression, 0.0, 10.0);
        r.finish();
        out.push_back(std::move(t));
    }
}

void
readSoak(const JsonValue &v, const std::string &pointer,
         SoakParams &out, std::vector<ScenarioDiag> &diags)
{
    ObjectReader r(v, pointer, diags);
    r.getDouble("duration_sec", out.durationSec, 0.1, 86400.0);
    r.getDouble("checkpoint_sec", out.checkpointSec, 0.05, 3600.0);
    r.getDouble("drift_factor", out.driftFactor, 1.0, 1e3);
    r.finish();
    if (out.checkpointSec > out.durationSec)
        diags.push_back({pointer + "/checkpoint_sec",
                         "must not exceed duration_sec"});
}

} // namespace

ScenarioLoadResult
parseScenario(const std::string &text)
{
    ScenarioLoadResult result;
    const util::JsonParseResult parsed = util::parseJson(text);
    if (!parsed.ok) {
        result.diags.push_back({"", parsed.error.toString()});
        return result;
    }
    const JsonValue &root = parsed.value;
    if (!root.isObject()) {
        result.diags.push_back(
            {"", std::string("scenario must be an object, got ")
                     + JsonValue::kindName(root.kind())});
        return result;
    }

    ScenarioConfig &config = result.config;
    std::vector<ScenarioDiag> &diags = result.diags;
    ObjectReader r(root, "", diags);

    r.getString("name", config.name, /*required=*/true);
    if (!config.name.empty()) {
        for (char c : config.name) {
            if (!std::isalnum(static_cast<unsigned char>(c))
                && c != '_' && c != '-') {
                r.diag("/name",
                       "must match [A-Za-z0-9_-]+ (it names "
                       "baseline and bundle files)");
                break;
            }
        }
    }

    std::string kind;
    const bool have_kind = r.getEnum(
        "kind", kind, {"fork_join", "dag", "serve"},
        /*required=*/true);
    if (have_kind) {
        if (kind == "fork_join")
            config.kind = ScenarioKind::kForkJoin;
        else if (kind == "dag")
            config.kind = ScenarioKind::kDag;
        else
            config.kind = ScenarioKind::kServe;
    }

    r.getInt("seed", config.seed, 0, 9.007199254740992e15);
    r.getEnum("profile", config.profile, {"A", "B", "host"});
    r.getDouble("sample_hz", config.sampleHz, 1.0, 100000.0);

    if (const JsonValue *v = r.getObject("runtime"))
        readRuntime(*v, "/runtime", config.runtime, diags);
    if (const JsonValue *v = r.getObject("dvfs"))
        readDvfs(*v, "/dvfs", config.dvfs, diags);
    if (const JsonValue *v = r.getObject("thresholds"))
        readThresholds(*v, "/thresholds", config.thresholds, diags);
    if (const JsonValue *v = r.getObject("soak"))
        readSoak(*v, "/soak", config.soak, diags);

    // Exactly the param block matching `kind` may be present; a
    // mismatched block is a whole-object error (the file describes
    // a different experiment than its kind claims).
    const struct
    {
        const char *key;
        ScenarioKind kind;
    } blocks[] = {{"fork_join", ScenarioKind::kForkJoin},
                  {"dag", ScenarioKind::kDag},
                  {"serve", ScenarioKind::kServe}};
    for (const auto &block : blocks) {
        const JsonValue *v = r.getObject(block.key);
        if (!v)
            continue;
        if (have_kind && block.kind != config.kind) {
            r.diag(std::string("/") + block.key,
                   std::string("param block for kind '") + block.key
                       + "' but scenario kind is '" + kind + "'");
            continue;
        }
        const std::string ptr = std::string("/") + block.key;
        if (block.kind == ScenarioKind::kForkJoin)
            readForkJoin(*v, ptr, config.forkJoin, diags);
        else if (block.kind == ScenarioKind::kDag)
            readDag(*v, ptr, config.dag, diags);
        else
            readServe(*v, ptr, config.serve, diags);
    }

    r.finish();
    result.ok = diags.empty();
    return result;
}

ScenarioLoadResult
loadScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ScenarioLoadResult result;
        result.diags.push_back({"", "cannot read " + path});
        return result;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseScenario(text.str());
}

std::string
writeConfigJson(const ScenarioConfig &c)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"name\": " << util::jsonQuote(c.name) << ",\n"
        << "  \"kind\": \"" << toString(c.kind) << "\",\n"
        << "  \"seed\": " << c.seed << ",\n"
        << "  \"profile\": " << util::jsonQuote(c.profile) << ",\n"
        << "  \"sample_hz\": " << util::jsonNumber(c.sampleHz)
        << ",\n"
        << "  \"runtime\": {\n"
        << "    \"workers\": " << c.runtime.workers << ",\n"
        << "    \"deque\": \"" << c.runtime.dequeImpl << "\",\n"
        << "    \"lock_free_inject\": "
        << (c.runtime.lockFreeInject ? "true" : "false") << ",\n"
        << "    \"steal_half\": "
        << (c.runtime.stealHalf ? "true" : "false") << ",\n"
        << "    \"locality_rounds\": " << c.runtime.localityRounds
        << ",\n"
        << "    \"adaptive_locality\": "
        << (c.runtime.adaptiveLocality ? "true" : "false") << ",\n"
        << "    \"parking\": "
        << (c.runtime.parking ? "true" : "false") << ",\n"
        << "    \"park_threshold\": " << c.runtime.parkThreshold
        << "\n"
        << "  },\n"
        << "  \"dvfs\": {\n"
        << "    \"tempo\": " << (c.dvfs.tempo ? "true" : "false")
        << ",\n"
        << "    \"policy\": \"" << c.dvfs.policy << "\"\n"
        << "  },\n";

    switch (c.kind) {
    case ScenarioKind::kForkJoin:
        out << "  \"fork_join\": {\n"
            << "    \"tasks\": " << c.forkJoin.tasks << ",\n"
            << "    \"spin_nanos\": " << c.forkJoin.spinNanos
            << ",\n"
            << "    \"repeats\": " << c.forkJoin.repeats << "\n"
            << "  },\n";
        break;
    case ScenarioKind::kDag:
        out << "  \"dag\": {\n"
            << "    \"benchmark\": \"" << c.dag.benchmark << "\",\n"
            << "    \"scale\": " << util::jsonNumber(c.dag.scale)
            << ",\n"
            << "    \"gigacycles_per_sec\": "
            << util::jsonNumber(c.dag.gigacyclesPerSec) << "\n"
            << "  },\n";
        break;
    case ScenarioKind::kServe:
        out << "  \"serve\": {\n"
            << "    \"rate_per_sec\": "
            << util::jsonNumber(c.serve.ratePerSec) << ",\n"
            << "    \"duration_sec\": "
            << util::jsonNumber(c.serve.durationSec) << ",\n"
            << "    \"producers\": " << c.serve.producers << ",\n"
            << "    \"spin_nanos\": " << c.serve.spinNanos << ",\n"
            << "    \"workload\": "
            << util::jsonQuote(c.serve.workload) << ",\n"
            << "    \"scale\": " << c.serve.scale << ",\n"
            << "    \"admission\": "
            << (c.serve.admission ? "true" : "false") << ",\n"
            << "    \"admit_high\": " << c.serve.admitHigh << ",\n"
            << "    \"admit_low\": " << c.serve.admitLow << "\n"
            << "  },\n";
        break;
    }

    out << "  \"thresholds\": {";
    for (size_t i = 0; i < c.thresholds.size(); ++i) {
        const ThresholdSpec &t = c.thresholds[i];
        out << (i ? "," : "") << "\n    "
            << util::jsonQuote(t.metric) << ": {\"direction\": \""
            << (t.lowerBetter ? "lower" : "higher")
            << "\", \"max_regression\": "
            << util::jsonNumber(t.maxRegression) << "}";
    }
    out << (c.thresholds.empty() ? "" : "\n  ") << "},\n"
        << "  \"soak\": {\n"
        << "    \"duration_sec\": "
        << util::jsonNumber(c.soak.durationSec) << ",\n"
        << "    \"checkpoint_sec\": "
        << util::jsonNumber(c.soak.checkpointSec) << ",\n"
        << "    \"drift_factor\": "
        << util::jsonNumber(c.soak.driftFactor) << "\n"
        << "  }\n"
        << "}\n";
    return out.str();
}

} // namespace hermes::harness::scenario
