/**
 * @file
 * Soak mode: loop a scenario's workload on one long-lived runtime
 * and prove it stays healthy.
 *
 * A soak run repeats runScenarioIteration() until the deadline,
 * snapshotting scheduler counters every `soak.checkpointSec` into
 * `soak.jsonl` (one JSON object per checkpoint, appended and
 * flushed line-by-line so a crash still leaves evidence). Two gates
 * fail the run (CLI exit code 6):
 *
 *  - monotone-counter regression: cumulative RuntimeStats counters
 *    must never decrease between checkpoints of one epoch (one
 *    runtime lifetime) — a decrease means counter corruption;
 *  - latency drift: a checkpoint window's mean iteration time
 *    exceeding `soak.driftFactor` x the first window's mean means
 *    the runtime is degrading (leak, lost worker, runaway backlog).
 *
 * Resume: a new invocation pointed at the same directory reads the
 * existing soak.jsonl, continues the checkpoint sequence number, and
 * bumps `epoch` (the new runtime starts counters at zero, so
 * monotone checks never span epochs). The sequence must be
 * contiguous across invocations — that is what the resume test
 * asserts.
 */

#ifndef HERMES_HARNESS_SCENARIO_SOAK_HPP
#define HERMES_HARNESS_SCENARIO_SOAK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario/scenario_config.hpp"

namespace hermes::harness::scenario {

/** One soak.jsonl line. */
struct SoakCheckpoint
{
    uint64_t seq = 0;     ///< global checkpoint number (resumes)
    uint64_t epoch = 0;   ///< runtime lifetime (bumps per invocation)
    double tSec = 0.0;    ///< seconds since this invocation started
    uint64_t iterations = 0;       ///< iterations so far this epoch
    uint64_t windowIterations = 0; ///< iterations in this window
    double meanIterSec = 0.0;      ///< mean iteration time, window
    // Cumulative scheduler counters at the checkpoint (this epoch).
    uint64_t executed = 0;
    uint64_t steals = 0;
    uint64_t parks = 0;
    uint64_t wakes = 0;
    uint64_t injected = 0;
};

/** What a soak invocation did and whether it stayed healthy. */
struct SoakOutcome
{
    bool ok = false;
    std::vector<std::string> failures; ///< gate violations
    uint64_t checkpoints = 0;          ///< lines appended
    uint64_t iterations = 0;           ///< workload iterations run
    uint64_t firstSeq = 0;             ///< first seq this invocation
    uint64_t epoch = 0;                ///< epoch this invocation ran as
};

/**
 * Soak `config` for `durationSec` (<= 0 uses config.soak.durationSec),
 * appending checkpoints to `<dir>/soak.jsonl`. Creates `dir` if
 * needed; resumes seq/epoch from an existing file.
 */
SoakOutcome runSoak(const ScenarioConfig &config,
                    const std::string &dir, double durationSec);

} // namespace hermes::harness::scenario

#endif // HERMES_HARNESS_SCENARIO_SOAK_HPP
