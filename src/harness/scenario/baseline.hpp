/**
 * @file
 * Baseline capture and direction-aware comparison for scenarios.
 *
 * Baselines are keyed by host CPU model and worker count
 * (`baselines/<cpu-key>/<scenario>.json`) because absolute numbers
 * from one machine are meaningless on another — the same trap
 * tools/bench_compare.py documents. `hermes-scenario baseline`
 * writes the current run.json under that key; `compare` re-runs the
 * scenario and gates it against the stored file using the scenario's
 * own per-metric thresholds (ThresholdSpec), with the same
 * pinned-zero epsilon semantics as bench_compare.py's
 * relative_regression().
 *
 * Outcomes map to the CLI's exit-code contract: pass -> 0,
 * regression -> 5, missing baseline -> 4 (scenario_main.cpp).
 */

#ifndef HERMES_HARNESS_SCENARIO_BASELINE_HPP
#define HERMES_HARNESS_SCENARIO_BASELINE_HPP

#include <string>
#include <vector>

#include "harness/scenario/scenario_runner.hpp"

namespace hermes::harness::scenario {

/**
 * Stable identifier of the measurement substrate: the sanitized
 * /proc/cpuinfo model name (lowercased, runs of non-alphanumerics
 * collapsed to '-') suffixed with `-w<workers>`. Falls back to
 * "unknown-cpu" when /proc/cpuinfo is unavailable.
 */
std::string cpuKey(unsigned workers);

/** `<baselineDir>/<cpuKey>/<scenario>.json` */
std::string baselinePath(const std::string &baselineDir,
                         const std::string &cpuKey,
                         const std::string &scenarioName);

/** Write `result`'s run.json as the baseline for its cpu key.
 * Returns the path written. */
std::string captureBaseline(const std::string &baselineDir,
                            const ScenarioResult &result);

enum class CompareStatus
{
    kPass,            ///< every gated metric within its threshold
    kRegression,      ///< at least one metric regressed
    kMissingBaseline, ///< no baseline file for this cpu key
    kError,           ///< baseline unreadable / malformed
};

/** One gated metric's comparison row. */
struct MetricComparison
{
    std::string metric;
    double baseline = 0.0;
    double current = 0.0;
    /** Direction-aware relative worsening (>0 means worse;
     * +infinity for a pinned-zero baseline that moved). */
    double regression = 0.0;
    bool lowerBetter = false;
    double maxRegression = 0.10;
    bool regressed = false;
};

/** Full outcome of a compare, renderable as diff.md. */
struct CompareReport
{
    CompareStatus status = CompareStatus::kError;
    std::string baselineFile;
    std::vector<MetricComparison> rows;
    std::vector<std::string> notes; ///< vanished metrics, etc.

    /** diff.md content: verdict, then a metric table. */
    std::string markdown(const ScenarioConfig &config) const;
};

/**
 * bench_compare.py's relative_regression(), transliterated:
 * pinned-zero baselines fail absolutely on any worsening beyond
 * epsilon, otherwise the signed relative delta flipped so that
 * positive always means "worse" for the metric's direction.
 */
double relativeRegression(double baseline, double current,
                          bool lowerBetter);

/**
 * Gate `current` against the baseline stored for its cpu key.
 * Every ThresholdSpec in the scenario is checked; a metric missing
 * from the baseline file is noted and skipped, one missing from the
 * current run is a regression (coverage must not silently vanish).
 * A scenario with no thresholds passes with a note.
 */
CompareReport compareAgainstBaseline(const std::string &baselineDir,
                                     const ScenarioResult &current);

} // namespace hermes::harness::scenario

#endif // HERMES_HARNESS_SCENARIO_BASELINE_HPP
