/**
 * @file
 * Declarative scenario files: schema, validation, and the canonical
 * defaults-resolved echo.
 *
 * A scenario is a JSON file naming a workload kind (fork_join, dag,
 * serve), the full runtime/steal/inject/deque/DVFS policy surface,
 * a duration, and per-metric regression thresholds. One scenario
 * file *is* the experiment: the same file drives `hermes-scenario
 * run`, `baseline`, `compare`, and `soak`, replacing the ad-hoc
 * bench flag combinations the earlier PRs gated claims with
 * (docs/SCENARIOS.md).
 *
 * Parsing is two-layered: util::parseJson turns bytes into a value
 * tree (never crashes — fuzzed in tests/test_scenario_config.cpp),
 * and this schema layer walks the tree collecting *all* diagnostics
 * instead of stopping at the first. Every diagnostic carries an RFC
 * 6901 JSON pointer ("/runtime/locality_rounds: expected number,
 * got string") so a CI failure names the exact offending key.
 * Unknown keys and duplicate keys are errors — a typo must not
 * silently run the wrong experiment.
 */

#ifndef HERMES_HARNESS_SCENARIO_SCENARIO_CONFIG_HPP
#define HERMES_HARNESS_SCENARIO_SCENARIO_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace hermes::harness::scenario {

/** The workload a scenario drives onto the runtime. */
enum class ScenarioKind
{
    kForkJoin, ///< repeated flat fork-join bursts of spin tasks
    kDag,      ///< a src/sim DAG-generator graph on the real runtime
    kServe,    ///< open-loop serving via harness::serve::runServe()
};

const char *toString(ScenarioKind kind);

/** Declarative subset of runtime::RuntimeConfig (the A/B surface). */
struct RuntimePolicy
{
    unsigned workers = 2;
    std::string dequeImpl = "chaselev"; ///< "chaselev" | "the"
    bool lockFreeInject = true;  ///< false = legacy mutex inject
    bool stealHalf = true;
    unsigned localityRounds = 1;
    bool adaptiveLocality = false;
    bool parking = true;
    unsigned parkThreshold = 4;
};

/** Tempo/DVFS policy of the run. */
struct DvfsPolicy
{
    bool tempo = false; ///< wire a TempoController into the hooks
    std::string policy = "unified"; ///< baseline|workpath|workload|unified
};

/** fork_join kind: `repeats` sequential waves of `tasks` spin
 * tasks. Deterministic by construction: the executed-task count and
 * the seed-derived checksum are pure functions of these numbers. */
struct ForkJoinParams
{
    uint64_t tasks = 256;
    uint64_t spinNanos = 5'000;
    unsigned repeats = 4;
};

/** dag kind: one generated benchmark DAG (sim/dag_generators.hpp)
 * executed on the threaded runtime, cycles mapped to wall-clock
 * spins. */
struct DagParams
{
    std::string benchmark = "ray"; ///< knn|ray|sort|compare|hull
    double scale = 0.02;           ///< multiplies total DAG work
    double gigacyclesPerSec = 2.4; ///< cycle → wall-time mapping
};

/** serve kind: parameters forwarded to harness::serve::ServeConfig. */
struct ServeParams
{
    double ratePerSec = 2'000.0;
    double durationSec = 0.25;
    /** Arrival model: "poisson" | "mmpp". MMPP is the 2-state
     * bursty model; rate_per_sec is its base-state rate and the
     * burst-state rate is mmppBurstFactor x that. */
    std::string arrivals = "poisson";
    double mmppBurstFactor = 8.0;    ///< burst rate / base rate
    double mmppBaseDwellSec = 0.1;   ///< mean base-state dwell
    double mmppBurstDwellSec = 0.02; ///< mean burst-state dwell
    unsigned producers = 2;
    uint64_t spinNanos = 20'000;
    std::string workload;  ///< registered workload; empty = spin
    uint64_t scale = 1024; ///< per-request workload input size
    bool admission = true;
    uint64_t admitHigh = 1024;
    uint64_t admitLow = 256;
};

/**
 * faults{} block (hermes-chaos, docs/RESILIENCE.md): deterministic
 * fault injection and request-lifecycle knobs forwarded to
 * harness::faults::FaultConfig, plus absolute outcome gates
 * evaluated after a run (exit code 8). Only valid for serve
 * scenarios; when absent the run and its bundle are byte-identical
 * to a faults-unaware build.
 */
struct FaultParams
{
    bool enabled = false;         ///< a faults block was present
    double failProb = 0.0;        ///< per-attempt injected-failure prob
    double stragglerProb = 0.0;   ///< per-request straggler prob
    double stragglerFactor = 4.0; ///< service-time inflation (x)
    int32_t stallWorker = -1;     ///< worker to stall; -1 = none
    double stallAtSec = 0.0;      ///< stall time into the run
    double stallMs = 0.0;         ///< stall duration
    bool forceSpill = false;      ///< shrink inject ring => mutex spill
    double deadlineMs = 0.0;      ///< per-request deadline; 0 = none
    uint32_t maxRetries = 0;      ///< bounded retries per request
    double retryBackoffMs = 0.1;  ///< backoff base (doubles per attempt)
    /** Absolute outcome gates (gates{} sub-object); negative =
     * disabled. Fractions are of accepted requests. */
    double maxFailedFrac = -1.0;
    double maxDeadlineExpiredFrac = -1.0;
    double minGoodputFrac = -1.0; ///< (ok + retried_ok) / accepted
};

/** Direction-aware per-metric regression gate for `compare`. */
struct ThresholdSpec
{
    std::string metric;        ///< counter name in run.json
    bool lowerBetter = false;  ///< smaller values are healthier
    double maxRegression = 0.10; ///< allowed relative worsening
};

/** One policy variant of a sweep: the base scenario's runtime and
 * dvfs blocks with this variant's partial overrides applied. The
 * stored policies are fully resolved — echoing and re-parsing them
 * is a fixpoint. */
struct SweepVariant
{
    std::string name;      ///< required; names curves and point dirs
    RuntimePolicy runtime; ///< base runtime + variant overrides
    DvfsPolicy dvfs;       ///< base dvfs + variant overrides
};

/**
 * sweep block: a grid of offered rates x policy variants run by
 * `hermes-scenario sweep`, reduced into curves.json/curves.md.
 * Only valid for serve scenarios. Gates compare every non-first
 * variant against variants[0] at each rate point with the same
 * direction-aware relative-regression rule `compare` uses.
 */
struct SweepParams
{
    bool enabled = false; ///< a sweep block was present
    /** Offered rates (requests/sec), strictly increasing. */
    std::vector<double> ratesPerSec;
    std::vector<SweepVariant> variants;
    /** Knee bound: the curve's knee is the first rate whose sojourn
     * p99 exceeds this many nanoseconds. 0 disables detection. */
    double kneeP99Ns = 0.0;
    /** Per-metric variant-vs-variants[0] gates (exit code 7). */
    std::vector<ThresholdSpec> gates;
};

/** Soak-mode pacing and failure gates. */
struct SoakParams
{
    double durationSec = 10.0;   ///< total soak time (CLI can override)
    double checkpointSec = 2.0;  ///< stats-delta checkpoint period
    /** Fail when a checkpoint window's mean iteration time exceeds
     * driftFactor x the first window's mean (latency drift). */
    double driftFactor = 3.0;
};

/** A fully resolved scenario. */
struct ScenarioConfig
{
    std::string name;                 ///< required
    ScenarioKind kind = ScenarioKind::kForkJoin; ///< required
    uint64_t seed = 42;
    std::string profile = "A";        ///< power-model system profile
    double sampleHz = 200.0;          ///< events.jsonl sampling rate
    RuntimePolicy runtime;
    DvfsPolicy dvfs;
    ForkJoinParams forkJoin;
    DagParams dag;
    ServeParams serve;
    FaultParams faults;
    std::vector<ThresholdSpec> thresholds;
    SoakParams soak;
    SweepParams sweep;
};

/** One validation finding, pointer-first so tests and CI can grep. */
struct ScenarioDiag
{
    std::string pointer; ///< RFC 6901 pointer to the offending key
    std::string message; ///< what is wrong and what was expected

    /** "/runtime/workers: expected number, got string" */
    std::string toString() const { return pointer + ": " + message; }
};

/** Outcome of parsing + validating a scenario document. */
struct ScenarioLoadResult
{
    bool ok = false;
    ScenarioConfig config;            ///< valid only when ok
    std::vector<ScenarioDiag> diags;  ///< non-empty when !ok
};

/** Parse and validate scenario JSON text. Collects every
 * diagnostic it can reach; `ok` iff there are none. Total: never
 * crashes, always returns either a config or diagnostics. */
ScenarioLoadResult parseScenario(const std::string &text);

/** parseScenario() over a file; unreadable files yield a
 * diagnostic at pointer "" rather than a crash. */
ScenarioLoadResult loadScenarioFile(const std::string &path);

/**
 * Canonical defaults-resolved echo of `config`: every knob the run
 * used, stable member order, newline-terminated — a pure function
 * of the config, so two runs of one scenario emit byte-identical
 * config.json (the determinism gate `cmp`s it in CI). Only the
 * param block matching `config.kind` is emitted.
 */
std::string writeConfigJson(const ScenarioConfig &config);

} // namespace hermes::harness::scenario

#endif // HERMES_HARNESS_SCENARIO_SCENARIO_CONFIG_HPP
