#include "harness/scenario/baseline.hpp"

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/assert.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace hermes::harness::scenario {

namespace {

constexpr double kEpsilon = 1e-9; // bench_compare.py's EPSILON

std::string
sanitizeKey(const std::string &raw)
{
    std::string out;
    bool pending_dash = false;
    for (const char ch : raw) {
        if (std::isalnum(static_cast<unsigned char>(ch))) {
            if (pending_dash && !out.empty())
                out.push_back('-');
            pending_dash = false;
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch))));
        } else {
            pending_dash = true;
        }
    }
    return out;
}

/** "model name : ..." from /proc/cpuinfo, or empty. */
std::string
cpuModelName()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        const size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        if (line.compare(0, 10, "model name") == 0)
            return line.substr(colon + 1);
    }
    return "";
}

/** Counters + real_time of benchmarks[0] in a run.json document.
 * Returns false when the document does not look like one. */
bool
extractMetrics(const util::JsonValue &doc,
               std::vector<std::pair<std::string, double>> &out)
{
    if (!doc.isObject())
        return false;
    const util::JsonValue *benchmarks = doc.find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->isArray()
        || benchmarks->array().empty())
        return false;
    const util::JsonValue &bench = benchmarks->array().front();
    if (!bench.isObject())
        return false;
    if (const util::JsonValue *rt = bench.find("real_time");
        rt != nullptr && rt->isNumber())
        out.emplace_back("real_time", rt->number());
    const util::JsonValue *counters = bench.find("counters");
    if (counters != nullptr && counters->isObject())
        for (const auto &[name, value] : counters->members())
            if (value.isNumber())
                out.emplace_back(name, value.number());
    return true;
}

const double *
lookup(const std::vector<std::pair<std::string, double>> &metrics,
       const std::string &name)
{
    for (const auto &[key, value] : metrics)
        if (key == name)
            return &value;
    return nullptr;
}

} // namespace

std::string
cpuKey(unsigned workers)
{
    std::string model = sanitizeKey(cpuModelName());
    if (model.empty())
        model = "unknown-cpu";
    return model + "-w" + std::to_string(workers);
}

std::string
baselinePath(const std::string &baselineDir, const std::string &key,
             const std::string &scenarioName)
{
    return baselineDir + "/" + key + "/" + scenarioName + ".json";
}

std::string
captureBaseline(const std::string &baselineDir,
                const ScenarioResult &result)
{
    const std::string path = baselinePath(
        baselineDir, cpuKey(result.config.runtime.workers),
        result.config.name);
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    // Atomic: a stored baseline is trusted by every later compare.
    util::writeFileAtomic(path, writeRunJson(result));
    util::inform("scenario: baseline captured at " + path);
    return path;
}

double
relativeRegression(double baseline, double current,
                   bool lowerBetter)
{
    if (std::fabs(baseline) < kEpsilon) {
        const bool worse = lowerBetter ? current > kEpsilon
                                       : current < -kEpsilon;
        return worse ? std::numeric_limits<double>::infinity()
                     : 0.0;
    }
    const double delta =
        (current - baseline) / std::fabs(baseline);
    return lowerBetter ? delta : -delta;
}

std::string
CompareReport::markdown(const ScenarioConfig &config) const
{
    std::ostringstream out;
    out << "# Scenario compare: " << config.name << "\n\n";
    switch (status) {
    case CompareStatus::kPass:
        out << "**PASS** — every gated metric within threshold.\n";
        break;
    case CompareStatus::kRegression:
        out << "**REGRESSION** — at least one gated metric "
               "worsened beyond its threshold.\n";
        break;
    case CompareStatus::kMissingBaseline:
        out << "**MISSING BASELINE** — no stored baseline for "
               "this CPU key; run `hermes-scenario baseline` "
               "first.\n";
        break;
    case CompareStatus::kError:
        out << "**ERROR** — baseline file unreadable or not a "
               "run.json document.\n";
        break;
    }
    out << "\n- baseline: `" << baselineFile << "`\n";
    for (const std::string &note : notes)
        out << "- note: " << note << "\n";
    if (!rows.empty()) {
        out << "\n| metric | direction | baseline | current | "
               "regression | allowed | status |\n"
            << "|---|---|---|---|---|---|---|\n";
        for (const MetricComparison &row : rows) {
            out << "| " << row.metric << " | "
                << (row.lowerBetter ? "lower" : "higher")
                << "-better | " << util::jsonNumber(row.baseline)
                << " | " << util::jsonNumber(row.current) << " | ";
            if (std::isinf(row.regression))
                out << "inf";
            else
                out << util::jsonNumber(row.regression);
            out << " | " << util::jsonNumber(row.maxRegression)
                << " | " << (row.regressed ? "REGRESSION" : "ok")
                << " |\n";
        }
    }
    return out.str();
}

CompareReport
compareAgainstBaseline(const std::string &baselineDir,
                       const ScenarioResult &current)
{
    CompareReport report;
    report.baselineFile = baselinePath(
        baselineDir, cpuKey(current.config.runtime.workers),
        current.config.name);

    if (!std::filesystem::exists(report.baselineFile)) {
        report.status = CompareStatus::kMissingBaseline;
        return report;
    }

    std::ifstream in(report.baselineFile);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const util::JsonParseResult parsed = util::parseJson(buffer.str());
    std::vector<std::pair<std::string, double>> base_metrics;
    if (!parsed.ok || !extractMetrics(parsed.value, base_metrics)) {
        report.status = CompareStatus::kError;
        report.notes.push_back(
            parsed.ok ? "baseline is not a run.json document"
                      : "baseline JSON: "
                            + parsed.error.toString());
        return report;
    }

    std::vector<std::pair<std::string, double>> cur_metrics;
    cur_metrics.emplace_back("real_time",
                             current.wallSeconds * 1e9);
    for (const auto &[name, value] : current.metrics)
        cur_metrics.emplace_back(name, value);

    bool regressed = false;
    for (const ThresholdSpec &spec : current.config.thresholds) {
        const double *base = lookup(base_metrics, spec.metric);
        if (base == nullptr) {
            report.notes.push_back(
                "metric `" + spec.metric
                + "` absent from baseline — skipped");
            continue;
        }
        const double *cur = lookup(cur_metrics, spec.metric);
        MetricComparison row;
        row.metric = spec.metric;
        row.lowerBetter = spec.lowerBetter;
        row.maxRegression = spec.maxRegression;
        row.baseline = *base;
        if (cur == nullptr) {
            // Coverage must not vanish silently (bench_compare.py's
            // "metric vanished" failure).
            row.current = std::numeric_limits<double>::quiet_NaN();
            row.regression =
                std::numeric_limits<double>::infinity();
            row.regressed = true;
            report.notes.push_back("metric `" + spec.metric
                                   + "` vanished from current run");
        } else {
            row.current = *cur;
            row.regression = relativeRegression(
                row.baseline, row.current, row.lowerBetter);
            row.regressed = row.regression > row.maxRegression;
        }
        regressed = regressed || row.regressed;
        report.rows.push_back(row);
    }

    if (current.config.thresholds.empty())
        report.notes.push_back(
            "scenario declares no thresholds — nothing gated");
    report.status = regressed ? CompareStatus::kRegression
                              : CompareStatus::kPass;
    return report;
}

} // namespace hermes::harness::scenario
