/**
 * @file
 * The experiment protocol of Section 4.1, as a library.
 *
 * One experiment = (system, benchmark, worker count, policy,
 * frequency selection, scheduling mode). Following the paper, each
 * configuration runs `trials` trials whose first `warmupTrials` are
 * discarded, and HERMES arms are normalized against the unmodified
 * (Baseline) scheduler on the same inputs. Trials vary by seed,
 * which perturbs both the generated input (DAG grain draws) and the
 * schedule (victim selection).
 */

#ifndef HERMES_HARNESS_EXPERIMENT_HPP
#define HERMES_HARNESS_EXPERIMENT_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "platform/system_profile.hpp"
#include "runtime/runtime_config.hpp"
#include "sim/sim_config.hpp"

namespace hermes::harness {

/** One experimental configuration. */
struct ExperimentConfig
{
    platform::SystemProfile profile = platform::systemA();
    std::string benchmark = "sort";
    unsigned workers = 16;

    core::TempoPolicy policy = core::TempoPolicy::Unified;

    /** Frequency selection; unset = the profile's paper default. */
    std::optional<platform::FrequencyLadder> ladder;

    unsigned numThresholds = 2;
    runtime::SchedulingMode scheduling =
        runtime::SchedulingMode::Static;

    /** Trial protocol (paper: 20 trials, discard first 2). */
    unsigned trials = defaultTrials();
    unsigned warmupTrials = 2;

    uint64_t baseSeed = 20140301;  // ASPLOS'14, why not
    double scale = 1.0;

    /**
     * Paper default is 20; override with HERMES_TRIALS for quick
     * runs (minimum 3 so at least one post-warmup trial remains).
     */
    static unsigned defaultTrials();
};

/** Trial-averaged measurements of one configuration. */
struct Measurement
{
    double meanSeconds = 0.0;
    double meanJoules = 0.0;
    double sdSeconds = 0.0;
    double sdJoules = 0.0;
    size_t keptTrials = 0;

    double meanEdp() const { return meanSeconds * meanJoules; }
};

/** Run all trials of `config` with its stated policy. */
Measurement measure(const ExperimentConfig &config);

/** Baseline (policy = Baseline) vs the configured policy. */
struct Comparison
{
    Measurement baseline;
    Measurement tempo;

    /** Fraction of baseline energy saved (positive = good). */
    double
    energySavings() const
    {
        return 1.0 - tempo.meanJoules / baseline.meanJoules;
    }

    /** Fractional slowdown (positive = HERMES slower). */
    double
    timeLoss() const
    {
        return tempo.meanSeconds / baseline.meanSeconds - 1.0;
    }

    /** EDP normalized to baseline (the paper's Figures 8/9). */
    double
    normalizedEdp() const
    {
        return tempo.meanEdp() / baseline.meanEdp();
    }
};

/**
 * Measure `config` against its own baseline arm (same inputs and
 * seeds, policy forced to Baseline).
 */
Comparison compareToBaseline(const ExperimentConfig &config);

/**
 * Single-trial run returning the full SimResult (power series
 * capture for the time-series figures).
 */
sim::SimResult runOnce(const ExperimentConfig &config,
                       unsigned trial, bool record_power_series);

/**
 * Shared driver for figure sweeps: runs configurations derived from
 * a prototype and caches baseline arms so that multi-arm figures
 * (frequency selection, N-frequency, ablations) measure each
 * baseline only once.
 */
class SweepContext
{
  public:
    /** @param prototype supplies profile, trials, seed, scale. */
    explicit SweepContext(ExperimentConfig prototype);

    /** Prototype with benchmark/workers substituted. */
    ExperimentConfig make(const std::string &benchmark,
                          unsigned workers) const;

    /** Cached baseline measurement for `config`'s inputs. */
    const Measurement &baselineFor(const ExperimentConfig &config);

    /** Measure `config` and pair it with its cached baseline. */
    Comparison compare(const ExperimentConfig &config);

  private:
    ExperimentConfig prototype_;
    std::map<std::string, Measurement> baselines_;
};

} // namespace hermes::harness

#endif // HERMES_HARNESS_EXPERIMENT_HPP
