/**
 * @file
 * hermes-chaos: deterministic, seeded fault planning.
 *
 * The serving stack's healthy path is byte-replayable per seed
 * (arrivals.hpp); this layer extends the same discipline to the
 * failure path. A FaultPlan is pure data drawn from its own
 * decorrelated util::mix64 streams, so enabling faults — or changing
 * any fault probability — cannot move an arrival time, a request
 * seed, or an MMPP modulation draw by even one tick. The plan is
 * computed up front from (seed, request count, FaultConfig), written
 * to `faults.csv` in the evidence bundle, and byte-identical across
 * runs with the same seed.
 *
 * Fault sites (see docs/RESILIENCE.md):
 *  - request-body exception: attempt i of request r throws
 *    InjectedFault with probability `failProb` (drawn per attempt
 *    from request r's private stream, so a request's fate is fixed
 *    before the run starts);
 *  - straggler inflation: with probability `stragglerProb` a
 *    request's service time is stretched to `stragglerFactor` x its
 *    measured kernel time;
 *  - worker stall: one chosen worker naps `stall.durationMs` at
 *    t = `stall.atSec` (scheduled by the serve sampler thread, which
 *    doubles as the watchdog that detects it);
 *  - forced inject-ring spill: the scenario layer shrinks the inject
 *    ring's shard capacity so submissions exercise the mutex
 *    spillover path under load.
 *
 * Stream layout: request r draws from stream `kFaultStreamTag + r`,
 * far above the arrival streams (0, 1, 2+i) and the MMPP modulation
 * stream (0x4d4d5050 << 32, "MMPP"); retry backoff jitter for
 * (request r, attempt a) derives from the request's fault stream
 * seed mixed with `kBackoffStreamTag + a`. Within a request stream
 * the straggler coin is always flipped first, then the per-attempt
 * failure coins — so changing `failProb` never moves a straggler
 * decision.
 */

#ifndef HERMES_HARNESS_FAULTS_FAULT_PLAN_HPP
#define HERMES_HARNESS_FAULTS_FAULT_PLAN_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hermes::harness::faults {

/// Stream tag for per-request fault draws ("CHAO" << 32); request r
/// uses util::mix64(seed, kFaultStreamTag + r).
inline constexpr uint64_t kFaultStreamTag = 0x4348414fULL << 32;

/// Stream tag for retry-backoff jitter ("BKOF" << 32); attempt a of
/// request r uses util::mix64(requestStream(r), kBackoffStreamTag + a).
inline constexpr uint64_t kBackoffStreamTag = 0x424b4f46ULL << 32;

/// The exception type thrown by injected request-body failures. The
/// serve driver's retry wrapper catches exactly this type; anything
/// else escaping a request kernel is a real bug and still propagates
/// through the TaskGroup exception channel.
struct InjectedFault : std::runtime_error {
    InjectedFault() : std::runtime_error("hermes-chaos injected fault") {}
};

/// Scheduled stall of one worker: worker `worker` naps `durationMs`
/// once, at `atSec` into the run. worker < 0 disables the site.
struct StallSpec {
    int32_t worker = -1;
    double atSec = 0.0;
    double durationMs = 0.0;

    bool active() const { return worker >= 0 && durationMs > 0.0; }
};

/**
 * Everything hermes-chaos can do to a serve run. `enabled` gates the
 * whole layer: when false the serve driver takes the exact pre-chaos
 * path and emits the exact pre-chaos bundle (no faults.csv, no extra
 * summary counters or timeseries columns).
 */
struct FaultConfig {
    bool enabled = false;

    // -- fault sites ---------------------------------------------------
    double failProb = 0.0;       ///< per-attempt injected-exception prob
    double stragglerProb = 0.0;  ///< per-request straggler prob
    double stragglerFactor = 4.0; ///< service-time inflation (x)
    StallSpec stall;             ///< scheduled worker stall
    bool forceSpill = false;     ///< shrink inject ring => mutex spill

    // -- request lifecycle ---------------------------------------------
    double deadlineMs = 0.0;     ///< 0 = no deadline
    uint32_t maxRetries = 0;     ///< retries after the first attempt
    double retryBackoffMs = 0.1; ///< backoff base (doubles per attempt)
};

/**
 * The precomputed fate of one request. `failAttempts` is how many
 * leading attempts throw InjectedFault: 0 = clean first try,
 * 1..maxRetries = retried-ok (if the deadline holds),
 * maxRetries + 1 = permanent failure (every attempt throws).
 */
struct RequestFault {
    uint32_t failAttempts = 0;
    bool straggler = false;

    bool faulted() const { return failAttempts > 0 || straggler; }
    bool operator==(const RequestFault &o) const
    {
        return failAttempts == o.failAttempts && straggler == o.straggler;
    }
};

/** A full per-request fault schedule: pure data, replayable per seed. */
struct FaultPlan {
    FaultConfig config;
    std::vector<RequestFault> requests; ///< one per arrival, in order

    /// Count of requests with any planned fault (faults.csv rows).
    uint64_t faultedCount() const;
    /// FNV-1a over the planned rows; a compact determinism fingerprint.
    uint64_t hash() const;
};

/**
 * Draw the fault plan for `numRequests` arrivals. Pure function of
 * its arguments; returns an empty request vector when
 * `config.enabled` is false. `seed` is the same scenario seed the
 * arrival schedule uses — decorrelation comes from the stream tags,
 * not from a second seed knob.
 */
FaultPlan generateFaultPlan(const FaultConfig &config, uint64_t seed,
                            size_t numRequests);

/**
 * Deterministic backoff before retry attempt `attempt` (0-based: the
 * delay between attempt `attempt` failing and attempt `attempt` + 1
 * starting) of request `index`: retryBackoffMs x 2^attempt, jittered
 * by a uniform [0.5, 1.5) factor from the request's backoff stream.
 * Capped at 1 s so a misconfigured plan cannot wedge a worker.
 */
uint64_t retryBackoffNanos(const FaultConfig &config, uint64_t seed,
                           uint64_t index, uint32_t attempt);

/**
 * Write the plan's faulted rows as CSV: header
 * `arrival_index,fail_attempts,straggler`, integer columns, one row
 * per request with any planned fault. Byte-identical per
 * (seed, config): no floats, no locale, no timestamps.
 */
void writeFaultsCsv(const std::string &path, const FaultPlan &plan);

} // namespace hermes::harness::faults

#endif // HERMES_HARNESS_FAULTS_FAULT_PLAN_HPP
