#include "harness/faults/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "util/csv.hpp"
#include "util/rng.hpp"

namespace hermes::harness::faults {

namespace {

/// Seed of request r's private fault stream.
uint64_t
requestStream(uint64_t seed, uint64_t index)
{
    return util::mix64(seed, kFaultStreamTag + index);
}

} // namespace

uint64_t
FaultPlan::faultedCount() const
{
    uint64_t n = 0;
    for (const RequestFault &rf : requests)
        if (rf.faulted())
            ++n;
    return n;
}

uint64_t
FaultPlan::hash() const
{
    // FNV-1a over (index, failAttempts, straggler) of faulted rows —
    // same fingerprint style as the scenario layer's schedule_hash.
    uint64_t h = 1469598103934665603ULL;
    auto mixByte = [&h](uint8_t b) {
        h ^= b;
        h *= 1099511628211ULL;
    };
    auto mixWord = [&mixByte](uint64_t w) {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<uint8_t>(w >> (8 * i)));
    };
    for (size_t i = 0; i < requests.size(); ++i) {
        if (!requests[i].faulted())
            continue;
        mixWord(i);
        mixWord(requests[i].failAttempts);
        mixByte(requests[i].straggler ? 1 : 0);
    }
    return h;
}

FaultPlan
generateFaultPlan(const FaultConfig &config, uint64_t seed,
                  size_t numRequests)
{
    FaultPlan plan;
    plan.config = config;
    if (!config.enabled)
        return plan;
    plan.requests.resize(numRequests);
    for (size_t i = 0; i < numRequests; ++i) {
        util::Rng rng(requestStream(seed, i));
        RequestFault &rf = plan.requests[i];
        // Straggler coin first, always — so failProb changes never
        // move a straggler decision within the stream.
        rf.straggler = rng.chance(config.stragglerProb);
        // Per-attempt failure coins: count leading failing attempts,
        // stop at the first success. maxRetries + 1 failures means
        // the request permanently fails.
        for (uint32_t a = 0; a <= config.maxRetries; ++a) {
            if (!rng.chance(config.failProb))
                break;
            rf.failAttempts += 1;
        }
    }
    return plan;
}

uint64_t
retryBackoffNanos(const FaultConfig &config, uint64_t seed,
                  uint64_t index, uint32_t attempt)
{
    util::Rng rng(
        util::mix64(requestStream(seed, index), kBackoffStreamTag + attempt));
    const double base_ns = config.retryBackoffMs * 1e6;
    const double exp_ns =
        base_ns * static_cast<double>(1ULL << std::min<uint32_t>(attempt, 20));
    const double jittered = exp_ns * rng.uniform(0.5, 1.5);
    const double capped = std::min(jittered, 1e9); // never wedge a worker
    return static_cast<uint64_t>(capped);
}

void
writeFaultsCsv(const std::string &path, const FaultPlan &plan)
{
    util::CsvWriter csv(path);
    csv.row({"arrival_index", "fail_attempts", "straggler"});
    char buf[3][24];
    for (size_t i = 0; i < plan.requests.size(); ++i) {
        const RequestFault &rf = plan.requests[i];
        if (!rf.faulted())
            continue;
        std::snprintf(buf[0], sizeof(buf[0]), "%llu",
                      static_cast<unsigned long long>(i));
        std::snprintf(buf[1], sizeof(buf[1]), "%u", rf.failAttempts);
        std::snprintf(buf[2], sizeof(buf[2]), "%d", rf.straggler ? 1 : 0);
        csv.row({buf[0], buf[1], buf[2]});
    }
    csv.close();
}

} // namespace hermes::harness::faults
