/**
 * @file
 * Scheduler event counters, aggregated across workers.
 */

#ifndef HERMES_RUNTIME_STATS_HPP
#define HERMES_RUNTIME_STATS_HPP

#include <array>
#include <cstdint>

namespace hermes::runtime {

/** Snapshot of scheduler activity (sums over all workers). */
struct RuntimeStats
{
    /** Buckets of the tasks-per-steal histogram: 1, 2, 3-4, 5-8,
     * 9-16, 17-32, 33-64, 65+ tasks landed by one steal. */
    static constexpr unsigned kStealSizeBuckets = 8;

    uint64_t pushes = 0;        ///< deque pushes
    uint64_t pops = 0;          ///< successful owner pops
    uint64_t steals = 0;        ///< successful steal operations
    uint64_t failedSteals = 0;  ///< hunts where every victim probe failed
    uint64_t executed = 0;      ///< tasks run (popped/stolen/injected)
    uint64_t inlined = 0;       ///< tasks run inline on full deque
    uint64_t affinitySets = 0;  ///< affinity syscalls issued
    uint64_t injected = 0;      ///< tasks entering via external submit
    uint64_t parks = 0;         ///< times a worker blocked on the lot
    uint64_t wakes = 0;         ///< returns from a parked block
    uint64_t spuriousWakes = 0; ///< wakes whose first hunt found nothing
    uint64_t parkedNanos = 0;   ///< total nanoseconds spent parked
    uint64_t bulkSteals = 0;    ///< steals that landed 2+ tasks at once
    uint64_t stolenTasks = 0;   ///< tasks landed across all steals
    uint64_t localHits = 0;     ///< steals from a same-domain victim
    uint64_t remoteHits = 0;    ///< steals from a cross-domain victim
    uint64_t localWakes = 0;    ///< targeted wakes of a same-domain worker
    uint64_t remoteWakes = 0;   ///< targeted wakes across domains

    /** Histogram of tasks landed per successful steal (see
     * kStealSizeBuckets for the bucket bounds). */
    std::array<uint64_t, kStealSizeBuckets> stealSize{};

    /** Mean tasks landed per successful steal (1.0 with stealHalf
     * off; > 1 once bulk grabs amortize hunt rounds). */
    double
    tasksPerSteal() const
    {
        return steals != 0
            ? static_cast<double>(stolenTasks)
                / static_cast<double>(steals)
            : 0.0;
    }

    /** Bucket index of a steal that landed `tasks` tasks. */
    static unsigned
    stealSizeBucket(uint64_t tasks)
    {
        unsigned bucket = 0;
        // 1→0, 2→1, 3-4→2, 5-8→3, ... log2 above two.
        for (uint64_t bound = 1;
             bucket + 1 < kStealSizeBuckets && tasks > bound;
             bound *= 2)
            ++bucket;
        return bucket;
    }

    RuntimeStats &
    operator+=(const RuntimeStats &o)
    {
        pushes += o.pushes;
        pops += o.pops;
        steals += o.steals;
        failedSteals += o.failedSteals;
        executed += o.executed;
        inlined += o.inlined;
        affinitySets += o.affinitySets;
        injected += o.injected;
        parks += o.parks;
        wakes += o.wakes;
        spuriousWakes += o.spuriousWakes;
        parkedNanos += o.parkedNanos;
        bulkSteals += o.bulkSteals;
        stolenTasks += o.stolenTasks;
        localHits += o.localHits;
        remoteHits += o.remoteHits;
        localWakes += o.localWakes;
        remoteWakes += o.remoteWakes;
        for (unsigned b = 0; b < kStealSizeBuckets; ++b)
            stealSize[b] += o.stealSize[b];
        return *this;
    }
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_STATS_HPP
