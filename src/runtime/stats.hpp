/**
 * @file
 * Scheduler event counters, aggregated across workers.
 */

#ifndef HERMES_RUNTIME_STATS_HPP
#define HERMES_RUNTIME_STATS_HPP

#include <cstdint>

namespace hermes::runtime {

/** Snapshot of scheduler activity (sums over all workers). */
struct RuntimeStats
{
    uint64_t pushes = 0;        ///< deque pushes
    uint64_t pops = 0;          ///< successful owner pops
    uint64_t steals = 0;        ///< successful steals
    uint64_t failedSteals = 0;  ///< hunts where every victim probe failed
    uint64_t executed = 0;      ///< tasks run (popped/stolen/injected)
    uint64_t inlined = 0;       ///< tasks run inline on full deque
    uint64_t affinitySets = 0;  ///< affinity syscalls issued
    uint64_t injected = 0;      ///< tasks entering via external submit
    uint64_t parks = 0;         ///< times a worker blocked on the lot
    uint64_t wakes = 0;         ///< returns from a parked block
    uint64_t spuriousWakes = 0; ///< wakes whose first hunt found nothing
    uint64_t parkedNanos = 0;   ///< total nanoseconds spent parked

    RuntimeStats &
    operator+=(const RuntimeStats &o)
    {
        pushes += o.pushes;
        pops += o.pops;
        steals += o.steals;
        failedSteals += o.failedSteals;
        executed += o.executed;
        inlined += o.inlined;
        affinitySets += o.affinitySets;
        injected += o.injected;
        parks += o.parks;
        wakes += o.wakes;
        spuriousWakes += o.spuriousWakes;
        parkedNanos += o.parkedNanos;
        return *this;
    }
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_STATS_HPP
