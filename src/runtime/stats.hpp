/**
 * @file
 * Scheduler event counters, aggregated across workers.
 */

#ifndef HERMES_RUNTIME_STATS_HPP
#define HERMES_RUNTIME_STATS_HPP

#include <array>
#include <cstdint>

namespace hermes::runtime {

/** Snapshot of scheduler activity (sums over all workers). */
struct RuntimeStats
{
    /** Buckets of the tasks-per-steal histogram: 1, 2, 3-4, 5-8,
     * 9-16, 17-32, 33-64, 65+ tasks landed by one steal. */
    static constexpr unsigned kStealSizeBuckets = 8;

    /** Buckets of the inject drain histogram: backlog depth 1, 2,
     * 3-4, ... 65+ observed by a successful inject-path pop.
     * Defined as kStealSizeBuckets because stealSizeBucket() is the
     * indexing function for both histograms — diverging the two
     * would make its clamp overrun the smaller array. */
    static constexpr unsigned kInjectDrainBuckets = kStealSizeBuckets;

    uint64_t pushes = 0;        ///< deque pushes
    uint64_t pops = 0;          ///< successful owner pops
    uint64_t steals = 0;        ///< successful steal operations
    uint64_t failedSteals = 0;  ///< hunts where every victim probe failed
    uint64_t executed = 0;      ///< tasks run (popped/stolen/injected)
    uint64_t inlined = 0;       ///< tasks run inline on full deque
    uint64_t affinitySets = 0;  ///< affinity syscalls issued
    uint64_t injected = 0;      ///< tasks entering via external submit
    uint64_t parks = 0;         ///< times a worker blocked on the lot
    uint64_t wakes = 0;         ///< returns from a parked block
    uint64_t spuriousWakes = 0; ///< wakes whose first hunt found nothing
    uint64_t parkedNanos = 0;   ///< total nanoseconds spent parked
    uint64_t bulkSteals = 0;    ///< steals that landed 2+ tasks at once
    uint64_t stolenTasks = 0;   ///< tasks landed across all steals
    uint64_t localHits = 0;     ///< steals from a same-domain victim
    uint64_t remoteHits = 0;    ///< steals from a cross-domain victim
    uint64_t localWakes = 0;    ///< targeted wakes of a same-domain worker
    uint64_t remoteWakes = 0;   ///< targeted wakes across domains
    uint64_t injectFastPath = 0;  ///< injects landing in a lock-free ring shard
    uint64_t injectSpill = 0;     ///< injects overflowing to the spillover deque
    uint64_t injectShardHits = 0; ///< inject pops served by the consumer's own-domain shard (0 when the queue has a single shard — nothing to measure)
    uint64_t injectDrainBack = 0; ///< spilled tasks moved back into a ring with room (FIFO recovery under sustained overflow)
    uint64_t stealCasRetries = 0; ///< failed steal claims: Chase-Lev head-CAS losses / THE claim-undos against a racing pop
    uint64_t popCasLosses = 0;    ///< owner pops that lost the last-task CAS to a thief (Chase-Lev deque only)
    uint64_t droppedHandleErrors = 0; ///< task exceptions swallowed by the submit-handle release drain (the handle was dropped without wait(); see SubmitHandle)

    /** Histogram of tasks landed per successful steal (see
     * kStealSizeBuckets for the bucket bounds). */
    std::array<uint64_t, kStealSizeBuckets> stealSize{};

    /** Drain histogram of the inject path: the backlog depth (the
     * pending counter, including the claimed task) each successful
     * inject pop observed — a latency proxy for how far external
     * submissions queue up before a worker drains them. */
    std::array<uint64_t, kInjectDrainBuckets> injectDrain{};

    /** Share of injected tasks that took the lock-free fast path
     * (0 when nothing was injected; always 0 on the legacy mutex
     * queue, whose entries count in neither bucket). */
    double
    injectFastFraction() const
    {
        const uint64_t routed = injectFastPath + injectSpill;
        return routed != 0
            ? static_cast<double>(injectFastPath)
                / static_cast<double>(routed)
            : 0.0;
    }

    /** Mean tasks landed per successful steal (1.0 with stealHalf
     * off; > 1 once bulk grabs amortize hunt rounds). */
    double
    tasksPerSteal() const
    {
        return steals != 0
            ? static_cast<double>(stolenTasks)
                / static_cast<double>(steals)
            : 0.0;
    }

    /** Bucket index of a steal that landed `tasks` tasks. */
    static unsigned
    stealSizeBucket(uint64_t tasks)
    {
        unsigned bucket = 0;
        // 1→0, 2→1, 3-4→2, 5-8→3, ... log2 above two.
        for (uint64_t bound = 1;
             bucket + 1 < kStealSizeBuckets && tasks > bound;
             bound *= 2)
            ++bucket;
        return bucket;
    }

    RuntimeStats &
    operator+=(const RuntimeStats &o)
    {
        pushes += o.pushes;
        pops += o.pops;
        steals += o.steals;
        failedSteals += o.failedSteals;
        executed += o.executed;
        inlined += o.inlined;
        affinitySets += o.affinitySets;
        injected += o.injected;
        parks += o.parks;
        wakes += o.wakes;
        spuriousWakes += o.spuriousWakes;
        parkedNanos += o.parkedNanos;
        bulkSteals += o.bulkSteals;
        stolenTasks += o.stolenTasks;
        localHits += o.localHits;
        remoteHits += o.remoteHits;
        localWakes += o.localWakes;
        remoteWakes += o.remoteWakes;
        injectFastPath += o.injectFastPath;
        injectSpill += o.injectSpill;
        injectShardHits += o.injectShardHits;
        injectDrainBack += o.injectDrainBack;
        stealCasRetries += o.stealCasRetries;
        popCasLosses += o.popCasLosses;
        droppedHandleErrors += o.droppedHandleErrors;
        for (unsigned b = 0; b < kStealSizeBuckets; ++b)
            stealSize[b] += o.stealSize[b];
        for (unsigned b = 0; b < kInjectDrainBuckets; ++b)
            injectDrain[b] += o.injectDrain[b];
        return *this;
    }
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_STATS_HPP
