/**
 * @file
 * The work-stealing deque (paper Section 2, Algorithms 2.2-2.4).
 *
 * Each worker owns one deque. The owner pushes and pops at the tail;
 * thieves steal at the head, so the head always holds the *least
 * immediate* task under the work-first principle. Two interchangeable
 * synchronization protocols sit behind one API, selected by
 * `DequePolicy::impl`:
 *
 *  - **ChaseLev** (default): lock-free. A thief claims the head slot
 *    with a single CAS on `head_`; the owner's pop retracts `tail_`
 *    and resolves the last-task race with its own CAS on `head_`. No
 *    mutex anywhere — the full memory-order argument is in
 *    docs/STEALING.md ("The deque").
 *  - **The**: the paper's THE-style protocol kept for bitwise A/B
 *    replay — push lock-free, pop locking only on the last-task
 *    race, steal always locking (the pre-PR-5 behavior).
 *
 * Both protocols share the ring representation: tasks are stored as
 * their trivially-copyable `Task::Repr` (task.hpp), written and read
 * word-by-word with relaxed atomics. That makes a Chase-Lev steal's
 * copy-before-CAS race-free for the sanitizers: a thief copies the
 * slot words, and only a *successful* head CAS adopts the bytes — a
 * failed CAS discards a possibly-torn copy that never had a
 * constructor or destructor run on it.
 *
 * Index convention (the paper's pseudocode mixes two): items occupy
 * [head, tail); size == tail - head; push stores at tail then
 * publishes tail+1; pop claims tail-1; steal claims head. Indices grow
 * monotonically and wrap onto a fixed ring. A full deque rejects the
 * push and the caller executes the task inline — semantically sound
 * for child-stealing, and it bounds memory like Cilk's stack bound.
 */

#ifndef HERMES_RUNTIME_DEQUE_HPP
#define HERMES_RUNTIME_DEQUE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/task.hpp"

namespace hermes::runtime {

/** Which synchronization protocol a WsDeque runs. */
enum class DequeImpl
{
    ChaseLev, ///< lock-free: steal CAS + owner last-task CAS
    The       ///< legacy THE protocol (mutex on steal/contended pop)
};

/**
 * Deque knobs (part of RuntimeConfig).
 *
 * `impl = DequeImpl::The` replays the legacy mutex-guarded THE deque
 * for A/B comparison — same task ordering, same scheduler behavior,
 * zero CAS-retry counters — mirroring `InjectPolicy::useLockFreeInject`
 * and `StealPolicy::localityRounds = 0`.
 */
struct DequePolicy
{
    DequeImpl impl = DequeImpl::ChaseLev;
};

/** Owner-push/owner-pop/thief-steal deque (Chase-Lev or THE). */
class WsDeque
{
  public:
    /**
     * @param capacity_pow2 ring capacity; rounded up to 2^k
     * @param policy protocol selection (default lock-free Chase-Lev)
     */
    explicit WsDeque(size_t capacity_pow2 = 1 << 13,
                     DequePolicy policy = {});

    /** Destroys any tasks still queued (releases boxed closures). */
    ~WsDeque();

    WsDeque(const WsDeque &) = delete;
    WsDeque &operator=(const WsDeque &) = delete;

    /**
     * Owner pushes `t` at the tail (Algorithm 2.2). Identical for
     * both protocols.
     *
     * The usable capacity is capacity() - 1: one ring slot stays
     * vacant so the owner can never wrap onto the slot of an
     * in-flight steal (THE: a thief that claimed the head index but
     * has not yet moved the task out; Chase-Lev: the same rule is
     * what guarantees a torn pre-CAS slot copy always loses its
     * claiming CAS — see push() in deque.cpp).
     *
     * The tail publish is deliberately seq_cst, not release: it is
     * the producer half of the parking Dekker handshake
     * (docs/ARCHITECTURE.md, "Why there is no lost-wakeup window"),
     * and the head read that computes `size_after` must be ordered
     * after it so an empty→non-empty transition is never misread.
     *
     * @param t consumed only on success; intact when push fails so
     *        the caller can run it inline
     * @param size_after set to the deque size after the push
     * @return false if the ring is full (caller runs task inline)
     */
    bool push(Task &&t, size_t &size_after);

    /**
     * Owner pops from the tail — the most immediate task
     * (Algorithm 2.3). Chase-Lev: retract the tail (seq_cst), then
     * read the head; only the `head == tail` last-task case runs a
     * CAS on `head_` against the thieves. THE: the same shape with
     * the contended case retried under the lock.
     * @param out receives the task on success
     * @param size_after set to the size after a successful pop
     *        (racy estimate under Chase-Lev: thieves may move the
     *        head concurrently)
     * @return true on success, false if empty (or the last task was
     *         lost to a thief)
     */
    bool pop(Task &out, size_t &size_after);

    /**
     * Thief steals from the head — the least immediate task
     * (Algorithm 2.4). Chase-Lev: copy the head slot, then claim it
     * with one CAS on `head_`; a failed CAS (another thief or the
     * owner's last-task pop got there first) returns false and
     * counts a `stealCasRetries`. THE: claim-then-check under the
     * lock.
     * @param out receives the task on success
     * @param size_after set to the size after the steal (racy
     *        estimate under Chase-Lev)
     * @return true on success, false if empty/contended
     */
    bool steal(Task &out, size_t &size_after);

    /**
     * Thief steals up to ceil(n/2) tasks from the head, where n is
     * the size observed on entry.
     *
     * Chase-Lev: the grab is a bounded sequence of single-steal
     * steps — read head and tail (seq_cst), copy the head slot,
     * claim it with one CAS — aborting on the first contended CAS or
     * observed emptiness. Each step is the proven single-steal
     * protocol, which is what makes the grab exactly-once: a single
     * bulk head CAS after copying k slots could duplicate tasks
     * against the owner's pop, which frees slots from the tail side
     * without ever writing `head_` (see docs/STEALING.md for the
     * interleaving). The last-task race therefore always goes
     * through the single-steal CAS (`want = 1` when `n == 1`).
     * Unlike the THE grab there is no lock making the whole batch
     * atomic against other thieves — an interleaved thief simply
     * ends the batch early; head order is still globally preserved.
     *
     * THE: repeats the single-steal claim-then-check step under one
     * lock acquisition (the pre-PR-5 behavior, unchanged).
     *
     * @param out tasks are appended; not cleared first
     * @param size_after set to the size remaining after the grab
     *        (racy estimate under Chase-Lev)
     * @return number of tasks appended (0 if empty/contended)
     */
    size_t stealHalf(std::vector<Task> &out, size_t &size_after);

    /** Racy size estimate (exact only when quiescent). */
    size_t size() const;

    /** Racy emptiness estimate. */
    bool empty() const { return size() == 0; }

    size_t capacity() const { return mask_ + 1; }

    /** The protocol this deque runs. */
    DequeImpl impl() const { return impl_; }

    /**
     * Failed steal claims: Chase-Lev head-CAS losses (another thief
     * or the owner won the slot); THE claim-undo events (a racing
     * pop emptied the claimed slot). The thief-contention signal of
     * the chaselev-vs-the A/B.
     */
    uint64_t
    stealCasRetries() const
    {
        return stealCasRetries_.load(std::memory_order_relaxed);
    }

    /** Owner pops that lost the last-task race to a thief — the
     * owner's head CAS failed. Chase-Lev only: the THE replay
     * cannot separate a lost race from plain empty without extra
     * state and keeps this at 0. */
    uint64_t
    popCasLosses() const
    {
        return popCasLosses_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr size_t kSlotWords =
        sizeof(Task::Repr) / sizeof(uint64_t);

    bool popChaseLev(Task &out, size_t &size_after);
    bool popThe(Task &out, size_t &size_after);
    bool stealChaseLev(Task &out, size_t &size_after);
    bool stealThe(Task &out, size_t &size_after);
    size_t stealHalfChaseLev(std::vector<Task> &out,
                             size_t &size_after);
    size_t stealHalfThe(std::vector<Task> &out, size_t &size_after);

    /** Write a relocated task into ring slot `index` (relaxed
     * per-word atomic stores; the index publish orders them). */
    void storeSlot(int64_t index, const Task::Repr &repr);

    /** Read ring slot `index` as relocated bytes (relaxed per-word
     * atomic loads). Under Chase-Lev the result may be torn when
     * the owner concurrently wraps onto the slot — callers must
     * discard it unless their claiming CAS succeeds. */
    Task::Repr loadSlot(int64_t index) const;

    /** One ring slot = kSlotWords consecutive 64-bit words; atomic
     * words (not Task objects) so the thief's copy-before-CAS is a
     * defined read even when it races the owner's wrap-around
     * overwrite. */
    std::unique_ptr<std::atomic<uint64_t>[]> slots_;
    size_t mask_;
    DequeImpl impl_;
    // Index words. All cross-thread accesses that arbitrate
    // ownership (tail publish/retract, head reads in pop/steal, the
    // claiming CASes) are seq_cst: the single total order S is what
    // resolves every pop-vs-steal tug-of-war, and the tail publish
    // doubles as the parking handshake's producer store. Reads that
    // only feed conservative checks (push's full check, the pop
    // empty fast path) are weaker — each is annotated at its site.
    std::atomic<int64_t> head_{0};
    std::atomic<int64_t> tail_{0};
    /** THE protocol only; untouched by Chase-Lev. */
    std::mutex lock_;
    std::atomic<uint64_t> stealCasRetries_{0};
    std::atomic<uint64_t> popCasLosses_{0};
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_DEQUE_HPP
