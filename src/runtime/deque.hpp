/**
 * @file
 * The work-stealing deque (paper Section 2, Algorithms 2.2-2.4).
 *
 * Each worker owns one deque. The owner pushes and pops at the tail;
 * thieves steal at the head, so the head always holds the *least
 * immediate* task under the work-first principle. Synchronization
 * follows the paper's THE-style protocol: push is lock-free, pop takes
 * the lock only when it may race a thief over the last task, steal
 * always locks. stealHalf() bulk-steals ceil(n/2) tasks under one
 * lock acquisition by repeating the single-steal step; the
 * linearizability argument is spelled out in docs/STEALING.md.
 *
 * Index convention (the paper's pseudocode mixes two): items occupy
 * [head, tail); size == tail - head; push stores at tail then
 * publishes tail+1; pop claims tail-1; steal claims head. Indices grow
 * monotonically and wrap onto a fixed ring. A full deque rejects the
 * push and the caller executes the task inline — semantically sound
 * for child-stealing, and it bounds memory like Cilk's stack bound.
 */

#ifndef HERMES_RUNTIME_DEQUE_HPP
#define HERMES_RUNTIME_DEQUE_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/task.hpp"

namespace hermes::runtime {

/** Owner-push/owner-pop/thief-steal deque with THE locking. */
class WsDeque
{
  public:
    /** @param capacity_pow2 ring capacity; rounded up to 2^k. */
    explicit WsDeque(size_t capacity_pow2 = 1 << 13);

    WsDeque(const WsDeque &) = delete;
    WsDeque &operator=(const WsDeque &) = delete;

    /**
     * Owner pushes `t` at the tail (Algorithm 2.2).
     *
     * The usable capacity is capacity() - 1: one ring slot stays
     * vacant so a thief that has claimed the head index but has not
     * yet moved the task out can never see its slot reused (see
     * push() in deque.cpp).
     *
     * @param t consumed only on success; intact when push fails so
     *        the caller can run it inline
     * @param size_after set to the deque size after the push
     * @return false if the ring is full (caller runs task inline)
     */
    bool push(Task &&t, size_t &size_after);

    /**
     * Owner pops from the tail — the most immediate task
     * (Algorithm 2.3, THE optimistic protocol).
     * @param out receives the task on success
     * @param size_after set to the size after a successful pop
     * @return true on success, false if empty
     */
    bool pop(Task &out, size_t &size_after);

    /**
     * Thief steals from the head — the least immediate task
     * (Algorithm 2.4).
     * @param out receives the task on success
     * @param size_after set to the size after a successful steal
     * @return true on success, false if empty/contended
     */
    bool steal(Task &out, size_t &size_after);

    /**
     * Thief steals ceil(n/2) tasks from the head in one lock
     * acquisition, where n is the size observed on entry.
     *
     * Each claimed slot follows the exact single-steal protocol
     * (claim the head index, re-check the tail, move the task out
     * before the next claim), so the one-vacant-slot rule protects
     * every in-flight slot from owner wrap-around and the
     * linearizability argument of steal() applies per step — the
     * bulk grab is a sequence of single steals made atomic against
     * other thieves by the deque lock (docs/STEALING.md). A racing
     * owner pop can shrink the grab below ceil(n/2); the tasks
     * appended to `out` preserve head order (least immediate first).
     *
     * @param out tasks are appended; not cleared first
     * @param size_after set to the size remaining after the grab
     * @return number of tasks appended (0 if empty/contended)
     */
    size_t stealHalf(std::vector<Task> &out, size_t &size_after);

    /** Racy size estimate (exact only when quiescent). */
    size_t size() const;

    /** Racy emptiness estimate. */
    bool empty() const { return size() == 0; }

    size_t capacity() const { return buffer_.size(); }

  private:
    Task &slot(int64_t index)
    {
        return buffer_[static_cast<size_t>(index) & mask_];
    }

    std::vector<Task> buffer_;
    size_t mask_;
    // head_/tail_ are seq_cst throughout: the THE protocol's
    // correctness argument relies on a single total order over the
    // index updates and reads (see pop/steal comments).
    std::atomic<int64_t> head_{0};
    std::atomic<int64_t> tail_{0};
    std::mutex lock_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_DEQUE_HPP
