#include "runtime/task_group.hpp"

#include <thread>

#include "runtime/scheduler.hpp"
#include "util/assert.hpp"

namespace hermes::runtime {

TaskGroup::~TaskGroup()
{
    HERMES_ASSERT(pending() == 0,
                  "TaskGroup destroyed with tasks still pending; "
                  "call wait() first");
}

void
TaskGroup::run(TaskFn fn)
{
    rt_.spawn(*this, std::move(fn));
}

void
TaskGroup::wait()
{
    Runtime *rt = Runtime::current();
    const core::WorkerId id = Runtime::currentWorker();

    if (rt == &rt_ && id != core::invalidWorker) {
        // A worker at a sync point keeps scheduling: its own deque
        // first (our children sit there), then stealing — the same
        // loop as Algorithm 2.1.
        while (pending_.load(std::memory_order_acquire) != 0) {
            if (!rt_.findAndExecute(id))
                std::this_thread::yield();
        }
    } else {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] {
            return pending_.load(std::memory_order_acquire) == 0;
        });
    }
    rethrowIfError();
}

void
TaskGroup::finish()
{
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Synchronize with external waiters: take the lock so the
        // notification cannot slip between their predicate check and
        // their wait.
        std::lock_guard<std::mutex> lock(mutex_);
        cv_.notify_all();
    }
}

void
TaskGroup::recordException(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_)
        error_ = std::move(error);
}

void
TaskGroup::rethrowIfError()
{
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace hermes::runtime
