#include "runtime/parking_lot.hpp"

#if defined(__linux__)

#include <climits>

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace hermes::runtime {

namespace {

static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t),
              "futex requires a bare 32-bit word");

long
futexOp(std::atomic<uint32_t> &word, int op, uint32_t value)
{
    // std::atomic<uint32_t> is layout-compatible with uint32_t on
    // every Linux ABI (checked above); the kernel only needs the
    // address of the word.
    return syscall(SYS_futex, reinterpret_cast<uint32_t *>(&word), op,
                   value, nullptr, nullptr, 0);
}

} // namespace

void
ParkingLot::wait(Epoch expected)
{
    if (epoch_.load(std::memory_order_seq_cst) != expected)
        return;
    // The kernel re-reads the word under its internal lock: if a
    // notify bumped the epoch after the load above, the comparison
    // fails (EAGAIN) and we return instead of blocking — this is the
    // step that closes the lost-wakeup window. EINTR and stolen
    // wakeups surface as spurious returns, which callers tolerate.
    futexOp(epoch_, FUTEX_WAIT_PRIVATE, expected);
}

void
ParkingLot::notifyOne()
{
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    futexOp(epoch_, FUTEX_WAKE_PRIVATE, 1);
}

void
ParkingLot::notifyAll()
{
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    futexOp(epoch_, FUTEX_WAKE_PRIVATE, INT_MAX);
}

} // namespace hermes::runtime

#else // !defined(__linux__)

namespace hermes::runtime {

void
ParkingLot::wait(Epoch expected)
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Bumps happen under mutex_, so the predicate re-check and the
    // block are atomic with respect to notifyOne(): no lost wakeup.
    cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_seq_cst) != expected;
    });
}

void
ParkingLot::notifyOne()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        epoch_.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_.notify_one();
}

void
ParkingLot::notifyAll()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        epoch_.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_.notify_all();
}

} // namespace hermes::runtime

#endif
