#include "runtime/parking_lot.hpp"

#if defined(__linux__)

#include <climits>

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace hermes::runtime {

namespace {

static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t),
              "futex requires a bare 32-bit word");

long
futexOp(std::atomic<uint32_t> &word, int op, uint32_t value)
{
    // std::atomic<uint32_t> is layout-compatible with uint32_t on
    // every Linux ABI (checked above); the kernel only needs the
    // address of the word.
    return syscall(SYS_futex, reinterpret_cast<uint32_t *>(&word), op,
                   value, nullptr, nullptr, 0);
}

} // namespace

ParkingLot::ParkingLot(unsigned num_workers)
    : numWorkers_(num_workers), slots_(new Slot[num_workers])
{}

void
ParkingLot::wait(unsigned w, Epoch expected)
{
    auto &word = slots_[w].epoch;
    if (word.load(std::memory_order_seq_cst) != expected)
        return;
    // The kernel re-reads the word under its internal lock: if a
    // notify bumped the epoch after the load above, the comparison
    // fails (EAGAIN) and we return instead of blocking — this is the
    // step that closes the lost-wakeup window. EINTR and stale bumps
    // surface as spurious returns, which callers tolerate.
    futexOp(word, FUTEX_WAIT_PRIVATE, expected);
}

void
ParkingLot::notifyWorker(unsigned w)
{
    auto &word = slots_[w].epoch;
    word.fetch_add(1, std::memory_order_seq_cst);
    futexOp(word, FUTEX_WAKE_PRIVATE, 1);
}

void
ParkingLot::notifyAll()
{
    for (unsigned w = 0; w < numWorkers_; ++w) {
        auto &word = slots_[w].epoch;
        word.fetch_add(1, std::memory_order_seq_cst);
        futexOp(word, FUTEX_WAKE_PRIVATE, INT_MAX);
    }
}

} // namespace hermes::runtime

#else // !defined(__linux__)

namespace hermes::runtime {

ParkingLot::ParkingLot(unsigned num_workers)
    : numWorkers_(num_workers), slots_(new Slot[num_workers])
{}

void
ParkingLot::wait(unsigned w, Epoch expected)
{
    auto &word = slots_[w].epoch;
    std::unique_lock<std::mutex> lock(mutex_);
    // Bumps happen under mutex_, so the predicate re-check and the
    // block are atomic with respect to notifyWorker(): no lost
    // wakeup. One shared condvar serves every worker — a targeted
    // notify broadcasts and non-targets fail their predicate and
    // re-block; correct, merely less precise than the futex path.
    cv_.wait(lock, [&] {
        return word.load(std::memory_order_seq_cst) != expected;
    });
}

void
ParkingLot::notifyWorker(unsigned w)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slots_[w].epoch.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_.notify_all();
}

void
ParkingLot::notifyAll()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (unsigned w = 0; w < numWorkers_; ++w)
            slots_[w].epoch.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_.notify_all();
}

} // namespace hermes::runtime

#endif
