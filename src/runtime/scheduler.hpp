/**
 * @file
 * The work-stealing runtime (paper Algorithm 2.1 + Figure 5 hooks).
 *
 * A Runtime owns a fixed pool of worker threads, one deque per worker
 * (lazy task creation: the worker count is bound by CPU resources,
 * not program logic). Each worker runs the classic scheduler loop —
 * pop own deque, else hunt for a victim (same-domain victims first,
 * then every other worker once from a random position; see
 * steal_policy.hpp), else yield — and, once
 * `RuntimeConfig::parkThreshold` consecutive hunts come up empty,
 * parks: it publishes itself on the runtime's ParkingLot, re-checks
 * every work source, and blocks in the kernel until a producer wakes
 * it. A successful steal takes ceil(n/2) of the victim's tasks when
 * `StealPolicy::stealHalf` is on; the thief runs one, stocks its own
 * deque with the rest, and chains wakes for the surplus. Producers
 * notify the lot only on an empty→non-empty deque transition or an
 * external inject, preferring a same-domain parked worker, so the
 * spawn hot path touches no shared wake state while the pool is busy.
 * External threads enter through Runtime::submit (or run): tasks
 * land on the lock-free sharded inject queue (inject_queue.hpp) and
 * workers drain their own domain's shard first, so sustained outside
 * traffic serializes on no lock. Workers report the five HERMES
 * events to an optional
 * TempoController, which drives a DVFS backend; parking is reported
 * as a distinct fifth worker state (onPark/onWake) that never changes
 * frequency. This is the "mild change to the work stealing runtime"
 * the paper describes: the loop structure is untouched; only the
 * highlighted hook calls are added. The full state machine, the
 * lost-wakeup argument, and the inject path live in
 * docs/ARCHITECTURE.md; the stealing policy (victim order, bulk
 * grabs, wake selection) in docs/STEALING.md.
 */

#ifndef HERMES_RUNTIME_SCHEDULER_HPP
#define HERMES_RUNTIME_SCHEDULER_HPP

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/tempo_controller.hpp"
#include "dvfs/simulated.hpp"
#include "energy/power_model.hpp"
#include "platform/topology.hpp"
#include "runtime/deque.hpp"
#include "runtime/inject_queue.hpp"
#include "runtime/parking_lot.hpp"
#include "runtime/runtime_config.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"
#include "runtime/task_group.hpp"

namespace hermes::runtime {

class Runtime;

/**
 * Waitable handle for an externally submitted task
 * (Runtime::submit).
 *
 * Copies share one completion scope. wait() blocks an external
 * caller on the group's condition variable and lets a worker caller
 * help execute pending work, exactly like TaskGroup::wait — and like
 * it, rethrows the first exception the submitted task threw.
 * Releasing the last reference — destruction, reassignment, or
 * reset, from any thread — drains the group first, so dropping
 * handles never tears down a group with tasks still pending: the
 * drain lives in the shared state's deleter, which the reference
 * count runs exactly once. An exception recorded by the task is
 * swallowed on that release path (the deleter must not throw) but
 * not lost silently: each swallowed error increments
 * RuntimeStats::droppedHandleErrors, so a harness that drops
 * handles without waiting can still assert nothing failed. Call
 * wait() to observe the exception itself; after wait() has
 * rethrown it once, the error is consumed and later waits (and the
 * deleter) see a clean group. Handles must not outlive their
 * Runtime.
 */
class SubmitHandle
{
  public:
    /** Empty handle; wait() is a no-op until assigned. */
    SubmitHandle() = default;

    /** Block (or help, from a worker) until the submitted task and
     * everything it transitively spawned under awaited groups has
     * completed; rethrows the task's first exception. Idempotent. */
    void wait();

    /** Whether this handle is bound to a submission. */
    bool valid() const { return group_ != nullptr; }

  private:
    friend class Runtime;

    explicit SubmitHandle(std::shared_ptr<TaskGroup> group)
        : group_(std::move(group))
    {}

    std::shared_ptr<TaskGroup> group_;
};

/**
 * O(1) snapshot of the inject path's pressure signals.
 *
 * The feed for external admission control (the serving harness's
 * accept/shed decision, src/harness/serve/admission.hpp): `pending`
 * is the injected-but-undrained backlog — rings plus spillover,
 * bounded above by the publish-before-enqueue ordering documented in
 * docs/ARCHITECTURE.md — and the rest are the monotone inject
 * outcome counters also reported through RuntimeStats. Unlike
 * Runtime::stats(), reading a telemetry snapshot walks no per-worker
 * state, so producers can afford one per submission.
 */
struct InjectTelemetry
{
    size_t pending = 0;     ///< injected-but-undrained backlog depth
    uint64_t fastPath = 0;  ///< injects that landed in a ring shard
    uint64_t spill = 0;     ///< injects that overflowed to the spill deque
    uint64_t drainBack = 0; ///< spilled tasks drained back into rings
};

/**
 * Per-worker progress snapshot for stall detection.
 *
 * Feeds the serving harness's watchdog (docs/RESILIENCE.md): each
 * worker's `heartbeat` is a monotone counter bumped once per
 * scheduler iteration (and around every park), so a worker that is
 * neither parked nor advancing its heartbeat across consecutive
 * samples is wedged — blocked in a syscall, preempted hard, or stuck
 * inside one long task body. The reads are relaxed: the watchdog
 * compares snapshots taken tens of milliseconds apart, so a
 * one-iteration-stale value cannot produce a false stall.
 */
struct StallTelemetry
{
    struct WorkerBeat
    {
        uint64_t heartbeat = 0; ///< scheduler-iteration counter
        bool parked = false;    ///< blocked on the lot (not stalled)
    };
    std::vector<WorkerBeat> workers; ///< indexed by WorkerId
};

/** Multi-threaded work-stealing scheduler with tempo control. */
class Runtime
{
  public:
    /** Start `config.numWorkers` workers immediately. */
    explicit Runtime(RuntimeConfig config = {});

    /** Stops and joins all workers. Outstanding TaskGroups must have
     * been awaited. */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    unsigned numWorkers() const { return config_.numWorkers; }
    const RuntimeConfig &config() const { return config_; }

    /**
     * Convenience entry point: run `fn` as the root task and block
     * until it and everything it transitively spawned (under
     * TaskGroups it awaited) completes. Any callable converts to
     * TaskFn (task_fn.hpp).
     */
    void run(TaskFn fn);

    /**
     * External-submission API: enqueue `fn` without blocking and
     * return a waitable handle. Usable from any thread — a worker of
     * this runtime pushes to its own deque; any other thread goes
     * through the inject path (the lock-free sharded ring, or the
     * legacy mutex queue when `InjectPolicy::useLockFreeInject` is
     * off). The handle's wait() rethrows the task's first exception.
     */
    SubmitHandle submit(TaskFn fn);

    /** Tempo controller, or nullptr when tempo control is off. */
    core::TempoController *tempo() { return tempo_.get(); }
    const core::TempoController *tempo() const { return tempo_.get(); }

    /** The DVFS backend workers are scaling (owned, simulated). */
    dvfs::SimulatedDvfs &backend() { return *backend_; }
    const dvfs::SimulatedDvfs &backend() const { return *backend_; }

    /** Aggregated scheduler counters. */
    RuntimeStats stats() const;

    /** Cheap inject-pressure snapshot for admission control: the
     * current backlog plus the monotone fast-path/spill/drain-back
     * counters, read in O(1) (no per-worker walk — poll it per
     * submission). */
    InjectTelemetry injectTelemetry() const;

    /** Per-worker heartbeat/parked snapshot for external stall
     * watchdogs (the serve sampler thread). O(workers) relaxed
     * reads; poll it at sample rate, not per submission. */
    StallTelemetry stallTelemetry() const;

    /**
     * Compensating wakes: up to `count` notify attempts against
     * parked workers, no domain preference. For watchdogs that
     * detected a non-progressing worker while accepted work is still
     * outstanding — the published-but-undrained backlog the stalled
     * worker was expected to take is re-advertised to its parked
     * peers. Requires no new work-publish: the backlog was published
     * (seq_cst) by its producers, and a spuriously woken worker
     * re-checks every source and re-parks. @return workers targeted
     */
    unsigned wakeWorkers(unsigned count);

    /**
     * Chaos hook: make worker `w` sleep `nanos` at the top of its
     * next scheduler iteration (once; subsequent calls re-arm). The
     * nap happens outside any task body, mimicking a worker thread
     * losing the CPU — exactly what the watchdog + compensating
     * wakes must tolerate. Deterministic fault injection only; never
     * called on the healthy path.
     */
    void stallWorker(core::WorkerId w, uint64_t nanos);

    /** Task exceptions swallowed by the submit-handle release drain
     * (see SubmitHandle) — also in RuntimeStats::droppedHandleErrors. */
    uint64_t droppedHandleErrors() const;

    /** Counters of a single worker (`injected`, `localWakes`,
     * `remoteWakes`, and the inject-path counters are always 0
     * here: injection, wake selection, and inject drains are
     * runtime-wide events, not per-worker ones). */
    RuntimeStats workerStats(core::WorkerId w) const;

    /**
     * Instantaneous modeled package power in watts: busy worker
     * cores at active power for their domain frequency, hunting
     * workers at spin power, parked workers at clock-gated parked
     * power, unoccupied cores idle. Feed this to energy::LiveMeter
     * for the paper's 100 Hz measurement.
     */
    double packagePower(const energy::PowerModel &model) const;

    /** Number of workers currently parked (blocked on the lot). */
    unsigned parkedWorkers() const;

    /** Whether worker `w` is currently parked. */
    bool workerParked(core::WorkerId w) const;

    /** Planned host core of worker `w`. */
    platform::CoreId coreOf(core::WorkerId w) const;

    /** The worker → domain map steering victim and wake selection
     * (from `StealPolicy::domainMap` or derived from the platform
     * topology; single-domain on unknown hardware). */
    const platform::DomainMap &domainMap() const { return domainMap_; }

    /** The Runtime owning the calling worker thread (else nullptr). */
    static Runtime *current();

    /** Worker id of the calling thread within current() (else
     * invalidWorker). */
    static core::WorkerId currentWorker();

  private:
    friend class TaskGroup;

    struct alignas(64) WorkerState
    {
        WorkerState(size_t deque_capacity, DequePolicy deque_policy)
            : deque(deque_capacity, deque_policy)
        {}

        WsDeque deque;
        std::atomic<int> activeDepth{0};
        /** True between the parked-publish and the unpark; read by
         * packagePower() to charge this core parkedPower and by the
         * producers' wake-selection scan. */
        std::atomic<bool> parked{false};
        std::atomic<uint64_t> pushes{0};
        std::atomic<uint64_t> pops{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> failedSteals{0};
        std::atomic<uint64_t> executed{0};
        std::atomic<uint64_t> inlined{0};
        std::atomic<uint64_t> affinitySets{0};
        std::atomic<uint64_t> parks{0};
        std::atomic<uint64_t> wakes{0};
        std::atomic<uint64_t> spuriousWakes{0};
        std::atomic<uint64_t> parkedNanos{0};
        std::atomic<uint64_t> bulkSteals{0};
        std::atomic<uint64_t> stolenTasks{0};
        std::atomic<uint64_t> localHits{0};
        std::atomic<uint64_t> remoteHits{0};
        /** Tasks-per-steal histogram, bucketed as in RuntimeStats. */
        std::array<std::atomic<uint64_t>,
                   RuntimeStats::kStealSizeBuckets>
            stealSize{};
        /** steady_clock nanos at which the current block began, 0
         * when not blocked. Lets workerStats() credit an in-progress
         * block, so parked-time windows snapshot correctly. */
        std::atomic<uint64_t> parkStartNanos{0};
        /** Progress heartbeat: bumped (relaxed) once per scheduler
         * iteration and around every park, read by stallTelemetry().
         * Frozen heartbeat + parked=false across watchdog samples =
         * a wedged worker. */
        std::atomic<uint64_t> heartbeat{0};
        /** Chaos: pending stallWorker() nap in nanos, consumed at
         * the top of the next scheduler iteration (0 = none). */
        std::atomic<uint64_t> stallNanosRequested{0};
        /** Hunt scratch (owner-thread only): this hunt's victim
         * probe order and the bulk-steal landing buffer. */
        std::vector<core::WorkerId> huntOrder;
        std::vector<Task> stealBuf;
        /**
         * Owner-thread-only coarse clock for the per-push/per-pop
         * tempo timestamps: the cached wall-clock second, refreshed
         * every kClockRefreshEvents hot-path reads, resynced by
         * every slow-path fresh read (out-of-work, steal,
         * park/wake), and invalidated after every executed task —
         * so staleness is bounded by one task body or 32
         * back-to-back spawn events, never by 32 arbitrary-length
         * tasks. Per-worker timestamps are monotone (the cache only
         * moves forward); cross-worker skew is bounded by the same
         * one-body limit. The tempo controller consumes ms-scale
         * time; a clock syscall per push is measurable overhead on
         * the lock-free deque fast path.
         */
        double cachedNowSec = 0.0;
        unsigned clockEvents = 0;
        /** Adaptive-locality history (owner-thread only): windowed
         * local/remote steal hits and whether the previous hunt
         * failed (the escalation guard — see
         * StealPolicy::adaptiveLocality). */
        uint64_t recentLocalHits = 0;
        uint64_t recentRemoteHits = 0;
        bool lastHuntFailed = false;
        std::thread thread;
    };

    /** Hot-path reads between coarse-clock refreshes (see
     * WorkerState::cachedNowSec). */
    static constexpr unsigned kClockRefreshEvents = 32;

    /** Cached wall-clock for the hot-path tempo hooks (onPush,
     * onPopSuccess): refreshed every kClockRefreshEvents calls. */
    static double coarseNow(WorkerState &ws);

    /** Exact wall-clock for the slow-path tempo hooks; resyncs the
     * coarse cache so per-worker timestamps never run backwards. */
    static double freshNow(WorkerState &ws);

    /** Spawn into the group (worker push or external inject). */
    void spawn(TaskGroup &group, TaskFn fn);

    /** One scheduler iteration; true if a task was executed. */
    bool findAndExecute(core::WorkerId id);

    /** Attempt one steal (bulk when `StealPolicy::stealHalf`) from
     * `victim` for thief `id`; on success runs one stolen task,
     * stocks the thief's deque with the rest, and fires the steal
     * stats/tempo/wake bookkeeping. @return true if a task ran. */
    bool tryStealFrom(core::WorkerId id, core::WorkerId victim);

    /**
     * Wake one parked worker, preferring one whose domain is
     * `preferred` (pass platform::invalidDomain for no preference —
     * external producers). Callers must have published the new work
     * (seq_cst) before calling — the Dekker pairing with
     * parkUntilWork()'s publish-then-recheck.
     * @return true if a parked worker was targeted
     */
    bool notifyIfParked(platform::DomainId preferred);

    /** Up to `count` notifyIfParked(preferred) calls, stopping when
     * no parked worker is left — wake chaining for the surplus of a
     * bulk steal. */
    void notifyManyIfParked(uint64_t count,
                            platform::DomainId preferred);

    /**
     * Park worker `id`: publish it parked, re-check every work
     * source, and block on the lot unless the re-check found work.
     * @return true if the worker actually blocked (woke via notify
     *         or spuriously), false if the re-check aborted the park
     */
    bool parkUntilWork(core::WorkerId id);

    /** Seq_cst scan of every work source a parked worker could miss:
     * stop flag, inject queue, and all deques. */
    bool workPossiblyAvailable() const;

    /** Run one task with affinity/throttle/tempo bookkeeping. */
    void execute(core::WorkerId id, Task &task);

    void workerMain(core::WorkerId id);
    bool popInjected(core::WorkerId id, Task &out);
    void inject(Task task);

    /** Inject shard a consumer drains first: its own domain when
     * sharding per domain, else the single shard. */
    unsigned injectPreferredShard(core::WorkerId id) const;

    RuntimeConfig config_;
    std::vector<platform::CoreId> plannedCores_;
    /** Worker → domain map steering victim and wake selection. */
    platform::DomainMap domainMap_;
    /** Per-worker same-domain peers (DomainMap::peersOf, cached). */
    std::vector<std::vector<core::WorkerId>> localPeers_;
    /** Per-domain resident workers (DomainMap::workersIn, cached so
     * the wake-selection scan never allocates). */
    std::vector<std::vector<core::WorkerId>> domainWorkers_;
    std::unique_ptr<dvfs::SimulatedDvfs> backend_;
    std::unique_ptr<core::TempoController> tempo_;
    std::vector<std::unique_ptr<WorkerState>> workers_;

    /** The lock-free sharded inject path; null when
     * `InjectPolicy::useLockFreeInject` is off and the legacy
     * mutex-guarded deque below carries submissions instead. */
    std::unique_ptr<InjectQueue> injectQueue_;
    /** Legacy inject queue (the `useLockFreeInject = false` A/B
     * replay); unused while injectQueue_ is active. */
    std::mutex injectMutex_;
    std::deque<Task> injected_;
    /** Monotonic total of injected tasks (stats only). */
    std::atomic<uint64_t> injectedCount_{0};
    /**
     * Count of injected-but-undrained tasks; lets popInjected() skip
     * the queue entirely while it is empty (the common case). Updated
     * and read seq_cst where parking correctness depends on it: the
     * injector's increment is the work-publish of the Dekker
     * handshake with a parking thief's re-check (the hot-path poll in
     * popInjected() may still read it relaxed — a stale zero there
     * only delays an awake worker by one loop iteration). On the
     * lock-free path the increment happens *before* the ring
     * enqueue, so the counter bounds the queue contents from above
     * and a fruitless scan simply retries — see "The inject path" in
     * docs/ARCHITECTURE.md.
     */
    std::atomic<size_t> injectPending_{0};
    /** Inject-path outcome counters (runtime-wide: the producer is
     * external, so like `injected` they are not per-worker). */
    std::atomic<uint64_t> injectFastPath_{0};
    std::atomic<uint64_t> injectSpill_{0};
    std::atomic<uint64_t> injectShardHits_{0};
    /** Drain histogram: backlog depth observed by each successful
     * inject pop (RuntimeStats::injectDrain buckets). */
    std::array<std::atomic<uint64_t>,
               RuntimeStats::kInjectDrainBuckets>
        injectDrain_{};

    /** Per-worker wake words + kernel wait queues. */
    ParkingLot lot_;
    /** Number of workers currently published as parked. Producers
     * read it (seq_cst) after publishing work to decide whether a
     * notify is needed; thieves increment it (seq_cst) before their
     * pre-block work re-check. */
    std::atomic<unsigned> parkedCount_{0};
    /** Rotating start of the wake-selection scans, so a burst of
     * notifies spreads across distinct parked workers. */
    std::atomic<unsigned> wakeCursor_{0};
    /** Wake-selection outcome counters (runtime-wide: the producer
     * may be an external thread, so they are not per-worker). */
    std::atomic<uint64_t> localWakes_{0};
    std::atomic<uint64_t> remoteWakes_{0};
    /** Task exceptions swallowed by the submit-handle release drain
     * (runtime-wide: the drop may happen on any thread). */
    std::atomic<uint64_t> droppedHandleErrors_{0};

    std::atomic<bool> stop_{false};
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_SCHEDULER_HPP
