/**
 * @file
 * The work-stealing runtime (paper Algorithm 2.1 + Figure 5 hooks).
 *
 * A Runtime owns a fixed pool of worker threads, one deque per worker
 * (lazy task creation: the worker count is bound by CPU resources,
 * not program logic). Each worker runs the classic scheduler loop —
 * pop own deque, else hunt for a victim (every other worker probed
 * once per hunt, starting at a random position), else yield, with an
 * epoch-gated exponential backoff once hunts keep coming up empty —
 * and reports the five HERMES events to an optional TempoController,
 * which drives a DVFS backend. This is the "mild change to the work
 * stealing runtime" the paper describes: the loop structure is
 * untouched; only the highlighted hook calls are added.
 */

#ifndef HERMES_RUNTIME_SCHEDULER_HPP
#define HERMES_RUNTIME_SCHEDULER_HPP

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/tempo_controller.hpp"
#include "dvfs/simulated.hpp"
#include "energy/power_model.hpp"
#include "platform/topology.hpp"
#include "runtime/deque.hpp"
#include "runtime/runtime_config.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"
#include "runtime/task_group.hpp"

namespace hermes::runtime {

/** Multi-threaded work-stealing scheduler with tempo control. */
class Runtime
{
  public:
    /** Start `config.numWorkers` workers immediately. */
    explicit Runtime(RuntimeConfig config = {});

    /** Stops and joins all workers. Outstanding TaskGroups must have
     * been awaited. */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    unsigned numWorkers() const { return config_.numWorkers; }
    const RuntimeConfig &config() const { return config_; }

    /**
     * Convenience entry point: run `fn` as the root task and block
     * until it and everything it transitively spawned (under
     * TaskGroups it awaited) completes.
     */
    void run(std::function<void()> fn);

    /** Tempo controller, or nullptr when tempo control is off. */
    core::TempoController *tempo() { return tempo_.get(); }
    const core::TempoController *tempo() const { return tempo_.get(); }

    /** The DVFS backend workers are scaling (owned, simulated). */
    dvfs::SimulatedDvfs &backend() { return *backend_; }
    const dvfs::SimulatedDvfs &backend() const { return *backend_; }

    /** Aggregated scheduler counters. */
    RuntimeStats stats() const;

    /** Counters of a single worker (`injected` is always 0 here:
     * injection is a runtime-wide event, not a per-worker one). */
    RuntimeStats workerStats(core::WorkerId w) const;

    /**
     * Instantaneous modeled package power in watts: busy worker
     * cores at their domain frequency, everything else idle. Feed
     * this to energy::LiveMeter for the paper's 100 Hz measurement.
     */
    double packagePower(const energy::PowerModel &model) const;

    /** Planned host core of worker `w`. */
    platform::CoreId coreOf(core::WorkerId w) const;

    /** The Runtime owning the calling worker thread (else nullptr). */
    static Runtime *current();

    /** Worker id of the calling thread within current() (else
     * invalidWorker). */
    static core::WorkerId currentWorker();

  private:
    friend class TaskGroup;

    struct alignas(64) WorkerState
    {
        explicit WorkerState(size_t deque_capacity)
            : deque(deque_capacity)
        {}

        WsDeque deque;
        std::atomic<int> activeDepth{0};
        std::atomic<uint64_t> pushes{0};
        std::atomic<uint64_t> pops{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> failedSteals{0};
        std::atomic<uint64_t> executed{0};
        std::atomic<uint64_t> inlined{0};
        std::atomic<uint64_t> affinitySets{0};
        std::atomic<uint64_t> parks{0};
        std::thread thread;
    };

    /** Spawn into the group (worker push or external inject). */
    void spawn(TaskGroup &group, std::function<void()> fn);

    /** One scheduler iteration; true if a task was executed. */
    bool findAndExecute(core::WorkerId id);

    /** Signal idle workers that runnable work was published. */
    void publishWork();

    /** Run one task with affinity/throttle/tempo bookkeeping. */
    void execute(core::WorkerId id, Task &task);

    void workerMain(core::WorkerId id);
    bool popInjected(Task &out);
    void inject(Task task);

    RuntimeConfig config_;
    std::vector<platform::CoreId> plannedCores_;
    std::unique_ptr<dvfs::SimulatedDvfs> backend_;
    std::unique_ptr<core::TempoController> tempo_;
    std::vector<std::unique_ptr<WorkerState>> workers_;

    std::mutex injectMutex_;
    std::deque<Task> injected_;
    /** Monotonic total of injected tasks (stats only). */
    std::atomic<uint64_t> injectedCount_{0};
    /** Current inject-queue depth; lets popInjected() skip the mutex
     * entirely while the queue is empty (the common case). */
    std::atomic<size_t> injectPending_{0};

    /**
     * Pending-work epoch, bumped (relaxed) on every deque push and
     * every inject. Idle workers snapshot it before backing off and
     * reset their backoff when it moves, so a thief that spun down
     * during a quiet phase re-enters the steal loop as soon as any
     * worker publishes work instead of sleeping through the workload.
     */
    std::atomic<uint64_t> workEpoch_{0};

    std::atomic<bool> stop_{false};
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_SCHEDULER_HPP
