/**
 * @file
 * The work-stealing runtime (paper Algorithm 2.1 + Figure 5 hooks).
 *
 * A Runtime owns a fixed pool of worker threads, one deque per worker
 * (lazy task creation: the worker count is bound by CPU resources,
 * not program logic). Each worker runs the classic scheduler loop —
 * pop own deque, else hunt for a victim (every other worker probed
 * once per hunt, starting at a random position), else yield — and,
 * once `RuntimeConfig::parkThreshold` consecutive hunts come up
 * empty, parks: it publishes itself on the runtime's ParkingLot,
 * re-checks every work source, and blocks in the kernel until a
 * producer wakes it. Producers notify the lot only on an
 * empty→non-empty deque transition or an external inject, so the
 * spawn hot path touches no shared wake state while the pool is busy.
 * Workers report the five HERMES events to an optional
 * TempoController, which drives a DVFS backend; parking is reported
 * as a distinct fifth worker state (onPark/onWake) that never changes
 * frequency. This is the "mild change to the work stealing runtime"
 * the paper describes: the loop structure is untouched; only the
 * highlighted hook calls are added. The full state machine and the
 * lost-wakeup argument live in docs/ARCHITECTURE.md.
 */

#ifndef HERMES_RUNTIME_SCHEDULER_HPP
#define HERMES_RUNTIME_SCHEDULER_HPP

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/tempo_controller.hpp"
#include "dvfs/simulated.hpp"
#include "energy/power_model.hpp"
#include "platform/topology.hpp"
#include "runtime/deque.hpp"
#include "runtime/parking_lot.hpp"
#include "runtime/runtime_config.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"
#include "runtime/task_group.hpp"

namespace hermes::runtime {

/** Multi-threaded work-stealing scheduler with tempo control. */
class Runtime
{
  public:
    /** Start `config.numWorkers` workers immediately. */
    explicit Runtime(RuntimeConfig config = {});

    /** Stops and joins all workers. Outstanding TaskGroups must have
     * been awaited. */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    unsigned numWorkers() const { return config_.numWorkers; }
    const RuntimeConfig &config() const { return config_; }

    /**
     * Convenience entry point: run `fn` as the root task and block
     * until it and everything it transitively spawned (under
     * TaskGroups it awaited) completes.
     */
    void run(std::function<void()> fn);

    /** Tempo controller, or nullptr when tempo control is off. */
    core::TempoController *tempo() { return tempo_.get(); }
    const core::TempoController *tempo() const { return tempo_.get(); }

    /** The DVFS backend workers are scaling (owned, simulated). */
    dvfs::SimulatedDvfs &backend() { return *backend_; }
    const dvfs::SimulatedDvfs &backend() const { return *backend_; }

    /** Aggregated scheduler counters. */
    RuntimeStats stats() const;

    /** Counters of a single worker (`injected` is always 0 here:
     * injection is a runtime-wide event, not a per-worker one). */
    RuntimeStats workerStats(core::WorkerId w) const;

    /**
     * Instantaneous modeled package power in watts: busy worker
     * cores at active power for their domain frequency, hunting
     * workers at spin power, parked workers at clock-gated parked
     * power, unoccupied cores idle. Feed this to energy::LiveMeter
     * for the paper's 100 Hz measurement.
     */
    double packagePower(const energy::PowerModel &model) const;

    /** Number of workers currently parked (blocked on the lot). */
    unsigned parkedWorkers() const;

    /** Whether worker `w` is currently parked. */
    bool workerParked(core::WorkerId w) const;

    /** Planned host core of worker `w`. */
    platform::CoreId coreOf(core::WorkerId w) const;

    /** The Runtime owning the calling worker thread (else nullptr). */
    static Runtime *current();

    /** Worker id of the calling thread within current() (else
     * invalidWorker). */
    static core::WorkerId currentWorker();

  private:
    friend class TaskGroup;

    struct alignas(64) WorkerState
    {
        explicit WorkerState(size_t deque_capacity)
            : deque(deque_capacity)
        {}

        WsDeque deque;
        std::atomic<int> activeDepth{0};
        /** True between the parked-publish and the unpark; read by
         * packagePower() to charge this core parkedPower. */
        std::atomic<bool> parked{false};
        std::atomic<uint64_t> pushes{0};
        std::atomic<uint64_t> pops{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> failedSteals{0};
        std::atomic<uint64_t> executed{0};
        std::atomic<uint64_t> inlined{0};
        std::atomic<uint64_t> affinitySets{0};
        std::atomic<uint64_t> parks{0};
        std::atomic<uint64_t> wakes{0};
        std::atomic<uint64_t> spuriousWakes{0};
        std::atomic<uint64_t> parkedNanos{0};
        /** steady_clock nanos at which the current block began, 0
         * when not blocked. Lets workerStats() credit an in-progress
         * block, so parked-time windows snapshot correctly. */
        std::atomic<uint64_t> parkStartNanos{0};
        std::thread thread;
    };

    /** Spawn into the group (worker push or external inject). */
    void spawn(TaskGroup &group, std::function<void()> fn);

    /** One scheduler iteration; true if a task was executed. */
    bool findAndExecute(core::WorkerId id);

    /** Wake one parked worker if any worker is parked. Callers must
     * have published the new work (seq_cst) before calling — the
     * Dekker pairing with parkUntilWork()'s publish-then-recheck. */
    void notifyIfParked();

    /**
     * Park worker `id`: publish it parked, re-check every work
     * source, and block on the lot unless the re-check found work.
     * @return true if the worker actually blocked (woke via notify
     *         or spuriously), false if the re-check aborted the park
     */
    bool parkUntilWork(core::WorkerId id);

    /** Seq_cst scan of every work source a parked worker could miss:
     * stop flag, inject queue, and all deques. */
    bool workPossiblyAvailable() const;

    /** Run one task with affinity/throttle/tempo bookkeeping. */
    void execute(core::WorkerId id, Task &task);

    void workerMain(core::WorkerId id);
    bool popInjected(Task &out);
    void inject(Task task);

    RuntimeConfig config_;
    std::vector<platform::CoreId> plannedCores_;
    std::unique_ptr<dvfs::SimulatedDvfs> backend_;
    std::unique_ptr<core::TempoController> tempo_;
    std::vector<std::unique_ptr<WorkerState>> workers_;

    std::mutex injectMutex_;
    std::deque<Task> injected_;
    /** Monotonic total of injected tasks (stats only). */
    std::atomic<uint64_t> injectedCount_{0};
    /**
     * Current inject-queue depth; lets popInjected() skip the mutex
     * entirely while the queue is empty (the common case). Updated
     * and read seq_cst where parking correctness depends on it: the
     * injector's increment is the work-publish of the Dekker
     * handshake with a parking thief's re-check (the hot-path poll in
     * popInjected() may still read it relaxed — a stale zero there
     * only delays an awake worker by one loop iteration).
     */
    std::atomic<size_t> injectPending_{0};

    /** Wake-epoch + kernel wait queue for parked workers. */
    ParkingLot lot_;
    /** Number of workers currently published as parked. Producers
     * read it (seq_cst) after publishing work to decide whether a
     * notify is needed; thieves increment it (seq_cst) before their
     * pre-block work re-check. */
    std::atomic<unsigned> parkedCount_{0};

    std::atomic<bool> stop_{false};
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_SCHEDULER_HPP
