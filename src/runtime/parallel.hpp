/**
 * @file
 * Structured parallel algorithms over the spawn/sync API.
 *
 * All three follow the work-first discipline: at each split the
 * *continuation-like* half (the right/later range) is spawned onto
 * the deque while the worker dives into the immediate half, so the
 * deque head always holds the least immediate work — the property the
 * workpath-sensitive tempo control relies on.
 */

#ifndef HERMES_RUNTIME_PARALLEL_HPP
#define HERMES_RUNTIME_PARALLEL_HPP

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>

#include "runtime/scheduler.hpp"
#include "runtime/task_group.hpp"

namespace hermes::runtime {

/**
 * Apply `fn(i)` for every i in [lo, hi), splitting recursively until
 * ranges shrink to `grain` indices.
 */
template <typename Fn>
void
parallelFor(Runtime &rt, size_t lo, size_t hi, size_t grain,
            const Fn &fn)
{
    if (hi <= lo)
        return;
    grain = std::max<size_t>(1, grain);

    TaskGroup group(rt);
    // Self-splitting body: spawns the later half, walks into the
    // earlier half. &body stays valid: every task finishes before
    // group.wait() returns.
    std::function<void(size_t, size_t)> body =
        [&](size_t l, size_t h) {
            while (h - l > grain) {
                const size_t mid = l + (h - l) / 2;
                auto half = [&body, mid, h] { body(mid, h); };
                static_assert(
                    TaskFn::fitsInline<decltype(half)>,
                    "parallelFor's spawn lambda must stay "
                    "allocation-free on the deque hot path");
                group.run(std::move(half));
                h = mid;
            }
            for (size_t i = l; i < h; ++i)
                fn(i);
        };
    body(lo, hi);
    group.wait();
}

/** Run two callables potentially in parallel; returns when both
 * finish. The first is the immediate one (executed by the caller). */
template <typename FnA, typename FnB>
void
parallelInvoke(Runtime &rt, FnA &&a, FnB &&b)
{
    TaskGroup group(rt);
    group.run(std::forward<FnB>(b));
    std::forward<FnA>(a)();
    group.wait();
}

/** Three-way parallelInvoke. */
template <typename FnA, typename FnB, typename FnC>
void
parallelInvoke(Runtime &rt, FnA &&a, FnB &&b, FnC &&c)
{
    TaskGroup group(rt);
    group.run(std::forward<FnC>(c));
    group.run(std::forward<FnB>(b));
    std::forward<FnA>(a)();
    group.wait();
}

/**
 * Divide-and-conquer reduction: `leaf(l, h)` computes a value for a
 * range no larger than `grain`; `combine(a, b)` merges adjacent
 * results (must be associative).
 */
template <typename T, typename Leaf, typename Combine>
T
parallelReduce(Runtime &rt, size_t lo, size_t hi, size_t grain,
               const Leaf &leaf, const Combine &combine)
{
    grain = std::max<size_t>(1, grain);
    if (hi <= lo || hi - lo <= grain)
        return leaf(lo, hi);

    const size_t mid = lo + (hi - lo) / 2;
    T right_value{};
    TaskGroup group(rt);
    auto right = [&] {
        right_value =
            parallelReduce<T>(rt, mid, hi, grain, leaf, combine);
    };
    static_assert(TaskFn::fitsInline<decltype(right)>,
                  "parallelReduce's spawn lambda must stay "
                  "allocation-free on the deque hot path");
    group.run(std::move(right));
    T left_value = parallelReduce<T>(rt, lo, mid, grain, leaf,
                                     combine);
    group.wait();
    return combine(std::move(left_value), std::move(right_value));
}

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_PARALLEL_HPP
