#include "runtime/steal_policy.hpp"

namespace hermes::runtime {

bool
includeGlobalPass(const StealPolicy &policy,
                  uint64_t recent_local_hits,
                  uint64_t recent_remote_hits, bool last_hunt_failed)
{
    if (!policy.adaptiveLocality)
        return true;
    // Liveness guard: a hunt that found nothing (even one that
    // probed only local peers) escalates the next hunt to the global
    // ring, so remote-only work is reachable within two hunts.
    if (last_hunt_failed)
        return true;
    const uint64_t total = recent_local_hits + recent_remote_hits;
    if (total == 0)
        return true; // no history yet: stay on the safe default
    return static_cast<double>(recent_local_hits)
        / static_cast<double>(total)
        < policy.adaptiveLocalityThreshold;
}

void
appendVictimOrder(util::Rng &rng, core::WorkerId self,
                  unsigned num_workers,
                  const std::vector<core::WorkerId> &local_peers,
                  unsigned locality_rounds,
                  std::vector<core::WorkerId> &out,
                  bool include_global)
{
    out.clear();
    if (num_workers < 2)
        return;

    // Locality passes: probe the same-domain neighbourhood first.
    // Skipped when it would equal the global ring (every other
    // worker is local) so the single-domain default stays on the
    // legacy RNG stream — see the header contract.
    const size_t peers = local_peers.size();
    if (peers > 0 && peers < num_workers - 1) {
        for (unsigned round = 0; round < locality_rounds; ++round) {
            const auto start = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(peers) - 1));
            for (size_t k = 0; k < peers; ++k)
                out.push_back(local_peers[(start + k) % peers]);
        }
    }

    // Global fallback ring: every worker except self once, from a
    // random start. The draw happens *after* the locality passes so
    // locality_rounds == 0 replays the legacy victim order exactly.
    // An adaptive local-only hunt skips the ring but still consumes
    // the ring's draw (draw-and-discard): every hunt advances the
    // per-thief stream by the same amount whatever includeGlobalPass
    // decided, so adaptive runs stay bitwise-replayable against
    // fixed-rounds policies under a shared seed.
    const auto start = static_cast<unsigned>(rng.uniformInt(
        0, static_cast<int64_t>(num_workers) - 1));
    if (!include_global)
        return;
    for (unsigned k = 0; k < num_workers; ++k) {
        const auto victim =
            static_cast<core::WorkerId>((start + k) % num_workers);
        if (victim != self)
            out.push_back(victim);
    }
}

} // namespace hermes::runtime
