#include "runtime/steal_policy.hpp"

namespace hermes::runtime {

void
appendVictimOrder(util::Rng &rng, core::WorkerId self,
                  unsigned num_workers,
                  const std::vector<core::WorkerId> &local_peers,
                  unsigned locality_rounds,
                  std::vector<core::WorkerId> &out)
{
    out.clear();
    if (num_workers < 2)
        return;

    // Locality passes: probe the same-domain neighbourhood first.
    // Skipped when it would equal the global ring (every other
    // worker is local) so the single-domain default stays on the
    // legacy RNG stream — see the header contract.
    const size_t peers = local_peers.size();
    if (peers > 0 && peers < num_workers - 1) {
        for (unsigned round = 0; round < locality_rounds; ++round) {
            const auto start = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(peers) - 1));
            for (size_t k = 0; k < peers; ++k)
                out.push_back(local_peers[(start + k) % peers]);
        }
    }

    // Global fallback ring: every worker except self once, from a
    // random start. The draw happens *after* the locality passes so
    // locality_rounds == 0 replays the legacy victim order exactly.
    const auto start = static_cast<unsigned>(rng.uniformInt(
        0, static_cast<int64_t>(num_workers) - 1));
    for (unsigned k = 0; k < num_workers; ++k) {
        const auto victim =
            static_cast<core::WorkerId>((start + k) % num_workers);
        if (victim != self)
            out.push_back(victim);
    }
}

} // namespace hermes::runtime
