/**
 * @file
 * Threaded-runtime configuration.
 */

#ifndef HERMES_RUNTIME_RUNTIME_CONFIG_HPP
#define HERMES_RUNTIME_RUNTIME_CONFIG_HPP

#include <cstdint>
#include <thread>

#include "core/policy.hpp"
#include "platform/system_profile.hpp"
#include "runtime/deque.hpp"
#include "runtime/inject_queue.hpp"
#include "runtime/steal_policy.hpp"

namespace hermes::runtime {

/**
 * Worker-core mapping strategy (paper Section 3.4).
 *
 * - None: no pinning; suitable for containers that forbid affinity.
 * - Static: each worker is pinned to its planned core once at start.
 * - Dynamic: each worker re-pins around every WORK invocation (the
 *   paper's migration-tolerant mode; the extra affinity syscalls are
 *   its measured overhead).
 */
enum class SchedulingMode { None, Static, Dynamic };

/**
 * How frequency-dependent slowdown manifests on hardware that cannot
 * actually change frequency (this container): PostTaskSpin stretches
 * each task by f_max/f - 1 of its measured duration after it
 * completes, emulating the tempo at task granularity — consistent
 * with the paper's choice to never adjust tempo mid-task.
 */
enum class ThrottleMode { None, PostTaskSpin };

/** Construction-time options for Runtime. */
struct RuntimeConfig
{
    /** Worker thread count (>= 1). */
    unsigned numWorkers = defaultWorkers();

    /** Platform description used for core planning, clock domains,
     * and the power model. */
    platform::SystemProfile profile = platform::hostSystem();

    SchedulingMode scheduling = SchedulingMode::None;
    ThrottleMode throttle = ThrottleMode::None;

    /** Wire a TempoController into the scheduler hooks. */
    bool enableTempo = false;

    /** Tempo-control settings (policy, ladder, K, window). */
    core::TempoConfig tempo{};

    /** Victim-selection RNG seed. */
    uint64_t seed = 0x9e3779b97f4a7c15ULL;

    /** Stealing policy: bulk steal-half, locality-aware victim
     * ordering, and the worker → domain map override
     * (docs/STEALING.md). */
    StealPolicy stealPolicy{};

    /** External-submission policy: the lock-free sharded MPMC
     * inject path vs the legacy mutex queue, shard-per-domain
     * layout, and per-shard ring capacity (docs/ARCHITECTURE.md,
     * "The inject path"). */
    InjectPolicy inject{};

    /**
     * Event-driven idle parking: after `parkThreshold` consecutive
     * empty hunts a worker blocks on the runtime's ParkingLot until a
     * producer publishes work (empty→non-empty push or inject).
     * Disabling it degrades the idle path to a pure yield loop —
     * useful for measuring what parking saves, but it burns spin
     * power forever and can starve thieves on a single-CPU host.
     */
    bool enableParking = true;

    /** Consecutive empty hunts (each probing every victim once)
     * before an idle worker parks (>= 1). Small values park eagerly
     * and save the most energy; larger values absorb short work gaps
     * without the wake syscall. */
    unsigned parkThreshold = 4;

    /** Per-worker deque ring capacity (rounded up to 2^k). */
    size_t dequeCapacity = 1 << 13;

    /** Deque protocol: the lock-free Chase-Lev deque (default) or
     * the legacy mutex-guarded THE deque (`DequeImpl::The`) for A/B
     * replay (docs/STEALING.md, "The deque"). */
    DequePolicy deque{};

    static unsigned
    defaultWorkers()
    {
        const unsigned hc = std::thread::hardware_concurrency();
        return hc ? hc : 1;
    }
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_RUNTIME_CONFIG_HPP
