#include "runtime/inject_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace hermes::runtime {

InjectRing::InjectRing(size_t capacity)
{
    const size_t cap = std::bit_ceil(std::max<size_t>(2, capacity));
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i)
        cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool
InjectRing::tryPush(Task &&t)
{
    Cell *cell;
    size_t pos = enqueuePos_.load(std::memory_order_relaxed);
    for (;;) {
        cell = &cells_[pos & mask_];
        // Acquire pairs with the consumer's freeing store: once the
        // sequence says the cell is ours, the previous lap's task has
        // fully moved out.
        const size_t seq = cell->seq.load(std::memory_order_acquire);
        const auto dif = static_cast<intptr_t>(seq)
            - static_cast<intptr_t>(pos);
        if (dif == 0) {
            // Cell free at our position: claim it. The weak CAS may
            // fail spuriously or to a racing producer; either way
            // `pos` is reloaded and we retry.
            if (enqueuePos_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed))
                break;
        } else if (dif < 0) {
            // Cell still holds last lap's task: the ring is full
            // (or a consumer is mid-pop, which full-capacity-wise is
            // the same answer right now).
            return false;
        } else {
            // Another producer already claimed this position.
            pos = enqueuePos_.load(std::memory_order_relaxed);
        }
    }
    cell->task = std::move(t);
    // Publish: consumers' acquire load of seq sees the task store.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
}

bool
InjectRing::tryPop(Task &out)
{
    Cell *cell;
    size_t pos = dequeuePos_.load(std::memory_order_relaxed);
    for (;;) {
        cell = &cells_[pos & mask_];
        const size_t seq = cell->seq.load(std::memory_order_acquire);
        const auto dif = static_cast<intptr_t>(seq)
            - static_cast<intptr_t>(pos + 1);
        if (dif == 0) {
            if (dequeuePos_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed))
                break;
        } else if (dif < 0) {
            // Cell not yet published at our position: empty (or the
            // producer that claimed it has not finished its store —
            // callers treat both as "nothing claimable now").
            return false;
        } else {
            pos = dequeuePos_.load(std::memory_order_relaxed);
        }
    }
    out = std::move(cell->task);
    // Drop the moved-from closure now so captured resources do not
    // linger a full lap in the ring.
    cell->task = Task{};
    // Free the cell for the producer one lap ahead.
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
}

InjectQueue::InjectQueue(const InjectPolicy &policy,
                         unsigned num_domains)
    : drainBackBatch_(policy.drainBackBatch)
{
    const unsigned shards =
        policy.shardPerDomain ? std::max(1u, num_domains) : 1u;
    rings_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        rings_.push_back(
            std::make_unique<InjectRing>(policy.shardCapacity));
}

InjectQueue::PushPath
InjectQueue::push(Task &&t, unsigned shard_hint)
{
    auto &ring = *rings_[shard_hint % rings_.size()];
    if (ring.tryPush(std::move(t)))
        return PushPath::Ring;
    // Shard full: fall back to the overflow deque rather than block
    // or drop. The ring rejection left `t` intact.
    {
        std::lock_guard<std::mutex> lock(spillMutex_);
        spill_.push_back(std::move(t));
        spillSize_.fetch_add(1, std::memory_order_relaxed);
    }
    return PushPath::Spill;
}

InjectQueue::PopSource
InjectQueue::tryPop(Task &out, unsigned preferred_shard)
{
    const unsigned n = numShards();
    const unsigned start = preferred_shard % n;
    for (unsigned k = 0; k < n; ++k) {
        InjectRing &ring = *rings_[(start + k) % n];
        if (ring.tryPop(out)) {
            // The pop freed at least one slot: opportunistically
            // pull spilled tasks back into this ring so sustained
            // overflow regains rough FIFO (ROADMAP drain-back item)
            // instead of stranding the spill behind a
            // constantly-refilling ring.
            if (drainBackBatch_ != 0
                && spillSize_.load(std::memory_order_acquire) != 0)
                drainBackInto(ring);
            return k == 0 ? PopSource::PreferredShard
                          : PopSource::OtherShard;
        }
    }
    // Ring-first drain keeps delivery roughly FIFO: a spilled task
    // is always newer than the ring tasks that filled its shard.
    // Under sustained overflow the spill drains whenever a scan
    // finds the rings momentarily empty — bounded unfairness, never
    // starvation of the queue as a whole.
    if (spillSize_.load(std::memory_order_acquire) != 0) {
        std::lock_guard<std::mutex> lock(spillMutex_);
        if (!spill_.empty()) {
            out = std::move(spill_.front());
            spill_.pop_front();
            spillSize_.fetch_sub(1, std::memory_order_relaxed);
            return PopSource::Spill;
        }
    }
    return PopSource::None;
}

void
InjectQueue::drainBackInto(InjectRing &ring)
{
    std::lock_guard<std::mutex> lock(spillMutex_);
    unsigned moved = 0;
    while (moved < drainBackBatch_ && !spill_.empty()) {
        // tryPush leaves the task intact when the ring refilled
        // (racing producers), so nothing is lost — stop and leave
        // the remainder spilled.
        if (!ring.tryPush(std::move(spill_.front())))
            break;
        spill_.pop_front();
        spillSize_.fetch_sub(1, std::memory_order_relaxed);
        ++moved;
    }
    if (moved != 0)
        drainBacks_.fetch_add(moved, std::memory_order_relaxed);
}

unsigned
producerShardHint()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned hint =
        next.fetch_add(1, std::memory_order_relaxed);
    return hint;
}

} // namespace hermes::runtime
