/**
 * @file
 * The unit of scheduled work.
 *
 * In compiler-supported Cilk a deque item is a continuation (program
 * counter + frame); a library runtime cannot capture continuations, so
 * a Task is a closure plus the TaskGroup it reports completion to
 * (child-stealing; see DESIGN.md §2 for why this preserves the
 * thief-victim structure HERMES consumes).
 */

#ifndef HERMES_RUNTIME_TASK_HPP
#define HERMES_RUNTIME_TASK_HPP

#include <functional>
#include <utility>

namespace hermes::runtime {

class TaskGroup;

/** A schedulable closure bound to its completion group. */
struct Task
{
    std::function<void()> body;  ///< work to execute
    TaskGroup *group = nullptr;  ///< notified when body returns/throws

    Task() = default;

    Task(std::function<void()> b, TaskGroup *g)
        : body(std::move(b)), group(g)
    {}

    /** Whether this slot holds runnable work. */
    explicit operator bool() const { return static_cast<bool>(body); }
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_TASK_HPP
