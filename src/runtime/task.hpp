/**
 * @file
 * The unit of scheduled work.
 *
 * In compiler-supported Cilk a deque item is a continuation (program
 * counter + frame); a library runtime cannot capture continuations, so
 * a Task is a closure plus the TaskGroup it reports completion to
 * (child-stealing; see docs/ARCHITECTURE.md for why this preserves
 * the thief-victim structure HERMES consumes).
 *
 * The closure is a TaskFn (task_fn.hpp): allocation-free for the
 * small trivially-copyable lambdas every spawn site produces, boxed
 * otherwise, and trivially relocatable either way. Task::Repr is the
 * flat trivially-copyable form the lock-free deque stores in its
 * ring — release()/adopt() transfer ownership of the closure as raw
 * bytes without running any constructor or destructor in between.
 */

#ifndef HERMES_RUNTIME_TASK_HPP
#define HERMES_RUNTIME_TASK_HPP

#include <cstdint>
#include <type_traits>
#include <utility>

#include "runtime/task_fn.hpp"

namespace hermes::runtime {

class TaskGroup;

/** A schedulable closure bound to its completion group. */
struct Task
{
    TaskFn body;                 ///< work to execute
    TaskGroup *group = nullptr;  ///< notified when body returns/throws

    Task() = default;

    Task(TaskFn b, TaskGroup *g) : body(std::move(b)), group(g) {}

    /** Whether this slot holds runnable work. */
    explicit operator bool() const { return static_cast<bool>(body); }

    /** Trivially-copyable relocation form (see TaskFn::Repr): the
     * deque ring stores Tasks as these, copied word-by-word with
     * relaxed atomics. */
    struct Repr
    {
        TaskFn::Repr fn;
        TaskGroup *group;
    };

    /** Relocate out: this Task becomes empty; the returned bytes own
     * the closure and must be adopted exactly once. */
    Repr
    release() noexcept
    {
        return Repr{body.release(), std::exchange(group, nullptr)};
    }

    /** Relocate in: take ownership of a released representation. */
    static Task
    adopt(const Repr &r) noexcept
    {
        return Task(TaskFn::adopt(r.fn), r.group);
    }
};

static_assert(std::is_trivially_copyable_v<Task::Repr>,
              "the deque ring copies Task::Repr as raw words");
static_assert(sizeof(Task::Repr) % sizeof(uint64_t) == 0,
              "Task::Repr must tile the ring's 64-bit word slots");

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_TASK_HPP
