/**
 * @file
 * Structured spawn/sync.
 *
 * A TaskGroup plays the role of a Cilk frame's sync scope: spawned
 * tasks report completion to their group, and wait() returns when all
 * of them (including transitively inlined ones) have finished. A
 * worker blocked in wait() does not idle — it keeps scheduling other
 * tasks (its own deque first, then stealing), exactly like a Cilk
 * worker at a sync point.
 */

#ifndef HERMES_RUNTIME_TASK_GROUP_HPP
#define HERMES_RUNTIME_TASK_GROUP_HPP

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "runtime/task_fn.hpp"

namespace hermes::runtime {

class Runtime;

/** Completion scope for a set of spawned tasks. */
class TaskGroup
{
  public:
    /** Bind to the runtime that will execute the tasks. */
    explicit TaskGroup(Runtime &rt) : rt_(rt) {}

    /** All tasks must be awaited before destruction. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /**
     * Spawn `fn` into this group. From a worker thread the task is
     * pushed onto that worker's deque (or run inline if the deque is
     * full); from any other thread it is injected into the runtime.
     * Any callable converts to TaskFn; small trivially-copyable
     * lambdas — every spawn site in parallel.hpp — spawn without
     * allocating (task_fn.hpp).
     */
    void run(TaskFn fn);

    /**
     * Wait until every spawned task has completed. Worker threads
     * help execute pending work while waiting; external threads
     * block. Rethrows the first exception thrown by any task in this
     * group.
     */
    void wait();

    /** Tasks spawned but not yet completed. */
    long pending() const
    {
        return pending_.load(std::memory_order_acquire);
    }

  private:
    friend class Runtime;

    /** Register one more task (before it becomes runnable). */
    void beginTask()
    {
        pending_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Mark one task complete; wakes external waiters at zero. */
    void finish();

    /** Record the first exception observed in this group. */
    void recordException(std::exception_ptr error);

    /** Rethrow a recorded exception, if any. */
    void rethrowIfError();

    Runtime &rt_;
    std::atomic<long> pending_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    std::exception_ptr error_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_TASK_GROUP_HPP
