#include "runtime/scheduler.hpp"

#include <chrono>

#include "platform/affinity.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hermes::runtime {

namespace {

thread_local Runtime *tls_runtime = nullptr;
thread_local core::WorkerId tls_worker = core::invalidWorker;

uint64_t
steadyNowNanos()
{
    return util::nowNanos();
}

} // namespace

Runtime *
Runtime::current()
{
    return tls_runtime;
}

core::WorkerId
Runtime::currentWorker()
{
    return tls_worker;
}

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)), lot_(config_.numWorkers)
{
    HERMES_ASSERT(config_.numWorkers >= 1, "need at least one worker");

    // Plan worker -> core placement: one worker per clock domain
    // while domains last (the paper's interference-free placement),
    // then wrap around the cores.
    const auto &topo = config_.profile.topology;
    const unsigned domain_workers =
        std::min(config_.numWorkers, topo.numDomains());
    plannedCores_ = topo.distinctDomainCores(domain_workers);
    for (unsigned w = domain_workers; w < config_.numWorkers; ++w)
        plannedCores_.push_back(w % topo.numCores());

    // Resolve the worker → domain map the stealing policy follows:
    // an explicit override (tests/sim) wins; otherwise derive it from
    // the planned placement, which collapses to one domain on
    // hardware the profile cannot describe.
    if (config_.stealPolicy.domainMap.has_value()) {
        domainMap_ = *config_.stealPolicy.domainMap;
        if (domainMap_.numWorkers() != config_.numWorkers) {
            util::fatal(
                "StealPolicy::domainMap covers "
                + std::to_string(domainMap_.numWorkers())
                + " workers but the runtime has "
                + std::to_string(config_.numWorkers));
        }
    } else {
        domainMap_ = platform::DomainMap::fromTopology(topo,
                                                       plannedCores_);
    }
    localPeers_.reserve(config_.numWorkers);
    for (unsigned w = 0; w < config_.numWorkers; ++w)
        localPeers_.push_back(domainMap_.peersOf(w));
    domainWorkers_.reserve(domainMap_.numDomains());
    for (platform::DomainId d = 0; d < domainMap_.numDomains(); ++d) {
        const auto residents = domainMap_.workersIn(d);
        domainWorkers_.emplace_back(residents.begin(),
                                    residents.end());
    }

    // The lock-free inject path shards per resolved domain; the
    // legacy mutex deque needs no setup, so `useLockFreeInject =
    // false` replays it simply by leaving this null.
    if (config_.inject.useLockFreeInject) {
        injectQueue_ = std::make_unique<InjectQueue>(
            config_.inject, domainMap_.numDomains());
    }

    backend_ = std::make_unique<dvfs::SimulatedDvfs>(
        topo.numDomains(), config_.profile.ladder,
        config_.profile.dvfsLatencySec);

    if (config_.enableTempo) {
        // Resolve the usable ladder: default to the paper's pair for
        // this profile, and insist every rung exists in hardware.
        if (!config_.tempo.ladder.has_value()) {
            config_.tempo.ladder =
                platform::defaultTempoLadder(config_.profile);
        }
        for (auto f : config_.tempo.ladder->rungs()) {
            if (!config_.profile.ladder.contains(f)) {
                util::fatal("tempo ladder rung " + std::to_string(f)
                            + " MHz is not supported by profile "
                            + config_.profile.name + " ("
                            + config_.profile.ladder.describe()
                            + ")");
            }
        }
        tempo_ = std::make_unique<core::TempoController>(
            config_.tempo, *backend_, config_.numWorkers,
            [this](core::WorkerId w) {
                return config_.profile.topology.domainOf(coreOf(w));
            });
        tempo_->reset(util::nowSeconds());
    }

    workers_.reserve(config_.numWorkers);
    for (unsigned w = 0; w < config_.numWorkers; ++w) {
        workers_.push_back(std::make_unique<WorkerState>(
            config_.dequeCapacity, config_.deque));
    }
    // Threads start only after every member is in place.
    for (unsigned w = 0; w < config_.numWorkers; ++w)
        workers_[w]->thread = std::thread([this, w] { workerMain(w); });
}

Runtime::~Runtime()
{
    stop_.store(true, std::memory_order_seq_cst);
    // Unconditional broadcast: a worker between its parked-publish
    // and its block either sees stop_ in the re-check or fails the
    // epoch comparison inside wait() — no join can hang.
    lot_.notifyAll();
    for (auto &ws : workers_) {
        if (ws->thread.joinable())
            ws->thread.join();
    }
}

platform::CoreId
Runtime::coreOf(core::WorkerId w) const
{
    HERMES_ASSERT(w < plannedCores_.size(), "worker out of range");
    return plannedCores_[w];
}

double
Runtime::coarseNow(WorkerState &ws)
{
    if (ws.clockEvents == 0)
        ws.cachedNowSec = util::nowSeconds();
    if (++ws.clockEvents >= kClockRefreshEvents)
        ws.clockEvents = 0;
    return ws.cachedNowSec;
}

double
Runtime::freshNow(WorkerState &ws)
{
    ws.cachedNowSec = util::nowSeconds();
    ws.clockEvents = 1; // cache just refreshed; reuse it for a while
    return ws.cachedNowSec;
}

void
Runtime::run(TaskFn fn)
{
    TaskGroup group(*this);
    group.run(std::move(fn));
    group.wait();
}

SubmitHandle
Runtime::submit(TaskFn fn)
{
    // The deleter drains the group before destroying it (TaskGroup
    // asserts nothing is pending at destruction). Putting the drain
    // there rather than in ~SubmitHandle makes every release path —
    // destruction, reassignment, reset, racing drops of the last
    // two copies on different threads — funnel through the
    // reference count's single atomic release. Task exceptions
    // surface only through an explicit wait(); the release path
    // must not throw, so a still-recorded error is swallowed here —
    // but counted, never lost silently: droppedHandleErrors_ lets a
    // harness that dropped handles without waiting still assert
    // nothing failed. (A Runtime outlives its handles by contract,
    // so capturing `this` is safe.)
    std::shared_ptr<TaskGroup> group(new TaskGroup(*this),
                                     [this](TaskGroup *g) {
                                         try {
                                             g->wait();
                                         } catch (...) {
                                             droppedHandleErrors_
                                                 .fetch_add(
                                                     1,
                                                     std::memory_order_relaxed);
                                         }
                                         delete g;
                                     });
    group->run(std::move(fn));
    return SubmitHandle(std::move(group));
}

void
SubmitHandle::wait()
{
    if (group_)
        group_->wait();
}

void
Runtime::spawn(TaskGroup &group, TaskFn fn)
{
    group.beginTask();
    Task task(std::move(fn), &group);

    Runtime *rt = tls_runtime;
    const core::WorkerId id = tls_worker;
    if (rt == this && id != core::invalidWorker) {
        auto &ws = *workers_[id];
        size_t size_after = 0;
        // push() leaves `task` intact on failure (full ring), which
        // the inline-execution fallback below relies on.
        if (ws.deque.push(std::move(task), size_after)) {
            ws.pushes.fetch_add(1, std::memory_order_relaxed);
            // Wake only on the empty→non-empty transition: a deque
            // that was already non-empty is visible to any thief's
            // pre-park re-check, so deeper pushes cannot strand a
            // parked worker and stay free of shared wake state. The
            // producer's own domain is the preferred wake target —
            // the new work sits in its deque.
            if (size_after == 1)
                notifyIfParked(domainMap_.domainOf(id));
            // Coarse timestamp: spawns are the hottest event the
            // controller sees, and it only needs ms-scale time.
            if (tempo_)
                tempo_->onPush(id, size_after, coarseNow(ws));
        } else {
            // Ring full: execute inline. With child-stealing this is
            // just a depth-first serialization of the subtree.
            ws.inlined.fetch_add(1, std::memory_order_relaxed);
            execute(id, task);
        }
        return;
    }
    inject(std::move(task));
}

bool
Runtime::notifyIfParked(platform::DomainId preferred)
{
    // Fast path while the pool is busy: one read of an uncontended
    // counter, no shared writes.
    if (parkedCount_.load(std::memory_order_seq_cst) == 0)
        return false;

    // Wake selection (docs/STEALING.md): prefer a parked worker in
    // the producer's domain, else any parked worker from a rotating
    // cursor so bursts spread across distinct sleepers. The scan
    // reads the per-worker parked flags seq_cst; a thief in its
    // publish→re-check→block window has its flag set (the flag-true
    // interval contains the parkedCount>0 interval), so a thief that
    // missed this producer's work is always visible here and gets
    // its epoch bumped. Targeting a worker that unparked since the
    // scan merely wastes one bump (its next wait returns once,
    // spuriously). If the scan finds nobody, every counted worker
    // already unparked and will re-hunt past the published work —
    // skipping the wake is safe.
    const unsigned n = config_.numWorkers;
    const unsigned cursor =
        wakeCursor_.fetch_add(1, std::memory_order_relaxed);
    if (preferred != platform::invalidDomain
        && preferred < domainWorkers_.size()) {
        const auto &residents = domainWorkers_[preferred];
        if (!residents.empty()) {
            const size_t start = cursor % residents.size();
            for (size_t k = 0; k < residents.size(); ++k) {
                const auto w =
                    residents[(start + k) % residents.size()];
                if (workers_[w]->parked.load(
                        std::memory_order_seq_cst)) {
                    lot_.notifyWorker(w);
                    localWakes_.fetch_add(
                        1, std::memory_order_relaxed);
                    return true;
                }
            }
        }
    }
    for (unsigned k = 0; k < n; ++k) {
        const auto w =
            static_cast<core::WorkerId>((cursor + k) % n);
        if (workers_[w]->parked.load(std::memory_order_seq_cst)) {
            lot_.notifyWorker(w);
            auto &counter = preferred != platform::invalidDomain
                    && domainMap_.domainOf(w) == preferred
                ? localWakes_
                : remoteWakes_;
            counter.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
Runtime::notifyManyIfParked(uint64_t count,
                            platform::DomainId preferred)
{
    for (uint64_t i = 0; i < count; ++i) {
        if (!notifyIfParked(preferred))
            return;
    }
}

void
Runtime::inject(Task task)
{
    platform::DomainId preferred = platform::invalidDomain;
    if (injectQueue_) {
        const unsigned hint = producerShardHint();
        // Publish before enqueue: the seq_cst increment is the
        // work-publish half of the Dekker handshake with
        // parkUntilWork()'s re-check, and ordering it *ahead* of the
        // ring store means the pending counter always bounds the
        // queue contents from above — a consumer that saw the
        // increment but scans before the enqueue lands merely
        // retries (it cannot park: the counter is still non-zero),
        // and the per-pop decrement can never underflow. The legacy
        // branch below gets the same guarantee from its mutex.
        injectPending_.fetch_add(1, std::memory_order_seq_cst);
        InjectQueue::PushPath path;
        try {
            path = injectQueue_->push(std::move(task), hint);
        } catch (...) {
            // The spill deque can throw (allocation); retract the
            // publish or every future park re-check would see a
            // phantom pending task and the pool could never park
            // again.
            injectPending_.fetch_sub(1, std::memory_order_seq_cst);
            throw;
        }
        (path == InjectQueue::PushPath::Ring ? injectFastPath_
                                             : injectSpill_)
            .fetch_add(1, std::memory_order_relaxed);
        // Prefer a sleeper in the domain whose shard received the
        // task: its residents drain that shard first, so the wake
        // lands next to the work (shard s hosts domain s when
        // sharding per domain — the only way numShards exceeds 1).
        if (injectQueue_->numShards() > 1)
            preferred = hint % injectQueue_->numShards();
    } else {
        std::lock_guard<std::mutex> lock(injectMutex_);
        injected_.push_back(std::move(task));
        // seq_cst: the work-publish half of the Dekker handshake
        // with parkUntilWork()'s re-check.
        injectPending_.fetch_add(1, std::memory_order_seq_cst);
    }
    injectedCount_.fetch_add(1, std::memory_order_relaxed);
    notifyIfParked(preferred);
}

unsigned
Runtime::injectPreferredShard(core::WorkerId id) const
{
    return config_.inject.shardPerDomain ? domainMap_.domainOf(id)
                                         : 0;
}

bool
Runtime::popInjected(core::WorkerId id, Task &out)
{
    // Counter-gated fast path: the queue is empty for almost the
    // whole run (root tasks only), and every hunting worker polls
    // here each scheduler iteration — without the guard they would
    // all walk the shards (or serialize on injectMutex_ in legacy
    // mode) for nothing. A stale zero is harmless for an awake
    // worker (it retries next iteration); a worker about to park
    // re-reads the counter seq_cst in workPossiblyAvailable(), and
    // the injector notifies the lot, so parking cannot sleep through
    // an inject.
    if (injectPending_.load(std::memory_order_relaxed) == 0)
        return false;
    size_t depth_at_claim = 0;
    if (injectQueue_) {
        const auto src =
            injectQueue_->tryPop(out, injectPreferredShard(id));
        if (src == InjectQueue::PopSource::None)
            return false;
        // A single-shard queue (shardPerDomain off, or a one-domain
        // host) satisfies every pop from the "preferred" shard by
        // construction; counting those would make the locality
        // metric read 100% exactly when there is no locality to
        // measure, so the counter moves only with real sharding.
        if (src == InjectQueue::PopSource::PreferredShard
            && injectQueue_->numShards() > 1)
            injectShardHits_.fetch_add(1, std::memory_order_relaxed);
        depth_at_claim =
            injectPending_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
        std::lock_guard<std::mutex> lock(injectMutex_);
        if (injected_.empty())
            return false;
        out = std::move(injected_.front());
        injected_.pop_front();
        depth_at_claim =
            injectPending_.fetch_sub(1, std::memory_order_seq_cst);
    }
    injectDrain_[RuntimeStats::stealSizeBucket(depth_at_claim)]
        .fetch_add(1, std::memory_order_relaxed);
    // Wake chaining: a single inject wakes one worker; if more root
    // tasks are queued behind the one just claimed, pass the baton so
    // a burst of injects unparks a matching number of workers. The
    // baton carries no domain even on the sharded queue: the pending
    // tail may sit in any shard or the spillover, so no single
    // domain describes it — the rotating-cursor scan spreads the
    // chain instead.
    if (depth_at_claim > 1)
        notifyIfParked(platform::invalidDomain);
    return true;
}

void
Runtime::execute(core::WorkerId id, Task &task)
{
    auto &ws = *workers_[id];
    ws.activeDepth.fetch_add(1, std::memory_order_relaxed);

    // Dynamic scheduling: bind the worker to its core for the span of
    // this WORK invocation so a preemption cannot migrate it away
    // from the core whose frequency was set for it (Section 3.4).
    const bool dynamic =
        config_.scheduling == SchedulingMode::Dynamic;
    if (dynamic) {
        platform::pinSelfToCore(plannedCores_[id]);
        ws.affinitySets.fetch_add(1, std::memory_order_relaxed);
    }

    const bool throttled =
        config_.throttle == ThrottleMode::PostTaskSpin && tempo_;
    const double start = throttled ? util::nowSeconds() : 0.0;

    try {
        task.body();
    } catch (...) {
        if (task.group)
            task.group->recordException(std::current_exception());
    }

    if (throttled) {
        // Stretch the task to the duration it would have had at the
        // worker's current tempo: total = measured * f_max / f.
        const double f = tempo_->frequencyOf(id);
        const double fmax = tempo_->ladder().fastest();
        if (f < fmax) {
            const double end = util::nowSeconds();
            const double target = start + (end - start) * (fmax / f);
            while (util::nowSeconds() < target) {
                // busy-wait: this burns cycles exactly like running
                // the task longer would
            }
        }
    }

    if (dynamic) {
        platform::unpinSelf(config_.profile.topology.numCores());
        ws.affinitySets.fetch_add(1, std::memory_order_relaxed);
    }

    ws.executed.fetch_add(1, std::memory_order_relaxed);
    if (task.group)
        task.group->finish();
    ws.activeDepth.fetch_sub(1, std::memory_order_relaxed);
    // Task bodies are the only unbounded-duration stretches between
    // deque events; invalidating the coarse clock here bounds its
    // staleness to one task body (or 32 back-to-back spawns) instead
    // of 32 arbitrary-length tasks. The next tempo hook re-reads the
    // wall clock.
    ws.clockEvents = 0;
}

bool
Runtime::findAndExecute(core::WorkerId id)
{
    auto &ws = *workers_[id];
    // Progress heartbeat for the stall watchdog: one relaxed bump
    // per scheduler iteration, same cost class as the counters
    // below. Covers workerMain and the help-while-waiting loop in
    // TaskGroup::wait — everywhere a live worker spins.
    ws.heartbeat.fetch_add(1, std::memory_order_relaxed);
    Task task;
    size_t size_after = 0;

    // Algorithm 2.1: POP own deque first (most immediate task).
    if (ws.deque.pop(task, size_after)) {
        ws.pops.fetch_add(1, std::memory_order_relaxed);
        if (tempo_)
            tempo_->onPopSuccess(id, size_after, coarseNow(ws));
        execute(id, task);
        return true;
    }

    // Deque empty: the immediacy relay fires before victim hunting
    // (Figure 5 lines 6-14). Idempotent across retries. Fresh
    // timestamp: out-of-work is off the hot path and resyncs the
    // coarse clock.
    if (tempo_)
        tempo_->onOutOfWork(id, freshNow(ws));

    // Externally submitted work (the program's root tasks).
    if (popInjected(id, task)) {
        execute(id, task);
        return true;
    }

    // SELECT victims and STEAL from the head of their deques. One
    // hunt probes same-domain victims first (localityRounds passes),
    // then every other worker once from a random position
    // (steal_policy.hpp) — a hunt that probed a single victim per
    // scheduler iteration could miss the only busy one and drop into
    // backoff, which is how the pool used to serialize on short
    // workloads.
    if (config_.numWorkers > 1) {
        // Per-thief stream: splitmix64 decorrelates adjacent worker
        // ids, so thieves do not chase the same victims in lockstep.
        thread_local util::Rng rng(util::mix64(config_.seed, id));
        // Adaptive locality: while recent steals keep landing on
        // same-domain victims, skip the global ring this hunt. Only
        // meaningful when the thief has a strict local subset to
        // stay inside; a failed hunt always escalates the next one
        // (the liveness guard in includeGlobalPass).
        bool include_global = true;
        const auto &policy = config_.stealPolicy;
        if (policy.adaptiveLocality && policy.localityRounds > 0
            && !localPeers_[id].empty()
            && localPeers_[id].size() + 1 < config_.numWorkers) {
            include_global = includeGlobalPass(
                policy, ws.recentLocalHits, ws.recentRemoteHits,
                ws.lastHuntFailed);
        }
        appendVictimOrder(rng, id, config_.numWorkers,
                          localPeers_[id],
                          config_.stealPolicy.localityRounds,
                          ws.huntOrder, include_global);
        for (const auto victim : ws.huntOrder) {
            if (tryStealFrom(id, victim)) {
                ws.lastHuntFailed = false;
                return true;
            }
        }
        // One failed hunt, however many victims it probed.
        ws.lastHuntFailed = true;
        ws.failedSteals.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
}

bool
Runtime::tryStealFrom(core::WorkerId id, core::WorkerId victim)
{
    auto &ws = *workers_[id];
    auto &victim_deque = workers_[victim]->deque;
    size_t size_after = 0;
    size_t got = 0;
    Task single;
    auto &buf = ws.stealBuf;
    if (config_.stealPolicy.stealHalf) {
        buf.clear();
        got = victim_deque.stealHalf(buf, size_after);
    } else if (victim_deque.steal(single, size_after)) {
        got = 1;
    }
    if (got == 0)
        return false;

    ws.steals.fetch_add(1, std::memory_order_relaxed);
    ws.stolenTasks.fetch_add(got, std::memory_order_relaxed);
    if (got > 1)
        ws.bulkSteals.fetch_add(1, std::memory_order_relaxed);
    ws.stealSize[RuntimeStats::stealSizeBucket(got)].fetch_add(
        1, std::memory_order_relaxed);
    const bool local = domainMap_.sameDomain(id, victim);
    (local ? ws.localHits : ws.remoteHits)
        .fetch_add(1, std::memory_order_relaxed);
    // Adaptive-locality history: windowed so the ratio tracks the
    // current DAG phase (halve both counts at the window bound).
    (local ? ws.recentLocalHits : ws.recentRemoteHits) += 1;
    if (ws.recentLocalHits + ws.recentRemoteHits
        >= config_.stealPolicy.adaptiveLocalityWindow) {
        ws.recentLocalHits /= 2;
        ws.recentRemoteHits /= 2;
    }

    // Wake chaining: the victim still has surplus tasks, so another
    // parked thief has something to take — preferably one near the
    // victim's deque.
    if (size_after > 0)
        notifyIfParked(domainMap_.domainOf(victim));

    const double now = freshNow(ws);
    if (tempo_) {
        // Algorithm 3.5's victim-side workload check, then line 20's
        // thief procrastination + list splice. A bulk grab is still
        // one steal event; the surplus re-enters through onPush.
        tempo_->onVictimStolen(victim, size_after, now);
        tempo_->onStealSuccess(id, victim, now);
    }

    // Everything below that executes a task can re-enter this
    // function on the same worker (a task body reaching
    // TaskGroup::wait hunts again), and a nested hunt clears and
    // refills ws.stealBuf — so every task leaves `buf` for a local
    // *before* any execute() runs. The surplus pushes themselves
    // execute nothing and are safe while `buf` is live.
    std::vector<Task> overflow;
    if (got > 1) {
        // Stock our own deque with the surplus, preserving the
        // victim's head order: our pops take the most immediate of
        // the batch, thieves take the least — the work-first
        // ordering survives the transfer. Then chain wakes for the
        // surplus: a steal landing k tasks can employ up to k-1 more
        // workers (docs/STEALING.md).
        for (size_t i = 1; i < got; ++i) {
            size_t my_size = 0;
            if (ws.deque.push(std::move(buf[i]), my_size)) {
                ws.pushes.fetch_add(1, std::memory_order_relaxed);
                // The whole surplus transfer is one instant to the
                // controller — the steal's fresh timestamp covers it.
                if (tempo_)
                    tempo_->onPush(id, my_size, now);
            } else {
                // Ring full (cannot happen while every deque shares
                // config_.dequeCapacity — a ceil-half grab always
                // fits an empty ring of the same size — but stays
                // correct if capacities ever diverge): queue for
                // inline execution after `buf` is retired.
                overflow.push_back(std::move(buf[i]));
            }
        }
        notifyManyIfParked(got - 1, domainMap_.domainOf(id));
    }

    Task first = config_.stealPolicy.stealHalf ? std::move(buf[0])
                                               : std::move(single);
    for (auto &task : overflow) {
        ws.inlined.fetch_add(1, std::memory_order_relaxed);
        execute(id, task);
    }
    execute(id, first);
    return true;
}

void
Runtime::workerMain(core::WorkerId id)
{
    tls_runtime = this;
    tls_worker = id;

    if (config_.scheduling == SchedulingMode::Static) {
        platform::pinSelfToCore(plannedCores_[id]);
        workers_[id]->affinitySets.fetch_add(
            1, std::memory_order_relaxed);
    }

    // Idle protocol: yield through a handful of empty hunts, then
    // park — publish on the lot, re-check every work source, and
    // block in the kernel until a producer notifies. The short yield
    // phase absorbs the common a-steal-is-about-to-succeed races
    // without a syscall; it is deliberately small because on an
    // oversubscribed core CFS penalizes repeated sched_yield by
    // requeueing the caller behind every runnable thread, while a
    // parked thief is woken with enough vruntime credit to preempt
    // the producer and steal. No frequency change on yield or park
    // (Section 3.4): going idle never touches the DVFS backend — the
    // energy saving of parking comes from the core's C-state, which
    // packagePower() models via parkedPower.
    unsigned empty_hunts = 0;
    bool just_woke = false;

    while (!stop_.load(std::memory_order_acquire)) {
        // Chaos hook: a pending stallWorker() nap fires here, at the
        // loop top — outside any task body, between two heartbeat
        // bumps, exactly like the thread losing the CPU. The relaxed
        // pre-check keeps the healthy path to one uncontended load.
        auto &ws = *workers_[id];
        if (ws.stallNanosRequested.load(std::memory_order_relaxed)
            != 0) {
            const uint64_t nap = ws.stallNanosRequested.exchange(
                0, std::memory_order_acq_rel);
            if (nap != 0)
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(nap));
        }
        if (findAndExecute(id)) {
            empty_hunts = 0;
            just_woke = false;
            continue;
        }
        if (just_woke) {
            // Woken (or returned spuriously) yet the first hunt
            // found nothing: either a sibling raced us to the task
            // or the wakeup was spurious.
            workers_[id]->spuriousWakes.fetch_add(
                1, std::memory_order_relaxed);
            just_woke = false;
        }
        ++empty_hunts;
        if (!config_.enableParking
                || empty_hunts < config_.parkThreshold) {
            std::this_thread::yield();
            continue;
        }
        empty_hunts = 0;
        just_woke = parkUntilWork(id);
    }

    tls_runtime = nullptr;
    tls_worker = core::invalidWorker;
}

bool
Runtime::workPossiblyAvailable() const
{
    if (stop_.load(std::memory_order_seq_cst))
        return true;
    if (injectPending_.load(std::memory_order_seq_cst) != 0)
        return true;
    for (const auto &ws : workers_) {
        // Deque indices are seq_cst, so this load is ordered after
        // the parked-publish in parkUntilWork() — the read half of
        // the Dekker handshake with a producer's tail store.
        if (!ws->deque.empty())
            return true;
    }
    return false;
}

bool
Runtime::parkUntilWork(core::WorkerId id)
{
    auto &ws = *workers_[id];
    // Heartbeat around the park: the parked flag excuses the worker
    // from the watchdog while blocked; this bump marks the
    // transition so the flag and the counter never both read stale.
    ws.heartbeat.fetch_add(1, std::memory_order_relaxed);

    // Publish-then-recheck (docs/ARCHITECTURE.md walks through why
    // this has no lost-wakeup window):
    //   1. snapshot the wake epoch,
    //   2. publish this worker as parked (seq_cst RMW),
    //   3. re-scan every work source (seq_cst loads),
    //   4. block only if the scan found nothing, with the kernel
    //      re-validating the epoch against a racing notify.
    const ParkingLot::Epoch epoch = lot_.prepare(id);
    ws.parked.store(true, std::memory_order_seq_cst);
    parkedCount_.fetch_add(1, std::memory_order_seq_cst);

    bool blocked = false;
    if (!workPossiblyAvailable()) {
        // The tempo controller sees only real blocks, keeping its
        // parkEvents aligned with the `parks` stat (aborted parks
        // count in neither) and the controller mutex off the
        // aborted-park path.
        if (tempo_)
            tempo_->onPark(id, freshNow(ws));
        ws.parks.fetch_add(1, std::memory_order_relaxed);
        const uint64_t t0 = steadyNowNanos();
        ws.parkStartNanos.store(t0, std::memory_order_relaxed);
        lot_.wait(id, epoch);
        // Clear the in-progress marker before folding the block into
        // parkedNanos so a concurrent workerStats() cannot count the
        // same block twice: the release on the fold pairs with the
        // acquire load in workerStats(), making the cleared marker
        // visible to any reader that sees the folded total. (A
        // reader may transiently miss the tail of this block instead
        // — stats are sampled, not transactional.)
        ws.parkStartNanos.store(0, std::memory_order_relaxed);
        ws.parkedNanos.fetch_add(steadyNowNanos() - t0,
                                 std::memory_order_release);
        ws.wakes.fetch_add(1, std::memory_order_relaxed);
        if (tempo_)
            tempo_->onWake(id, freshNow(ws));
        blocked = true;
    }

    parkedCount_.fetch_sub(1, std::memory_order_seq_cst);
    ws.parked.store(false, std::memory_order_seq_cst);
    return blocked;
}

RuntimeStats
Runtime::workerStats(core::WorkerId w) const
{
    HERMES_ASSERT(w < workers_.size(), "worker out of range");
    const auto &ws = *workers_[w];
    RuntimeStats s;
    s.pushes = ws.pushes.load(std::memory_order_relaxed);
    s.pops = ws.pops.load(std::memory_order_relaxed);
    s.steals = ws.steals.load(std::memory_order_relaxed);
    s.failedSteals = ws.failedSteals.load(std::memory_order_relaxed);
    s.executed = ws.executed.load(std::memory_order_relaxed);
    s.inlined = ws.inlined.load(std::memory_order_relaxed);
    s.affinitySets = ws.affinitySets.load(std::memory_order_relaxed);
    s.parks = ws.parks.load(std::memory_order_relaxed);
    s.wakes = ws.wakes.load(std::memory_order_relaxed);
    s.spuriousWakes =
        ws.spuriousWakes.load(std::memory_order_relaxed);
    s.bulkSteals = ws.bulkSteals.load(std::memory_order_relaxed);
    s.stolenTasks = ws.stolenTasks.load(std::memory_order_relaxed);
    // Deque contention counters live on the deque itself. They are
    // charged to the deque's *owner*: stealCasRetries counts thieves
    // losing claims on this worker's deque, which measures how
    // contended this victim is.
    s.stealCasRetries = ws.deque.stealCasRetries();
    s.popCasLosses = ws.deque.popCasLosses();
    s.localHits = ws.localHits.load(std::memory_order_relaxed);
    s.remoteHits = ws.remoteHits.load(std::memory_order_relaxed);
    for (unsigned b = 0; b < RuntimeStats::kStealSizeBuckets; ++b)
        s.stealSize[b] =
            ws.stealSize[b].load(std::memory_order_relaxed);
    // Acquire pairs with the release fold in parkUntilWork(): a
    // reader that sees a block already folded into parkedNanos is
    // guaranteed to also see parkStartNanos cleared, so no block is
    // ever counted twice. Read order (total, then marker) matters.
    s.parkedNanos = ws.parkedNanos.load(std::memory_order_acquire);
    // Credit an in-progress block up to now: without this, a worker
    // parked across a measurement window would attribute the whole
    // block to the moment it wakes, skewing windowed parked-time
    // fractions in both directions.
    const uint64_t start =
        ws.parkStartNanos.load(std::memory_order_relaxed);
    if (start != 0) {
        const uint64_t now = steadyNowNanos();
        if (now > start)
            s.parkedNanos += now - start;
    }
    return s;
}

InjectTelemetry
Runtime::injectTelemetry() const
{
    InjectTelemetry t;
    // Relaxed loads: admission control consumes a racy instantaneous
    // reading by design (a decision lags the queue by one submission
    // anyway); the parking-correctness reads of injectPending_ stay
    // seq_cst where they matter (workPossiblyAvailable()).
    t.pending = injectPending_.load(std::memory_order_relaxed);
    t.fastPath = injectFastPath_.load(std::memory_order_relaxed);
    t.spill = injectSpill_.load(std::memory_order_relaxed);
    t.drainBack = injectQueue_ ? injectQueue_->drainBacks() : 0;
    return t;
}

StallTelemetry
Runtime::stallTelemetry() const
{
    StallTelemetry t;
    t.workers.resize(config_.numWorkers);
    for (unsigned w = 0; w < config_.numWorkers; ++w) {
        // Relaxed: the watchdog compares snapshots sample periods
        // apart; staleness of one iteration cannot fake a stall.
        t.workers[w].heartbeat =
            workers_[w]->heartbeat.load(std::memory_order_relaxed);
        t.workers[w].parked =
            workers_[w]->parked.load(std::memory_order_relaxed);
    }
    return t;
}

unsigned
Runtime::wakeWorkers(unsigned count)
{
    // No fresh work-publish needed: the caller is compensating for
    // already-published backlog (see the header contract), and
    // notifyIfParked() bails in O(1) when nobody is parked.
    unsigned woken = 0;
    for (unsigned i = 0; i < count; ++i) {
        if (!notifyIfParked(platform::invalidDomain))
            break;
        ++woken;
    }
    return woken;
}

void
Runtime::stallWorker(core::WorkerId w, uint64_t nanos)
{
    HERMES_ASSERT(w < workers_.size(), "worker out of range");
    workers_[w]->stallNanosRequested.store(
        nanos, std::memory_order_relaxed);
}

uint64_t
Runtime::droppedHandleErrors() const
{
    return droppedHandleErrors_.load(std::memory_order_relaxed);
}

unsigned
Runtime::parkedWorkers() const
{
    return parkedCount_.load(std::memory_order_seq_cst);
}

bool
Runtime::workerParked(core::WorkerId w) const
{
    HERMES_ASSERT(w < workers_.size(), "worker out of range");
    return workers_[w]->parked.load(std::memory_order_seq_cst);
}

RuntimeStats
Runtime::stats() const
{
    RuntimeStats total;
    for (unsigned w = 0; w < config_.numWorkers; ++w)
        total += workerStats(static_cast<core::WorkerId>(w));
    total.injected = injectedCount_.load(std::memory_order_relaxed);
    // Wake selection is a producer-side event (possibly an external
    // thread), so like `injected` it is tracked runtime-wide.
    total.localWakes = localWakes_.load(std::memory_order_relaxed);
    total.remoteWakes = remoteWakes_.load(std::memory_order_relaxed);
    // The inject-path counters are runtime-wide too: producers are
    // external threads, and a drain can be served by any worker.
    total.injectFastPath =
        injectFastPath_.load(std::memory_order_relaxed);
    total.injectSpill = injectSpill_.load(std::memory_order_relaxed);
    total.injectShardHits =
        injectShardHits_.load(std::memory_order_relaxed);
    total.injectDrainBack =
        injectQueue_ ? injectQueue_->drainBacks() : 0;
    total.droppedHandleErrors =
        droppedHandleErrors_.load(std::memory_order_relaxed);
    for (unsigned b = 0; b < RuntimeStats::kInjectDrainBuckets; ++b)
        total.injectDrain[b] =
            injectDrain_[b].load(std::memory_order_relaxed);
    return total;
}

double
Runtime::packagePower(const energy::PowerModel &model) const
{
    const auto &topo = config_.profile.topology;
    double power = model.uncorePower();

    // Aggregate worker states per core: with more workers than cores
    // several workers share one (constructor wrap-around), and the
    // core is only as idle as its most active resident — one busy
    // thread keeps the clocks running no matter how many siblings
    // are parked.
    enum : uint8_t { kVacant = 0, kParked = 1, kHunting = 2,
                     kBusy = 3 };
    std::vector<uint8_t> core_state(topo.numCores(), kVacant);
    for (unsigned w = 0; w < config_.numWorkers; ++w) {
        const auto &ws = *workers_[w];
        uint8_t s = kHunting;
        if (ws.activeDepth.load(std::memory_order_relaxed) > 0)
            s = kBusy;
        else if (ws.parked.load(std::memory_order_relaxed))
            s = kParked;
        auto &cs = core_state[plannedCores_[w]];
        cs = std::max(cs, s);
    }

    for (platform::CoreId c = 0; c < topo.numCores(); ++c) {
        const auto freq = backend_->domainFreq(topo.domainOf(c));
        switch (core_state[c]) {
        case kBusy:
            power += model.coreActivePower(freq);
            break;
        case kHunting:
            // Awake but out of work: hunting victims at its tempo.
            power += model.coreSpinPower(freq);
            break;
        case kParked:
            // Every resident worker is blocked in the kernel: the
            // core sits in a C-state, clock-gated, until a wake.
            power += model.parkedPower(freq);
            break;
        default:
            power += model.coreIdlePower(freq);
            break;
        }
    }
    return power;
}

} // namespace hermes::runtime
