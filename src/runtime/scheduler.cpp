#include "runtime/scheduler.hpp"

#include <chrono>

#include "platform/affinity.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hermes::runtime {

namespace {

thread_local Runtime *tls_runtime = nullptr;
thread_local core::WorkerId tls_worker = core::invalidWorker;

} // namespace

Runtime *
Runtime::current()
{
    return tls_runtime;
}

core::WorkerId
Runtime::currentWorker()
{
    return tls_worker;
}

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config))
{
    HERMES_ASSERT(config_.numWorkers >= 1, "need at least one worker");

    // Plan worker -> core placement: one worker per clock domain
    // while domains last (the paper's interference-free placement),
    // then wrap around the cores.
    const auto &topo = config_.profile.topology;
    const unsigned domain_workers =
        std::min(config_.numWorkers, topo.numDomains());
    plannedCores_ = topo.distinctDomainCores(domain_workers);
    for (unsigned w = domain_workers; w < config_.numWorkers; ++w)
        plannedCores_.push_back(w % topo.numCores());

    backend_ = std::make_unique<dvfs::SimulatedDvfs>(
        topo.numDomains(), config_.profile.ladder,
        config_.profile.dvfsLatencySec);

    if (config_.enableTempo) {
        // Resolve the usable ladder: default to the paper's pair for
        // this profile, and insist every rung exists in hardware.
        if (!config_.tempo.ladder.has_value()) {
            config_.tempo.ladder =
                platform::defaultTempoLadder(config_.profile);
        }
        for (auto f : config_.tempo.ladder->rungs()) {
            if (!config_.profile.ladder.contains(f)) {
                util::fatal("tempo ladder rung " + std::to_string(f)
                            + " MHz is not supported by profile "
                            + config_.profile.name + " ("
                            + config_.profile.ladder.describe()
                            + ")");
            }
        }
        tempo_ = std::make_unique<core::TempoController>(
            config_.tempo, *backend_, config_.numWorkers,
            [this](core::WorkerId w) {
                return config_.profile.topology.domainOf(coreOf(w));
            });
        tempo_->reset(util::nowSeconds());
    }

    workers_.reserve(config_.numWorkers);
    for (unsigned w = 0; w < config_.numWorkers; ++w) {
        workers_.push_back(
            std::make_unique<WorkerState>(config_.dequeCapacity));
    }
    // Threads start only after every member is in place.
    for (unsigned w = 0; w < config_.numWorkers; ++w)
        workers_[w]->thread = std::thread([this, w] { workerMain(w); });
}

Runtime::~Runtime()
{
    stop_.store(true, std::memory_order_release);
    for (auto &ws : workers_) {
        if (ws->thread.joinable())
            ws->thread.join();
    }
}

platform::CoreId
Runtime::coreOf(core::WorkerId w) const
{
    HERMES_ASSERT(w < plannedCores_.size(), "worker out of range");
    return plannedCores_[w];
}

void
Runtime::run(std::function<void()> fn)
{
    TaskGroup group(*this);
    group.run(std::move(fn));
    group.wait();
}

void
Runtime::spawn(TaskGroup &group, std::function<void()> fn)
{
    group.beginTask();
    Task task(std::move(fn), &group);

    Runtime *rt = tls_runtime;
    const core::WorkerId id = tls_worker;
    if (rt == this && id != core::invalidWorker) {
        auto &ws = *workers_[id];
        size_t size_after = 0;
        // push() leaves `task` intact on failure (full ring), which
        // the inline-execution fallback below relies on.
        if (ws.deque.push(std::move(task), size_after)) {
            ws.pushes.fetch_add(1, std::memory_order_relaxed);
            publishWork();
            if (tempo_)
                tempo_->onPush(id, size_after, util::nowSeconds());
        } else {
            // Ring full: execute inline. With child-stealing this is
            // just a depth-first serialization of the subtree.
            ws.inlined.fetch_add(1, std::memory_order_relaxed);
            execute(id, task);
        }
        return;
    }
    inject(std::move(task));
}

void
Runtime::publishWork()
{
    workEpoch_.fetch_add(1, std::memory_order_relaxed);
}

void
Runtime::inject(Task task)
{
    {
        std::lock_guard<std::mutex> lock(injectMutex_);
        injected_.push_back(std::move(task));
        injectPending_.fetch_add(1, std::memory_order_relaxed);
    }
    injectedCount_.fetch_add(1, std::memory_order_relaxed);
    publishWork();
}

bool
Runtime::popInjected(Task &out)
{
    // Lock-free fast path: the queue is empty for almost the whole
    // run (root tasks only), and every idle worker polls here each
    // scheduler iteration — without the guard they all serialize on
    // injectMutex_. A stale zero is harmless: the injector bumps the
    // work epoch after publishing, so the worker retries promptly.
    if (injectPending_.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> lock(injectMutex_);
    if (injected_.empty())
        return false;
    out = std::move(injected_.front());
    injected_.pop_front();
    injectPending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

void
Runtime::execute(core::WorkerId id, Task &task)
{
    auto &ws = *workers_[id];
    ws.activeDepth.fetch_add(1, std::memory_order_relaxed);

    // Dynamic scheduling: bind the worker to its core for the span of
    // this WORK invocation so a preemption cannot migrate it away
    // from the core whose frequency was set for it (Section 3.4).
    const bool dynamic =
        config_.scheduling == SchedulingMode::Dynamic;
    if (dynamic) {
        platform::pinSelfToCore(plannedCores_[id]);
        ws.affinitySets.fetch_add(1, std::memory_order_relaxed);
    }

    const bool throttled =
        config_.throttle == ThrottleMode::PostTaskSpin && tempo_;
    const double start = throttled ? util::nowSeconds() : 0.0;

    try {
        task.body();
    } catch (...) {
        if (task.group)
            task.group->recordException(std::current_exception());
    }

    if (throttled) {
        // Stretch the task to the duration it would have had at the
        // worker's current tempo: total = measured * f_max / f.
        const double f = tempo_->frequencyOf(id);
        const double fmax = tempo_->ladder().fastest();
        if (f < fmax) {
            const double end = util::nowSeconds();
            const double target = start + (end - start) * (fmax / f);
            while (util::nowSeconds() < target) {
                // busy-wait: this burns cycles exactly like running
                // the task longer would
            }
        }
    }

    if (dynamic) {
        platform::unpinSelf(config_.profile.topology.numCores());
        ws.affinitySets.fetch_add(1, std::memory_order_relaxed);
    }

    ws.executed.fetch_add(1, std::memory_order_relaxed);
    if (task.group)
        task.group->finish();
    ws.activeDepth.fetch_sub(1, std::memory_order_relaxed);
}

bool
Runtime::findAndExecute(core::WorkerId id)
{
    auto &ws = *workers_[id];
    Task task;
    size_t size_after = 0;

    // Algorithm 2.1: POP own deque first (most immediate task).
    if (ws.deque.pop(task, size_after)) {
        ws.pops.fetch_add(1, std::memory_order_relaxed);
        if (tempo_)
            tempo_->onPopSuccess(id, size_after, util::nowSeconds());
        execute(id, task);
        return true;
    }

    // Deque empty: the immediacy relay fires before victim hunting
    // (Figure 5 lines 6-14). Idempotent across retries.
    if (tempo_)
        tempo_->onOutOfWork(id, util::nowSeconds());

    // Externally submitted work (the program's root tasks).
    if (popInjected(task)) {
        execute(id, task);
        return true;
    }

    // SELECT a random victim and STEAL from the head of its deque.
    // One hunt probes every other worker once, starting at a random
    // position — a single probe per scheduler iteration lets a thief
    // miss the only busy victim and drop back into backoff, which is
    // how the pool used to serialize on short workloads.
    if (config_.numWorkers > 1) {
        // Per-thief stream: splitmix64 decorrelates adjacent worker
        // ids, so thieves do not chase the same victims in lockstep.
        thread_local util::Rng rng(util::mix64(config_.seed, id));
        const unsigned n = config_.numWorkers;
        const auto start = static_cast<unsigned>(
            rng.uniformInt(0, static_cast<int64_t>(n) - 1));
        for (unsigned k = 0; k < n; ++k) {
            const auto victim =
                static_cast<core::WorkerId>((start + k) % n);
            if (victim == id)
                continue;
            if (workers_[victim]->deque.steal(task, size_after)) {
                ws.steals.fetch_add(1, std::memory_order_relaxed);
                const double now = util::nowSeconds();
                if (tempo_) {
                    // Algorithm 3.5's victim-side workload check,
                    // then line 20's thief procrastination + list
                    // splice.
                    tempo_->onVictimStolen(victim, size_after, now);
                    tempo_->onStealSuccess(id, victim, now);
                }
                execute(id, task);
                return true;
            }
        }
        // One failed hunt, however many victims it probed.
        ws.failedSteals.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
}

void
Runtime::workerMain(core::WorkerId id)
{
    tls_runtime = this;
    tls_worker = id;

    if (config_.scheduling == SchedulingMode::Static) {
        platform::pinSelfToCore(plannedCores_[id]);
        workers_[id]->affinitySets.fetch_add(
            1, std::memory_order_relaxed);
    }

    // Idle protocol: yield for a few empty hunts, then sleep with a
    // capped exponential backoff. Any work published anywhere (push
    // or inject) moves the epoch, which resets the backoff — so a
    // thief never sleeps through a workload that started after it
    // went idle. The yield budget is deliberately small: on an
    // oversubscribed core, CFS penalizes repeated sched_yield by
    // requeueing the caller behind every runnable thread, so a
    // yield-spinning thief can starve while a busy victim
    // monopolizes the CPU; a sleeping thief instead wakes with
    // enough vruntime credit to preempt the victim and steal. No
    // frequency change on yield (Section 3.4): going idle never
    // touches the DVFS backend.
    constexpr unsigned kYieldRounds = 4;
    constexpr unsigned kSleepMinUs = 4;
    constexpr unsigned kSleepMaxUs = 256;

    unsigned failures = 0;
    unsigned sleep_us = kSleepMinUs;
    uint64_t seen_epoch = workEpoch_.load(std::memory_order_relaxed);

    while (!stop_.load(std::memory_order_acquire)) {
        if (findAndExecute(id)) {
            failures = 0;
            sleep_us = kSleepMinUs;
            continue;
        }
        const uint64_t epoch =
            workEpoch_.load(std::memory_order_relaxed);
        if (epoch != seen_epoch) {
            // Someone published work since the last empty hunt:
            // reset the backoff and hunt again — but still yield
            // once, or a thief racing a fine-grained producer (whose
            // push/pop churn moves the epoch on every hunt) would
            // busy-spin through its whole quantum on failed hunts.
            seen_epoch = epoch;
            failures = 0;
            sleep_us = kSleepMinUs;
            std::this_thread::yield();
            continue;
        }
        ++failures;
        if (failures < kYieldRounds) {
            std::this_thread::yield();
        } else {
            workers_[id]->parks.fetch_add(1,
                                          std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::microseconds(sleep_us));
            sleep_us = std::min(sleep_us * 2, kSleepMaxUs);
        }
    }

    tls_runtime = nullptr;
    tls_worker = core::invalidWorker;
}

RuntimeStats
Runtime::workerStats(core::WorkerId w) const
{
    HERMES_ASSERT(w < workers_.size(), "worker out of range");
    const auto &ws = *workers_[w];
    RuntimeStats s;
    s.pushes = ws.pushes.load(std::memory_order_relaxed);
    s.pops = ws.pops.load(std::memory_order_relaxed);
    s.steals = ws.steals.load(std::memory_order_relaxed);
    s.failedSteals = ws.failedSteals.load(std::memory_order_relaxed);
    s.executed = ws.executed.load(std::memory_order_relaxed);
    s.inlined = ws.inlined.load(std::memory_order_relaxed);
    s.affinitySets = ws.affinitySets.load(std::memory_order_relaxed);
    s.parks = ws.parks.load(std::memory_order_relaxed);
    return s;
}

RuntimeStats
Runtime::stats() const
{
    RuntimeStats total;
    for (unsigned w = 0; w < config_.numWorkers; ++w)
        total += workerStats(static_cast<core::WorkerId>(w));
    total.injected = injectedCount_.load(std::memory_order_relaxed);
    return total;
}

double
Runtime::packagePower(const energy::PowerModel &model) const
{
    const auto &topo = config_.profile.topology;
    double power = model.uncorePower();

    // Map cores to the workers occupying them.
    std::vector<int> worker_on_core(topo.numCores(), -1);
    for (unsigned w = 0; w < config_.numWorkers; ++w)
        worker_on_core[plannedCores_[w]] = static_cast<int>(w);

    for (platform::CoreId c = 0; c < topo.numCores(); ++c) {
        const auto freq = backend_->domainFreq(topo.domainOf(c));
        const int w = worker_on_core[c];
        if (w < 0) {
            power += model.coreIdlePower(freq);
            continue;
        }
        const bool busy =
            workers_[static_cast<size_t>(w)]->activeDepth.load(
                std::memory_order_relaxed) > 0;
        // Idle workers sleep at most a few hundred microseconds at a
        // time between hunts, so their cores are modeled at spin
        // power rather than a parked state.
        power += busy ? model.coreActivePower(freq)
                      : model.coreSpinPower(freq);
    }
    return power;
}

} // namespace hermes::runtime
